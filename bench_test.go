// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index and cmd/benchsuite for the
// long-form harness that prints the same rows the paper reports). Inputs
// are the synthetic surrogates at reduced size so `go test -bench=.` stays
// laptop-friendly; pass -benchfactor to grow them.
package equitruss_test

import (
	"flag"
	"fmt"
	"sync"
	"testing"

	"equitruss"
	"equitruss/internal/cc"
	"equitruss/internal/concur"
	"equitruss/internal/core"
	"equitruss/internal/ds"
	"equitruss/internal/dynamic"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

var benchFactor = flag.Float64("benchfactor", 0.1, "dataset size factor for benchmarks")

// --- cached inputs ----------------------------------------------------------

var (
	benchMu   sync.Mutex
	benchGs   = map[string]*graph.Graph{}
	benchTaus = map[string][]int32{}
	benchSups = map[string][]int32{}
)

func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	key := fmt.Sprintf("%s@%f", name, *benchFactor)
	if g, ok := benchGs[key]; ok {
		return g
	}
	spec, err := gen.FindDataset(name)
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Generate(*benchFactor)
	benchGs[key] = g
	return g
}

func benchSupports(b *testing.B, name string) (*graph.Graph, []int32) {
	g := benchGraph(b, name)
	benchMu.Lock()
	defer benchMu.Unlock()
	key := fmt.Sprintf("%s@%f", name, *benchFactor)
	if s, ok := benchSups[key]; ok {
		return g, s
	}
	s := triangle.Supports(g, 0)
	benchSups[key] = s
	return g, s
}

func benchTau(b *testing.B, name string) (*graph.Graph, []int32) {
	g, sup := benchSupports(b, name)
	benchMu.Lock()
	defer benchMu.Unlock()
	key := fmt.Sprintf("%s@%f", name, *benchFactor)
	if t, ok := benchTaus[key]; ok {
		return g, t
	}
	tau, _ := truss.DecomposeParallel(g, sup, 0)
	benchTaus[key] = tau
	return g, tau
}

// --- Table 3: dataset inventory ---------------------------------------------

// BenchmarkTable3Datasets measures surrogate generation and reports the
// instance sizes (the |V|, |E| columns of Table 3).
func BenchmarkTable3Datasets(b *testing.B) {
	for _, spec := range gen.Datasets {
		if spec.Name == "friendster-sim" {
			continue // benched separately in Fig7
		}
		b.Run(spec.Name, func(b *testing.B) {
			var g *graph.Graph
			for i := 0; i < b.N; i++ {
				g = spec.Generate(*benchFactor)
			}
			b.ReportMetric(float64(g.NumVertices()), "vertices")
			b.ReportMetric(float64(g.NumEdges()), "edges")
		})
	}
}

// --- Figure 2: serial pipeline kernel breakdown -------------------------------

// BenchmarkFig2KernelBreakdownSerial times the three serial pipeline stages
// and reports the EquiTruss share of total time (the paper's motivation:
// index construction rivals truss decomposition).
func BenchmarkFig2KernelBreakdownSerial(b *testing.B) {
	for _, name := range []string{"amazon-sim", "dblp-sim"} {
		b.Run(name, func(b *testing.B) {
			g := benchGraph(b, name)
			var eqPct float64
			for i := 0; i < b.N; i++ {
				sg, tm, err := equitruss.BuildSummary(g, equitruss.Options{Variant: equitruss.Serial})
				if err != nil {
					b.Fatal(err)
				}
				_ = sg
				eqPct = 100 * float64(tm.IndexTotal()) / float64(tm.Total())
			}
			b.ReportMetric(eqPct, "equitruss%")
		})
	}
}

// --- Figure 4: Baseline parallel kernel breakdown ------------------------------

// BenchmarkFig4KernelBreakdownParallel runs the Baseline builder single-
// threaded and reports the SpNode share (the dominant kernel: 79–89% in
// the paper).
func BenchmarkFig4KernelBreakdownParallel(b *testing.B) {
	for _, name := range []string{"dblp-sim", "youtube-sim"} {
		b.Run(name, func(b *testing.B) {
			g, tau := benchTau(b, name)
			var spNodePct float64
			for i := 0; i < b.N; i++ {
				_, tm := core.Build(g, tau, core.VariantBaseline, 1)
				spNodePct = 100 * float64(tm.SpNode) / float64(tm.IndexTotal())
			}
			b.ReportMetric(spNodePct, "spnode%")
		})
	}
}

// --- Figure 5: single-thread SpNode by variant --------------------------------

// BenchmarkFig5SpNodeVariants times each variant's full single-threaded
// index construction; compare the sub-benchmark times to read off the
// C-Opt and Afforest speedups over Baseline.
func BenchmarkFig5SpNodeVariants(b *testing.B) {
	for _, name := range []string{"youtube-sim", "livejournal-sim"} {
		g, tau := benchTau(b, name)
		for _, v := range core.ParallelVariants {
			b.Run(fmt.Sprintf("%s/%s", name, v), func(b *testing.B) {
				var spnode float64
				for i := 0; i < b.N; i++ {
					_, tm := core.Build(g, tau, v, 1)
					spnode = tm.SpNode.Seconds()
				}
				b.ReportMetric(spnode*1e3, "spnode-ms")
			})
		}
	}
}

// --- Figure 6: strong scaling --------------------------------------------------

// BenchmarkFig6StrongScaling sweeps thread counts for each variant on the
// LiveJournal surrogate (the paper's Figure 6 per-network curves).
func BenchmarkFig6StrongScaling(b *testing.B) {
	g, tau := benchTau(b, "livejournal-sim")
	for _, v := range core.ParallelVariants {
		for threads := 1; threads <= concur.MaxThreads(); threads *= 2 {
			b.Run(fmt.Sprintf("%s/threads=%d", v, threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.Build(g, tau, v, threads)
				}
			})
		}
	}
}

// --- Figure 7: SpNode scaling on the largest graph -----------------------------

// BenchmarkFig7SpNodeFriendster runs the C-Optimal and Afforest builders on
// the Friendster stand-in (the billion-edge graph of the paper, scaled).
func BenchmarkFig7SpNodeFriendster(b *testing.B) {
	g, tau := benchTau(b, "friendster-sim")
	for _, v := range []core.Variant{core.VariantCOptimal, core.VariantAfforest} {
		for threads := 1; threads <= concur.MaxThreads(); threads *= 2 {
			b.Run(fmt.Sprintf("%s/threads=%d", v, threads), func(b *testing.B) {
				var spnode float64
				for i := 0; i < b.N; i++ {
					_, tm := core.Build(g, tau, v, threads)
					spnode = tm.SpNode.Seconds()
				}
				b.ReportMetric(spnode*1e3, "spnode-ms")
			})
		}
	}
}

// --- Figure 8: kernels by thread count -----------------------------------------

// BenchmarkFig8KernelsByThreads reports the three major kernels' times for
// the Afforest variant across the thread sweep.
func BenchmarkFig8KernelsByThreads(b *testing.B) {
	g, tau := benchTau(b, "livejournal-sim")
	for threads := 1; threads <= concur.MaxThreads(); threads *= 2 {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var tm core.Timings
			for i := 0; i < b.N; i++ {
				_, tm = core.Build(g, tau, core.VariantAfforest, threads)
			}
			b.ReportMetric(tm.SpNode.Seconds()*1e3, "spnode-ms")
			b.ReportMetric(tm.SpEdge.Seconds()*1e3, "spedge-ms")
			b.ReportMetric(tm.SmGraph.Seconds()*1e3, "smgraph-ms")
		})
	}
}

// --- Figure 9: parallel efficiency ---------------------------------------------

// BenchmarkFig9ParallelEfficiency reports ε = T1/(p·Tp) for the max thread
// count per variant.
func BenchmarkFig9ParallelEfficiency(b *testing.B) {
	g, tau := benchTau(b, "youtube-sim")
	p := concur.MaxThreads()
	for _, v := range core.ParallelVariants {
		b.Run(v.String(), func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				_, t1 := core.Build(g, tau, v, 1)
				_, tp := core.Build(g, tau, v, p)
				eff = 100 * float64(t1.IndexTotal()) / (float64(p) * float64(tp.IndexTotal()))
			}
			b.ReportMetric(eff, "efficiency%")
		})
	}
}

// --- Table 4: sequential comparison --------------------------------------------

// BenchmarkTable4SequentialComparison times all four variants single-
// threaded (index-construction phases only, as in the paper's Table 4).
func BenchmarkTable4SequentialComparison(b *testing.B) {
	g, tau := benchTau(b, "dblp-sim")
	for _, v := range core.Variants {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Build(g, tau, v, 1)
			}
		})
	}
}

// --- Table 5: speedups and index sizes ------------------------------------------

// BenchmarkTable5SpeedupSummary times 1-thread and max-thread builds per
// variant and reports the supernode/superedge counts of Table 5.
func BenchmarkTable5SpeedupSummary(b *testing.B) {
	g, tau := benchTau(b, "youtube-sim")
	for _, v := range core.ParallelVariants {
		for _, threads := range []int{1, concur.MaxThreads()} {
			b.Run(fmt.Sprintf("%s/threads=%d", v, threads), func(b *testing.B) {
				var sg *core.SummaryGraph
				for i := 0; i < b.N; i++ {
					sg, _ = core.Build(g, tau, v, threads)
				}
				b.ReportMetric(float64(sg.NumSupernodes()), "supernodes")
				b.ReportMetric(float64(sg.NumSuperedges()), "superedges")
			})
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) -------------------------

// BenchmarkAblationCCAlgorithms compares the vertex-space CC substrates the
// paper discusses in §3.1 (SV vs Afforest-adjacent strategies vs LP vs BFS).
func BenchmarkAblationCCAlgorithms(b *testing.B) {
	g := benchGraph(b, "youtube-sim")
	algos := []struct {
		name string
		run  func(*graph.Graph, int) []int32
	}{
		{"shiloach-vishkin", cc.ShiloachVishkin},
		{"afforest", cc.Afforest},
		{"label-propagation", cc.LabelPropagation},
		{"bfs", cc.BFS},
	}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.run(g, 0)
			}
		})
	}
	b.Run("dfs-reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cc.Reference(g)
		}
	})
}

// BenchmarkAblationTrussSerialVsParallel isolates the TrussDecomp kernel.
func BenchmarkAblationTrussSerialVsParallel(b *testing.B) {
	g, sup := benchSupports(b, "youtube-sim")
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			truss.DecomposeSerial(g, sup)
		}
	})
	for threads := 1; threads <= concur.MaxThreads(); threads *= 2 {
		b.Run(fmt.Sprintf("parallel/threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				truss.DecomposeParallel(g, sup, threads)
			}
		})
	}
}

// BenchmarkAblationSupportIntersection compares the merge-only support
// kernel against the adaptive galloping one on a skewed graph.
func BenchmarkAblationSupportIntersection(b *testing.B) {
	g := benchGraph(b, "orkut-sim")
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			triangle.Supports(g, 0)
		}
	})
	b.Run("gallop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			triangle.SupportsGalloping(g, 0)
		}
	})
	b.Run("oriented", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			triangle.SupportsOriented(g, 0)
		}
	})
}

// BenchmarkAblationBaselineDictionaries isolates the C-Opt storage win: Π
// updates through the sharded hash map versus the flat atomic buffer.
func BenchmarkAblationBaselineDictionaries(b *testing.B) {
	const n = 1 << 16
	b.Run("sharded-map", func(b *testing.B) {
		sm := ds.NewShardedMap(n)
		for i := int64(0); i < n; i++ {
			sm.Store(i, int32(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			concur.For(n, 0, func(j int) {
				v, _ := sm.Load(int64(j))
				if v != int32(j) {
					sm.Store(int64(j), int32(j))
				}
			})
		}
	})
	b.Run("flat-buffer", func(b *testing.B) {
		buf := make([]int32, n)
		for i := range buf {
			buf[i] = int32(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			concur.For(n, 0, func(j int) {
				if buf[j] != int32(j) {
					buf[j] = int32(j)
				}
			})
		}
	})
}

// BenchmarkAblationSpNodeStrategies reproduces the §3.1 design-space
// discussion: the paper's chosen CC strategies (SV-based C-Optimal,
// Afforest) against the rejected label-propagation and BFS designs, all
// over identical flat storage.
func BenchmarkAblationSpNodeStrategies(b *testing.B) {
	g, tau := benchTau(b, "youtube-sim")
	strategies := append(append([]core.Variant(nil), core.VariantCOptimal, core.VariantAfforest), core.AblationVariants...)
	for _, v := range strategies {
		b.Run(v.String(), func(b *testing.B) {
			var spnode float64
			for i := 0; i < b.N; i++ {
				_, tm := core.Build(g, tau, v, 0)
				spnode = tm.SpNode.Seconds()
			}
			b.ReportMetric(spnode*1e3, "spnode-ms")
		})
	}
}

// BenchmarkQueryIndexedVsDirect measures the payoff of the index at query
// time — the end-to-end reason the paper builds it.
func BenchmarkQueryIndexedVsDirect(b *testing.B) {
	g, tau := benchTau(b, "dblp-sim")
	sg, _ := core.Build(g, tau, core.VariantAfforest, 0)
	idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.Afforest})
	if err != nil {
		b.Fatal(err)
	}
	_ = sg
	v := int32(0)
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.Communities(v%g.NumVertices(), 4)
			v++
		}
	})
	v = 0
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			equitruss.DirectCommunities(g, tau, v%g.NumVertices(), 4)
			v++
		}
	})
}

// BenchmarkDynamicMaintenance measures incremental trussness maintenance
// (insert+delete of the same edge) against recomputing the decomposition
// from scratch — the payoff of the dynamic engine.
func BenchmarkDynamicMaintenance(b *testing.B) {
	g, tau := benchTau(b, "dblp-sim")
	dg := dynamic.FromStatic(g, tau)
	// Churn endpoints drawn from the graph's vertex range; insert a fresh
	// edge then remove it so state returns to baseline each iteration.
	b.Run("incremental-insert-delete", func(b *testing.B) {
		var u, v int32 = 0, 1
		for i := 0; i < b.N; i++ {
			u = (u + 7) % g.NumVertices()
			v = (v + 13) % g.NumVertices()
			if u == v || dg.HasEdge(u, v) {
				continue
			}
			if _, err := dg.InsertEdge(u, v); err != nil {
				b.Fatal(err)
			}
			dg.DeleteEdge(u, v)
		}
	})
	b.Run("from-scratch-decomposition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sup := triangle.Supports(g, 0)
			truss.DecomposeParallel(g, sup, 0)
		}
	})
}
