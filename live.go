package equitruss

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"equitruss/internal/community"
	"equitruss/internal/core"
	"equitruss/internal/dynamic"
	"equitruss/internal/graphio"
	"equitruss/internal/server"
	"equitruss/internal/wal"
)

// Checksums is the canonical three-layer fingerprint of an index's state
// (trussness, summary graph, hierarchy), independent of which construction
// variant or thread count produced it. Available on any Index via
// ix.Checksums(); the crash-recovery differential compares a recovered
// server's checksums against an independent rebuild's.
type Checksums = community.Checksums

// WALSyncPolicy selects when WAL appends reach stable storage.
type WALSyncPolicy = wal.SyncPolicy

// ParseWALSyncPolicy parses "always", "interval", or "never" ("" selects
// always) into a WALSyncPolicy.
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// UpdateOp is one edge operation in a durable update batch.
type UpdateOp = wal.Op

// UpdateBatch is an ordered list of edge operations logged (and applied)
// under one WAL sequence number.
type UpdateBatch = wal.Batch

// Filenames inside a live state directory.
const (
	liveSnapshotFile = "snapshot.eqs"
	liveWALFile      = "wal.log"
)

// LiveOptions configures OpenLive / ServeLive: where durable state lives
// and how the update pipeline rebuilds and compacts.
type LiveOptions struct {
	// Dir is the state directory holding snapshot.eqs and wal.log; created
	// if missing. Required.
	Dir string
	// SyncPolicy is the WAL fsync policy: "always" (default; an ack means
	// the batch is on disk), "interval" (group fsync every SyncInterval),
	// or "never" (the OS decides — fastest, weakest).
	SyncPolicy string
	// SyncInterval is the group-fsync period under the "interval" policy;
	// <= 0 selects 100ms.
	SyncInterval time.Duration
	// Variant and Threads drive both the recovery-time index build and the
	// post-update rebuilds.
	Variant Variant
	Threads int
	// UpdateQueueDepth bounds acked-but-unapplied batches before POST
	// /update sheds with 429; 0 selects the default (64).
	UpdateQueueDepth int
	// MaxUpdateBatch caps operations per POST /update; 0 selects the
	// default (10000).
	MaxUpdateBatch int
	// CompactEvery is the number of applied batches between snapshot +
	// WAL-truncate compactions; 0 selects the default (64).
	CompactEvery int
	// UpdateMode selects how the applier publishes applied batches:
	// "incremental" repairs the summary graph and hierarchy from the batch
	// delta, "full" rebuilds them from scratch, and "auto" (the default)
	// repairs incrementally with a fallback to full rebuild when the delta
	// region exceeds MaxDeltaFrac of the graph.
	UpdateMode string
	// MaxDeltaFrac bounds the incremental repair region as a fraction of
	// the edge count in auto mode; 0 selects the default (0.2).
	MaxDeltaFrac float64
	// Logger receives recovery and applier records; nil selects the
	// process-wide default.
	Logger *slog.Logger
}

// LiveIndex is a recovered, updatable serving state: the query-ready index
// at WAL sequence Seq, the mutable graph it was derived from, and the open
// log that future updates append to.
type LiveIndex struct {
	Index *Index
	Dyn   *DynamicGraph
	WAL   *wal.WAL
	// Seq is the last WAL sequence reflected in Index and Dyn.
	Seq uint64

	snapshotPath string
	opt          LiveOptions
}

// Close releases the WAL. Call after the server using the LiveIndex has
// shut down.
func (li *LiveIndex) Close() error { return li.WAL.Close() }

// OpenLive recovers durable state from opt.Dir and returns a serving-ready
// LiveIndex. Recovery order:
//
//  1. Load snapshot.eqs if present — graph + exact trussness as of its
//     sequence number. A corrupt snapshot falls back to the base graph
//     (step 2) when the WAL still reaches back to sequence 1, and fails
//     otherwise (the log alone cannot reconstruct state past a compaction).
//  2. Otherwise start from base (decomposed at recovery time), or empty
//     when base is nil.
//  3. Open wal.log (truncating any torn tail) and replay every record past
//     the snapshot sequence through the exact dynamic-trussness maintenance.
//  4. Build the summary graph and index from the maintained trussness — no
//     re-peeling.
//
// The result is bit-identical (by canonical Checksums) to building
// statically over the same edge stream, which is exactly what the crashsafe
// suite verifies.
func OpenLive(ctx context.Context, base *Graph, opt LiveOptions) (*LiveIndex, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("equitruss: OpenLive needs a state directory")
	}
	logger := opt.Logger
	if logger == nil {
		logger = slog.Default()
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	snapPath := filepath.Join(opt.Dir, liveSnapshotFile)
	walPath := filepath.Join(opt.Dir, liveWALFile)

	pol, err := wal.ParseSyncPolicy(opt.SyncPolicy)
	if err != nil {
		return nil, err
	}
	w, err := wal.Open(walPath, wal.Options{Policy: pol, Interval: opt.SyncInterval})
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			w.Close()
		}
	}()

	// Step 1/2: pick the starting state.
	var dyn *dynamic.Graph
	var fromSeq uint64
	snapCorrupt := false
	snap, serr := graphio.ReadSnapshotFile(snapPath)
	switch {
	case serr == nil:
		dyn = dynamic.FromStatic(snap.G, snap.Tau)
		fromSeq = snap.Seq
		logger.Info("recovery: loaded snapshot",
			slog.Uint64("seq", snap.Seq), slog.Int64("edges", snap.G.NumEdges()))
	case os.IsNotExist(serr):
		dyn = baseDynamic(base, opt.Threads)
	default:
		// Corrupt snapshot: base + replay is usable only if the WAL still
		// holds the full history — enforced below, because a compacted log
		// replayed over the base would silently drop every compacted batch.
		logger.Warn("recovery: snapshot unreadable, attempting base + full replay",
			slog.Any("err", serr))
		dyn = baseDynamic(base, opt.Threads)
		snapCorrupt = true
	}

	// Step 3: replay the log suffix. The contiguity check turns a
	// gap — e.g. a compacted WAL paired with a lost snapshot — into a hard
	// error instead of silently wrong state.
	expect := fromSeq
	replayed := 0
	err = w.Replay(fromSeq, func(seq uint64, b wal.Batch) error {
		if seq != expect+1 {
			return fmt.Errorf("equitruss: WAL gap: state at seq %d, next record is %d (snapshot lost after compaction?)", expect, seq)
		}
		expect = seq
		replayed++
		for _, op := range b {
			if op.Del {
				dyn.DeleteEdge(op.U, op.V)
			} else if _, err := dyn.InsertEdge(op.U, op.V); err != nil {
				return fmt.Errorf("equitruss: WAL seq %d: unappliable op (%d,%d): %w", seq, op.U, op.V, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if snapCorrupt && replayed == 0 {
		// A snapshot only exists once compaction has truncated the log, so
		// an empty log plus an unreadable snapshot means the history needed
		// to rebuild from base is gone.
		return nil, fmt.Errorf("equitruss: snapshot %s is unreadable and the WAL holds no history to rebuild from: %v", snapPath, serr)
	}
	if replayed > 0 {
		logger.Info("recovery: replayed WAL", slog.Int("records", replayed),
			slog.Uint64("through_seq", expect))
	}

	// Step 4: summary + index from the maintained trussness.
	g, tau, err := dyn.ToStatic()
	if err != nil {
		return nil, err
	}
	sg, timings, err := core.BuildCtx(ctx, g, tau, opt.Variant, opt.Threads, nil)
	if err != nil {
		return nil, err
	}
	ok = true
	return &LiveIndex{
		Index:        &Index{Index: community.NewIndex(g, sg), Timings: timings},
		Dyn:          dyn,
		WAL:          w,
		Seq:          expect,
		snapshotPath: snapPath,
		opt:          opt,
	}, nil
}

// baseDynamic decomposes the base graph (or starts empty) into a dynamic
// graph at sequence zero.
func baseDynamic(base *Graph, threads int) *dynamic.Graph {
	if base == nil {
		return dynamic.New(0)
	}
	return dynamic.FromStatic(base, Trussness(base, threads))
}

// liveConfig maps LiveOptions onto the internal update-pipeline config.
func (li *LiveIndex) liveConfig() server.LiveConfig {
	return server.LiveConfig{
		WAL:          li.WAL,
		Dyn:          li.Dyn,
		AppliedSeq:   li.Seq,
		QueueDepth:   li.opt.UpdateQueueDepth,
		MaxBatch:     li.opt.MaxUpdateBatch,
		Variant:      li.opt.Variant,
		Threads:      li.opt.Threads,
		SnapshotPath: li.snapshotPath,
		CompactEvery: li.opt.CompactEvery,
		Mode:         li.opt.UpdateMode,
		MaxDeltaFrac: li.opt.MaxDeltaFrac,
		Logger:       li.opt.Logger,
	}
}

// ServeLive serves community queries and durable POST /update edge batches
// from a recovered LiveIndex until ctx is cancelled. On top of Serve's
// endpoints it exposes POST /update (WAL-acked edge mutations, applied by a
// background epoch swap) and GET /readyz. The caller still owns li: Close
// it after ServeLive returns.
func ServeLive(ctx context.Context, li *LiveIndex, opt ServeOptions) error {
	if li == nil {
		return fmt.Errorf("equitruss: nil live index")
	}
	addr := opt.Addr
	if addr == "" {
		addr = ":8080"
	}
	s := server.NewPending(opt.serverConfig())
	s.Publish(li.Index.Index, li.Seq)
	if err := s.EnableUpdates(li.liveConfig()); err != nil {
		return err
	}
	defer s.Close()
	return s.ListenAndServe(ctx, addr, opt.DrainTimeout, opt.OnListen)
}

// NewLiveHandler returns the live serving handler (queries + updates) for
// embedding in an existing mux, plus a shutdown func that stops the update
// applier. Used by in-process tests; production serving uses ServeLive.
func NewLiveHandler(li *LiveIndex, opt ServeOptions) (http.Handler, func(), error) {
	s := server.NewPending(opt.serverConfig())
	s.Publish(li.Index.Index, li.Seq)
	if err := s.EnableUpdates(li.liveConfig()); err != nil {
		return nil, nil, err
	}
	return s.Handler(), s.Close, nil
}
