package equitruss_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"equitruss"
	"equitruss/internal/cc"
	"equitruss/internal/core"
	"equitruss/internal/faults"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// chaosWaitGoroutines polls until the goroutine count returns to base —
// the leak assertion behind every chaos scenario: whatever we inject or
// cancel, the system must wind all its workers down.
func chaosWaitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d running, %d at baseline\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosCancelMidBuild is the cancellation acceptance criterion: on a
// graph of >= 100k edges, cancelling the context mid-build must surface
// ctx.Err() in bounded time and leave zero goroutines behind.
func TestChaosCancelMidBuild(t *testing.T) {
	g := equitruss.GenerateRMAT(14, 8, 42)
	if g.NumEdges() < 100_000 {
		t.Fatalf("graph has %d edges, need >= 100k for the acceptance criterion", g.NumEdges())
	}
	for _, variant := range []equitruss.Variant{equitruss.COptimal, equitruss.Afforest} {
		t.Run(fmt.Sprint(variant), func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			errc := make(chan error, 1)
			go func() {
				_, err := equitruss.BuildIndex(g, equitruss.Options{
					Variant: variant, Threads: 4, Context: ctx,
				})
				errc <- err
			}()
			time.Sleep(2 * time.Millisecond) // let the pipeline get under way
			cancel()
			select {
			case err := <-errc:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled build returned %v, want context.Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancelled build did not return within 10s")
			}
			chaosWaitGoroutines(t, base)
		})
	}
}

// TestChaosCancelBeforeBuild: a context cancelled before the build even
// starts must fail at the first barrier without doing the work.
func TestChaosCancelBeforeBuild(t *testing.T) {
	g := equitruss.GenerateRMAT(10, 6, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.COptimal, Threads: 2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled build returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("pre-cancelled build took %v", d)
	}
}

// TestChaosBarrierFault arms the scheduler-barrier fault site: an injected
// error at any barrier must propagate out of the build as a clean error
// (wrapping faults.ErrInjected), join every worker, and leave the system
// able to build correctly once the fault is disarmed.
func TestChaosBarrierFault(t *testing.T) {
	g := equitruss.GenerateRMAT(10, 6, 7)
	want, _, err := equitruss.BuildSummary(g, equitruss.Options{Variant: equitruss.Serial})
	if err != nil {
		t.Fatal(err)
	}
	canon := want.Canonical(g)

	base := runtime.NumGoroutine()
	faults.Enable(3)
	defer faults.Disable()
	faults.Set("concur.barrier", faults.Plan{Action: faults.Error, Every: 5})
	_, _, err = equitruss.BuildSummary(g, equitruss.Options{
		Variant: equitruss.COptimal, Threads: 4, Context: context.Background(),
	})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("build under barrier faults returned %v, want ErrInjected", err)
	}
	chaosWaitGoroutines(t, base)

	faults.Disable()
	sg, _, err := equitruss.BuildSummary(g, equitruss.Options{
		Variant: equitruss.COptimal, Threads: 4, Context: context.Background(),
	})
	if err != nil {
		t.Fatalf("rebuild after disarming faults: %v", err)
	}
	if sg.Canonical(g) != canon {
		t.Fatal("rebuild after injected failure disagrees with the serial oracle")
	}
}

// TestChaosLegacyAPIsImmuneToBarrierFaults: the no-error legacy APIs
// (Supports, Trussness, the *T wrappers in internal packages) run on
// non-cancelable contexts excluded from fault injection, so arming the
// scheduler barrier site must neither panic them nor corrupt their output —
// while the ctx-taking APIs in the same process still observe the injected
// fault. Regression test for the wrappers panicking on "unreachable"
// injected errors.
func TestChaosLegacyAPIsImmuneToBarrierFaults(t *testing.T) {
	g := equitruss.GenerateRMAT(10, 6, 7)
	wantSup := equitruss.Supports(g, 2)
	wantTau := equitruss.Trussness(g, 2)

	faults.Enable(17)
	defer faults.Disable()
	faults.Set("concur.barrier", faults.Plan{Action: faults.Error, Every: 1})

	for _, k := range []equitruss.SupportKernel{
		equitruss.KernelAuto, equitruss.KernelMerge, equitruss.KernelGalloping, equitruss.KernelOriented,
	} {
		sup := equitruss.SupportsWithKernel(g, k, 4)
		for i := range wantSup {
			if sup[i] != wantSup[i] {
				t.Fatalf("kernel %v under armed barrier: support[%d] = %d, want %d", k, i, sup[i], wantSup[i])
			}
		}
	}
	tau := equitruss.Trussness(g, 4)
	for i := range wantTau {
		if tau[i] != wantTau[i] {
			t.Fatalf("Trussness under armed barrier: tau[%d] = %d, want %d", i, tau[i], wantTau[i])
		}
	}
	// Internal legacy wrappers ride the same exclusion — including the
	// scan-free pkt peel kernel and the kernel dispatcher, whose outputs
	// must stay bit-identical under the armed barrier.
	triangle.SupportsT(g, 4, nil)
	truss.DecomposeParallelT(g, wantSup, 4, nil)
	pktTau, _ := truss.DecomposePKTT(g, wantSup, 4, nil)
	for i := range wantTau {
		if pktTau[i] != wantTau[i] {
			t.Fatalf("DecomposePKTT under armed barrier: tau[%d] = %d, want %d", i, pktTau[i], wantTau[i])
		}
	}
	for _, pk := range []equitruss.PeelKernel{
		equitruss.PeelAuto, equitruss.PeelSerial, equitruss.PeelLevelSync, equitruss.PeelPKT,
	} {
		kTau, _ := truss.DecomposeKernel(g, wantSup, pk, 4)
		for i := range wantTau {
			if kTau[i] != wantTau[i] {
				t.Fatalf("DecomposeKernel(%v) under armed barrier: tau[%d] = %d, want %d", pk, i, kTau[i], wantTau[i])
			}
		}
	}
	cc.ShiloachVishkin(g, 4)
	cc.Afforest(g, 4)
	cc.LabelPropagation(g, 4)
	cc.BFS(g, 4)
	core.Build(g, wantTau, core.VariantAfforest, 4)

	// The exclusion is scoped to the legacy wrappers: a ctx-taking build in
	// the same process must still see the injection.
	if _, _, err := equitruss.BuildSummary(g, equitruss.Options{
		Variant: equitruss.COptimal, Threads: 4, Context: context.Background(),
	}); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("ctx build under armed barrier returned %v, want ErrInjected", err)
	}
}

// TestChaosCorruptIndexRejected flips bytes spread across a saved v2 index
// and proves every corruption is caught at load time by the checksums.
func TestChaosCorruptIndexRejected(t *testing.T) {
	g := equitruss.GenerateRMAT(8, 6, 11)
	sg, _, err := equitruss.BuildSummary(g, equitruss.Options{Variant: equitruss.COptimal})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "idx.bin")
	if err := equitruss.SaveIndexFile(path, sg); err != nil {
		t.Fatal(err)
	}
	if _, err := equitruss.LoadIndexFile(path, g); err != nil {
		t.Fatalf("clean index failed to load: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Sample corruption positions across the whole file: header, payload
	// middle, and the trailer region (exhaustive flips live in the graphio
	// package tests; this proves the property end to end via the public API).
	for _, pos := range []int{0, 8, 40, len(blob) / 3, len(blob) / 2, len(blob) - 5, len(blob) - 1} {
		corrupt := append([]byte(nil), blob...)
		corrupt[pos] ^= 0x01
		cpath := filepath.Join(dir, fmt.Sprintf("corrupt-%d.bin", pos))
		if err := os.WriteFile(cpath, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := equitruss.LoadIndexFile(cpath, g); err == nil {
			t.Fatalf("flipped byte %d of %d accepted at load", pos, len(blob))
		}
	}
}

// TestChaosSaveFaultPreservesOldIndex: a write failure injected mid-save
// must leave the previously saved index untouched and loadable — the
// crash-safety contract of the temp-file + rename protocol.
func TestChaosSaveFaultPreservesOldIndex(t *testing.T) {
	g := equitruss.GenerateRMAT(8, 6, 11)
	sg, _, err := equitruss.BuildSummary(g, equitruss.Options{Variant: equitruss.COptimal})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.bin")
	if err := equitruss.SaveIndexFile(path, sg); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	faults.Enable(99)
	defer faults.Disable()
	faults.Set("graphio.write", faults.Plan{Action: faults.Error, Every: 1})
	if err := equitruss.SaveIndexFile(path, sg); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("save under write faults returned %v, want ErrInjected", err)
	}
	faults.Disable()

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed save modified the existing index file")
	}
	if _, err := equitruss.LoadIndexFile(path, g); err != nil {
		t.Fatalf("old index unloadable after failed save: %v", err)
	}
}

// TestChaosServerSurvives hammers the query server while the query fault
// site injects errors, then panics, then delays: every response must be a
// well-formed HTTP status, the server must answer cleanly once disarmed,
// and shutdown must leave no goroutines.
func TestChaosServerSurvives(t *testing.T) {
	g := equitruss.GenerateRMAT(8, 6, 42)
	idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.COptimal})
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ts := httptest.NewServer(equitruss.NewHandler(idx, equitruss.ServeOptions{
		Workers: 4, MaxInFlight: 64, CacheSize: -1, // no cache: every query walks the fault site
	}))
	faults.Enable(13)
	defer faults.Disable()

	hammer := func(workers, reqs int) {
		t.Helper()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < reqs; i++ {
					var resp *http.Response
					var err error
					if i%3 == 0 {
						body := fmt.Sprintf(`{"queries":[{"v":%d,"k":3},{"v":%d,"k":4}]}`, (w+i)%64, (w*i)%64)
						resp, err = ts.Client().Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
					} else {
						resp, err = ts.Client().Get(fmt.Sprintf("%s/community?v=%d&k=3", ts.URL, (w*7+i)%64))
					}
					if err != nil {
						t.Errorf("worker %d: transport error: %v", w, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK, http.StatusTooManyRequests,
						http.StatusInternalServerError, http.StatusServiceUnavailable:
					default:
						t.Errorf("worker %d: unexpected status %d", w, resp.StatusCode)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	faults.Set("server.query", faults.Plan{Action: faults.Error, P: 0.5})
	hammer(16, 15)
	faults.Set("server.query", faults.Plan{Action: faults.Panic, P: 0.3})
	hammer(16, 15)
	faults.Set("server.query", faults.Plan{Action: faults.Delay, P: 0.2, Delay: time.Millisecond})
	hammer(16, 15)
	if faults.Hits("server.query") == 0 {
		t.Fatal("fault site never reached — the chaos proved nothing")
	}

	// Disarmed, the survivor must answer normally.
	faults.Disable()
	resp, err := ts.Client().Get(ts.URL + "/community?v=1&k=3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server answered %d after chaos disarmed", resp.StatusCode)
	}
	ts.Close()
	chaosWaitGoroutines(t, base)
}
