// Package faults is a deterministic, seed-driven fault-injection registry
// for chaos testing the pipeline and the query server. Production code
// threads named injection points ("sites") through its failure-prone paths
// — binary I/O sections, the query worker pool, scheduler barriers — by
// calling Inject(site); tests arm a subset of sites with a Plan (inject an
// error, a delay, or a panic) and a seed, then assert the system degrades
// cleanly: builds cancel, corrupt saves are rejected, the server sheds or
// survives.
//
// When no test has called Enable, Inject is a single atomic load returning
// nil — the registry compiles to a no-op in production, and none of the
// plan machinery is touched.
//
// Determinism: each site draws from its own splitmix64 stream seeded by
// the global seed and the site name, and fires as a pure function of its
// per-site hit count. Two runs with the same seed, plans, and per-site hit
// sequences make identical decisions (cross-site interleaving under
// concurrency does not affect any site's own sequence).
package faults

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Action selects what an armed site does when it fires.
type Action int

const (
	// Error makes Inject return an error wrapping ErrInjected.
	Error Action = iota
	// Delay makes Inject sleep for Plan.Delay, then return nil.
	Delay
	// Panic makes Inject panic with a message naming the site.
	Panic
)

// String names the action for error messages.
func (a Action) String() string {
	switch a {
	case Error:
		return "error"
	case Delay:
		return "delay"
	case Panic:
		return "panic"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// ErrInjected is the sentinel wrapped by every injected error, so callers
// can distinguish chaos from real failures with errors.Is.
var ErrInjected = errors.New("injected fault")

// Plan arms one site. Exactly one firing rule applies: Every > 0 fires on
// every Every-th hit (deterministic count-based rule); otherwise P is the
// per-hit firing probability drawn from the site's seeded stream.
type Plan struct {
	// Action is what happens on a firing hit.
	Action Action
	// P is the per-hit firing probability in [0, 1], used when Every == 0.
	P float64
	// Every fires on hits Every, 2·Every, ... when > 0 (overrides P).
	Every int
	// Delay is the sleep duration for Action == Delay.
	Delay time.Duration
	// MaxFires caps total firings; 0 means unlimited.
	MaxFires int
}

type site struct {
	plan  Plan
	rng   uint64
	hits  int64
	fires int64
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	sites   map[string]*site
)

// Enable activates the registry with the given seed. Previously armed
// sites are cleared; arm sites with Set afterwards. Tests must pair this
// with a deferred Disable so chaos never leaks into other tests.
func Enable(seed uint64) {
	mu.Lock()
	defer mu.Unlock()
	sites = make(map[string]*site)
	seedBase = seed
	enabled.Store(true)
}

// seedBase is the global seed mixed with each site name.
var seedBase uint64

// Disable deactivates the registry and clears every armed site; Inject
// returns to its no-op fast path.
func Disable() {
	mu.Lock()
	defer mu.Unlock()
	enabled.Store(false)
	sites = nil
}

// Active reports whether the registry is enabled.
func Active() bool { return enabled.Load() }

// Set arms (or re-arms) a site with a plan. No-op unless Enable was called.
func Set(name string, p Plan) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		return
	}
	sites[name] = &site{plan: p, rng: seedBase ^ hashName(name)}
}

// Inject is the production hook: it decides whether the named site fires
// on this hit and performs the armed action. Unarmed sites — and the whole
// registry when disabled — cost one atomic load and return nil.
func Inject(name string) error {
	if !enabled.Load() {
		return nil
	}
	mu.Lock()
	st := sites[name]
	if st == nil {
		mu.Unlock()
		return nil
	}
	st.hits++
	fire := false
	if st.plan.MaxFires == 0 || st.fires < int64(st.plan.MaxFires) {
		if st.plan.Every > 0 {
			fire = st.hits%int64(st.plan.Every) == 0
		} else {
			fire = splitmixFloat(&st.rng) < st.plan.P
		}
	}
	if fire {
		st.fires++
	}
	plan := st.plan
	mu.Unlock()
	if !fire {
		return nil
	}
	switch plan.Action {
	case Delay:
		time.Sleep(plan.Delay)
		return nil
	case Panic:
		panic(fmt.Sprintf("faults: injected panic at site %q", name))
	default:
		return fmt.Errorf("%w at site %q", ErrInjected, name)
	}
}

// Hits returns how many times the named site has been reached since Enable.
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if st := sites[name]; st != nil {
		return st.hits
	}
	return 0
}

// Fires returns how many times the named site has fired since Enable.
func Fires(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if st := sites[name]; st != nil {
		return st.fires
	}
	return 0
}

// hashName is FNV-1a, inlined to keep the package dependency-free.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 advances the per-site stream.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// splitmixFloat draws a uniform float64 in [0, 1).
func splitmixFloat(x *uint64) float64 {
	return float64(splitmix64(x)>>11) / float64(1<<53)
}
