package faults

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	if Active() {
		t.Fatal("Active after Disable")
	}
	for i := 0; i < 100; i++ {
		if err := Inject("any.site"); err != nil {
			t.Fatalf("disabled Inject returned %v", err)
		}
	}
	// Set without Enable must not arm anything.
	Set("any.site", Plan{Action: Error, P: 1})
	if err := Inject("any.site"); err != nil {
		t.Fatalf("Set without Enable armed a site: %v", err)
	}
}

func TestUnarmedSiteNeverFires(t *testing.T) {
	Enable(1)
	defer Disable()
	Set("armed", Plan{Action: Error, P: 1})
	if err := Inject("other"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if err := Inject("armed"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed P=1 site did not fire: %v", err)
	}
}

func TestEveryRule(t *testing.T) {
	Enable(7)
	defer Disable()
	Set("s", Plan{Action: Error, Every: 3})
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, Inject("s") != nil)
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("Every=3 pattern %v, want %v", pattern, want)
		}
	}
	if h, f := Hits("s"), Fires("s"); h != 9 || f != 3 {
		t.Fatalf("hits=%d fires=%d, want 9/3", h, f)
	}
}

func TestProbabilisticDeterminism(t *testing.T) {
	run := func() []bool {
		Enable(42)
		defer Disable()
		Set("p", Plan{Action: Error, P: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, Inject("p") != nil)
		}
		return out
	}
	a, b := run(), run()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d: %v vs %v", i, a, b)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == 64 {
		t.Fatalf("P=0.5 fired %d/64 times — stream looks broken", fires)
	}
}

func TestMaxFiresCap(t *testing.T) {
	Enable(3)
	defer Disable()
	Set("cap", Plan{Action: Error, P: 1, MaxFires: 2})
	n := 0
	for i := 0; i < 10; i++ {
		if Inject("cap") != nil {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("MaxFires=2 fired %d times", n)
	}
}

func TestDelayAction(t *testing.T) {
	Enable(9)
	defer Disable()
	Set("slow", Plan{Action: Delay, Every: 1, Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Inject("slow"); err != nil {
		t.Fatalf("delay action returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay action slept only %v", d)
	}
}

func TestPanicAction(t *testing.T) {
	Enable(11)
	defer Disable()
	Set("boom", Plan{Action: Panic, Every: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("panic action did not panic")
		}
	}()
	Inject("boom")
}
