package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestReqSamplingDeterministic(t *testing.T) {
	tk := NewReqTracker(ReqConfig{SampleN: 4, RingSize: 16})
	var sampled []uint64
	for i := 0; i < 12; i++ {
		rq := tk.Begin("/community")
		if rq.Traced() {
			sampled = append(sampled, rq.ID())
		}
		rq.Finish(200, ReqInfo{})
	}
	// Deterministic 1-in-4 by sequence number: requests 1, 5, 9.
	if len(sampled) != 3 || sampled[0] != 1 || sampled[1] != 5 || sampled[2] != 9 {
		t.Fatalf("sampled ids = %v, want [1 5 9]", sampled)
	}
	if got := len(tk.Recent(0)); got != 3 {
		t.Fatalf("recent ring holds %d, want 3", got)
	}
	if got := len(tk.Slow(0)); got != 0 {
		t.Fatalf("slow ring holds %d fast OK requests, want 0", got)
	}
}

func TestReqSampleEveryAndDisabled(t *testing.T) {
	every := NewReqTracker(ReqConfig{SampleN: 1})
	for i := 0; i < 3; i++ {
		if rq := every.Begin("x"); !rq.Traced() {
			t.Fatal("SampleN=1 must trace every request")
		}
	}
	off := NewReqTracker(ReqConfig{SampleN: -1})
	if rq := off.Begin("x"); rq.Traced() {
		t.Fatal("negative SampleN must disable tracing")
	}
}

func TestReqStagesAndRings(t *testing.T) {
	tk := NewReqTracker(ReqConfig{SampleN: 1, RingSize: 4, SlowThreshold: time.Hour})
	rq := tk.Begin("/community")
	st := rq.StartStage("parse")
	st.End()
	st = rq.StartStage("query")
	time.Sleep(time.Millisecond)
	st.End()
	dur := rq.Finish(200, ReqInfo{Vertex: 42, K: 5, CacheHit: true})
	if dur <= 0 {
		t.Fatal("Finish returned non-positive duration")
	}
	recent := tk.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("recent = %d traces, want 1", len(recent))
	}
	tr := recent[0]
	if tr.ID != 1 || tr.Status != 200 || !tr.Sampled || tr.Info.Vertex != 42 || !tr.Info.CacheHit {
		t.Fatalf("trace fields wrong: %+v", tr)
	}
	if len(tr.Stages) != 2 || tr.Stages[0].Name != "parse" || tr.Stages[1].Name != "query" {
		t.Fatalf("stages wrong: %+v", tr.Stages)
	}
	if tr.Stages[1].Dur < time.Millisecond {
		t.Fatalf("query stage dur = %v, want >= 1ms", tr.Stages[1].Dur)
	}
	if tr.Stages[1].Offset < tr.Stages[0].Offset {
		t.Fatal("stage offsets not monotone")
	}

	// An errored request lands in the slow ring too.
	rq = tk.Begin("/community")
	rq.Finish(500, ReqInfo{Err: "boom"})
	slow := tk.Slow(0)
	if len(slow) != 1 || slow[0].Status != 500 || slow[0].Info.Err != "boom" {
		t.Fatalf("slow ring after error: %+v", slow)
	}
	if found := tk.Find(2); found == nil || found.Status != 500 {
		t.Fatalf("Find(2) = %+v", found)
	}
	if tk.Find(999) != nil {
		t.Fatal("Find of unknown id should be nil")
	}
}

func TestReqRingOverwritesOldest(t *testing.T) {
	tk := NewReqTracker(ReqConfig{SampleN: 1, RingSize: 3, SlowThreshold: time.Hour})
	for i := 0; i < 5; i++ {
		tk.Begin("x").Finish(200, ReqInfo{})
	}
	recent := tk.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recent))
	}
	// Newest first: ids 5, 4, 3.
	if recent[0].ID != 5 || recent[1].ID != 4 || recent[2].ID != 3 {
		t.Fatalf("ring order = %d,%d,%d want 5,4,3", recent[0].ID, recent[1].ID, recent[2].ID)
	}
	if limited := tk.Recent(2); len(limited) != 2 || limited[0].ID != 5 {
		t.Fatalf("Recent(2) = %+v", limited)
	}
}

func TestSlowUnsampledCaptured(t *testing.T) {
	tk := NewReqTracker(ReqConfig{SampleN: 1000000, SlowThreshold: time.Nanosecond, RingSize: 4})
	tk.Begin("warmup").Finish(200, ReqInfo{}) // id 1 is always sampled; burn it
	rq := tk.Begin("/batch")
	if rq.Traced() {
		t.Fatal("request unexpectedly sampled")
	}
	time.Sleep(time.Microsecond)
	rq.Finish(200, ReqInfo{Items: 7})
	slow := tk.Slow(0)
	if len(slow) == 0 || slow[0].Name != "/batch" {
		t.Fatalf("slow ring missing the unsampled slow request: %+v", slow)
	}
	if slow[0].Sampled || len(slow[0].Stages) != 0 || slow[0].Info.Items != 7 {
		t.Fatalf("slow unsampled trace wrong: %+v", slow[0])
	}
}

func TestReqContextPropagation(t *testing.T) {
	tk := NewReqTracker(ReqConfig{SampleN: 1, SlowThreshold: time.Hour})
	rq := tk.Begin("/community")
	ctx := rq.WithContext(context.Background())
	if got, ok := ReqFromContext(ctx); !ok || got.ID() != rq.ID() {
		t.Fatal("sampled request not recoverable from context")
	}
	reg := StartStageFromContext(ctx, "hierarchy query")
	reg.End()
	rq.Finish(200, ReqInfo{})
	tr := tk.Recent(1)[0]
	if len(tr.Stages) != 1 || tr.Stages[0].Name != "hierarchy query" {
		t.Fatalf("context stage missing: %+v", tr.Stages)
	}

	// Unsampled: context untouched, stage helpers inert.
	tk2 := NewReqTracker(ReqConfig{SampleN: -1})
	rq2 := tk2.Begin("x")
	base := context.Background()
	if rq2.WithContext(base) != base {
		t.Fatal("unsampled WithContext must return ctx unchanged")
	}
	StartStageFromContext(base, "noop").End()
}

// TestUnsampledRequestZeroAllocs pins the acceptance criterion: the full
// per-request tracking path — Begin, stage no-ops, Finish, histogram
// observe — allocates nothing when the request is not sampled.
func TestUnsampledRequestZeroAllocs(t *testing.T) {
	tk := NewReqTracker(ReqConfig{SampleN: 1 << 30, SlowThreshold: time.Hour})
	h := NewHistogram("req", "")
	info := ReqInfo{Vertex: 7, K: 4, CacheHit: true}
	allocs := testing.AllocsPerRun(1000, func() {
		rq := tk.Begin("/community")
		st := rq.StartStage("parse")
		st.End()
		st = rq.StartStage("query")
		st.End()
		h.Observe(rq.Finish(200, info))
	})
	if allocs != 0 {
		t.Fatalf("unsampled request path allocates: %.1f allocs/op", allocs)
	}
}

func TestNilReqTracker(t *testing.T) {
	var tk *ReqTracker
	rq := tk.Begin("x")
	if rq.Traced() || rq.ID() != 0 {
		t.Fatal("nil tracker handle not inert")
	}
	rq.StartStage("s").End()
	if d := rq.Finish(200, ReqInfo{}); d != 0 {
		t.Fatal("nil tracker Finish should return 0")
	}
	if tk.Recent(0) != nil || tk.Slow(0) != nil || tk.Find(1) != nil {
		t.Fatal("nil tracker rings not empty")
	}
}

func TestReqStageCap(t *testing.T) {
	tk := NewReqTracker(ReqConfig{SampleN: 1, SlowThreshold: time.Hour})
	rq := tk.Begin("x")
	for i := 0; i < maxStagesPerReq+10; i++ {
		rq.StartStage("s").End()
	}
	rq.Finish(200, ReqInfo{})
	if n := len(tk.Recent(1)[0].Stages); n != maxStagesPerReq {
		t.Fatalf("stages = %d, want capped at %d", n, maxStagesPerReq)
	}
}

func TestReqTrackerConcurrent(t *testing.T) {
	tk := NewReqTracker(ReqConfig{SampleN: 3, RingSize: 8, SlowThreshold: time.Hour})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rq := tk.Begin("/community")
				st := rq.StartStage("query")
				st.End()
				status := 200
				if i%50 == 0 {
					status = 503
				}
				rq.Finish(status, ReqInfo{})
				if i%17 == 0 {
					tk.Recent(4)
					tk.Slow(4)
				}
			}
		}()
	}
	wg.Wait()
	if len(tk.Slow(0)) == 0 {
		t.Fatal("no errored traces retained")
	}
}

func TestWriteReqChromeTrace(t *testing.T) {
	tk := NewReqTracker(ReqConfig{SampleN: 1, SlowThreshold: time.Hour})
	rq := tk.Begin("/community")
	rq.StartStage("parse").End()
	rq.Finish(200, ReqInfo{})
	tr := tk.Recent(1)[0]
	var buf bytes.Buffer
	if err := WriteReqChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace: %v\n%s", err, buf.String())
	}
	var names []string
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			names = append(names, e.Name)
		}
	}
	if len(names) != 2 || !strings.Contains(names[0], "req-1") || names[1] != "parse" {
		t.Fatalf("chrome events = %v", names)
	}
}
