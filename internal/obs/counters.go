package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a named monotonic counter safe for concurrent use. Counters
// are cheap enough to leave always-on: hot loops accumulate into locals and
// Add once per block, so the shared atomic is touched at block granularity.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Help returns the one-line description.
func (c *Counter) Help() string { return c.help }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be zero; negative deltas are ignored to keep the
// counter monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter (tests and per-run CLI snapshots).
func (c *Counter) Reset() { c.v.Store(0) }

// CounterValue is one registry entry snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value int64  `json:"value"`
}

// Registry is a set of named metrics — monotonic counters, gauges,
// latency histograms, and snapshot-time collectors. Registration is
// idempotent: the first registration of a name wins (including its help
// text), so packages can declare the metrics they emit at init time without
// coordination.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Snapshot returns the current values of every registered counter, sorted
// by name for deterministic exposition.
func (r *Registry) Snapshot() []CounterValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CounterValue, 0, len(r.counters))
	for _, c := range r.counters {
		out = append(out, CounterValue{Name: c.name, Help: c.help, Value: c.Value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset zeroes every registered counter.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
}

// defaultRegistry is the process-wide registry every pipeline kernel
// registers into.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry.
func DefaultRegistry() *Registry { return defaultRegistry }

// GetCounter registers (or fetches) a counter in the process-wide registry.
// Packages call this from var initializers so counter lookups never sit on
// a hot path.
func GetCounter(name, help string) *Counter {
	return defaultRegistry.Counter(name, help)
}
