package obs

import (
	"context"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing: where the build tracer (trace.go) answers "what
// did this pipeline run spend its time on", this layer answers the serving
// question — "what did request N spend its time on, and which recent
// requests were slow or failed". A ReqTracker hands every request a
// process-unique ID, records a stage tree (parse → pool wait → cache →
// query → encode) for a deterministic 1-in-N sample of requests, and keeps
// fixed-size ring buffers of recent sampled traces and recent slow/errored
// traces for the /debug/requests endpoint.
//
// The design rule carried over from the build tracer: the unsampled path
// must be allocation-free. Begin on an unsampled request returns a value
// handle, every stage call on it is an inert no-op, and Finish of a fast
// successful request touches no lock and allocates nothing (pinned by
// TestUnsampledRequestZeroAllocs). Only sampled requests allocate a trace,
// and only slow or errored ones take the ring lock.

// ReqConfig tunes a ReqTracker. The zero value picks the defaults.
type ReqConfig struct {
	// SampleN records a full stage trace for one in every SampleN requests
	// (deterministic, by request sequence number). 0 selects the default
	// (64); 1 traces every request; negative disables sampling entirely.
	SampleN int
	// SlowThreshold is the duration at or above which a completed request
	// is kept in the slow ring even when unsampled. 0 selects the default
	// (250ms); negative disables slow capture.
	SlowThreshold time.Duration
	// RingSize is the capacity of each trace ring (recent and slow).
	// 0 selects the default (64).
	RingSize int
}

const (
	defaultSampleN       = 64
	defaultSlowThreshold = 250 * time.Millisecond
	defaultRingSize      = 64
	// maxStagesPerReq caps the stage tree so a pathological handler loop
	// cannot grow a sampled trace without bound; stages past the cap are
	// dropped silently.
	maxStagesPerReq = 16
)

// ReqStage is one timed stage of a request, offset-stamped from the
// request's start.
type ReqStage struct {
	Name   string        `json:"name"`
	Offset time.Duration `json:"offset_ns"`
	Dur    time.Duration `json:"dur_ns"`
}

// ReqInfo carries the request-shaped annotations a handler attaches at
// completion: query identity, batch size, cache outcome, error text. A
// plain value struct so attaching it costs nothing.
type ReqInfo struct {
	Vertex   int32  `json:"vertex"`
	K        int32  `json:"k"`
	Items    int    `json:"items,omitempty"`
	CacheHit bool   `json:"cache_hit"`
	Err      string `json:"err,omitempty"`
}

// ReqTrace is one completed (or, for sampled requests, in-flight) request
// record. Immutable once Finish has run; the rings hand out pointers.
type ReqTrace struct {
	ID      uint64        `json:"id"`
	Name    string        `json:"name"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur_ns"`
	Status  int           `json:"status"`
	Sampled bool          `json:"sampled"`
	Info    ReqInfo       `json:"info"`
	Stages  []ReqStage    `json:"stages,omitempty"`
}

// ReqTracker issues request IDs, samples stage traces, and retains recent
// slow/errored traces. Safe for concurrent use. A nil tracker is the
// zero-overhead no-op: Begin returns an inert handle.
type ReqTracker struct {
	sampleN int
	slow    time.Duration
	seq     atomic.Uint64
	mu      sync.Mutex
	recent  traceRing
	slowr   traceRing
}

// NewReqTracker returns a tracker with the given config.
func NewReqTracker(cfg ReqConfig) *ReqTracker {
	n := cfg.SampleN
	if n == 0 {
		n = defaultSampleN
	}
	slow := cfg.SlowThreshold
	if slow == 0 {
		slow = defaultSlowThreshold
	}
	size := cfg.RingSize
	if size <= 0 {
		size = defaultRingSize
	}
	return &ReqTracker{
		sampleN: n,
		slow:    slow,
		recent:  traceRing{buf: make([]*ReqTrace, size)},
		slowr:   traceRing{buf: make([]*ReqTrace, size)},
	}
}

// SampleN returns the effective sampling divisor (negative = disabled).
func (tk *ReqTracker) SampleN() int { return tk.sampleN }

// SlowThreshold returns the effective slow-capture threshold.
func (tk *ReqTracker) SlowThreshold() time.Duration { return tk.slow }

// Req is the per-request handle: a small value type (no allocation to
// create or copy) carrying the request ID and, for sampled requests, the
// trace under construction. The zero Req (from a nil tracker) is inert.
type Req struct {
	tk    *ReqTracker
	t     *ReqTrace
	id    uint64
	name  string
	start time.Time
}

// Begin opens tracking for one request: always assigns the next request
// ID, and allocates a stage trace iff the deterministic 1-in-N sampler
// selects this request.
func (tk *ReqTracker) Begin(name string) Req {
	if tk == nil {
		return Req{}
	}
	id := tk.seq.Add(1)
	rq := Req{tk: tk, id: id, name: name, start: time.Now()}
	if tk.sampleN > 0 && id%uint64(tk.sampleN) == 1%uint64(tk.sampleN) {
		rq.t = &ReqTrace{
			ID:      id,
			Name:    name,
			Start:   rq.start,
			Sampled: true,
			Stages:  make([]ReqStage, 0, maxStagesPerReq),
		}
	}
	return rq
}

// Traced reports whether this request carries a stage trace (was sampled).
func (rq Req) Traced() bool { return rq.t != nil }

// ID returns the request's process-unique sequence number (0 for the inert
// handle).
func (rq Req) ID() uint64 { return rq.id }

// IDString renders the request ID in the canonical "req-<n>" form used by
// logs and /debug/requests — the join key between the two.
func (rq Req) IDString() string { return FormatReqID(rq.id) }

// FormatReqID renders a request ID in the canonical "req-<n>" form.
func FormatReqID(id uint64) string { return "req-" + strconv.FormatUint(id, 10) }

// ReqRegion is an open stage span. The zero value (unsampled request) is
// inert.
type ReqRegion struct {
	t     *ReqTrace
	idx   int
	start time.Time
}

// StartStage opens a named stage. Stages must be recorded from one
// goroutine at a time (the handler goroutine); parallel fan-out belongs
// inside a single enclosing stage. On an unsampled request this is a
// no-op that reads no clock.
func (rq Req) StartStage(name string) ReqRegion {
	if rq.t == nil || len(rq.t.Stages) >= maxStagesPerReq {
		return ReqRegion{}
	}
	now := time.Now()
	rq.t.Stages = append(rq.t.Stages, ReqStage{Name: name, Offset: now.Sub(rq.start)})
	return ReqRegion{t: rq.t, idx: len(rq.t.Stages) - 1, start: now}
}

// End closes the stage. Inert (and free) on the zero ReqRegion.
func (rr ReqRegion) End() {
	if rr.t == nil {
		return
	}
	rr.t.Stages[rr.idx].Dur = time.Since(rr.start)
}

// reqCtxKey carries a sampled Req through a context.
type reqCtxKey struct{}

// WithContext returns ctx carrying this request's handle, so downstream
// layers (the community query path) can attach stages without plumbing.
// Unsampled requests return ctx unchanged — context attachment allocates,
// and only the sampled path is allowed to.
func (rq Req) WithContext(ctx context.Context) context.Context {
	if rq.t == nil {
		return ctx
	}
	return context.WithValue(ctx, reqCtxKey{}, rq)
}

// ReqFromContext extracts the request handle a sampled request stored with
// WithContext; ok is false (and the handle inert) otherwise.
func ReqFromContext(ctx context.Context) (Req, bool) {
	rq, ok := ctx.Value(reqCtxKey{}).(Req)
	return rq, ok
}

// StartStageFromContext opens a stage on the context's request, if any —
// the one-liner for instrumenting deep query code. On a context without a
// sampled request it returns the inert region without reading the clock.
func StartStageFromContext(ctx context.Context, name string) ReqRegion {
	if rq, ok := ctx.Value(reqCtxKey{}).(Req); ok {
		return rq.StartStage(name)
	}
	return ReqRegion{}
}

// Finish completes the request: stamps duration, status, and annotations,
// then retains the trace — sampled traces always enter the recent ring,
// and any slow (>= SlowThreshold) or errored (status >= 400) request
// enters the slow ring, allocating a stage-less trace for unsampled ones.
// The fast path (unsampled, fast, 2xx/3xx) takes no lock and allocates
// nothing. Returns the request's wall duration for the caller's histogram.
func (rq Req) Finish(status int, info ReqInfo) time.Duration {
	if rq.tk == nil {
		return 0
	}
	dur := time.Since(rq.start)
	slow := rq.tk.slow > 0 && dur >= rq.tk.slow
	errored := status >= 400
	t := rq.t
	if t == nil {
		if !slow && !errored {
			return dur
		}
		t = &ReqTrace{ID: rq.id, Name: rq.name, Start: rq.start}
	}
	t.Dur = dur
	t.Status = status
	t.Info = info
	rq.tk.mu.Lock()
	if t.Sampled {
		rq.tk.recent.push(t)
	}
	if slow || errored {
		rq.tk.slowr.push(t)
	}
	rq.tk.mu.Unlock()
	return dur
}

// traceRing is a fixed-size overwrite-oldest buffer of finished traces.
// Guarded by the tracker's mutex.
type traceRing struct {
	buf  []*ReqTrace
	next int
	n    int
}

func (r *traceRing) push(t *ReqTrace) {
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	r.n++
}

// snapshot returns up to max traces, newest first.
func (r *traceRing) snapshot(max int) []*ReqTrace {
	held := r.n
	if held > len(r.buf) {
		held = len(r.buf)
	}
	if max <= 0 || max > held {
		max = held
	}
	out := make([]*ReqTrace, 0, max)
	for i := 1; i <= max; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Recent returns up to max recently sampled traces, newest first (max <= 0
// means all retained).
func (tk *ReqTracker) Recent(max int) []*ReqTrace {
	if tk == nil {
		return nil
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return tk.recent.snapshot(max)
}

// Slow returns up to max retained slow/errored traces, newest first.
func (tk *ReqTracker) Slow(max int) []*ReqTrace {
	if tk == nil {
		return nil
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return tk.slowr.snapshot(max)
}

// Find returns the retained trace with the given ID, searching both rings
// (nil when evicted or never retained).
func (tk *ReqTracker) Find(id uint64) *ReqTrace {
	if tk == nil {
		return nil
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	for _, t := range tk.slowr.snapshot(0) {
		if t.ID == id {
			return t
		}
	}
	for _, t := range tk.recent.snapshot(0) {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// WriteReqChromeTrace exports one request's stage tree as Chrome
// trace-event JSON (openable in chrome://tracing or Perfetto): the whole
// request on the pipeline lane, each stage on the worker lane.
func WriteReqChromeTrace(w io.Writer, t *ReqTrace) error {
	tr := NewTrace()
	tr.Emit(Span{Name: t.Name + " " + FormatReqID(t.ID), TID: PipelineTID, Start: 0, Dur: t.Dur})
	for _, s := range t.Stages {
		tr.Emit(Span{Name: s.Name, TID: 0, Start: s.Offset, Dur: s.Dur})
	}
	return WriteChromeTrace(w, tr)
}
