// Package obs is the observability backbone of the pipeline: a lightweight
// span tracer with a zero-overhead no-op default, a process-wide registry of
// named atomic counters, and exporters for the collected data (Chrome
// trace-event JSON, Prometheus-style text exposition, and a human summary
// with per-kernel load-imbalance ratios).
//
// Design constraints, in order:
//
//  1. Disabled must be free. A nil *Trace is the no-op tracer: Start and
//     End on it perform no clock reads, no locking, and no allocations, so
//     every kernel can be instrumented unconditionally.
//  2. Per-thread visibility. Parallel kernels emit one span per worker
//     (captured inside the internal/concur schedulers), which is what makes
//     load imbalance — max over mean per-thread busy time — directly
//     measurable per kernel, in the spirit of the PKT and eager-k-truss
//     load-balancing studies.
//  3. Machine-readable. Everything exports losslessly; humans get the
//     summary, tools get chrome://tracing / Perfetto and Prometheus text.
package obs

import (
	"sync"
	"time"
)

// PipelineTID is the pseudo thread ID of whole-kernel (pipeline-level)
// spans, as opposed to per-worker spans whose TID is the worker index.
const PipelineTID = -1

// Span is one completed timed region.
type Span struct {
	// Name is the kernel (or sub-kernel) this span belongs to. Spans with
	// equal names aggregate into one kernel row in reports.
	Name string `json:"name"`
	// TID is the worker index for per-thread spans, PipelineTID for
	// whole-kernel spans.
	TID int `json:"tid"`
	// Start is the offset from the trace epoch.
	Start time.Duration `json:"start_ns"`
	// Dur is the span's wall duration.
	Dur time.Duration `json:"dur_ns"`
	// Items counts work units processed inside the span (loop iterations
	// claimed by the worker); 0 when unknown.
	Items int64 `json:"items,omitempty"`
}

// Trace collects spans from one pipeline run. The zero value is not useful;
// call NewTrace. A nil *Trace is the valid, zero-overhead no-op tracer —
// every method is nil-safe.
type Trace struct {
	mu    sync.Mutex
	epoch time.Time
	spans []Span
}

// NewTrace returns an enabled tracer whose epoch is now.
func NewTrace() *Trace {
	return &Trace{epoch: time.Now()}
}

// Enabled reports whether spans are actually recorded.
func (t *Trace) Enabled() bool { return t != nil }

// Region is an open span returned by Start/StartThread. It is a small value
// type so that the disabled path allocates nothing.
type Region struct {
	t     *Trace
	name  string
	tid   int
	start time.Time
}

// Start opens a pipeline-level span. On a nil tracer it returns an inert
// Region without reading the clock.
func (t *Trace) Start(name string) Region {
	if t == nil {
		return Region{}
	}
	return Region{t: t, name: name, tid: PipelineTID, start: time.Now()}
}

// StartThread opens a per-thread span for worker tid.
func (t *Trace) StartThread(name string, tid int) Region {
	if t == nil {
		return Region{}
	}
	return Region{t: t, name: name, tid: tid, start: time.Now()}
}

// End closes the region with no item count.
func (r Region) End() { r.EndItems(0) }

// EndItems closes the region recording the number of work units processed.
// Safe (and free) on the inert Region of a disabled tracer.
func (r Region) EndItems(items int64) {
	if r.t == nil {
		return
	}
	end := time.Now()
	r.t.mu.Lock()
	r.t.spans = append(r.t.spans, Span{
		Name:  r.name,
		TID:   r.tid,
		Start: r.start.Sub(r.t.epoch),
		Dur:   end.Sub(r.start),
		Items: items,
	})
	r.t.mu.Unlock()
}

// Emit appends an already-measured span — used to synthesize traces from
// externally recorded timings and to build deterministic test fixtures.
func (t *Trace) Emit(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans. Nil tracer returns nil.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Reset drops all recorded spans and restarts the epoch.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.epoch = time.Now()
	t.mu.Unlock()
}
