package olog

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{"": Text, "text": Text, "TEXT": Text, "json": JSON, " JSON ": JSON} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Fatal("ParseFormat must reject unknown formats")
	}
	if Text.String() != "text" || JSON.String() != "json" {
		t.Fatal("Format.String mismatch")
	}
}

func TestJSONLoggerSchema(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, JSON, slog.LevelInfo)
	l.Info("request",
		ReqID("req-42"), Vertex(7), K(4), Status(200),
		Duration(1500*time.Microsecond), CacheHit(true), Err(nil))
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if rec["request_id"] != "req-42" || rec["vertex"] != float64(7) || rec["k"] != float64(4) {
		t.Fatalf("identity fields wrong: %v", rec)
	}
	if rec["status"] != float64(200) || rec["cache_hit"] != true || rec["err"] != "" {
		t.Fatalf("outcome fields wrong: %v", rec)
	}
	if _, ok := rec["duration"]; !ok {
		t.Fatalf("duration missing: %v", rec)
	}
}

func TestTextLoggerAndErrAttr(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Text, slog.LevelInfo)
	l.Warn("slow request", ReqID("req-9"), Err(errors.New("pool saturated")))
	out := buf.String()
	for _, want := range []string{"request_id=req-9", `err="pool saturated"`, "slow request"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text log missing %q: %s", want, out)
		}
	}
}

func TestInitSetAndL(t *testing.T) {
	orig := L()
	defer Set(orig)
	var buf bytes.Buffer
	got := Init(&buf, JSON, slog.LevelDebug)
	if L() != got {
		t.Fatal("Init did not install the logger")
	}
	L().Debug("hello")
	if !strings.Contains(buf.String(), `"msg":"hello"`) {
		t.Fatalf("installed logger not used: %s", buf.String())
	}
	Set(nil)
	if L() == nil {
		t.Fatal("Set(nil) must fall back to a non-nil default")
	}
}
