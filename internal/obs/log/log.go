// Package olog is the thin structured-logging facade for the serving
// stack: a process-wide *slog.Logger behind an atomic pointer, a Format
// switch ("text" for humans at a terminal, "json" for log shippers), and
// canonical attribute helpers so every layer spells the shared keys —
// request_id, vertex, k, status, duration — the same way. Keeping the
// facade this thin means callers hold plain *slog.Logger values and the
// stdlib API stays fully available.
package olog

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
	"time"
)

// Format selects the output encoding of a handler.
type Format int

const (
	// Text emits logfmt-style key=value lines via slog.TextHandler.
	Text Format = iota
	// JSON emits one JSON object per line via slog.JSONHandler.
	JSON
)

func (f Format) String() string {
	if f == JSON {
		return "json"
	}
	return "text"
}

// ParseFormat maps a -log-format flag value onto a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "text":
		return Text, nil
	case "json":
		return JSON, nil
	default:
		return Text, fmt.Errorf("unknown log format %q (want text or json)", s)
	}
}

// New builds a logger writing to w in the given format at the given
// level. It does not touch the process-wide default.
func New(w io.Writer, format Format, level slog.Leveler) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if format == JSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// current holds the process-wide logger; loaded lock-free on every L().
var current atomic.Pointer[slog.Logger]

func init() {
	current.Store(slog.Default())
}

// Init installs a new process-wide logger (and returns it) — the one-call
// setup for cmd main functions: olog.Init(os.Stderr, format, slog.LevelInfo).
func Init(w io.Writer, format Format, level slog.Leveler) *slog.Logger {
	l := New(w, format, level)
	Set(l)
	return l
}

// Set replaces the process-wide logger.
func Set(l *slog.Logger) {
	if l == nil {
		l = slog.Default()
	}
	current.Store(l)
}

// L returns the process-wide logger. Never nil.
func L() *slog.Logger { return current.Load() }

// Canonical attribute constructors. Using these instead of ad-hoc
// slog.String calls keeps the key vocabulary identical across the server,
// the CLI, and the docs — the request_id here is the same "req-<n>" string
// /debug/requests reports, which is what makes logs and traces joinable.

// ReqID tags a record with the canonical request ID string ("req-<n>").
func ReqID(id string) slog.Attr { return slog.String("request_id", id) }

// Vertex tags the queried vertex.
func Vertex(v int32) slog.Attr { return slog.Int("vertex", int(v)) }

// K tags the trussness threshold of the query.
func K(k int32) slog.Attr { return slog.Int("k", int(k)) }

// Status tags the HTTP status code of the response.
func Status(code int) slog.Attr { return slog.Int("status", code) }

// Duration tags the request wall time.
func Duration(d time.Duration) slog.Attr { return slog.Duration("duration", d) }

// CacheHit tags whether the community cache served the query.
func CacheHit(hit bool) slog.Attr { return slog.Bool("cache_hit", hit) }

// Err tags an error; a nil error yields an empty-string attr so callers
// can pass it unconditionally.
func Err(err error) slog.Attr {
	if err == nil {
		return slog.String("err", "")
	}
	return slog.String("err", err.Error())
}
