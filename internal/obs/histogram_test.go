package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram("lat", "test latencies")
	h.Observe(0)                    // bucket 0
	h.Observe(1 * time.Nanosecond)  // bucket 1: [1,2)
	h.Observe(3 * time.Nanosecond)  // bucket 2: [2,4)
	h.Observe(1024 * time.Nanosecond) // bucket 11: [1024,2048)
	h.Observe(-5 * time.Second)     // clamped to 0 → bucket 0
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	for i, want := range map[int]uint64{0: 2, 1: 1, 2: 1, 11: 1} {
		if s.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.SumNS != 0+1+3+1024 {
		t.Fatalf("sum = %d ns, want 1028", s.SumNS)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("lat", "")
	// 90 observations near 1ms, 10 near 100ms: p50 must land in the 1ms
	// bucket, p99 in the 100ms bucket.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond + time.Duration(i)*time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 512*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want within the ~1ms bucket", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 64*time.Millisecond || p99 > 200*time.Millisecond {
		t.Fatalf("p99 = %v, want within the ~100ms bucket", p99)
	}
	if mean := s.Mean(); mean < 5*time.Millisecond || mean > 20*time.Millisecond {
		t.Fatalf("mean = %v, want ~11ms", mean)
	}
	sum := s.Summary()
	if sum.Count != 100 || sum.P50 > sum.P99 || sum.P99 > sum.P999 {
		t.Fatalf("summary not monotone: %+v", sum)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram should report zero quantiles and mean")
	}
	h := NewHistogram("one", "")
	h.Observe(5 * time.Millisecond)
	s := h.Snapshot()
	// 5ms lands in bucket [2^22, 2^23) ns = [4.19ms, 8.39ms).
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := s.Quantile(q)
		if got < 4*time.Millisecond || got > 9*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v, want inside the ~4–8.4ms bucket", q, got)
		}
	}
}

// TestHistogramConcurrentHammer drives 32 goroutines through shared
// histogram and gauge instances — the race-detector proof that the sharded
// atomic design is sound (run under `make race` / the ci race subset).
func TestHistogramConcurrentHammer(t *testing.T) {
	const goroutines = 32
	const perG = 2000
	h := NewHistogram("hammer", "")
	g := &Gauge{name: "hammer_gauge"}
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(w*perG+i) * time.Microsecond)
				g.Add(1)
				if i%64 == 0 {
					h.Snapshot()
					g.Value()
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != uint64(goroutines*perG) {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, goroutines*perG)
	}
	if g.Value() != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", g.Value(), goroutines*perG)
	}
}

// TestHistogramObserveZeroAllocs pins the always-on cost: recording a
// latency must not allocate.
func TestHistogramObserveZeroAllocs(t *testing.T) {
	h := NewHistogram("alloc", "")
	d := 3 * time.Millisecond
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(d)
		d += time.Microsecond
	})
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates: %.1f allocs/op", allocs)
	}
}

func TestGaugeSetAddValue(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pool_in_use", "slots in use")
	if again := r.Gauge("pool_in_use", "other help ignored"); again != g {
		t.Fatal("gauge registration is not idempotent")
	}
	g.Set(4)
	g.Add(2.5)
	g.Add(-1.5)
	if v := g.Value(); v != 5 {
		t.Fatalf("gauge value = %v, want 5", v)
	}
}

func TestRegistryGaugeAndHistogramSnapshots(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz_last", "").Set(9)
	r.Gauge("aa_first", "first").Set(1)
	r.RegisterCollector(func(emit func(GaugeValue)) {
		emit(GaugeValue{Name: "mm_collected", Value: 3})
	})
	gs := r.GaugeSnapshot()
	if len(gs) != 3 || gs[0].Name != "aa_first" || gs[1].Name != "mm_collected" || gs[2].Name != "zz_last" {
		t.Fatalf("gauge snapshot wrong: %+v", gs)
	}
	h := r.Histogram("lat", "latency")
	if again := r.Histogram("lat", "ignored"); again != h {
		t.Fatal("histogram registration is not idempotent")
	}
	h.Observe(time.Millisecond)
	r.Histogram("aaa", "empty but present")
	hs := r.HistogramSnapshots()
	if len(hs) != 2 || hs[0].Name != "aaa" || hs[1].Name != "lat" || hs[1].Count != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
}

func TestRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeCollector(r)
	got := map[string]float64{}
	for _, g := range r.GaugeSnapshot() {
		got[g.Name] = g.Value
	}
	if got["runtime_goroutines"] < 1 {
		t.Fatalf("runtime_goroutines = %v, want >= 1", got["runtime_goroutines"])
	}
	if got["runtime_heap_alloc_bytes"] <= 0 {
		t.Fatalf("runtime_heap_alloc_bytes = %v, want > 0", got["runtime_heap_alloc_bytes"])
	}
	for _, name := range []string{"runtime_gc_pause_total_seconds", "runtime_gc_cycles", "runtime_sys_bytes", "runtime_heap_objects", "runtime_next_gc_bytes"} {
		if _, ok := got[name]; !ok {
			t.Fatalf("runtime collector missing %s: %+v", name, got)
		}
	}
}
