package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free latency histogram with power-of-two log buckets:
// an observation of n nanoseconds lands in bucket bits.Len64(n), so bucket i
// covers [2^(i-1), 2^i) ns (bucket 0 holds exact zeros). 64 buckets cover
// every representable duration, resolution tracks magnitude (~2× relative
// error worst case, halved by in-bucket interpolation), and bucketing is a
// single bit-scan — no search, no float math, no branches on the hot path.
//
// Buckets are sharded: concurrent observers pick one of histNumShards bucket
// arrays by a multiplicative hash of the observed value, so bursts of
// similar-but-unequal latencies spread across cache lines instead of
// contending on one counter. Observe is wait-free (two atomic adds) and
// allocation-free, pinned by TestHistogramObserveZeroAllocs — cheap enough
// to leave always-on for every request.
type Histogram struct {
	name   string
	help   string
	shards [histNumShards]histShard
}

const (
	histNumBuckets = 64
	histNumShards  = 8
)

// histShard is one shard's bucket counters plus its share of the running
// sum. The trailing pad keeps adjacent shards' hot tails on distinct cache
// lines.
type histShard struct {
	counts [histNumBuckets]atomic.Uint64
	sum    atomic.Int64
	_      [56]byte
}

// NewHistogram returns an unregistered histogram — for harnesses that want
// a private distribution. Long-lived metrics should come from a Registry
// (Registry.Histogram / GetHistogram) so they appear in the exposition.
func NewHistogram(name, help string) *Histogram {
	return &Histogram{name: name, help: help}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Help returns the one-line description.
func (h *Histogram) Help() string { return h.help }

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	// Fibonacci-hash the value to a shard: adjacent magnitudes scatter, so
	// a latency burst does not serialize on one cache line.
	sh := &h.shards[(uint64(ns)*0x9E3779B97F4A7C15)>>(64-3)]
	sh.counts[b].Add(1)
	sh.sum.Add(ns)
}

// HistogramSnapshot is a consistent-enough copy of a histogram's state:
// per-bucket counts (non-cumulative, indexed by bits.Len64 of the value),
// the total count, and the sum of observed nanoseconds. Taken with plain
// atomic loads — observations racing the snapshot may or may not appear,
// which is the standard contract for scrape-time metric reads.
type HistogramSnapshot struct {
	Name   string
	Help   string
	Counts [histNumBuckets]uint64
	Count  int64
	SumNS  int64
}

// Snapshot reads the current distribution.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Name: h.name, Help: h.help}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := 0; b < histNumBuckets; b++ {
			c := sh.counts[b].Load()
			s.Counts[b] += c
			s.Count += int64(c)
		}
		s.SumNS += sh.sum.Load()
	}
	return s
}

// BucketUpperNS returns bucket i's exclusive upper bound in nanoseconds as
// a float (2^i; exact for every i, including 63 where int64 would overflow).
func BucketUpperNS(i int) float64 { return math.Ldexp(1, i) }

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution: the rank is located in the cumulative bucket counts and
// interpolated linearly inside the bucket's [2^(i-1), 2^i) span. With ~2×
// wide buckets the estimate is within a factor of two of the true value,
// and much closer in practice — latency mass concentrates in few buckets.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i := 0; i < histNumBuckets; i++ {
		c := float64(s.Counts[i])
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = math.Ldexp(1, i-1)
			}
			hi := math.Ldexp(1, i)
			frac := (rank - cum) / c
			return time.Duration(lo + frac*(hi-lo))
		}
		cum += c
	}
	return time.Duration(math.Ldexp(1, histNumBuckets-1))
}

// Mean returns the exact mean of the observed durations (the sum is kept
// exactly, unlike the bucketed quantiles).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// QuantileSummary is the standard latency digest of one histogram.
type QuantileSummary struct {
	Count int64
	Mean  time.Duration
	P50   time.Duration
	P90   time.Duration
	P95   time.Duration
	P99   time.Duration
	P999  time.Duration
}

// Summary computes the standard quantile digest from one snapshot.
func (s HistogramSnapshot) Summary() QuantileSummary {
	return QuantileSummary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
	}
}
