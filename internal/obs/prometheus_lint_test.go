package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fullFixtureRegistry exercises every metric kind plus the HELP-escaping
// edge cases: a backslash and an embedded newline in help text.
func fullFixtureRegistry() *Registry {
	r := NewRegistry()
	r.Counter("requests", "served requests").Add(12)
	r.Counter("tricky", "path C:\\tmp\nsecond line").Add(1)
	r.Gauge("pool_in_use", "slots busy").Set(3)
	r.Gauge("ratio", "a fractional gauge").Set(0.25)
	r.RegisterCollector(func(emit func(GaugeValue)) {
		emit(GaugeValue{Name: "collected", Help: "from a collector", Value: 7})
	})
	h := r.Histogram("request_latency", "request wall time")
	h.Observe(900 * time.Nanosecond)   // bucket 10
	h.Observe(900 * time.Nanosecond)   // bucket 10
	h.Observe(70 * time.Microsecond)   // bucket 17
	h.Observe(3 * time.Millisecond)    // bucket 22
	r.Histogram("empty_latency", "never observed")
	return r
}

// TestPrometheusFullGolden pins the complete exposition — counters,
// gauges, collector output, histograms with quantile digests, and kernel
// trace gauges — and lints every line against the text-format grammar.
func TestPrometheusFullGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, fullFixtureRegistry(), fixtureTrace()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP equitruss_tricky_total path C:\\\\tmp\\nsecond line",
		"# TYPE equitruss_pool_in_use gauge",
		"equitruss_pool_in_use 3",
		"equitruss_collected 7",
		"# TYPE equitruss_request_latency_seconds histogram",
		`equitruss_request_latency_seconds_bucket{le="+Inf"} 4`,
		"equitruss_request_latency_seconds_count 4",
		`equitruss_request_latency_quantile_seconds{q="0.99"}`,
		`equitruss_empty_latency_seconds_bucket{le="+Inf"} 0`,
		"# TYPE equitruss_kernel_seconds gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	lintExposition(t, out)
	checkGolden(t, "prometheus_full.golden", buf.Bytes())
}

// lintExposition validates the text exposition format version 0.0.4 line
// by line: comment grammar, sample grammar, TYPE-before-samples, no
// duplicate TYPE/HELP per family, sorted cumulative histogram buckets
// ending in +Inf with a count that matches.
func lintExposition(t *testing.T, out string) {
	t.Helper()
	typed := map[string]string{}  // family -> type
	helped := map[string]bool{}
	sampled := map[string]bool{} // family -> samples seen
	type bucketState struct {
		lastLE  float64
		lastCum uint64
		infSeen bool
	}
	buckets := map[string]*bucketState{}
	for ln, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if helped[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helped[name] = true
			// Escaped help must not contain a raw backslash outside \\ / \n.
			for i := 0; i < len(help); i++ {
				if help[i] == '\\' {
					if i+1 >= len(help) || (help[i+1] != '\\' && help[i+1] != 'n') {
						t.Fatalf("line %d: unescaped backslash in HELP: %q", ln+1, help)
					}
					i++
				}
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, typ)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if sampled[name] {
				t.Fatalf("line %d: TYPE for %s after its samples", ln+1, name)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		// Sample line: name[{labels}] value
		nameEnd := strings.IndexAny(line, "{ ")
		if nameEnd < 1 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		name := line[:nameEnd]
		rest := line[nameEnd:]
		if strings.HasPrefix(rest, "{") {
			close := strings.Index(rest, "} ")
			if close < 0 {
				t.Fatalf("line %d: unterminated label set %q", ln+1, line)
			}
			rest = rest[close+1:]
		}
		valStr := strings.TrimSpace(rest)
		if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, valStr, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && typed[base] == "histogram" {
				family = base
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("line %d: sample %s has no preceding TYPE", ln+1, name)
		}
		sampled[family] = true
		if typed[family] == "histogram" && strings.HasSuffix(name, "_bucket") {
			bs := buckets[family]
			if bs == nil {
				bs = &bucketState{lastLE: -1}
				buckets[family] = bs
			}
			le := extractLabel(t, line, "le")
			cum, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("line %d: non-integer bucket count %q", ln+1, valStr)
			}
			if cum < bs.lastCum {
				t.Fatalf("line %d: histogram %s buckets not cumulative", ln+1, family)
			}
			bs.lastCum = cum
			if le == "+Inf" {
				bs.infSeen = true
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil || f <= bs.lastLE {
					t.Fatalf("line %d: le=%q not ascending (prev %v)", ln+1, le, bs.lastLE)
				}
				bs.lastLE = f
			}
		}
		if strings.HasSuffix(name, "_count") && typed[family] == "histogram" {
			bs := buckets[family]
			if bs == nil || !bs.infSeen {
				t.Fatalf("line %d: histogram %s has no +Inf bucket before _count", ln+1, family)
			}
			cnt, _ := strconv.ParseUint(valStr, 10, 64)
			if cnt != bs.lastCum {
				t.Fatalf("line %d: histogram %s _count %d != +Inf bucket %d", ln+1, family, cnt, bs.lastCum)
			}
		}
	}
	for fam, typ := range typed {
		if typ == "histogram" {
			if bs := buckets[fam]; bs == nil || !bs.infSeen {
				t.Fatalf("histogram %s missing +Inf bucket", fam)
			}
		}
	}
}

func extractLabel(t *testing.T, line, key string) string {
	t.Helper()
	marker := key + `="`
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("sample %q missing label %s", line, key)
	}
	rest := line[i+len(marker):]
	j := strings.Index(rest, `"`)
	if j < 0 {
		t.Fatalf("sample %q has unterminated %s label", line, key)
	}
	return rest[:j]
}

// TestEscapeHelp pins the escaping rules directly.
func TestEscapeHelp(t *testing.T) {
	got := escapeHelp("a\\b\nc")
	if got != `a\\b\nc` {
		t.Fatalf("escapeHelp = %q", got)
	}
	if escapeHelp("plain") != "plain" {
		t.Fatal("plain help must be unchanged")
	}
}

// TestWriteGauges covers the standalone per-instance gauge writer.
func TestWriteGauges(t *testing.T) {
	var buf bytes.Buffer
	err := WriteGauges(&buf, []GaugeValue{
		{Name: "server_pool_in_use", Help: "busy slots", Value: 2},
		{Name: "server_cache_entries", Value: 17},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE equitruss_server_pool_in_use gauge",
		"equitruss_server_pool_in_use 2",
		"equitruss_server_cache_entries 17",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteGauges missing %q:\n%s", want, out)
		}
	}
	lintExposition(t, out)
}

// TestHistogramExpositionParses feeds a live histogram through the writer
// and re-checks the quantile digest appears with all four q labels.
func TestHistogramExpositionParses(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "x")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lintExposition(t, out)
	for _, q := range []string{"0.5", "0.9", "0.99", "0.999"} {
		if !strings.Contains(out, fmt.Sprintf("equitruss_lat_quantile_seconds{q=%q}", q)) {
			t.Fatalf("missing quantile %s:\n%s", q, out)
		}
	}
}
