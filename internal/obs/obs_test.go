package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureTrace is a deterministic trace shared by the report and exporter
// tests: one pipeline span per kernel plus a skewed per-thread distribution
// under SpNode (thread 1 does three times thread 0's work).
func fixtureTrace() *Trace {
	t := NewTrace()
	t.Emit(Span{Name: "Support", TID: PipelineTID, Start: 0, Dur: 4 * time.Millisecond})
	t.Emit(Span{Name: "SpNode", TID: PipelineTID, Start: 4 * time.Millisecond, Dur: 6 * time.Millisecond})
	t.Emit(Span{Name: "SpNode", TID: 0, Start: 4 * time.Millisecond, Dur: 2 * time.Millisecond, Items: 100})
	t.Emit(Span{Name: "SpNode", TID: 1, Start: 4 * time.Millisecond, Dur: 6 * time.Millisecond, Items: 300})
	t.Emit(Span{Name: "SpNode", TID: 0, Start: 7 * time.Millisecond, Dur: 1*time.Millisecond + 500*time.Microsecond, Items: 50})
	return t
}

func fixtureRegistry() *Registry {
	r := NewRegistry()
	r.Counter("spnode_sv_hook_rounds", "SV hook rounds").Add(7)
	r.Counter("smgraph_superedges_deduped", "duplicate superedges dropped").Add(42)
	r.Counter("never_fired", "a counter that stays zero")
	return r
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	r := tr.Start("X")
	r.End()
	r = tr.StartThread("X", 3)
	r.EndItems(10)
	tr.Emit(Span{Name: "X"})
	tr.Reset()
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace recorded spans")
	}
}

func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		r := tr.Start("kernel")
		r.End()
		r = tr.StartThread("kernel", 2)
		r.EndItems(123)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates: %.1f allocs/op", allocs)
	}
}

func TestTraceRecordsSpans(t *testing.T) {
	tr := NewTrace()
	r := tr.Start("A")
	r.End()
	r = tr.StartThread("A", 2)
	r.EndItems(9)
	if tr.Len() != 2 {
		t.Fatalf("got %d spans, want 2", tr.Len())
	}
	spans := tr.Spans()
	if spans[0].TID != PipelineTID || spans[1].TID != 2 || spans[1].Items != 9 {
		t.Fatalf("unexpected spans: %+v", spans)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset did not drop spans")
	}
}

func TestCounterRegistry(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a", "first")
	c2 := r.Counter("a", "second registration ignored")
	if c1 != c2 {
		t.Fatal("registration is not idempotent")
	}
	if c1.Help() != "first" {
		t.Fatalf("help overwritten: %q", c1.Help())
	}
	c1.Inc()
	c1.Add(4)
	c1.Add(-100) // ignored: counters are monotonic
	r.Counter("b", "").Add(2)
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[0].Value != 5 || snap[1].Value != 2 {
		t.Fatalf("bad snapshot: %+v", snap)
	}
	r.Reset()
	if c1.Value() != 0 {
		t.Fatal("Reset left a non-zero counter")
	}
}

func TestReportAggregation(t *testing.T) {
	rep := NewReport(fixtureTrace(), fixtureRegistry())
	if len(rep.Kernels) != 2 {
		t.Fatalf("got %d kernels, want 2: %+v", len(rep.Kernels), rep.Kernels)
	}
	// Pipeline order: Support starts first.
	if rep.Kernels[0].Name != "Support" || rep.Kernels[1].Name != "SpNode" {
		t.Fatalf("kernel order wrong: %s, %s", rep.Kernels[0].Name, rep.Kernels[1].Name)
	}
	sp := rep.Kernel("SpNode")
	if sp == nil {
		t.Fatal("SpNode missing")
	}
	if sp.Wall != 6*time.Millisecond {
		t.Fatalf("SpNode wall = %v, want 6ms", sp.Wall)
	}
	if len(sp.Threads) != 2 {
		t.Fatalf("SpNode threads = %d, want 2", len(sp.Threads))
	}
	// Thread 0: 2ms + 1.5ms = 3.5ms; thread 1: 6ms. Mean 4.75ms.
	if sp.Threads[0].Busy != 3500*time.Microsecond || sp.Threads[1].Busy != 6*time.Millisecond {
		t.Fatalf("per-thread busy wrong: %+v", sp.Threads)
	}
	if sp.Items != 450 {
		t.Fatalf("SpNode items = %d, want 450", sp.Items)
	}
	wantImb := float64(6*time.Millisecond) / float64(4750*time.Microsecond)
	if diff := sp.Imbalance - wantImb; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("imbalance = %f, want %f", sp.Imbalance, wantImb)
	}
	if sup := rep.Kernel("Support"); sup.Imbalance != 0 || len(sup.Threads) != 0 {
		t.Fatalf("Support should have no thread stats: %+v", sup)
	}
	if rep.Kernel("NoSuchKernel") != nil {
		t.Fatal("unknown kernel should be nil")
	}
	s := rep.String()
	for _, want := range []string{"SpNode", "imbalance", "spnode_sv_hook_rounds", "42"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "never_fired") {
		t.Fatalf("summary should omit zero counters:\n%s", s)
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureTrace()); err != nil {
		t.Fatal(err)
	}
	// The golden must also be valid JSON with the expected event shape.
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	// 2 metadata + 5 spans.
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7", len(doc.TraceEvents))
	}
	if doc.TraceEvents[2].Ph != "X" || doc.TraceEvents[2].Name != "Support" || doc.TraceEvents[2].PID != 1 {
		t.Fatalf("unexpected first span event: %+v", doc.TraceEvents[2])
	}
	checkGolden(t, "chrome_trace.golden", buf.Bytes())
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, fixtureRegistry(), fixtureTrace()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"equitruss_spnode_sv_hook_rounds_total 7",
		"equitruss_smgraph_superedges_deduped_total 42",
		"equitruss_never_fired_total 0",
		`equitruss_kernel_seconds{kernel="SpNode"} 0.006000000`,
		`equitruss_kernel_thread_busy_seconds{kernel="SpNode",tid="1"} 0.006000000`,
		`equitruss_kernel_items{kernel="SpNode"} 450`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	checkGolden(t, "prometheus.golden", buf.Bytes())
}

func TestPrometheusNilArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry and trace should write nothing, got:\n%s", buf.String())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	if got := sanitizeMetricName("a-b.c d/1"); got != "a_b_c_d_1" {
		t.Fatalf("sanitize = %q", got)
	}
}
