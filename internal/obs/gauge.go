package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Gauge is a named instantaneous value safe for concurrent use — the
// non-monotonic sibling of Counter, for levels that move both ways (pool
// occupancy, cache size, heap bytes). Stored as float64 bits in one atomic
// word: Set and Value are single atomic ops, Add is a CAS loop.
type Gauge struct {
	name string
	help string
	bits atomic.Uint64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Help returns the one-line description.
func (g *Gauge) Help() string { return g.help }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (either sign).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeValue is one gauge snapshot entry — also the emission unit of
// registered collectors.
type GaugeValue struct {
	Name  string  `json:"name"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// Collector is a callback that emits point-in-time gauge values when the
// registry is snapshotted — the hook for families whose values are derived
// on demand (runtime stats, pool occupancy) rather than maintained by
// explicit Set calls. Collectors run under the registry lock; keep them
// cheap and non-blocking.
type Collector func(emit func(GaugeValue))

// Gauge returns the gauge registered under name, creating it on first use.
// Like counters, the first registration of a name wins.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. The first registration of a name wins.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := NewHistogram(name, help)
	r.histograms[name] = h
	return h
}

// RegisterCollector adds a snapshot-time gauge source to the registry.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// GaugeSnapshot returns the current values of every registered gauge plus
// everything the registered collectors emit, sorted by name.
func (r *Registry) GaugeSnapshot() []GaugeValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GaugeValue, 0, len(r.gauges))
	for _, g := range r.gauges {
		out = append(out, GaugeValue{Name: g.name, Help: g.help, Value: g.Value()})
	}
	for _, c := range r.collectors {
		c(func(v GaugeValue) { out = append(out, v) })
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HistogramSnapshots returns a snapshot of every registered histogram,
// sorted by name.
func (r *Registry) HistogramSnapshots() []HistogramSnapshot {
	r.mu.Lock()
	hs := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	out := make([]HistogramSnapshot, len(hs))
	for i, h := range hs {
		out[i] = h.Snapshot()
	}
	return out
}

// GetGauge registers (or fetches) a gauge in the process-wide registry.
func GetGauge(name, help string) *Gauge {
	return defaultRegistry.Gauge(name, help)
}

// GetHistogram registers (or fetches) a histogram in the process-wide
// registry. Packages call this from var initializers so lookups never sit
// on a hot path.
func GetHistogram(name, help string) *Histogram {
	return defaultRegistry.Histogram(name, help)
}
