package obs

import (
	"runtime"
	"sync"
)

// RegisterRuntimeCollector adds process-level runtime gauges to the
// registry: goroutine count, heap size and object count, cumulative GC
// pause time, and GC cycle count. Values are read at snapshot (scrape)
// time — one ReadMemStats per exposition, nothing on any hot path.
func RegisterRuntimeCollector(r *Registry) {
	r.RegisterCollector(func(emit func(GaugeValue)) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		emit(GaugeValue{Name: "runtime_goroutines", Help: "live goroutines", Value: float64(runtime.NumGoroutine())})
		emit(GaugeValue{Name: "runtime_heap_alloc_bytes", Help: "bytes of allocated heap objects", Value: float64(ms.HeapAlloc)})
		emit(GaugeValue{Name: "runtime_heap_objects", Help: "live heap objects", Value: float64(ms.HeapObjects)})
		emit(GaugeValue{Name: "runtime_sys_bytes", Help: "bytes obtained from the OS", Value: float64(ms.Sys)})
		emit(GaugeValue{Name: "runtime_gc_pause_total_seconds", Help: "cumulative stop-the-world GC pause time", Value: float64(ms.PauseTotalNs) / 1e9})
		emit(GaugeValue{Name: "runtime_gc_cycles", Help: "completed GC cycles", Value: float64(ms.NumGC)})
		emit(GaugeValue{Name: "runtime_next_gc_bytes", Help: "heap size target of the next GC cycle", Value: float64(ms.NextGC)})
	})
}

var runtimeMetricsOnce sync.Once

// EnableRuntimeMetrics registers the runtime collector into the
// process-wide registry, once. The server calls this at construction so
// pure CLI builds never pay for (or expose) runtime gauges.
func EnableRuntimeMetrics() {
	runtimeMetricsOnce.Do(func() { RegisterRuntimeCollector(defaultRegistry) })
}
