package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// promNamespace prefixes every exposed metric name.
const promNamespace = "equitruss"

// WritePrometheus writes a Prometheus text-exposition (version 0.0.4)
// snapshot: every registered counter as a *_total counter, and — when a
// trace is supplied — per-kernel wall seconds, per-thread busy seconds,
// and the max/mean imbalance ratio as gauges. Either argument may be nil.
func WritePrometheus(w io.Writer, reg *Registry, t *Trace) error {
	bw := bufio.NewWriter(w)
	if reg != nil {
		for _, c := range reg.Snapshot() {
			name := promNamespace + "_" + sanitizeMetricName(c.Name) + "_total"
			if c.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", name, c.Help)
			}
			fmt.Fprintf(bw, "# TYPE %s counter\n", name)
			fmt.Fprintf(bw, "%s %d\n", name, c.Value)
		}
	}
	if t != nil {
		rep := NewReport(t, nil)
		writeKernelGauges(bw, rep)
	}
	return bw.Flush()
}

// WritePrometheusReport is WritePrometheus over an already-aggregated
// report (counters included in the report itself).
func WritePrometheusReport(w io.Writer, rep *Report) error {
	bw := bufio.NewWriter(w)
	for _, c := range rep.Counters {
		name := promNamespace + "_" + sanitizeMetricName(c.Name) + "_total"
		if c.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, c.Help)
		}
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		fmt.Fprintf(bw, "%s %d\n", name, c.Value)
	}
	writeKernelGauges(bw, rep)
	return bw.Flush()
}

func writeKernelGauges(bw *bufio.Writer, rep *Report) {
	if len(rep.Kernels) == 0 {
		return
	}
	wall := promNamespace + "_kernel_seconds"
	fmt.Fprintf(bw, "# HELP %s wall time of each pipeline kernel\n", wall)
	fmt.Fprintf(bw, "# TYPE %s gauge\n", wall)
	for _, k := range rep.Kernels {
		if k.Wall > 0 {
			fmt.Fprintf(bw, "%s{kernel=%q} %.9f\n", wall, k.Name, k.Wall.Seconds())
		}
	}
	busy := promNamespace + "_kernel_thread_busy_seconds"
	fmt.Fprintf(bw, "# HELP %s cumulative per-worker busy time inside each kernel\n", busy)
	fmt.Fprintf(bw, "# TYPE %s gauge\n", busy)
	for _, k := range rep.Kernels {
		for _, ts := range k.Threads {
			fmt.Fprintf(bw, "%s{kernel=%q,tid=\"%d\"} %.9f\n", busy, k.Name, ts.TID, ts.Busy.Seconds())
		}
	}
	imb := promNamespace + "_kernel_imbalance_ratio"
	fmt.Fprintf(bw, "# HELP %s max over mean per-worker busy time (1.0 = perfectly balanced)\n", imb)
	fmt.Fprintf(bw, "# TYPE %s gauge\n", imb)
	for _, k := range rep.Kernels {
		if k.Imbalance > 0 {
			fmt.Fprintf(bw, "%s{kernel=%q} %.6f\n", imb, k.Name, k.Imbalance)
		}
	}
	items := promNamespace + "_kernel_items"
	fmt.Fprintf(bw, "# HELP %s work units processed by each kernel\n", items)
	fmt.Fprintf(bw, "# TYPE %s gauge\n", items)
	for _, k := range rep.Kernels {
		if k.Items > 0 {
			fmt.Fprintf(bw, "%s{kernel=%q} %d\n", items, k.Name, k.Items)
		}
	}
}

// sanitizeMetricName maps a counter name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_].
func sanitizeMetricName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
