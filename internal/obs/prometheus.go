package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promNamespace prefixes every exposed metric name.
const promNamespace = "equitruss"

// WritePrometheus writes a Prometheus text-exposition (version 0.0.4)
// snapshot of a registry: every counter as a *_total counter, every gauge
// (explicit and collector-emitted) as a gauge, every histogram as a
// *_seconds histogram family plus a *_quantile_seconds gauge digest — and,
// when a trace is supplied, per-kernel wall seconds, per-thread busy
// seconds, and the max/mean imbalance ratio as gauges. Either argument may
// be nil.
func WritePrometheus(w io.Writer, reg *Registry, t *Trace) error {
	bw := bufio.NewWriter(w)
	if reg != nil {
		writePromCounters(bw, reg.Snapshot())
		writePromGauges(bw, reg.GaugeSnapshot())
		for _, h := range reg.HistogramSnapshots() {
			writePromHistogram(bw, h)
		}
	}
	if t != nil {
		rep := NewReport(t, nil)
		writeKernelGauges(bw, rep)
	}
	return bw.Flush()
}

// WritePrometheusReport is WritePrometheus over an already-aggregated
// report (counters included in the report itself).
func WritePrometheusReport(w io.Writer, rep *Report) error {
	bw := bufio.NewWriter(w)
	writePromCounters(bw, rep.Counters)
	writeKernelGauges(bw, rep)
	return bw.Flush()
}

// WriteGauges writes one gauge family per value in the Prometheus text
// format — the hook for per-instance gauges (a server's pool occupancy,
// cache size) that live outside any shared registry.
func WriteGauges(w io.Writer, gauges []GaugeValue) error {
	bw := bufio.NewWriter(w)
	writePromGauges(bw, gauges)
	return bw.Flush()
}

func writePromCounters(bw *bufio.Writer, counters []CounterValue) {
	for _, c := range counters {
		name := promNamespace + "_" + sanitizeMetricName(c.Name) + "_total"
		if c.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(c.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		fmt.Fprintf(bw, "%s %d\n", name, c.Value)
	}
}

func writePromGauges(bw *bufio.Writer, gauges []GaugeValue) {
	for _, g := range gauges {
		name := promNamespace + "_" + sanitizeMetricName(g.Name)
		if g.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(g.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
		fmt.Fprintf(bw, "%s %s\n", name, formatPromFloat(g.Value))
	}
}

// writePromHistogram writes one histogram family: cumulative le buckets in
// seconds (the power-of-two nanosecond bounds converted), _sum and _count,
// then a compact quantile digest as a separate gauge family — Prometheus
// forbids mixing histogram and summary samples under one name, so the
// precomputed quantiles ride under <name>_quantile_seconds{q="..."}.
func writePromHistogram(bw *bufio.Writer, h HistogramSnapshot) {
	name := promNamespace + "_" + sanitizeMetricName(h.Name) + "_seconds"
	if h.Help != "" {
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(h.Help))
	}
	fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
	last := -1
	for i, c := range h.Counts {
		if c > 0 {
			last = i
		}
	}
	cum := uint64(0)
	for i := 0; i <= last; i++ {
		cum += h.Counts[i]
		le := BucketUpperNS(i) / 1e9
		fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, formatPromFloat(le), cum)
	}
	fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(bw, "%s_sum %s\n", name, formatPromFloat(float64(h.SumNS)/1e9))
	fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	if h.Count == 0 {
		return
	}
	qname := promNamespace + "_" + sanitizeMetricName(h.Name) + "_quantile_seconds"
	fmt.Fprintf(bw, "# HELP %s estimated latency quantiles of %s\n", qname, name)
	fmt.Fprintf(bw, "# TYPE %s gauge\n", qname)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		fmt.Fprintf(bw, "%s{q=%q} %s\n", qname, formatPromFloat(q), formatPromFloat(h.Quantile(q).Seconds()))
	}
}

func writeKernelGauges(bw *bufio.Writer, rep *Report) {
	if len(rep.Kernels) == 0 {
		return
	}
	wall := promNamespace + "_kernel_seconds"
	fmt.Fprintf(bw, "# HELP %s wall time of each pipeline kernel\n", wall)
	fmt.Fprintf(bw, "# TYPE %s gauge\n", wall)
	for _, k := range rep.Kernels {
		if k.Wall > 0 {
			fmt.Fprintf(bw, "%s{kernel=%q} %.9f\n", wall, k.Name, k.Wall.Seconds())
		}
	}
	busy := promNamespace + "_kernel_thread_busy_seconds"
	fmt.Fprintf(bw, "# HELP %s cumulative per-worker busy time inside each kernel\n", busy)
	fmt.Fprintf(bw, "# TYPE %s gauge\n", busy)
	for _, k := range rep.Kernels {
		for _, ts := range k.Threads {
			fmt.Fprintf(bw, "%s{kernel=%q,tid=\"%d\"} %.9f\n", busy, k.Name, ts.TID, ts.Busy.Seconds())
		}
	}
	imb := promNamespace + "_kernel_imbalance_ratio"
	fmt.Fprintf(bw, "# HELP %s max over mean per-worker busy time (1.0 = perfectly balanced)\n", imb)
	fmt.Fprintf(bw, "# TYPE %s gauge\n", imb)
	for _, k := range rep.Kernels {
		if k.Imbalance > 0 {
			fmt.Fprintf(bw, "%s{kernel=%q} %.6f\n", imb, k.Name, k.Imbalance)
		}
	}
	items := promNamespace + "_kernel_items"
	fmt.Fprintf(bw, "# HELP %s work units processed by each kernel\n", items)
	fmt.Fprintf(bw, "# TYPE %s gauge\n", items)
	for _, k := range rep.Kernels {
		if k.Items > 0 {
			fmt.Fprintf(bw, "%s{kernel=%q} %d\n", items, k.Name, k.Items)
		}
	}
}

// formatPromFloat renders a float sample value or le bound compactly
// (shortest round-trip form, exponent notation only when shorter).
func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// helpEscaper applies the exposition-format HELP escaping rules: backslash
// and line feed must be escaped so a multi-line help string cannot break
// the line-oriented format.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// sanitizeMetricName maps a counter name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_].
func sanitizeMetricName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
