package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Chrome trace-event pids: pipeline-level spans and per-worker spans render
// as two separate process lanes in chrome://tracing / Perfetto, so the
// kernel timeline sits above the worker timelines it fans out into.
const (
	chromePipelinePID = 1
	chromeWorkersPID  = 2
)

// WriteChromeTrace writes the trace in the Chrome trace-event JSON format
// (the "traceEvents" object form), loadable in chrome://tracing and
// Perfetto. Pipeline-level spans appear under the "pipeline" process;
// per-thread spans appear under the "workers" process keyed by worker ID.
// Timestamps are microseconds from the trace epoch. Events are emitted as
// complete ("X") events in recorded order.
func WriteChromeTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	bw.WriteString(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"pipeline"}}`)
	bw.WriteString(",\n")
	bw.WriteString(`{"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"workers"}}`)
	for _, s := range t.Spans() {
		pid, tid := chromePipelinePID, 0
		if s.TID != PipelineTID {
			pid, tid = chromeWorkersPID, s.TID
		}
		bw.WriteString(",\n")
		fmt.Fprintf(bw, `{"name":%s,"cat":%q,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d`,
			strconv.Quote(s.Name), spanCategory(s), usec(s.Start), usec(s.Dur), pid, tid)
		if s.Items > 0 {
			fmt.Fprintf(bw, `,"args":{"items":%d}`, s.Items)
		}
		bw.WriteString("}")
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

func spanCategory(s Span) string {
	if s.TID == PipelineTID {
		return "kernel"
	}
	return "thread"
}

// usec renders a duration as decimal microseconds with nanosecond
// precision, without float formatting artifacts.
func usec(d time.Duration) string {
	ns := int64(d)
	sign := ""
	if ns < 0 {
		sign, ns = "-", -ns
	}
	if ns%1000 == 0 {
		return sign + strconv.FormatInt(ns/1000, 10)
	}
	return fmt.Sprintf("%s%d.%03d", sign, ns/1000, ns%1000)
}
