package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ThreadStat is one worker's cumulative contribution to a kernel: the sum
// of all its per-thread spans for that kernel name.
type ThreadStat struct {
	TID   int           `json:"tid"`
	Busy  time.Duration `json:"busy_ns"`
	Items int64         `json:"items,omitempty"`
}

// KernelStats aggregates every span sharing one name: the pipeline-level
// wall time plus the per-thread busy-time distribution that exposes load
// imbalance.
type KernelStats struct {
	Name string `json:"name"`
	// Wall is the summed duration of the kernel's pipeline-level spans
	// (zero if the kernel emitted only per-thread spans).
	Wall time.Duration `json:"wall_ns"`
	// Items is the total work units across all threads.
	Items int64 `json:"items,omitempty"`
	// Threads holds cumulative busy time per worker, sorted by TID.
	Threads []ThreadStat `json:"threads,omitempty"`
	// MaxThread and MeanThread summarize the busy-time distribution.
	MaxThread  time.Duration `json:"max_thread_ns,omitempty"`
	MeanThread time.Duration `json:"mean_thread_ns,omitempty"`
	// Imbalance is MaxThread/MeanThread — 1.0 is a perfectly balanced
	// kernel, and the gap above 1.0 is wall time lost to skew. Zero when
	// the kernel recorded no per-thread spans.
	Imbalance float64 `json:"imbalance,omitempty"`
}

// Report is the aggregated view of one run: kernels in pipeline order with
// their imbalance ratios, plus a snapshot of the counter registry.
type Report struct {
	Kernels  []KernelStats  `json:"kernels"`
	Counters []CounterValue `json:"counters,omitempty"`
}

// NewReport aggregates a trace's spans per kernel name and snapshots reg
// (which may be nil to omit counters). Kernels are ordered by the start of
// their earliest span, i.e. pipeline order.
func NewReport(t *Trace, reg *Registry) *Report {
	r := &Report{}
	if reg != nil {
		r.Counters = reg.Snapshot()
	}
	spans := t.Spans()
	type agg struct {
		first   time.Duration
		wall    time.Duration
		items   int64
		byTID   map[int]*ThreadStat
		order   int
		hasWall bool
	}
	byName := make(map[string]*agg)
	for _, s := range spans {
		a, ok := byName[s.Name]
		if !ok {
			a = &agg{first: s.Start, byTID: make(map[int]*ThreadStat), order: len(byName)}
			byName[s.Name] = a
		}
		if s.Start < a.first {
			a.first = s.Start
		}
		a.items += s.Items
		if s.TID == PipelineTID {
			a.wall += s.Dur
			a.hasWall = true
			continue
		}
		ts, ok := a.byTID[s.TID]
		if !ok {
			ts = &ThreadStat{TID: s.TID}
			a.byTID[s.TID] = ts
		}
		ts.Busy += s.Dur
		ts.Items += s.Items
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := byName[names[i]], byName[names[j]]
		if a.first != b.first {
			return a.first < b.first
		}
		return a.order < b.order
	})
	for _, name := range names {
		a := byName[name]
		ks := KernelStats{Name: name, Wall: a.wall, Items: a.items}
		for _, ts := range a.byTID {
			ks.Threads = append(ks.Threads, *ts)
		}
		sort.Slice(ks.Threads, func(i, j int) bool { return ks.Threads[i].TID < ks.Threads[j].TID })
		if len(ks.Threads) > 0 {
			var sum time.Duration
			for _, ts := range ks.Threads {
				sum += ts.Busy
				if ts.Busy > ks.MaxThread {
					ks.MaxThread = ts.Busy
				}
			}
			ks.MeanThread = sum / time.Duration(len(ks.Threads))
			if ks.MeanThread > 0 {
				ks.Imbalance = float64(ks.MaxThread) / float64(ks.MeanThread)
			}
		}
		r.Kernels = append(r.Kernels, ks)
	}
	return r
}

// Kernel returns the stats for a kernel name, or nil if it never ran.
func (r *Report) Kernel(name string) *KernelStats {
	for i := range r.Kernels {
		if r.Kernels[i].Name == name {
			return &r.Kernels[i]
		}
	}
	return nil
}

// String renders the human summary: one row per kernel with wall time,
// thread count, max/mean thread busy time, and the imbalance ratio,
// followed by the non-zero counters.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %8s %12s %12s %10s\n",
		"kernel", "wall", "threads", "max-thread", "mean-thread", "imbalance")
	for _, k := range r.Kernels {
		wall := "-"
		if k.Wall > 0 {
			wall = k.Wall.Round(time.Microsecond).String()
		}
		if len(k.Threads) == 0 {
			fmt.Fprintf(&b, "%-24s %12s %8s %12s %12s %10s\n", k.Name, wall, "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-24s %12s %8d %12s %12s %10.2f\n",
			k.Name, wall, len(k.Threads),
			k.MaxThread.Round(time.Microsecond), k.MeanThread.Round(time.Microsecond),
			k.Imbalance)
	}
	var nonzero []CounterValue
	for _, c := range r.Counters {
		if c.Value != 0 {
			nonzero = append(nonzero, c)
		}
	}
	if len(nonzero) > 0 {
		b.WriteString("counters:\n")
		for _, c := range nonzero {
			fmt.Fprintf(&b, "  %-36s %d\n", c.Name, c.Value)
		}
	}
	return b.String()
}
