package metrics

import (
	"math"
	"testing"

	"equitruss/internal/gen"
	"equitruss/internal/graph"
)

func verts(n int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDensity(t *testing.T) {
	k5 := gen.Clique(5)
	if d := Density(k5, verts(5)); !almost(d, 1.0) {
		t.Fatalf("K5 density = %f", d)
	}
	p4 := gen.Path(4)
	if d := Density(p4, verts(4)); !almost(d, 0.5) {
		t.Fatalf("P4 density = %f, want 0.5", d)
	}
	if d := Density(k5, []int32{0}); d != 0 {
		t.Fatalf("singleton density = %f", d)
	}
}

func TestConductance(t *testing.T) {
	// Two K4s joined by one bridge: the K4 side has cut 1, volume 13.
	g := gen.BridgedCliques(4)
	side := []int32{0, 1, 2, 3}
	want := 1.0 / 13.0
	if c := Conductance(g, side); !almost(c, want) {
		t.Fatalf("conductance = %f, want %f", c, want)
	}
	// Whole graph: no cut.
	if c := Conductance(g, verts(8)); c != 0 {
		t.Fatalf("whole-graph conductance = %f", c)
	}
}

func TestMinInternalDegree(t *testing.T) {
	k5 := gen.Clique(5)
	if d := MinInternalDegree(k5, verts(5)); d != 4 {
		t.Fatalf("K5 min degree = %d", d)
	}
	if d := MinInternalDegree(k5, []int32{0, 1, 2}); d != 2 {
		t.Fatalf("K3 subset min degree = %d", d)
	}
	if d := MinInternalDegree(k5, nil); d != 0 {
		t.Fatalf("empty min degree = %d", d)
	}
}

func TestAverageClustering(t *testing.T) {
	k4 := gen.Clique(4)
	if c := AverageClustering(k4, verts(4)); !almost(c, 1.0) {
		t.Fatalf("K4 clustering = %f", c)
	}
	star, _ := graph.FromEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}}, 0)
	if c := AverageClustering(star, verts(4)); c != 0 {
		t.Fatalf("star clustering = %f", c)
	}
}

func TestGlobalClustering(t *testing.T) {
	if c := GlobalClustering(gen.Clique(5)); !almost(c, 1.0) {
		t.Fatalf("K5 transitivity = %f", c)
	}
	if c := GlobalClustering(gen.Path(5)); c != 0 {
		t.Fatalf("path transitivity = %f", c)
	}
	// Planted communities must be far more clustered than an ER graph of
	// the same size — the property that makes truss methods work.
	planted := gen.PlantedPartition(10, 8, 0.8, 1.0, 3)
	er := gen.ErdosRenyi(planted.NumVertices(), planted.NumEdges(), 3)
	if GlobalClustering(planted) < 4*GlobalClustering(er) {
		t.Fatalf("planted %f not ≫ er %f", GlobalClustering(planted), GlobalClustering(er))
	}
}

func TestEvaluateReport(t *testing.T) {
	g := gen.Clique(6)
	r := Evaluate(g, verts(6))
	if r.Vertices != 6 || r.Edges != 15 || !almost(r.Density, 1.0) ||
		r.MinInternalDegree != 5 || !almost(r.AvgClustering, 1.0) || r.Conductance != 0 {
		t.Fatalf("report = %+v", r)
	}
}

// TestTrussBeatsCore reproduces the motivation: a k-truss community is
// denser than the k-core containing it. Attach pendant triangles to a
// clique: the 3-core absorbs the sparse fringe, the 4-truss does not.
func TestTrussBeatsCore(t *testing.T) {
	var edges []graph.Edge
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	// Fringe: cycle of triangles around the clique, all degree 3+ but
	// trussness only 3.
	for i := int32(0); i < 6; i++ {
		a := 5 + 2*i
		b := 5 + 2*i + 1
		c := 5 + (2*i+2)%12
		edges = append(edges, graph.Edge{U: a, V: b}, graph.Edge{U: b, V: c}, graph.Edge{U: a, V: c})
	}
	g, err := graph.FromEdgeList(edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	clique := verts(5)
	everything := verts(g.NumVertices())
	if Density(g, clique) <= Density(g, everything) {
		t.Fatal("clique community not denser than the blob")
	}
}
