// Package metrics computes the cohesion statistics used to argue for
// k-truss communities over k-core and clique alternatives (paper §1–2):
// density, conductance, average clustering, and minimum internal degree of
// a vertex set or edge-set community.
package metrics

import (
	"sort"

	"equitruss/internal/graph"
)

// Density returns |E(S)| / (|S|·(|S|−1)/2) for vertex set S: 1.0 for a
// clique, → 0 for sparse sets. Sets smaller than 2 have density 0.
func Density(g *graph.Graph, vertices []int32) float64 {
	n := int64(len(vertices))
	if n < 2 {
		return 0
	}
	internal := internalEdges(g, vertices)
	return float64(internal) / (float64(n) * float64(n-1) / 2)
}

// internalEdges counts edges with both endpoints in the set.
func internalEdges(g *graph.Graph, vertices []int32) int64 {
	in := memberSet(vertices)
	var count int64
	for _, v := range vertices {
		for _, w := range g.Neighbors(v) {
			if w > v && in[w] {
				count++
			}
		}
	}
	return count
}

func memberSet(vertices []int32) map[int32]bool {
	in := make(map[int32]bool, len(vertices))
	for _, v := range vertices {
		in[v] = true
	}
	return in
}

// Conductance returns cut(S) / min(vol(S), vol(V∖S)): low conductance
// means a well-separated community. Returns 0 for empty or full sets with
// zero volume on either side.
func Conductance(g *graph.Graph, vertices []int32) float64 {
	in := memberSet(vertices)
	var cut, volIn int64
	for _, v := range vertices {
		for _, w := range g.Neighbors(v) {
			volIn++
			if !in[w] {
				cut++
			}
		}
	}
	volOut := 2*g.NumEdges() - volIn
	den := volIn
	if volOut < den {
		den = volOut
	}
	if den == 0 {
		return 0
	}
	return float64(cut) / float64(den)
}

// MinInternalDegree returns the smallest number of in-set neighbors over
// the set's members — the k-core style cohesion floor (a k-truss community
// guarantees at least k−1).
func MinInternalDegree(g *graph.Graph, vertices []int32) int32 {
	if len(vertices) == 0 {
		return 0
	}
	in := memberSet(vertices)
	min := int32(-1)
	for _, v := range vertices {
		var d int32
		for _, w := range g.Neighbors(v) {
			if in[w] {
				d++
			}
		}
		if min < 0 || d < min {
			min = d
		}
	}
	return min
}

// AverageClustering returns the mean local clustering coefficient over the
// set's members (neighborhoods restricted to the set).
func AverageClustering(g *graph.Graph, vertices []int32) float64 {
	if len(vertices) == 0 {
		return 0
	}
	in := memberSet(vertices)
	var total float64
	for _, v := range vertices {
		var nbrs []int32
		for _, w := range g.Neighbors(v) {
			if in[w] {
				nbrs = append(nbrs, w)
			}
		}
		d := len(nbrs)
		if d < 2 {
			continue
		}
		var closed int
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(nbrs[i], nbrs[j]) {
					closed++
				}
			}
		}
		total += float64(closed) / (float64(d) * float64(d-1) / 2)
	}
	return total / float64(len(vertices))
}

// GlobalClustering returns the graph's transitivity: 3·triangles / paths
// of length two.
func GlobalClustering(g *graph.Graph) float64 {
	var wedges, closedX3 int64
	for v := int32(0); v < g.NumVertices(); v++ {
		d := int64(g.Degree(v))
		wedges += d * (d - 1) / 2
	}
	for eid := int32(0); eid < int32(g.NumEdges()); eid++ {
		e := g.Edge(eid)
		closedX3 += int64(g.CommonNeighborCount(e.U, e.V))
	}
	if wedges == 0 {
		return 0
	}
	return float64(closedX3) / float64(wedges)
}

// Report bundles the per-community metrics for presentation.
type Report struct {
	Vertices          int
	Edges             int64
	Density           float64
	Conductance       float64
	MinInternalDegree int32
	AvgClustering     float64
}

// Evaluate computes the full report for a vertex set.
func Evaluate(g *graph.Graph, vertices []int32) Report {
	sorted := append([]int32(nil), vertices...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return Report{
		Vertices:          len(sorted),
		Edges:             internalEdges(g, sorted),
		Density:           Density(g, sorted),
		Conductance:       Conductance(g, sorted),
		MinInternalDegree: MinInternalDegree(g, sorted),
		AvgClustering:     AverageClustering(g, sorted),
	}
}
