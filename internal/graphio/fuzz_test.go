package graphio

import (
	"bytes"
	"strings"
	"testing"

	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// FuzzReadEdgeList feeds arbitrary text to the edge-list parser: it must
// never panic, and any successfully parsed graph must round-trip through
// the writer.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n3 4 junk\n")
	f.Add("a b\n")
	f.Add("-1 5\n")
	f.Add("99999999999 1\n")
	f.Add("0 1 2 3 4\n1\t2\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read of written graph: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edges: %d vs %d", g2.NumEdges(), g.NumEdges())
		}
	})
}

// FuzzReadBinaryIndex throws mutated bytes at the binary index reader: it
// must reject or succeed without panicking or huge allocations, and any
// accepted index must be safe to traverse — the reader's structural
// validation is what stands between untrusted bytes and a panic deep
// inside a community query.
func FuzzReadBinaryIndex(f *testing.F) {
	f.Add([]byte{0x49, 0x54, 0x51, 0x45, 1, 0, 0, 0})
	f.Add([]byte("garbage"))
	// Seed with real serialized indexes so the mutator explores the
	// accepted formats' neighborhoods, not just broken headers: the current
	// v2 stream, the legacy v1 stream, and v2 streams with a flipped byte
	// inside each checksum field (header CRC, a section CRC, the trailer's
	// file CRC) — the paths where the reader must reject via checksum
	// verification rather than structural validation.
	{
		g := gen.PaperFigure3()
		sup := triangle.Supports(g, 1)
		tau, _ := truss.DecomposeSerial(g, sup)
		sg, _ := core.Build(g, tau, core.VariantCOptimal, 1)
		var buf bytes.Buffer
		if err := WriteBinaryIndex(&buf, sg); err != nil {
			f.Fatal(err)
		}
		v2 := buf.Bytes()
		f.Add(bytes.Clone(v2))
		// Header CRC field sits right after magic+version (8) + sizes (32).
		for _, pos := range []int{40, 44, len(v2) - 1, len(v2) - 5} {
			flipped := bytes.Clone(v2)
			flipped[pos] ^= 0xA5
			f.Add(flipped)
		}
		var v1 bytes.Buffer
		if err := writeBinaryIndexV1(&v1, sg); err != nil {
			f.Fatal(err)
		}
		f.Add(v1.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Guard against absurd size prefixes exploding allocations: the
		// reader validates sizes against negativity; cap input length so
		// even accepted sizes stay bounded by the stream.
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		sg, err := ReadBinaryIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: every traversal a query performs must stay in bounds.
		for s := int32(0); s < sg.NumSupernodes(); s++ {
			for _, e := range sg.SupernodeEdges(s) {
				_ = sg.Tau[e]
			}
			for _, nb := range sg.SupernodeNeighbors(s) {
				_ = sg.K[nb]
			}
		}
		for _, sn := range sg.EdgeToSN {
			if sn != core.NoSupernode {
				_ = sg.K[sn]
			}
		}
		// And it must survive a write/read round trip unchanged in shape.
		var buf bytes.Buffer
		if err := WriteBinaryIndex(&buf, sg); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		sg2, err := ReadBinaryIndex(&buf)
		if err != nil {
			t.Fatalf("re-read of written index: %v", err)
		}
		if sg2.NumSupernodes() != sg.NumSupernodes() || len(sg2.Tau) != len(sg.Tau) {
			t.Fatalf("round trip changed shape: %v vs %v", sg2, sg)
		}
	})
}

// FuzzReadV3Index throws mutated bytes at the v3 stream decoder: like
// FuzzReadBinaryIndex, it must reject or accept without panicking, and an
// accepted index must be traversal-safe. Seeded from a real v3 file plus
// variants with a byte flipped in the header CRC, a section CRC slot, the
// payload, and the padding — the regions the decoder rejects through
// different checks (header CRC, section CRC, zero-padding).
func FuzzReadV3Index(f *testing.F) {
	g := gen.PaperFigure3()
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 1)
	var buf bytes.Buffer
	if err := WriteBinaryIndexV3(&buf, sg); err != nil {
		f.Fatal(err)
	}
	v3 := buf.Bytes()
	f.Add(bytes.Clone(v3))
	for _, pos := range []int{0, 4, 16, 48, v3HeaderCRCOff, 240, v3HeaderSize,
		v3HeaderSize + 60, len(v3) - 1} {
		flipped := bytes.Clone(v3)
		flipped[pos] ^= 0xA5
		f.Add(flipped)
	}
	f.Add(v3[:v3HeaderSize])
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		sg, err := ReadBinaryIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		for s := int32(0); s < sg.NumSupernodes(); s++ {
			for _, e := range sg.SupernodeEdges(s) {
				_ = sg.Tau[e]
			}
			for _, nb := range sg.SupernodeNeighbors(s) {
				_ = sg.K[nb]
			}
		}
		// An accepted v3 stream must round-trip through the v3 writer.
		var buf bytes.Buffer
		if err := WriteBinaryIndexV3(&buf, sg); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		sg2, err := ReadBinaryIndex(&buf)
		if err != nil {
			t.Fatalf("re-read of written index: %v", err)
		}
		if sg2.NumSupernodes() != sg.NumSupernodes() || len(sg2.Tau) != len(sg.Tau) {
			t.Fatalf("round trip changed shape: %v vs %v", sg2, sg)
		}
	})
}
