package graphio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"equitruss/internal/core"
	"equitruss/internal/faults"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// buildTestIndex builds a real summary graph for serialization tests.
func buildTestIndex(t testing.TB, g *graph.Graph) *core.SummaryGraph {
	t.Helper()
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 1)
	return sg
}

// writeV3Temp writes sg as a v3 file and returns its path and bytes.
func writeV3Temp(t testing.TB, sg *core.SummaryGraph) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.v3")
	if err := WriteBinaryIndexFileV3(path, sg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func TestV3RoundTripStream(t *testing.T) {
	g := gen.PaperFigure3()
	sg := buildTestIndex(t, g)
	var buf bytes.Buffer
	if err := WriteBinaryIndexV3(&buf, sg); err != nil {
		t.Fatal(err)
	}
	if n := buf.Len(); n%v3Align != 0 {
		t.Fatalf("v3 stream length %d not %d-aligned", n, v3Align)
	}
	sg2, err := ReadBinaryIndex(&buf) // auto-detects v3
	if err != nil {
		t.Fatal(err)
	}
	if err := sg2.Validate(g); err != nil {
		t.Fatalf("round-tripped index invalid: %v", err)
	}
	if sg.Canonical(g) != sg2.Canonical(g) {
		t.Fatal("v3 stream round trip changed the index")
	}
}

// TestV3MmapMatchesStream is the load-path differential: the zero-copy
// mmap load (both verify modes) and the portable stream decode must produce
// identical indexes, across several graph shapes including empty and
// near-empty summary graphs.
func TestV3MmapMatchesStream(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"figure3": gen.PaperFigure3(),
		"rmat":    gen.RMAT(8, 6, 0.57, 0.19, 0.19, 7),
		"path":    mustGraph(t, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}), // no triangles: s = 0
		"clique":  gen.Clique(6),
	}
	for name, g := range graphs {
		sg := buildTestIndex(t, g)
		path, _ := writeV3Temp(t, sg)
		streamed, err := ReadBinaryIndexFile(path)
		if err != nil {
			t.Fatalf("%s: stream decode: %v", name, err)
		}
		for _, mode := range []VerifyMode{VerifyEager, VerifyLazy} {
			mapped, m, err := MapIndexFile(path, mode)
			if err != nil {
				t.Fatalf("%s: mmap %v: %v", name, mode, err)
			}
			if mapped.Backing == nil {
				t.Fatalf("%s: mapped index has no Backing", name)
			}
			if got, want := mapped.Canonical(g), streamed.Canonical(g); got != want {
				t.Fatalf("%s: mmap %v load disagrees with stream decode", name, mode)
			}
			if err := mapped.Validate(g); err != nil {
				t.Fatalf("%s: mapped index invalid: %v", name, err)
			}
			if err := waitVerify(m.VerifyErr); err != nil {
				t.Fatalf("%s: %v verify error on clean file: %v", name, mode, err)
			}
		}
	}
}

func mustGraph(t *testing.T, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdgeList(edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// waitVerify gives a lazy background verifier time to finish, returning the
// error it settles on.
func waitVerify(errFn func() error) error {
	var err error
	for i := 0; i < 200; i++ {
		if err = errFn(); err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	return err
}

// TestV3AnyByteFlipDetected is the v3 integrity acceptance criterion:
// flipping ANY single byte of a stored v3 file — header, any of the seven
// sections, any padding run — must make the eager mmap load fail. (Padding
// is not CRC-covered, so the loaders require it zero.)
func TestV3AnyByteFlipDetected(t *testing.T) {
	g := gen.PaperFigure3()
	sg := buildTestIndex(t, g)
	dir := t.TempDir()
	_, raw := writeV3Temp(t, sg)
	path := filepath.Join(dir, "flipped.v3")
	for pos := range raw {
		flipped := bytes.Clone(raw)
		flipped[pos] ^= 0xA5
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := MapIndexFile(path, VerifyEager); err == nil {
			t.Fatalf("eager mmap load accepted a flip at byte %d", pos)
		}
		// The stream decoder must reject the same flip (it may classify a
		// flipped version field as v2/garbage — any error is fine).
		if _, err := ReadBinaryIndex(bytes.NewReader(flipped)); err == nil {
			t.Fatalf("stream decode accepted a flip at byte %d", pos)
		}
	}
}

// TestV3LazyVerifyCatchesSectionFlip proves the deferred verifier finds a
// payload corruption that structural validation alone cannot: a content
// flip that keeps the index well-formed loads under VerifyLazy and then
// surfaces through Mapping.VerifyErr.
func TestV3LazyVerifyCatchesSectionFlip(t *testing.T) {
	g := gen.Clique(6)
	sg := buildTestIndex(t, g)
	_, raw := writeV3Temp(t, sg)
	// Flip a low bit inside the tau section: tau values stay in range, so
	// ValidateLoaded passes and only the CRC knows.
	le := binary.LittleEndian
	tauOff := int64(le.Uint64(raw[48:]))
	flipped := bytes.Clone(raw)
	flipped[tauOff] ^= 0x01
	path := filepath.Join(t.TempDir(), "flipped.v3")
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := MapIndexFile(path, VerifyEager); err == nil ||
		!strings.Contains(err.Error(), "tau section checksum") {
		t.Fatalf("eager load error = %v, want tau section checksum mismatch", err)
	}
	_, m, err := MapIndexFile(path, VerifyLazy)
	if err != nil {
		t.Fatalf("lazy load rejected a structurally valid flip up front: %v", err)
	}
	if err := waitVerify(m.VerifyErr); err == nil {
		t.Fatal("lazy verifier never surfaced the tau section corruption")
	} else if !strings.Contains(err.Error(), "tau section checksum") {
		t.Fatalf("lazy verify error = %v, want tau section checksum mismatch", err)
	}
}

// TestV3Truncated cuts a v3 file at every interesting boundary; both load
// paths must reject every prefix.
func TestV3Truncated(t *testing.T) {
	g := gen.PaperFigure3()
	sg := buildTestIndex(t, g)
	dir := t.TempDir()
	_, raw := writeV3Temp(t, sg)
	cuts := []int{0, 4, 8, v3HeaderCRCOff, v3HeaderSize - 1, v3HeaderSize,
		v3HeaderSize + 1, len(raw)/2 | 1, len(raw) - 1}
	path := filepath.Join(dir, "cut.v3")
	for _, cut := range cuts {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := MapIndexFile(path, VerifyEager); err == nil {
			t.Fatalf("mmap load accepted a %d-byte prefix of %d", cut, len(raw))
		}
		if _, err := ReadBinaryIndex(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("stream decode accepted a %d-byte prefix of %d", cut, len(raw))
		}
	}
}

// reCRCHeader recomputes the header CRC after a test mutates header fields,
// so the mutation under test is reached instead of failing the CRC check.
func reCRCHeader(raw []byte) {
	binary.LittleEndian.PutUint32(raw[v3HeaderCRCOff:],
		crc32.Checksum(raw[:v3HeaderCRCOff], castagnoli))
}

// TestV3MisalignedOffsetRejected forges a section descriptor pointing off
// the canonical 64-byte grid (with a recomputed header CRC, so only the
// layout check can catch it).
func TestV3MisalignedOffsetRejected(t *testing.T) {
	g := gen.PaperFigure3()
	sg := buildTestIndex(t, g)
	_, raw := writeV3Temp(t, sg)
	le := binary.LittleEndian
	for _, delta := range []int64{8, -8, 1, 64} {
		forged := bytes.Clone(raw)
		off := int64(le.Uint64(forged[48:])) + delta
		le.PutUint64(forged[48:], uint64(off))
		reCRCHeader(forged)
		path := filepath.Join(t.TempDir(), "forged.v3")
		if err := os.WriteFile(path, forged, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := MapIndexFile(path, VerifyEager); err == nil {
			t.Fatalf("mmap load accepted tau offset shifted by %d", delta)
		} else if !strings.Contains(err.Error(), "canonical layout") &&
			!strings.Contains(err.Error(), "file size") {
			t.Fatalf("offset shifted by %d: error %v does not name the layout", delta, err)
		}
		if _, err := ReadBinaryIndex(bytes.NewReader(forged)); err == nil {
			t.Fatalf("stream decode accepted tau offset shifted by %d", delta)
		}
	}
}

// TestV3BoundarySizesRejected forges size fields at and beyond the int32
// boundary with valid header CRCs: 1<<31 must be rejected as corrupt before
// it can wrap negative in an int32 conversion, and the error must say so.
func TestV3BoundarySizesRejected(t *testing.T) {
	g := gen.PaperFigure3()
	sg := buildTestIndex(t, g)
	_, raw := writeV3Temp(t, sg)
	for _, sizeOff := range []int{16, 24, 32, 40} { // m, s, el, al
		forged := bytes.Clone(raw)
		binary.LittleEndian.PutUint64(forged[sizeOff:], 1<<31)
		reCRCHeader(forged)
		if _, err := ReadBinaryIndex(bytes.NewReader(forged)); err == nil ||
			!strings.Contains(err.Error(), "corrupt v3 sizes") {
			t.Fatalf("size field at %d = 1<<31: error %v, want corrupt-size rejection", sizeOff, err)
		}
	}
}

// TestV2BoundarySizesRejected is the satellite regression for the
// strictly-greater bound bug: a v2 header whose size field equals 1<<31
// passed `> 1<<31` and then overflowed int32. The bound is now MaxInt32
// inclusive; 1<<31 must be rejected as corrupt, while a MaxInt32 field
// must survive the size check (failing later, on the stream, instead).
func TestV2BoundarySizesRejected(t *testing.T) {
	mkGraphStream := func(n, m int64, corruptEdgeCRC bool) []byte {
		var buf bytes.Buffer
		cw := &crcWriter{w: &buf}
		for _, h := range []uint32{graphMagic, formatV2} {
			binary.Write(cw, binary.LittleEndian, h)
		}
		binary.Write(cw, binary.LittleEndian, n)
		binary.Write(cw, binary.LittleEndian, m)
		cw.endSection()
		// Empty edge section (m = 0 on the accept side).
		cw.endSection()
		cw.writeTrailer()
		raw := buf.Bytes()
		if corruptEdgeCRC {
			raw[len(raw)-9] ^= 0xFF // edge-section CRC sits before the 8-byte trailer
		}
		return raw
	}
	// n = 1<<31 (and m = 1<<31): must die on the size check.
	for _, hdr := range [][2]int64{{1 << 31, 0}, {0, 1 << 31}, {1 << 31, 1 << 31}} {
		_, err := ReadBinaryGraph(bytes.NewReader(mkGraphStream(hdr[0], hdr[1], false)))
		if err == nil || !strings.Contains(err.Error(), "corrupt header") {
			t.Fatalf("graph n=%d m=%d: error %v, want corrupt-header rejection", hdr[0], hdr[1], err)
		}
	}
	// n = MaxInt32: must pass the size check. The stream's edge-section CRC
	// is corrupted so the read dies there — proving the failure is past the
	// header validation, without allocating a MaxInt32-vertex graph.
	_, err := ReadBinaryGraph(bytes.NewReader(mkGraphStream(int64(1<<31-1), 0, true)))
	if err == nil {
		t.Fatal("corrupt edge CRC accepted")
	}
	if strings.Contains(err.Error(), "corrupt header") {
		t.Fatalf("n=MaxInt32 rejected by the size check: %v", err)
	}

	// Index reader: any of the four size fields at 1<<31 must be corrupt.
	for field := 0; field < 4; field++ {
		var buf bytes.Buffer
		cw := &crcWriter{w: &buf}
		for _, h := range []uint32{indexMagic, formatV2} {
			binary.Write(cw, binary.LittleEndian, h)
		}
		sizes := make([]int64, 4)
		sizes[field] = 1 << 31
		binary.Write(cw, binary.LittleEndian, sizes)
		cw.endSection()
		_, err := ReadBinaryIndex(bytes.NewReader(buf.Bytes()))
		if err == nil || !strings.Contains(err.Error(), "corrupt index sizes") {
			t.Fatalf("index size field %d = 1<<31: error %v, want corrupt-sizes rejection", field, err)
		}
	}
}

// TestWriteEdgeListErrorPropagation is the satellite regression for the
// dropped per-line write errors: a failure must surface from WriteEdgeList
// (not be swallowed until a final flush), and WriteEdgeListFile must wrap
// it with the destination path on both plain and gzip paths.
func TestWriteEdgeListErrorPropagation(t *testing.T) {
	g := gen.RMAT(8, 6, 0.57, 0.19, 0.19, 3)
	// A writer that fails immediately: the error must come back through
	// the buffered per-line writes, not vanish.
	if err := WriteEdgeList(failWriter{}, g); err == nil {
		t.Fatal("WriteEdgeList swallowed the write error")
	}
	for _, name := range []string{"out.txt", "out.txt.gz"} {
		path := filepath.Join(t.TempDir(), name)
		faults.Enable(11)
		faults.Set(siteWrite, faults.Plan{Action: faults.Error, Every: 1})
		err := WriteEdgeListFile(path, g)
		faults.Disable()
		if !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("%s: err = %v, want the injected fault", name, err)
		}
		if !strings.Contains(err.Error(), path) {
			t.Fatalf("%s: error %q does not name the destination path", name, err)
		}
		// And with the fault disarmed the same write must succeed and read
		// back (the gz leg exercises the compressor's Close-flush path).
		if err := WriteEdgeListFile(path, g); err != nil {
			t.Fatalf("%s: clean write failed: %v", name, err)
		}
		g2, err := ReadEdgeListFile(path)
		if err != nil {
			t.Fatalf("%s: read back: %v", name, err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: %d edges read back, want %d", name, g2.NumEdges(), g.NumEdges())
		}
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("sink failed") }

// TestSniffIndexFormat checks version detection on real files of both
// layouts.
func TestSniffIndexFormat(t *testing.T) {
	g := gen.PaperFigure3()
	sg := buildTestIndex(t, g)
	dir := t.TempDir()
	v2 := filepath.Join(dir, "i.v2")
	if err := WriteBinaryIndexFileFormat(v2, sg, FormatV2); err != nil {
		t.Fatal(err)
	}
	v3 := filepath.Join(dir, "i.v3")
	if err := WriteBinaryIndexFileFormat(v3, sg, FormatV3); err != nil {
		t.Fatal(err)
	}
	if f, err := SniffIndexFormat(v2); err != nil || f != FormatV2 {
		t.Fatalf("sniff v2 = %v, %v", f, err)
	}
	if f, err := SniffIndexFormat(v3); err != nil || f != FormatV3 {
		t.Fatalf("sniff v3 = %v, %v", f, err)
	}
	if _, err := SniffIndexFormat(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("sniff accepted a missing file")
	}
}

func TestParseFlagHelpers(t *testing.T) {
	if f, err := ParseIndexFormat("v3"); err != nil || f != FormatV3 || f.String() != "v3" {
		t.Fatalf("ParseIndexFormat v3 = %v, %v", f, err)
	}
	if f, err := ParseIndexFormat("v2"); err != nil || f != FormatV2 || f.String() != "v2" {
		t.Fatalf("ParseIndexFormat v2 = %v, %v", f, err)
	}
	if _, err := ParseIndexFormat("v9"); err == nil {
		t.Fatal("ParseIndexFormat accepted v9")
	}
	if m, err := ParseVerifyMode("lazy"); err != nil || m != VerifyLazy || m.String() != "lazy" {
		t.Fatalf("ParseVerifyMode lazy = %v, %v", m, err)
	}
	if m, err := ParseVerifyMode("eager"); err != nil || m != VerifyEager || m.String() != "eager" {
		t.Fatalf("ParseVerifyMode eager = %v, %v", m, err)
	}
	if _, err := ParseVerifyMode("never"); err == nil {
		t.Fatal("ParseVerifyMode accepted never")
	}
}
