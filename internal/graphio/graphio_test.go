package graphio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment line
% another comment
0 1
1 2
2 0

3 4 extra-column-ignored
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("got %v, want V=5 E=4", g)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(3, 4) {
		t.Fatal("edges missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",                // too few fields
		"a b\n",              // non-numeric u
		"0 b\n",              // non-numeric v
		"0 99999999999999\n", // overflow
		"-1 5\n",             // negative u
		"5 -1\n",             // negative v
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadEdgeListNegativeVertexNamesLine(t *testing.T) {
	// The error must point at the offending line like the other parse
	// errors, not surface later from deep inside the CSR builder.
	_, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n2 -7\n"))
	if err == nil {
		t.Fatal("negative vertex accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q does not name line 3", err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := gen.RMAT(8, 6, 0.57, 0.19, 0.19, 77)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex count can shrink if trailing vertices are isolated; edges
	// must match exactly.
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		if g.Edge(e) != g2.Edge(e) {
			t.Fatalf("edge %d differs", e)
		}
	}
}

func TestEdgeListFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := gen.PaperFigure3()
	if err := WriteEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	if _, err := ReadEdgeListFile(filepath.Join(dir, "missing.txt")); !os.IsNotExist(err) {
		t.Fatalf("missing file error = %v", err)
	}
}

func TestBinaryGraphRoundTrip(t *testing.T) {
	g := gen.PlantedPartition(5, 8, 0.7, 1.0, 78)
	var buf bytes.Buffer
	if err := WriteBinaryGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape: %v vs %v", g2, g)
	}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		if g.Edge(e) != g2.Edge(e) {
			t.Fatalf("edge %d differs", e)
		}
	}
}

func TestBinaryGraphBadMagic(t *testing.T) {
	if _, err := ReadBinaryGraph(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinaryGraph(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestBinaryIndexRoundTrip(t *testing.T) {
	g := gen.PaperFigure3()
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 2)

	var buf bytes.Buffer
	if err := WriteBinaryIndex(&buf, sg); err != nil {
		t.Fatal(err)
	}
	sg2, err := ReadBinaryIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sg2.Validate(g); err != nil {
		t.Fatalf("round-tripped index invalid: %v", err)
	}
	if sg.Canonical(g) != sg2.Canonical(g) {
		t.Fatal("round trip changed the index")
	}
}

func TestBinaryIndexBadInput(t *testing.T) {
	if _, err := ReadBinaryIndex(bytes.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Fatal("garbage index accepted")
	}
	// Graph magic fed to index reader must fail.
	var buf bytes.Buffer
	g := gen.Clique(3)
	if err := WriteBinaryGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinaryIndex(&buf); err == nil {
		t.Fatal("graph blob accepted as index")
	}
}

// TestBinaryIndexCorruptIDs serializes structurally broken summary graphs
// (the writer emits whatever it is handed) and checks the reader rejects
// each with a descriptive error instead of handing queries a live grenade.
func TestBinaryIndexCorruptIDs(t *testing.T) {
	base := func() *core.SummaryGraph {
		g := gen.Clique(5)
		sup := triangle.Supports(g, 1)
		tau, _ := truss.DecomposeSerial(g, sup)
		sg, _ := core.Build(g, tau, core.VariantCOptimal, 1)
		return sg
	}
	cases := []struct {
		name    string
		corrupt func(sg *core.SummaryGraph)
	}{
		{"edgelist out of range", func(sg *core.SummaryGraph) {
			sg.EdgeList[0] = int32(len(sg.Tau)) + 5
		}},
		{"edgelist negative", func(sg *core.SummaryGraph) {
			sg.EdgeList[0] = -2
		}},
		{"adj out of range", func(sg *core.SummaryGraph) {
			sg.Adj = append(sg.Adj, sg.NumSupernodes()+3)
			sg.AdjOffsets[len(sg.AdjOffsets)-1]++
		}},
		{"edgetosn out of range", func(sg *core.SummaryGraph) {
			sg.EdgeToSN[0] = sg.NumSupernodes() + 1
		}},
		{"edge offsets decrease", func(sg *core.SummaryGraph) {
			sg.EdgeOffsets[1] = -1
		}},
		{"edge offsets overrun payload", func(sg *core.SummaryGraph) {
			sg.EdgeOffsets[len(sg.EdgeOffsets)-1] += 4
		}},
		{"adj offsets start nonzero", func(sg *core.SummaryGraph) {
			for i := range sg.AdjOffsets {
				sg.AdjOffsets[i]++
			}
		}},
		{"supernode k below minimum", func(sg *core.SummaryGraph) {
			sg.K[0] = 1
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sg := base()
			c.corrupt(sg)
			var buf bytes.Buffer
			if err := WriteBinaryIndex(&buf, sg); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadBinaryIndex(&buf); err == nil {
				t.Fatalf("corrupt index (%s) accepted", c.name)
			} else if !strings.Contains(err.Error(), "corrupt index") {
				t.Fatalf("error %q not descriptive", err)
			}
		})
	}
}

func TestBinaryIndexTruncated(t *testing.T) {
	g := gen.Clique(4)
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 1)
	var buf bytes.Buffer
	if err := WriteBinaryIndex(&buf, sg); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 8, 20, len(full) - 3} {
		if _, err := ReadBinaryIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBigScannerLine(t *testing.T) {
	// Very long comment lines must not break the scanner buffer.
	long := "# " + strings.Repeat("x", 1<<18) + "\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

var _ = graph.Edge{} // keep the import used if assertions above change

func TestWriteSummaryDOT(t *testing.T) {
	g := gen.PaperFigure3()
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 2)
	var buf bytes.Buffer
	if err := WriteSummaryDOT(&buf, sg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph equitruss {") {
		t.Fatalf("missing header:\n%s", out)
	}
	if c := strings.Count(out, " -- "); c != 6 {
		t.Fatalf("DOT superedges = %d, want 6", c)
	}
	if c := strings.Count(out, "[label=\"ν"); c != 5 {
		t.Fatalf("DOT supernodes = %d, want 5", c)
	}
}

func TestWriteGraphDOT(t *testing.T) {
	g := gen.Clique(3)
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	var buf bytes.Buffer
	if err := WriteGraphDOT(&buf, g, tau); err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(buf.String(), `[label="3"]`); c != 3 {
		t.Fatalf("labelled edges = %d, want 3:\n%s", c, buf.String())
	}
	buf.Reset()
	if err := WriteGraphDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "label") {
		t.Fatal("labels emitted without tau")
	}
}

func TestGzipEdgeListRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt.gz")
	g := gen.PlantedPartition(4, 6, 0.8, 1.0, 91)
	if err := WriteEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	// The file must actually be gzip (magic bytes 0x1f 0x8b).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("output not gzip-compressed")
	}
	g2, err := ReadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	// A non-gzip file with a .gz name must fail cleanly.
	bad := filepath.Join(dir, "bad.gz")
	if err := os.WriteFile(bad, []byte("0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEdgeListFile(bad); err == nil {
		t.Fatal("plain text with .gz name accepted")
	}
}
