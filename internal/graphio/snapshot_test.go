package graphio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"equitruss/internal/gen"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

func testSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	g := gen.RMAT(8, 6, 0.57, 0.19, 0.19, 7)
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	return &Snapshot{G: g, Tau: tau, Seq: 42}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := testSnapshot(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != snap.Seq {
		t.Fatalf("seq %d, want %d", got.Seq, snap.Seq)
	}
	if got.G.NumVertices() != snap.G.NumVertices() || got.G.NumEdges() != snap.G.NumEdges() {
		t.Fatalf("shape (%d,%d), want (%d,%d)", got.G.NumVertices(), got.G.NumEdges(),
			snap.G.NumVertices(), snap.G.NumEdges())
	}
	// Edge IDs must survive exactly — tau alignment depends on it.
	for eid, e := range snap.G.Edges() {
		if got.G.Edges()[eid] != e {
			t.Fatalf("edge %d: %v, want %v", eid, got.G.Edges()[eid], e)
		}
		if got.Tau[eid] != snap.Tau[eid] {
			t.Fatalf("tau[%d] = %d, want %d", eid, got.Tau[eid], snap.Tau[eid])
		}
	}
}

// TestSnapshotRejectsCorruption: any single flipped byte anywhere in the
// stream must be rejected, never silently decoded into wrong state.
func TestSnapshotRejectsCorruption(t *testing.T) {
	snap := testSnapshot(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for off := 0; off < len(data); off += 97 {
		mutated := append([]byte(nil), data...)
		mutated[off] ^= 0x20
		if _, err := ReadSnapshot(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("flipped byte at %d accepted", off)
		}
	}
	// Truncations are rejected too.
	for _, cut := range []int{0, 1, 8, len(data) / 2, len(data) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

// TestSnapshotRejectsMisalignedTau: a structurally valid stream whose tau
// values are out of range must fail validation.
func TestSnapshotRejectsMisalignedTau(t *testing.T) {
	snap := testSnapshot(t)
	bad := &Snapshot{G: snap.G, Tau: make([]int32, len(snap.Tau)), Seq: 1}
	// All zeros: below MinTrussness. WriteSnapshot accepts (it only checks
	// length); ReadSnapshot must reject.
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("snapshot with sub-minimum tau accepted")
	}
	// Length mismatch is rejected at write time.
	short := &Snapshot{G: snap.G, Tau: snap.Tau[:len(snap.Tau)-1], Seq: 1}
	if err := WriteSnapshot(&buf, short); err == nil {
		t.Fatal("snapshot with short tau written")
	}
}

// TestSnapshotFileAtomicSave: WriteSnapshotFile replaces the old snapshot
// atomically and leaves no temp droppings.
func TestSnapshotFileAtomicSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.eqs")
	snap := testSnapshot(t)
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	snap.Seq = 99
	if err := WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 99 {
		t.Fatalf("seq %d, want the second write's 99", got.Seq)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after atomic saves: %v", names)
	}
}
