package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"equitruss/internal/graph"
	"equitruss/internal/truss"
)

// Snapshot format: the durable-update pipeline's compaction artifact. A
// snapshot captures the mutable graph and its exact per-edge trussness as
// of one WAL sequence number, so recovery loads the snapshot and replays
// only the log suffix past Seq instead of the whole history.
//
// Layout (little-endian, v2 CRC conventions from checksum.go):
//
//	header  = magic "EQSN", version, seq, n, m, headerCRC
//	section = edges ([]graph.Edge), sectionCRC
//	section = tau ([]int32, len m), sectionCRC
//	trailer = trailerMagic, fileCRC
//
// The header CRC is verified before the size fields drive any allocation;
// a snapshot that fails any check is rejected whole — recovery then falls
// back to the base graph plus a full WAL replay.

// snapshotMagic identifies a snapshot stream ("EQSN").
const snapshotMagic = uint32(0x4551534E)

// Snapshot is a decoded durable-state snapshot: the graph, its exact
// trussness (aligned with the graph's canonical edge IDs), and the WAL
// sequence number the state includes.
type Snapshot struct {
	G   *graph.Graph
	Tau []int32
	Seq uint64
}

// WriteSnapshot serializes a snapshot in the checksummed v2 framing.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if err := injectWrite(); err != nil {
		return err
	}
	if int64(len(s.Tau)) != s.G.NumEdges() {
		return fmt.Errorf("graphio: snapshot tau has %d entries, graph has %d edges",
			len(s.Tau), s.G.NumEdges())
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	for _, h := range []uint32{snapshotMagic, formatV2} {
		if err := binary.Write(cw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, s.Seq); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, int64(s.G.NumVertices())); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, s.G.NumEdges()); err != nil {
		return err
	}
	if err := cw.endSection(); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, s.G.Edges()); err != nil {
		return err
	}
	if err := cw.endSection(); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, s.Tau); err != nil {
		return err
	}
	if err := cw.endSection(); err != nil {
		return err
	}
	if err := cw.writeTrailer(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a snapshot written by WriteSnapshot, verifying
// every checksum and rebuilding the canonical CSR graph.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	if err := injectRead(); err != nil {
		return nil, err
	}
	cr := &crcReader{r: bufio.NewReader(r)}
	var magic, version uint32
	if err := binary.Read(cr, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("graphio: bad snapshot magic %#x", magic)
	}
	if err := binary.Read(cr, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != formatV2 {
		return nil, fmt.Errorf("graphio: unsupported snapshot format version %d", version)
	}
	var seq uint64
	if err := binary.Read(cr, binary.LittleEndian, &seq); err != nil {
		return nil, err
	}
	var n, m int64
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(cr, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if err := cr.endSection("snapshot header"); err != nil {
		return nil, err
	}
	if n < 0 || m < 0 || n > maxSaneCount || m > maxSaneCount {
		return nil, fmt.Errorf("graphio: corrupt snapshot header n=%d m=%d", n, m)
	}
	edges, err := readSlice[graph.Edge](cr, m)
	if err != nil {
		return nil, err
	}
	if err := cr.endSection("snapshot edges"); err != nil {
		return nil, err
	}
	tau, err := readSlice[int32](cr, m)
	if err != nil {
		return nil, err
	}
	if err := cr.endSection("snapshot tau"); err != nil {
		return nil, err
	}
	if err := cr.checkTrailer(); err != nil {
		return nil, err
	}
	// The stored edges are already canonical (written from a CSR graph), so
	// FromEdgeList preserves edge IDs and tau stays aligned; validate τ
	// range so a consistent-but-nonsense snapshot cannot poison recovery.
	g, err := graph.FromEdgeList(edges, int32(n))
	if err != nil {
		return nil, fmt.Errorf("graphio: corrupt snapshot: %w", err)
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graphio: snapshot edges not canonical: %d stored, %d after rebuild",
			m, g.NumEdges())
	}
	for i, t := range tau {
		if t < truss.MinTrussness {
			return nil, fmt.Errorf("graphio: corrupt snapshot: tau[%d] = %d < %d",
				i, t, truss.MinTrussness)
		}
	}
	return &Snapshot{G: g, Tau: tau, Seq: seq}, nil
}

// WriteSnapshotFile atomically writes a snapshot to path (temp + fsync +
// rename + directory fsync — see AtomicWriteFile).
func WriteSnapshotFile(path string, s *Snapshot) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		return WriteSnapshot(w, s)
	})
}

// ReadSnapshotFile reads a snapshot written by WriteSnapshotFile.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
