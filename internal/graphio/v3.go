package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"equitruss/internal/core"
	"equitruss/internal/mmapio"
	"equitruss/internal/obs"
)

// Format v3 is a flat, offset-addressed layout built for zero-copy loading:
// instead of a chunked stream that must be decoded into fresh heap arrays,
// the seven index arrays are stored as raw little-endian images at 64-byte-
// aligned absolute offsets, so a loader can mmap the file and reinterpret
// the mapped sections as the arrays directly — no decode, no copy, ~0 heap.
//
//	header (256 bytes, CRC32C-protected):
//	  [0]   magic "EQTI"            u32
//	  [4]   version = 3             u32
//	  [8]   flags = 0               u32
//	  [12]  section count = 7       u32
//	  [16]  m  (edges)              i64
//	  [24]  s  (supernodes)         i64
//	  [32]  el (member-edge list)   i64
//	  [40]  al (adjacency list)     i64
//	  [48]  7 section descriptors:  {offset i64, count i64, crc u32, elemSize u32}
//	  [216] file size               i64
//	  [224] header CRC32C of [0,224)
//	  [228] zero padding to 256
//
// Sections follow in the fixed order tau, edge-to-supernode, supernode-k,
// edge-list, adjacency, edge-offsets, adjacency-offsets; each starts at the
// next 64-byte boundary and is zero-padded to the next one, so every array
// lands cache-line-aligned in the mapping (and the int64 offset arrays are
// 8-aligned wherever the file is loaded). Per-section CRC32C lives in the
// header, verified eagerly at load or deferred to a background pass
// (VerifyLazy). The layout is little-endian only: big-endian hosts fall
// back to the streaming decoder, which works everywhere.

const (
	formatV3       = uint32(3)
	v3Align        = 64
	v3SectionCount = 7
	v3HeaderSize   = 256
	v3HeaderCRCOff = 224
)

var (
	cMmapLoads = obs.GetCounter("graphio_mmap_loads",
		"v3 index files loaded zero-copy via mmap")
	cLazyVerifyFailures = obs.GetCounter("graphio_lazy_verify_failures",
		"deferred v3 section-checksum verifications that found corruption")
)

// VerifyMode selects when a v3 mmap load verifies section checksums.
type VerifyMode int

const (
	// VerifyEager checks every section CRC before the load returns — a
	// flipped byte anywhere is rejected up front, at the cost of one pass
	// over the file.
	VerifyEager VerifyMode = iota
	// VerifyLazy checks only the header CRC up front and verifies section
	// CRCs in a background goroutine; serving starts immediately, and a
	// corruption found later surfaces through Mapping.VerifyErr and the
	// graphio_lazy_verify_failures counter.
	VerifyLazy
)

// ParseVerifyMode parses a -verify flag value (eager|lazy).
func ParseVerifyMode(s string) (VerifyMode, error) {
	switch s {
	case "eager":
		return VerifyEager, nil
	case "lazy":
		return VerifyLazy, nil
	}
	return 0, fmt.Errorf("graphio: unknown verify mode %q (want eager|lazy)", s)
}

func (v VerifyMode) String() string {
	if v == VerifyLazy {
		return "lazy"
	}
	return "eager"
}

// IndexFormat selects the on-disk layout an index writer emits.
type IndexFormat int

const (
	// FormatV2 is the chunked checksummed stream: portable, decoded into
	// heap arrays at load.
	FormatV2 IndexFormat = 2
	// FormatV3 is the flat 64-byte-aligned layout servable zero-copy via
	// mmap.
	FormatV3 IndexFormat = 3
)

// ParseIndexFormat parses a -format flag value (v2|v3).
func ParseIndexFormat(s string) (IndexFormat, error) {
	switch s {
	case "v2":
		return FormatV2, nil
	case "v3":
		return FormatV3, nil
	}
	return 0, fmt.Errorf("graphio: unknown index format %q (want v2|v3)", s)
}

func (f IndexFormat) String() string {
	if f == FormatV2 {
		return "v2"
	}
	return "v3"
}

// v3Section is one parsed section descriptor.
type v3Section struct {
	off      int64
	count    int64
	crc      uint32
	elemSize uint32
}

// v3Header is the parsed, validated v3 header.
type v3Header struct {
	m, s, el, al int64
	fileSize     int64
	secs         [v3SectionCount]v3Section
}

// v3Pad rounds n up to the section alignment.
func v3Pad(n int64) int64 { return (n + v3Align - 1) &^ (v3Align - 1) }

// v3SectionBytes returns the seven sections' little-endian byte images in
// stream order (zero-copy on LE hosts), with their element sizes.
func v3SectionBytes(sg *core.SummaryGraph) ([v3SectionCount][]byte, [v3SectionCount]uint32) {
	var secs [v3SectionCount][]byte
	var elem [v3SectionCount]uint32
	for i, a := range [][]int32{sg.Tau, sg.EdgeToSN, sg.K, sg.EdgeList, sg.Adj} {
		secs[i] = mmapio.Int32Bytes(a)
		elem[i] = 4
	}
	for i, a := range [][]int64{sg.EdgeOffsets, sg.AdjOffsets} {
		secs[5+i] = mmapio.Int64Bytes(a)
		elem[5+i] = 8
	}
	return secs, elem
}

// v3Counts returns the expected element count of every section given the
// four size fields.
func v3Counts(m, s, el, al int64) [v3SectionCount]int64 {
	return [v3SectionCount]int64{m, m, s, el, al, s + 1, s + 1}
}

// WriteBinaryIndexV3 serializes a summary graph in the flat v3 layout.
func WriteBinaryIndexV3(w io.Writer, sg *core.SummaryGraph) error {
	if err := injectWrite(); err != nil {
		return err
	}
	secs, elem := v3SectionBytes(sg)
	hdr := make([]byte, v3HeaderSize)
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], indexMagic)
	le.PutUint32(hdr[4:], formatV3)
	le.PutUint32(hdr[8:], 0) // flags
	le.PutUint32(hdr[12:], v3SectionCount)
	sizes := []int64{int64(len(sg.Tau)), int64(len(sg.K)), int64(len(sg.EdgeList)), int64(len(sg.Adj))}
	for i, sz := range sizes {
		le.PutUint64(hdr[16+8*i:], uint64(sz))
	}
	off := int64(v3HeaderSize)
	for i, sec := range secs {
		d := hdr[48+24*i:]
		le.PutUint64(d[0:], uint64(off))
		le.PutUint64(d[8:], uint64(len(sec))/uint64(elem[i]))
		le.PutUint32(d[16:], crc32.Checksum(sec, castagnoli))
		le.PutUint32(d[20:], elem[i])
		off = v3Pad(off + int64(len(sec)))
	}
	le.PutUint64(hdr[216:], uint64(off)) // file size
	le.PutUint32(hdr[v3HeaderCRCOff:], crc32.Checksum(hdr[:v3HeaderCRCOff], castagnoli))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("graphio: writing v3 header: %w", err)
	}
	var pad [v3Align]byte
	for i, sec := range secs {
		if _, err := w.Write(sec); err != nil {
			return fmt.Errorf("graphio: writing %s section: %w", indexSectionNames[i], err)
		}
		if tail := v3Pad(int64(len(sec))) - int64(len(sec)); tail > 0 {
			if _, err := w.Write(pad[:tail]); err != nil {
				return fmt.Errorf("graphio: padding %s section: %w", indexSectionNames[i], err)
			}
		}
	}
	return nil
}

// WriteBinaryIndexFileV3 atomically writes a summary graph to path in the
// flat v3 layout (see AtomicWriteFile for the crash-safety contract).
func WriteBinaryIndexFileV3(path string, sg *core.SummaryGraph) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		return WriteBinaryIndexV3(w, sg)
	})
}

// WriteBinaryIndexFormat writes sg in the selected layout.
func WriteBinaryIndexFormat(w io.Writer, sg *core.SummaryGraph, f IndexFormat) error {
	if f == FormatV3 {
		return WriteBinaryIndexV3(w, sg)
	}
	return WriteBinaryIndex(w, sg)
}

// WriteBinaryIndexFileFormat atomically writes sg to path in the selected
// layout.
func WriteBinaryIndexFileFormat(path string, sg *core.SummaryGraph, f IndexFormat) error {
	if f == FormatV3 {
		return WriteBinaryIndexFileV3(path, sg)
	}
	return WriteBinaryIndexFile(path, sg)
}

// parseV3Header validates a v3 header image: magic, version, header CRC,
// sane sizes, and — against the sizes — that every section descriptor
// carries the expected element size and count and sits exactly at its
// canonical 64-byte-aligned offset. A descriptor pointing anywhere else
// (overlapping, misaligned, out of bounds) is rejected here, before any
// offset is dereferenced or any allocation sized from it.
func parseV3Header(hdr []byte) (*v3Header, error) {
	le := binary.LittleEndian
	if got := le.Uint32(hdr[0:]); got != indexMagic {
		return nil, fmt.Errorf("graphio: bad index magic %#x", got)
	}
	if got := le.Uint32(hdr[4:]); got != formatV3 {
		return nil, fmt.Errorf("graphio: bad v3 version %d", got)
	}
	if got := crc32.Checksum(hdr[:v3HeaderCRCOff], castagnoli); got != le.Uint32(hdr[v3HeaderCRCOff:]) {
		return nil, fmt.Errorf("graphio: v3 header checksum mismatch: computed %#x, stored %#x",
			got, le.Uint32(hdr[v3HeaderCRCOff:]))
	}
	if flags := le.Uint32(hdr[8:]); flags != 0 {
		return nil, fmt.Errorf("graphio: unsupported v3 flags %#x", flags)
	}
	if n := le.Uint32(hdr[12:]); n != v3SectionCount {
		return nil, fmt.Errorf("graphio: v3 header has %d sections, want %d", n, v3SectionCount)
	}
	h := &v3Header{
		m:  int64(le.Uint64(hdr[16:])),
		s:  int64(le.Uint64(hdr[24:])),
		el: int64(le.Uint64(hdr[32:])),
		al: int64(le.Uint64(hdr[40:])),
	}
	for _, sz := range []int64{h.m, h.s, h.el, h.al} {
		if sz < 0 || sz > maxSaneCount {
			return nil, fmt.Errorf("graphio: corrupt v3 sizes m=%d s=%d el=%d al=%d", h.m, h.s, h.el, h.al)
		}
	}
	h.fileSize = int64(le.Uint64(hdr[216:]))
	counts := v3Counts(h.m, h.s, h.el, h.al)
	wantOff := int64(v3HeaderSize)
	for i := range h.secs {
		d := hdr[48+24*i:]
		sec := v3Section{
			off:      int64(le.Uint64(d[0:])),
			count:    int64(le.Uint64(d[8:])),
			crc:      le.Uint32(d[16:]),
			elemSize: le.Uint32(d[20:]),
		}
		wantElem := uint32(4)
		if i >= 5 {
			wantElem = 8
		}
		if sec.elemSize != wantElem {
			return nil, fmt.Errorf("graphio: %s section element size %d, want %d",
				indexSectionNames[i], sec.elemSize, wantElem)
		}
		if sec.count != counts[i] {
			return nil, fmt.Errorf("graphio: %s section has %d elements, header sizes imply %d",
				indexSectionNames[i], sec.count, counts[i])
		}
		if sec.off != wantOff {
			return nil, fmt.Errorf("graphio: %s section at offset %d, canonical layout puts it at %d",
				indexSectionNames[i], sec.off, wantOff)
		}
		wantOff = v3Pad(sec.off + sec.count*int64(sec.elemSize))
		h.secs[i] = sec
	}
	if h.fileSize != wantOff {
		return nil, fmt.Errorf("graphio: v3 file size %d, sections end at %d", h.fileSize, wantOff)
	}
	// The reserved tail is outside the CRC'd prefix; requiring it zero keeps
	// the whole-file property that any flipped byte is rejected.
	for i := v3HeaderCRCOff + 4; i < v3HeaderSize; i++ {
		if hdr[i] != 0 {
			return nil, fmt.Errorf("graphio: v3 header padding byte %d is %#x, want 0", i, hdr[i])
		}
	}
	return h, nil
}

// checkV3Pad enforces zero padding between sections — padding is not CRC-
// covered, so this is what keeps "any flipped byte is rejected" true for
// the whole file.
func checkV3Pad(pad []byte, after string) error {
	for _, b := range pad {
		if b != 0 {
			return fmt.Errorf("graphio: nonzero padding byte %#x after %s section", b, after)
		}
	}
	return nil
}

// verifyV3Sections checks every section CRC against the mapped bytes, plus
// the zero-ness of the uncovered padding runs between them.
func verifyV3Sections(data []byte, h *v3Header) error {
	for i, sec := range h.secs {
		end := sec.off + sec.count*int64(sec.elemSize)
		if got := crc32.Checksum(data[sec.off:end], castagnoli); got != sec.crc {
			return fmt.Errorf("graphio: %s section checksum mismatch: computed %#x, stored %#x",
				indexSectionNames[i], got, sec.crc)
		}
		if err := checkV3Pad(data[end:v3Pad(end)], indexSectionNames[i]); err != nil {
			return err
		}
	}
	return nil
}

// v3SummaryGraph builds a SummaryGraph whose arrays alias the mapped
// sections (no copy). Alignment holds by construction — sections are
// 64-byte-aligned relative to a page-aligned base — and the casts verify it
// anyway.
func v3SummaryGraph(data []byte, h *v3Header) (*core.SummaryGraph, error) {
	sec := func(i int) []byte {
		s := h.secs[i]
		return data[s.off : s.off+s.count*int64(s.elemSize)]
	}
	sg := &core.SummaryGraph{}
	var err error
	for i, dst := range []*[]int32{&sg.Tau, &sg.EdgeToSN, &sg.K, &sg.EdgeList, &sg.Adj} {
		if *dst, err = mmapio.Int32s(sec(i)); err != nil {
			return nil, fmt.Errorf("graphio: %s section: %w", indexSectionNames[i], err)
		}
	}
	for i, dst := range []*[]int64{&sg.EdgeOffsets, &sg.AdjOffsets} {
		if *dst, err = mmapio.Int64s(sec(5 + i)); err != nil {
			return nil, fmt.Errorf("graphio: %s section: %w", indexSectionNames[5+i], err)
		}
	}
	return sg, nil
}

// MapIndexFile loads a v3 index file zero-copy: the file is mapped
// read-only and the summary graph's arrays alias the mapping (recorded in
// SummaryGraph.Backing, which keeps the mapping alive — see mmapio). The
// header is always CRC-verified before any offset is trusted, ValidateLoaded
// always runs before the index is returned, and section checksums are
// verified per mode: up front (VerifyEager) or in a background goroutine
// whose finding surfaces through the returned Mapping's VerifyErr
// (VerifyLazy). Only little-endian hosts can load zero-copy; use
// ReadBinaryIndexFile — which auto-detects v3 — elsewhere.
func MapIndexFile(path string, mode VerifyMode) (*core.SummaryGraph, *mmapio.Mapping, error) {
	if err := injectRead(); err != nil {
		return nil, nil, err
	}
	if mode != VerifyEager && mode != VerifyLazy {
		return nil, nil, fmt.Errorf("graphio: unknown verify mode %d", mode)
	}
	if !mmapio.HostLittleEndian {
		return nil, nil, fmt.Errorf("graphio: zero-copy v3 load requires a little-endian host; use ReadBinaryIndexFile")
	}
	m, err := mmapio.Open(path)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*core.SummaryGraph, *mmapio.Mapping, error) {
		m.Unmap()
		return nil, nil, err
	}
	data := m.Bytes()
	if len(data) < v3HeaderSize {
		return fail(fmt.Errorf("graphio: %s: %d bytes, shorter than a v3 header", path, len(data)))
	}
	h, err := parseV3Header(data)
	if err != nil {
		return fail(err)
	}
	if int64(len(data)) != h.fileSize {
		return fail(fmt.Errorf("graphio: %s: file is %d bytes, header says %d (truncated or trailing garbage)",
			path, len(data), h.fileSize))
	}
	sg, err := v3SummaryGraph(data, h)
	if err != nil {
		return fail(err)
	}
	sg.Backing = m
	if err := sg.ValidateLoaded(); err != nil {
		return fail(fmt.Errorf("graphio: corrupt index: %w", err))
	}
	if mode == VerifyEager {
		if err := verifyV3Sections(data, h); err != nil {
			return fail(err)
		}
	} else {
		// The goroutine's reference keeps the mapping alive against the GC
		// finalizer for the duration of the pass. Deliberately spawned only
		// after every fail() path is behind us: fail unmaps, and a verifier
		// racing an unmap would fault.
		go func() {
			defer m.MarkVerifyDone()
			if err := verifyV3Sections(m.Bytes(), h); err != nil {
				cLazyVerifyFailures.Inc()
				m.SetVerifyErr(err)
				fmt.Fprintf(os.Stderr, "graphio: deferred verify of %s: %v\n", path, err)
			}
		}()
	}
	cMmapLoads.Inc()
	return sg, m, nil
}

// readBinaryIndexV3 is the streaming v3 decoder: portable (any endianness,
// any io.Reader), heap-backed — the fallback when mmap is unavailable and
// the differential oracle for the zero-copy path. br is positioned at the
// start of the header.
func readBinaryIndexV3(br *bufio.Reader) (*core.SummaryGraph, error) {
	hdr := make([]byte, v3HeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graphio: reading v3 header: %w", err)
	}
	h, err := parseV3Header(hdr)
	if err != nil {
		return nil, err
	}
	pos := int64(v3HeaderSize)
	// skipTo consumes the padding between pos and off and requires it zero
	// (padding is not CRC-covered, so zero-ness is its integrity check).
	// Padding runs are at most v3Align-1 bytes by construction.
	skipTo := func(off int64, after string) error {
		if skip := off - pos; skip > 0 {
			var pad [v3Align]byte
			if _, err := io.ReadFull(br, pad[:skip]); err != nil {
				return fmt.Errorf("graphio: reading v3 padding: %w", err)
			}
			if err := checkV3Pad(pad[:skip], after); err != nil {
				return err
			}
			pos = off
		}
		return nil
	}
	sg := &core.SummaryGraph{}
	prev := "header"
	for i, dst := range []*[]int32{&sg.Tau, &sg.EdgeToSN, &sg.K, &sg.EdgeList, &sg.Adj} {
		if err := skipTo(h.secs[i].off, prev); err != nil {
			return nil, err
		}
		if *dst, err = readV3Int32s(br, h.secs[i], indexSectionNames[i]); err != nil {
			return nil, err
		}
		pos += h.secs[i].count * 4
		prev = indexSectionNames[i]
	}
	for i, dst := range []*[]int64{&sg.EdgeOffsets, &sg.AdjOffsets} {
		sec := h.secs[5+i]
		if err := skipTo(sec.off, prev); err != nil {
			return nil, err
		}
		if *dst, err = readV3Int64s(br, sec, indexSectionNames[5+i]); err != nil {
			return nil, err
		}
		pos += sec.count * 8
		prev = indexSectionNames[5+i]
	}
	if err := skipTo(h.fileSize, prev); err != nil {
		return nil, err
	}
	if err := sg.ValidateLoaded(); err != nil {
		return nil, fmt.Errorf("graphio: corrupt index: %w", err)
	}
	return sg, nil
}

// readV3Int32s reads and CRC-checks one int32 section in bounded chunks, so
// a forged header claiming billions of elements fails when the stream runs
// dry instead of driving one giant allocation.
func readV3Int32s(r io.Reader, sec v3Section, name string) ([]int32, error) {
	const chunk = int64(1) << 20
	out := make([]int32, 0, min(sec.count, chunk/4))
	buf := make([]byte, min(sec.count*4, chunk))
	crc := uint32(0)
	for remaining := sec.count * 4; remaining > 0; {
		c := min(remaining, chunk)
		if _, err := io.ReadFull(r, buf[:c]); err != nil {
			return nil, fmt.Errorf("graphio: reading %s section: %w", name, err)
		}
		crc = crc32.Update(crc, castagnoli, buf[:c])
		for i := int64(0); i < c; i += 4 {
			out = append(out, int32(binary.LittleEndian.Uint32(buf[i:])))
		}
		remaining -= c
	}
	if crc != sec.crc {
		return nil, fmt.Errorf("graphio: %s section checksum mismatch: computed %#x, stored %#x", name, crc, sec.crc)
	}
	return out, nil
}

// readV3Int64s is readV3Int32s for the int64 offset sections.
func readV3Int64s(r io.Reader, sec v3Section, name string) ([]int64, error) {
	const chunk = int64(1) << 20
	out := make([]int64, 0, min(sec.count, chunk/8))
	buf := make([]byte, min(sec.count*8, chunk))
	crc := uint32(0)
	for remaining := sec.count * 8; remaining > 0; {
		c := min(remaining, chunk)
		if _, err := io.ReadFull(r, buf[:c]); err != nil {
			return nil, fmt.Errorf("graphio: reading %s section: %w", name, err)
		}
		crc = crc32.Update(crc, castagnoli, buf[:c])
		for i := int64(0); i < c; i += 8 {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[i:])))
		}
		remaining -= c
	}
	if crc != sec.crc {
		return nil, fmt.Errorf("graphio: %s section checksum mismatch: computed %#x, stored %#x", name, crc, sec.crc)
	}
	return out, nil
}

// SniffIndexFormat reports the layout version of an index file from its
// first bytes (v1 reports as FormatV2: same streaming read path).
func SniffIndexFormat(path string) (IndexFormat, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, fmt.Errorf("graphio: reading %s header: %w", path, err)
	}
	if binary.LittleEndian.Uint32(head[:]) != indexMagic {
		return 0, fmt.Errorf("graphio: bad index magic %#x", binary.LittleEndian.Uint32(head[:]))
	}
	if binary.LittleEndian.Uint32(head[4:]) == formatV3 {
		return FormatV3, nil
	}
	return FormatV2, nil
}
