package graphio

import (
	"bufio"
	"fmt"
	"io"

	"equitruss/internal/core"
	"equitruss/internal/graph"
)

// WriteSummaryDOT renders the supergraph in Graphviz DOT: one node per
// supernode labelled "ν<id> k=<k> |E|=<members>", one undirected edge per
// superedge — the picture in the paper's Figure 3b, for any graph.
func WriteSummaryDOT(w io.Writer, sg *core.SummaryGraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph equitruss {")
	fmt.Fprintln(bw, "  node [shape=ellipse];")
	for s := int32(0); s < sg.NumSupernodes(); s++ {
		members := sg.EdgeOffsets[s+1] - sg.EdgeOffsets[s]
		fmt.Fprintf(bw, "  sn%d [label=\"ν%d k=%d |E|=%d\"];\n", s, s, sg.K[s], members)
	}
	for s := int32(0); s < sg.NumSupernodes(); s++ {
		for _, nb := range sg.SupernodeNeighbors(s) {
			if s < nb {
				fmt.Fprintf(bw, "  sn%d -- sn%d;\n", s, nb)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteGraphDOT renders the original graph in DOT with optional per-edge
// trussness labels (pass nil to omit), matching the paper's Figure 3a
// presentation. Intended for small graphs.
func WriteGraphDOT(w io.Writer, g *graph.Graph, tau []int32) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph g {")
	fmt.Fprintln(bw, "  node [shape=circle];")
	for eid := int32(0); eid < int32(g.NumEdges()); eid++ {
		e := g.Edge(eid)
		if tau != nil {
			fmt.Fprintf(bw, "  %d -- %d [label=\"%d\"];\n", e.U, e.V, tau[eid])
		} else {
			fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
