package graphio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"equitruss/internal/core"
	"equitruss/internal/faults"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// Format v2 wraps the v1 payload in CRC32C (Castagnoli) checksums so any
// single flipped byte in a stored file is detected at load time instead of
// surfacing as a subtly wrong index:
//
//	header  = magic, version, size fields, headerCRC
//	section = payload bytes, sectionCRC          (one per array)
//	trailer = trailerMagic, fileCRC              (fileCRC covers everything
//	                                              before it, CRCs included)
//
// The header CRC is verified before any size field drives an allocation;
// each section CRC is verified as soon as its payload is decoded; the file
// CRC catches flips in the interleaved CRC fields themselves and in the
// trailer magic. v1 files remain readable (with a one-time deprecation
// warning) — they simply skip every verification.

const (
	formatV2 = uint32(2)

	// trailerMagic marks the end of a v2 stream ("EQTX").
	trailerMagic = uint32(0x45515458)

	// Fault-injection sites armed by the chaos suite (internal/faults).
	siteRead  = "graphio.read"
	siteWrite = "graphio.write"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var cV1Reads = obs.GetCounter("graphio_v1_reads",
	"checksum-less v1 binary files accepted by the graphio readers")

var v1WarnOnce sync.Once

// warnV1 counts a v1 read and prints the deprecation warning once per
// process.
func warnV1(what string) {
	cV1Reads.Inc()
	v1WarnOnce.Do(func() {
		fmt.Fprintf(os.Stderr, "graphio: warning: reading legacy v1 %s file without checksums; "+
			"re-save to upgrade to the checksummed v2 format\n", what)
	})
}

// crcWriter accumulates a per-section CRC and a whole-file CRC over every
// byte it forwards.
type crcWriter struct {
	w       io.Writer
	file    uint32
	section uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.file = crc32.Update(cw.file, castagnoli, p[:n])
	cw.section = crc32.Update(cw.section, castagnoli, p[:n])
	return n, err
}

// endSection emits the CRC of the bytes written since the previous section
// boundary and starts the next section.
func (cw *crcWriter) endSection() error {
	crc := cw.section
	if err := binary.Write(cw, binary.LittleEndian, crc); err != nil {
		return err
	}
	cw.section = 0
	return nil
}

// writeTrailer emits the trailer magic followed by the whole-file CRC.
func (cw *crcWriter) writeTrailer() error {
	if err := binary.Write(cw, binary.LittleEndian, trailerMagic); err != nil {
		return err
	}
	return binary.Write(cw, binary.LittleEndian, cw.file)
}

// crcReader mirrors crcWriter on the decode side.
type crcReader struct {
	r       io.Reader
	file    uint32
	section uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.file = crc32.Update(cr.file, castagnoli, p[:n])
	cr.section = crc32.Update(cr.section, castagnoli, p[:n])
	return n, err
}

// endSection reads the stored section CRC and compares it against the CRC
// of the bytes consumed since the previous boundary.
func (cr *crcReader) endSection(what string) error {
	got := cr.section
	var want uint32
	if err := binary.Read(cr, binary.LittleEndian, &want); err != nil {
		return fmt.Errorf("graphio: reading %s checksum: %w", what, err)
	}
	cr.section = 0
	if got != want {
		return fmt.Errorf("graphio: %s checksum mismatch: computed %#x, stored %#x", what, got, want)
	}
	return nil
}

// checkTrailer verifies the trailer magic and the whole-file CRC.
func (cr *crcReader) checkTrailer() error {
	var magic uint32
	if err := binary.Read(cr, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("graphio: reading trailer: %w", err)
	}
	if magic != trailerMagic {
		return fmt.Errorf("graphio: bad trailer magic %#x", magic)
	}
	got := cr.file
	var want uint32
	if err := binary.Read(cr, binary.LittleEndian, &want); err != nil {
		return fmt.Errorf("graphio: reading file checksum: %w", err)
	}
	if got != want {
		return fmt.Errorf("graphio: file checksum mismatch: computed %#x, stored %#x", got, want)
	}
	return nil
}

// AtomicWriteFile writes a file crash-safely: the payload goes to a
// same-directory temp file which is fsynced, closed, and renamed over the
// destination, and the directory is fsynced so the rename itself is
// durable. A crash at any point leaves either the old file or the new one,
// never a torn mix; stray temp files are the only possible debris. It is
// the save path behind WriteBinaryIndexFile/WriteBinaryGraphFile and is
// exported for other durable writers (the WAL's compaction rewrite).
func AtomicWriteFile(path string, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("graphio: creating temp file: %w", err)
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	if err := fill(tmp); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("graphio: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("graphio: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("graphio: renaming into place: %w", err)
	}
	// The rename is only durable once the directory entry itself is on
	// disk: without this fsync a crash immediately after Save can roll the
	// directory back to a state where the new file never existed. A failure
	// here is a durability failure and must surface to the caller, not be
	// swallowed.
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("graphio: syncing directory %s after rename: %w", dir, err)
	}
	return nil
}

// SyncDir fsyncs a directory so a preceding rename or create in it is
// durable. Filesystems that cannot fsync directories (some network mounts)
// report EINVAL or ENOTSUP; those are tolerated — the platform simply
// offers no stronger guarantee — while real I/O errors are returned.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return err
	}
	return nil
}

// WriteBinaryIndexFile atomically writes a summary graph to path in the v2
// checksummed format (see AtomicWriteFile for the crash-safety contract).
func WriteBinaryIndexFile(path string, sg *core.SummaryGraph) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		return WriteBinaryIndex(w, sg)
	})
}

// ReadBinaryIndexFile reads a summary graph from a file written by
// WriteBinaryIndexFile (or any WriteBinaryIndex stream, v1 or v2).
func ReadBinaryIndexFile(path string) (*core.SummaryGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinaryIndex(f)
}

// WriteBinaryGraphFile atomically writes a graph to path in the v2
// checksummed format.
func WriteBinaryGraphFile(path string, g *graph.Graph) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		return WriteBinaryGraph(w, g)
	})
}

// ReadBinaryGraphFile reads a graph from a file written by
// WriteBinaryGraphFile (or any WriteBinaryGraph stream, v1 or v2).
func ReadBinaryGraphFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinaryGraph(f)
}

// injectRead/injectWrite are the chaos hooks: no-ops unless the fault
// harness armed the graphio sites.
func injectRead() error  { return faults.Inject(siteRead) }
func injectWrite() error { return faults.Inject(siteWrite) }
