package graphio

import (
	"compress/gzip"
	"io"
	"os"
	"strings"
)

// openMaybeGzip opens path for reading, transparently decompressing when
// the name ends in ".gz" — SNAP distributes its edge lists gzipped, so the
// loaders accept them directly.
func openMaybeGzip(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &gzipReadCloser{zr: zr, f: f}, nil
}

type gzipReadCloser struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipReadCloser) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipReadCloser) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// createMaybeGzip creates path for writing, compressing when the name ends
// in ".gz".
func createMaybeGzip(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	return &gzipWriteCloser{zw: gzip.NewWriter(f), f: f}, nil
}

type gzipWriteCloser struct {
	zw *gzip.Writer
	f  *os.File
}

func (g *gzipWriteCloser) Write(p []byte) (int, error) { return g.zw.Write(p) }

func (g *gzipWriteCloser) Close() error {
	zerr := g.zw.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}
