// Package graphio reads and writes graphs and indexes: SNAP-style
// whitespace-separated edge-list text (the format of the paper's datasets)
// and a compact little-endian binary format for graphs and summary graphs
// so large inputs and built indexes can be cached between runs.
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"equitruss/internal/core"
	"equitruss/internal/graph"
)

// ReadEdgeList parses SNAP-style text: one "u v" pair per line, '#' or '%'
// comment lines ignored, duplicate edges and self-loops tolerated (the CSR
// builder removes them).
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graphio: line %d: want 'u v', got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad vertex %q: %v", line, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad vertex %q: %v", line, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graphio: line %d: negative vertex id in %q", line, text)
		}
		edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: scan: %w", err)
	}
	return graph.FromEdgeList(edges, 0)
}

// ReadEdgeListFile opens and parses an edge-list file. Files ending in
// ".gz" are decompressed transparently (SNAP's distribution format).
func ReadEdgeListFile(path string) (*graph.Graph, error) {
	f, err := openMaybeGzip(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes the graph as SNAP-style text with a header comment.
// Write errors are detected per line, not deferred to the final flush, so a
// full disk or broken pipe stops the loop instead of formatting millions of
// lines into a dead writer.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	if err := injectWrite(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# undirected graph: %d vertices, %d edges\n",
		g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile writes the graph to a file, gzip-compressed when the
// path ends in ".gz". On gzip paths the final Close flushes the compressor,
// so a short write surfacing only there is still reported (wrapped with the
// path), not swallowed.
func WriteEdgeListFile(path string, g *graph.Graph) error {
	f, err := createMaybeGzip(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return fmt.Errorf("graphio: writing edge list %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("graphio: closing edge list %s: %w", path, err)
	}
	return nil
}

const (
	graphMagic = uint32(0x45515452) // "EQTR"
	indexMagic = uint32(0x45515449) // "EQTI"
	formatV1   = uint32(1)

	// maxSaneCount bounds any size field read from an untrusted stream
	// before it drives an allocation: vertex and edge IDs are int32, so any
	// count a valid file can carry is at most MaxInt32 — the bound must be
	// inclusive-safe, because a field equal to 1<<31 would survive a
	// strictly-greater check and then wrap negative in an int32 conversion.
	maxSaneCount = int64(math.MaxInt32)
)

// readSlice reads n fixed-size elements in bounded chunks, so a corrupt
// header claiming billions of entries makes the read fail when the stream
// runs dry instead of driving one giant up-front allocation.
func readSlice[T any](r io.Reader, n int64) ([]T, error) {
	var zero T
	elem := int64(binary.Size(zero))
	chunk := (int64(1) << 22) / elem // ≤ 4 MiB per read
	out := make([]T, 0, min(n, chunk))
	for int64(len(out)) < n {
		c := min(n-int64(len(out)), chunk)
		buf := make([]T, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

// WriteBinaryGraph serializes the graph in the compact binary format
// (current version: v2, with CRC32C section checksums and a whole-file
// trailer — see checksum.go for the layout).
func WriteBinaryGraph(w io.Writer, g *graph.Graph) error {
	if err := injectWrite(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	// Header section: magic, version, sizes, then the header CRC.
	for _, h := range []uint32{graphMagic, formatV2} {
		if err := binary.Write(cw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, int64(g.NumVertices())); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, g.NumEdges()); err != nil {
		return err
	}
	if err := cw.endSection(); err != nil {
		return err
	}
	// Edge section.
	if err := binary.Write(cw, binary.LittleEndian, g.Edges()); err != nil {
		return err
	}
	if err := cw.endSection(); err != nil {
		return err
	}
	if err := cw.writeTrailer(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinaryGraph deserializes a graph written by WriteBinaryGraph. Both
// the checksummed v2 format and the legacy v1 format are accepted; v1 skips
// all verification and triggers a one-time deprecation warning.
func ReadBinaryGraph(r io.Reader) (*graph.Graph, error) {
	if err := injectRead(); err != nil {
		return nil, err
	}
	cr := &crcReader{r: bufio.NewReader(r)}
	var magic, version uint32
	if err := binary.Read(cr, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != graphMagic {
		return nil, fmt.Errorf("graphio: bad graph magic %#x", magic)
	}
	if err := binary.Read(cr, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	checked := false
	switch version {
	case formatV1:
		warnV1("graph")
	case formatV2:
		checked = true
	default:
		return nil, fmt.Errorf("graphio: unsupported graph format version %d", version)
	}
	var n, m int64
	if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(cr, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if checked {
		// Verify the header before the size fields drive any allocation.
		if err := cr.endSection("graph header"); err != nil {
			return nil, err
		}
	}
	if n < 0 || m < 0 || n > maxSaneCount || m > maxSaneCount {
		return nil, fmt.Errorf("graphio: corrupt header n=%d m=%d", n, m)
	}
	edges, err := readSlice[graph.Edge](cr, m)
	if err != nil {
		return nil, err
	}
	if checked {
		if err := cr.endSection("graph edges"); err != nil {
			return nil, err
		}
		if err := cr.checkTrailer(); err != nil {
			return nil, err
		}
	}
	return graph.FromEdgeList(edges, int32(n))
}

// indexSectionNames label the seven array sections of the index format,
// in stream order, for checksum-mismatch error messages.
var indexSectionNames = [...]string{
	"tau", "edge-to-supernode", "supernode-k", "edge-list", "adjacency",
	"edge-offsets", "adjacency-offsets",
}

// WriteBinaryIndex serializes a summary graph (current version: v2, with
// CRC32C section checksums and a whole-file trailer — see checksum.go).
func WriteBinaryIndex(w io.Writer, sg *core.SummaryGraph) error {
	if err := injectWrite(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	// Header section: magic, version, sizes, then the header CRC.
	for _, h := range []uint32{indexMagic, formatV2} {
		if err := binary.Write(cw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	sizes := []int64{
		int64(len(sg.Tau)), int64(len(sg.K)),
		int64(len(sg.EdgeList)), int64(len(sg.Adj)),
	}
	if err := binary.Write(cw, binary.LittleEndian, sizes); err != nil {
		return err
	}
	if err := cw.endSection(); err != nil {
		return err
	}
	// One checksummed section per array.
	for _, arr := range [][]int32{sg.Tau, sg.EdgeToSN, sg.K, sg.EdgeList, sg.Adj} {
		if err := binary.Write(cw, binary.LittleEndian, arr); err != nil {
			return err
		}
		if err := cw.endSection(); err != nil {
			return err
		}
	}
	for _, arr := range [][]int64{sg.EdgeOffsets, sg.AdjOffsets} {
		if err := binary.Write(cw, binary.LittleEndian, arr); err != nil {
			return err
		}
		if err := cw.endSection(); err != nil {
			return err
		}
	}
	if err := cw.writeTrailer(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinaryIndex deserializes a summary graph written by any of the index
// writers: the flat v3 layout, the checksummed v2 stream, and the legacy v1
// format are auto-detected from the first eight bytes (v1 skips all
// verification and triggers a one-time deprecation warning). For v2/v3, the
// header checksum is verified before any size field drives an allocation
// and every section checksum as its payload is decoded — any single flipped
// byte in a stored stream is rejected with a checksum error. This is the
// portable heap-decoding path; use MapIndexFile for the zero-copy v3 load.
func ReadBinaryIndex(r io.Reader) (*core.SummaryGraph, error) {
	if err := injectRead(); err != nil {
		return nil, err
	}
	br := bufio.NewReader(r)
	// Sniff the version without consuming: v3 has its own fixed-header
	// decoder; v1/v2 re-read these bytes through the CRC accumulator.
	if head, err := br.Peek(8); err == nil &&
		binary.LittleEndian.Uint32(head) == indexMagic &&
		binary.LittleEndian.Uint32(head[4:]) == formatV3 {
		return readBinaryIndexV3(br)
	}
	cr := &crcReader{r: br}
	var magic, version uint32
	if err := binary.Read(cr, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("graphio: bad index magic %#x", magic)
	}
	if err := binary.Read(cr, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	checked := false
	switch version {
	case formatV1:
		warnV1("index")
	case formatV2:
		checked = true
	default:
		return nil, fmt.Errorf("graphio: unsupported index format version %d", version)
	}
	sizes := make([]int64, 4)
	if err := binary.Read(cr, binary.LittleEndian, sizes); err != nil {
		return nil, err
	}
	if checked {
		if err := cr.endSection("index header"); err != nil {
			return nil, err
		}
	}
	m, s, el, al := sizes[0], sizes[1], sizes[2], sizes[3]
	for _, sz := range sizes {
		if sz < 0 || sz > maxSaneCount {
			return nil, fmt.Errorf("graphio: corrupt index sizes %v", sizes)
		}
	}
	sg := &core.SummaryGraph{}
	section := 0
	endSection := func() error {
		name := indexSectionNames[section]
		section++
		if !checked {
			return nil
		}
		return cr.endSection(name + " section")
	}
	var err error
	if sg.Tau, err = readSlice[int32](cr, m); err != nil {
		return nil, err
	}
	if err := endSection(); err != nil {
		return nil, err
	}
	if sg.EdgeToSN, err = readSlice[int32](cr, m); err != nil {
		return nil, err
	}
	if err := endSection(); err != nil {
		return nil, err
	}
	if sg.K, err = readSlice[int32](cr, s); err != nil {
		return nil, err
	}
	if err := endSection(); err != nil {
		return nil, err
	}
	if sg.EdgeList, err = readSlice[int32](cr, el); err != nil {
		return nil, err
	}
	if err := endSection(); err != nil {
		return nil, err
	}
	if sg.Adj, err = readSlice[int32](cr, al); err != nil {
		return nil, err
	}
	if err := endSection(); err != nil {
		return nil, err
	}
	if sg.EdgeOffsets, err = readSlice[int64](cr, s+1); err != nil {
		return nil, err
	}
	if err := endSection(); err != nil {
		return nil, err
	}
	if sg.AdjOffsets, err = readSlice[int64](cr, s+1); err != nil {
		return nil, err
	}
	if err := endSection(); err != nil {
		return nil, err
	}
	if checked {
		if err := cr.checkTrailer(); err != nil {
			return nil, err
		}
	}
	// The stream decoded, but nothing above guarantees the IDs inside make
	// sense: a corrupt or mismatched index with out-of-range member edges,
	// superedge endpoints, or broken CSR offsets would panic at query time.
	// Reject it here with a descriptive error instead.
	if err := sg.ValidateLoaded(); err != nil {
		return nil, fmt.Errorf("graphio: corrupt index: %w", err)
	}
	return sg, nil
}
