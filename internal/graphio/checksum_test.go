package graphio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"equitruss/internal/core"
	"equitruss/internal/faults"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// testSummaryGraph builds a small real index for serialization tests.
func testSummaryGraph(t testing.TB) *core.SummaryGraph {
	t.Helper()
	g := gen.PaperFigure3()
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 1)
	return sg
}

// writeBinaryIndexV1 emits the legacy checksum-less v1 index layout, which
// the current writer no longer produces but the reader must keep accepting.
func writeBinaryIndexV1(w io.Writer, sg *core.SummaryGraph) error {
	for _, h := range []uint32{indexMagic, formatV1} {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	sizes := []int64{
		int64(len(sg.Tau)), int64(len(sg.K)),
		int64(len(sg.EdgeList)), int64(len(sg.Adj)),
	}
	if err := binary.Write(w, binary.LittleEndian, sizes); err != nil {
		return err
	}
	for _, arr := range [][]int32{sg.Tau, sg.EdgeToSN, sg.K, sg.EdgeList, sg.Adj} {
		if err := binary.Write(w, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	for _, arr := range [][]int64{sg.EdgeOffsets, sg.AdjOffsets} {
		if err := binary.Write(w, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	return nil
}

// TestIndexV2AnyByteFlipDetected is the crash-safety acceptance criterion:
// flipping any single byte of a stored v2 index must make ReadBinaryIndex
// fail. (Structural validation alone cannot promise this — many payload
// flips produce a different but still well-formed index — so every flip
// must be caught by a checksum or framing check.)
func TestIndexV2AnyByteFlipDetected(t *testing.T) {
	sg := testSummaryGraph(t)
	var buf bytes.Buffer
	if err := WriteBinaryIndex(&buf, sg); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for i := range blob {
		mutated := bytes.Clone(blob)
		mutated[i] ^= 0xFF
		if _, err := ReadBinaryIndex(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("flip of byte %d/%d accepted", i, len(blob))
		}
	}
}

// TestGraphV2AnyByteFlipDetected mirrors the index criterion for graphs.
func TestGraphV2AnyByteFlipDetected(t *testing.T) {
	g := gen.Clique(6)
	var buf bytes.Buffer
	if err := WriteBinaryGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for i := range blob {
		mutated := bytes.Clone(blob)
		mutated[i] ^= 0xFF
		if _, err := ReadBinaryGraph(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("flip of byte %d/%d accepted", i, len(blob))
		}
	}
}

// TestIndexV2SingleBitFlipDetected tightens the flip test to single bits at
// a sample of positions (all 8 bits of every 7th byte keeps it fast).
func TestIndexV2SingleBitFlipDetected(t *testing.T) {
	sg := testSummaryGraph(t)
	var buf bytes.Buffer
	if err := WriteBinaryIndex(&buf, sg); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for i := 0; i < len(blob); i += 7 {
		for bit := 0; bit < 8; bit++ {
			mutated := bytes.Clone(blob)
			mutated[i] ^= 1 << bit
			if _, err := ReadBinaryIndex(bytes.NewReader(mutated)); err == nil {
				t.Fatalf("flip of byte %d bit %d accepted", i, bit)
			}
		}
	}
}

// TestChecksumErrorNamesSection corrupts one known payload byte and checks
// the error identifies the damaged section, which is what makes a bad disk
// diagnosable.
func TestChecksumErrorNamesSection(t *testing.T) {
	sg := testSummaryGraph(t)
	var buf bytes.Buffer
	if err := WriteBinaryIndex(&buf, sg); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// First tau payload byte: after magic+version (8) + sizes (32) +
	// header CRC (4).
	blob[44] ^= 0xFF
	_, err := ReadBinaryIndex(bytes.NewReader(blob))
	if err == nil {
		t.Fatal("corrupt tau section accepted")
	}
	if !strings.Contains(err.Error(), "tau section checksum mismatch") {
		t.Fatalf("error %q does not name the tau section", err)
	}
}

// TestIndexV1StillReadable locks in backward compatibility: a v1 stream
// (no checksums) must decode to the identical index and bump the
// deprecation counter.
func TestIndexV1StillReadable(t *testing.T) {
	sg := testSummaryGraph(t)
	var buf bytes.Buffer
	if err := writeBinaryIndexV1(&buf, sg); err != nil {
		t.Fatal(err)
	}
	before := cV1Reads.Value()
	sg2, err := ReadBinaryIndex(&buf)
	if err != nil {
		t.Fatalf("v1 index rejected: %v", err)
	}
	if cV1Reads.Value() != before+1 {
		t.Fatal("v1 read did not bump graphio_v1_reads")
	}
	g := gen.PaperFigure3()
	if sg.Canonical(g) != sg2.Canonical(g) {
		t.Fatal("v1 decode differs from original index")
	}
}

// TestIndexFileRoundTrip exercises the atomic file path end to end.
func TestIndexFileRoundTrip(t *testing.T) {
	sg := testSummaryGraph(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.eqt")
	if err := WriteBinaryIndexFile(path, sg); err != nil {
		t.Fatal(err)
	}
	sg2, err := ReadBinaryIndexFile(path)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.PaperFigure3()
	if sg.Canonical(g) != sg2.Canonical(g) {
		t.Fatal("file round trip changed the index")
	}
	// No temp debris after a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the index", len(entries))
	}
}

// TestAtomicWritePreservesOldFileOnFailure arms the graphio.write fault
// site and checks a failed save leaves the previous index intact and
// loadable — the crash-safety contract of temp+rename.
func TestAtomicWritePreservesOldFileOnFailure(t *testing.T) {
	sg := testSummaryGraph(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.eqt")
	if err := WriteBinaryIndexFile(path, sg); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	faults.Enable(99)
	faults.Set(siteWrite, faults.Plan{Action: faults.Error, Every: 1})
	err = WriteBinaryIndexFile(path, sg)
	faults.Disable()
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}

	now, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, now) {
		t.Fatal("failed save modified the destination file")
	}
	if _, err := ReadBinaryIndexFile(path); err != nil {
		t.Fatalf("old index unreadable after failed save: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("failed save left %d entries, want 1 (no temp debris)", len(entries))
	}
}

// TestGraphioReadFaultInjection checks the read-side chaos hook surfaces
// ErrInjected through both readers.
func TestGraphioReadFaultInjection(t *testing.T) {
	sg := testSummaryGraph(t)
	var ibuf bytes.Buffer
	if err := WriteBinaryIndex(&ibuf, sg); err != nil {
		t.Fatal(err)
	}
	g := gen.Clique(4)
	var gbuf bytes.Buffer
	if err := WriteBinaryGraph(&gbuf, g); err != nil {
		t.Fatal(err)
	}

	faults.Enable(7)
	faults.Set(siteRead, faults.Plan{Action: faults.Error, Every: 1})
	defer faults.Disable()
	if _, err := ReadBinaryIndex(bytes.NewReader(ibuf.Bytes())); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("index read err = %v, want injected fault", err)
	}
	if _, err := ReadBinaryGraph(bytes.NewReader(gbuf.Bytes())); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("graph read err = %v, want injected fault", err)
	}
}

// TestBinaryGraphV1StillReadable mirrors the index compat test for graphs.
func TestBinaryGraphV1StillReadable(t *testing.T) {
	g := gen.Clique(5)
	var buf bytes.Buffer
	for _, h := range []uint32{graphMagic, formatV1} {
		if err := binary.Write(&buf, binary.LittleEndian, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := binary.Write(&buf, binary.LittleEndian, int64(g.NumVertices())); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(&buf, binary.LittleEndian, g.NumEdges()); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(&buf, binary.LittleEndian, g.Edges()); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryGraph(&buf)
	if err != nil {
		t.Fatalf("v1 graph rejected: %v", err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		if g.Edge(e) != g2.Edge(e) {
			t.Fatalf("edge %d differs", e)
		}
	}
}

var _ = graph.Edge{}
