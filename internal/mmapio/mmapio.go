// Package mmapio memory-maps files read-only and reinterprets the mapped
// bytes as typed slices without copying — the substrate of the v3 flat
// index layout's zero-copy load path. A Mapping stays valid for as long as
// it is reachable; an owner that hands out views into the region (the
// summary graph's array fields) must keep a reference to the Mapping
// alongside them, because the garbage collector does not trace mapped
// memory and an unreferenced Mapping is unmapped by its finalizer.
package mmapio

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// HostLittleEndian reports whether the host stores integers little-endian.
// The v3 index layout is little-endian on disk, so only LE hosts can serve
// it zero-copy; BE hosts fall back to the streaming decoder.
var HostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Mapping is one read-only mapped file (or, on platforms without mmap, a
// heap buffer holding the file's contents — same interface, no zero-copy).
type Mapping struct {
	data   []byte
	mapped bool // true when data is an OS mapping, false for the heap fallback

	unmapOnce sync.Once
	unmapErr  error

	// verifyErr records the outcome of a deferred integrity check (the
	// lazy-verify mode of the index loader): the background verifier stores
	// here, health surfaces read it. verifyDone flips once that check has
	// finished, clean or not.
	verifyErr  atomic.Pointer[error]
	verifyDone atomic.Bool
}

// Open maps path read-only in its entirety. The returned Mapping carries a
// finalizer, so an unreachable Mapping releases its region even if Unmap is
// never called — but callers that retain views into Bytes must keep the
// Mapping reachable for as long as any view is in use.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size < 0 || uint64(size) > uint64(maxMapSize) {
		return nil, fmt.Errorf("mmapio: %s: size %d not mappable", path, size)
	}
	data, mapped, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("mmapio: mapping %s: %w", path, err)
	}
	m := &Mapping{data: data, mapped: mapped}
	runtime.SetFinalizer(m, (*Mapping).Unmap)
	return m, nil
}

// Bytes returns the mapped contents. The slice aliases the mapping: it is
// invalid after Unmap.
func (m *Mapping) Bytes() []byte { return m.data }

// Len returns the mapped length in bytes.
func (m *Mapping) Len() int { return len(m.data) }

// Mapped reports whether the data is an OS mapping (true) or the heap
// fallback (false). Only OS mappings count toward mmap_bytes metrics.
func (m *Mapping) Mapped() bool { return m.mapped }

// Unmap releases the region. Idempotent; every view handed out from Bytes
// (and every typed slice cast over it) is invalid afterwards. The finalizer
// calls this automatically when the Mapping becomes unreachable.
func (m *Mapping) Unmap() error {
	m.unmapOnce.Do(func() {
		if m.mapped && m.data != nil {
			m.unmapErr = unmap(m.data)
		}
		m.data = nil
	})
	return m.unmapErr
}

// SetVerifyErr records the outcome of a deferred integrity check. Only the
// first error sticks.
func (m *Mapping) SetVerifyErr(err error) {
	if err == nil {
		return
	}
	m.verifyErr.CompareAndSwap(nil, &err)
}

// MarkVerifyDone records that a deferred integrity check has run to
// completion (whatever its outcome).
func (m *Mapping) MarkVerifyDone() { m.verifyDone.Store(true) }

// VerifyDone reports whether a deferred integrity check has finished. It
// stays false for mappings whose loader verified eagerly — there is no
// deferred check to wait on.
func (m *Mapping) VerifyDone() bool { return m.verifyDone.Load() }

// VerifyErr returns the error recorded by a deferred integrity check, or
// nil when none has (yet) been found. With lazy verification a corrupt
// section may be discovered only after serving has started; pollers (health
// endpoints) surface this.
func (m *Mapping) VerifyErr() error {
	if p := m.verifyErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Int32s reinterprets b as a little-endian []int32 without copying. The
// byte length must be a multiple of 4 and the base pointer 4-aligned; the
// v3 layout's 64-byte section alignment guarantees both. Only valid on
// little-endian hosts.
func Int32s(b []byte) ([]int32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("mmapio: %d bytes not a whole number of int32s", len(b))
	}
	if len(b) == 0 {
		return []int32{}, nil
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%unsafe.Alignof(int32(0)) != 0 {
		return nil, fmt.Errorf("mmapio: base address %p misaligned for int32", p)
	}
	return unsafe.Slice((*int32)(p), len(b)/4), nil
}

// Int64s reinterprets b as a little-endian []int64 without copying. The
// byte length must be a multiple of 8 and the base pointer 8-aligned.
func Int64s(b []byte) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mmapio: %d bytes not a whole number of int64s", len(b))
	}
	if len(b) == 0 {
		return []int64{}, nil
	}
	p := unsafe.Pointer(&b[0])
	if uintptr(p)%unsafe.Alignof(int64(0)) != 0 {
		return nil, fmt.Errorf("mmapio: base address %p misaligned for int64", p)
	}
	return unsafe.Slice((*int64)(p), len(b)/8), nil
}

// Int32Bytes returns the little-endian byte image of a — zero-copy on LE
// hosts, an encoded copy on BE hosts. The writer side of the v3 layout uses
// this to checksum and emit sections without staging buffers.
func Int32Bytes(a []int32) []byte {
	if len(a) == 0 {
		return nil
	}
	if HostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&a[0])), len(a)*4)
	}
	out := make([]byte, len(a)*4)
	for i, v := range a {
		u := uint32(v)
		out[4*i] = byte(u)
		out[4*i+1] = byte(u >> 8)
		out[4*i+2] = byte(u >> 16)
		out[4*i+3] = byte(u >> 24)
	}
	return out
}

// Int64Bytes returns the little-endian byte image of a — zero-copy on LE
// hosts, an encoded copy on BE hosts.
func Int64Bytes(a []int64) []byte {
	if len(a) == 0 {
		return nil
	}
	if HostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&a[0])), len(a)*8)
	}
	out := make([]byte, len(a)*8)
	for i, v := range a {
		u := uint64(v)
		for j := 0; j < 8; j++ {
			out[8*i+j] = byte(u >> (8 * j))
		}
	}
	return out
}
