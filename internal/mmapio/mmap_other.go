//go:build !unix

package mmapio

import (
	"io"
	"math"
	"os"
	"unsafe"
)

// maxMapSize bounds the heap fallback to what one allocation can hold.
const maxMapSize = int64(math.MaxInt - 8)

// mapFile is the portable fallback for platforms without mmap: read the
// whole file into the heap. Same interface, no zero-copy — loads still
// work, they just pay the allocation and the copy. The backing store is an
// []int64 so the base address is 8-aligned, which the typed-slice casts
// over 64-byte-aligned file sections rely on.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	buf := make([]int64, (size+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

// unmap is a no-op for the heap fallback; the GC reclaims the buffer.
func unmap(data []byte) error { return nil }
