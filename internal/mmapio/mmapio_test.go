package mmapio

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// writeTemp writes b to a fresh file and returns its path.
func writeTemp(t *testing.T, b []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenAndCast(t *testing.T) {
	// 64 bytes: 8 int32s then 4 int64s, little-endian.
	buf := make([]byte, 64)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(i*3))
	}
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(buf[32+8*i:], uint64(1000+i))
	}
	m, err := Open(writeTemp(t, buf))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Unmap()
	if m.Len() != 64 {
		t.Fatalf("Len = %d, want 64", m.Len())
	}
	if !HostLittleEndian {
		t.Skip("casts are LE-host only")
	}
	i32, err := Int32s(m.Bytes()[:32])
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range i32 {
		if v != int32(i*3) {
			t.Fatalf("i32[%d] = %d, want %d", i, v, i*3)
		}
	}
	i64, err := Int64s(m.Bytes()[32:])
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range i64 {
		if v != int64(1000+i) {
			t.Fatalf("i64[%d] = %d, want %d", i, v, 1000+i)
		}
	}
}

func TestOpenEmptyFile(t *testing.T) {
	m, err := Open(writeTemp(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
	if err := m.Unmap(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope.bin")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestUnmapIdempotent(t *testing.T) {
	m, err := Open(writeTemp(t, make([]byte, 128)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Unmap(); err != nil {
		t.Fatal(err)
	}
	if err := m.Unmap(); err != nil {
		t.Fatalf("second Unmap: %v", err)
	}
	if m.Bytes() != nil {
		t.Fatal("Bytes non-nil after Unmap")
	}
}

func TestCastRejectsBadLengths(t *testing.T) {
	b := make([]byte, 10)
	if _, err := Int32s(b); err == nil {
		t.Fatal("Int32s accepted 10 bytes")
	}
	if _, err := Int64s(b); err == nil {
		t.Fatal("Int64s accepted 10 bytes")
	}
	if s, err := Int32s(nil); err != nil || len(s) != 0 {
		t.Fatalf("Int32s(nil) = %v, %v", s, err)
	}
	if s, err := Int64s(nil); err != nil || len(s) != 0 {
		t.Fatalf("Int64s(nil) = %v, %v", s, err)
	}
}

func TestCastRejectsMisalignment(t *testing.T) {
	buf := make([]byte, 17)
	if _, err := Int64s(buf[1:9]); err == nil {
		t.Fatal("Int64s accepted a misaligned base")
	}
}

func TestByteImagesRoundTrip(t *testing.T) {
	a32 := []int32{0, -1, 1 << 30, -(1 << 30), 7}
	b := Int32Bytes(a32)
	for i, v := range a32 {
		if got := int32(binary.LittleEndian.Uint32(b[4*i:])); got != v {
			t.Fatalf("Int32Bytes[%d] = %d, want %d", i, got, v)
		}
	}
	a64 := []int64{0, -1, 1 << 40, -(1 << 40)}
	b = Int64Bytes(a64)
	for i, v := range a64 {
		if got := int64(binary.LittleEndian.Uint64(b[8*i:])); got != v {
			t.Fatalf("Int64Bytes[%d] = %d, want %d", i, got, v)
		}
	}
	if Int32Bytes(nil) != nil || Int64Bytes(nil) != nil {
		t.Fatal("byte image of empty slice should be nil")
	}
}

func TestVerifyErrSticks(t *testing.T) {
	m := &Mapping{}
	if m.VerifyErr() != nil {
		t.Fatal("fresh mapping has a verify error")
	}
	m.SetVerifyErr(nil)
	if m.VerifyErr() != nil {
		t.Fatal("SetVerifyErr(nil) recorded an error")
	}
	first := errors.New("first")
	m.SetVerifyErr(first)
	m.SetVerifyErr(errors.New("second"))
	if got := m.VerifyErr(); got != first {
		t.Fatalf("VerifyErr = %v, want the first error to stick", got)
	}
}

// TestFinalizerUnmaps proves an unreachable Mapping releases its region
// without an explicit Unmap — the property the serving stack's epoch-swap
// lifecycle relies on (old mapped epochs are dropped, never unmapped by
// hand, because cached query results may still alias the arrays).
func TestFinalizerUnmaps(t *testing.T) {
	done := make(chan struct{})
	func() {
		m, err := Open(writeTemp(t, make([]byte, 4096)))
		if err != nil {
			t.Fatal(err)
		}
		// Chain our own finalizer observation through a sentinel: the
		// Mapping's finalizer is already taken by Unmap, so watch a
		// same-lifetime object instead.
		type pin struct{ m *Mapping }
		p := &pin{m: m}
		runtime.SetFinalizer(p, func(*pin) { close(done) })
	}()
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-done:
			return
		case <-deadline:
			t.Fatal("mapping finalizer did not run within 5s of unreachability")
		case <-time.After(10 * time.Millisecond):
		}
	}
}
