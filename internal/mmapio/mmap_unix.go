//go:build unix

package mmapio

import (
	"math"
	"os"
	"syscall"
)

// maxMapSize bounds one mapping to what an int-indexed slice can address.
const maxMapSize = int64(math.MaxInt)

// mapFile maps size bytes of f read-only. A zero-length file maps to an
// empty, unmapped buffer — mmap of length 0 is an error on most kernels,
// and there is nothing to share anyway.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// unmap releases a region returned by mapFile.
func unmap(data []byte) error {
	return syscall.Munmap(data)
}
