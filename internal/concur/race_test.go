package concur

import (
	"sync/atomic"
	"testing"

	"equitruss/internal/obs"
)

// The stress tests below are primarily race-detector fodder (`make ci` runs
// this package under -race): every scheduler variant hammers shared state —
// an atomic sum, shared obs counters, and an enabled tracer — from all
// workers at once, which is exactly the access pattern the pipeline kernels
// rely on being safe.

func TestStressStaticSchedulersShared(t *testing.T) {
	const n = 100_000
	tr := obs.NewTrace()
	reg := obs.NewRegistry()
	c := reg.Counter("stress_static", "")
	for rounds := 0; rounds < 4; rounds++ {
		var sum atomic.Int64
		ForT(tr, "static", n, 8, func(i int) {
			sum.Add(int64(i))
		})
		ForRangeT(tr, "static", n, 8, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local++
			}
			c.Add(local)
			sum.Add(local)
		})
		want := int64(n)*(n-1)/2 + n
		if got := sum.Load(); got != want {
			t.Fatalf("round %d: sum = %d, want %d", rounds, got, want)
		}
	}
	if c.Value() != 4*n {
		t.Fatalf("counter = %d, want %d", c.Value(), 4*n)
	}
	// 8 workers per loop, 2 loops per round, 4 rounds.
	if tr.Len() != 8*2*4 {
		t.Fatalf("spans = %d, want %d", tr.Len(), 8*2*4)
	}
}

func TestStressDynamicSchedulersShared(t *testing.T) {
	const n = 100_000
	tr := obs.NewTrace()
	reg := obs.NewRegistry()
	c := reg.Counter("stress_dynamic", "")
	for rounds := 0; rounds < 4; rounds++ {
		var sum atomic.Int64
		ForRangeDynamicT(tr, "dynamic", n, 8, 128, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
			c.Add(int64(hi - lo))
		})
		ForDynamicT(tr, "dynamic", n, 8, 256, func(i int) {
			sum.Add(1)
		})
		want := int64(n)*(n-1)/2 + n
		if got := sum.Load(); got != want {
			t.Fatalf("round %d: sum = %d, want %d", rounds, got, want)
		}
	}
	if c.Value() != 4*n {
		t.Fatalf("counter = %d, want %d", c.Value(), 4*n)
	}
	// Every dynamic span must carry the iteration count it claimed, and the
	// per-loop claims must cover the range exactly.
	var items int64
	for _, s := range tr.Spans() {
		items += s.Items
	}
	if items != 8*n {
		t.Fatalf("claimed items = %d, want %d", items, 8*n)
	}
}

// TestStressCtxManualCursorAccumulate hammers the scheduler shape the
// oriented Support kernel uses: ForThreadsCtxT workers claiming chunks off
// a shared atomic cursor, crediting into per-thread accumulation arrays
// (no atomics on the hot path), followed by a parallel reduce — with a
// live tracer and a shared counter in play. Race-detector fodder for the
// per-thread-credits pattern.
func TestStressCtxManualCursorAccumulate(t *testing.T) {
	const (
		n       = 50_000
		threads = 8
		grain   = 64
	)
	tr := obs.NewTrace()
	reg := obs.NewRegistry()
	c := reg.Counter("stress_cursor", "")
	for rounds := 0; rounds < 4; rounds++ {
		accs := make([][]int64, threads)
		for t := range accs {
			accs[t] = make([]int64, n)
		}
		var cursor atomic.Int64
		err := ForThreadsCtxT(nil, tr, "cursor", threads, func(tid int) {
			acc := accs[tid]
			var claimed int64
			for {
				lo := int(cursor.Add(grain)) - grain
				if lo >= n {
					break
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					acc[i] += int64(i)
				}
				claimed += int64(hi - lo)
			}
			c.Add(claimed)
		})
		if err != nil {
			t.Fatalf("round %d: %v", rounds, err)
		}
		var sum atomic.Int64
		err = ForRangeCtxT(nil, tr, "reduce", n, threads, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				for t := 0; t < threads; t++ {
					local += accs[t][i]
				}
			}
			sum.Add(local)
		})
		if err != nil {
			t.Fatalf("round %d reduce: %v", rounds, err)
		}
		if want := int64(n) * (n - 1) / 2; sum.Load() != want {
			t.Fatalf("round %d: reduced sum = %d, want %d", rounds, sum.Load(), want)
		}
	}
	if c.Value() != 4*n {
		t.Fatalf("claimed iterations = %d, want %d", c.Value(), 4*n)
	}
	if tr.Len() != 4*2*threads {
		t.Fatalf("spans = %d, want %d", tr.Len(), 4*2*threads)
	}
}

func TestStressForThreadsShared(t *testing.T) {
	tr := obs.NewTrace()
	var sum atomic.Int64
	for rounds := 0; rounds < 8; rounds++ {
		ForThreadsT(tr, "threads", 8, func(tid int) {
			sum.Add(int64(tid))
		})
	}
	if got := sum.Load(); got != 8*28 {
		t.Fatalf("sum = %d, want %d", got, 8*28)
	}
	if tr.Len() != 64 {
		t.Fatalf("spans = %d, want 64", tr.Len())
	}
}
