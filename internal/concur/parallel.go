// Package concur provides the shared-memory parallel primitives used by the
// EquiTruss pipeline: static and dynamically-scheduled parallel loops,
// parallel reductions, parallel prefix sums, and small atomic helpers.
//
// The package deliberately mirrors the OpenMP constructs used in the paper
// ("#pragma omp parallel for", reductions, thread-local storage) with
// goroutine-based equivalents so that the algorithm pseudocode translates
// line for line.
package concur

import (
	"runtime"
)

// MaxThreads returns the default parallelism for the pipeline: the number of
// usable CPUs as reported by the runtime.
func MaxThreads() int {
	return runtime.GOMAXPROCS(0)
}

// clampThreads normalizes a requested thread count: values <= 0 mean "use
// all available cores"; values are capped so that we never spawn more
// goroutines than loop iterations in the static scheduler.
func clampThreads(threads, n int) int {
	if threads <= 0 {
		threads = MaxThreads()
	}
	if threads > n {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	return threads
}

// For runs body(i) for every i in [0, n) using the given number of threads
// with a static block distribution, like "omp parallel for schedule(static)".
// threads <= 0 selects MaxThreads(). The call returns when all iterations
// complete. ForT is the traced form.
func For(n, threads int, body func(i int)) {
	ForT(nil, "", n, threads, body)
}

// ForRange runs body(lo, hi) on contiguous blocks partitioning [0, n) — one
// block per thread. This is the cheapest scheduler: a single goroutine per
// thread and no per-iteration closure call. Use it when the body wants to
// iterate over its block itself (e.g. to keep loop-carried locals).
// ForRangeT is the traced form.
func ForRange(n, threads int, body func(lo, hi int)) {
	ForRangeT(nil, "", n, threads, body)
}

// ForDynamic runs body(i) for every i in [0, n) using dynamic chunked
// scheduling, like "omp parallel for schedule(dynamic, grain)". It is the
// right scheduler for skewed per-iteration work (e.g. per-edge triangle
// intersection on power-law graphs). grain <= 0 selects a heuristic chunk.
// ForDynamicT is the traced form.
func ForDynamic(n, threads, grain int, body func(i int)) {
	ForRangeDynamicT(nil, "", n, threads, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRangeDynamic is the block form of ForDynamic: workers repeatedly claim
// half-open chunks [lo, hi) from a shared atomic cursor until the iteration
// space is exhausted. ForRangeDynamicT is the traced form.
func ForRangeDynamic(n, threads, grain int, body func(lo, hi int)) {
	ForRangeDynamicT(nil, "", n, threads, grain, body)
}

// ForThreads runs body(tid) once per thread id in [0, threads), like an
// "omp parallel" region where each thread handles its own slice of work.
// ForThreadsT is the traced form.
func ForThreads(threads int, body func(tid int)) {
	ForThreadsT(nil, "", threads, body)
}

// ReduceInt64 computes the sum of body(i) over i in [0, n) in parallel,
// accumulating per-thread partial sums and combining them at the barrier —
// equivalent to "omp parallel for reduction(+:sum)".
func ReduceInt64(n, threads int, body func(i int) int64) int64 {
	if n <= 0 {
		return 0
	}
	threads = clampThreads(threads, n)
	partial := make([]int64, threads)
	ForThreads(threads, func(tid int) {
		lo := tid * n / threads
		hi := (tid + 1) * n / threads
		var sum int64
		for i := lo; i < hi; i++ {
			sum += body(i)
		}
		partial[tid] = sum
	})
	var total int64
	for _, s := range partial {
		total += s
	}
	return total
}

// MaxInt32 computes the maximum of body(i) over i in [0, n) in parallel.
// It returns def for an empty range.
func MaxInt32(n, threads int, def int32, body func(i int) int32) int32 {
	if n <= 0 {
		return def
	}
	threads = clampThreads(threads, n)
	partial := make([]int32, threads)
	ForThreads(threads, func(tid int) {
		lo := tid * n / threads
		hi := (tid + 1) * n / threads
		best := def
		for i := lo; i < hi; i++ {
			if v := body(i); v > best {
				best = v
			}
		}
		partial[tid] = best
	})
	best := def
	for _, v := range partial {
		if v > best {
			best = v
		}
	}
	return best
}
