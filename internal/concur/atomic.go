package concur

import "sync/atomic"

// CASMinInt32 atomically lowers *addr to v if v is smaller, returning true
// if the store happened. It is the "priority write" primitive used by
// hooking in Shiloach–Vishkin style connected components.
func CASMinInt32(addr *int32, v int32) bool {
	for {
		old := atomic.LoadInt32(addr)
		if v >= old {
			return false
		}
		if atomic.CompareAndSwapInt32(addr, old, v) {
			return true
		}
	}
}

// CASMaxInt32 atomically raises *addr to v if v is larger, returning true
// if the store happened.
func CASMaxInt32(addr *int32, v int32) bool {
	for {
		old := atomic.LoadInt32(addr)
		if v <= old {
			return false
		}
		if atomic.CompareAndSwapInt32(addr, old, v) {
			return true
		}
	}
}

// FetchAddInt64 atomically adds delta to *addr and returns the previous
// value. It is the bump-allocator primitive used to claim output slots when
// compacting frontiers in parallel.
func FetchAddInt64(addr *int64, delta int64) int64 {
	return atomic.AddInt64(addr, delta) - delta
}

// FetchAddInt32 atomically adds delta to *addr and returns the previous
// value.
func FetchAddInt32(addr *int32, delta int32) int32 {
	return atomic.AddInt32(addr, delta) - delta
}
