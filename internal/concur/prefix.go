package concur

// ExclusivePrefixSumInt64 replaces counts with its exclusive prefix sum and
// returns the total. With threads > 1 it uses the classic two-pass blocked
// scan (local sums, scan of block totals, local rescan) — the same scheme
// CSR builders use to turn per-vertex degree counts into offsets.
func ExclusivePrefixSumInt64(counts []int64, threads int) int64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	threads = clampThreads(threads, n)
	if threads == 1 || n < 4096 {
		var sum int64
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		return sum
	}
	blockSums := make([]int64, threads)
	ForThreads(threads, func(tid int) {
		lo := tid * n / threads
		hi := (tid + 1) * n / threads
		var sum int64
		for i := lo; i < hi; i++ {
			sum += counts[i]
		}
		blockSums[tid] = sum
	})
	var total int64
	for t := 0; t < threads; t++ {
		s := blockSums[t]
		blockSums[t] = total
		total += s
	}
	ForThreads(threads, func(tid int) {
		lo := tid * n / threads
		hi := (tid + 1) * n / threads
		sum := blockSums[tid]
		for i := lo; i < hi; i++ {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
	})
	return total
}

// ExclusivePrefixSumInt32 is ExclusivePrefixSumInt64 for int32 counts with
// an int64 running total (so 2B+ element totals do not overflow the scan).
func ExclusivePrefixSumInt32(counts []int32, threads int) int64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	threads = clampThreads(threads, n)
	if threads == 1 || n < 4096 {
		var sum int64
		for i := range counts {
			c := int64(counts[i])
			counts[i] = int32(sum)
			sum += c
		}
		return sum
	}
	blockSums := make([]int64, threads)
	ForThreads(threads, func(tid int) {
		lo := tid * n / threads
		hi := (tid + 1) * n / threads
		var sum int64
		for i := lo; i < hi; i++ {
			sum += int64(counts[i])
		}
		blockSums[tid] = sum
	})
	var total int64
	for t := 0; t < threads; t++ {
		s := blockSums[t]
		blockSums[t] = total
		total += s
	}
	ForThreads(threads, func(tid int) {
		lo := tid * n / threads
		hi := (tid + 1) * n / threads
		sum := blockSums[tid]
		for i := lo; i < hi; i++ {
			c := int64(counts[i])
			counts[i] = int32(sum)
			sum += c
		}
	})
	return total
}
