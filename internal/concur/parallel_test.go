package concur

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRange(t *testing.T) {
	for _, threads := range []int{0, 1, 2, 3, 7} {
		for _, n := range []int{0, 1, 2, 63, 1000} {
			hits := make([]int32, n)
			For(n, threads, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("threads=%d n=%d: index %d visited %d times", threads, n, i, h)
				}
			}
		}
	}
}

func TestForRangeCoversRangeDisjointly(t *testing.T) {
	for _, threads := range []int{1, 2, 5} {
		n := 997
		hits := make([]int32, n)
		ForRange(n, threads, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("threads=%d: index %d visited %d times", threads, i, h)
			}
		}
	}
}

func TestForDynamicCoversRange(t *testing.T) {
	for _, grain := range []int{0, 1, 10, 10000} {
		n := 12345
		hits := make([]int32, n)
		ForDynamic(n, 4, grain, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("grain=%d: index %d visited %d times", grain, i, h)
			}
		}
	}
}

func TestForThreadsRunsEachTIDOnce(t *testing.T) {
	for _, threads := range []int{1, 2, 8} {
		hits := make([]int32, threads)
		ForThreads(threads, func(tid int) { atomic.AddInt32(&hits[tid], 1) })
		for tid, h := range hits {
			if h != 1 {
				t.Fatalf("threads=%d: tid %d ran %d times", threads, tid, h)
			}
		}
	}
}

func TestReduceInt64(t *testing.T) {
	n := 100000
	got := ReduceInt64(n, 4, func(i int) int64 { return int64(i) })
	want := int64(n) * int64(n-1) / 2
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if got := ReduceInt64(0, 4, func(i int) int64 { return 1 }); got != 0 {
		t.Fatalf("empty sum = %d, want 0", got)
	}
}

func TestMaxInt32(t *testing.T) {
	vals := []int32{3, 1, 4, 1, 5, 9, 2, 6}
	got := MaxInt32(len(vals), 3, -1, func(i int) int32 { return vals[i] })
	if got != 9 {
		t.Fatalf("max = %d, want 9", got)
	}
	if got := MaxInt32(0, 3, -7, nil); got != -7 {
		t.Fatalf("empty max = %d, want default -7", got)
	}
}

func TestCASMinMax(t *testing.T) {
	v := int32(10)
	if !CASMinInt32(&v, 5) || v != 5 {
		t.Fatalf("CASMin failed: v=%d", v)
	}
	if CASMinInt32(&v, 7) {
		t.Fatal("CASMin lowered to a larger value")
	}
	if !CASMaxInt32(&v, 9) || v != 9 {
		t.Fatalf("CASMax failed: v=%d", v)
	}
	if CASMaxInt32(&v, 3) {
		t.Fatal("CASMax raised to a smaller value")
	}
}

func TestCASMinConcurrent(t *testing.T) {
	v := int32(1 << 30)
	For(1000, 8, func(i int) { CASMinInt32(&v, int32(i)) })
	if v != 0 {
		t.Fatalf("concurrent CASMin = %d, want 0", v)
	}
}

func TestFetchAdd(t *testing.T) {
	var x64 int64
	var x32 int32
	For(1000, 8, func(i int) {
		FetchAddInt64(&x64, 2)
		FetchAddInt32(&x32, 1)
	})
	if x64 != 2000 || x32 != 1000 {
		t.Fatalf("fetch-add totals = %d/%d, want 2000/1000", x64, x32)
	}
	if prev := FetchAddInt64(&x64, 5); prev != 2000 {
		t.Fatalf("FetchAddInt64 returned %d, want previous 2000", prev)
	}
}

func TestPrefixSumMatchesSerial(t *testing.T) {
	check := func(vals []uint16) bool {
		counts := make([]int64, len(vals))
		want := make([]int64, len(vals))
		var sum int64
		for i, v := range vals {
			counts[i] = int64(v)
			want[i] = sum
			sum += int64(v)
		}
		total := ExclusivePrefixSumInt64(counts, 4)
		if total != sum {
			return false
		}
		for i := range counts {
			if counts[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSumLargeParallelPath(t *testing.T) {
	n := 100000 // above the serial cutoff
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = int64(i % 7)
	}
	want := make([]int64, n)
	var sum int64
	for i := range counts {
		want[i] = sum
		sum += counts[i]
	}
	if total := ExclusivePrefixSumInt64(counts, 4); total != sum {
		t.Fatalf("total = %d, want %d", total, sum)
	}
	for i := range counts {
		if counts[i] != want[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestPrefixSumInt32(t *testing.T) {
	n := 100000
	counts := make([]int32, n)
	for i := range counts {
		counts[i] = int32(i % 5)
	}
	var sum int64
	want := make([]int32, n)
	for i := range counts {
		want[i] = int32(sum)
		sum += int64(counts[i])
	}
	if total := ExclusivePrefixSumInt32(counts, 4); total != sum {
		t.Fatalf("total = %d, want %d", total, sum)
	}
	for i := range counts {
		if counts[i] != want[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestClampThreads(t *testing.T) {
	if got := clampThreads(0, 100); got != MaxThreads() {
		t.Fatalf("clampThreads(0) = %d, want %d", got, MaxThreads())
	}
	if got := clampThreads(8, 3); got != 3 {
		t.Fatalf("clampThreads(8, 3) = %d, want 3", got)
	}
	if got := clampThreads(-5, 0); got != 1 {
		t.Fatalf("clampThreads(-5, 0) = %d, want 1", got)
	}
}
