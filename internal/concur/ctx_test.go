package concur

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"equitruss/internal/faults"
)

// settleGoroutines waits for the goroutine count to return to baseline,
// failing the test with a full stack dump if it never does.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCtxSchedulersCompleteWithBackgroundContext(t *testing.T) {
	const n = 10000
	ctx := context.Background()
	check := func(name string, run func(hits *[]int32) error) {
		hits := make([]int32, n)
		if err := run(&hits); err != nil {
			t.Fatalf("%s returned %v with background ctx", name, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("%s: iteration %d ran %d times", name, i, h)
			}
		}
	}
	check("ForCtx", func(h *[]int32) error {
		return ForCtx(ctx, n, 4, func(i int) { atomic.AddInt32(&(*h)[i], 1) })
	})
	check("ForRangeCtx", func(h *[]int32) error {
		return ForRangeCtx(ctx, n, 4, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&(*h)[i], 1)
			}
		})
	})
	check("ForDynamicCtx", func(h *[]int32) error {
		return ForDynamicCtx(ctx, n, 4, 64, func(i int) { atomic.AddInt32(&(*h)[i], 1) })
	})
	check("ForRangeDynamicCtx", func(h *[]int32) error {
		return ForRangeDynamicCtx(ctx, n, 4, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&(*h)[i], 1)
			}
		})
	})
	// Nil context behaves like background.
	check("ForCtx(nil)", func(h *[]int32) error {
		return ForCtx(nil, n, 4, func(i int) { atomic.AddInt32(&(*h)[i], 1) })
	})
}

func TestCtxSchedulersPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	if err := ForCtx(ctx, 1<<20, 4, func(i int) { ran.Add(1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("ForCtx on canceled ctx returned %v", err)
	}
	// Workers may complete at most one chunk each before observing the
	// cancellation; they must not run the whole loop.
	if n := ran.Load(); n >= 1<<20 {
		t.Fatalf("pre-canceled ForCtx ran all %d iterations", n)
	}
	if err := ForRangeDynamicCtx(ctx, 1<<20, 4, 64, func(lo, hi int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ForRangeDynamicCtx on canceled ctx returned %v", err)
	}
	if err := ForThreadsCtx(ctx, 4, func(tid int) { ran.Add(1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("ForThreadsCtx on canceled ctx returned %v", err)
	}
}

func TestCtxSchedulersCancelMidRunNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	var ran atomic.Int64
	errc := make(chan error, 1)
	go func() {
		errc <- ForDynamicCtx(ctx, 1<<30, 4, 64, func(i int) {
			select {
			case started <- struct{}{}:
			default:
			}
			ran.Add(1)
		})
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-run cancel returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled scheduler did not return")
	}
	if n := ran.Load(); n >= 1<<30 {
		t.Fatalf("canceled loop ran all %d iterations", n)
	}
	settleGoroutines(t, baseline)
}

// TestWithoutFaultsSuppressesBarrierInjection pins the contract the legacy
// no-error wrappers rely on: a WithoutFaults context runs to completion
// under an armed barrier site (same process, same arming) while a plain
// context observes the injection — and cancellation still outranks the
// exclusion.
func TestWithoutFaultsSuppressesBarrierInjection(t *testing.T) {
	faults.Enable(7)
	defer faults.Disable()
	faults.Set("concur.barrier", faults.Plan{Action: faults.Error, Every: 1})

	const n = 10_000
	var ran atomic.Int64
	if err := ForCtx(WithoutFaults(context.Background()), n, 4, func(i int) { ran.Add(1) }); err != nil {
		t.Fatalf("WithoutFaults ctx under armed barrier returned %v", err)
	}
	if ran.Load() != n {
		t.Fatalf("WithoutFaults loop ran %d of %d iterations", ran.Load(), n)
	}
	if err := ForThreadsCtx(WithoutFaults(context.Background()), 4, func(tid int) {}); err != nil {
		t.Fatalf("WithoutFaults ForThreadsCtx returned %v", err)
	}
	// A plain background context in the same process still sees the fault.
	if err := ForCtx(context.Background(), n, 4, func(i int) {}); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("plain ctx under armed barrier returned %v, want injected fault", err)
	}
	// Cancellation is not suppressed — only injection is.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForCtx(WithoutFaults(ctx), n, 4, func(i int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled WithoutFaults ctx returned %v, want context.Canceled", err)
	}
}

func TestChaosBarrierFaultPropagates(t *testing.T) {
	faults.Enable(5)
	defer faults.Disable()
	faults.Set("concur.barrier", faults.Plan{Action: faults.Error, Every: 1})
	err := ForCtx(context.Background(), 100, 2, func(i int) {})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("armed barrier returned %v, want injected fault", err)
	}
	// Cancellation outranks an injected fault: canceled builds must report
	// ctx.Err(), not chaos noise.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForCtx(ctx, 100, 2, func(i int) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx with armed barrier returned %v", err)
	}
}
