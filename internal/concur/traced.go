package concur

import (
	"sync"
	"sync/atomic"

	"equitruss/internal/obs"
)

// Traced scheduler variants: identical scheduling to their plain
// counterparts, but every worker wraps its whole share of the loop in one
// per-thread span (obs.Trace.StartThread) recording busy time and the
// number of iterations it processed. With a nil tracer the span calls are
// inert — no clock reads, no allocations — so the plain functions simply
// delegate here with tr == nil.

// ForT is For with per-thread spans named name.
func ForT(tr *obs.Trace, name string, n, threads int, body func(i int)) {
	if n <= 0 {
		return
	}
	threads = clampThreads(threads, n)
	if threads == 1 {
		r := tr.StartThread(name, 0)
		for i := 0; i < n; i++ {
			body(i)
		}
		r.EndItems(int64(n))
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := t * n / threads
		hi := (t + 1) * n / threads
		go func(tid, lo, hi int) {
			defer wg.Done()
			r := tr.StartThread(name, tid)
			for i := lo; i < hi; i++ {
				body(i)
			}
			r.EndItems(int64(hi - lo))
		}(t, lo, hi)
	}
	wg.Wait()
}

// ForRangeT is ForRange with per-thread spans named name.
func ForRangeT(tr *obs.Trace, name string, n, threads int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	threads = clampThreads(threads, n)
	if threads == 1 {
		r := tr.StartThread(name, 0)
		body(0, n)
		r.EndItems(int64(n))
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := t * n / threads
		hi := (t + 1) * n / threads
		go func(tid, lo, hi int) {
			defer wg.Done()
			r := tr.StartThread(name, tid)
			body(lo, hi)
			r.EndItems(int64(hi - lo))
		}(t, lo, hi)
	}
	wg.Wait()
}

// ForRangeDynamicT is ForRangeDynamic with per-thread spans named name;
// each worker's span records the total iterations it claimed from the
// shared cursor, so skew in dynamic scheduling is visible per worker.
func ForRangeDynamicT(tr *obs.Trace, name string, n, threads, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	threads = clampThreads(threads, n)
	if grain <= 0 {
		grain = n / (threads * 8)
		if grain < 64 {
			grain = 64
		}
	}
	if threads == 1 {
		r := tr.StartThread(name, 0)
		body(0, n)
		r.EndItems(int64(n))
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer wg.Done()
			r := tr.StartThread(name, tid)
			var items int64
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					break
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
				items += int64(hi - lo)
			}
			r.EndItems(items)
		}(t)
	}
	wg.Wait()
}

// ForDynamicT is ForDynamic with per-thread spans named name.
func ForDynamicT(tr *obs.Trace, name string, n, threads, grain int, body func(i int)) {
	ForRangeDynamicT(tr, name, n, threads, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForThreadsT is ForThreads with per-thread spans named name. Iteration
// counts are unknown to the scheduler here (the body owns its own range),
// so spans carry busy time only.
func ForThreadsT(tr *obs.Trace, name string, threads int, body func(tid int)) {
	if threads <= 0 {
		threads = MaxThreads()
	}
	if threads == 1 {
		r := tr.StartThread(name, 0)
		body(0)
		r.End()
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer wg.Done()
			r := tr.StartThread(name, tid)
			body(tid)
			r.End()
		}(t)
	}
	wg.Wait()
}
