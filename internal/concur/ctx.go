package concur

import (
	"context"
	"sync"
	"sync/atomic"

	"equitruss/internal/faults"
	"equitruss/internal/obs"
)

// Cancellation-aware scheduler variants. Each mirrors its plain counterpart
// but checks the context at chunk-claim granularity: workers poll ctx.Done()
// between chunks, stop claiming new work once it fires, and the call joins
// every goroutine before returning ctx.Err(). Cancellation latency is
// therefore bounded by one chunk of the body, and no goroutine ever
// outlives the call. A nil context is never canceled and adds no polling,
// so the kernels can use these forms unconditionally.
//
// The barrier exit of every ctx scheduler is also a fault-injection site
// ("concur.barrier"): the chaos suite arms it to prove that a kernel
// failing at any barrier propagates one clean error out of the build
// instead of deadlocking or leaking workers.

// barrierSite names the fault-injection point at scheduler barrier exits.
const barrierSite = "concur.barrier"

// noFaultsKey marks contexts whose scheduler barriers skip fault injection.
type noFaultsKey struct{}

// WithoutFaults returns a context whose scheduler barriers skip the
// "concur.barrier" fault-injection site. The legacy (non-ctx, non-error)
// kernel wrappers run under this context: they have no way to surface an
// injected error, so an armed barrier site would otherwise turn a chaos run
// into a process panic. Cancellation behaves normally — only injection is
// suppressed.
func WithoutFaults(ctx context.Context) context.Context {
	return context.WithValue(ctx, noFaultsKey{}, struct{}{})
}

// cancelChunk bounds the iterations a static worker runs between context
// polls; dynamic workers poll once per claimed chunk instead.
const cancelChunk = 2048

// poller returns a cheap non-blocking cancellation check for ctx, or nil
// when ctx can never be canceled (nil ctx or Done() == nil).
func poller(ctx context.Context) func() bool {
	if ctx == nil {
		return nil
	}
	d := ctx.Done()
	if d == nil {
		return nil
	}
	return func() bool {
		select {
		case <-d:
			return true
		default:
			return false
		}
	}
}

// ctxErr returns ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// barrierExit is the shared epilogue of every ctx scheduler: cancellation
// wins over an injected barrier fault so canceled builds report ctx.Err().
func barrierExit(ctx context.Context) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if faults.Active() && (ctx == nil || ctx.Value(noFaultsKey{}) == nil) {
		return faults.Inject(barrierSite)
	}
	return nil
}

// ForCtx is For with cancellation: body(i) runs for i in [0, n) unless ctx
// is canceled first, in which case workers stop at the next chunk boundary
// and ctx.Err() is returned. ForCtxT is the traced form.
func ForCtx(ctx context.Context, n, threads int, body func(i int)) error {
	return ForCtxT(ctx, nil, "", n, threads, body)
}

// ForCtxT is ForCtx with per-thread spans named name.
func ForCtxT(ctx context.Context, tr *obs.Trace, name string, n, threads int, body func(i int)) error {
	return ForRangeCtxT(ctx, tr, name, n, threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRangeCtx is ForRange with cancellation. Each thread's static block is
// subdivided into cancelChunk-sized sub-blocks so the body is still called
// on contiguous ranges partitioning [0, n), just more than once per thread.
// ForRangeCtxT is the traced form.
func ForRangeCtx(ctx context.Context, n, threads int, body func(lo, hi int)) error {
	return ForRangeCtxT(ctx, nil, "", n, threads, body)
}

// ForRangeCtxT is ForRangeCtx with per-thread spans named name.
func ForRangeCtxT(ctx context.Context, tr *obs.Trace, name string, n, threads int, body func(lo, hi int)) error {
	if n <= 0 {
		return barrierExit(ctx)
	}
	threads = clampThreads(threads, n)
	done := poller(ctx)
	run := func(lo, hi int) int64 {
		var items int64
		for lo < hi {
			if done != nil && done() {
				break
			}
			end := lo + cancelChunk
			if end > hi {
				end = hi
			}
			body(lo, end)
			items += int64(end - lo)
			lo = end
		}
		return items
	}
	if threads == 1 {
		r := tr.StartThread(name, 0)
		r.EndItems(run(0, n))
		return barrierExit(ctx)
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		lo := t * n / threads
		hi := (t + 1) * n / threads
		go func(tid, lo, hi int) {
			defer wg.Done()
			r := tr.StartThread(name, tid)
			r.EndItems(run(lo, hi))
		}(t, lo, hi)
	}
	wg.Wait()
	return barrierExit(ctx)
}

// ForDynamicCtx is ForDynamic with cancellation checked before every chunk
// claim. ForDynamicCtxT is the traced form.
func ForDynamicCtx(ctx context.Context, n, threads, grain int, body func(i int)) error {
	return ForRangeDynamicCtxT(ctx, nil, "", n, threads, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForDynamicCtxT is ForDynamicCtx with per-thread spans named name.
func ForDynamicCtxT(ctx context.Context, tr *obs.Trace, name string, n, threads, grain int, body func(i int)) error {
	return ForRangeDynamicCtxT(ctx, tr, name, n, threads, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRangeDynamicCtx is ForRangeDynamic with cancellation checked before
// every chunk claim. ForRangeDynamicCtxT is the traced form.
func ForRangeDynamicCtx(ctx context.Context, n, threads, grain int, body func(lo, hi int)) error {
	return ForRangeDynamicCtxT(ctx, nil, "", n, threads, grain, body)
}

// ForRangeDynamicCtxT is ForRangeDynamicCtx with per-thread spans named
// name.
func ForRangeDynamicCtxT(ctx context.Context, tr *obs.Trace, name string, n, threads, grain int, body func(lo, hi int)) error {
	if n <= 0 {
		return barrierExit(ctx)
	}
	threads = clampThreads(threads, n)
	if grain <= 0 {
		grain = n / (threads * 8)
		if grain < 64 {
			grain = 64
		}
	}
	done := poller(ctx)
	if threads == 1 {
		r := tr.StartThread(name, 0)
		var items int64
		for lo := 0; lo < n; lo += cancelChunk {
			if done != nil && done() {
				break
			}
			hi := lo + cancelChunk
			if hi > n {
				hi = n
			}
			body(lo, hi)
			items += int64(hi - lo)
		}
		r.EndItems(items)
		return barrierExit(ctx)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer wg.Done()
			r := tr.StartThread(name, tid)
			var items int64
			for {
				if done != nil && done() {
					break
				}
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					break
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
				items += int64(hi - lo)
			}
			r.EndItems(items)
		}(t)
	}
	wg.Wait()
	return barrierExit(ctx)
}

// ForThreadsCtx is ForThreads with cancellation checked once per thread
// before its body runs: a canceled context skips bodies that have not
// started, while bodies already running complete (they own their range, so
// finer-grained checks belong inside the body — see Canceled).
// ForThreadsCtxT is the traced form.
func ForThreadsCtx(ctx context.Context, threads int, body func(tid int)) error {
	return ForThreadsCtxT(ctx, nil, "", threads, body)
}

// ForThreadsCtxT is ForThreadsCtx with per-thread spans named name.
func ForThreadsCtxT(ctx context.Context, tr *obs.Trace, name string, threads int, body func(tid int)) error {
	if threads <= 0 {
		threads = MaxThreads()
	}
	done := poller(ctx)
	if threads == 1 {
		r := tr.StartThread(name, 0)
		if done == nil || !done() {
			body(0)
		}
		r.End()
		return barrierExit(ctx)
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	for t := 0; t < threads; t++ {
		go func(tid int) {
			defer wg.Done()
			r := tr.StartThread(name, tid)
			if done == nil || !done() {
				body(tid)
			}
			r.End()
		}(t)
	}
	wg.Wait()
	return barrierExit(ctx)
}

// Canceled is a non-blocking cancellation probe for opaque loop bodies
// (e.g. ForThreadsCtx workers iterating their own range): poll it every few
// thousand iterations and bail out early when it reports true. A nil
// context is never canceled.
func Canceled(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
