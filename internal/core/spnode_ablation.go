package core

import (
	"context"
	"sync/atomic"

	"equitruss/internal/concur"
	"equitruss/internal/ds"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// The paper (§3.1) selects SV and Afforest for the edge-entity connected
// components after weighing two rejected alternatives: label propagation
// (work linear but bound by component diameter) and BFS (linear work but
// parallelism limited by the number of components). Both rejected designs
// are implemented here — over the flat C-Optimal storage — so the design
// decision is reproducible as an ablation (BenchmarkAblationSpNodeStrategies).

// spNodeLabelProp computes Π by min-label propagation over edge entities:
// every edge repeatedly adopts the smallest Π among its same-k qualifying
// triangle partners until a fixpoint. Rounds scale with the diameter of
// the largest supernode — the weakness the paper calls out.
func spNodeLabelProp(ctx context.Context, g *graph.Graph, tau []int32, threads int, tr *obs.Trace) ([]int32, error) {
	m := int32(g.NumEdges())
	pi := make([]int32, m)
	if err := concur.ForCtxT(ctx, tr, "SpNode", int(m), threads, func(i int) {
		if tau[i] >= MinK {
			pi[i] = int32(i)
		} else {
			pi[i] = NoSupernode
		}
	}); err != nil {
		return nil, err
	}
	changed := int32(1)
	for changed != 0 {
		changed = 0
		err := concur.ForRangeDynamicCtxT(ctx, tr, "SpNode", int(m), threads, 512, func(lo, hi int) {
			local := false
			for i := lo; i < hi; i++ {
				e := int32(i)
				k := tau[e]
				if k < MinK {
					continue
				}
				best := atomic.LoadInt32(&pi[e])
				g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
					k1, k2 := tau[e1], tau[e2]
					if k1 == k && k2 >= k {
						if l := atomic.LoadInt32(&pi[e1]); l < best {
							best = l
						}
					}
					if k2 == k && k1 >= k {
						if l := atomic.LoadInt32(&pi[e2]); l < best {
							best = l
						}
					}
					return true
				})
				if best < atomic.LoadInt32(&pi[e]) {
					if concur.CASMinInt32(&pi[e], best) {
						local = true
					}
				}
			}
			if local {
				atomic.StoreInt32(&changed, 1)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return pi, nil
}

// spNodeBFS computes Π with repeated breadth-first traversals over edge
// entities: each unvisited τ>=3 edge seeds a supernode and the frontier
// expands in parallel through same-k qualifying triangles. Within one
// supernode the frontier parallelizes; across the (many) small supernodes
// the traversal is sequential — the paper's reason to reject it.
func spNodeBFS(ctx context.Context, g *graph.Graph, tau []int32, threads int, tr *obs.Trace) ([]int32, error) {
	m := int32(g.NumEdges())
	pi := make([]int32, m)
	for i := range pi {
		pi[i] = NoSupernode
	}
	visited := ds.NewBitset(int(m))
	if threads <= 0 {
		threads = concur.MaxThreads()
	}
	var frontier, next []int32
	for seed := int32(0); seed < m; seed++ {
		// The seed scan between traversals is serial; poll ctx periodically
		// so a graph full of tiny supernodes still cancels promptly.
		if seed&8191 == 0 && concur.Canceled(ctx) {
			return nil, ctx.Err()
		}
		if tau[seed] < MinK || visited.Get(int(seed)) {
			continue
		}
		visited.Set(int(seed))
		pi[seed] = seed
		k := tau[seed]
		frontier = append(frontier[:0], seed)
		for len(frontier) > 0 {
			bufs := make([][]int32, threads)
			err := concur.ForThreadsCtxT(ctx, tr, "SpNode", threads, func(tid int) {
				lo := tid * len(frontier) / threads
				hi := (tid + 1) * len(frontier) / threads
				var buf []int32
				for i := lo; i < hi; i++ {
					e := frontier[i]
					g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
						k1, k2 := tau[e1], tau[e2]
						if k1 == k && k2 >= k && visited.SetAtomic(int(e1)) {
							atomic.StoreInt32(&pi[e1], seed)
							buf = append(buf, e1)
						}
						if k2 == k && k1 >= k && visited.SetAtomic(int(e2)) {
							atomic.StoreInt32(&pi[e2], seed)
							buf = append(buf, e2)
						}
						return true
					})
				}
				bufs[tid] = buf
			})
			if err != nil {
				return nil, err
			}
			next = next[:0]
			for _, b := range bufs {
				next = append(next, b...)
			}
			frontier, next = next, frontier
		}
	}
	return pi, nil
}
