package core_test

import (
	"strings"
	"testing"

	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
)

func TestComputeStatsFigure3(t *testing.T) {
	g := gen.PaperFigure3()
	tau := buildTau(t, g)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 2)
	st := sg.ComputeStats()
	if st.Supernodes != 5 || st.Superedges != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.IndexedEdges != 27 || st.Tau2Edges != 0 {
		t.Fatalf("edge accounting: %+v", st)
	}
	if st.KMax != 5 {
		t.Fatalf("kmax = %d", st.KMax)
	}
	if st.KHistogram[3] != 2 || st.KHistogram[4] != 2 || st.KHistogram[5] != 1 {
		t.Fatalf("k histogram = %v", st.KHistogram)
	}
	if st.LargestSupernode != 10 {
		t.Fatalf("largest = %d", st.LargestSupernode)
	}
	if st.MeanSupernodeSize != 27.0/5.0 {
		t.Fatalf("mean = %f", st.MeanSupernodeSize)
	}
	s := st.String()
	for _, want := range []string{"supernodes=5", "kmax=5", "3:2", "5:1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestComputeStatsWithTau2Edges(t *testing.T) {
	g := gen.BridgedCliques(5) // bridge edge has τ=2
	tau := buildTau(t, g)
	sg, _ := core.Build(g, tau, core.VariantAfforest, 2)
	st := sg.ComputeStats()
	if st.Tau2Edges != 1 {
		t.Fatalf("tau2 edges = %d, want 1 (the bridge)", st.Tau2Edges)
	}
	if st.Supernodes != 2 || st.LargestSupernode != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	g := gen.Path(5)
	tau := buildTau(t, g)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 1)
	st := sg.ComputeStats()
	if st.Supernodes != 0 || st.MeanSupernodeSize != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAfforestDominantSkip exercises the sampling skip path: a graph whose
// index is one giant supernode (triangle strip) plus a few small cliques.
// The strip dominates, so the finalization pass skips most edges — the
// result must still be exact.
func TestAfforestDominantSkip(t *testing.T) {
	strip := gen.TriangleStrip(5000) // ~10k τ=3 edges, one supernode
	// Append small K5s as separate components.
	base := strip.NumVertices()
	all := append([]graph.Edge(nil), strip.Edges()...)
	for c := int32(0); c < 8; c++ {
		off := base + c*5
		for u := int32(0); u < 5; u++ {
			for v := u + 1; v < 5; v++ {
				all = append(all, graph.Edge{U: off + u, V: off + v})
			}
		}
	}
	g, err := graph.FromEdgeList(all, 0)
	if err != nil {
		t.Fatal(err)
	}
	tau := buildTau(t, g)
	want, _ := core.BuildSerial(g, tau)
	got, _ := core.Build(g, tau, core.VariantAfforest, 2)
	if err := got.Validate(g); err != nil {
		t.Fatal(err)
	}
	if got.Canonical(g) != want.Canonical(g) {
		t.Fatal("afforest with dominant skip differs from serial")
	}
	st := got.ComputeStats()
	if st.Supernodes != 9 { // strip + 8 cliques
		t.Fatalf("supernodes = %d, want 9", st.Supernodes)
	}
}
