package core_test

import (
	"strings"
	"testing"

	"equitruss/internal/core"
	"equitruss/internal/gen"
)

// buildValid returns a fresh valid index for corruption tests.
func buildValid(t *testing.T) (*core.SummaryGraph, []int32) {
	t.Helper()
	g := gen.PaperFigure3()
	tau := buildTau(t, g)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 2)
	if err := sg.Validate(g); err != nil {
		t.Fatalf("fresh index invalid: %v", err)
	}
	return sg, tau
}

// TestValidateDetectsCorruption injects one fault at a time and requires
// Validate to reject each with a relevant message.
func TestValidateDetectsCorruption(t *testing.T) {
	g := gen.PaperFigure3()

	t.Run("wrong-tau-length", func(t *testing.T) {
		sg, _ := buildValid(t)
		sg.Tau = sg.Tau[:len(sg.Tau)-1]
		if err := sg.Validate(g); err == nil || !strings.Contains(err.Error(), "sized") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("edge-in-two-supernodes", func(t *testing.T) {
		sg, _ := buildValid(t)
		// Duplicate the first member of supernode 0 into supernode 1's
		// slot range by overwriting a member entry.
		sg.EdgeList[sg.EdgeOffsets[1]] = sg.EdgeList[sg.EdgeOffsets[0]]
		if err := sg.Validate(g); err == nil {
			t.Fatal("duplicated member accepted")
		}
	})

	t.Run("member-trussness-mismatch", func(t *testing.T) {
		sg, _ := buildValid(t)
		sg.K[0]++ // supernode trussness no longer matches members
		if err := sg.Validate(g); err == nil {
			t.Fatal("trussness mismatch accepted")
		}
	})

	t.Run("edge2sn-points-elsewhere", func(t *testing.T) {
		sg, _ := buildValid(t)
		e := sg.EdgeList[sg.EdgeOffsets[0]]
		sg.EdgeToSN[e] = sg.NumSupernodes() - 1
		if err := sg.Validate(g); err == nil {
			t.Fatal("broken EdgeToSN accepted")
		}
	})

	t.Run("tau2-edge-assigned", func(t *testing.T) {
		sg, _ := buildValid(t)
		// Fake a τ=2 edge that still claims membership.
		e := sg.EdgeList[sg.EdgeOffsets[0]]
		tau2 := make([]int32, len(sg.Tau))
		copy(tau2, sg.Tau)
		tau2[e] = 2
		sg.Tau = tau2
		if err := sg.Validate(g); err == nil {
			t.Fatal("τ=2 member accepted")
		}
	})

	t.Run("self-superedge", func(t *testing.T) {
		sg, _ := buildValid(t)
		if len(sg.Adj) == 0 {
			t.Skip("no superedges")
		}
		sg.Adj[sg.AdjOffsets[0]] = 0 // supernode 0 adjacent to itself
		if err := sg.Validate(g); err == nil || !strings.Contains(err.Error(), "self") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("equal-k-superedge", func(t *testing.T) {
		sg, _ := buildValid(t)
		// Find two supernodes with equal k (the two k=3 ones) and force an
		// adjacency entry between them.
		var a, b int32 = -1, -1
		for i := int32(0); i < sg.NumSupernodes(); i++ {
			for j := i + 1; j < sg.NumSupernodes(); j++ {
				if sg.K[i] == sg.K[j] {
					a, b = i, j
				}
			}
		}
		if a < 0 {
			t.Skip("no equal-k pair")
		}
		if sg.AdjOffsets[a+1] == sg.AdjOffsets[a] {
			t.Skip("supernode a has no adjacency slot to corrupt")
		}
		sg.Adj[sg.AdjOffsets[a]] = b
		if err := sg.Validate(g); err == nil || !strings.Contains(err.Error(), "equal-k") {
			t.Fatalf("err = %v", err)
		}
	})

	t.Run("missing-member", func(t *testing.T) {
		sg, _ := buildValid(t)
		// Shrink supernode 0 by one member: that edge is now unassigned.
		sg.EdgeOffsets[0]++ // drop first member (offsets now skip it)
		if err := sg.Validate(g); err == nil {
			t.Fatal("dropped member accepted")
		}
	})
}

// TestCanonicalEmptyIndex exercises Canonical on an empty summary graph.
func TestCanonicalEmptyIndex(t *testing.T) {
	g := gen.Path(4)
	tau := buildTau(t, g)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 1)
	if c := sg.Canonical(g); c != "" {
		t.Fatalf("canonical of empty index = %q", c)
	}
}

// TestBuildDeterministic: same inputs, same variant, repeated builds give
// byte-identical canonical forms (no iteration-order leakage).
func TestBuildDeterministic(t *testing.T) {
	g := gen.PlantedPartition(6, 8, 0.7, 1.2, 77)
	tau := buildTau(t, g)
	for _, v := range core.ParallelVariants {
		a, _ := core.Build(g, tau, v, 2)
		b, _ := core.Build(g, tau, v, 2)
		if a.Canonical(g) != b.Canonical(g) {
			t.Fatalf("%s: nondeterministic build", v)
		}
	}
}
