package core

import "equitruss/internal/obs"

// Process-wide counters emitted by the index-construction kernels,
// registered once at package init so hot paths never touch the registry.
var (
	cSVHookRounds = obs.GetCounter("spnode_sv_hook_rounds",
		"SV hooking rounds executed across all trussness groups in SpNode")
	cSVShortcutRounds = obs.GetCounter("spnode_sv_shortcut_rounds",
		"SV shortcut (pointer-jumping) rounds executed in SpNode")
	cHookCASFailures = obs.GetCounter("spnode_hook_cas_failures",
		"SV hook CASes lost to concurrent writers in SpNode")
	cAffSampleHits = obs.GetCounter("spnode_afforest_sample_hits",
		"sampled edges that landed in the dominant component during Afforest SpNode")
	cAffSampleTotal = obs.GetCounter("spnode_afforest_sample_total",
		"edges sampled for dominant-component approximation in Afforest SpNode")
	cUnionFindRetries = obs.GetCounter("unionfind_cas_retries",
		"union-find hook CASes retried under contention (Afforest forests)")
	cSpEdgeEmitted = obs.GetCounter("spedge_emitted",
		"superedge candidates emitted into thread-local subsets by SpEdge")
	cSmGraphDeduped = obs.GetCounter("smgraph_superedges_deduped",
		"duplicate superedge candidates removed by the SmGraph merge")
	cSmGraphFinal = obs.GetCounter("smgraph_superedges_final",
		"deduplicated superedges surviving the SmGraph merge")
)
