package core

import (
	"context"
	"sync/atomic"

	"equitruss/internal/concur"
	"equitruss/internal/ds"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// MinK is the smallest trussness that forms supernodes: k-truss communities
// are defined for k >= 3 (Definition 7).
const MinK = 3

// packKey packs a canonical vertex pair into a map key for the Baseline
// variant's edge dictionary.
func packKey(u, v int32) int64 { return int64(u)<<32 | int64(uint32(v)) }

// packInfo packs (eid, tau) into the Baseline dictionary value.
func packInfo(eid, tau int32) int64 { return int64(eid)<<32 | int64(uint32(tau)) }

func unpackInfo(v int64) (eid, tau int32) { return int32(v >> 32), int32(uint32(v)) }

// edgeDict is the Baseline variant's "dictionary on the entire edge set":
// a read-only hash map from packed endpoints to (edge ID, trussness). The
// C-Optimal variant replaces every lookup through this structure with the
// CSR-aligned edge-ID array and a flat trussness buffer — exactly the
// optimization described in §3.3 of the paper.
type edgeDict map[int64]int64

func buildEdgeDict(g *graph.Graph, tau []int32) edgeDict {
	m := int32(g.NumEdges())
	dict := make(edgeDict, m)
	for e := int32(0); e < m; e++ {
		ed := g.Edge(e)
		dict[packKey(ed.U, ed.V)] = packInfo(e, tau[e])
	}
	return dict
}

// phiGroups builds the Φ_k edge groups (Init kernel, Algorithm 2 ln. 3–5)
// and returns them with kmax.
func phiGroups(g *graph.Graph, tau []int32, threads int) (phi [][]int32, kmax int32) {
	m := int(g.NumEdges())
	kmax = concur.MaxInt32(m, threads, MinK-1, func(i int) int32 { return tau[i] })
	phi = make([][]int32, kmax+1)
	for e := 0; e < m; e++ {
		if tau[e] >= MinK {
			phi[tau[e]] = append(phi[tau[e]], int32(e))
		}
	}
	return phi, kmax
}

// ---------------------------------------------------------------------------
// Baseline SpNode: Shiloach–Vishkin over edge entities with hash-map
// dictionaries (Algorithm 2 as written).
// ---------------------------------------------------------------------------

// spNodeBaseline computes the supernode parent array Π with SV connected
// components where every τ lookup goes through the edge dictionary and Π
// itself lives in a lock-striped sharded map. Returns Π flattened to roots
// (Π[e] = NoSupernode for τ=2 edges). Cancellation is checked at every
// scheduler barrier, so the SV round loops exit promptly once ctx fires.
func spNodeBaseline(ctx context.Context, g *graph.Graph, tau []int32, dict edgeDict, phi [][]int32, threads int, tr *obs.Trace) ([]int32, error) {
	m := int32(g.NumEdges())
	pi := ds.NewShardedMap(int(m))
	// Each edge initially forms its own component (ln. 1–2).
	if err := concur.ForCtxT(ctx, tr, "SpNode", int(m), threads, func(i int) {
		if tau[i] >= MinK {
			pi.Store(int64(i), int32(i))
		}
	}); err != nil {
		return nil, err
	}
	edges := g.Edges()
	for k := MinK; k < len(phi); k++ {
		edgesK := phi[k]
		if len(edgesK) == 0 {
			continue
		}
		hooking := int32(1)
		for hooking != 0 {
			hooking = 0
			// Hooking phase (ln. 10–20).
			cSVHookRounds.Inc()
			err := concur.ForRangeDynamicCtxT(ctx, tr, "SpNode", len(edgesK), threads, 256, func(lo, hi int) {
				localHook := false
				for i := lo; i < hi; i++ {
					e := edgesK[i]
					u, v := edges[e].U, edges[e].V
					nu, nv := g.Neighbors(u), g.Neighbors(v)
					a, b := 0, 0
					for a < len(nu) && b < len(nv) {
						switch {
						case nu[a] < nv[b]:
							a++
						case nu[a] > nv[b]:
							b++
						default:
							w := nu[a]
							a++
							b++
							// Dictionary lookups for both triangle edges —
							// the cost C-Opt removes.
							i1 := dict[packKey(min32(u, w), max32(u, w))]
							i2 := dict[packKey(min32(v, w), max32(v, w))]
							e1, k1 := unpackInfo(i1)
							e2, k2 := unpackInfo(i2)
							if k1 == int32(k) && k2 >= int32(k) {
								if svHookSharded(pi, e, e1) {
									localHook = true
								}
							}
							if k2 == int32(k) && k1 >= int32(k) {
								if svHookSharded(pi, e, e2) {
									localHook = true
								}
							}
						}
					}
				}
				if localHook {
					atomic.StoreInt32(&hooking, 1)
				}
			})
			if err != nil {
				return nil, err
			}
			// Shortcut phase (ln. 21–23).
			cSVShortcutRounds.Inc()
			if err := concur.ForRangeDynamicCtxT(ctx, tr, "SpNode", len(edgesK), threads, 512, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					e := int64(edgesK[i])
					for {
						p, _ := pi.Load(e)
						gp, _ := pi.Load(int64(p))
						if p == gp {
							break
						}
						pi.Store(e, gp)
					}
				}
			}); err != nil {
				return nil, err
			}
		}
	}
	// Materialize the final flat Π for the downstream kernels.
	out := make([]int32, m)
	if err := concur.ForCtxT(ctx, tr, "SpNode", int(m), threads, func(i int) {
		if tau[i] < MinK {
			out[i] = NoSupernode
			return
		}
		e := int64(i)
		for {
			p, _ := pi.Load(e)
			gp, _ := pi.Load(int64(p))
			if p == gp {
				out[i] = p
				return
			}
			e = int64(gp)
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// svHookSharded attempts the SV hook "Π(Π(e1)) ← Π(e) if Π(e) < Π(e1) and
// Π(e1) is a root" against the sharded-map Π store.
func svHookSharded(pi *ds.ShardedMap, e, e1 int32) bool {
	pe, _ := pi.Load(int64(e))
	pe1, _ := pi.Load(int64(e1))
	if pe < pe1 {
		if p, _ := pi.Load(int64(pe1)); p == pe1 {
			if pi.CompareAndSwap(int64(pe1), pe1, pe) {
				return true
			}
			cHookCASFailures.Inc()
		}
	}
	return false
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// C-Optimal SpNode: SV with CSR-aligned lookups, a contiguous Π buffer, and
// the early skip when Π(e) = Π(e1) (§3.3).
// ---------------------------------------------------------------------------

// spNodeCOptimal computes Π with the cache-optimized SV: trussness comes
// straight from the flat tau array indexed by the CSR edge-ID slots, Π is a
// contiguous int32 buffer updated with atomics, and already-merged partners
// are skipped before any hooking work. Cancellation is checked at every
// scheduler barrier.
func spNodeCOptimal(ctx context.Context, g *graph.Graph, tau []int32, phi [][]int32, threads int, tr *obs.Trace) ([]int32, error) {
	m := int32(g.NumEdges())
	pi := make([]int32, m)
	if err := concur.ForCtxT(ctx, tr, "SpNode", int(m), threads, func(i int) {
		if tau[i] >= MinK {
			pi[i] = int32(i)
		} else {
			pi[i] = NoSupernode
		}
	}); err != nil {
		return nil, err
	}
	for k := MinK; k < len(phi); k++ {
		edgesK := phi[k]
		if len(edgesK) == 0 {
			continue
		}
		hooking := int32(1)
		for hooking != 0 {
			hooking = 0
			cSVHookRounds.Inc()
			err := concur.ForRangeDynamicCtxT(ctx, tr, "SpNode", len(edgesK), threads, 256, func(lo, hi int) {
				localHook := false
				for i := lo; i < hi; i++ {
					e := edgesK[i]
					g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
						k1, k2 := tau[e1], tau[e2]
						if k1 == int32(k) && k2 >= int32(k) && svHookFlat(pi, e, e1) {
							localHook = true
						}
						if k2 == int32(k) && k1 >= int32(k) && svHookFlat(pi, e, e2) {
							localHook = true
						}
						return true
					})
				}
				if localHook {
					atomic.StoreInt32(&hooking, 1)
				}
			})
			if err != nil {
				return nil, err
			}
			cSVShortcutRounds.Inc()
			if err := concur.ForRangeDynamicCtxT(ctx, tr, "SpNode", len(edgesK), threads, 512, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					e := edgesK[i]
					for {
						p := atomic.LoadInt32(&pi[e])
						gp := atomic.LoadInt32(&pi[p])
						if p == gp {
							break
						}
						atomic.StoreInt32(&pi[e], gp)
					}
				}
			}); err != nil {
				return nil, err
			}
		}
	}
	if err := flattenPi(ctx, pi, tau, threads); err != nil {
		return nil, err
	}
	return pi, nil
}

// svHookFlat is the SV hook against the contiguous Π buffer, with the
// C-Optimal early skip when both edges already share a parent.
func svHookFlat(pi []int32, e, e1 int32) bool {
	pe := atomic.LoadInt32(&pi[e])
	pe1 := atomic.LoadInt32(&pi[e1])
	if pe == pe1 {
		return false // C-Opt skip: already merged
	}
	if pe < pe1 && atomic.LoadInt32(&pi[pe1]) == pe1 {
		if atomic.CompareAndSwapInt32(&pi[pe1], pe1, pe) {
			return true
		}
		cHookCASFailures.Inc()
	}
	return false
}

// flattenPi points every τ>=3 edge at its component root.
func flattenPi(ctx context.Context, pi []int32, tau []int32, threads int) error {
	return concur.ForCtx(ctx, len(pi), threads, func(i int) {
		if tau[i] < MinK {
			return
		}
		e := int32(i)
		r := atomic.LoadInt32(&pi[e])
		for {
			rr := atomic.LoadInt32(&pi[r])
			if rr == r {
				break
			}
			r = rr
		}
		atomic.StoreInt32(&pi[e], r)
	})
}

// ---------------------------------------------------------------------------
// Afforest SpNode: sampling-based CC (Sutton et al.) over edge entities.
// ---------------------------------------------------------------------------

// afforestNeighborRounds is the number of link rounds run over a bounded
// prefix of each edge's triangle partners before component approximation.
const afforestNeighborRounds = 2

// afforestSampleSize is the number of edges sampled to identify the
// largest intermediate component.
const afforestSampleSize = 1024

// spNodeAfforest computes Π with the Afforest strategy: a couple of cheap
// link rounds over the first triangle partners approximate the components;
// the dominant component is then identified by sampling and its members are
// skipped in the exhaustive finalization pass, which links every remaining
// partner of every edge outside it. Exactness is preserved because the
// final pass processes all edges not yet in the dominant component and the
// partner relation is symmetric. Cancellation is checked at every scheduler
// barrier (link rounds, compression passes, finalization, materialization).
func spNodeAfforest(ctx context.Context, g *graph.Graph, tau []int32, threads int, tr *obs.Trace) ([]int32, error) {
	m := int32(g.NumEdges())
	cuf := ds.NewConcurrentUnionFind(int(m))
	// Link rounds over the r-th valid partner of each edge.
	for r := 0; r < afforestNeighborRounds; r++ {
		err := concur.ForRangeDynamicCtxT(ctx, tr, "SpNode", int(m), threads, 512, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e := int32(i)
				k := tau[e]
				if k < MinK {
					continue
				}
				seen := 0
				g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
					if tau[e1] == k && tau[e2] >= k {
						if seen == r {
							cuf.Union(e, e1)
							return false
						}
						seen++
					}
					if tau[e2] == k && tau[e1] >= k {
						if seen == r {
							cuf.Union(e, e2)
							return false
						}
						seen++
					}
					return true
				})
			}
		})
		if err != nil {
			return nil, err
		}
		if err := compressAll(ctx, cuf, threads); err != nil {
			return nil, err
		}
	}
	// Component approximation: sample to find the dominant component.
	dominant := sampleDominant(cuf, tau, m)
	// Finalization: exhaustively link everything outside the dominant
	// component, skipping the (typically large) fraction already settled.
	err := concur.ForRangeDynamicCtxT(ctx, tr, "SpNode", int(m), threads, 512, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := int32(i)
			k := tau[e]
			if k < MinK {
				continue
			}
			if dominant >= 0 && cuf.Find(e) == dominant {
				continue
			}
			g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
				if tau[e1] == k && tau[e2] >= k {
					cuf.Union(e, e1)
				}
				if tau[e2] == k && tau[e1] >= k {
					cuf.Union(e, e2)
				}
				return true
			})
		}
	})
	if err != nil {
		return nil, err
	}
	if err := compressAll(ctx, cuf, threads); err != nil {
		return nil, err
	}
	pi := make([]int32, m)
	if err := concur.ForCtxT(ctx, tr, "SpNode", int(m), threads, func(i int) {
		if tau[i] < MinK {
			pi[i] = NoSupernode
		} else {
			pi[i] = cuf.Find(int32(i))
		}
	}); err != nil {
		return nil, err
	}
	cUnionFindRetries.Add(cuf.Retries())
	return pi, nil
}

// compressAll path-compresses every element (parallel Find pass).
func compressAll(ctx context.Context, cuf *ds.ConcurrentUnionFind, threads int) error {
	return concur.ForCtx(ctx, cuf.Len(), threads, func(i int) {
		cuf.Find(int32(i))
	})
}

// sampleDominant returns the most frequent component root among a fixed
// sample of τ>=3 edges, or -1 when none qualify. The sampled total and the
// dominant component's hit count feed the afforest sampling counters — the
// hit ratio is the fraction of work the finalization pass gets to skip.
func sampleDominant(cuf *ds.ConcurrentUnionFind, tau []int32, m int32) int32 {
	if m == 0 {
		return -1
	}
	counts := make(map[int32]int)
	stride := m / afforestSampleSize
	if stride < 1 {
		stride = 1
	}
	sampled := 0
	for e := int32(0); e < m; e += stride {
		if tau[e] >= MinK {
			counts[cuf.Find(e)]++
			sampled++
		}
	}
	best, bestN := int32(-1), 0
	for r, n := range counts {
		if n > bestN {
			best, bestN = r, n
		}
	}
	cAffSampleTotal.Add(int64(sampled))
	cAffSampleHits.Add(int64(bestN))
	return best
}
