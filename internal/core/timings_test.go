package core_test

import (
	"strings"
	"testing"
	"time"

	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/obs"
)

func TestTimingsArithmetic(t *testing.T) {
	a := core.Timings{
		Support: 1 * time.Second, TrussDecomp: 2 * time.Second,
		Init: 1 * time.Second, SpNode: 3 * time.Second, SpEdge: 1 * time.Second,
		SmGraph: 1 * time.Second, SpNodeRemap: 1 * time.Second, Threads: 4,
	}
	if a.IndexTotal() != 7*time.Second {
		t.Fatalf("IndexTotal = %v", a.IndexTotal())
	}
	if a.Total() != 10*time.Second {
		t.Fatalf("Total = %v", a.Total())
	}
	b := a.Add(a)
	if b.Total() != 20*time.Second || b.Threads != 4 {
		t.Fatalf("Add = %+v", b)
	}
	// Each literal has the compatibility zero Runs == one run, so the sum
	// holds two runs and Mean recovers the original per-run values.
	if b.Runs != 2 {
		t.Fatalf("Add Runs = %d, want 2", b.Runs)
	}
	mean := b.Mean()
	if mean.Total() != 10*time.Second || mean.SpNode != 3*time.Second || mean.Runs != 1 {
		t.Fatalf("Mean = %+v", mean)
	}
	// Accumulating three runs divides by three, not by a stale count.
	c := b.Add(a)
	if c.Runs != 3 || c.Mean().Total() != 10*time.Second {
		t.Fatalf("triple accumulation: %+v mean %v", c, c.Mean().Total())
	}
}

func TestTimingsBreakdown(t *testing.T) {
	var zero core.Timings
	if zero.Breakdown() != "(no timings)" {
		t.Fatalf("zero breakdown = %q", zero.Breakdown())
	}
	tm := core.Timings{Support: time.Second, SpNode: 3 * time.Second}
	s := tm.Breakdown()
	if !strings.Contains(s, "Support 25.0%") || !strings.Contains(s, "SpNode 75.0%") {
		t.Fatalf("breakdown = %q", s)
	}
	// Kernels that recorded no time are omitted, not shown as 0.0%.
	if strings.Contains(s, "0.0%") || strings.Contains(s, "SpEdge") {
		t.Fatalf("breakdown shows zero kernels: %q", s)
	}
}

func TestTimingsEmitSpans(t *testing.T) {
	tm := core.Timings{Support: time.Second, SpNode: 3 * time.Second}
	tr := obs.NewTrace()
	tm.EmitSpans(tr)
	rep := obs.NewReport(tr, nil)
	if len(rep.Kernels) != 2 {
		t.Fatalf("kernels = %d, want 2 (zero kernels skipped)", len(rep.Kernels))
	}
	if rep.Kernels[0].Name != "Support" || rep.Kernels[1].Name != "SpNode" {
		t.Fatalf("order = %s, %s", rep.Kernels[0].Name, rep.Kernels[1].Name)
	}
	if rep.Kernels[1].Wall != 3*time.Second {
		t.Fatalf("SpNode wall = %v", rep.Kernels[1].Wall)
	}
}

func TestAblationVariantsOnEmptyAndTiny(t *testing.T) {
	// LP and BFS must handle graphs with no τ>=3 edges and single
	// triangles like every other variant.
	for _, variant := range core.AblationVariants {
		g := gen.PaperFigure3()
		tau := buildTau(t, g)
		sg, tm := core.Build(g, tau, variant, 2)
		if err := sg.Validate(g); err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if tm.SpNode < 0 {
			t.Fatalf("%s: negative SpNode time", variant)
		}
	}
}
