package core_test

import (
	"strings"
	"testing"
	"time"

	"equitruss/internal/core"
	"equitruss/internal/gen"
)

func TestTimingsArithmetic(t *testing.T) {
	a := core.Timings{
		Support: 1 * time.Second, TrussDecomp: 2 * time.Second,
		Init: 1 * time.Second, SpNode: 3 * time.Second, SpEdge: 1 * time.Second,
		SmGraph: 1 * time.Second, SpNodeRemap: 1 * time.Second, Threads: 4,
	}
	if a.IndexTotal() != 7*time.Second {
		t.Fatalf("IndexTotal = %v", a.IndexTotal())
	}
	if a.Total() != 10*time.Second {
		t.Fatalf("Total = %v", a.Total())
	}
	b := a.Add(a)
	if b.Total() != 20*time.Second || b.Threads != 4 {
		t.Fatalf("Add = %+v", b)
	}
}

func TestTimingsBreakdown(t *testing.T) {
	var zero core.Timings
	if zero.Breakdown() != "(no timings)" {
		t.Fatalf("zero breakdown = %q", zero.Breakdown())
	}
	tm := core.Timings{Support: time.Second, SpNode: 3 * time.Second}
	s := tm.Breakdown()
	if !strings.Contains(s, "Support 25.0%") || !strings.Contains(s, "SpNode 75.0%") {
		t.Fatalf("breakdown = %q", s)
	}
}

func TestAblationVariantsOnEmptyAndTiny(t *testing.T) {
	// LP and BFS must handle graphs with no τ>=3 edges and single
	// triangles like every other variant.
	for _, variant := range core.AblationVariants {
		g := gen.PaperFigure3()
		tau := buildTau(t, g)
		sg, tm := core.Build(g, tau, variant, 2)
		if err := sg.Validate(g); err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if tm.SpNode < 0 {
			t.Fatalf("%s: negative SpNode time", variant)
		}
	}
}
