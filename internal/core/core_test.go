package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
)

func randomGraph(seed int64, n int32, p float64) *graph.Graph {
	rnd := rand.New(rand.NewSource(seed))
	var in []graph.Edge
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rnd.Float64() < p {
				in = append(in, graph.Edge{U: u, V: v})
			}
		}
	}
	g, err := graph.FromEdgeList(in, n)
	if err != nil {
		panic(err)
	}
	return g
}

// TestVariantEquivalenceRandom is the paper's central exactness claim
// (§4.3: "the results are identical in all cases"): all four builders
// produce the same supernode partition and superedge set, at any thread
// count.
func TestVariantEquivalenceRandom(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed, 28, 0.3)
		tau := buildTau(t, g)
		want, _ := core.BuildSerial(g, tau)
		if err := want.Validate(g); err != nil {
			t.Logf("serial invalid: %v", err)
			return false
		}
		wantCanon := want.Canonical(g)
		for _, variant := range append(append([]core.Variant(nil), core.ParallelVariants...), core.AblationVariants...) {
			for _, threads := range []int{1, 2, 4} {
				got, _ := core.Build(g, tau, variant, threads)
				if err := got.Validate(g); err != nil {
					t.Logf("%s/%d invalid: %v", variant, threads, err)
					return false
				}
				if got.Canonical(g) != wantCanon {
					t.Logf("%s/%d canonical mismatch", variant, threads)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestVariantEquivalenceStructured(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"figure3":    gen.PaperFigure3(),
		"bowtie":     gen.TwoTriangles(),
		"strip":      gen.TriangleStrip(40),
		"bridged":    gen.BridgedCliques(6),
		"sharedEdge": gen.SharedEdgeCliquePair(7, 5),
		"planted":    gen.PlantedPartition(8, 8, 0.75, 1.2, 17),
		"rmat":       gen.RMAT(10, 6, 0.57, 0.19, 0.19, 18),
		"ba":         gen.BarabasiAlbert(300, 4, 19),
		"path":       gen.Path(10),
		"clique":     gen.Clique(10),
	}
	for name, g := range graphs {
		tau := buildTau(t, g)
		want, _ := core.BuildSerial(g, tau)
		if err := want.Validate(g); err != nil {
			t.Fatalf("%s: serial invalid: %v", name, err)
		}
		wantCanon := want.Canonical(g)
		for _, variant := range append(append([]core.Variant(nil), core.ParallelVariants...), core.AblationVariants...) {
			got, _ := core.Build(g, tau, variant, 2)
			if err := got.Validate(g); err != nil {
				t.Fatalf("%s/%s: invalid: %v", name, variant, err)
			}
			if got.Canonical(g) != wantCanon {
				t.Errorf("%s/%s: differs from serial:\n--- serial ---\n%s--- %s ---\n%s",
					name, variant, wantCanon, variant, got.Canonical(g))
			}
		}
	}
}

// TestSupernodePropertyDefinition checks Definition 8 on a structured
// graph: every supernode's members share trussness (checked by Validate)
// and are pairwise connected via same-k triangle chains; maximality holds
// (no same-k edge outside the supernode shares a qualifying triangle with a
// member).
func TestSupernodePropertyDefinition(t *testing.T) {
	g := gen.PlantedPartition(5, 9, 0.7, 1.5, 23)
	tau := buildTau(t, g)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 2)
	if err := sg.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Maximality + internal connectivity via direct BFS per supernode.
	for s := int32(0); s < sg.NumSupernodes(); s++ {
		members := sg.SupernodeEdges(s)
		k := sg.K[s]
		inSN := make(map[int32]bool, len(members))
		for _, e := range members {
			inSN[e] = true
		}
		// BFS from the first member over same-k qualifying triangles must
		// reach exactly the members.
		visited := map[int32]bool{members[0]: true}
		stack := []int32{members[0]}
		for len(stack) > 0 {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
				if tau[e1] < k || tau[e2] < k {
					return true
				}
				for _, nxt := range []int32{e1, e2} {
					if tau[nxt] == k && !visited[nxt] {
						visited[nxt] = true
						stack = append(stack, nxt)
					}
				}
				return true
			})
		}
		if len(visited) != len(members) {
			t.Fatalf("supernode %d (k=%d): BFS reached %d edges, has %d members",
				s, k, len(visited), len(members))
		}
		for e := range visited {
			if !inSN[e] {
				t.Fatalf("supernode %d: BFS escaped to edge %d", s, e)
			}
		}
	}
}

// TestSuperedgeDefinition checks Definition 9 directly on the built index:
// a superedge (ν1, ν2) exists iff some triangle contains a member of the
// lower supernode as its minimum-trussness edge and a member of the other.
func TestSuperedgeDefinition(t *testing.T) {
	g := gen.SharedEdgeCliquePair(7, 5)
	tau := buildTau(t, g)
	sg, _ := core.Build(g, tau, core.VariantAfforest, 2)
	// Recompute the expected superedge set by scanning all triangles.
	type pair struct{ a, b int32 }
	want := map[pair]bool{}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		if tau[e] < 3 {
			continue
		}
		g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
			k, k1, k2 := tau[e], tau[e1], tau[e2]
			lowest := k
			if k1 < lowest {
				lowest = k1
			}
			if k2 < lowest {
				lowest = k2
			}
			if k > lowest {
				for _, other := range []int32{e1, e2} {
					if tau[other] == lowest {
						a, b := sg.EdgeToSN[other], sg.EdgeToSN[e]
						if a > b {
							a, b = b, a
						}
						want[pair{a, b}] = true
					}
				}
			}
			return true
		})
	}
	got := map[pair]bool{}
	for s := int32(0); s < sg.NumSupernodes(); s++ {
		for _, nb := range sg.SupernodeNeighbors(s) {
			a, b := s, nb
			if a > b {
				a, b = b, a
			}
			got[pair{a, b}] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("superedges = %d, want %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing superedge %v", p)
		}
	}
}

func TestBowtieSeparateSupernodes(t *testing.T) {
	// Two triangles sharing only a vertex are NOT triangle-connected:
	// two k=3 supernodes, no superedges.
	g := gen.TwoTriangles()
	tau := buildTau(t, g)
	for _, variant := range core.Variants {
		sg, _ := core.Build(g, tau, variant, 2)
		if sg.NumSupernodes() != 2 {
			t.Fatalf("%s: supernodes = %d, want 2", variant, sg.NumSupernodes())
		}
		if sg.NumSuperedges() != 0 {
			t.Fatalf("%s: superedges = %d, want 0", variant, sg.NumSuperedges())
		}
	}
}

func TestTriangleFreeGraphHasEmptyIndex(t *testing.T) {
	g := gen.Cycle(12)
	tau := buildTau(t, g)
	for _, variant := range core.Variants {
		sg, _ := core.Build(g, tau, variant, 2)
		if sg.NumSupernodes() != 0 || sg.NumSuperedges() != 0 {
			t.Fatalf("%s: cycle produced %v", variant, sg)
		}
		for _, sn := range sg.EdgeToSN {
			if sn != core.NoSupernode {
				t.Fatalf("%s: τ=2 edge assigned to supernode", variant)
			}
		}
	}
}

func TestSharedVertexHighTrussSeparation(t *testing.T) {
	// Two K5s sharing only the single vertex (via bridge construction
	// through separate builds): BridgedCliques gives two k-5 supernodes
	// and a τ=2 bridge — no superedges at all.
	g := gen.BridgedCliques(5)
	tau := buildTau(t, g)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 2)
	if sg.NumSupernodes() != 2 {
		t.Fatalf("supernodes = %d, want 2", sg.NumSupernodes())
	}
	if sg.NumSuperedges() != 0 {
		t.Fatalf("superedges = %d, want 0", sg.NumSuperedges())
	}
	bridge := g.EdgeID(4, 5)
	if sg.EdgeToSN[bridge] != core.NoSupernode {
		t.Fatal("bridge assigned to a supernode")
	}
}

func TestTimingsAccounting(t *testing.T) {
	g := gen.PlantedPartition(6, 8, 0.7, 1.0, 31)
	tau := buildTau(t, g)
	for _, variant := range core.ParallelVariants {
		_, tm := core.Build(g, tau, variant, 2)
		if tm.IndexTotal() <= 0 {
			t.Fatalf("%s: IndexTotal = %v", variant, tm.IndexTotal())
		}
		if tm.Threads != 2 {
			t.Fatalf("%s: Threads = %d", variant, tm.Threads)
		}
		sum := tm.Init + tm.SpNode + tm.SpEdge + tm.SmGraph + tm.SpNodeRemap
		if sum != tm.IndexTotal() {
			t.Fatalf("%s: kernel sum %v != IndexTotal %v", variant, sum, tm.IndexTotal())
		}
	}
}

func TestBuildPanicsOnBadTau(t *testing.T) {
	g := gen.Clique(4)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched tau accepted")
		}
	}()
	core.Build(g, []int32{3}, core.VariantCOptimal, 1)
}

func TestVariantString(t *testing.T) {
	names := map[core.Variant]string{
		core.VariantSerial:   "Original",
		core.VariantBaseline: "Baseline",
		core.VariantCOptimal: "C-Optimal",
		core.VariantAfforest: "Afforest",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
	if core.Variant(99).String() != "Variant(99)" {
		t.Error("unknown variant string")
	}
	if core.VariantLabelProp.String() != "LabelProp" || core.VariantBFS.String() != "BFS" {
		t.Error("ablation variant names")
	}
}

func TestEmptyGraphIndex(t *testing.T) {
	g, _ := graph.FromEdgeList(nil, 3)
	for _, variant := range core.Variants {
		sg, _ := core.Build(g, nil, variant, 2)
		if sg.NumSupernodes() != 0 || sg.NumSuperedges() != 0 {
			t.Fatalf("%s: empty graph produced %v", variant, sg)
		}
		if err := sg.Validate(g); err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
	}
}
