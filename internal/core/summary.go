// Package core implements the paper's primary contribution: EquiTruss
// index construction (Algorithms 1–4) in one serial and three parallel
// variants (Baseline SV, C-Optimal, Afforest).
//
// The index is a summary graph G(V, E): supernodes are maximal groups of
// equal-trussness edges connected by k-triangle connectivity, and
// superedges link a supernode to the lower-trussness supernode of any
// triangle that spans them (Definitions 8 and 9). Supernodes partition the
// set of edges with trussness >= 3; triangle-free edges (τ = 2) belong to
// no supernode.
package core

import (
	"fmt"
	"sort"

	"equitruss/internal/graph"
)

// NoSupernode marks edges (τ = 2) that belong to no supernode.
const NoSupernode int32 = -1

// SummaryGraph is the EquiTruss index: the supergraph plus the edge→
// supernode assignment needed to answer community queries.
type SummaryGraph struct {
	// Tau is the trussness of every edge of the original graph (kept so
	// queries can seed from a vertex's incident edges).
	Tau []int32

	// EdgeToSN maps every edge ID to its dense supernode ID, or
	// NoSupernode for τ=2 edges.
	EdgeToSN []int32

	// K[s] is the trussness shared by all member edges of supernode s.
	K []int32

	// Member edge IDs per supernode in CSR form:
	// EdgeList[EdgeOffsets[s]:EdgeOffsets[s+1]].
	EdgeOffsets []int64
	EdgeList    []int32

	// Supernode adjacency (superedges, symmetric, deduplicated) in CSR
	// form: Adj[AdjOffsets[s]:AdjOffsets[s+1]].
	AdjOffsets []int64
	Adj        []int32

	// Backing, when non-nil, owns the storage the seven arrays alias — a
	// zero-copy loader's file mapping (*mmapio.Mapping). The garbage
	// collector does not trace mapped memory, so the mapping stays alive
	// exactly as long as this SummaryGraph (and anything holding it) is
	// reachable; when the last reference drops, the mapping's finalizer
	// releases the region. Heap-built indexes leave it nil.
	Backing any
}

// NumSupernodes returns |V|.
func (sg *SummaryGraph) NumSupernodes() int32 { return int32(len(sg.K)) }

// NumSuperedges returns |E| (undirected, deduplicated).
func (sg *SummaryGraph) NumSuperedges() int64 { return int64(len(sg.Adj)) / 2 }

// SupernodeEdges returns the member edge IDs of supernode s (aliases
// internal storage).
func (sg *SummaryGraph) SupernodeEdges(s int32) []int32 {
	return sg.EdgeList[sg.EdgeOffsets[s]:sg.EdgeOffsets[s+1]]
}

// SupernodeNeighbors returns the supernodes adjacent to s (aliases
// internal storage).
func (sg *SummaryGraph) SupernodeNeighbors(s int32) []int32 {
	return sg.Adj[sg.AdjOffsets[s]:sg.AdjOffsets[s+1]]
}

// SupernodeEdgeCount returns the number of member edges of supernode s
// without materializing the member slice.
func (sg *SummaryGraph) SupernodeEdgeCount(s int32) int64 {
	return sg.EdgeOffsets[s+1] - sg.EdgeOffsets[s]
}

// MaxK returns the largest supernode trussness, or MinK-1 when the index
// has no supernodes.
func (sg *SummaryGraph) MaxK() int32 {
	best := int32(MinK - 1)
	for _, k := range sg.K {
		if k > best {
			best = k
		}
	}
	return best
}

// String summarizes the index.
func (sg *SummaryGraph) String() string {
	return fmt.Sprintf("SummaryGraph{supernodes=%d, superedges=%d}",
		sg.NumSupernodes(), sg.NumSuperedges())
}

// Canonical returns a canonical textual form of the index — supernodes as
// sorted member lists ordered by smallest member, superedges as sorted
// pairs — used by tests to compare variants whose dense IDs may differ.
func (sg *SummaryGraph) Canonical(g *graph.Graph) string {
	s := sg.NumSupernodes()
	members := make([][]int32, s)
	for i := int32(0); i < s; i++ {
		mem := append([]int32(nil), sg.SupernodeEdges(i)...)
		sort.Slice(mem, func(a, b int) bool { return mem[a] < mem[b] })
		members[i] = mem
	}
	order := make([]int32, s)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return members[order[a]][0] < members[order[b]][0] })
	rank := make([]int32, s)
	for r, old := range order {
		rank[old] = int32(r)
	}
	var out []byte
	for _, old := range order {
		out = append(out, fmt.Sprintf("SN k=%d %v\n", sg.K[old], members[old])...)
	}
	type pair struct{ a, b int32 }
	var pairs []pair
	for i := int32(0); i < s; i++ {
		for _, nb := range sg.SupernodeNeighbors(i) {
			a, b := rank[i], rank[nb]
			if a < b {
				pairs = append(pairs, pair{a, b})
			}
		}
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].a != pairs[y].a {
			return pairs[x].a < pairs[y].a
		}
		return pairs[x].b < pairs[y].b
	})
	for _, p := range pairs {
		out = append(out, fmt.Sprintf("SE %d-%d\n", p.a, p.b)...)
	}
	return string(out)
}

// Validate checks structural invariants of the index against its graph:
// the supernode partition covers exactly the τ>=3 edges, member trussness
// is uniform, CSR bounds are consistent, and superedges connect supernodes
// of different trussness (Definition 9).
func (sg *SummaryGraph) Validate(g *graph.Graph) error {
	m := int32(g.NumEdges())
	if int32(len(sg.Tau)) != m || int32(len(sg.EdgeToSN)) != m {
		return fmt.Errorf("core: index arrays sized %d/%d for %d edges", len(sg.Tau), len(sg.EdgeToSN), m)
	}
	if err := sg.ValidateLoaded(); err != nil {
		return err
	}
	s := sg.NumSupernodes()
	seen := make([]bool, m)
	for i := int32(0); i < s; i++ {
		mem := sg.SupernodeEdges(i)
		if len(mem) == 0 {
			return fmt.Errorf("core: supernode %d empty", i)
		}
		for _, e := range mem {
			if seen[e] {
				return fmt.Errorf("core: edge %d in two supernodes", e)
			}
			seen[e] = true
			if sg.Tau[e] != sg.K[i] {
				return fmt.Errorf("core: edge %d τ=%d in supernode %d with k=%d", e, sg.Tau[e], i, sg.K[i])
			}
			if sg.EdgeToSN[e] != i {
				return fmt.Errorf("core: EdgeToSN[%d]=%d but member of %d", e, sg.EdgeToSN[e], i)
			}
		}
	}
	for e := int32(0); e < m; e++ {
		switch {
		case sg.Tau[e] >= 3 && !seen[e]:
			return fmt.Errorf("core: τ>=3 edge %d not in any supernode", e)
		case sg.Tau[e] < 3 && sg.EdgeToSN[e] != NoSupernode:
			return fmt.Errorf("core: τ=2 edge %d assigned supernode %d", e, sg.EdgeToSN[e])
		}
	}
	for i := int32(0); i < s; i++ {
		for _, nb := range sg.SupernodeNeighbors(i) {
			if nb == i {
				return fmt.Errorf("core: self superedge at %d", i)
			}
			if sg.K[nb] == sg.K[i] {
				return fmt.Errorf("core: superedge between equal-k supernodes %d and %d (k=%d)", i, nb, sg.K[i])
			}
		}
	}
	return nil
}

// ValidateLoaded checks every invariant that can be verified without the
// original graph: array lengths agree, CSR offsets are monotone and span
// their payload arrays, and every stored ID is in range. A summary graph
// deserialized from untrusted bytes must pass this before any query touches
// it — out-of-range member edge IDs or superedge endpoints would otherwise
// panic deep inside a traversal instead of failing at load time.
func (sg *SummaryGraph) ValidateLoaded() error {
	m := int64(len(sg.Tau))
	if int64(len(sg.EdgeToSN)) != m {
		return fmt.Errorf("core: EdgeToSN has %d entries for %d edges", len(sg.EdgeToSN), m)
	}
	s := int64(len(sg.K))
	if int64(len(sg.EdgeOffsets)) != s+1 || int64(len(sg.AdjOffsets)) != s+1 {
		return fmt.Errorf("core: offset arrays sized %d/%d for %d supernodes",
			len(sg.EdgeOffsets), len(sg.AdjOffsets), s)
	}
	if err := validateCSROffsets("EdgeOffsets", sg.EdgeOffsets, int64(len(sg.EdgeList))); err != nil {
		return err
	}
	if err := validateCSROffsets("AdjOffsets", sg.AdjOffsets, int64(len(sg.Adj))); err != nil {
		return err
	}
	for i, e := range sg.EdgeList {
		if int64(e) < 0 || int64(e) >= m {
			return fmt.Errorf("core: EdgeList[%d] = %d outside edge range [0, %d)", i, e, m)
		}
	}
	for i, nb := range sg.Adj {
		if int64(nb) < 0 || int64(nb) >= s {
			return fmt.Errorf("core: Adj[%d] = %d outside supernode range [0, %d)", i, nb, s)
		}
	}
	for e, sn := range sg.EdgeToSN {
		if sn != NoSupernode && (int64(sn) < 0 || int64(sn) >= s) {
			return fmt.Errorf("core: EdgeToSN[%d] = %d outside supernode range [0, %d)", e, sn, s)
		}
	}
	for i, k := range sg.K {
		if k < MinK {
			return fmt.Errorf("core: supernode %d has k=%d < %d", i, k, MinK)
		}
	}
	return nil
}

// validateCSROffsets checks that an offset array starts at zero, never
// decreases, and ends exactly at the payload length.
func validateCSROffsets(name string, off []int64, payload int64) error {
	if off[0] != 0 {
		return fmt.Errorf("core: %s[0] = %d, want 0", name, off[0])
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("core: %s decreases at %d (%d -> %d)", name, i, off[i-1], off[i])
		}
	}
	if last := off[len(off)-1]; last != payload {
		return fmt.Errorf("core: %s ends at %d, want %d", name, last, payload)
	}
	return nil
}
