package core

import (
	"fmt"
	"strings"
	"time"
)

// Timings records per-kernel wall times of one pipeline run, matching the
// paper's kernel breakdown (Figures 2, 4, 8): Support and TrussDecomp are
// the prerequisite kernels; Init, SpNode, SpEdge, SmGraph, and SpNodeRemap
// are the index-construction kernels.
type Timings struct {
	Support     time.Duration
	TrussDecomp time.Duration
	Init        time.Duration
	SpNode      time.Duration
	SpEdge      time.Duration
	SmGraph     time.Duration
	SpNodeRemap time.Duration
	Threads     int
}

// IndexTotal is the combined time of the index-construction kernels —
// the quantity compared across variants in the paper's Tables 4 and 5
// ("the major computational phases: SpNd, SpEdge, and SmGraph").
func (t Timings) IndexTotal() time.Duration {
	return t.Init + t.SpNode + t.SpEdge + t.SmGraph + t.SpNodeRemap
}

// Total is the whole pipeline including support computation and truss
// decomposition.
func (t Timings) Total() time.Duration {
	return t.Support + t.TrussDecomp + t.IndexTotal()
}

// Add accumulates kernel times (useful for averaging repeated runs).
func (t Timings) Add(o Timings) Timings {
	return Timings{
		Support:     t.Support + o.Support,
		TrussDecomp: t.TrussDecomp + o.TrussDecomp,
		Init:        t.Init + o.Init,
		SpNode:      t.SpNode + o.SpNode,
		SpEdge:      t.SpEdge + o.SpEdge,
		SmGraph:     t.SmGraph + o.SmGraph,
		SpNodeRemap: t.SpNodeRemap + o.SpNodeRemap,
		Threads:     t.Threads,
	}
}

// Breakdown renders the kernels as "name pct%" pairs of the total,
// mirroring the stacked percentage plots of Figures 2 and 4.
func (t Timings) Breakdown() string {
	total := t.Total()
	if total == 0 {
		return "(no timings)"
	}
	pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(total) }
	parts := []string{
		fmt.Sprintf("Support %.1f%%", pct(t.Support)),
		fmt.Sprintf("TrussDecomp %.1f%%", pct(t.TrussDecomp)),
		fmt.Sprintf("Init %.1f%%", pct(t.Init)),
		fmt.Sprintf("SpNode %.1f%%", pct(t.SpNode)),
		fmt.Sprintf("SpEdge %.1f%%", pct(t.SpEdge)),
		fmt.Sprintf("SmGraph %.1f%%", pct(t.SmGraph)),
		fmt.Sprintf("SpNodeRemap %.1f%%", pct(t.SpNodeRemap)),
	}
	return strings.Join(parts, ", ")
}
