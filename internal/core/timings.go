package core

import (
	"fmt"
	"strings"
	"time"

	"equitruss/internal/obs"
)

// Timings records per-kernel wall times of one pipeline run, matching the
// paper's kernel breakdown (Figures 2, 4, 8): Support and TrussDecomp are
// the prerequisite kernels; Init, SpNode, SpEdge, SmGraph, and SpNodeRemap
// are the index-construction kernels.
type Timings struct {
	Support     time.Duration
	TrussDecomp time.Duration
	Init        time.Duration
	SpNode      time.Duration
	SpEdge      time.Duration
	SmGraph     time.Duration
	SpNodeRemap time.Duration
	Threads     int
	// Runs counts how many runs are accumulated in the duration fields (a
	// single build is 1; Add sums them), so Mean divides correctly when
	// averaging repeated runs. A zero value is treated as one run for
	// compatibility with hand-built literals.
	Runs int
}

// runsOrOne treats the zero value as a single run.
func (t Timings) runsOrOne() int {
	if t.Runs < 1 {
		return 1
	}
	return t.Runs
}

// IndexTotal is the combined time of the index-construction kernels —
// the quantity compared across variants in the paper's Tables 4 and 5
// ("the major computational phases: SpNd, SpEdge, and SmGraph").
func (t Timings) IndexTotal() time.Duration {
	return t.Init + t.SpNode + t.SpEdge + t.SmGraph + t.SpNodeRemap
}

// Total is the whole pipeline including support computation and truss
// decomposition.
func (t Timings) Total() time.Duration {
	return t.Support + t.TrussDecomp + t.IndexTotal()
}

// Add accumulates kernel times (useful for averaging repeated runs) and
// sums the run counts, treating a zero Runs as one run.
func (t Timings) Add(o Timings) Timings {
	return Timings{
		Support:     t.Support + o.Support,
		TrussDecomp: t.TrussDecomp + o.TrussDecomp,
		Init:        t.Init + o.Init,
		SpNode:      t.SpNode + o.SpNode,
		SpEdge:      t.SpEdge + o.SpEdge,
		SmGraph:     t.SmGraph + o.SmGraph,
		SpNodeRemap: t.SpNodeRemap + o.SpNodeRemap,
		Threads:     t.Threads,
		Runs:        t.runsOrOne() + o.runsOrOne(),
	}
}

// Mean divides the accumulated kernel times by the run count, yielding the
// per-run average of a sum built with Add.
func (t Timings) Mean() Timings {
	n := time.Duration(t.runsOrOne())
	return Timings{
		Support:     t.Support / n,
		TrussDecomp: t.TrussDecomp / n,
		Init:        t.Init / n,
		SpNode:      t.SpNode / n,
		SpEdge:      t.SpEdge / n,
		SmGraph:     t.SmGraph / n,
		SpNodeRemap: t.SpNodeRemap / n,
		Threads:     t.Threads,
		Runs:        1,
	}
}

// kernels pairs each kernel name with its duration, in pipeline order.
func (t Timings) kernels() []struct {
	Name string
	D    time.Duration
} {
	return []struct {
		Name string
		D    time.Duration
	}{
		{"Support", t.Support},
		{"TrussDecomp", t.TrussDecomp},
		{"Init", t.Init},
		{"SpNode", t.SpNode},
		{"SpEdge", t.SpEdge},
		{"SmGraph", t.SmGraph},
		{"SpNodeRemap", t.SpNodeRemap},
	}
}

// EmitSpans synthesizes one pipeline-level span per non-zero kernel into
// tr, laid back-to-back from the trace epoch. It approximates a real trace
// from Timings alone, so builds that ran without a tracer attached can
// still produce a (thread-less) report and Chrome trace after the fact.
func (t Timings) EmitSpans(tr *obs.Trace) {
	var at time.Duration
	for _, k := range t.kernels() {
		if k.D == 0 {
			continue
		}
		tr.Emit(obs.Span{Name: k.Name, TID: obs.PipelineTID, Start: at, Dur: k.D})
		at += k.D
	}
}

// Breakdown renders the kernels as "name pct%" pairs of the total,
// mirroring the stacked percentage plots of Figures 2 and 4. Kernels that
// recorded no time are omitted rather than printed as 0.0% noise.
func (t Timings) Breakdown() string {
	total := t.Total()
	if total == 0 {
		return "(no timings)"
	}
	var parts []string
	for _, k := range t.kernels() {
		if k.D == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.1f%%", k.Name, 100*float64(k.D)/float64(total)))
	}
	return strings.Join(parts, ", ")
}
