package core_test

import (
	"fmt"
	"sort"
	"testing"

	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// buildTau runs the prerequisite kernels for a test graph.
func buildTau(t testing.TB, g *graph.Graph) []int32 {
	t.Helper()
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	return tau
}

// edgeSetNames renders a supernode's members as endpoint pairs for
// comparison against the paper's figure.
func edgeSetNames(g *graph.Graph, eids []int32) []string {
	out := make([]string, len(eids))
	for i, e := range eids {
		ed := g.Edge(e)
		out[i] = fmt.Sprintf("(%d,%d)", ed.U, ed.V)
	}
	sort.Strings(out)
	return out
}

// TestPaperFigure3 checks the worked example of the paper exactly: the
// 11-vertex graph of Figure 3 must produce the five published supernodes
// with the exact member edges and the four published superedges — for
// every variant.
func TestPaperFigure3(t *testing.T) {
	g := gen.PaperFigure3()
	tau := buildTau(t, g)

	wantSupernodes := map[string][]string{
		"k=3 " + "(0,4)":  {"(0,4)"},
		"k=4 " + "(0,1)":  {"(0,1)", "(0,2)", "(0,3)", "(1,2)", "(1,3)", "(2,3)"},
		"k=3 " + "(2,6)":  {"(2,6)", "(2,8)"},
		"k=4 " + "(3,4)":  {"(3,4)", "(3,5)", "(3,6)", "(4,5)", "(4,6)", "(5,10)", "(5,6)", "(5,7)"},
		"k=5 " + "(6,10)": {"(6,10)", "(6,7)", "(6,8)", "(6,9)", "(7,10)", "(7,8)", "(7,9)", "(8,10)", "(8,9)", "(9,10)"},
	}

	for _, variant := range core.Variants {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			sg, _ := core.Build(g, tau, variant, 2)
			if err := sg.Validate(g); err != nil {
				t.Fatalf("invalid index: %v", err)
			}
			if got := sg.NumSupernodes(); got != 5 {
				t.Fatalf("supernodes = %d, want 5", got)
			}
			if got := sg.NumSuperedges(); got != 6 {
				t.Fatalf("superedges = %d, want 6", got)
			}
			// Match each built supernode against the expected sets.
			for s := int32(0); s < sg.NumSupernodes(); s++ {
				names := edgeSetNames(g, sg.SupernodeEdges(s))
				key := fmt.Sprintf("k=%d %s", sg.K[s], names[0])
				want, ok := wantSupernodes[key]
				if !ok {
					t.Fatalf("unexpected supernode %s: %v", key, names)
				}
				if fmt.Sprint(names) != fmt.Sprint(want) {
					t.Errorf("supernode %s members = %v, want %v", key, names, want)
				}
			}
			// Expected superedges by (k of endpoints, smallest member).
			type se struct{ a, b string }
			var got []se
			for s := int32(0); s < sg.NumSupernodes(); s++ {
				sa := edgeSetNames(g, sg.SupernodeEdges(s))[0]
				for _, nb := range sg.SupernodeNeighbors(s) {
					sb := edgeSetNames(g, sg.SupernodeEdges(nb))[0]
					if sa < sb {
						got = append(got, se{sa, sb})
					}
				}
			}
			sort.Slice(got, func(i, j int) bool {
				if got[i].a != got[j].a {
					return got[i].a < got[j].a
				}
				return got[i].b < got[j].b
			})
			// Derived by hand from Definitions 8–9: the mixed-trussness
			// triangles are (0,3,4) → ν0–ν1, ν0–ν3; (2,3,6) → ν2–ν1,
			// ν2–ν3; (2,6,8) → ν2–ν4; (5,6,7)/(5,6,10)/(5,7,10) → ν3–ν4.
			want := []se{
				{"(0,1)", "(0,4)"},  // ν1 – ν0
				{"(0,1)", "(2,6)"},  // ν1 – ν2
				{"(0,4)", "(3,4)"},  // ν0 – ν3
				{"(2,6)", "(3,4)"},  // ν2 – ν3
				{"(2,6)", "(6,10)"}, // ν2 – ν4
				{"(3,4)", "(6,10)"}, // ν3 – ν4
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("superedges = %v, want %v", got, want)
			}
		})
	}
}

// TestPaperFigure3Trussness pins the trussness values of Figure 3a.
func TestPaperFigure3Trussness(t *testing.T) {
	g := gen.PaperFigure3()
	tau := buildTau(t, g)
	want := map[string]int32{
		"(0,4)": 3, "(2,6)": 3, "(2,8)": 3,
		"(0,1)": 4, "(0,2)": 4, "(0,3)": 4, "(1,2)": 4, "(1,3)": 4, "(2,3)": 4,
		"(3,4)": 4, "(3,5)": 4, "(3,6)": 4, "(4,5)": 4, "(4,6)": 4, "(5,6)": 4,
		"(5,7)": 4, "(5,10)": 4,
		"(6,7)": 5, "(6,8)": 5, "(6,9)": 5, "(6,10)": 5, "(7,8)": 5,
		"(7,9)": 5, "(7,10)": 5, "(8,9)": 5, "(8,10)": 5, "(9,10)": 5,
	}
	if int(g.NumEdges()) != len(want) {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), len(want))
	}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		ed := g.Edge(e)
		name := fmt.Sprintf("(%d,%d)", ed.U, ed.V)
		if tau[e] != want[name] {
			t.Errorf("τ%s = %d, want %d", name, tau[e], want[name])
		}
	}
}
