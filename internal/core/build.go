package core

import (
	"context"
	"fmt"
	"time"

	"equitruss/internal/concur"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// Variant selects one of the four index-construction implementations
// (paper Table 2).
type Variant int

const (
	// VariantSerial is the original sequential Algorithm 1.
	VariantSerial Variant = iota
	// VariantBaseline is parallel SV with hash-map dictionaries.
	VariantBaseline
	// VariantCOptimal is parallel SV with CSR-aligned, contiguous storage.
	VariantCOptimal
	// VariantAfforest is the sampling-based Afforest construction.
	VariantAfforest
	// VariantLabelProp builds supernodes by min-label propagation — one of
	// the two CC designs the paper rejects in §3.1; kept as an ablation.
	VariantLabelProp
	// VariantBFS builds supernodes by repeated parallel BFS — the other
	// rejected design of §3.1; kept as an ablation.
	VariantBFS
)

// String names the variant as the paper does.
func (v Variant) String() string {
	switch v {
	case VariantSerial:
		return "Original"
	case VariantBaseline:
		return "Baseline"
	case VariantCOptimal:
		return "C-Optimal"
	case VariantAfforest:
		return "Afforest"
	case VariantLabelProp:
		return "LabelProp"
	case VariantBFS:
		return "BFS"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Variants lists every implementation, in the paper's order.
var Variants = []Variant{VariantSerial, VariantBaseline, VariantCOptimal, VariantAfforest}

// ParallelVariants lists the three multi-threaded implementations from the
// paper's Table 2.
var ParallelVariants = []Variant{VariantBaseline, VariantCOptimal, VariantAfforest}

// AblationVariants lists the §3.1 rejected CC designs, implemented for the
// SpNode strategy ablation. They produce the identical index, slower.
var AblationVariants = []Variant{VariantLabelProp, VariantBFS}

// Build constructs the EquiTruss index from a graph and its per-edge
// trussness, using the selected variant and thread count (<= 0 for all
// cores). All variants produce the identical index (same supernode
// partition and superedge set); they differ only in construction strategy
// and therefore speed. The returned Timings cover the index kernels only;
// callers that also time Support/TrussDecomp fill those fields themselves
// (see the pipeline in the public package).
func Build(g *graph.Graph, tau []int32, variant Variant, threads int) (*SummaryGraph, Timings) {
	return BuildTraced(g, tau, variant, threads, nil)
}

// BuildTraced is Build with observability: every kernel emits a
// pipeline-level span into tr and the parallel kernels additionally emit
// one span per worker, so per-kernel load imbalance is measurable. A nil
// tracer records nothing and adds no overhead — Build delegates here.
func BuildTraced(g *graph.Graph, tau []int32, variant Variant, threads int, tr *obs.Trace) (*SummaryGraph, Timings) {
	sg, tm, err := BuildCtx(concur.WithoutFaults(context.Background()), g, tau, variant, threads, tr)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection, so the ctx form cannot fail.
		panic("core: " + err.Error())
	}
	return sg, tm
}

// BuildCtx is BuildTraced with cancellation: every kernel checks ctx at
// scheduler-barrier granularity (and between SV hook rounds), so a
// canceled build returns ctx.Err() in bounded time with every worker
// goroutine joined and no partial index escaping.
func BuildCtx(ctx context.Context, g *graph.Graph, tau []int32, variant Variant, threads int, tr *obs.Trace) (*SummaryGraph, Timings, error) {
	if len(tau) != int(g.NumEdges()) {
		panic(fmt.Sprintf("core: tau has %d entries for %d edges", len(tau), g.NumEdges()))
	}
	if variant == VariantSerial {
		return buildSerialCtx(ctx, g, tau, tr)
	}
	if threads <= 0 {
		threads = concur.MaxThreads()
	}
	var tm Timings
	tm.Threads = threads
	tm.Runs = 1

	// Init kernel: Φ_k grouping plus any variant-specific dictionaries.
	span := tr.Start("Init")
	start := time.Now()
	var dict edgeDict
	var phi [][]int32
	switch variant {
	case VariantBaseline:
		dict = buildEdgeDict(g, tau)
		phi, _ = phiGroups(g, tau, threads)
	case VariantCOptimal:
		phi, _ = phiGroups(g, tau, threads)
	case VariantAfforest, VariantLabelProp, VariantBFS:
		// These strategies need no Φ ordering: cross-k hooks are
		// impossible, so all trussness groups converge in the same passes.
	default:
		panic("core: unknown variant " + variant.String())
	}
	tm.Init = time.Since(start)
	span.End()
	if err := ctxDone(ctx); err != nil {
		return nil, tm, err
	}

	// SpNode kernel.
	span = tr.Start("SpNode")
	start = time.Now()
	var pi []int32
	var err error
	switch variant {
	case VariantBaseline:
		pi, err = spNodeBaseline(ctx, g, tau, dict, phi, threads, tr)
	case VariantCOptimal:
		pi, err = spNodeCOptimal(ctx, g, tau, phi, threads, tr)
	case VariantAfforest:
		pi, err = spNodeAfforest(ctx, g, tau, threads, tr)
	case VariantLabelProp:
		pi, err = spNodeLabelProp(ctx, g, tau, threads, tr)
	case VariantBFS:
		pi, err = spNodeBFS(ctx, g, tau, threads, tr)
	}
	tm.SpNode = time.Since(start)
	span.End()
	if err != nil {
		return nil, tm, err
	}

	// SpEdge kernel.
	span = tr.Start("SpEdge")
	start = time.Now()
	var spEdges [][]uint64
	if variant == VariantBaseline {
		spEdges, err = spEdgeBaseline(ctx, g, tau, pi, dict, threads, tr)
	} else {
		spEdges, err = spEdgeFlat(ctx, g, tau, pi, threads, tr)
	}
	tm.SpEdge = time.Since(start)
	span.End()
	if err != nil {
		return nil, tm, err
	}

	// SmGraph kernel.
	span = tr.Start("SmGraph")
	start = time.Now()
	pairs, err := smGraphMerge(ctx, spEdges, threads, tr)
	tm.SmGraph = time.Since(start)
	span.End()
	if err != nil {
		return nil, tm, err
	}

	// SpNodeRemap kernel: serial passes with bounded work per element; it
	// runs to completion rather than checking ctx (a canceled context was
	// already honored at the preceding barriers).
	span = tr.Start("SpNodeRemap")
	start = time.Now()
	sg := remap(g, tau, pi, pairs, threads)
	tm.SpNodeRemap = time.Since(start)
	span.End()
	return sg, tm, nil
}

// ctxDone returns ctx.Err(), tolerating a nil context.
func ctxDone(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// remap densifies root edge IDs into supernode IDs 0..S-1 (in ascending
// root order, which is deterministic across variants because every variant
// converges to the minimum member edge ID as root), builds the supernode→
// member CSR, and translates the packed superedge roots into the final
// supernode adjacency.
func remap(g *graph.Graph, tau, pi []int32, pairs []uint64, threads int) *SummaryGraph {
	m := int32(g.NumEdges())
	dense := make([]int32, m)
	var s int32
	for e := int32(0); e < m; e++ {
		if tau[e] >= MinK && pi[e] == e {
			dense[e] = s
			s++
		} else {
			dense[e] = NoSupernode
		}
	}
	sg := &SummaryGraph{
		Tau:         tau,
		EdgeToSN:    make([]int32, m),
		K:           make([]int32, s),
		EdgeOffsets: make([]int64, s+1),
		AdjOffsets:  make([]int64, s+1),
	}
	counts := make([]int64, s)
	for e := int32(0); e < m; e++ {
		if tau[e] < MinK {
			sg.EdgeToSN[e] = NoSupernode
			continue
		}
		sn := dense[pi[e]]
		sg.EdgeToSN[e] = sn
		counts[sn]++
		if pi[e] == e {
			sg.K[sn] = tau[e]
		}
	}
	var run int64
	for i := int32(0); i < s; i++ {
		sg.EdgeOffsets[i] = run
		run += counts[i]
	}
	sg.EdgeOffsets[s] = run
	sg.EdgeList = make([]int32, run)
	cursor := make([]int64, s)
	copy(cursor, sg.EdgeOffsets[:s])
	for e := int32(0); e < m; e++ {
		if sn := sg.EdgeToSN[e]; sn != NoSupernode {
			sg.EdgeList[cursor[sn]] = e
			cursor[sn]++
		}
	}
	// Superedge adjacency.
	deg := make([]int64, s)
	for _, p := range pairs {
		a, b := unpackPair(p)
		deg[dense[a]]++
		deg[dense[b]]++
	}
	run = 0
	for i := int32(0); i < s; i++ {
		sg.AdjOffsets[i] = run
		run += deg[i]
	}
	sg.AdjOffsets[s] = run
	sg.Adj = make([]int32, run)
	adjCursor := make([]int64, s)
	copy(adjCursor, sg.AdjOffsets[:s])
	for _, p := range pairs {
		a, b := unpackPair(p)
		da, db := dense[a], dense[b]
		sg.Adj[adjCursor[da]] = db
		adjCursor[da]++
		sg.Adj[adjCursor[db]] = da
		adjCursor[db]++
	}
	return sg
}
