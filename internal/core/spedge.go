package core

import (
	"context"
	"sort"
	"sync/atomic"

	"equitruss/internal/concur"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// spEdgeCancelStride is how many edges a SpEdge worker scans between ctx
// polls inside its per-thread block.
const spEdgeCancelStride = 2048

// packPair packs a canonical (low-root, high-root) superedge into a single
// comparable word for hashing, sorting, and deduplication.
func packPair(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

func unpackPair(p uint64) (a, b int32) { return int32(p >> 32), int32(uint32(p)) }

// spEdgeFlat is Algorithm 3 over the flat τ/Π arrays (C-Optimal and
// Afforest variants): every edge scans its triangles, and whenever it is
// strictly above the triangle's minimum trussness it emits a superedge from
// its supernode down to the minimum edge's supernode. Each thread appends
// to its own subset (ln. 1, 10, 12), avoiding races by construction.
// Workers poll ctx every spEdgeCancelStride edges; a canceled call returns
// ctx.Err() and no subsets.
func spEdgeFlat(ctx context.Context, g *graph.Graph, tau, pi []int32, threads int, tr *obs.Trace) ([][]uint64, error) {
	if threads <= 0 {
		threads = concur.MaxThreads()
	}
	m := int(g.NumEdges())
	spEdges := make([][]uint64, threads)
	err := concur.ForThreadsCtxT(ctx, tr, "SpEdge", threads, func(tid int) {
		lo := tid * m / threads
		hi := (tid + 1) * m / threads
		var local []uint64
		for i := lo; i < hi; i++ {
			if (i-lo)%spEdgeCancelStride == 0 && concur.Canceled(ctx) {
				return
			}
			e := int32(i)
			k := tau[e]
			if k < MinK {
				continue
			}
			g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
				k1, k2 := tau[e1], tau[e2]
				lowest := min32(k, min32(k1, k2))
				if k > lowest {
					if lowest == k1 {
						local = append(local, packPair(pi[e1], pi[e]))
					}
					if lowest == k2 {
						local = append(local, packPair(pi[e2], pi[e]))
					}
				}
				return true
			})
		}
		spEdges[tid] = local
		cSpEdgeEmitted.Add(int64(len(local)))
	})
	if err != nil {
		return nil, err
	}
	return spEdges, nil
}

// spEdgeBaseline is Algorithm 3 with the Baseline variant's dictionary
// lookups for trussness and edge identity (the same indirection its SpNode
// pays). Cancellation mirrors spEdgeFlat.
func spEdgeBaseline(ctx context.Context, g *graph.Graph, tau, pi []int32, dict edgeDict, threads int, tr *obs.Trace) ([][]uint64, error) {
	if threads <= 0 {
		threads = concur.MaxThreads()
	}
	m := int(g.NumEdges())
	edges := g.Edges()
	spEdges := make([][]uint64, threads)
	err := concur.ForThreadsCtxT(ctx, tr, "SpEdge", threads, func(tid int) {
		lo := tid * m / threads
		hi := (tid + 1) * m / threads
		var local []uint64
		for i := lo; i < hi; i++ {
			if (i-lo)%spEdgeCancelStride == 0 && concur.Canceled(ctx) {
				return
			}
			e := int32(i)
			k := tau[e]
			if k < MinK {
				continue
			}
			u, v := edges[e].U, edges[e].V
			nu, nv := g.Neighbors(u), g.Neighbors(v)
			a, b := 0, 0
			for a < len(nu) && b < len(nv) {
				switch {
				case nu[a] < nv[b]:
					a++
				case nu[a] > nv[b]:
					b++
				default:
					w := nu[a]
					a++
					b++
					e1, k1 := unpackInfo(dict[packKey(min32(u, w), max32(u, w))])
					e2, k2 := unpackInfo(dict[packKey(min32(v, w), max32(v, w))])
					lowest := min32(k, min32(k1, k2))
					if k > lowest {
						if lowest == k1 {
							local = append(local, packPair(pi[e1], pi[e]))
						}
						if lowest == k2 {
							local = append(local, packPair(pi[e2], pi[e]))
						}
					}
				}
			}
		}
		spEdges[tid] = local
		cSpEdgeEmitted.Add(int64(len(local)))
	})
	if err != nil {
		return nil, err
	}
	return spEdges, nil
}

// smGraphMerge is Algorithm 4: thread-local superedge subsets are hash-
// partitioned to destination threads, each destination sorts and
// deduplicates its partition, and the partitions are concatenated into the
// final superedge list via a prefix-summed parallel copy. Cancellation is
// checked at each of the three phase barriers.
func smGraphMerge(ctx context.Context, spEdges [][]uint64, threads int, tr *obs.Trace) ([]uint64, error) {
	if threads <= 0 {
		threads = concur.MaxThreads()
	}
	nsrc := len(spEdges)
	// ln. 6–11: each source thread buckets its superedges by destination.
	partitioned := make([][][]uint64, nsrc)
	if err := concur.ForThreadsCtxT(ctx, tr, "SmGraph", nsrc, func(src int) {
		buckets := make([][]uint64, threads)
		for _, p := range spEdges[src] {
			d := int((p * 0x9E3779B97F4A7C15 >> 33) % uint64(threads))
			buckets[d] = append(buckets[d], p)
		}
		partitioned[src] = buckets
	}); err != nil {
		return nil, err
	}
	// ln. 13–16: each destination combines, sorts, removes duplicates.
	combined := make([][]uint64, threads)
	var deduped int64
	if err := concur.ForThreadsCtxT(ctx, tr, "SmGraph", threads, func(dst int) {
		var all []uint64
		for src := 0; src < nsrc; src++ {
			all = append(all, partitioned[src][dst]...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		out := all[:0]
		var prev uint64
		for i, p := range all {
			if i == 0 || p != prev {
				out = append(out, p)
			}
			prev = p
		}
		if dropped := len(all) - len(out); dropped > 0 {
			atomic.AddInt64(&deduped, int64(dropped))
		}
		combined[dst] = out
	}); err != nil {
		return nil, err
	}
	// ln. 17–19: size the final buffer by reduction and merge in parallel.
	offsets := make([]int64, threads)
	var total int64
	for d := 0; d < threads; d++ {
		offsets[d] = total
		total += int64(len(combined[d]))
	}
	final := make([]uint64, total)
	if err := concur.ForThreadsCtxT(ctx, tr, "SmGraph", threads, func(dst int) {
		copy(final[offsets[dst]:], combined[dst])
	}); err != nil {
		return nil, err
	}
	cSmGraphDeduped.Add(deduped)
	cSmGraphFinal.Add(total)
	return final, nil
}
