package core

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a built index: the paper's Table 5 columns plus the
// distributions that explain construction cost (supernode sizes drive SV
// round counts; the k histogram drives Φ_k group sizes).
type Stats struct {
	Supernodes   int32
	Superedges   int64
	IndexedEdges int64 // edges with τ >= 3 (supernode members)
	Tau2Edges    int64 // triangle-free edges outside the index
	KMax         int32
	// KHistogram[k] = number of supernodes with trussness k.
	KHistogram map[int32]int64
	// LargestSupernode is the member count of the biggest supernode (the
	// component Afforest's sampling is designed to find).
	LargestSupernode int64
	// MeanSupernodeSize is IndexedEdges / Supernodes.
	MeanSupernodeSize float64
}

// ComputeStats derives Stats from a summary graph.
func (sg *SummaryGraph) ComputeStats() Stats {
	st := Stats{
		Supernodes: sg.NumSupernodes(),
		Superedges: sg.NumSuperedges(),
		KHistogram: make(map[int32]int64),
	}
	for _, t := range sg.Tau {
		if t >= MinK {
			st.IndexedEdges++
		} else {
			st.Tau2Edges++
		}
	}
	for s := int32(0); s < st.Supernodes; s++ {
		k := sg.K[s]
		st.KHistogram[k]++
		if k > st.KMax {
			st.KMax = k
		}
		size := sg.EdgeOffsets[s+1] - sg.EdgeOffsets[s]
		if size > st.LargestSupernode {
			st.LargestSupernode = size
		}
	}
	if st.Supernodes > 0 {
		st.MeanSupernodeSize = float64(st.IndexedEdges) / float64(st.Supernodes)
	}
	return st
}

// String renders the stats as a short report.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "supernodes=%d superedges=%d indexed-edges=%d tau2-edges=%d kmax=%d largest=%d mean=%.1f",
		st.Supernodes, st.Superedges, st.IndexedEdges, st.Tau2Edges, st.KMax, st.LargestSupernode, st.MeanSupernodeSize)
	if len(st.KHistogram) > 0 {
		ks := make([]int32, 0, len(st.KHistogram))
		for k := range st.KHistogram {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		b.WriteString(" k-hist=[")
		for i, k := range ks {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%d:%d", k, st.KHistogram[k])
		}
		b.WriteString("]")
	}
	return b.String()
}
