package core

import (
	"context"
	"time"

	"equitruss/internal/concur"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// BuildSerial is a faithful port of Algorithm 1 (the original sequential
// EquiTruss index construction of Akbas & Zhao): edges are grouped by
// trussness, and for k = 3..kmax each unprocessed edge seeds a supernode
// grown by a breadth-first traversal over k-triangle connectivity. Edges of
// higher trussness met along the way record the supernode ID in their
// pending list; when they are later processed at their own trussness level,
// each recorded ID becomes a superedge.
func BuildSerial(g *graph.Graph, tau []int32) (*SummaryGraph, Timings) {
	return buildSerial(g, tau, nil)
}

// buildSerial is BuildSerial with pipeline-level spans (the serial builder
// has no worker threads, so there are no per-thread spans to emit). SpNode
// and SpEdge are interleaved in Algorithm 1, so they share one span and the
// SpNode timing bucket.
func buildSerial(g *graph.Graph, tau []int32, tr *obs.Trace) (*SummaryGraph, Timings) {
	sg, tm, err := buildSerialCtx(nil, g, tau, tr)
	if err != nil {
		// Unreachable: a nil context is never canceled.
		panic("core: " + err.Error())
	}
	return sg, tm
}

// buildSerialCtx is buildSerial with cancellation: the BFS loop polls ctx
// every few thousand dequeued edges and returns ctx.Err() (and no index)
// once it fires. A nil context is never canceled.
func buildSerialCtx(ctx context.Context, g *graph.Graph, tau []int32, tr *obs.Trace) (*SummaryGraph, Timings, error) {
	var tm Timings
	tm.Threads = 1
	tm.Runs = 1
	m := int32(g.NumEdges())

	// Init kernel: group edge IDs into Φ_k sets (ln. 1–5).
	span := tr.Start("Init")
	start := time.Now()
	kmax := int32(MinK - 1)
	for _, t := range tau {
		if t > kmax {
			kmax = t
		}
	}
	phi := make([][]int32, kmax+1)
	for e := int32(0); e < m; e++ {
		if tau[e] >= MinK {
			phi[tau[e]] = append(phi[tau[e]], e)
		}
	}
	tm.Init = time.Since(start)
	span.End()

	// SpNode + SpEdge interleaved exactly as Algorithm 1 does: BFS grows a
	// supernode and superedges materialize when a pending list is drained.
	span = tr.Start("SpNode")
	start = time.Now()
	processed := make([]bool, m)
	snOf := make([]int32, m)
	for i := range snOf {
		snOf[i] = NoSupernode
	}
	lists := make([][]int32, m) // e.list: pending supernode IDs
	var snK []int32
	var snMembers [][]int32
	type sePair struct{ a, b int32 }
	seSet := make(map[sePair]struct{})
	var queue []int32
	pops := 0

	for k := int32(MinK); k <= kmax; k++ {
		for _, seed := range phi[k] {
			if processed[seed] {
				continue
			}
			if pops++; pops&4095 == 0 && concur.Canceled(ctx) {
				return nil, tm, ctx.Err()
			}
			// ln. 9–13: open a new supernode ν and BFS from the seed.
			snID := int32(len(snK))
			snK = append(snK, k)
			snMembers = append(snMembers, nil)
			processed[seed] = true
			queue = append(queue[:0], seed)
			for len(queue) > 0 {
				if pops++; pops&4095 == 0 && concur.Canceled(ctx) {
					return nil, tm, ctx.Err()
				}
				e := queue[0]
				queue = queue[1:]
				snMembers[snID] = append(snMembers[snID], e)
				snOf[e] = snID
				// ln. 17–19: drain e's pending list into superedges.
				for _, id := range lists[e] {
					p := sePair{id, snID}
					seSet[p] = struct{}{}
				}
				lists[e] = nil
				// ln. 20–23: expand through triangles fully inside the
				// k-truss (τ of both partner edges >= k).
				g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
					if tau[e1] < k || tau[e2] < k {
						return true
					}
					queue = processEdgeSerial(e1, k, snID, tau, processed, lists, queue)
					queue = processEdgeSerial(e2, k, snID, tau, processed, lists, queue)
					return true
				})
			}
		}
	}
	tm.SpNode = time.Since(start)
	span.End()

	// SmGraph kernel: assemble the CSR summary graph.
	span = tr.Start("SmGraph")
	start = time.Now()
	pairs := make([][2]int32, 0, len(seSet))
	for p := range seSet {
		pairs = append(pairs, [2]int32{p.a, p.b})
	}
	sg := assemble(g, tau, snK, snMembers, snOf, pairs)
	tm.SmGraph = time.Since(start)
	span.End()
	return sg, tm, nil
}

// processEdgeSerial is Algorithm 1's ProcessEdge (ln. 25–32): same-k edges
// join the BFS; higher-k edges record the supernode ID for later superedge
// creation.
func processEdgeSerial(e, k, snID int32, tau []int32, processed []bool, lists [][]int32, queue []int32) []int32 {
	if tau[e] == k {
		if !processed[e] {
			processed[e] = true
			queue = append(queue, e)
		}
		return queue
	}
	// τ(e) > k here: k-truss gate upstream guarantees τ >= k.
	for _, id := range lists[e] {
		if id == snID {
			return queue
		}
	}
	lists[e] = append(lists[e], snID)
	return queue
}

// assemble builds the final SummaryGraph from supernode membership and a
// deduplicated superedge pair list (pairs reference dense supernode IDs).
func assemble(g *graph.Graph, tau []int32, snK []int32, snMembers [][]int32, snOf []int32, pairs [][2]int32) *SummaryGraph {
	s := int32(len(snK))
	sg := &SummaryGraph{
		Tau:         tau,
		EdgeToSN:    snOf,
		K:           snK,
		EdgeOffsets: make([]int64, s+1),
		AdjOffsets:  make([]int64, s+1),
	}
	var total int64
	for i := int32(0); i < s; i++ {
		sg.EdgeOffsets[i] = total
		total += int64(len(snMembers[i]))
	}
	sg.EdgeOffsets[s] = total
	sg.EdgeList = make([]int32, total)
	for i := int32(0); i < s; i++ {
		copy(sg.EdgeList[sg.EdgeOffsets[i]:], snMembers[i])
	}
	deg := make([]int64, s)
	for _, p := range pairs {
		deg[p[0]]++
		deg[p[1]]++
	}
	var run int64
	for i := int32(0); i < s; i++ {
		sg.AdjOffsets[i] = run
		run += deg[i]
	}
	sg.AdjOffsets[s] = run
	sg.Adj = make([]int32, run)
	cursor := make([]int64, s)
	copy(cursor, sg.AdjOffsets[:s])
	for _, p := range pairs {
		sg.Adj[cursor[p[0]]] = p[1]
		cursor[p[0]]++
		sg.Adj[cursor[p[1]]] = p[0]
		cursor[p[1]]++
	}
	return sg
}
