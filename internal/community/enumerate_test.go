package community_test

import (
	"testing"

	"equitruss/internal/community"
	"equitruss/internal/gen"
)

func TestAllCommunitiesFigure3(t *testing.T) {
	g := gen.PaperFigure3()
	_, idx := pipeline(t, g)
	// k=3: the whole graph is one triangle-connected community.
	if cs := idx.AllCommunities(3); len(cs) != 1 {
		t.Fatalf("k=3 communities = %d, want 1", len(cs))
	}
	// k=4: ν1 alone and ν3∪ν4.
	cs := idx.AllCommunities(4)
	if len(cs) != 2 {
		t.Fatalf("k=4 communities = %d, want 2", len(cs))
	}
	// k=5: just the 5-clique.
	cs = idx.AllCommunities(5)
	if len(cs) != 1 || len(cs[0].Edges) != 10 {
		t.Fatalf("k=5 communities = %v", cs)
	}
	// k=6: none.
	if cs := idx.AllCommunities(6); len(cs) != 0 {
		t.Fatalf("k=6 communities = %d, want 0", len(cs))
	}
}

// TestAllCommunitiesCoversVertexQueries: the union of every vertex's
// communities at level k must equal AllCommunities(k).
func TestAllCommunitiesCoversVertexQueries(t *testing.T) {
	g := gen.PlantedPartition(7, 8, 0.7, 1.3, 61)
	_, idx := pipeline(t, g)
	for _, k := range []int32{3, 4, 5} {
		all := idx.AllCommunities(k)
		seen := map[string]bool{}
		for v := int32(0); v < g.NumVertices(); v++ {
			for _, c := range idx.Communities(v, k) {
				seen[canonCommunities([]*community.Community{c})] = true
			}
		}
		if len(seen) != len(all) {
			t.Fatalf("k=%d: vertex queries found %d distinct communities, global %d",
				k, len(seen), len(all))
		}
		for _, c := range all {
			if !seen[canonCommunities([]*community.Community{c})] {
				t.Fatalf("k=%d: global community missing from vertex queries", k)
			}
		}
	}
}

func TestCommunityCountProfile(t *testing.T) {
	g := gen.SharedEdgeCliquePair(6, 4)
	_, idx := pipeline(t, g)
	prof := idx.CommunityCount()
	// k=3..4: one merged community; k=5,6: just the K6.
	if prof[3] != 1 || prof[4] != 1 || prof[5] != 1 || prof[6] != 1 {
		t.Fatalf("profile = %v", prof)
	}
	if _, ok := prof[7]; ok {
		t.Fatalf("profile has k=7: %v", prof)
	}
	// Triangle-free graph: empty profile.
	g2 := gen.Cycle(8)
	_, idx2 := pipeline(t, g2)
	if len(idx2.CommunityCount()) != 0 {
		t.Fatal("cycle has communities")
	}
}
