// Package community answers the local (goal-oriented) community-search
// queries that the EquiTruss index exists for: given a query vertex q and a
// cohesion level k, return every k-truss community containing q — possibly
// several, and possibly overlapping with other vertices' communities.
//
// Two query paths are provided: the indexed path that traverses the summary
// graph (the whole point of the paper), and a direct from-scratch BFS over
// edges that serves as the correctness oracle in tests.
package community

import (
	"sort"
	"sync"
	"sync/atomic"

	"equitruss/internal/core"
	"equitruss/internal/ds"
	"equitruss/internal/graph"
)

// Community is one k-truss community: a set of edge IDs of the original
// graph. Vertices returns the vertex set on demand.
type Community struct {
	K     int32   // the queried cohesion level
	Edges []int32 // member edge IDs, ascending
	g     *graph.Graph
}

// Vertices returns the sorted distinct vertices spanned by the community.
func (c *Community) Vertices() []int32 {
	seen := make(map[int32]struct{}, 2*len(c.Edges))
	for _, e := range c.Edges {
		ed := c.g.Edge(e)
		seen[ed.U] = struct{}{}
		seen[ed.V] = struct{}{}
	}
	out := make([]int32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subgraph materializes the community as its own graph (original vertex
// IDs preserved).
func (c *Community) Subgraph() (*graph.Graph, error) {
	member := make(map[int32]struct{}, len(c.Edges))
	for _, e := range c.Edges {
		member[e] = struct{}{}
	}
	return c.g.InducedByEdges(func(eid int32) bool {
		_, ok := member[eid]
		return ok
	})
}

// Index couples the summary graph with the vertex→supernode mapping needed
// to seed queries, i.e. the complete query-ready EquiTruss index.
type Index struct {
	G  *graph.Graph
	SG *core.SummaryGraph

	// vertex → distinct supernodes of its incident edges, CSR form. A
	// deferred index (NewIndexDeferred) leaves these nil and computes each
	// vertex's supernode set on demand from the graph's incidence lists —
	// see SupernodesOf.
	snOffsets []int64
	snList    []int32

	// Lazily built k-level community hierarchy: hier is the published
	// handle read lock-free on the query hot path, hierMu serializes the
	// one-time build so concurrent first queries construct it exactly once.
	hierMu sync.Mutex
	hier   atomic.Pointer[Hierarchy]
}

// NewIndex builds the vertex→supernode CSR from the summary graph.
func NewIndex(g *graph.Graph, sg *core.SummaryGraph) *Index {
	n := g.NumVertices()
	idx := &Index{G: g, SG: sg, snOffsets: make([]int64, n+1)}
	// Two passes: count distinct supernodes per vertex, then fill.
	distinct := func(v int32, emit func(sn int32)) {
		eids := g.IncidentEIDs(v)
		// Incident supernode lists are tiny; dedupe with a local slice.
		var seen []int32
		for _, e := range eids {
			sn := sg.EdgeToSN[e]
			if sn == core.NoSupernode {
				continue
			}
			dup := false
			for _, s := range seen {
				if s == sn {
					dup = true
					break
				}
			}
			if !dup {
				seen = append(seen, sn)
				emit(sn)
			}
		}
	}
	for v := int32(0); v < n; v++ {
		var c int64
		distinct(v, func(int32) { c++ })
		idx.snOffsets[v+1] = idx.snOffsets[v] + c
	}
	idx.snList = make([]int32, idx.snOffsets[n])
	cursor := make([]int64, n)
	copy(cursor, idx.snOffsets[:n])
	for v := int32(0); v < n; v++ {
		distinct(v, func(sn int32) {
			idx.snList[cursor[v]] = sn
			cursor[v]++
		})
	}
	return idx
}

// NewIndexDeferred wraps the summary graph without materializing the
// vertex→supernode CSR: queries compute each vertex's supernode set on
// demand, O(deg(v)) per call, instead of paying an O(Σ deg) pass over the
// whole graph up front. This is the load path for memory-mapped indexes,
// where the summary graph is available in microseconds and the eager CSR
// build would dominate cold-start time by orders of magnitude.
func NewIndexDeferred(g *graph.Graph, sg *core.SummaryGraph) *Index {
	return &Index{G: g, SG: sg}
}

// SupernodesOf returns the distinct supernodes containing an edge incident
// to v. With an eager index this aliases internal storage; a deferred index
// computes it from the incidence list on each call.
func (idx *Index) SupernodesOf(v int32) []int32 {
	if idx.snOffsets != nil {
		return idx.snList[idx.snOffsets[v]:idx.snOffsets[v+1]]
	}
	return appendDistinctSupernodes(nil, idx.G, idx.SG, v)
}

// appendDistinctSupernodes appends the distinct supernodes of v's incident
// edges to dst. Dedupe is linear-scan for the common small case and falls
// back to a set for hub vertices, keeping the cost O(deg(v)) rather than
// quadratic in the number of distinct supernodes.
func appendDistinctSupernodes(dst []int32, g *graph.Graph, sg *core.SummaryGraph, v int32) []int32 {
	const linearMax = 48
	start := len(dst)
	var set map[int32]struct{}
	for _, e := range g.IncidentEIDs(v) {
		sn := sg.EdgeToSN[e]
		if sn == core.NoSupernode {
			continue
		}
		if set != nil {
			if _, dup := set[sn]; dup {
				continue
			}
			set[sn] = struct{}{}
			dst = append(dst, sn)
			continue
		}
		dup := false
		for _, s := range dst[start:] {
			if s == sn {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		dst = append(dst, sn)
		if len(dst)-start > linearMax {
			set = make(map[int32]struct{}, 2*(len(dst)-start))
			for _, s := range dst[start:] {
				set[s] = struct{}{}
			}
		}
	}
	return dst
}

// CommunitiesBFS returns every k-truss community containing vertex v by
// traversing the summary graph: seed supernodes are v's incident supernodes
// with trussness >= k; each seed's connected region of the summary graph
// restricted to supernodes with trussness >= k is one community (distinct
// seeds falling in one region merge into the same community). This is the
// original indexed path, kept as the differential oracle for the
// hierarchy-backed Communities — it allocates an O(#supernodes) visited
// bitset per call, which the hierarchy path avoids.
func (idx *Index) CommunitiesBFS(v int32, k int32) []*Community {
	if k < core.MinK {
		k = core.MinK
	}
	sg := idx.SG
	visited := ds.NewBitset(int(sg.NumSupernodes()))
	var result []*Community
	for _, seed := range idx.SupernodesOf(v) {
		if sg.K[seed] < k || visited.Get(int(seed)) {
			continue
		}
		// BFS over qualifying supernodes.
		var members []int32
		stack := []int32{seed}
		visited.Set(int(seed))
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, sg.SupernodeEdges(s)...)
			for _, nb := range sg.SupernodeNeighbors(s) {
				if sg.K[nb] >= k && !visited.Get(int(nb)) {
					visited.Set(int(nb))
					stack = append(stack, nb)
				}
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		result = append(result, &Community{K: k, Edges: members, g: idx.G})
	}
	return result
}

// MaxK returns the highest trussness of any supernode containing an edge
// incident to v — the strongest community the vertex participates in.
func (idx *Index) MaxK(v int32) int32 {
	best := int32(0)
	for _, sn := range idx.SupernodesOf(v) {
		if k := idx.SG.K[sn]; k > best {
			best = k
		}
	}
	return best
}

// MembershipBFS computes the overlapping community profile of v by running
// one summary-graph BFS per level — the oracle form of Membership.
func (idx *Index) MembershipBFS(v int32) map[int32]int {
	out := make(map[int32]int)
	maxK := idx.MaxK(v)
	for k := int32(core.MinK); k <= maxK; k++ {
		if cs := idx.CommunitiesBFS(v, k); len(cs) > 0 {
			out[k] = len(cs)
		}
	}
	return out
}

// DirectCommunities answers the same query with no index: BFS over the
// original graph's edges, expanding through triangles entirely inside the
// k-truss (all three edges τ >= k). It is the ground-truth oracle used to
// validate the indexed path and the from-scratch comparator in benchmarks.
func DirectCommunities(g *graph.Graph, tau []int32, v int32, k int32) []*Community {
	if k < core.MinK {
		k = core.MinK
	}
	m := int(g.NumEdges())
	visited := ds.NewBitset(m)
	var result []*Community
	for _, seed := range g.IncidentEIDs(v) {
		if tau[seed] < k || visited.Get(int(seed)) {
			continue
		}
		var members []int32
		stack := []int32{seed}
		visited.Set(int(seed))
		for len(stack) > 0 {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, e)
			g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
				if tau[e1] < k || tau[e2] < k {
					return true
				}
				if !visited.Get(int(e1)) {
					visited.Set(int(e1))
					stack = append(stack, e1)
				}
				if !visited.Get(int(e2)) {
					visited.Set(int(e2))
					stack = append(stack, e2)
				}
				return true
			})
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		result = append(result, &Community{K: k, Edges: members, g: g})
	}
	return result
}

// CanonicalizeCommunities sorts a community list by first member edge so
// that indexed and direct answers compare deterministically.
func CanonicalizeCommunities(cs []*Community) []*Community {
	sort.Slice(cs, func(i, j int) bool {
		if len(cs[i].Edges) == 0 || len(cs[j].Edges) == 0 {
			return len(cs[i].Edges) < len(cs[j].Edges)
		}
		return cs[i].Edges[0] < cs[j].Edges[0]
	})
	return cs
}
