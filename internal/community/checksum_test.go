package community

import (
	"testing"

	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// buildVariantIndex builds a query-ready index over g with one variant.
func buildVariantIndex(t *testing.T, variant core.Variant, threads int) *Index {
	t.Helper()
	g := gen.RMAT(10, 8, 0.57, 0.19, 0.19, 7)
	sup := triangle.Supports(g, threads)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, variant, threads)
	return NewIndex(g, sg)
}

// TestChecksumsCanonicalAcrossVariants is the property the crash-recovery
// differential rests on: indexes of the same logical state built by
// different variants (whose dense supernode IDs differ) must fingerprint
// identically at all three layers.
func TestChecksumsCanonicalAcrossVariants(t *testing.T) {
	ref := buildVariantIndex(t, core.VariantSerial, 1).Checksums()
	if ref.Tau == 0 || ref.Summary == 0 || ref.Hierarchy == 0 {
		t.Fatalf("degenerate checksums: %+v", ref)
	}
	for _, variant := range []core.Variant{core.VariantBaseline, core.VariantCOptimal, core.VariantAfforest} {
		for _, threads := range []int{1, 4} {
			got := buildVariantIndex(t, variant, threads).Checksums()
			if got != ref {
				t.Fatalf("variant %v threads %d: checksums %+v != serial reference %+v",
					variant, threads, got, ref)
			}
		}
	}
}

// TestChecksumsDetectStateChange: removing one edge must change every
// layer's fingerprint (on a graph where that edge carries truss structure).
func TestChecksumsDetectStateChange(t *testing.T) {
	g := gen.Clique(8)
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantSerial, 1)
	ref := NewIndex(g, sg).Checksums()

	g2, err := g.InducedByEdges(func(eid int32) bool { return eid != 0 })
	if err != nil {
		t.Fatal(err)
	}
	sup2 := triangle.Supports(g2, 1)
	tau2, _ := truss.DecomposeSerial(g2, sup2)
	sg2, _ := core.Build(g2, tau2, core.VariantSerial, 1)
	got := NewIndex(g2, sg2).Checksums()
	if got.Tau == ref.Tau {
		t.Fatal("tau checksum unchanged after deleting an edge")
	}
	if got.Summary == ref.Summary {
		t.Fatal("summary checksum unchanged after deleting an edge")
	}
	if got.Hierarchy == ref.Hierarchy {
		t.Fatal("hierarchy checksum unchanged after deleting an edge")
	}
}
