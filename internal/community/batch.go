package community

import (
	"context"

	"equitruss/internal/concur"
	"equitruss/internal/obs"
)

// BatchCommunities answers one query per (vertex, k) pair in parallel —
// the online-service shape the index targets: many concurrent personalized
// community lookups against one immutable index. Results align with the
// input slice; queries are independent and read-only, so they parallelize
// perfectly.
func (idx *Index) BatchCommunities(queries []Query, threads int) [][]*Community {
	out, err := idx.BatchCommunitiesCtx(concur.WithoutFaults(context.Background()), queries, threads)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection, so the ctx form cannot fail.
		panic("community: " + err.Error())
	}
	return out
}

// BatchCommunitiesCtx is BatchCommunities with cancellation: workers check
// ctx before claiming each query chunk, so a canceled (or deadline-expired)
// batch returns ctx.Err() promptly instead of finishing the whole slice —
// the hook the serving layer uses for per-request deadlines.
func (idx *Index) BatchCommunitiesCtx(ctx context.Context, queries []Query, threads int) ([][]*Community, error) {
	out := make([][]*Community, len(queries))
	if err := concur.ForDynamicCtx(ctx, len(queries), threads, 8, func(i int) {
		out[i] = idx.Communities(queries[i].Vertex, queries[i].K)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// BatchCommunityRefsCtx answers one query per (vertex, k) pair in parallel
// with compact Refs instead of materialized communities — the serving-layer
// form: counts come free with the ref, edge lists are materialized per
// response only when a client asks. The hierarchy is built up front (not
// inside the workers) so a canceled batch never half-builds it.
func (idx *Index) BatchCommunityRefsCtx(ctx context.Context, queries []Query, threads int) ([][]Ref, error) {
	idx.Hierarchy()
	out := make([][]Ref, len(queries))
	// One stage spanning the whole fan-out: stage recording is
	// single-goroutine by contract, so the workers do not open sub-stages.
	st := obs.StartStageFromContext(ctx, "hierarchy query")
	err := concur.ForDynamicCtx(ctx, len(queries), threads, 8, func(i int) {
		out[i] = idx.CommunityRefs(queries[i].Vertex, queries[i].K)
	})
	st.End()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Query is one community lookup.
type Query struct {
	Vertex int32
	K      int32
}
