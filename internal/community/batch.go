package community

import (
	"equitruss/internal/concur"
)

// BatchCommunities answers one query per (vertex, k) pair in parallel —
// the online-service shape the index targets: many concurrent personalized
// community lookups against one immutable index. Results align with the
// input slice; queries are independent and read-only, so they parallelize
// perfectly.
func (idx *Index) BatchCommunities(queries []Query, threads int) [][]*Community {
	out := make([][]*Community, len(queries))
	concur.ForDynamic(len(queries), threads, 8, func(i int) {
		out[i] = idx.Communities(queries[i].Vertex, queries[i].K)
	})
	return out
}

// Query is one community lookup.
type Query struct {
	Vertex int32
	K      int32
}
