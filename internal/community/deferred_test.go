package community_test

import (
	"testing"

	"equitruss/internal/community"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
)

// TestDeferredIndexMatchesEager is the differential for the zero-copy load
// path: an index built with NewIndexDeferred (no vertex→supernode CSR) must
// answer every query identically to the eager NewIndex — seed sets,
// community BFS at every level, membership profiles, hierarchy-backed
// queries, and the serving checksums.
func TestDeferredIndexMatchesEager(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"figure3": gen.PaperFigure3(),
		"planted": gen.PlantedPartition(8, 9, 0.65, 1.5, 17),
		"rmat":    gen.RMAT(9, 7, 0.57, 0.19, 0.19, 5),
	}
	for name, g := range graphs {
		_, eager := pipeline(t, g)
		deferred := community.NewIndexDeferred(g, eager.SG)
		if es, ds := eager.Checksums(), deferred.Checksums(); es != ds {
			t.Fatalf("%s: checksums diverge: eager %+v, deferred %+v", name, es, ds)
		}
		for v := int32(0); v < g.NumVertices(); v++ {
			want := map[int32]bool{}
			for _, sn := range eager.SupernodesOf(v) {
				want[sn] = true
			}
			got := deferred.SupernodesOf(v)
			if len(got) != len(want) {
				t.Fatalf("%s: vertex %d: deferred found %d supernodes, eager %d",
					name, v, len(got), len(want))
			}
			for _, sn := range got {
				if !want[sn] {
					t.Fatalf("%s: vertex %d: spurious supernode %d", name, v, sn)
				}
			}
			if em, dm := eager.MaxK(v), deferred.MaxK(v); em != dm {
				t.Fatalf("%s: vertex %d: MaxK %d vs %d", name, v, em, dm)
			}
			maxK := eager.MaxK(v)
			for k := int32(3); k <= maxK; k++ {
				e := canonCommunities(eager.CommunitiesBFS(v, k))
				d := canonCommunities(deferred.CommunitiesBFS(v, k))
				if e != d {
					t.Fatalf("%s: vertex %d k=%d: deferred BFS diverges", name, v, k)
				}
				d2 := canonCommunities(deferred.Communities(v, k))
				if e != d2 {
					t.Fatalf("%s: vertex %d k=%d: deferred hierarchy path diverges", name, v, k)
				}
			}
		}
	}
}

// TestDeferredHubDedup drives the set-fallback dedupe path: a star center
// whose incident edges span many supernodes. The star alone has no
// triangles, so attach many disjoint triangles through the hub.
func TestDeferredHubDedup(t *testing.T) {
	var edges []graph.Edge
	const spokes = 120 // > the linear-scan dedupe threshold
	for i := int32(0); i < spokes; i++ {
		a, b := 1+2*i, 2+2*i
		edges = append(edges,
			graph.Edge{U: 0, V: a}, graph.Edge{U: 0, V: b}, graph.Edge{U: a, V: b})
	}
	g, err := graph.FromEdgeList(edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, eager := pipeline(t, g)
	deferred := community.NewIndexDeferred(g, eager.SG)
	if got, want := len(deferred.SupernodesOf(0)), len(eager.SupernodesOf(0)); got != want {
		t.Fatalf("hub supernode count %d, want %d", got, want)
	}
	seen := map[int32]bool{}
	for _, sn := range deferred.SupernodesOf(0) {
		if seen[sn] {
			t.Fatalf("duplicate supernode %d from set-fallback dedupe", sn)
		}
		seen[sn] = true
	}
}
