package community

import (
	"errors"
	"math/rand"
	"testing"

	"equitruss/internal/core"
	"equitruss/internal/dynamic"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// rebuildFromScratch is the oracle: materialize the dynamic graph, re-peel,
// re-summarize, and wrap in a fresh index.
func rebuildFromScratch(t *testing.T, dg *dynamic.Graph) *Index {
	t.Helper()
	g, tau, err := dg.ToStatic()
	if err != nil {
		t.Fatal(err)
	}
	sg, _ := core.Build(g, tau, core.VariantSerial, 1)
	return NewIndex(g, sg)
}

func indexFromGraph(t *testing.T, g *graph.Graph) (*Index, []int32) {
	t.Helper()
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantSerial, 1)
	return NewIndex(g, sg), tau
}

// runChurnDifferential drives random insert/delete batches against a tracked
// dynamic graph and, after every batch, checks that the incrementally
// repaired index is bit-identical (all three checksum layers) to a
// from-scratch rebuild of the same state.
func runChurnDifferential(t *testing.T, g0 *graph.Graph, seed int64, batches, opsPerBatch int) {
	t.Helper()
	idx0, tau0 := indexFromGraph(t, g0)
	dg := dynamic.FromStatic(g0, tau0)
	dg.TrackDeltas(true)
	mt := NewMaintainer(idx0)

	// Known edges (for deletions that actually hit), as packed keys.
	edges := make([]uint64, 0, g0.NumEdges())
	for _, e := range g0.Edges() {
		edges = append(edges, uint64(uint32(e.U))<<32|uint64(uint32(e.V)))
	}
	maxV := g0.NumVertices() + 4 // let churn grow the vertex space a little

	rng := rand.New(rand.NewSource(seed))
	for batch := 0; batch < batches; batch++ {
		for op := 0; op < opsPerBatch; op++ {
			if len(edges) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(edges))
				u, v := int32(edges[i]>>32), int32(uint32(edges[i]))
				if dg.DeleteEdge(u, v) {
					edges[i] = edges[len(edges)-1]
					edges = edges[:len(edges)-1]
				}
				continue
			}
			u, v := int32(rng.Intn(int(maxV))), int32(rng.Intn(int(maxV)))
			if u == v || dg.HasEdge(u, v) {
				continue
			}
			if _, err := dg.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
			if u > v {
				u, v = v, u
			}
			edges = append(edges, uint64(uint32(u))<<32|uint64(uint32(v)))
		}
		d := EdgeDelta(dg.Delta())
		got, st, err := mt.Apply(d, 0)
		if err != nil {
			t.Fatalf("batch %d: incremental apply: %v", batch, err)
		}
		dg.ResetDelta()
		if err := got.SG.Validate(got.G); err != nil {
			t.Fatalf("batch %d: repaired summary graph invalid: %v", batch, err)
		}
		ref := rebuildFromScratch(t, dg)
		if g, r := got.Checksums(), ref.Checksums(); g != r {
			t.Fatalf("batch %d: incremental checksums %+v != from-scratch %+v (stats %+v)",
				batch, g, r, st)
		}
	}
}

func TestIncrementalChurnFixtures(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		seed int64
	}{
		{"paper-figure3", gen.PaperFigure3(), 1},
		{"bridged-cliques", gen.BridgedCliques(6), 2},
		{"clique-pair", gen.SharedEdgeCliquePair(6, 5), 3},
		{"triangle-strip", gen.TriangleStrip(24), 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runChurnDifferential(t, tc.g, tc.seed, 12, 6)
		})
	}
}

func TestIncrementalChurnSurrogates(t *testing.T) {
	// Tiny slices of the paper's Table 3 surrogates: one planted-partition
	// and one R-MAT, plus a direct R-MAT instance at a different skew.
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		seed int64
	}{
		{"amazon-sim", gen.Datasets[0].Generate(0.01), 10},
		{"youtube-sim", gen.Datasets[2].Generate(0.02), 11},
		{"rmat", gen.RMAT(8, 8, 0.57, 0.19, 0.19, 42), 12},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() {
				t.Skip("churn differential on surrogates skipped in -short")
			}
			runChurnDifferential(t, tc.g, tc.seed, 10, 8)
		})
	}
}

// TestIncrementalFromEmpty grows a graph from nothing through the
// incremental path — exercising the empty-hierarchy and first-supernode
// transitions — then shrinks it back down.
func TestIncrementalFromEmpty(t *testing.T) {
	empty, err := graph.FromEdgeList(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	runChurnDifferential(t, empty, 7, 16, 5)
}

// TestIncrementalRegionBudget: a delta whose repair region exceeds the
// budget must return ErrDeltaTooLarge and leave the maintainer untouched.
func TestIncrementalRegionBudget(t *testing.T) {
	g := gen.Clique(8)
	idx, tau := indexFromGraph(t, g)
	dg := dynamic.FromStatic(g, tau)
	dg.TrackDeltas(true)
	mt := NewMaintainer(idx)

	if !dg.DeleteEdge(0, 1) {
		t.Fatal("delete failed")
	}
	d := EdgeDelta(dg.Delta())
	if _, _, err := mt.Apply(d, 1e-9); !errors.Is(err, ErrDeltaTooLarge) {
		t.Fatalf("want ErrDeltaTooLarge, got %v", err)
	}
	if mt.Index() != idx {
		t.Fatal("maintainer advanced despite the budget error")
	}
	// The same delta applies fine without a budget, and the maintainer
	// advances.
	got, _, err := mt.Apply(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Index() != got {
		t.Fatal("maintainer did not advance after a successful apply")
	}
	ref := rebuildFromScratch(t, dg)
	if g, r := got.Checksums(), ref.Checksums(); g != r {
		t.Fatalf("incremental checksums %+v != from-scratch %+v", g, r)
	}
}

// TestIncrementalEmptyDelta: applying a no-op delta returns the same index.
func TestIncrementalEmptyDelta(t *testing.T) {
	g := gen.TwoTriangles()
	idx, tau := indexFromGraph(t, g)
	dg := dynamic.FromStatic(g, tau)
	dg.TrackDeltas(true)
	mt := NewMaintainer(idx)
	got, _, err := mt.Apply(EdgeDelta(dg.Delta()), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got != idx {
		t.Fatal("empty delta produced a new index")
	}
}
