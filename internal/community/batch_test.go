package community_test

import (
	"testing"

	"equitruss/internal/community"
	"equitruss/internal/gen"
)

func TestBatchCommunitiesMatchesSequential(t *testing.T) {
	g := gen.PlantedPartition(8, 9, 0.7, 1.5, 51)
	_, idx := pipeline(t, g)
	var queries []community.Query
	for v := int32(0); v < g.NumVertices(); v += 3 {
		for _, k := range []int32{3, 4, 5} {
			queries = append(queries, community.Query{Vertex: v, K: k})
		}
	}
	for _, threads := range []int{1, 2, 4} {
		results := idx.BatchCommunities(queries, threads)
		if len(results) != len(queries) {
			t.Fatalf("threads=%d: %d results for %d queries", threads, len(results), len(queries))
		}
		for i, q := range queries {
			want := canonCommunities(idx.Communities(q.Vertex, q.K))
			got := canonCommunities(results[i])
			if got != want {
				t.Fatalf("threads=%d query %d (v=%d k=%d): batch differs", threads, i, q.Vertex, q.K)
			}
		}
	}
}

func TestBatchCommunitiesEmpty(t *testing.T) {
	g := gen.Clique(4)
	_, idx := pipeline(t, g)
	if out := idx.BatchCommunities(nil, 2); len(out) != 0 {
		t.Fatalf("empty batch returned %d", len(out))
	}
}
