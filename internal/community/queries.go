package community

import (
	"context"
	"sort"

	"equitruss/internal/concur"
	"equitruss/internal/core"
	"equitruss/internal/obs"
)

// Hierarchy returns the index's k-level community hierarchy, building it on
// first use. The published handle is read lock-free, so steady-state
// queries pay one atomic load; only the one-time build takes the mutex, and
// concurrent first queries construct it exactly once.
func (idx *Index) Hierarchy() *Hierarchy {
	if h := idx.hier.Load(); h != nil {
		return h
	}
	idx.hierMu.Lock()
	defer idx.hierMu.Unlock()
	if h := idx.hier.Load(); h != nil {
		return h
	}
	h, err := buildHierarchy(concur.WithoutFaults(context.Background()), idx, 0, nil)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection, so the build cannot fail.
		panic("community: " + err.Error())
	}
	idx.hier.Store(h)
	return h
}

// PrepareHierarchy builds the hierarchy eagerly with the given parallelism,
// cancellation, and tracing — the knob NewIndex's PrecomputeHierarchy option
// and the server's startup path use. Idempotent: an already-built hierarchy
// is returned as-is.
func (idx *Index) PrepareHierarchy(ctx context.Context, threads int, tr *obs.Trace) (*Hierarchy, error) {
	if h := idx.hier.Load(); h != nil {
		return h, nil
	}
	idx.hierMu.Lock()
	defer idx.hierMu.Unlock()
	if h := idx.hier.Load(); h != nil {
		return h, nil
	}
	h, err := buildHierarchy(ctx, idx, threads, tr)
	if err != nil {
		return nil, err
	}
	idx.hier.Store(h)
	return h, nil
}

// Ref is a compact reference to one k-truss community: its forest node plus
// the queried level. Sizes (edge and vertex counts) read precomputed
// per-node totals without touching the member edges; the edge list is
// materialized only when Community or Edges is called. Refs are small
// immutable values, which is what makes them cheap to cache.
type Ref struct {
	K    int32 // normalized query level
	node int32
	h    *Hierarchy
	idx  *Index
}

// NumEdges returns the community's member-edge count in O(1).
func (r Ref) NumEdges() int64 { return r.h.edges[r.node] }

// NumVertices returns the community's distinct-vertex count in O(1).
func (r Ref) NumVertices() int64 { return r.h.verts[r.node] }

// MinEdge returns the community's smallest member edge ID — the canonical
// ordering key used by CanonicalizeCommunities.
func (r Ref) MinEdge() int32 { return r.h.nodeMin[r.node] }

// Edges materializes the member edge IDs, ascending. Cost is proportional
// to the answer.
func (r Ref) Edges() []int32 {
	out := r.h.appendCommunityEdges(r.idx.SG, r.node, make([]int32, 0, r.h.edges[r.node]))
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Community materializes the referenced community in the classic form.
func (r Ref) Community() *Community {
	return &Community{K: r.K, Edges: r.Edges(), g: r.idx.G}
}

// CommunityRefs returns compact references to every k-truss community
// containing vertex v, answered from the hierarchy in O(answer) time and
// allocations: each incident supernode's community node is found by an
// allocation-free leaf-to-root walk, and the handful of resulting nodes are
// deduplicated by linear scan — no visited structure over the supernodes.
func (idx *Index) CommunityRefs(v int32, k int32) []Ref {
	if k < core.MinK {
		k = core.MinK
	}
	h := idx.Hierarchy()
	cHierQueryHits.Add(1)
	var refs []Ref
	for _, sn := range idx.SupernodesOf(v) {
		if idx.SG.K[sn] < k {
			continue
		}
		node := h.nodeAt(sn, k)
		dup := false
		for _, r := range refs {
			if r.node == node {
				dup = true
				break
			}
		}
		if !dup {
			refs = append(refs, Ref{K: k, node: node, h: h, idx: idx})
		}
	}
	sort.Slice(refs, func(i, j int) bool { return h.nodeMin[refs[i].node] < h.nodeMin[refs[j].node] })
	return refs
}

// CommunityRefsCtx is CommunityRefs with request-scoped observability: when
// ctx carries a sampled request (obs.Req), the hierarchy walk is recorded
// as a "hierarchy query" stage in that request's trace. The query itself is
// unchanged — ctx carries no cancellation here because the walk is O(answer).
func (idx *Index) CommunityRefsCtx(ctx context.Context, v int32, k int32) []Ref {
	st := obs.StartStageFromContext(ctx, "hierarchy query")
	refs := idx.CommunityRefs(v, k)
	st.End()
	return refs
}

// Communities returns every k-truss community containing vertex v, answered
// from the precomputed hierarchy and materialized eagerly (Edges filled,
// ascending) for API compatibility. Callers that only need membership or
// sizes should use CommunityRefs, which skips the materialization.
func (idx *Index) Communities(v int32, k int32) []*Community {
	refs := idx.CommunityRefs(v, k)
	if len(refs) == 0 {
		return nil
	}
	out := make([]*Community, len(refs))
	for i, r := range refs {
		out[i] = r.Community()
	}
	return out
}

// AllCommunityRefs returns compact references to every k-truss community in
// the graph, straight from the hierarchy's per-level index — O(answer),
// already in canonical (smallest-member-edge) order.
func (idx *Index) AllCommunityRefs(k int32) []Ref {
	if k < core.MinK {
		k = core.MinK
	}
	h := idx.Hierarchy()
	cHierQueryHits.Add(1)
	if k > h.kmax {
		return nil
	}
	lvl := int(k) - core.MinK
	nodes := h.levelNodes[h.levelOff[lvl]:h.levelOff[lvl+1]]
	refs := make([]Ref, len(nodes))
	for i, node := range nodes {
		refs[i] = Ref{K: k, node: node, h: h, idx: idx}
	}
	return refs
}

// AllCommunities enumerates every k-truss community at level k from the
// hierarchy, materialized eagerly in canonical order.
func (idx *Index) AllCommunities(k int32) []*Community {
	refs := idx.AllCommunityRefs(k)
	out := make([]*Community, 0, len(refs))
	for _, r := range refs {
		out = append(out, r.Community())
	}
	return out
}

// Membership returns, for each k from 3 to MaxK(v), the number of distinct
// k-truss communities containing v — the "overlapping community profile" of
// the vertex, answered from the hierarchy in one pass over v's leaf-to-root
// paths instead of one summary-graph BFS per level.
//
// A forest node u on the path of an incident supernode sn is v's community
// at exactly the levels of u's span (its levels never exceed K[sn], since
// sn's leaf starts at K[sn] and levels only decrease toward the root), so
// each distinct path node contributes one community to every level it
// spans. Paths that merge stay merged, so each walk stops at the first
// already-seen node.
func (idx *Index) Membership(v int32) map[int32]int {
	h := idx.Hierarchy()
	cHierQueryHits.Add(1)
	out := make(map[int32]int)
	seen := make(map[int32]struct{})
	for _, sn := range idx.SupernodesOf(v) {
		for node := h.snLeaf[sn]; node >= 0; node = h.parent[node] {
			if _, ok := seen[node]; ok {
				break
			}
			seen[node] = struct{}{}
			lo, hi := h.spanOf(node)
			for k := lo; k <= hi; k++ {
				out[k]++
			}
		}
	}
	return out
}

// CommunityCount returns, for each k from 3 to kmax, the number of k-truss
// communities — read directly off the hierarchy's level index in O(kmax).
func (idx *Index) CommunityCount() map[int32]int {
	h := idx.Hierarchy()
	cHierQueryHits.Add(1)
	out := make(map[int32]int)
	for k := int32(core.MinK); k <= h.kmax; k++ {
		lvl := int(k) - core.MinK
		if n := h.levelOff[lvl+1] - h.levelOff[lvl]; n > 0 {
			out[k] = int(n)
		}
	}
	return out
}

// CommonCommunities returns the k-truss communities containing EVERY vertex
// of the query set, intersecting the vertices' community-node sets from the
// hierarchy — no vertex-set materialization or binary searches.
func (idx *Index) CommonCommunities(vertices []int32, k int32) []*Community {
	if len(vertices) == 0 {
		return nil
	}
	refs := idx.CommunityRefs(vertices[0], k)
	for _, v := range vertices[1:] {
		if len(refs) == 0 {
			return nil
		}
		other := idx.CommunityRefs(v, k)
		kept := refs[:0]
		for _, r := range refs {
			for _, o := range other {
				if o.node == r.node {
					kept = append(kept, r)
					break
				}
			}
		}
		refs = kept
	}
	if len(refs) == 0 {
		return nil
	}
	out := make([]*Community, len(refs))
	for i, r := range refs {
		out[i] = r.Community()
	}
	return out
}
