package community

import (
	"sort"

	"equitruss/internal/core"
	"equitruss/internal/ds"
)

// CommonCommunitiesBFS is the oracle form of CommonCommunities: it takes
// the communities of the first vertex via the BFS path, then filters by
// vertex-set membership of the rest.
func (idx *Index) CommonCommunitiesBFS(vertices []int32, k int32) []*Community {
	if len(vertices) == 0 {
		return nil
	}
	if k < core.MinK {
		k = core.MinK
	}
	// Vertex membership test: the community contains an edge incident to v,
	// i.e. v appears in the community's vertex set.
	candidates := idx.CommunitiesBFS(vertices[0], k)
	if len(candidates) == 0 {
		return nil
	}
	var out []*Community
	for _, c := range candidates {
		verts := c.Vertices()
		all := true
		for _, v := range vertices[1:] {
			i := sort.Search(len(verts), func(i int) bool { return verts[i] >= v })
			if i >= len(verts) || verts[i] != v {
				all = false
				break
			}
		}
		if all {
			out = append(out, c)
		}
	}
	return out
}

// CommunitySupernodes returns, for diagnostics and visualization, the
// supernode IDs whose union forms each community of vertex v at level k —
// the supergraph-level view of the answer.
func (idx *Index) CommunitySupernodes(v int32, k int32) [][]int32 {
	if k < core.MinK {
		k = core.MinK
	}
	sg := idx.SG
	visited := ds.NewBitset(int(sg.NumSupernodes()))
	var result [][]int32
	for _, seed := range idx.SupernodesOf(v) {
		if sg.K[seed] < k || visited.Get(int(seed)) {
			continue
		}
		var sns []int32
		stack := []int32{seed}
		visited.Set(int(seed))
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			sns = append(sns, s)
			for _, nb := range sg.SupernodeNeighbors(s) {
				if sg.K[nb] >= k && !visited.Get(int(nb)) {
					visited.Set(int(nb))
					stack = append(stack, nb)
				}
			}
		}
		sort.Slice(sns, func(i, j int) bool { return sns[i] < sns[j] })
		result = append(result, sns)
	}
	return result
}
