package community_test

import (
	"fmt"
	"sync"
	"testing"

	"equitruss/internal/community"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/truss"
)

// assertHierarchyMatchesBFS compares every hierarchy-backed read API
// against its BFS oracle form on one index, across all levels and a vertex
// sample, plus the DirectCommunities ground truth for the sampled vertices.
func assertHierarchyMatchesBFS(t *testing.T, name string, g *graph.Graph, tau []int32, idx *community.Index, sampleVerts int) {
	t.Helper()
	kmax := truss.KMax(tau)
	// Global views: AllCommunities and CommunityCount at every level (one
	// past kmax checks the empty case).
	for k := int32(3); k <= kmax+1; k++ {
		got := canonCommunities(idx.AllCommunities(k))
		want := canonCommunities(idx.AllCommunitiesBFS(k))
		if got != want {
			t.Fatalf("%s: AllCommunities(%d) diverges from BFS oracle:\n%s\nvs\n%s", name, k, got, want)
		}
	}
	gotCount := idx.CommunityCount()
	wantCount := idx.CommunityCountBFS()
	if fmt.Sprint(gotCount) != fmt.Sprint(wantCount) {
		t.Fatalf("%s: CommunityCount %v, oracle %v", name, gotCount, wantCount)
	}
	// Per-vertex views on an evenly spread vertex sample. DirectCommunities
	// rescans the whole graph per call, so only the first few sampled
	// vertices get that third oracle; the rest are checked hierarchy-vs-BFS.
	n := g.NumVertices()
	step := n / int32(sampleVerts)
	if step < 1 {
		step = 1
	}
	directBudget := 3
	for v := int32(0); v < n; v += step {
		checkDirect := directBudget > 0
		if checkDirect {
			directBudget--
		}
		for k := int32(3); k <= kmax+1; k++ {
			got := idx.Communities(v, k)
			if canon, want := canonCommunities(got), canonCommunities(idx.CommunitiesBFS(v, k)); canon != want {
				t.Fatalf("%s: Communities(%d, %d) diverges from BFS oracle", name, v, k)
			}
			if checkDirect {
				if direct := canonCommunities(community.DirectCommunities(g, tau, v, k)); direct != canonCommunities(got) {
					t.Fatalf("%s: Communities(%d, %d) diverges from DirectCommunities", name, v, k)
				}
			}
			// Ref counts must agree with the materialized community.
			for i, ref := range idx.CommunityRefs(v, k) {
				c := got[i]
				if int(ref.NumEdges()) != len(c.Edges) {
					t.Fatalf("%s: ref(%d,%d)[%d] edge count %d, want %d", name, v, k, i, ref.NumEdges(), len(c.Edges))
				}
				if int(ref.NumVertices()) != len(c.Vertices()) {
					t.Fatalf("%s: ref(%d,%d)[%d] vertex count %d, want %d", name, v, k, i, ref.NumVertices(), len(c.Vertices()))
				}
			}
		}
		if got, want := fmt.Sprint(idx.Membership(v)), fmt.Sprint(idx.MembershipBFS(v)); got != want {
			t.Fatalf("%s: Membership(%d) = %s, oracle %s", name, v, got, want)
		}
	}
	// Multi-vertex intersection against the oracle form for adjacent pairs.
	for v := int32(0); v+step < n; v += 3 * step {
		pair := []int32{v, v + step}
		for k := int32(3); k <= kmax; k++ {
			got := canonCommunities(idx.CommonCommunities(pair, k))
			want := canonCommunities(idx.CommonCommunitiesBFS(pair, k))
			if got != want {
				t.Fatalf("%s: CommonCommunities(%v, %d) diverges from BFS oracle", name, pair, k)
			}
		}
	}
}

// TestHierarchyMatchesOraclesOnSurrogates is the acceptance differential:
// every gen.Datasets surrogate (small instances) plus an RMAT stress graph,
// hierarchy vs BFS indexed path vs DirectCommunities.
func TestHierarchyMatchesOraclesOnSurrogates(t *testing.T) {
	for _, spec := range gen.Datasets {
		g := spec.Generate(0.005)
		if testing.Short() && g.NumEdges() > 20000 {
			continue
		}
		tau, idx := pipeline(t, g)
		assertHierarchyMatchesBFS(t, spec.Name, g, tau, idx, 12)
	}
	g := gen.RMAT(10, 8, 0.57, 0.19, 0.19, 7)
	tau, idx := pipeline(t, g)
	assertHierarchyMatchesBFS(t, "rmat10", g, tau, idx, 16)
}

// TestHierarchyStats sanity-checks the stats on a graph with a known
// two-level structure: Figure 3 has communities at k=3..5.
func TestHierarchyStats(t *testing.T) {
	g := gen.PaperFigure3()
	_, idx := pipeline(t, g)
	st := idx.Hierarchy().Stats()
	if st.Nodes <= 0 || st.Roots <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if st.KMax != 5 {
		t.Fatalf("kmax %d, want 5", st.KMax)
	}
	if st.MaxDepth < 1 || st.MaxDepth > st.Nodes {
		t.Fatalf("implausible depth %d with %d nodes", st.MaxDepth, st.Nodes)
	}
	counts := idx.CommunityCount()
	var levelEntries int64
	for _, n := range counts {
		levelEntries += int64(n)
	}
	if st.LevelEntries != levelEntries {
		t.Fatalf("level entries %d, want sum of per-level counts %d", st.LevelEntries, levelEntries)
	}
}

// TestHierarchyEmptyGraph: a triangle-free graph has no supernodes and no
// communities; every query path must answer empty without panicking.
func TestHierarchyEmptyGraph(t *testing.T) {
	g, err := graph.FromEdgeList([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, idx := pipeline(t, g)
	if h := idx.Hierarchy(); h.NumNodes() != 0 {
		t.Fatalf("%d hierarchy nodes on a triangle-free graph", h.NumNodes())
	}
	if cs := idx.Communities(1, 3); len(cs) != 0 {
		t.Fatalf("communities on a triangle-free graph: %d", len(cs))
	}
	if all := idx.AllCommunities(3); len(all) != 0 {
		t.Fatalf("AllCommunities non-empty: %d", len(all))
	}
	if m := idx.Membership(1); len(m) != 0 {
		t.Fatalf("Membership non-empty: %v", m)
	}
	if c := idx.CommunityCount(); len(c) != 0 {
		t.Fatalf("CommunityCount non-empty: %v", c)
	}
}

// TestHierarchyConcurrentFirstQueries hammers the lazy build and the read
// APIs from many goroutines at once — under -race this proves the
// hierarchy is built exactly once and read safely with no locking on the
// query path.
func TestHierarchyConcurrentFirstQueries(t *testing.T) {
	g := gen.RMAT(9, 8, 0.57, 0.19, 0.19, 21)
	tau, idx := pipeline(t, g)
	kmax := truss.KMax(tau)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := g.NumVertices()
			for v := int32(w); v < n; v += 64 {
				for k := int32(3); k <= kmax; k++ {
					if canonCommunities(idx.Communities(v, k)) != canonCommunities(idx.CommunitiesBFS(v, k)) {
						t.Errorf("worker %d: Communities(%d, %d) diverges", w, v, k)
						return
					}
				}
				idx.Membership(v)
			}
		}(w)
	}
	wg.Wait()
}

// TestCommunityRefsAllocsProportionalToAnswer pins the membership-answer
// path (CommunityRefs, no edge materialization) to O(answer) allocations:
// the refs slice plus sort bookkeeping, never an O(#supernodes) visited
// bitset like the BFS path allocates.
func TestCommunityRefsAllocsProportionalToAnswer(t *testing.T) {
	g := gen.RMAT(10, 8, 0.57, 0.19, 0.19, 7)
	tau, idx := pipeline(t, g)
	idx.Hierarchy() // pay the one-time build outside the measurement
	kmax := truss.KMax(tau)
	measured := 0
	for v := int32(0); v < g.NumVertices() && measured < 10; v++ {
		for k := int32(3); k <= kmax; k++ {
			refs := idx.CommunityRefs(v, k)
			if len(refs) == 0 {
				continue
			}
			measured++
			answer := len(refs)
			allocs := testing.AllocsPerRun(100, func() {
				idx.CommunityRefs(v, k)
			})
			// Budget: the refs slice may grow log(answer) times, and
			// sort.Slice costs a couple of fixed allocations. Anything
			// scaling with the 10^3..10^4 supernodes of this graph blows
			// straight through it.
			budget := float64(6 + 2*answer)
			if allocs > budget {
				t.Fatalf("CommunityRefs(%d, %d): %.0f allocs for an answer of %d communities (budget %.0f) — query path is not O(answer)",
					v, k, allocs, answer, budget)
			}
		}
	}
	if measured == 0 {
		t.Fatal("no non-empty answers measured")
	}
}
