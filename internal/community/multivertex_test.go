package community_test

import (
	"testing"

	"equitruss/internal/gen"
)

func TestCommonCommunitiesFigure3(t *testing.T) {
	g := gen.PaperFigure3()
	_, idx := pipeline(t, g)

	// 6 and 9 are both in the 5-clique: one common k=5 community.
	cs := idx.CommonCommunities([]int32{6, 9}, 5)
	if len(cs) != 1 {
		t.Fatalf("common(6,9) k=5: %d, want 1", len(cs))
	}
	// 0 and 9 share no k=5 community.
	if cs := idx.CommonCommunities([]int32{0, 9}, 5); len(cs) != 0 {
		t.Fatalf("common(0,9) k=5: %d, want 0", len(cs))
	}
	// At k=3 the whole graph is one triangle-connected community, so any
	// pair shares it.
	if cs := idx.CommonCommunities([]int32{0, 9}, 3); len(cs) != 1 {
		t.Fatalf("common(0,9) k=3: %d, want 1", len(cs))
	}
	// Single-vertex query degenerates to Communities.
	a := canonCommunities(idx.CommonCommunities([]int32{6}, 5))
	b := canonCommunities(idx.Communities(6, 5))
	if a != b {
		t.Fatal("single-vertex common != Communities")
	}
	// Empty query.
	if cs := idx.CommonCommunities(nil, 4); cs != nil {
		t.Fatal("empty query returned communities")
	}
}

func TestCommunitySupernodesFigure3(t *testing.T) {
	g := gen.PaperFigure3()
	_, idx := pipeline(t, g)

	// Vertex 0 at k=3 spans the whole supergraph (all 5 supernodes are
	// reachable at k >= 3).
	groups := idx.CommunitySupernodes(0, 3)
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	if len(groups[0]) != 5 {
		t.Fatalf("supernodes in k=3 community = %d, want 5", len(groups[0]))
	}
	// Vertex 3 at k=4: two separate groups — the 4-clique supernode ν1
	// alone, and ν3 together with the k=5 supernode ν4 it reaches through
	// their superedge (higher-k supernodes merge into k=4 communities).
	groups = idx.CommunitySupernodes(3, 4)
	if len(groups) != 2 {
		t.Fatalf("v=3 k=4 groups = %d, want 2", len(groups))
	}
	sizes := map[int]bool{len(groups[0]): true, len(groups[1]): true}
	if !sizes[1] || !sizes[2] {
		t.Fatalf("k=4 group sizes = %v, want one singleton and one pair", groups)
	}
	// Consistency: union of supernode member edges == Communities edges.
	cs := idx.Communities(3, 4)
	var fromSN int
	for _, grp := range groups {
		for _, sn := range grp {
			fromSN += len(idx.SG.SupernodeEdges(sn))
		}
	}
	var fromCs int
	for _, c := range cs {
		fromCs += len(c.Edges)
	}
	if fromSN != fromCs {
		t.Fatalf("edge totals differ: %d vs %d", fromSN, fromCs)
	}
}
