package community

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"equitruss/internal/concur"
	"equitruss/internal/core"
	"equitruss/internal/ds"
	"equitruss/internal/obs"
)

var (
	cHierBuildNodes = obs.GetCounter("hierarchy_build_nodes",
		"merge-forest nodes created by hierarchy precomputation")
	cHierBuildLevels = obs.GetCounter("hierarchy_build_levels",
		"k levels swept by hierarchy precomputation")
	cHierBuildNS = obs.GetCounter("hierarchy_build_ns",
		"cumulative wall nanoseconds spent building community hierarchies")
	cHierQueryHits = obs.GetCounter("query_hierarchy_hits",
		"community queries answered from the precomputed hierarchy")
)

// Hierarchy is the precomputed k-level community structure of a summary
// graph: a merge forest over the connected components of the supergraph
// restricted to supernodes with trussness >= k, for every k from kmax down
// to MinK.
//
// K-truss communities nest — every k-community is contained in exactly one
// (k-1)-community — so as k descends components only merge. The forest has
// one node per (component, level-range) pair: a node is created at the
// highest k where its exact member set first exists and represents that
// community at every level down to (but excluding) its parent's creation
// level. Along any leaf-to-root path levels strictly decrease, so the
// community of a supernode at level k is the deepest ancestor of its leaf
// with nodeK >= k.
//
// With per-node member-edge and distinct-vertex counts precomputed, the
// hot read APIs answer membership and size queries in time proportional to
// the answer — no per-query bitset over the supernodes and no BFS over the
// summary graph.
type Hierarchy struct {
	kmax int32 // largest supernode trussness (MinK-1 when no supernodes)

	// Per forest node, indexed by dense node ID. Children always have
	// smaller IDs than their parent (nodes are created kmax -> MinK).
	nodeK   []int32 // level at which the node's member set first exists
	parent  []int32 // enclosing community at the next lower changing level, -1 for roots
	edges   []int64 // member edges of the community
	verts   []int64 // distinct vertices spanned by the community
	nodeMin []int32 // smallest member edge ID (canonical enumeration order)

	// snLeaf maps every supernode to the node created at its own level.
	snLeaf []int32

	// Own supernodes per node (those whose trussness equals the node's
	// level and which first appear here), CSR form.
	ownOff []int64
	ownSN  []int32

	// Child nodes per node, CSR form.
	childOff  []int64
	childList []int32

	// Communities per level: node IDs of the communities that exist at
	// level k, in levelNodes[levelOff[k-MinK]:levelOff[k-MinK+1]], sorted
	// by smallest member edge. Total size equals the sum over k of the
	// number of k-communities — exactly the answer space it serves.
	levelOff   []int64
	levelNodes []int32
}

// NumNodes returns the number of merge-forest nodes.
func (h *Hierarchy) NumNodes() int32 { return int32(len(h.nodeK)) }

// KMax returns the largest level with any community (MinK-1 when none).
func (h *Hierarchy) KMax() int32 { return h.kmax }

// HierarchyStats summarizes a built hierarchy for CLIs and dashboards.
type HierarchyStats struct {
	Nodes        int32 `json:"nodes"`         // merge-forest nodes
	Roots        int32 `json:"roots"`         // communities at level MinK
	KMax         int32 `json:"kmax"`          // deepest community level
	MaxDepth     int32 `json:"max_depth"`     // longest leaf-to-root path
	LevelEntries int64 `json:"level_entries"` // total per-level community listings
}

// Stats computes summary statistics of the hierarchy.
func (h *Hierarchy) Stats() HierarchyStats {
	st := HierarchyStats{Nodes: h.NumNodes(), KMax: h.kmax, LevelEntries: int64(len(h.levelNodes))}
	depth := make([]int32, len(h.nodeK))
	// Parents have larger IDs than children, so a descending sweep sees
	// every parent before its children.
	for id := len(h.nodeK) - 1; id >= 0; id-- {
		p := h.parent[id]
		if p < 0 {
			st.Roots++
			depth[id] = 1
		} else {
			depth[id] = depth[p] + 1
		}
		if depth[id] > st.MaxDepth {
			st.MaxDepth = depth[id]
		}
	}
	return st
}

// buildHierarchy runs the one-time precomputation: a Kruskal-style sweep of
// the superedges in descending activation level over a union-find forest,
// emitting a merge-forest node whenever a component's member set changes,
// followed by parallel aggregation of per-node edge and vertex counts.
func buildHierarchy(ctx context.Context, idx *Index, threads int, tr *obs.Trace) (*Hierarchy, error) {
	start := time.Now()
	span := tr.Start("HierarchyBuild")
	defer span.End()

	sg := idx.SG
	s := int(sg.NumSupernodes())
	h := &Hierarchy{kmax: sg.MaxK()}
	if h.kmax < core.MinK {
		// No supernodes at all: an empty forest answers every query with
		// "no communities".
		h.levelOff = []int64{0}
		cHierBuildNS.Add(time.Since(start).Nanoseconds())
		return h, ctxErrOrNil(ctx)
	}
	levels := int(h.kmax) - core.MinK + 1

	// Bucket supernodes by trussness and superedges by activation level
	// min(K[a], K[b]) — the level at which both endpoints exist. Counting
	// sorts with the counting and fill passes on the ctx schedulers.
	snCnt := make([]int64, levels)
	seCnt := make([]int64, levels)
	seLevel := func(sn int32, nb int32) int {
		lvl := sg.K[nb]
		if sg.K[sn] < lvl {
			lvl = sg.K[sn]
		}
		return int(lvl) - core.MinK
	}
	if err := concur.ForRangeCtx(ctx, s, threads, func(lo, hi int) {
		for sn := int32(lo); sn < int32(hi); sn++ {
			atomic.AddInt64(&snCnt[sg.K[sn]-core.MinK], 1)
			for _, nb := range sg.SupernodeNeighbors(sn) {
				if nb > sn { // count each superedge once
					atomic.AddInt64(&seCnt[seLevel(sn, nb)], 1)
				}
			}
		}
	}); err != nil {
		return nil, err
	}
	snOff := prefixSum(snCnt)
	seOff := prefixSum(seCnt)
	snByK := make([]int32, snOff[levels])
	seA := make([]int32, seOff[levels])
	seB := make([]int32, seOff[levels])
	snCur := make([]int64, levels)
	seCur := make([]int64, levels)
	if err := concur.ForRangeCtx(ctx, s, threads, func(lo, hi int) {
		for sn := int32(lo); sn < int32(hi); sn++ {
			lvlSN := int(sg.K[sn]) - core.MinK
			snByK[snOff[lvlSN]+atomic.AddInt64(&snCur[lvlSN], 1)-1] = sn
			for _, nb := range sg.SupernodeNeighbors(sn) {
				if nb > sn {
					lvl := seLevel(sn, nb)
					slot := seOff[lvl] + atomic.AddInt64(&seCur[lvl], 1) - 1
					seA[slot] = sn
					seB[slot] = nb
				}
			}
		}
	}); err != nil {
		return nil, err
	}

	// The merge sweep itself is sequential — levels depend on each other
	// and the total union work is near-linear in the superedge count — but
	// everything around it (the bucketing above, the count aggregation
	// below) runs parallel.
	uf := ds.NewUnionFind(s)
	nodeAtRoot := make([]int32, s) // component's current node, valid at roots
	for i := range nodeAtRoot {
		nodeAtRoot[i] = -1
	}
	h.snLeaf = make([]int32, s)
	snStamp := ds.NewStamps(s)   // touched-this-level, per supernode
	rootStamp := ds.NewStamps(s) // grouped-this-level, per union-find root
	nodeStamp := ds.NewStamps(0) // child-dedupe, per forest node (grown as nodes appear)
	rootSlot := make([]int32, s) // group index per root, guarded by rootStamp
	var touched []int32
	var prevNodes []int32 // pre-union node of touched[i]'s component, -1 = newly active
	type group struct {
		root     int32
		newSNs   int32
		children []int32
	}
	var groups []group

	for k := h.kmax; k >= core.MinK; k-- {
		lvl := int(k) - core.MinK
		touched = touched[:0]
		prevNodes = prevNodes[:0]
		groups = groups[:0]
		snStamp.NextEpoch()
		rootStamp.NextEpoch()
		nodeStamp.NextEpoch()
		mark := func(sn int32) {
			if snStamp.Visit(sn) {
				touched = append(touched, sn)
			}
		}
		for _, sn := range snByK[snOff[lvl]:snOff[lvl+1]] {
			mark(sn)
		}
		for i := seOff[lvl]; i < seOff[lvl+1]; i++ {
			mark(seA[i])
			mark(seB[i])
		}
		// Phase 0: record each touched supernode's pre-union component
		// node. Newly activated supernodes (trussness == k) are union-find
		// singletons never yet unioned, so their root is themselves and
		// nodeAtRoot is still -1 there.
		for _, t := range touched {
			prevNodes = append(prevNodes, nodeAtRoot[uf.Find(t)])
		}
		// Phase 1: apply this level's unions.
		for i := seOff[lvl]; i < seOff[lvl+1]; i++ {
			uf.Union(seA[i], seB[i])
		}
		// Phase 2: group the touched supernodes by post-union root,
		// collecting each group's distinct pre-union nodes (the children of
		// a prospective new node) and its count of newly activated members.
		// A pre-union component belongs to exactly one post-union group, so
		// a per-level node stamp dedupes children correctly.
		for i, t := range touched {
			r := uf.Find(t)
			if rootStamp.Visit(r) {
				rootSlot[r] = int32(len(groups))
				groups = append(groups, group{root: r})
			}
			g := &groups[rootSlot[r]]
			prev := prevNodes[i]
			if prev < 0 {
				g.newSNs++
			} else if nodeStamp.Visit(prev) {
				g.children = append(g.children, prev)
			}
		}
		// Phase 3: a component's member set changed at this level iff it
		// gained a newly activated supernode or merged two or more previous
		// components; only then does a new forest node exist.
		for gi := range groups {
			g := &groups[gi]
			if g.newSNs == 0 && len(g.children) < 2 {
				// Same member set as at level k+1; re-point the (possibly
				// moved) root at the existing node.
				if len(g.children) == 1 {
					nodeAtRoot[g.root] = g.children[0]
				}
				continue
			}
			id := int32(len(h.nodeK))
			h.nodeK = append(h.nodeK, k)
			h.parent = append(h.parent, -1)
			nodeStamp.Grow(len(h.nodeK))
			for _, c := range g.children {
				h.parent[c] = id
			}
			nodeAtRoot[g.root] = id
		}
		// Newly activated supernodes point at their component's node —
		// which always exists, since a group with a new member is always
		// "changed".
		for i, t := range touched {
			if prevNodes[i] < 0 {
				h.snLeaf[t] = nodeAtRoot[uf.Find(t)]
			}
		}
		if err := ctxErrOrNil(ctx); err != nil {
			return nil, err
		}
	}

	n := len(h.nodeK)
	// Own-supernode CSR from snLeaf and children CSR from parent — two
	// small counting sorts.
	h.ownOff = make([]int64, n+1)
	for _, leaf := range h.snLeaf {
		h.ownOff[leaf+1]++
	}
	for i := 0; i < n; i++ {
		h.ownOff[i+1] += h.ownOff[i]
	}
	h.ownSN = make([]int32, s)
	ownCur := make([]int64, n)
	copy(ownCur, h.ownOff[:n])
	for sn, leaf := range h.snLeaf {
		h.ownSN[ownCur[leaf]] = int32(sn)
		ownCur[leaf]++
	}
	h.childOff = make([]int64, n+1)
	for _, p := range h.parent {
		if p >= 0 {
			h.childOff[p+1]++
		}
	}
	for i := 0; i < n; i++ {
		h.childOff[i+1] += h.childOff[i]
	}
	h.childList = make([]int32, h.childOff[n])
	childCur := make([]int64, n)
	copy(childCur, h.childOff[:n])
	for c, p := range h.parent {
		if p >= 0 {
			h.childList[childCur[p]] = int32(c)
			childCur[p]++
		}
	}

	// Per-node member-edge counts and canonical minimum edge IDs: seed from
	// own supernodes in parallel, then aggregate child into parent. A child
	// always has a smaller ID than its parent, so one ascending pass sees
	// every child finalized before its parent reads it.
	h.edges = make([]int64, n)
	h.nodeMin = make([]int32, n)
	if err := concur.ForRangeCtx(ctx, n, threads, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			h.nodeMin[id] = int32(len(sg.EdgeToSN)) // sentinel above any edge ID
			for _, sn := range h.ownSN[h.ownOff[id]:h.ownOff[id+1]] {
				h.edges[id] += sg.SupernodeEdgeCount(sn)
				for _, e := range sg.SupernodeEdges(sn) {
					if e < h.nodeMin[id] {
						h.nodeMin[id] = e
					}
				}
			}
		}
	}); err != nil {
		return nil, err
	}
	for id := 0; id < n; id++ {
		if p := h.parent[id]; p >= 0 {
			h.edges[p] += h.edges[id]
			if h.nodeMin[id] < h.nodeMin[p] {
				h.nodeMin[p] = h.nodeMin[id]
			}
		}
	}

	// Per-node distinct-vertex counts: every vertex walks the leaf-to-root
	// paths of its incident supernodes, contributing one to each node seen
	// for the first time. Paths that merge stay merged, so each walk stops
	// at the first already-visited node. Parallel over vertices with one
	// visited-stamp array per worker.
	h.verts = make([]int64, n)
	nv := int(idx.G.NumVertices())
	vthr := threads
	if vthr <= 0 {
		vthr = concur.MaxThreads()
	}
	if vthr > nv {
		vthr = nv
	}
	if vthr < 1 {
		vthr = 1
	}
	if err := concur.ForThreadsCtx(ctx, vthr, func(tid int) {
		lo, hi := tid*nv/vthr, (tid+1)*nv/vthr
		seen := ds.NewStamps(n)
		for v := lo; v < hi; v++ {
			if v%4096 == 0 && concur.Canceled(ctx) {
				return
			}
			seen.NextEpoch()
			for _, sn := range idx.SupernodesOf(int32(v)) {
				for node := h.snLeaf[sn]; node >= 0 && seen.Visit(node); node = h.parent[node] {
					atomic.AddInt64(&h.verts[node], 1)
				}
			}
		}
	}); err != nil {
		return nil, err
	}

	// Level index: node id appears at every level in (parentK, nodeK],
	// clipped below at MinK; within a level, nodes are listed by smallest
	// member edge so enumeration order is canonical without per-query
	// sorting.
	h.levelOff = make([]int64, levels+1)
	for id := int32(0); id < int32(n); id++ {
		lo, hi := h.spanOf(id)
		for k := lo; k <= hi; k++ {
			h.levelOff[k-core.MinK+1]++
		}
	}
	for i := 0; i < levels; i++ {
		h.levelOff[i+1] += h.levelOff[i]
	}
	h.levelNodes = make([]int32, h.levelOff[levels])
	lvlCur := make([]int64, levels)
	copy(lvlCur, h.levelOff[:levels])
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return h.nodeMin[order[a]] < h.nodeMin[order[b]] })
	for _, id := range order {
		lo, hi := h.spanOf(id)
		for k := lo; k <= hi; k++ {
			h.levelNodes[lvlCur[k-core.MinK]] = id
			lvlCur[k-core.MinK]++
		}
	}

	cHierBuildNodes.Add(int64(n))
	cHierBuildLevels.Add(int64(levels))
	cHierBuildNS.Add(time.Since(start).Nanoseconds())
	return h, ctxErrOrNil(ctx)
}

// spanOf returns the inclusive level range [lo, hi] at which a node is the
// current community of its member set.
func (h *Hierarchy) spanOf(id int32) (int32, int32) {
	lo := int32(core.MinK)
	if p := h.parent[id]; p >= 0 {
		lo = h.nodeK[p] + 1
	}
	return lo, h.nodeK[id]
}

// nodeAt returns the community node of supernode sn at level k. The caller
// must ensure K[sn] >= k. Walks the leaf-to-root path, along which levels
// strictly decrease, to the deepest ancestor still at level >= k.
func (h *Hierarchy) nodeAt(sn, k int32) int32 {
	node := h.snLeaf[sn]
	for {
		p := h.parent[node]
		if p < 0 || h.nodeK[p] < k {
			return node
		}
		node = p
	}
}

// appendCommunityEdges materializes the member edge IDs of a community node
// into out by walking its subtree — own supernodes contribute their member
// lists, children recurse. Cost is proportional to the edges emitted.
func (h *Hierarchy) appendCommunityEdges(sg *core.SummaryGraph, node int32, out []int32) []int32 {
	stack := make([]int32, 1, 8)
	stack[0] = node
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, sn := range h.ownSN[h.ownOff[id]:h.ownOff[id+1]] {
			out = append(out, sg.SupernodeEdges(sn)...)
		}
		stack = append(stack, h.childList[h.childOff[id]:h.childOff[id+1]]...)
	}
	return out
}

// prefixSum returns the exclusive prefix sums of counts with a trailing
// total, i.e. a CSR offset array.
func prefixSum(counts []int64) []int64 {
	off := make([]int64, len(counts)+1)
	for i, c := range counts {
		off[i+1] = off[i] + c
	}
	return off
}

// ctxErrOrNil tolerates the nil context used by the lazy build path.
func ctxErrOrNil(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
