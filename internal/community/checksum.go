package community

import (
	"sort"

	"equitruss/internal/core"
)

// Checksums fingerprints the three layers of a query-ready index. The
// values are canonical: they depend only on the graph's edge set, the
// trussness function, the supernode partition, and the superedge relation
// — never on the dense IDs a particular construction variant or thread
// count happened to assign. Two indexes over the same logical state (one
// recovered from a snapshot + WAL replay, one built from scratch over the
// same edge stream) therefore produce identical checksums, which is the
// bit-identity test behind the crash-recovery differential.
type Checksums struct {
	// Tau covers the per-edge trussness in canonical edge order.
	Tau uint64 `json:"tau"`
	// Summary covers the supernode partition (each supernode named by its
	// smallest member edge), per-supernode trussness, and the superedge
	// relation over those canonical names.
	Summary uint64 `json:"summary"`
	// Hierarchy covers the merge forest: every node's level, canonical
	// name (smallest member edge), member-edge and vertex counts, and its
	// parent's canonical identity.
	Hierarchy uint64 `json:"hierarchy"`
}

// FNV-1a 64-bit folding.
const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

func fold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xFF
		h *= fnvPrime
	}
	return h
}

func fold32(h uint64, v int32) uint64 { return fold(h, uint64(uint32(v))) }

// Checksums computes the canonical fingerprints. The hierarchy is built
// (once, lazily) if it does not exist yet.
func (idx *Index) Checksums() Checksums {
	sg := idx.SG
	var cs Checksums

	// τ layer: edge IDs are canonical (graphs are built sorted by (U, V)),
	// so a straight fold is already order-independent of construction.
	h := fold(fnvOffset, uint64(len(sg.Tau)))
	for _, t := range sg.Tau {
		h = fold32(h, t)
	}
	cs.Tau = h

	// Summary layer: name each supernode by its smallest member edge.
	s := sg.NumSupernodes()
	minRep := make([]int32, s)
	for sn := int32(0); sn < s; sn++ {
		rep := int32(-1)
		for _, e := range sg.SupernodeEdges(sn) {
			if rep < 0 || e < rep {
				rep = e
			}
		}
		minRep[sn] = rep
	}
	h = fold(fnvOffset, uint64(s))
	// Per-edge membership under canonical names, in canonical edge order.
	for _, sn := range sg.EdgeToSN {
		if sn == core.NoSupernode {
			h = fold32(h, -1)
		} else {
			h = fold32(h, minRep[sn])
		}
	}
	// Per-supernode trussness, sorted by canonical name.
	order := make([]int32, s)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return minRep[order[a]] < minRep[order[b]] })
	for _, sn := range order {
		h = fold32(h, minRep[sn])
		h = fold32(h, sg.K[sn])
	}
	// Superedge relation over canonical names, sorted.
	type pair struct{ a, b int32 }
	var pairs []pair
	for sn := int32(0); sn < s; sn++ {
		for _, nb := range sg.SupernodeNeighbors(sn) {
			if sn < nb {
				a, b := minRep[sn], minRep[nb]
				if a > b {
					a, b = b, a
				}
				pairs = append(pairs, pair{a, b})
			}
		}
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].a != pairs[y].a {
			return pairs[x].a < pairs[y].a
		}
		return pairs[x].b < pairs[y].b
	})
	for _, p := range pairs {
		h = fold32(h, p.a)
		h = fold32(h, p.b)
	}
	cs.Summary = h

	// Hierarchy layer: a node's canonical identity is (level, smallest
	// member edge) — unique, since at one level an edge belongs to exactly
	// one community.
	hr := idx.Hierarchy()
	n := int(hr.NumNodes())
	norder := make([]int32, n)
	for i := range norder {
		norder[i] = int32(i)
	}
	sort.Slice(norder, func(a, b int) bool {
		x, y := norder[a], norder[b]
		if hr.nodeK[x] != hr.nodeK[y] {
			return hr.nodeK[x] < hr.nodeK[y]
		}
		return hr.nodeMin[x] < hr.nodeMin[y]
	})
	h = fold(fnvOffset, uint64(n))
	for _, id := range norder {
		h = fold32(h, hr.nodeK[id])
		h = fold32(h, hr.nodeMin[id])
		h = fold(h, uint64(hr.edges[id]))
		h = fold(h, uint64(hr.verts[id]))
		if p := hr.parent[id]; p < 0 {
			h = fold32(h, -1)
			h = fold32(h, -1)
		} else {
			h = fold32(h, hr.nodeK[p])
			h = fold32(h, hr.nodeMin[p])
		}
	}
	cs.Hierarchy = h
	return cs
}
