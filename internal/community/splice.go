package community

import (
	"fmt"
	"sort"

	"equitruss/internal/core"
	"equitruss/internal/ds"
)

// spliceInput carries the translation tables an incremental Apply computed
// while repairing the summary graph into the hierarchy splice.
type spliceInput struct {
	oldToNewEdge []int32 // old edge ID -> new edge ID, -1 for deleted
	oldToNewSN   []int32 // old supernode -> new supernode, -1 for dirty
	cleanOldSN   []int32 // new supernode (< cleanCount) -> old supernode
	cleanCount   int32   // new supernode IDs below this are carried-over old ones
	rootOf       []int32 // old hierarchy node -> root of its tree
	affectedRoot []bool  // old tree roots whose trees must be rebuilt
}

// spliceHierarchy builds the new index's merge forest by copying every tree
// of the old forest that the delta provably cannot touch and re-running the
// merge sweep only over the supernodes of affected trees plus the freshly
// rebuilt supernodes.
//
// Tree granularity is the natural unit: supernodes connected by superedges
// always share a tree, and Apply marks a tree affected whenever any of its
// supernodes is dirtied or any of its supernodes gains or loses a superedge
// — so a kept tree has exactly its old member set, counts, and shape, and
// the subset sweep never needs to union across the kept/rebuilt boundary.
//
// Returns the spliced hierarchy plus the kept and rebuilt node counts.
func spliceHierarchy(oldIdx, newIdx *Index, in spliceInput) (*Hierarchy, int, int, error) {
	sg := newIdx.SG
	sNew := int(sg.NumSupernodes())
	h := &Hierarchy{kmax: sg.MaxK()}
	if h.kmax < core.MinK {
		h.levelOff = []int64{0}
		return h, 0, 0, nil
	}
	oldH := oldIdx.Hierarchy()
	oldN := int(oldH.NumNodes())

	// Copy kept nodes in old ID order — old IDs are topological (child <
	// parent) and the copy preserves relative order, so the invariant holds
	// for kept nodes; rebuilt nodes are appended afterwards in sweep order,
	// and their children are always rebuilt nodes, so it holds globally.
	nodeMap := make([]int32, oldN)
	for id := 0; id < oldN; id++ {
		if in.affectedRoot[in.rootOf[id]] {
			nodeMap[id] = -1
			continue
		}
		nodeMap[id] = int32(len(h.nodeK))
		h.nodeK = append(h.nodeK, oldH.nodeK[id])
		h.parent = append(h.parent, oldH.parent[id]) // old ID, remapped below
		h.edges = append(h.edges, oldH.edges[id])
		h.verts = append(h.verts, oldH.verts[id])
		nm := in.oldToNewEdge[oldH.nodeMin[id]]
		if nm < 0 {
			return nil, 0, 0, fmt.Errorf("community: kept hierarchy node %d lost its minimum edge", id)
		}
		h.nodeMin = append(h.nodeMin, nm)
	}
	kept := len(h.nodeK)
	for i := 0; i < kept; i++ {
		if p := h.parent[i]; p >= 0 {
			np := nodeMap[p]
			if np < 0 {
				return nil, 0, 0, fmt.Errorf("community: kept node %d has an affected parent", i)
			}
			h.parent[i] = np
		}
	}

	// Leaves for carried-over supernodes of kept trees; everything else goes
	// through the subset sweep.
	h.snLeaf = make([]int32, sNew)
	isAffected := make([]bool, sNew)
	var affSN []int32
	for nsn := int32(0); nsn < int32(sNew); nsn++ {
		if nsn >= in.cleanCount {
			isAffected[nsn] = true
			affSN = append(affSN, nsn)
			continue
		}
		oldLeaf := oldH.snLeaf[in.cleanOldSN[nsn]]
		if in.affectedRoot[in.rootOf[oldLeaf]] {
			isAffected[nsn] = true
			affSN = append(affSN, nsn)
			continue
		}
		h.snLeaf[nsn] = nodeMap[oldLeaf]
	}

	if err := h.sweepSubset(sg, affSN, isAffected); err != nil {
		return nil, 0, 0, err
	}
	n := len(h.nodeK)
	rebuilt := n - kept

	// Edge counts and canonical minimum edge IDs for the rebuilt nodes: seed
	// from own supernodes, then aggregate child into parent ascending —
	// parents of rebuilt nodes are rebuilt, so the pass stays in range.
	for _, sn := range affSN {
		leaf := h.snLeaf[sn]
		h.edges[leaf] += sg.SupernodeEdgeCount(sn)
		for _, e := range sg.SupernodeEdges(sn) {
			if e < h.nodeMin[leaf] {
				h.nodeMin[leaf] = e
			}
		}
	}
	for id := kept; id < n; id++ {
		if p := h.parent[id]; p >= 0 {
			h.edges[p] += h.edges[id]
			if h.nodeMin[id] < h.nodeMin[p] {
				h.nodeMin[p] = h.nodeMin[id]
			}
		}
	}

	// Distinct-vertex counts for the rebuilt nodes: only vertices incident
	// to an affected supernode can appear in a rebuilt tree, so the walks
	// are restricted to those — the leaf-to-root paths of affected
	// supernodes never leave the rebuilt range.
	nv := int(newIdx.G.NumVertices())
	vstamp := ds.NewStamps(nv)
	vstamp.NextEpoch()
	var vlist []int32
	for _, sn := range affSN {
		for _, e := range sg.SupernodeEdges(sn) {
			ed := newIdx.G.Edge(e)
			if vstamp.Visit(ed.U) {
				vlist = append(vlist, ed.U)
			}
			if vstamp.Visit(ed.V) {
				vlist = append(vlist, ed.V)
			}
		}
	}
	seen := ds.NewStamps(n)
	for _, v := range vlist {
		seen.NextEpoch()
		for _, sn := range newIdx.SupernodesOf(v) {
			if !isAffected[sn] {
				continue
			}
			for node := h.snLeaf[sn]; node >= 0 && seen.Visit(node); node = h.parent[node] {
				h.verts[node]++
			}
		}
	}

	// Global CSRs and the level index are rebuilt outright — they are flat
	// O(nodes + supernodes) passes, far below the triangle work the splice
	// avoids.
	h.ownOff = make([]int64, n+1)
	for _, leaf := range h.snLeaf {
		h.ownOff[leaf+1]++
	}
	for i := 0; i < n; i++ {
		h.ownOff[i+1] += h.ownOff[i]
	}
	h.ownSN = make([]int32, sNew)
	ownCur := make([]int64, n)
	copy(ownCur, h.ownOff[:n])
	for sn, leaf := range h.snLeaf {
		h.ownSN[ownCur[leaf]] = int32(sn)
		ownCur[leaf]++
	}
	h.childOff = make([]int64, n+1)
	for _, p := range h.parent {
		if p >= 0 {
			h.childOff[p+1]++
		}
	}
	for i := 0; i < n; i++ {
		h.childOff[i+1] += h.childOff[i]
	}
	h.childList = make([]int32, h.childOff[n])
	childCur := make([]int64, n)
	copy(childCur, h.childOff[:n])
	for c, p := range h.parent {
		if p >= 0 {
			h.childList[childCur[p]] = int32(c)
			childCur[p]++
		}
	}

	levels := int(h.kmax) - core.MinK + 1
	h.levelOff = make([]int64, levels+1)
	for id := int32(0); id < int32(n); id++ {
		lo, hi := h.spanOf(id)
		for k := lo; k <= hi; k++ {
			h.levelOff[k-core.MinK+1]++
		}
	}
	for i := 0; i < levels; i++ {
		h.levelOff[i+1] += h.levelOff[i]
	}
	h.levelNodes = make([]int32, h.levelOff[levels])
	lvlCur := make([]int64, levels)
	copy(lvlCur, h.levelOff[:levels])
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return h.nodeMin[order[a]] < h.nodeMin[order[b]] })
	for _, id := range order {
		lo, hi := h.spanOf(id)
		for k := lo; k <= hi; k++ {
			h.levelNodes[lvlCur[k-core.MinK]] = id
			lvlCur[k-core.MinK]++
		}
	}

	return h, kept, rebuilt, nil
}

// sweepSubset replays the descending-k merge sweep of buildHierarchy over
// only the given supernodes, appending the resulting forest nodes to h (with
// zeroed counts and sentinel nodeMin, filled in by the caller) and setting
// h.snLeaf for every supernode in the subset. The subset must be closed
// under superedges; a superedge leaving it means the caller's affected-tree
// marking missed a dependency, which aborts the splice.
func (h *Hierarchy) sweepSubset(sg *core.SummaryGraph, sns []int32, isIn []bool) error {
	if len(sns) == 0 {
		return nil
	}
	s := int(sg.NumSupernodes())
	levels := int(h.kmax) - core.MinK + 1
	snByK := make([][]int32, levels)
	type superedge struct{ a, b int32 }
	seByLvl := make([][]superedge, levels)
	for _, sn := range sns {
		snByK[sg.K[sn]-core.MinK] = append(snByK[sg.K[sn]-core.MinK], sn)
		for _, nb := range sg.SupernodeNeighbors(sn) {
			if !isIn[nb] {
				return fmt.Errorf("community: superedge (%d,%d) crosses out of the affected set", sn, nb)
			}
			if nb > sn {
				lvl := sg.K[nb]
				if sg.K[sn] < lvl {
					lvl = sg.K[sn]
				}
				seByLvl[lvl-core.MinK] = append(seByLvl[lvl-core.MinK], superedge{sn, nb})
			}
		}
	}

	uf := ds.NewUnionFind(s)
	nodeAtRoot := make([]int32, s)
	for i := range nodeAtRoot {
		nodeAtRoot[i] = -1
	}
	snStamp := ds.NewStamps(s)
	rootStamp := ds.NewStamps(s)
	nodeStamp := ds.NewStamps(len(h.nodeK))
	rootSlot := make([]int32, s)
	var touched []int32
	var prevNodes []int32
	type group struct {
		root     int32
		newSNs   int32
		children []int32
	}
	var groups []group

	for k := h.kmax; k >= core.MinK; k-- {
		lvl := int(k) - core.MinK
		touched = touched[:0]
		prevNodes = prevNodes[:0]
		groups = groups[:0]
		snStamp.NextEpoch()
		rootStamp.NextEpoch()
		nodeStamp.NextEpoch()
		mark := func(sn int32) {
			if snStamp.Visit(sn) {
				touched = append(touched, sn)
			}
		}
		for _, sn := range snByK[lvl] {
			mark(sn)
		}
		for _, se := range seByLvl[lvl] {
			mark(se.a)
			mark(se.b)
		}
		for _, t := range touched {
			prevNodes = append(prevNodes, nodeAtRoot[uf.Find(t)])
		}
		for _, se := range seByLvl[lvl] {
			uf.Union(se.a, se.b)
		}
		for i, t := range touched {
			r := uf.Find(t)
			if rootStamp.Visit(r) {
				rootSlot[r] = int32(len(groups))
				groups = append(groups, group{root: r})
			}
			g := &groups[rootSlot[r]]
			prev := prevNodes[i]
			if prev < 0 {
				g.newSNs++
			} else if nodeStamp.Visit(prev) {
				g.children = append(g.children, prev)
			}
		}
		for gi := range groups {
			g := &groups[gi]
			if g.newSNs == 0 && len(g.children) < 2 {
				if len(g.children) == 1 {
					nodeAtRoot[g.root] = g.children[0]
				}
				continue
			}
			id := int32(len(h.nodeK))
			h.nodeK = append(h.nodeK, k)
			h.parent = append(h.parent, -1)
			h.edges = append(h.edges, 0)
			h.verts = append(h.verts, 0)
			h.nodeMin = append(h.nodeMin, int32(len(sg.EdgeToSN))) // sentinel
			nodeStamp.Grow(len(h.nodeK))
			for _, c := range g.children {
				h.parent[c] = id
			}
			nodeAtRoot[g.root] = id
		}
		for i, t := range touched {
			if prevNodes[i] < 0 {
				h.snLeaf[t] = nodeAtRoot[uf.Find(t)]
			}
		}
	}
	return nil
}
