package community_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"equitruss/internal/community"
	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

func pipeline(t testing.TB, g *graph.Graph) ([]int32, *community.Index) {
	t.Helper()
	sup := triangle.Supports(g, 2)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 2)
	if err := sg.Validate(g); err != nil {
		t.Fatalf("invalid index: %v", err)
	}
	return tau, community.NewIndex(g, sg)
}

func canonCommunities(cs []*community.Community) string {
	cs = community.CanonicalizeCommunities(cs)
	out := ""
	for _, c := range cs {
		out += fmt.Sprint(c.Edges) + "\n"
	}
	return out
}

// TestIndexedMatchesDirect is the correctness property the whole system
// exists for: for every vertex and every k, the indexed query returns
// exactly the communities the from-scratch BFS finds.
func TestIndexedMatchesDirect(t *testing.T) {
	check := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := int32(24)
		var in []graph.Edge
		for u := int32(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rnd.Float64() < 0.3 {
					in = append(in, graph.Edge{U: u, V: v})
				}
			}
		}
		g, err := graph.FromEdgeList(in, n)
		if err != nil {
			return false
		}
		tau, idx := pipeline(t, g)
		kmax := truss.KMax(tau)
		for v := int32(0); v < n; v++ {
			for k := int32(3); k <= kmax+1; k++ {
				got := canonCommunities(idx.Communities(v, k))
				want := canonCommunities(community.DirectCommunities(g, tau, v, k))
				if got != want {
					t.Logf("seed %d v=%d k=%d:\nindexed:\n%s\ndirect:\n%s", seed, v, k, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure3Queries(t *testing.T) {
	g := gen.PaperFigure3()
	tau, idx := pipeline(t, g)
	_ = tau

	// Vertex 6 at k=5: exactly the 5-clique community.
	cs := idx.Communities(6, 5)
	if len(cs) != 1 {
		t.Fatalf("v=6 k=5: %d communities, want 1", len(cs))
	}
	verts := cs[0].Vertices()
	if fmt.Sprint(verts) != fmt.Sprint([]int32{6, 7, 8, 9, 10}) {
		t.Fatalf("v=6 k=5 vertices = %v", verts)
	}

	// Vertex 3 at k=4: the two 4-truss supernodes ν1 and ν3 are NOT
	// connected at level 4 (their only shared triangles pass through
	// trussness-3 edges), so vertex 3 lies in two distinct communities.
	cs = idx.Communities(3, 4)
	if len(cs) != 2 {
		t.Fatalf("v=3 k=4: %d communities, want 2", len(cs))
	}

	// Vertex 0 at k=3: one community spanning everything triangle-
	// connected through the 3-truss.
	cs = idx.Communities(0, 3)
	if len(cs) != 1 {
		t.Fatalf("v=0 k=3: %d communities, want 1", len(cs))
	}
	if got := len(cs[0].Vertices()); got != 11 {
		t.Fatalf("v=0 k=3 spans %d vertices, want 11", got)
	}

	// k above kmax: no communities.
	if cs := idx.Communities(6, 6); len(cs) != 0 {
		t.Fatalf("v=6 k=6: %d communities, want 0", len(cs))
	}
}

func TestOverlapSharedEdgeCliques(t *testing.T) {
	// K7 and K5 sharing an edge: at k=5 the shared-edge endpoints belong
	// to both communities... actually the shared edge has τ=7, and the K5
	// remainder forms its own supernode at k=5. Verify the overlapping
	// membership the intro motivates: shared vertices participate in both
	// communities at k=4.
	g := gen.SharedEdgeCliquePair(7, 5)
	tau, idx := pipeline(t, g)

	shared := []int32{5, 6} // vertices in both cliques
	for _, v := range shared {
		cs := idx.Communities(v, 5)
		direct := community.DirectCommunities(g, tau, v, 5)
		if canonCommunities(cs) != canonCommunities(direct) {
			t.Fatalf("v=%d k=5 indexed != direct", v)
		}
		if len(cs) == 0 {
			t.Fatalf("v=%d k=5: no communities", v)
		}
	}
	// A vertex only in the K5 side must see exactly one k=5 community.
	cs := idx.Communities(9, 5)
	if len(cs) != 1 {
		t.Fatalf("v=9 k=5: %d communities, want 1", len(cs))
	}
}

func TestMaxKAndMembership(t *testing.T) {
	g := gen.PaperFigure3()
	_, idx := pipeline(t, g)
	cases := map[int32]int32{0: 4, 3: 4, 6: 5, 4: 4, 2: 4}
	for v, want := range cases {
		if got := idx.MaxK(v); got != want {
			t.Errorf("MaxK(%d) = %d, want %d", v, got, want)
		}
	}
	prof := idx.Membership(3)
	if prof[3] != 1 {
		t.Errorf("vertex 3 k=3 membership = %d, want 1", prof[3])
	}
	if prof[4] != 2 {
		t.Errorf("vertex 3 k=4 membership = %d, want 2 (overlap)", prof[4])
	}
}

func TestCommunitySubgraph(t *testing.T) {
	g := gen.PaperFigure3()
	_, idx := pipeline(t, g)
	cs := idx.Communities(6, 5)
	sub, err := cs[0].Subgraph()
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 10 {
		t.Fatalf("k=5 community subgraph edges = %d, want 10", sub.NumEdges())
	}
	// Within the subgraph every edge must have support >= k-2 = 3
	// (it is a k-truss by construction).
	for e := int32(0); e < int32(sub.NumEdges()); e++ {
		ed := sub.Edge(e)
		if sup := sub.CommonNeighborCount(ed.U, ed.V); sup < 3 {
			t.Fatalf("community edge %v support %d < 3", ed, sup)
		}
	}
}

func TestQueryVertexWithNoCommunities(t *testing.T) {
	g := gen.Path(6)
	_, idx := pipeline(t, g)
	if cs := idx.Communities(2, 3); len(cs) != 0 {
		t.Fatalf("path vertex has %d communities", len(cs))
	}
	if idx.MaxK(2) != 0 {
		t.Fatalf("MaxK on triangle-free = %d", idx.MaxK(2))
	}
	if len(idx.Membership(2)) != 0 {
		t.Fatal("membership profile non-empty")
	}
}

func TestKBelowMinimumClamped(t *testing.T) {
	g := gen.Clique(5)
	tau, idx := pipeline(t, g)
	a := canonCommunities(idx.Communities(0, 0))
	b := canonCommunities(idx.Communities(0, 3))
	if a != b {
		t.Fatal("k<3 not clamped to 3")
	}
	c := canonCommunities(community.DirectCommunities(g, tau, 0, -1))
	if c != b {
		t.Fatal("direct k<3 not clamped")
	}
}

func TestSupernodesOfConsistency(t *testing.T) {
	g := gen.PlantedPartition(6, 8, 0.7, 1.0, 41)
	_, idx := pipeline(t, g)
	sg := idx.SG
	for v := int32(0); v < g.NumVertices(); v++ {
		want := map[int32]bool{}
		for _, e := range g.IncidentEIDs(v) {
			if sn := sg.EdgeToSN[e]; sn != core.NoSupernode {
				want[sn] = true
			}
		}
		got := idx.SupernodesOf(v)
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %d supernodes, want %d", v, len(got), len(want))
		}
		for _, sn := range got {
			if !want[sn] {
				t.Fatalf("vertex %d: spurious supernode %d", v, sn)
			}
		}
	}
}

// TestIndexedMatchesDirectOnPlanted runs the equivalence on a community
// graph large enough to have nontrivial supergraph structure.
func TestIndexedMatchesDirectOnPlanted(t *testing.T) {
	g := gen.PlantedPartition(10, 10, 0.6, 2.0, 43)
	tau, idx := pipeline(t, g)
	kmax := truss.KMax(tau)
	rnd := rand.New(rand.NewSource(44))
	for trial := 0; trial < 50; trial++ {
		v := int32(rnd.Intn(int(g.NumVertices())))
		k := int32(3 + rnd.Intn(int(kmax)))
		got := canonCommunities(idx.Communities(v, k))
		want := canonCommunities(community.DirectCommunities(g, tau, v, k))
		if got != want {
			t.Fatalf("v=%d k=%d mismatch", v, k)
		}
	}
}
