package community

import (
	"sort"

	"equitruss/internal/core"
	"equitruss/internal/ds"
)

// AllCommunities enumerates every k-truss community in the graph (not just
// those of one query vertex) by running connected components over the
// supergraph restricted to supernodes with trussness >= k. This is the
// "global view" the index gives almost for free — contrast with global
// community detection, which would recompute from the raw graph.
func (idx *Index) AllCommunities(k int32) []*Community {
	if k < core.MinK {
		k = core.MinK
	}
	sg := idx.SG
	s := sg.NumSupernodes()
	visited := ds.NewBitset(int(s))
	var out []*Community
	for seed := int32(0); seed < s; seed++ {
		if sg.K[seed] < k || visited.Get(int(seed)) {
			continue
		}
		var members []int32
		stack := []int32{seed}
		visited.Set(int(seed))
		for len(stack) > 0 {
			sn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, sg.SupernodeEdges(sn)...)
			for _, nb := range sg.SupernodeNeighbors(sn) {
				if sg.K[nb] >= k && !visited.Get(int(nb)) {
					visited.Set(int(nb))
					stack = append(stack, nb)
				}
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, &Community{K: k, Edges: members, g: idx.G})
	}
	return CanonicalizeCommunities(out)
}

// CommunityCount returns, for each k from 3 to the graph's kmax, the
// number of k-truss communities — the global community-size profile.
func (idx *Index) CommunityCount() map[int32]int {
	kmax := int32(core.MinK - 1)
	for _, k := range idx.SG.K {
		if k > kmax {
			kmax = k
		}
	}
	out := make(map[int32]int)
	for k := int32(core.MinK); k <= kmax; k++ {
		if n := len(idx.AllCommunities(k)); n > 0 {
			out[k] = n
		}
	}
	return out
}
