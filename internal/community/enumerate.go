package community

import (
	"sort"

	"equitruss/internal/core"
	"equitruss/internal/ds"
)

// AllCommunitiesBFS enumerates every k-truss community by running connected
// components over the supergraph restricted to supernodes with trussness >=
// k — the original implementation, kept as the differential oracle for the
// hierarchy-backed AllCommunities.
func (idx *Index) AllCommunitiesBFS(k int32) []*Community {
	if k < core.MinK {
		k = core.MinK
	}
	sg := idx.SG
	s := sg.NumSupernodes()
	visited := ds.NewBitset(int(s))
	var out []*Community
	for seed := int32(0); seed < s; seed++ {
		if sg.K[seed] < k || visited.Get(int(seed)) {
			continue
		}
		var members []int32
		stack := []int32{seed}
		visited.Set(int(seed))
		for len(stack) > 0 {
			sn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, sg.SupernodeEdges(sn)...)
			for _, nb := range sg.SupernodeNeighbors(sn) {
				if sg.K[nb] >= k && !visited.Get(int(nb)) {
					visited.Set(int(nb))
					stack = append(stack, nb)
				}
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, &Community{K: k, Edges: members, g: idx.G})
	}
	return CanonicalizeCommunities(out)
}

// CommunityCountBFS computes the global community-count profile with one
// full enumeration per level — the oracle form of CommunityCount.
func (idx *Index) CommunityCountBFS() map[int32]int {
	kmax := idx.SG.MaxK()
	out := make(map[int32]int)
	for k := int32(core.MinK); k <= kmax; k++ {
		if n := len(idx.AllCommunitiesBFS(k)); n > 0 {
			out[k] = n
		}
	}
	return out
}
