package community

import (
	"errors"
	"fmt"
	"sort"

	"equitruss/internal/core"
	"equitruss/internal/ds"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

var (
	cIncrApplies = obs.GetCounter("community_incremental_applies",
		"incremental summary/hierarchy repairs that produced a new index")
	cIncrRegionEdges = obs.GetCounter("community_incremental_region_edges",
		"edges re-examined by incremental repairs (the repair working set)")
	cIncrDirtySN = obs.GetCounter("community_incremental_dirty_supernodes",
		"supernodes invalidated and rebuilt by incremental repairs")
	cIncrKeptNodes = obs.GetCounter("community_incremental_kept_hierarchy_nodes",
		"merge-forest nodes carried over unchanged by hierarchy splices")
)

// ErrDeltaTooLarge reports that the repair region exceeded the caller's
// budget; the caller should fall back to a from-scratch rebuild, which is
// cheaper than repairing most of the graph edge by edge.
var ErrDeltaTooLarge = errors.New("community: delta region exceeds the incremental-repair budget")

// EdgeDelta names the edges a batch of updates moved, in canonically packed
// (u<<32|v, u<v) keys — the shape dynamic.Delta reports. Changed holds
// surviving pre-existing edges with their new trussness, Inserted/Deleted
// the membership changes, and Touched the surviving triangle partners of
// deleted edges (their trussness may be unchanged but their triangle set is
// not). The maps must be mutually disjoint.
type EdgeDelta struct {
	Changed     map[uint64]int32
	Inserted    map[uint64]int32
	Deleted     map[uint64]struct{}
	Touched     map[uint64]struct{}
	NumVertices int32
}

// Size returns the number of distinct edges the delta names.
func (d EdgeDelta) Size() int {
	return len(d.Changed) + len(d.Inserted) + len(d.Deleted) + len(d.Touched)
}

// Empty reports whether the delta names no edges.
func (d EdgeDelta) Empty() bool { return d.Size() == 0 }

// ApplyStats summarizes one incremental repair for logs and benchmarks.
type ApplyStats struct {
	DirtySupernodes    int // old supernodes invalidated by the delta
	RetainedSupernodes int // old supernodes carried over membership-identical
	RebuiltSupernodes  int // supernodes recomputed from the repair region
	RegionEdges        int // edges the repair re-examined
	KeptNodes          int // hierarchy nodes spliced through unchanged
	RebuiltNodes       int // hierarchy nodes recomputed by the subset sweep
}

// Maintainer applies EdgeDeltas to a query-ready index incrementally:
// instead of re-enumerating every triangle and re-bucketing every supernode,
// it recomputes supernode membership and superedges only inside the region
// the delta can reach and splices the repaired merge-forest trees into the
// hierarchy. On success the maintainer advances to the produced index; on
// any error it stays put, so the caller can fall back to a full rebuild and
// Reset.
//
// The locality argument: a triangle's qualification as a supernode witness
// or superedge witness can only change when one of its three edges changes
// (trussness or existence). Seeding the dirty set with the old supernodes of
// every changed/deleted/touched edge plus the supernodes of the new-graph
// triangle partners of every changed/inserted edge therefore covers every
// supernode whose membership or incident superedges can differ; supernodes
// outside the dirty set keep their member sets, their trussness, and their
// mutual superedges verbatim.
type Maintainer struct {
	idx *Index
}

// NewMaintainer wraps a published index for incremental maintenance.
func NewMaintainer(idx *Index) *Maintainer { return &Maintainer{idx: idx} }

// Index returns the state the maintainer currently sits at.
func (mt *Maintainer) Index() *Index { return mt.idx }

// Reset repoints the maintainer after an out-of-band (full) rebuild.
func (mt *Maintainer) Reset(idx *Index) { mt.idx = idx }

func unpackKey(p uint64) (u, v int32) { return int32(p >> 32), int32(uint32(p)) }

func packSN(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// Apply builds the successor index for one delta. maxRegionFrac bounds the
// repair region as a fraction of the new edge count (0 disables the bound);
// exceeding it returns ErrDeltaTooLarge with the maintainer unchanged.
func (mt *Maintainer) Apply(d EdgeDelta, maxRegionFrac float64) (*Index, ApplyStats, error) {
	var st ApplyStats
	oldIdx := mt.idx
	oldG, oldSG := oldIdx.G, oldIdx.SG
	n := oldG.NumVertices()
	if d.NumVertices > n {
		n = d.NumVertices
	}
	if d.Empty() && n == oldG.NumVertices() {
		return oldIdx, st, nil
	}

	// Resolve pre-existing delta keys to old edge IDs.
	oldNV := oldG.NumVertices()
	resolveOld := func(k uint64, kind string) (int32, error) {
		u, v := unpackKey(k)
		if u >= oldNV || v >= oldNV {
			return -1, fmt.Errorf("community: %s key (%d,%d) beyond the prior vertex space", kind, u, v)
		}
		eid := oldG.EdgeID(u, v)
		if eid < 0 {
			return -1, fmt.Errorf("community: %s key (%d,%d) not in the prior graph", kind, u, v)
		}
		return eid, nil
	}
	deletedOld := make([]int32, 0, len(d.Deleted))
	for k := range d.Deleted {
		eid, err := resolveOld(k, "deleted")
		if err != nil {
			return nil, st, err
		}
		deletedOld = append(deletedOld, eid)
	}
	sort.Slice(deletedOld, func(i, j int) bool { return deletedOld[i] < deletedOld[j] })
	type changedEdge struct {
		oldEID int32
		tau    int32
	}
	changedOld := make([]changedEdge, 0, len(d.Changed))
	for k, t := range d.Changed {
		eid, err := resolveOld(k, "changed")
		if err != nil {
			return nil, st, err
		}
		changedOld = append(changedOld, changedEdge{eid, t})
	}
	touchedOld := make([]int32, 0, len(d.Touched))
	for k := range d.Touched {
		eid, err := resolveOld(k, "touched")
		if err != nil {
			return nil, st, err
		}
		touchedOld = append(touchedOld, eid)
	}
	insKeys := make([]uint64, 0, len(d.Inserted))
	for k := range d.Inserted {
		if u, v := unpackKey(k); u < oldNV && v < oldNV && oldG.EdgeID(u, v) >= 0 {
			return nil, st, fmt.Errorf("community: inserted key (%d,%d) already in the prior graph", u, v)
		}
		insKeys = append(insKeys, k)
	}
	sort.Slice(insKeys, func(i, j int) bool { return insKeys[i] < insKeys[j] })

	// Merge the (sorted) old edge array with the sorted inserts, dropping
	// deletes: one O(m) pass yields the new canonical edge list, both ID
	// translations, and the new tau array — no map iteration, no re-sort of
	// anything but the nearly-sorted result inside FromEdgeList.
	oldEdges := oldG.Edges()
	mOld := len(oldEdges)
	newEdges := make([]graph.Edge, 0, mOld+len(insKeys)-len(deletedOld))
	oldToNew := make([]int32, mOld)
	tauNew := make([]int32, 0, cap(newEdges))
	insNew := make([]int32, len(insKeys))
	di := 0 // cursor into deletedOld
	j := 0  // cursor into insKeys
	for i := 0; i < mOld; i++ {
		e := oldEdges[i]
		ek := uint64(uint32(e.U))<<32 | uint64(uint32(e.V))
		for j < len(insKeys) && insKeys[j] < ek {
			u, v := unpackKey(insKeys[j])
			insNew[j] = int32(len(newEdges))
			newEdges = append(newEdges, graph.Edge{U: u, V: v})
			tauNew = append(tauNew, d.Inserted[insKeys[j]])
			j++
		}
		if di < len(deletedOld) && deletedOld[di] == int32(i) {
			oldToNew[i] = -1
			di++
			continue
		}
		oldToNew[i] = int32(len(newEdges))
		newEdges = append(newEdges, e)
		tauNew = append(tauNew, oldSG.Tau[i])
	}
	for ; j < len(insKeys); j++ {
		u, v := unpackKey(insKeys[j])
		insNew[j] = int32(len(newEdges))
		newEdges = append(newEdges, graph.Edge{U: u, V: v})
		tauNew = append(tauNew, d.Inserted[insKeys[j]])
	}
	if di != len(deletedOld) {
		return nil, st, errors.New("community: deleted edge IDs out of range during merge")
	}
	mNew := len(newEdges)
	newToOld := make([]int32, mNew)
	for i := range newToOld {
		newToOld[i] = -1
	}
	changedNew := make([]int32, 0, len(changedOld))
	for i, ne := range oldToNew {
		if ne >= 0 {
			newToOld[ne] = int32(i)
		}
	}
	for _, ce := range changedOld {
		ne := oldToNew[ce.oldEID]
		if ne < 0 {
			return nil, st, errors.New("community: changed edge also reported deleted")
		}
		tauNew[ne] = ce.tau
		changedNew = append(changedNew, ne)
	}

	gNew, err := graph.FromEdgeList(newEdges, n)
	if err != nil {
		return nil, st, err
	}
	if gNew.NumEdges() != int64(mNew) {
		return nil, st, fmt.Errorf("community: merged edge list shrank from %d to %d (duplicate insert?)", mNew, gNew.NumEdges())
	}

	// Dirty old supernodes: the old homes of every changed/deleted/touched
	// edge, plus the old homes of the new-graph triangle partners of every
	// changed/inserted edge (those supernodes may gain members or lose or
	// gain superedge witnesses).
	sOld := int(oldSG.NumSupernodes())
	dirty := make([]bool, sOld)
	var dirtyList []int32
	markDirty := func(sn int32) {
		if sn != core.NoSupernode && !dirty[sn] {
			dirty[sn] = true
			dirtyList = append(dirtyList, sn)
		}
	}
	for _, eid := range deletedOld {
		markDirty(oldSG.EdgeToSN[eid])
	}
	for _, ce := range changedOld {
		markDirty(oldSG.EdgeToSN[ce.oldEID])
	}
	for _, eid := range touchedOld {
		markDirty(oldSG.EdgeToSN[eid])
	}
	markPartners := func(ne int32) {
		gNew.ForEachTriangleOf(ne, func(w, e1, e2 int32) bool {
			if o := newToOld[e1]; o >= 0 {
				markDirty(oldSG.EdgeToSN[o])
			}
			if o := newToOld[e2]; o >= 0 {
				markDirty(oldSG.EdgeToSN[o])
			}
			return true
		})
	}
	for _, ne := range changedNew {
		markPartners(ne)
	}
	for _, ne := range insNew {
		markPartners(ne)
	}
	st.DirtySupernodes = len(dirtyList)

	// The repair region: surviving members of dirty supernodes plus every
	// changed/inserted edge that (still) has trussness >= MinK.
	inRegion := make([]int32, mNew)
	for i := range inRegion {
		inRegion[i] = -1
	}
	var region []int32
	addRegion := func(ne int32) {
		if ne >= 0 && tauNew[ne] >= core.MinK && inRegion[ne] < 0 {
			inRegion[ne] = int32(len(region))
			region = append(region, ne)
		}
	}
	for _, sn := range dirtyList {
		for _, e := range oldSG.SupernodeEdges(sn) {
			addRegion(oldToNew[e])
		}
	}
	for _, ne := range changedNew {
		addRegion(ne)
	}
	for _, ne := range insNew {
		addRegion(ne)
	}
	st.RegionEdges = len(region)
	if maxRegionFrac > 0 && float64(len(region)) > maxRegionFrac*float64(mNew) {
		return nil, st, fmt.Errorf("%w: region %d of %d edges", ErrDeltaTooLarge, len(region), mNew)
	}

	// Recompute the supernode partition inside the region: union equal-τ
	// edges sharing a triangle whose third edge has τ >= their level —
	// exactly the SpNode connectivity rule. A qualifying equal-τ partner of
	// a region edge is provably in the region (otherwise its supernode
	// would have been dirtied above); a miss means the delta was
	// inconsistent with the index, which aborts to the full-rebuild path.
	uf := ds.NewUnionFind(len(region))
	var invariantErr error
	for li, ne := range region {
		k := tauNew[ne]
		gNew.ForEachTriangleOf(ne, func(w, e1, e2 int32) bool {
			k1, k2 := tauNew[e1], tauNew[e2]
			if k1 < k || k2 < k {
				return true
			}
			if k1 == k {
				lp := inRegion[e1]
				if lp < 0 {
					invariantErr = fmt.Errorf("community: region-closure miss at edge %d (partner %d)", ne, e1)
					return false
				}
				uf.Union(int32(li), lp)
			}
			if k2 == k {
				lp := inRegion[e2]
				if lp < 0 {
					invariantErr = fmt.Errorf("community: region-closure miss at edge %d (partner %d)", ne, e2)
					return false
				}
				uf.Union(int32(li), lp)
			}
			return true
		})
		if invariantErr != nil {
			return nil, st, invariantErr
		}
	}

	// Dense new supernode IDs: clean old supernodes first (in old order,
	// preserving a stable translation), then the region components.
	oldToNewSN := make([]int32, sOld)
	cleanOldSN := make([]int32, 0, sOld-len(dirtyList))
	kNew := make([]int32, 0, sOld)
	for sn := 0; sn < sOld; sn++ {
		if dirty[sn] {
			oldToNewSN[sn] = -1
			continue
		}
		oldToNewSN[sn] = int32(len(kNew))
		cleanOldSN = append(cleanOldSN, int32(sn))
		kNew = append(kNew, oldSG.K[sn])
	}
	cleanCount := int32(len(kNew))
	st.RetainedSupernodes = int(cleanCount)
	compAt := make([]int32, len(region)) // root local index -> new SN id
	for i := range compAt {
		compAt[i] = -1
	}
	compID := make([]int32, len(region))
	for li := range region {
		r := uf.Find(int32(li))
		if compAt[r] < 0 {
			compAt[r] = int32(len(kNew))
			kNew = append(kNew, tauNew[region[li]])
		}
		compID[li] = compAt[r]
	}
	sNew := int32(len(kNew))
	st.RebuiltSupernodes = int(sNew - cleanCount)

	// Edge → supernode and the member CSR.
	edgeToSN := make([]int32, mNew)
	for i := range edgeToSN {
		edgeToSN[i] = core.NoSupernode
	}
	for _, oldSN := range cleanOldSN {
		nsn := oldToNewSN[oldSN]
		for _, e := range oldSG.SupernodeEdges(oldSN) {
			ne := oldToNew[e]
			if ne < 0 {
				return nil, st, fmt.Errorf("community: clean supernode %d lost member edge %d", oldSN, e)
			}
			edgeToSN[ne] = nsn
		}
	}
	for li, ne := range region {
		edgeToSN[ne] = compID[li]
	}
	edgeOff := make([]int64, sNew+1)
	for _, sn := range edgeToSN {
		if sn >= 0 {
			edgeOff[sn+1]++
		}
	}
	for i := int32(0); i < sNew; i++ {
		edgeOff[i+1] += edgeOff[i]
	}
	edgeList := make([]int32, edgeOff[sNew])
	cursor := make([]int64, sNew)
	copy(cursor, edgeOff[:sNew])
	for ne, sn := range edgeToSN {
		if sn >= 0 {
			edgeList[cursor[sn]] = int32(ne)
			cursor[sn]++
		}
	}

	// Superedges. Clean–clean pairs survive verbatim (every witness
	// triangle of such a pair is intact — any change to one would have
	// dirtied both endpoints); pairs incident to a dirty supernode are
	// dropped and the region re-emits its incident pairs by triangle
	// enumeration under the exact SpEdge rule. Trees of clean endpoints
	// that lose or gain a pair are marked for the hierarchy rebuild.
	oldH := oldIdx.Hierarchy()
	oldN := int(oldH.NumNodes())
	rootOf := make([]int32, oldN)
	for id := oldN - 1; id >= 0; id-- {
		if p := oldH.parent[id]; p < 0 {
			rootOf[id] = int32(id)
		} else {
			rootOf[id] = rootOf[p]
		}
	}
	affectedRoot := make([]bool, oldN)
	markTree := func(oldSN int32) {
		affectedRoot[rootOf[oldH.snLeaf[oldSN]]] = true
	}
	for _, sn := range dirtyList {
		markTree(sn)
	}
	retained := make([]uint64, 0, oldSG.NumSuperedges())
	for a := int32(0); a < int32(sOld); a++ {
		for _, b := range oldSG.SupernodeNeighbors(a) {
			if b <= a {
				continue
			}
			switch {
			case !dirty[a] && !dirty[b]:
				retained = append(retained, packSN(oldToNewSN[a], oldToNewSN[b]))
			case !dirty[a]:
				markTree(a) // loses the (a,b) superedge
			case !dirty[b]:
				markTree(b)
			}
		}
	}
	sortDedupe := func(ps []uint64) []uint64 {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		out := ps[:0]
		var prev uint64
		for i, p := range ps {
			if i == 0 || p != prev {
				out = append(out, p)
			}
			prev = p
		}
		return out
	}
	retained = sortDedupe(retained)
	var recomputed []uint64
	for _, ne := range region {
		gNew.ForEachTriangleOf(ne, func(w, e1, e2 int32) bool {
			trio := [3]int32{ne, e1, e2}
			taus := [3]int32{tauNew[ne], tauNew[e1], tauNew[e2]}
			lowest := taus[0]
			if taus[1] < lowest {
				lowest = taus[1]
			}
			if taus[2] < lowest {
				lowest = taus[2]
			}
			for x := 0; x < 3; x++ {
				if taus[x] <= lowest {
					continue
				}
				for y := 0; y < 3; y++ {
					if taus[y] == lowest {
						a, b := edgeToSN[trio[x]], edgeToSN[trio[y]]
						if a < 0 || b < 0 {
							invariantErr = fmt.Errorf("community: triangle edge with τ>=3 outside partition (%d,%d)", trio[x], trio[y])
							return false
						}
						recomputed = append(recomputed, packSN(a, b))
					}
				}
			}
			return true
		})
		if invariantErr != nil {
			return nil, st, invariantErr
		}
	}
	recomputed = sortDedupe(recomputed)
	inRetained := func(p uint64) bool {
		i := sort.Search(len(retained), func(i int) bool { return retained[i] >= p })
		return i < len(retained) && retained[i] == p
	}
	for _, p := range recomputed {
		if inRetained(p) {
			continue
		}
		a, b := int32(p>>32), int32(uint32(p))
		if a < cleanCount {
			markTree(cleanOldSN[a]) // gains a superedge it did not have
		}
		if b < cleanCount {
			markTree(cleanOldSN[b])
		}
	}
	pairs := sortDedupe(append(retained, recomputed...))
	adjOff := make([]int64, sNew+1)
	for _, p := range pairs {
		a, b := int32(p>>32), int32(uint32(p))
		adjOff[a+1]++
		adjOff[b+1]++
	}
	for i := int32(0); i < sNew; i++ {
		adjOff[i+1] += adjOff[i]
	}
	adj := make([]int32, adjOff[sNew])
	copy(cursor, adjOff[:sNew])
	for _, p := range pairs {
		a, b := int32(p>>32), int32(uint32(p))
		adj[cursor[a]] = b
		cursor[a]++
		adj[cursor[b]] = a
		cursor[b]++
	}

	sgNew := &core.SummaryGraph{
		Tau:         tauNew,
		EdgeToSN:    edgeToSN,
		K:           kNew,
		EdgeOffsets: edgeOff,
		EdgeList:    edgeList,
		AdjOffsets:  adjOff,
		Adj:         adj,
	}
	newIdx := NewIndex(gNew, sgNew)

	h, kept, rebuilt, err := spliceHierarchy(oldIdx, newIdx, spliceInput{
		oldToNewEdge: oldToNew,
		oldToNewSN:   oldToNewSN,
		cleanOldSN:   cleanOldSN,
		cleanCount:   cleanCount,
		rootOf:       rootOf,
		affectedRoot: affectedRoot,
	})
	if err != nil {
		return nil, st, err
	}
	st.KeptNodes, st.RebuiltNodes = kept, rebuilt
	newIdx.hier.Store(h)

	cIncrApplies.Inc()
	cIncrRegionEdges.Add(int64(st.RegionEdges))
	cIncrDirtySN.Add(int64(st.DirtySupernodes))
	cIncrKeptNodes.Add(int64(kept))
	mt.idx = newIdx
	return newIdx, st, nil
}
