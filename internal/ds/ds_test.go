package ds

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// --- UnionFind -------------------------------------------------------------

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(10)
	if uf.Len() != 10 {
		t.Fatalf("Len = %d", uf.Len())
	}
	if uf.Same(0, 1) {
		t.Fatal("fresh forest merged 0 and 1")
	}
	if !uf.Union(0, 1) {
		t.Fatal("first union reported no-op")
	}
	if uf.Union(0, 1) {
		t.Fatal("repeat union reported a merge")
	}
	if !uf.Same(0, 1) {
		t.Fatal("union did not merge")
	}
	uf.Union(2, 3)
	uf.Union(1, 2)
	for _, v := range []int32{0, 1, 2, 3} {
		if uf.Find(v) != uf.Find(0) {
			t.Fatalf("vertex %d not merged", v)
		}
	}
	if uf.Same(0, 4) {
		t.Fatal("4 should be separate")
	}
}

// refDSU is a slow reference disjoint-set used by property tests.
type refDSU map[int32]int32

func (r refDSU) find(x int32) int32 {
	for r[x] != x {
		x = r[x]
	}
	return x
}

func TestUnionFindMatchesReference(t *testing.T) {
	check := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 50
		uf := NewUnionFind(n)
		ref := refDSU{}
		for i := int32(0); i < int32(n); i++ {
			ref[i] = i
		}
		for op := 0; op < 200; op++ {
			a, b := int32(rnd.Intn(n)), int32(rnd.Intn(n))
			uf.Union(a, b)
			ra, rb := ref.find(a), ref.find(b)
			if ra != rb {
				ref[ra] = rb
			}
		}
		for a := int32(0); a < int32(n); a++ {
			for b := a + 1; b < int32(n); b++ {
				if uf.Same(a, b) != (ref.find(a) == ref.find(b)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUnionFindSequentialEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 60
		cuf := NewConcurrentUnionFind(n)
		uf := NewUnionFind(n)
		for op := 0; op < 300; op++ {
			a, b := int32(rnd.Intn(n)), int32(rnd.Intn(n))
			cuf.Union(a, b)
			uf.Union(a, b)
		}
		cuf.Flatten()
		for a := int32(0); a < int32(n); a++ {
			for b := a + 1; b < int32(n); b++ {
				if cuf.Same(a, b) != uf.Same(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUnionFindParallelChain(t *testing.T) {
	// Union adjacent pairs from many goroutines; the result must be a
	// single component rooted at 0.
	n := 10000
	cuf := NewConcurrentUnionFind(n)
	var wg sync.WaitGroup
	workers := 8
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n-1; i += workers {
				cuf.Union(int32(i), int32(i+1))
			}
		}(w)
	}
	wg.Wait()
	cuf.Flatten()
	root := cuf.Find(0)
	if root != 0 {
		t.Fatalf("root = %d, want 0 (min-ID hooking)", root)
	}
	for i := 0; i < n; i++ {
		if cuf.Find(int32(i)) != root {
			t.Fatalf("element %d not in the single component", i)
		}
	}
	if cuf.Len() != n {
		t.Fatalf("Len = %d", cuf.Len())
	}
}

func TestConcurrentUnionFindParallelRandom(t *testing.T) {
	// Random unions applied concurrently must agree with the same unions
	// applied sequentially.
	n := 2000
	type pair struct{ a, b int32 }
	rnd := rand.New(rand.NewSource(7))
	pairs := make([]pair, 5000)
	for i := range pairs {
		pairs[i] = pair{int32(rnd.Intn(n)), int32(rnd.Intn(n))}
	}
	cuf := NewConcurrentUnionFind(n)
	var wg sync.WaitGroup
	workers := 8
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(pairs); i += workers {
				cuf.Union(pairs[i].a, pairs[i].b)
			}
		}(w)
	}
	wg.Wait()
	cuf.Flatten()
	uf := NewUnionFind(n)
	for _, p := range pairs {
		uf.Union(p.a, p.b)
	}
	for v := 1; v < n; v++ {
		if cuf.Same(0, int32(v)) != uf.Same(0, int32(v)) {
			t.Fatalf("component disagreement at %d", v)
		}
	}
}

// --- Bitset ----------------------------------------------------------------

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		if b.Get(i) {
			t.Fatalf("fresh bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 6 {
		t.Fatalf("Count = %d, want 6", b.Count())
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("Count after Reset = %d", b.Count())
	}
}

func TestBitsetAtomicSetReportsFirstWin(t *testing.T) {
	b := NewBitset(64)
	if !b.SetAtomic(5) {
		t.Fatal("first SetAtomic returned false")
	}
	if b.SetAtomic(5) {
		t.Fatal("second SetAtomic returned true")
	}
	if !b.GetAtomic(5) {
		t.Fatal("GetAtomic lost the bit")
	}
	b.ClearAtomic(5)
	if b.Get(5) {
		t.Fatal("ClearAtomic did not clear")
	}
	b.ClearAtomic(5) // idempotent
}

func TestBitsetConcurrentSetAtomic(t *testing.T) {
	// Every bit must be claimed by exactly one winner even when all bits
	// share words.
	n := 1 << 12
	b := NewBitset(n)
	wins := make([]int32, n)
	var wg sync.WaitGroup
	workers := 8
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if b.SetAtomic(i) {
					wins[i]++
				}
			}
		}()
	}
	wg.Wait()
	for i, w := range wins {
		if w != 1 {
			t.Fatalf("bit %d won %d times", i, w)
		}
	}
	if b.Count() != n {
		t.Fatalf("Count = %d, want %d", b.Count(), n)
	}
}

// --- BucketQueue -----------------------------------------------------------

func TestBucketQueuePopsAscending(t *testing.T) {
	keys := []int32{5, 3, 8, 3, 0, 7, 5}
	q := NewBucketQueue(keys, 8)
	var popped []int32
	for !q.Empty() {
		_, k := q.PopMin()
		popped = append(popped, k)
	}
	if !sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] }) {
		t.Fatalf("pops not ascending: %v", popped)
	}
	if len(popped) != len(keys) {
		t.Fatalf("popped %d items, want %d", len(popped), len(keys))
	}
}

func TestBucketQueueDecreaseKey(t *testing.T) {
	keys := []int32{4, 4, 4, 4}
	q := NewBucketQueue(keys, 4)
	q.DecreaseKey(2, 0)
	q.DecreaseKey(2, 0)
	if q.Key(2) != 2 {
		t.Fatalf("key(2) = %d, want 2", q.Key(2))
	}
	item, k := q.PopMin()
	if item != 2 || k != 2 {
		t.Fatalf("PopMin = (%d, %d), want (2, 2)", item, k)
	}
	if !q.Extracted(2) || q.Extracted(0) {
		t.Fatal("Extracted flags wrong")
	}
	// Floor prevents decreasing below the current level.
	q.DecreaseKey(0, 4)
	if q.Key(0) != 4 {
		t.Fatalf("floor ignored: key(0) = %d", q.Key(0))
	}
}

// TestBucketQueuePeelSimulation drives the queue the way truss peeling
// does: random decrements mixed with min-pops, checked against a naive
// priority structure.
func TestBucketQueuePeelSimulation(t *testing.T) {
	check := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 40
		maxKey := int32(20)
		keys := make([]int32, n)
		for i := range keys {
			keys[i] = int32(rnd.Intn(int(maxKey)))
		}
		q := NewBucketQueue(keys, maxKey)
		naive := make(map[int32]int32)
		for i, k := range keys {
			naive[int32(i)] = k
		}
		level := int32(0)
		for !q.Empty() {
			// Random decrements on unextracted items.
			for d := 0; d < 3; d++ {
				i := int32(rnd.Intn(n))
				if !q.Extracted(i) && naive[i] > level {
					q.DecreaseKey(i, level)
					naive[i]--
				}
			}
			item, k := q.PopMin()
			if k > level {
				level = k
			}
			// The popped key must match naive and be minimal.
			if naive[item] != k {
				return false
			}
			for _, v := range naive {
				if v < k {
					return false
				}
			}
			delete(naive, item)
		}
		return len(naive) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- ShardedMap ------------------------------------------------------------

func TestShardedMapBasics(t *testing.T) {
	sm := NewShardedMap(0)
	if _, ok := sm.Load(42); ok {
		t.Fatal("empty map found a key")
	}
	sm.Store(42, 7)
	if v, ok := sm.Load(42); !ok || v != 7 {
		t.Fatalf("Load = (%d, %v)", v, ok)
	}
	if sm.CompareAndSwap(42, 9, 1) {
		t.Fatal("CAS with wrong old succeeded")
	}
	if !sm.CompareAndSwap(42, 7, 1) {
		t.Fatal("CAS with right old failed")
	}
	if v, _ := sm.Load(42); v != 1 {
		t.Fatalf("value after CAS = %d", v)
	}
	if sm.CompareAndSwap(999, 0, 1) {
		t.Fatal("CAS on missing key succeeded")
	}
	if sm.Len() != 1 {
		t.Fatalf("Len = %d", sm.Len())
	}
}

func TestShardedMapConcurrent(t *testing.T) {
	sm := NewShardedMap(1 << 12)
	n := int64(1 << 12)
	var wg sync.WaitGroup
	workers := 8
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for k := int64(w); k < n; k += int64(workers) {
				sm.Store(k, int32(k*2))
			}
		}(w)
	}
	wg.Wait()
	if sm.Len() != int(n) {
		t.Fatalf("Len = %d, want %d", sm.Len(), n)
	}
	for k := int64(0); k < n; k++ {
		if v, ok := sm.Load(k); !ok || v != int32(k*2) {
			t.Fatalf("key %d = (%d, %v)", k, v, ok)
		}
	}
	// Concurrent CAS: exactly one winner per key.
	wins := make([]int32, n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for k := int64(0); k < n; k++ {
				if sm.CompareAndSwap(k, int32(k*2), -1) {
					wins[k]++
				}
			}
		}()
	}
	wg.Wait()
	for k, w := range wins {
		if w != 1 {
			t.Fatalf("key %d had %d CAS winners", k, w)
		}
	}
}
