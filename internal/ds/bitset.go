package ds

import (
	"math/bits"
	"sync/atomic"
)

// Bitset is a fixed-size bit vector. The non-atomic methods are not safe for
// concurrent mutation of the same word; use the Atomic variants when several
// goroutines may touch neighbouring bits.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a cleared bitset of n bits.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// SetAtomic sets bit i with a race-free read-modify-write and reports
// whether this call changed it (i.e. the bit was previously clear). The
// return value makes it usable as a visited-test-and-set in parallel BFS.
func (b *Bitset) SetAtomic(i int) bool {
	addr := &b.words[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// ClearAtomic clears bit i with a race-free read-modify-write.
func (b *Bitset) ClearAtomic(i int) {
	addr := &b.words[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask == 0 {
			return
		}
		if atomic.CompareAndSwapUint64(addr, old, old&^mask) {
			return
		}
	}
}

// GetAtomic reports bit i using an atomic load.
func (b *Bitset) GetAtomic(i int) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(1<<(uint(i)&63)) != 0
}

// Reset clears every bit.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}
