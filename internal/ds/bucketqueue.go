package ds

// BucketQueue is the monotone integer priority queue that drives peeling
// algorithms (k-core, k-truss). It keeps n items bucketed by a small
// non-negative key and supports O(1) "decrease key by one" and amortized
// O(1) extraction of a minimum-key item — the Batagelj–Zaversnik bin-sort
// layout: items are kept in a dense array ordered by key, with per-item
// positions and per-key bucket starts.
//
// Keys may only decrease (DecreaseKey) and only unextracted items may be
// touched; both are what a peeling loop needs.
type BucketQueue struct {
	key   []int32 // current key of each item
	pos   []int32 // position of each item in items
	items []int32 // items ordered by key
	start []int32 // start[k] = first index in items with key >= k
	head  int32   // everything before head has been extracted
	maxK  int32
}

// NewBucketQueue builds a queue over items 0..len(keys)-1 with the given
// initial keys. maxKey must be >= max(keys).
func NewBucketQueue(keys []int32, maxKey int32) *BucketQueue {
	n := int32(len(keys))
	q := &BucketQueue{
		key:   make([]int32, n),
		pos:   make([]int32, n),
		items: make([]int32, n),
		start: make([]int32, maxKey+2),
		maxK:  maxKey,
	}
	copy(q.key, keys)
	// Counting sort by key.
	for _, k := range keys {
		q.start[k+1]++
	}
	for k := int32(1); k <= maxKey+1; k++ {
		q.start[k] += q.start[k-1]
	}
	fill := make([]int32, maxKey+1)
	for i := int32(0); i < n; i++ {
		k := keys[i]
		p := q.start[k] + fill[k]
		fill[k]++
		q.items[p] = i
		q.pos[i] = p
	}
	return q
}

// Empty reports whether every item has been extracted.
func (q *BucketQueue) Empty() bool { return q.head >= int32(len(q.items)) }

// PopMin extracts and returns an item with the smallest current key, along
// with that key. Must not be called on an empty queue.
func (q *BucketQueue) PopMin() (item, key int32) {
	item = q.items[q.head]
	key = q.key[item]
	// Advance bucket starts that pointed at the popped slot.
	for k := key; k >= 0 && q.start[k] == q.head; k-- {
		q.start[k]++
	}
	q.head++
	return item, key
}

// Key returns the current key of item i (undefined after extraction).
func (q *BucketQueue) Key(i int32) int32 { return q.key[i] }

// Extracted reports whether item i has already been popped.
func (q *BucketQueue) Extracted(i int32) bool { return q.pos[i] < q.head }

// DecreaseKey lowers item i's key by one (not below floor) by swapping it
// with the first item of its bucket and shifting the bucket boundary — the
// O(1) decrement at the heart of peeling.
func (q *BucketQueue) DecreaseKey(i, floor int32) {
	k := q.key[i]
	if k <= floor {
		return
	}
	p := q.pos[i]
	s := q.start[k]
	if s != p {
		other := q.items[s]
		q.items[s] = i
		q.items[p] = other
		q.pos[i] = s
		q.pos[other] = p
	}
	q.start[k]++
	q.key[i] = k - 1
}
