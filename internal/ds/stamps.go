package ds

// Stamps is a reusable visited-set over dense int IDs that clears in O(1):
// instead of zeroing a bitset between rounds, each round bumps an epoch and
// an ID counts as visited only if its stamp equals the current epoch. The
// k-level hierarchy sweep runs one round per trussness level over the same
// supernode ID space, which this makes allocation-free after construction.
type Stamps struct {
	mark  []uint32
	epoch uint32
}

// NewStamps returns a visited-set over IDs in [0, n).
func NewStamps(n int) *Stamps {
	return &Stamps{mark: make([]uint32, n)}
}

// NextEpoch starts a new round: every ID becomes unvisited. O(1) except
// once every 2^32 rounds, when the backing array is recleared to make the
// recycled epoch value safe.
func (s *Stamps) NextEpoch() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.epoch = 1
	}
}

// Visit marks ID i visited and reports whether this is the first visit of
// the current epoch.
func (s *Stamps) Visit(i int32) bool {
	if s.mark[i] == s.epoch {
		return false
	}
	s.mark[i] = s.epoch
	return true
}

// Visited reports whether i has been visited in the current epoch.
func (s *Stamps) Visited(i int32) bool { return s.mark[i] == s.epoch }

// Grow extends the ID space to at least n, keeping current marks.
func (s *Stamps) Grow(n int) {
	if n <= len(s.mark) {
		return
	}
	grown := make([]uint32, n)
	copy(grown, s.mark)
	s.mark = grown
}

// Len returns the current ID-space size.
func (s *Stamps) Len() int { return len(s.mark) }
