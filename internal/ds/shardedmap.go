package ds

import "sync"

// shardCount must be a power of two so the shard index is a cheap mask.
const shardCount = 256

// ShardedMap is a lock-striped hash map from packed int64 keys to int32
// values. It exists to model the Baseline EquiTruss variant faithfully: the
// paper's baseline stored the τ (trussness) and Π (parent component)
// dictionaries in hash maps, which the C-Optimal variant replaced with
// contiguous buffers. The striping makes concurrent access safe at hash-map
// cost, which is exactly the overhead the optimization removes.
type ShardedMap struct {
	shards [shardCount]mapShard
}

type mapShard struct {
	mu sync.RWMutex
	m  map[int64]int32
	_  [40]byte // pad to its own cache line to avoid false sharing
}

// NewShardedMap returns an empty map with capacity hint per shard.
func NewShardedMap(capacityHint int) *ShardedMap {
	sm := &ShardedMap{}
	per := capacityHint / shardCount
	if per < 8 {
		per = 8
	}
	for i := range sm.shards {
		sm.shards[i].m = make(map[int64]int32, per)
	}
	return sm
}

func shardOf(key int64) int {
	// Fibonacci hashing of the key picks the shard.
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int(h >> 56 & (shardCount - 1))
}

// Store sets key to value.
func (sm *ShardedMap) Store(key int64, value int32) {
	s := &sm.shards[shardOf(key)]
	s.mu.Lock()
	s.m[key] = value
	s.mu.Unlock()
}

// Load returns the value for key and whether it was present.
func (sm *ShardedMap) Load(key int64) (int32, bool) {
	s := &sm.shards[shardOf(key)]
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// CompareAndSwap replaces key's value with next only if it currently equals
// old, reporting whether the swap happened. Missing keys never match.
func (sm *ShardedMap) CompareAndSwap(key int64, old, next int32) bool {
	s := &sm.shards[shardOf(key)]
	s.mu.Lock()
	v, ok := s.m[key]
	if !ok || v != old {
		s.mu.Unlock()
		return false
	}
	s.m[key] = next
	s.mu.Unlock()
	return true
}

// Len returns the total number of entries across shards.
func (sm *ShardedMap) Len() int {
	n := 0
	for i := range sm.shards {
		s := &sm.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
