// Package ds supplies the core data structures shared across the EquiTruss
// pipeline: union-find forests (sequential and lock-free concurrent),
// bitsets, the bucket queue that drives k-truss peeling, and the sharded
// hash map that backs the Baseline variant's dictionary storage.
package ds

import "sync/atomic"

// UnionFind is a sequential disjoint-set forest with union by rank and path
// halving. IDs are dense int32 in [0, n).
type UnionFind struct {
	parent []int32
	rank   []int8
}

// NewUnionFind returns a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]int8, n),
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x, halving the path along the way.
func (uf *UnionFind) Find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether they were
// previously distinct.
func (uf *UnionFind) Union(x, y int32) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	return true
}

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int32) bool { return uf.Find(x) == uf.Find(y) }

// Len returns the number of elements in the forest.
func (uf *UnionFind) Len() int { return len(uf.parent) }

// ConcurrentUnionFind is a wait-free-ish disjoint-set forest safe for
// concurrent Union/Find from many goroutines. It implements the
// priority-hook scheme used by Afforest: Union links the larger root under
// the smaller via CAS, and Find performs lock-free path compression.
// Failed hook CASes (another thread moved the root first) are counted so
// contention on the forest is observable; read them with Retries.
type ConcurrentUnionFind struct {
	parent  []int32
	retries atomic.Int64
}

// NewConcurrentUnionFind returns a concurrent forest of n singleton sets.
func NewConcurrentUnionFind(n int) *ConcurrentUnionFind {
	cuf := &ConcurrentUnionFind{parent: make([]int32, n)}
	for i := range cuf.parent {
		cuf.parent[i] = int32(i)
	}
	return cuf
}

// Find returns the current representative of x. Concurrent unions may move
// the representative; callers that need a settled answer call Flatten first.
func (cuf *ConcurrentUnionFind) Find(x int32) int32 {
	for {
		p := atomic.LoadInt32(&cuf.parent[x])
		if p == x {
			return x
		}
		gp := atomic.LoadInt32(&cuf.parent[p])
		if gp == p {
			return p
		}
		// Path compression: benign if it loses a race.
		atomic.CompareAndSwapInt32(&cuf.parent[x], p, gp)
		x = gp
	}
}

// Union merges the sets containing x and y, hooking the higher root under
// the lower one (priority by ID, matching SV's "hook to smaller parent").
func (cuf *ConcurrentUnionFind) Union(x, y int32) {
	for {
		rx := cuf.Find(x)
		ry := cuf.Find(y)
		if rx == ry {
			return
		}
		if rx > ry {
			rx, ry = ry, rx
		}
		// Hook ry under rx only if ry is still a root.
		if atomic.CompareAndSwapInt32(&cuf.parent[ry], ry, rx) {
			return
		}
		cuf.retries.Add(1)
	}
}

// Retries returns the number of Union hook CASes lost to concurrent
// writers — a direct measure of contention on the forest.
func (cuf *ConcurrentUnionFind) Retries() int64 { return cuf.retries.Load() }

// Same reports whether x and y are currently in the same set. Only exact
// when no unions are running concurrently.
func (cuf *ConcurrentUnionFind) Same(x, y int32) bool {
	for {
		rx := cuf.Find(x)
		ry := cuf.Find(y)
		if rx == ry {
			return true
		}
		// rx may no longer be a root if a concurrent union hooked it.
		if atomic.LoadInt32(&cuf.parent[rx]) == rx {
			return false
		}
	}
}

// Flatten points every element directly at its root. Call after all unions
// complete (single-threaded or from a quiescent barrier).
func (cuf *ConcurrentUnionFind) Flatten() {
	for i := range cuf.parent {
		x := int32(i)
		r := x
		for cuf.parent[r] != r {
			r = cuf.parent[r]
		}
		for cuf.parent[x] != r {
			next := cuf.parent[x]
			cuf.parent[x] = r
			x = next
		}
	}
}

// Parents exposes the raw parent array (after Flatten: the component label
// of each element).
func (cuf *ConcurrentUnionFind) Parents() []int32 { return cuf.parent }

// Len returns the number of elements in the forest.
func (cuf *ConcurrentUnionFind) Len() int { return len(cuf.parent) }
