package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"equitruss/internal/obs"
	olog "equitruss/internal/obs/log"
)

// TestServerMetricsUnderLoad is the `make servermetrics` entry point: it
// drives a mixed workload at a live server, then scrapes /metrics and
// /debug/requests and asserts the full observability surface is present
// and well-formed — latency histogram families with quantile digests,
// runtime and per-instance gauges, and retained request traces whose IDs
// also appear in the structured log.
func TestServerMetricsUnderLoad(t *testing.T) {
	idx, _ := buildTestIndex(t)
	var logBuf syncBuffer
	srv := New(idx, Config{
		SampleN:       1, // trace everything: the scrape assertions need traces
		SlowThreshold: time.Nanosecond,
		Logger:        olog.New(&logBuf, olog.JSON, slog.LevelDebug),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				v := int32((w*25 + i) % int(idx.G.NumVertices()))
				resp, err := ts.Client().Get(fmt.Sprintf("%s/community?v=%d&k=4", ts.URL, v))
				if err == nil {
					resp.Body.Close()
				}
				if i%5 == 0 {
					body := fmt.Sprintf(`{"queries":[{"v":%d,"k":3},{"v":%d,"k":5}]}`, v, v)
					resp, err := ts.Client().Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
					if err == nil {
						resp.Body.Close()
					}
				}
				if i%7 == 0 {
					resp, err := ts.Client().Get(fmt.Sprintf("%s/membership?v=%d", ts.URL, v))
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// --- /metrics: histogram families, quantiles, runtime + instance gauges.
	resp := getJSON(t, ts, "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	raw, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(raw.Body)
	raw.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		"# TYPE equitruss_server_community_request_seconds histogram",
		`equitruss_server_community_request_seconds_bucket{le="+Inf"}`,
		"equitruss_server_community_request_seconds_count",
		`equitruss_server_community_request_quantile_seconds{q="0.5"}`,
		`equitruss_server_community_request_quantile_seconds{q="0.99"}`,
		"# TYPE equitruss_server_batch_request_seconds histogram",
		"# TYPE equitruss_runtime_goroutines gauge",
		"equitruss_runtime_heap_alloc_bytes",
		"# TYPE equitruss_server_pool_in_use gauge",
		"equitruss_server_pool_capacity",
		"equitruss_server_cache_entries",
		"equitruss_server_inflight_limit",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// --- /debug/requests: retained traces with stage trees.
	var dbg debugRequestsDoc
	if resp := getJSON(t, ts, "/debug/requests", &dbg); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests status %d", resp.StatusCode)
	}
	if dbg.SampleN != 1 {
		t.Fatalf("debug doc sample_n = %d, want 1", dbg.SampleN)
	}
	if len(dbg.Recent) == 0 {
		t.Fatal("/debug/requests returned no recent traces after load")
	}
	tr := dbg.Recent[0]
	if tr.ID == 0 || tr.Dur <= 0 || tr.Status != http.StatusOK {
		t.Fatalf("trace fields wrong: %+v", tr)
	}
	if len(tr.Stages) == 0 {
		t.Fatalf("sampled trace has no stages: %+v", tr)
	}
	stageNames := map[string]bool{}
	for _, trc := range dbg.Recent {
		for _, st := range trc.Stages {
			stageNames[st.Name] = true
		}
	}
	for _, want := range []string{"parse", "encode"} {
		if !stageNames[want] {
			t.Fatalf("no retained trace has a %q stage; saw %v", want, stageNames)
		}
	}
	if !stageNames["hierarchy query"] && !stageNames["cache lookup"] {
		t.Fatalf("no query-path stages retained; saw %v", stageNames)
	}

	// --- join: the trace's request ID appears in the structured log.
	logged := logBuf.String()
	id := obs.FormatReqID(tr.ID)
	if !strings.Contains(logged, fmt.Sprintf("%q:%q", "request_id", id)) {
		t.Fatalf("log does not mention %s:\n%.2000s", id, logged)
	}
	var rec map[string]any
	line, _, _ := strings.Cut(logged, "\n")
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, line)
	}
	for _, key := range []string{"request_id", "status", "duration", "vertex", "k", "cache_hit"} {
		if _, ok := rec[key]; !ok {
			t.Fatalf("log record missing %q: %v", key, rec)
		}
	}

	// --- single-trace fetch and Chrome export round-trip.
	var one obs.ReqTrace
	if resp := getJSON(t, ts, fmt.Sprintf("/debug/requests?id=%d", tr.ID), &one); resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch by id: status %d", resp.StatusCode)
	}
	if one.ID != tr.ID {
		t.Fatalf("fetched trace id = %d, want %d", one.ID, tr.ID)
	}
	chromeResp, err := ts.Client().Get(fmt.Sprintf("%s/debug/requests?id=%d&format=chrome", ts.URL, tr.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer chromeResp.Body.Close()
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(chromeResp.Body).Decode(&chrome); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	if resp := getJSON(t, ts, "/debug/requests?id=99999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", resp.StatusCode)
	}
}

// TestHealthzRevision asserts /healthz reports the build revision.
func TestHealthzRevision(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{}).Handler())
	defer ts.Close()
	var doc map[string]any
	getJSON(t, ts, "/healthz", &doc)
	rev, ok := doc["revision"].(string)
	if !ok || rev == "" {
		t.Fatalf("healthz revision missing or empty: %v", doc)
	}
}

// TestErroredRequestRetainedAndLogged proves a 4xx lands in the slow ring
// with its error text and is logged at warning level even when unsampled.
func TestErroredRequestRetainedAndLogged(t *testing.T) {
	idx, _ := buildTestIndex(t)
	var logBuf syncBuffer
	srv := New(idx, Config{
		SampleN: 1 << 20, // effectively unsampled
		Logger:  olog.New(&logBuf, olog.JSON, slog.LevelWarn),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := getJSON(t, ts, "/community?v=notanumber&k=4", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var dbg debugRequestsDoc
	getJSON(t, ts, "/debug/requests", &dbg)
	var found *obs.ReqTrace
	for _, tr := range dbg.Slow {
		if tr.Status == http.StatusBadRequest {
			found = tr
		}
	}
	if found == nil {
		t.Fatalf("errored request not in slow ring: %+v", dbg.Slow)
	}
	if found.Info.Err == "" {
		t.Fatalf("errored trace lost its error text: %+v", found)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, obs.FormatReqID(found.ID)) || !strings.Contains(logged, "WARN") {
		t.Fatalf("error not logged at WARN with request id:\n%s", logged)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing handler logs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
