package server

import (
	"container/list"
	"sync"

	"equitruss/internal/community"
	"equitruss/internal/obs"
)

var (
	cCacheHits = obs.GetCounter("server_cache_hits",
		"community query results served from the LRU cache")
	cCacheMisses = obs.GetCounter("server_cache_misses",
		"community queries that missed the LRU cache")
	cCacheEvictions = obs.GetCounter("server_cache_evictions",
		"LRU cache entries evicted to make room")
)

// cacheKey includes the serving epoch: when a live update publishes a new
// index, the epoch number advances and every entry cached under the old
// epoch becomes unreachable (and ages out of the LRU) instead of serving
// stale communities. Static servers stay on epoch 1 forever, so the extra
// field costs nothing there.
type cacheKey struct {
	ep   uint64
	v, k int32
}

type cacheEntry struct {
	key cacheKey
	val []community.Ref
}

// Cache is a mutex-guarded LRU of community query results keyed by
// (vertex, k) with k already normalized by the caller. Cached values are
// compact community refs — a few words per community, independent of
// community size — instead of materialized edge slices; responses
// materialize edges from a ref only when the client asks. A nil *Cache
// disables caching: Get always misses and Put is a no-op, neither touching
// the hit/miss counters.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[cacheKey]*list.Element
}

// NewCache returns an LRU holding up to capacity entries, or nil (caching
// disabled) when capacity <= 0.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[cacheKey]*list.Element, capacity)}
}

// Get returns the result cached for (v, k) under epoch ep, bumping its
// recency. The second return distinguishes a cached empty result from a
// miss.
func (c *Cache) Get(ep uint64, v, k int32) ([]community.Ref, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[cacheKey{ep, v, k}]
	if !ok {
		cCacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	cCacheHits.Inc()
	return el.Value.(*cacheEntry).val, true
}

// Put stores the result for (v, k) under epoch ep, evicting the least
// recently used entry when full.
func (c *Cache) Put(ep uint64, v, k int32, val []community.Ref) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{ep, v, k}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		cCacheEvictions.Inc()
	}
}

// PurgeBelow drops every entry cached under an epoch older than ep,
// returning how many it removed. Epoch-versioned keys already make stale
// entries unreachable, but unreachable is not free: dead entries hold their
// slots (and, transitively, the old epoch's index arrays — for a
// memory-mapped index, the whole file mapping) until they age out of the
// LRU. Publish calls this so retiring an epoch releases its memory promptly.
func (c *Cache) PurgeBelow(ep uint64) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	purged := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if ent := el.Value.(*cacheEntry); ent.key.ep < ep {
			c.ll.Remove(el)
			delete(c.items, ent.key)
			purged++
		}
		el = next
	}
	if purged > 0 {
		cCacheEvictions.Add(int64(purged))
	}
	return purged
}

// Cap returns the cache capacity in entries (0 when caching is disabled).
func (c *Cache) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
