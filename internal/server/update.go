package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"equitruss/internal/community"
	"equitruss/internal/core"
	"equitruss/internal/dynamic"
	"equitruss/internal/faults"
	"equitruss/internal/graphio"
	"equitruss/internal/obs"
	olog "equitruss/internal/obs/log"
	"equitruss/internal/wal"
)

// siteUpdate is the fault-injection site on the update path. It is hit
// twice per batch lifecycle: once at admission (between the queue-capacity
// check and the WAL append — an injected error there must fail the request
// with no WAL record and no state change) and once at the top of each
// rebuild attempt (an injected error there must leave the mutations in Dyn
// unpublished and trigger the backoff-retry loop).
const siteUpdate = "server.update"

// Applier modes: how the applier turns applied batches into new epochs.
const (
	// UpdateModeAuto repairs the index incrementally from the batch delta
	// and falls back to a full rebuild when the repair region exceeds
	// MaxDeltaFrac of the graph (or the repair fails). The default.
	UpdateModeAuto = "auto"
	// UpdateModeIncremental always attempts the incremental repair with no
	// region budget, falling back to full only on repair errors.
	UpdateModeIncremental = "incremental"
	// UpdateModeFull rebuilds the summary graph and hierarchy from scratch
	// after every drain, as PR 8 did.
	UpdateModeFull = "full"
)

var (
	cUpdateRequests = obs.GetCounter("server_update_requests",
		"POST /update requests accepted (WAL-acked)")
	cUpdateOps = obs.GetCounter("server_update_ops",
		"individual edge operations accepted inside /update batches")
	cUpdateShed = obs.GetCounter("server_update_shed",
		"POST /update requests rejected with 429 because the update queue was full")
	cUpdateRebuildErrors = obs.GetCounter("server_update_rebuild_errors",
		"index rebuilds that failed after applying a batch (retried with backoff)")
	cUpdateIncrApplies = obs.GetCounter("server_update_incremental_applies",
		"applier drains published by incremental summary/hierarchy repair")
	cUpdateFullRebuilds = obs.GetCounter("server_update_full_rebuilds",
		"applier drains published by a from-scratch summary/hierarchy rebuild")
	cUpdateIncrFallbacks = obs.GetCounter("server_update_incremental_fallbacks",
		"incremental repairs abandoned for a full rebuild (region too large or repair error)")
	cUpdateSnapshotErrors = obs.GetCounter("server_update_snapshot_errors",
		"compaction snapshots that failed to write (WAL kept instead)")
	cApplierPanics = obs.GetCounter("server_applier_panics",
		"update-applier panics that switched the server to degraded read-only mode")
	hUpdate = obs.GetHistogram("server_update_request",
		"POST /update request latency (ack, not apply)")
	hRebuild = obs.GetHistogram("server_applier_rebuild",
		"applier rebuild latency per drain (delta repair or full rebuild, through epoch publish)")
)

// LiveConfig attaches a durable update pipeline to a pending server. The
// caller owns recovery: Dyn must already reflect every WAL record up to and
// including AppliedSeq (snapshot load + replay), and WAL must be open.
type LiveConfig struct {
	// WAL is the open write-ahead log updates are acked against. Required.
	WAL *wal.WAL
	// Dyn is the mutable graph state as of AppliedSeq. Required. After
	// EnableUpdates the applier goroutine owns it exclusively.
	Dyn *dynamic.Graph
	// AppliedSeq is the WAL sequence already reflected in Dyn (and in the
	// first published epoch).
	AppliedSeq uint64
	// QueueDepth bounds the update batches acked but not yet applied; a
	// full queue sheds POST /update with 429 + Retry-After. 0 selects the
	// default (64).
	QueueDepth int
	// MaxBatch caps the operations in one POST /update body; larger bodies
	// get 413. 0 selects the default (10000).
	MaxBatch int
	// MaxVertexID caps the vertex IDs an update may introduce, bounding the
	// allocation one request can force. 0 selects max(2·|V|, 1<<20).
	MaxVertexID int32
	// Variant and Threads drive the summary-graph rebuild after each
	// applied batch (trussness is maintained incrementally; only the
	// summary construction reruns).
	Variant core.Variant
	Threads int
	// Mode selects how applied batches become epochs: UpdateModeAuto
	// (default), UpdateModeIncremental, or UpdateModeFull.
	Mode string
	// MaxDeltaFrac bounds the incremental repair region as a fraction of
	// the edge count in auto mode; a larger delta falls back to a full
	// rebuild. 0 selects the default (0.2).
	MaxDeltaFrac float64
	// RebuildBackoff and RebuildBackoffMax shape the jittered exponential
	// backoff between retries of a failed rebuild. Zero values select the
	// defaults (50ms base, 5s cap).
	RebuildBackoff    time.Duration
	RebuildBackoffMax time.Duration
	// SnapshotPath, when non-empty, enables compaction: every CompactEvery
	// applied batches the applier writes a snapshot there and truncates the
	// WAL to the records past it.
	SnapshotPath string
	// CompactEvery is the number of applied batches between compactions.
	// 0 selects the default (64).
	CompactEvery int
	// Logger receives applier-side records (rebuild failures, compactions,
	// panics). Nil selects the process-wide logger.
	Logger *slog.Logger

	// testApplyHook, when set, runs on the applier goroutine after each
	// drain cycle's first batch is received and before its ops apply —
	// tests use it to hold the applier open while the queue fills.
	testApplyHook func()
}

const (
	defaultQueueDepth        = 64
	defaultCompactEvery      = 64
	defaultMaxDeltaFrac      = 0.2
	defaultRebuildBackoff    = 50 * time.Millisecond
	defaultRebuildBackoffMax = 5 * time.Second

	// updateOpJSONBytes is the body-size budget per operation when capping
	// POST /update reads: a fully spelled-out op ({"op":"delete","u":…,"v":…}
	// with ten-digit IDs) is under 50 JSON bytes, so 64 leaves slack for
	// whitespace without letting one request stream an unbounded body.
	updateOpJSONBytes = 64
)

// defaultMaxVertexID derives the MaxVertexID default from the graph size:
// max(2·|V|, 1<<20), computed in int64 so graphs past 2^30 vertices clamp
// to MaxInt32 instead of overflowing negative (which would then be
// "defaulted" to 1<<20 and reject valid updates to existing vertices).
func defaultMaxVertexID(numVertices int32) int32 {
	id := 2 * int64(numVertices)
	if id < 1<<20 {
		id = 1 << 20
	}
	if id > math.MaxInt32 {
		id = math.MaxInt32
	}
	return int32(id)
}

// updateBatch is one acked batch in flight between admission and apply.
type updateBatch struct {
	seq uint64
	ops wal.Batch
}

// mutator is the single-writer update pipeline: admission (validate → WAL
// append → enqueue) happens on request goroutines under mu so queue order
// equals sequence order; one applier goroutine drains the queue, mutates
// the dynamic graph, rebuilds the summary index, and publishes it as a new
// epoch. Queries never block on any of it.
type mutator struct {
	s   *Server
	cfg LiveConfig

	// mu serializes the capacity check, the WAL append, and the enqueue.
	// The applier only removes from the queue, so a length check under mu
	// guarantees the subsequent send cannot block.
	mu    sync.Mutex
	queue chan updateBatch

	ackedSeq   atomic.Uint64 // last sequence durably appended and acked
	appliedSeq atomic.Uint64 // last sequence reflected in the published epoch
	brokenMsg  atomic.Pointer[string]

	// maint tracks the published index for incremental repair; owned by the
	// applier goroutine. Nil until the first epoch matching the delta
	// window's base is seen (or after construction, lazily).
	maint *community.Maintainer

	cancel context.CancelFunc
	done   chan struct{}
}

func (m *mutator) degraded() string {
	if p := m.brokenMsg.Load(); p != nil {
		return *p
	}
	return ""
}

func (m *mutator) markDegraded(msg string) {
	m.brokenMsg.CompareAndSwap(nil, &msg)
}

// EnableUpdates attaches the durable update pipeline and starts the applier
// goroutine. Call once, before serving traffic, on a server whose first
// epoch (matching cfg.Dyn at cfg.AppliedSeq) has been or is about to be
// published. Stop with Close.
func (s *Server) EnableUpdates(cfg LiveConfig) error {
	if s.live != nil {
		return errors.New("server: updates already enabled")
	}
	if cfg.WAL == nil || cfg.Dyn == nil {
		return errors.New("server: LiveConfig needs both WAL and Dyn")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.MaxVertexID <= 0 {
		cfg.MaxVertexID = defaultMaxVertexID(cfg.Dyn.NumVertices())
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = defaultCompactEvery
	}
	switch cfg.Mode {
	case "":
		cfg.Mode = UpdateModeAuto
	case UpdateModeAuto, UpdateModeIncremental, UpdateModeFull:
	default:
		return fmt.Errorf("server: unknown update mode %q (want %s, %s, or %s)",
			cfg.Mode, UpdateModeAuto, UpdateModeIncremental, UpdateModeFull)
	}
	if cfg.MaxDeltaFrac <= 0 {
		cfg.MaxDeltaFrac = defaultMaxDeltaFrac
	}
	if cfg.RebuildBackoff <= 0 {
		cfg.RebuildBackoff = defaultRebuildBackoff
	}
	if cfg.RebuildBackoffMax <= 0 {
		cfg.RebuildBackoffMax = defaultRebuildBackoffMax
	}
	if cfg.RebuildBackoffMax < cfg.RebuildBackoff {
		cfg.RebuildBackoffMax = cfg.RebuildBackoff
	}
	if cfg.Logger == nil {
		cfg.Logger = olog.L()
	}
	if cfg.Mode != UpdateModeFull {
		// Open the delta window now, before any update can be admitted, so
		// the first incremental repair sees exactly the ops since the first
		// published epoch.
		cfg.Dyn.TrackDeltas(true)
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &mutator{
		s:      s,
		cfg:    cfg,
		queue:  make(chan updateBatch, cfg.QueueDepth),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	m.ackedSeq.Store(cfg.AppliedSeq)
	m.appliedSeq.Store(cfg.AppliedSeq)
	s.live = m
	go m.run(ctx)
	return nil
}

func (m *mutator) close() {
	m.cancel()
	<-m.done
}

// run is the applier loop. It coalesces every batch already queued into one
// rebuild: under a write burst the dynamic-graph mutations (cheap, local)
// batch up and the summary rebuild (the expensive part) runs once per
// drain, so throughput degrades to rebuild frequency, not rebuild-per-ack.
func (m *mutator) run(ctx context.Context) {
	defer close(m.done)
	defer func() {
		if p := recover(); p != nil {
			// A panic here means the mutable state may be mid-mutation:
			// stop accepting updates (they could not be applied in order)
			// but keep serving queries from the last published epoch.
			cApplierPanics.Inc()
			msg := fmt.Sprintf("update applier panicked: %v", p)
			m.markDegraded(msg)
			m.cfg.Logger.Error("update applier panicked; updates disabled until restart",
				slog.String("panic", fmt.Sprint(p)))
		}
	}()
	batchesSinceCompact := 0
	for {
		var first updateBatch
		select {
		case <-ctx.Done():
			return
		case first = <-m.queue:
		}
		if m.cfg.testApplyHook != nil {
			m.cfg.testApplyHook()
		}
		last := m.applyOps(first)
		// Greedy drain: coalesce everything already acked into this rebuild.
		for drained := false; !drained; {
			select {
			case b := <-m.queue:
				last = m.applyOps(b)
			default:
				drained = true
			}
		}
		if !m.rebuildWithRetry(ctx, &last) {
			return
		}
		batchesSinceCompact++
		if m.cfg.SnapshotPath != "" && batchesSinceCompact >= m.cfg.CompactEvery {
			m.compact(last)
			batchesSinceCompact = 0
		}
	}
}

// applyOps folds one acked batch into the dynamic graph and returns its
// sequence. Redundant operations (inserting an existing edge, deleting a
// missing one) are no-ops by dynamic-graph contract, which makes WAL replay
// idempotent across overlapping snapshots.
func (m *mutator) applyOps(b updateBatch) uint64 {
	for _, op := range b.ops {
		if op.Del {
			m.cfg.Dyn.DeleteEdge(op.U, op.V)
		} else if _, err := m.cfg.Dyn.InsertEdge(op.U, op.V); err != nil {
			// Validation rejects negative IDs and self-loops at admission,
			// so an error here is a WAL record from a future format — skip
			// the op rather than poison the applier.
			m.cfg.Logger.Warn("skipping unappliable op",
				slog.Int("u", int(op.U)), slog.Int("v", int(op.V)), slog.Any("err", err))
		}
	}
	return b.seq
}

// rebuildWithRetry drives rebuild to success with capped, jittered
// exponential backoff: a persistently failing rebuild sleeps instead of
// spinning the applier hot, and batches acked during the backoff are folded
// into the retry so the eventual publish covers them too. While the applier
// sleeps the queue fills and admission sheds with 429 — exactly the
// backpressure the write path already advertises. Returns false only when
// the context ended.
func (m *mutator) rebuildWithRetry(ctx context.Context, last *uint64) bool {
	backoff := m.cfg.RebuildBackoff
	for {
		err := m.rebuild(ctx, *last)
		if err == nil {
			return true
		}
		if ctx.Err() != nil {
			return false
		}
		cUpdateRebuildErrors.Inc()
		// Sleep a uniformly jittered duration in [backoff/2, backoff] so
		// co-failing appliers (or a failing dependency) don't see retries in
		// lockstep.
		sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		m.cfg.Logger.Error("index rebuild failed; backing off",
			slog.Any("err", err), slog.Uint64("seq", *last), slog.Duration("backoff", sleep))
		timer := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			timer.Stop()
			return false
		case <-timer.C:
		}
		for drained := false; !drained; {
			select {
			case b := <-m.queue:
				*last = m.applyOps(b)
			default:
				drained = true
			}
		}
		if backoff *= 2; backoff > m.cfg.RebuildBackoffMax {
			backoff = m.cfg.RebuildBackoffMax
		}
	}
}

// rebuild turns the applied mutations into a new published epoch: an
// incremental summary/hierarchy repair from the batch delta when the mode
// allows it, a from-scratch rebuild from the maintained trussness (no
// re-peeling) otherwise or on fallback.
func (m *mutator) rebuild(ctx context.Context, seq uint64) error {
	if err := faults.Inject(siteUpdate); err != nil {
		return err
	}
	start := time.Now()
	defer func() { hRebuild.Observe(time.Since(start)) }()
	if m.cfg.Mode != UpdateModeFull && m.tryIncremental(seq) {
		return nil
	}
	g, tau, err := m.cfg.Dyn.ToStatic()
	if err != nil {
		return err
	}
	sg, _, err := core.BuildCtx(ctx, g, tau, m.cfg.Variant, m.cfg.Threads, nil)
	if err != nil {
		return err
	}
	idx := community.NewIndex(g, sg)
	m.s.Publish(idx, seq)
	m.appliedSeq.Store(seq)
	cUpdateFullRebuilds.Inc()
	if m.cfg.Dyn.Tracking() {
		// The published epoch is the new delta base: close the window and
		// repoint the maintainer so the next drain can repair incrementally.
		m.cfg.Dyn.ResetDelta()
		m.maint = community.NewMaintainer(idx)
	}
	return nil
}

// tryIncremental attempts the delta repair and publishes on success. Any
// failure (region over budget in auto mode, or a repair invariant error)
// reports false and the caller falls back to the full rebuild — the delta
// window stays open until some publish succeeds, so no change is lost.
func (m *mutator) tryIncremental(seq uint64) bool {
	if m.maint == nil {
		// First drain since enabling: adopt the first published epoch as the
		// repair base — valid only if it matches the delta window's base
		// sequence exactly.
		if ep := m.s.epoch(); ep != nil && ep.seq == m.appliedSeq.Load() {
			m.maint = community.NewMaintainer(ep.idx)
		} else {
			return false
		}
	}
	budget := 0.0 // incremental mode: no region budget
	if m.cfg.Mode == UpdateModeAuto {
		budget = m.cfg.MaxDeltaFrac
	}
	delta := community.EdgeDelta(m.cfg.Dyn.Delta())
	idx, stats, err := m.maint.Apply(delta, budget)
	if err != nil {
		cUpdateIncrFallbacks.Inc()
		if errors.Is(err, community.ErrDeltaTooLarge) {
			m.cfg.Logger.Info("delta region over budget; full rebuild",
				slog.Uint64("seq", seq), slog.Int("delta_edges", delta.Size()))
		} else {
			m.cfg.Logger.Warn("incremental repair failed; falling back to full rebuild",
				slog.Any("err", err), slog.Uint64("seq", seq))
		}
		return false
	}
	m.s.Publish(idx, seq)
	m.appliedSeq.Store(seq)
	m.cfg.Dyn.ResetDelta()
	cUpdateIncrApplies.Inc()
	m.cfg.Logger.Debug("incremental repair published",
		slog.Uint64("seq", seq),
		slog.Int("region_edges", stats.RegionEdges),
		slog.Int("dirty_supernodes", stats.DirtySupernodes),
		slog.Int("kept_nodes", stats.KeptNodes),
		slog.Int("rebuilt_nodes", stats.RebuiltNodes))
	return true
}

// compact writes a snapshot of the applied state and truncates the WAL to
// the records past it. Both steps are fallible and both failure modes are
// safe: a failed snapshot leaves the old snapshot + full log (recovery just
// replays more), and a failed truncate leaves a longer log than needed.
func (m *mutator) compact(seq uint64) {
	g, tau, err := m.cfg.Dyn.ToStatic()
	if err != nil {
		cUpdateSnapshotErrors.Inc()
		m.cfg.Logger.Error("compaction snapshot failed", slog.Any("err", err))
		return
	}
	snap := &graphio.Snapshot{G: g, Tau: tau, Seq: seq}
	if err := graphio.WriteSnapshotFile(m.cfg.SnapshotPath, snap); err != nil {
		cUpdateSnapshotErrors.Inc()
		m.cfg.Logger.Error("compaction snapshot failed", slog.Any("err", err))
		return
	}
	if err := m.cfg.WAL.TruncateTo(seq); err != nil {
		m.cfg.Logger.Warn("WAL truncation after snapshot failed", slog.Any("err", err))
		return
	}
	m.cfg.Logger.Info("compacted",
		slog.Uint64("seq", seq), slog.Int64("wal_bytes", m.cfg.WAL.Size()))
}

// updateRequest is the POST /update body: a batch of edge insertions and
// deletions applied atomically with respect to sequencing (one WAL record,
// one sequence number).
type updateRequest struct {
	Ops []struct {
		Op string `json:"op,omitempty"` // "insert" (default) or "delete"
		U  int32  `json:"u"`
		V  int32  `json:"v"`
	} `json:"ops"`
}

// updateResponse acks a durably logged batch. Acked means the batch is in
// the WAL (fsynced under the always policy) and will be applied in sequence
// order; it does not mean the serving index reflects it yet — poll
// /healthz's applied_seq for that.
type updateResponse struct {
	Seq   uint64 `json:"seq"`
	Acked bool   `json:"acked"`
	Ops   int    `json:"ops"`
}

// admit is the serialized admission step: capacity check, WAL append,
// enqueue — all under mu so queue order equals sequence order. The deferred
// unlock keeps the mutex consistent even when the fault site panics (the
// recovery middleware converts that to a 500). Returns (seq, 0, "") on
// success or (0, httpStatus, message) on rejection.
func (m *mutator) admit(batch wal.Batch) (uint64, int, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == cap(m.queue) {
		return 0, http.StatusTooManyRequests,
			fmt.Sprintf("update queue full (%d batches pending)", cap(m.queue))
	}
	if err := faults.Inject(siteUpdate); err != nil {
		return 0, http.StatusServiceUnavailable, fmt.Sprintf("update aborted: %v", err)
	}
	seq, err := m.cfg.WAL.Append(batch)
	if err != nil {
		if errors.Is(err, wal.ErrPoisoned) {
			// Durability is unknowable past a failed fsync; refuse writes
			// until an operator restarts (which re-scans the log) but keep
			// answering queries from the published epoch.
			m.markDegraded("WAL poisoned: " + err.Error())
		}
		return 0, http.StatusServiceUnavailable, fmt.Sprintf("WAL append failed: %v", err)
	}
	m.ackedSeq.Store(seq)
	m.queue <- updateBatch{seq: seq, ops: batch} // cannot block: capacity checked under mu
	return seq, 0, ""
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	m := s.live
	if m == nil {
		s.fail(w, http.StatusNotFound, "live updates not enabled (serve with -wal)")
		return
	}
	start := time.Now()
	defer func() { hUpdate.Observe(time.Since(start)) }()
	if msg := m.degraded(); msg != "" {
		s.fail(w, http.StatusServiceUnavailable, "updates degraded: %s", msg)
		return
	}
	// Cap the body before decoding: MaxBatch only bounds allocation if it is
	// enforced before json.Decode materializes an arbitrarily long ops array.
	r.Body = http.MaxBytesReader(w, r.Body, int64(m.cfg.MaxBatch)*updateOpJSONBytes+1024)
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge,
				"body exceeds %d bytes (at most %d ops per update)", tooBig.Limit, m.cfg.MaxBatch)
			return
		}
		s.fail(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		s.fail(w, http.StatusBadRequest, "empty update")
		return
	}
	if len(req.Ops) > m.cfg.MaxBatch {
		s.fail(w, http.StatusRequestEntityTooLarge, "update of %d ops exceeds limit %d",
			len(req.Ops), m.cfg.MaxBatch)
		return
	}
	batch := make(wal.Batch, len(req.Ops))
	for i, op := range req.Ops {
		var del bool
		switch op.Op {
		case "", "insert":
		case "delete":
			del = true
		default:
			s.fail(w, http.StatusBadRequest, "op %d: unknown op %q", i, op.Op)
			return
		}
		if op.U < 0 || op.V < 0 || op.U > m.cfg.MaxVertexID || op.V > m.cfg.MaxVertexID {
			s.fail(w, http.StatusBadRequest, "op %d: vertex outside [0, %d]", i, m.cfg.MaxVertexID)
			return
		}
		if op.U == op.V {
			s.fail(w, http.StatusBadRequest, "op %d: self-loop %d-%d", i, op.U, op.V)
			return
		}
		batch[i] = wal.Op{Del: del, U: op.U, V: op.V}
	}

	seq, code, msg := m.admit(batch)
	if code != 0 {
		if code == http.StatusTooManyRequests {
			cUpdateShed.Inc()
			w.Header().Set("Retry-After", "1")
		}
		s.fail(w, code, "%s", msg)
		return
	}

	cUpdateRequests.Inc()
	cUpdateOps.Add(int64(len(batch)))
	writeJSON(w, http.StatusOK, updateResponse{Seq: seq, Acked: true, Ops: len(batch)})
}
