// Package server turns a built EquiTruss index into a concurrent HTTP/JSON
// community-query service — the serving shape the paper's fast index
// construction exists for: build (or load) once, then answer many
// personalized community lookups against the immutable summary graph.
//
// Endpoints:
//
//	GET  /community?v=<vertex>&k=<level>[&edges=1]  one community query
//	POST /batch                                     many queries, fanned out
//	GET  /healthz                                   liveness + index shape
//	GET  /metrics                                   Prometheus text exposition
//
// Three pieces make it safe under load: an LRU cache keyed by (vertex, k)
// with hit/miss counters in the obs registry, a bounded worker pool so a
// batch of 10k queries degrades to queueing rather than a goroutine flood,
// and graceful shutdown that drains in-flight requests with a timeout.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"equitruss/internal/community"
	"equitruss/internal/obs"
)

var (
	cCommunityRequests = obs.GetCounter("server_community_requests",
		"GET /community requests served")
	cBatchRequests = obs.GetCounter("server_batch_requests",
		"POST /batch requests served")
	cBatchQueries = obs.GetCounter("server_batch_queries",
		"individual queries answered inside /batch requests")
	cRequestErrors = obs.GetCounter("server_request_errors",
		"requests rejected with a 4xx/5xx status")
	cLatencyNS = obs.GetCounter("server_request_latency_ns",
		"cumulative wall nanoseconds spent serving /community and /batch requests")
)

// Config tunes a Server. The zero value picks sensible defaults.
type Config struct {
	// CacheSize is the LRU capacity in entries; 0 selects the default
	// (4096), negative disables caching.
	CacheSize int
	// Workers caps the goroutines concurrently executing queries across all
	// requests; <= 0 selects one per usable CPU.
	Workers int
	// MaxBatch caps the queries accepted by one /batch request; <= 0
	// selects the default (10000). Larger bodies get 413.
	MaxBatch int
	// Tracer, when non-nil, records one span per /community and /batch
	// request (items = queries answered). Spans accumulate unbounded, so
	// tracing is for diagnostic runs, not steady-state serving.
	Tracer *obs.Trace
}

const (
	defaultCacheSize = 4096
	defaultMaxBatch  = 10000
)

// Server answers community queries from one immutable index.
type Server struct {
	idx      *community.Index
	cache    *Cache
	pool     *Pool
	tr       *obs.Trace
	maxBatch int
	mux      *http.ServeMux

	// testHook, when set, runs inside every query computation — tests use
	// it to hold requests open across a shutdown.
	testHook func()
}

// New builds a Server over a query-ready index.
func New(idx *community.Index, cfg Config) *Server {
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = defaultCacheSize
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	s := &Server{
		idx:      idx,
		cache:    NewCache(cacheSize),
		pool:     NewPool(cfg.Workers),
		tr:       cfg.Tracer,
		maxBatch: maxBatch,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/community", s.handleCommunity)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the server's HTTP handler for embedding into an existing
// mux or an httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight requests drain for up to the
// drain timeout, and only then does the call return. onListen (optional)
// receives the bound address — how callers learn the port of ":0".
func (s *Server) ListenAndServe(ctx context.Context, addr string, drain time.Duration, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if drain <= 0 {
		drain = 10 * time.Second
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = hs.Shutdown(sctx)
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}

// communityDoc is one community in a JSON response.
type communityDoc struct {
	K        int32   `json:"k"`
	Size     int     `json:"size"`
	NumEdges int     `json:"num_edges"`
	Vertices []int32 `json:"vertices"`
	Edges    []int32 `json:"edges,omitempty"`
}

// queryDoc is the answer to one (vertex, k) lookup.
type queryDoc struct {
	Vertex      int32          `json:"vertex"`
	K           int32          `json:"k"`
	Count       int            `json:"count"`
	Cached      bool           `json:"cached"`
	Communities []communityDoc `json:"communities"`
}

func renderQuery(v, k int32, cs []*community.Community, cached, withEdges bool) queryDoc {
	doc := queryDoc{Vertex: v, K: k, Count: len(cs), Cached: cached, Communities: make([]communityDoc, len(cs))}
	for i, c := range cs {
		verts := c.Vertices()
		cd := communityDoc{K: c.K, Size: len(verts), NumEdges: len(c.Edges), Vertices: verts}
		if withEdges {
			cd.Edges = c.Edges
		}
		doc.Communities[i] = cd
	}
	return doc
}

// lookup answers one query through the cache, computing (and caching) on a
// miss under a reserved pool slot.
func (s *Server) lookup(ctx context.Context, v, k int32) ([]*community.Community, bool, error) {
	if cs, ok := s.cache.Get(v, k); ok {
		return cs, true, nil
	}
	got, err := s.pool.Reserve(ctx, 1)
	if err != nil {
		return nil, false, err
	}
	defer s.pool.Release(got)
	if s.testHook != nil {
		s.testHook()
	}
	cs := s.idx.Communities(v, k)
	s.cache.Put(v, k, cs)
	return cs, false, nil
}

func (s *Server) handleCommunity(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	span := s.tr.Start("HTTP /community")
	start := time.Now()
	cCommunityRequests.Inc()
	v, err := parseInt32(r.URL.Query().Get("v"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad v: %v", err)
		return
	}
	k, err := parseInt32(r.URL.Query().Get("k"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad k: %v", err)
		return
	}
	if v < 0 || v >= s.idx.G.NumVertices() {
		s.fail(w, http.StatusBadRequest, "vertex %d outside [0, %d)", v, s.idx.G.NumVertices())
		return
	}
	cs, cached, err := s.lookup(r.Context(), v, k)
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, "query aborted: %v", err)
		return
	}
	withEdges := r.URL.Query().Get("edges") != ""
	writeJSON(w, http.StatusOK, renderQuery(v, k, cs, cached, withEdges))
	cLatencyNS.Add(time.Since(start).Nanoseconds())
	span.EndItems(1)
}

// batchRequest is the POST /batch body.
type batchRequest struct {
	Queries []struct {
		V int32 `json:"v"`
		K int32 `json:"k"`
	} `json:"queries"`
	Edges bool `json:"edges,omitempty"`
}

type batchResponse struct {
	Results []queryDoc `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	span := s.tr.Start("HTTP /batch")
	start := time.Now()
	cBatchRequests.Inc()
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > s.maxBatch {
		s.fail(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d", len(req.Queries), s.maxBatch)
		return
	}
	n := s.idx.G.NumVertices()
	for i, q := range req.Queries {
		if q.V < 0 || q.V >= n {
			s.fail(w, http.StatusBadRequest, "query %d: vertex %d outside [0, %d)", i, q.V, n)
			return
		}
	}
	// Resolve cache hits first, then fan the misses out through
	// BatchCommunities with parallelism granted by the pool.
	results := make([][]*community.Community, len(req.Queries))
	cached := make([]bool, len(req.Queries))
	var missIdx []int
	var missQ []community.Query
	for i, q := range req.Queries {
		if cs, ok := s.cache.Get(q.V, q.K); ok {
			results[i] = cs
			cached[i] = true
			continue
		}
		missIdx = append(missIdx, i)
		missQ = append(missQ, community.Query{Vertex: q.V, K: q.K})
	}
	if len(missQ) > 0 {
		got, err := s.pool.Reserve(r.Context(), len(missQ))
		if err != nil {
			s.fail(w, http.StatusServiceUnavailable, "batch aborted: %v", err)
			return
		}
		if s.testHook != nil {
			s.testHook()
		}
		out := s.idx.BatchCommunities(missQ, got)
		s.pool.Release(got)
		for j, i := range missIdx {
			results[i] = out[j]
			s.cache.Put(missQ[j].Vertex, missQ[j].K, out[j])
		}
	}
	resp := batchResponse{Results: make([]queryDoc, len(req.Queries))}
	for i, q := range req.Queries {
		resp.Results[i] = renderQuery(q.V, q.K, results[i], cached[i], req.Edges)
	}
	writeJSON(w, http.StatusOK, resp)
	cBatchQueries.Add(int64(len(req.Queries)))
	cLatencyNS.Add(time.Since(start).Nanoseconds())
	span.EndItems(int64(len(req.Queries)))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"vertices":   s.idx.G.NumVertices(),
		"edges":      s.idx.G.NumEdges(),
		"supernodes": s.idx.SG.NumSupernodes(),
		"superedges": s.idx.SG.NumSuperedges(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w, obs.DefaultRegistry(), s.tr); err != nil {
		cRequestErrors.Inc()
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	cRequestErrors.Inc()
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(doc)
}

func parseInt32(s string) (int32, error) {
	if s == "" {
		return 0, fmt.Errorf("missing parameter")
	}
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, err
	}
	return int32(v), nil
}
