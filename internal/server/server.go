// Package server turns a built EquiTruss index into a concurrent HTTP/JSON
// community-query service — the serving shape the paper's fast index
// construction exists for: build (or load) once, then answer many
// personalized community lookups against the immutable summary graph.
//
// Endpoints:
//
//	GET  /community?v=<vertex>&k=<level>[&vertices=1][&edges=1]  one community query
//	POST /batch                                                  many queries, fanned out
//	GET  /membership?v=<vertex>                                  per-level community counts
//	GET  /healthz                                                liveness + index shape
//	GET  /metrics                                                Prometheus text exposition
//
// Queries are answered from the precomputed community hierarchy (built once
// at server construction): responses carry O(1) edge/vertex counts by
// default, and member vertex or edge lists are materialized only when the
// client opts in. Three pieces make it safe under load: an LRU cache keyed
// by (vertex, normalized k) holding compact community refs, a bounded
// worker pool so a batch of 10k queries degrades to queueing rather than a
// goroutine flood, and graceful shutdown that drains in-flight requests
// with a timeout.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"equitruss/internal/buildinfo"
	"equitruss/internal/community"
	"equitruss/internal/core"
	"equitruss/internal/faults"
	"equitruss/internal/obs"
	olog "equitruss/internal/obs/log"
)

var (
	cCommunityRequests = obs.GetCounter("server_community_requests",
		"GET /community requests served")
	cMembershipRequests = obs.GetCounter("server_membership_requests",
		"GET /membership requests served")
	cBatchRequests = obs.GetCounter("server_batch_requests",
		"POST /batch requests served")
	cBatchQueries = obs.GetCounter("server_batch_queries",
		"individual queries answered inside /batch requests")
	cBatchDeduped = obs.GetCounter("server_batch_deduped",
		"duplicate (vertex, k) queries collapsed inside /batch requests")
	cRequestErrors = obs.GetCounter("server_request_errors",
		"requests rejected with a 4xx/5xx status")
	cLoadShed = obs.GetCounter("server_load_shed",
		"requests rejected with 429 because the in-flight limit was reached")
	cPanicsRecovered = obs.GetCounter("server_panics_recovered",
		"handler panics converted to 500 responses by the recovery middleware")
	cLatencyNS = obs.GetCounter("server_request_latency_ns",
		"cumulative wall nanoseconds spent serving /community and /batch requests")
)

// Per-endpoint latency histograms: lock-free log2 buckets feeding the
// /metrics histogram families and their p50/p90/p99/p999 quantile digests.
var (
	hCommunity = obs.GetHistogram("server_community_request",
		"GET /community request latency")
	hBatch = obs.GetHistogram("server_batch_request",
		"POST /batch request latency")
	hMembership = obs.GetHistogram("server_membership_request",
		"GET /membership request latency")
)

// siteQuery is the fault-injection site on the query compute path; the
// chaos suite arms it with panics and errors to prove the server survives.
const siteQuery = "server.query"

// Config tunes a Server. The zero value picks sensible defaults.
type Config struct {
	// CacheSize is the LRU capacity in entries; 0 selects the default
	// (4096), negative disables caching.
	CacheSize int
	// Workers caps the goroutines concurrently executing queries across all
	// requests; <= 0 selects one per usable CPU.
	Workers int
	// MaxBatch caps the queries accepted by one /batch request; <= 0
	// selects the default (10000). Larger bodies get 413.
	MaxBatch int
	// MaxInFlight caps the /community and /batch requests admitted
	// concurrently; excess requests are shed immediately with 429 and a
	// Retry-After hint instead of queueing without bound. 0 selects the
	// default (256), negative disables the limit. /healthz and /metrics
	// are never shed, so liveness probes keep passing under overload.
	MaxInFlight int
	// RequestTimeout bounds each /community and /batch request: the
	// request context gets this deadline and the batch fan-out aborts
	// (503) when it expires. <= 0 means no server-imposed deadline.
	RequestTimeout time.Duration
	// Tracer, when non-nil, records one span per /community and /batch
	// request (items = queries answered). Spans accumulate unbounded, so
	// tracing is for diagnostic runs, not steady-state serving.
	Tracer *obs.Trace
	// SampleN records a full stage trace (parse → pool wait → cache →
	// hierarchy query → encode) for one in every SampleN requests. 0 selects
	// the default (64), 1 traces every request, negative disables sampling.
	SampleN int
	// SlowThreshold is the latency at or above which a request is retained
	// in the /debug/requests slow ring even when unsampled. 0 selects the
	// default (250ms), negative disables slow capture.
	SlowThreshold time.Duration
	// DebugRing is the capacity of each /debug/requests trace ring; 0
	// selects the default (64).
	DebugRing int
	// Logger receives one structured record per request (request_id,
	// vertex, k, status, duration, cache_hit). Nil selects the process-wide
	// olog logger. OK requests log at Debug; slow ones at Warn; 5xx at
	// Error — so an Info-level production logger stays quiet until
	// something is wrong.
	Logger *slog.Logger
	// IndexLoadSeconds is the wall time the operator's load path spent
	// getting the initial index query-ready (decode or mmap, through
	// validation). Purely informational — surfaced on /healthz and
	// /metrics so cold-start regressions are observable in production.
	IndexLoadSeconds float64
	// MmapBytes is the size of the memory-mapped index file backing the
	// initial index, or 0 when it was decoded onto the heap.
	MmapBytes int64
}

const (
	defaultCacheSize   = 4096
	defaultMaxBatch    = 10000
	defaultMaxInFlight = 256
)

// Server answers community queries from the current epoch's immutable
// index. Static servers publish one epoch at construction and never swap;
// live servers republish after each applied update batch.
type Server struct {
	cur        atomic.Pointer[epoch]
	live       *mutator // non-nil once EnableUpdates attached a WAL pipeline
	cache      *Cache
	pool       *Pool
	tr         *obs.Trace
	reqs       *obs.ReqTracker
	log        *slog.Logger
	maxBatch   int
	reqTimeout time.Duration
	inflight   chan struct{} // admission semaphore; nil = unlimited
	mux        *http.ServeMux
	handler    http.Handler // mux wrapped in the recovery middleware

	// Cold-start facts from Config, reported on /healthz and /metrics.
	indexLoadSeconds float64
	mmapBytes        int64

	// testHook, when set, runs inside every query computation — tests use
	// it to hold requests open across a shutdown.
	testHook func()
}

// New builds a Server over a query-ready index: a pending server with the
// index published as epoch 1.
func New(idx *community.Index, cfg Config) *Server {
	s := NewPending(cfg)
	s.Publish(idx, 0)
	return s
}

// NewPending builds a Server with no index published yet: every query
// endpoint answers 503 and /readyz reports not-ready until Publish swaps in
// the first epoch. Live serving uses this shape so the HTTP listener (and
// its probes) can come up while recovery replays the WAL.
func NewPending(cfg Config) *Server {
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = defaultCacheSize
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	logger := cfg.Logger
	if logger == nil {
		logger = olog.L()
	}
	s := &Server{
		cache: NewCache(cacheSize),
		pool:  NewPool(cfg.Workers),
		tr:    cfg.Tracer,
		reqs: obs.NewReqTracker(obs.ReqConfig{
			SampleN:       cfg.SampleN,
			SlowThreshold: cfg.SlowThreshold,
			RingSize:      cfg.DebugRing,
		}),
		log:              logger,
		maxBatch:         maxBatch,
		reqTimeout:       cfg.RequestTimeout,
		indexLoadSeconds: cfg.IndexLoadSeconds,
		mmapBytes:        cfg.MmapBytes,
	}
	obs.EnableRuntimeMetrics()
	if cfg.MaxInFlight >= 0 {
		n := cfg.MaxInFlight
		if n == 0 {
			n = defaultMaxInFlight
		}
		s.inflight = make(chan struct{}, n)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/community", s.limited(s.handleCommunity))
	s.mux.HandleFunc("/batch", s.limited(s.handleBatch))
	s.mux.HandleFunc("/membership", s.limited(s.handleMembership))
	s.mux.HandleFunc("/update", s.handleUpdate)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	// Probes bypass the admission limiter so readiness and liveness keep
	// answering under query overload; /update has its own backpressure (the
	// bounded update queue), so it is not admission-limited either.
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	// Diagnostics stay reachable under overload: like /healthz and
	// /metrics, /debug/requests bypasses the admission limiter.
	s.mux.HandleFunc("/debug/requests", s.handleDebugRequests)
	s.handler = s.recovered(s.mux)
	return s
}

// Close stops the live-update applier, if one is attached, and waits for it
// to finish the batch in progress. It does not close the WAL — the caller
// that opened it owns it. Safe to call on a static server (no-op) and more
// than once.
func (s *Server) Close() {
	if s.live != nil {
		s.live.close()
	}
}

// normalizeK clamps a client-supplied level to the query path's effective
// minimum, so k = -5, 0, and 3 — which all produce the identical answer —
// share one cache entry instead of fragmenting the LRU.
func normalizeK(k int32) int32 {
	if k < core.MinK {
		return core.MinK
	}
	return k
}

// Handler returns the server's HTTP handler for embedding into an existing
// mux or an httptest server.
func (s *Server) Handler() http.Handler { return s.handler }

// limited is the admission middleware for the query endpoints: it sheds
// load with 429 + Retry-After once MaxInFlight requests are being served,
// and imposes the per-request deadline on the request context. Shedding at
// the door costs one channel operation; the alternative — queueing without
// bound — turns overload into memory growth and timeout cascades.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				cLoadShed.Inc()
				w.Header().Set("Retry-After", "1")
				s.fail(w, http.StatusTooManyRequests, "server at capacity (%d requests in flight)", cap(s.inflight))
				return
			}
		}
		if s.reqTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// recovered converts a handler panic into a 500 response and a counter
// increment instead of killing the connection (and, for panics reached
// through the server's own goroutines, the process). The in-flight slot
// and pool slots are released by defers, so a panicking request leaks
// neither.
func (s *Server) recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				cPanicsRecovered.Inc()
				s.fail(w, http.StatusInternalServerError, "internal error: %v", p)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight requests drain for up to the
// drain timeout, and only then does the call return. onListen (optional)
// receives the bound address — how callers learn the port of ":0".
func (s *Server) ListenAndServe(ctx context.Context, addr string, drain time.Duration, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	hs := &http.Server{Handler: s.handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if drain <= 0 {
		drain = 10 * time.Second
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = hs.Shutdown(sctx)
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}

// communityDoc is one community in a JSON response. Size and NumEdges come
// from the hierarchy's precomputed per-community counts; Vertices and Edges
// are materialized only when the client opts in with vertices=1 / edges=1.
type communityDoc struct {
	K        int32   `json:"k"`
	Size     int     `json:"size"`
	NumEdges int     `json:"num_edges"`
	Vertices []int32 `json:"vertices,omitempty"`
	Edges    []int32 `json:"edges,omitempty"`
}

// queryDoc is the answer to one (vertex, k) lookup. K is the normalized
// level the query was answered (and cached) at.
type queryDoc struct {
	Vertex      int32          `json:"vertex"`
	K           int32          `json:"k"`
	Count       int            `json:"count"`
	Cached      bool           `json:"cached"`
	Communities []communityDoc `json:"communities"`
}

func renderQuery(v, k int32, refs []community.Ref, cached, withVertices, withEdges bool) queryDoc {
	doc := queryDoc{Vertex: v, K: k, Count: len(refs), Cached: cached, Communities: make([]communityDoc, len(refs))}
	for i, ref := range refs {
		cd := communityDoc{K: ref.K, Size: int(ref.NumVertices()), NumEdges: int(ref.NumEdges())}
		if withVertices || withEdges {
			c := ref.Community()
			if withVertices {
				cd.Vertices = c.Vertices()
			}
			if withEdges {
				cd.Edges = c.Edges
			}
		}
		doc.Communities[i] = cd
	}
	return doc
}

// lookup answers one query through the cache, computing (and caching) on a
// miss under a reserved pool slot. k must already be normalized. When ctx
// carries a sampled request, the cache probe, pool wait, and hierarchy
// query each record a stage in its trace.
func (s *Server) lookup(ctx context.Context, ep *epoch, v, k int32) ([]community.Ref, bool, error) {
	st := obs.StartStageFromContext(ctx, "cache lookup")
	refs, ok := s.cache.Get(ep.num, v, k)
	st.End()
	if ok {
		return refs, true, nil
	}
	st = obs.StartStageFromContext(ctx, "pool wait")
	got, err := s.pool.Reserve(ctx, 1)
	st.End()
	if err != nil {
		return nil, false, err
	}
	defer s.pool.Release(got)
	if s.testHook != nil {
		s.testHook()
	}
	if err := faults.Inject(siteQuery); err != nil {
		return nil, false, err
	}
	refs = ep.idx.CommunityRefsCtx(ctx, v, k)
	s.cache.Put(ep.num, v, k, refs)
	return refs, false, nil
}

// logReq emits the one structured record every tracked request produces,
// keyed by the same "req-<n>" ID /debug/requests reports. Severity scales
// with outcome: Debug for OK, Warn for 4xx or slow, Error for 5xx — and
// the Enabled check keeps disabled levels free of attribute construction.
func (s *Server) logReq(rq obs.Req, name string, status int, dur time.Duration, info obs.ReqInfo) {
	level := slog.LevelDebug
	if slow := s.reqs.SlowThreshold(); slow > 0 && dur >= slow {
		level = slog.LevelWarn
	}
	switch {
	case status >= 500:
		level = slog.LevelError
	case status >= 400:
		level = slog.LevelWarn
	}
	if !s.log.Enabled(context.Background(), level) {
		return
	}
	attrs := []slog.Attr{
		olog.ReqID(rq.IDString()),
		olog.Status(status),
		olog.Duration(dur),
		olog.Vertex(info.Vertex),
		olog.K(info.K),
		olog.CacheHit(info.CacheHit),
	}
	if info.Items > 0 {
		attrs = append(attrs, slog.Int("items", info.Items))
	}
	if info.Err != "" {
		attrs = append(attrs, slog.String("err", info.Err))
	}
	s.log.LogAttrs(context.Background(), level, name, attrs...)
}

func (s *Server) handleCommunity(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	span := s.tr.Start("HTTP /community")
	rq := s.reqs.Begin("/community")
	cCommunityRequests.Inc()
	status := http.StatusOK
	var info obs.ReqInfo
	defer func() {
		dur := rq.Finish(status, info)
		hCommunity.Observe(dur)
		cLatencyNS.Add(dur.Nanoseconds())
		s.logReq(rq, "GET /community", status, dur, info)
	}()
	failf := func(code int, format string, args ...any) {
		status = code
		info.Err = fmt.Sprintf(format, args...)
		s.fail(w, code, "%s", info.Err)
	}
	st := rq.StartStage("parse")
	v, errV := parseInt32(r.URL.Query().Get("v"))
	k, errK := parseInt32(r.URL.Query().Get("k"))
	withVertices := r.URL.Query().Get("vertices") != ""
	withEdges := r.URL.Query().Get("edges") != ""
	st.End()
	if errV != nil {
		failf(http.StatusBadRequest, "bad v: %v", errV)
		return
	}
	if errK != nil {
		failf(http.StatusBadRequest, "bad k: %v", errK)
		return
	}
	ep := s.epoch()
	if ep == nil {
		failf(http.StatusServiceUnavailable, "index not ready")
		return
	}
	if v < 0 || v >= ep.idx.G.NumVertices() {
		failf(http.StatusBadRequest, "vertex %d outside [0, %d)", v, ep.idx.G.NumVertices())
		return
	}
	k = normalizeK(k)
	info.Vertex, info.K = v, k
	refs, cached, err := s.lookup(rq.WithContext(r.Context()), ep, v, k)
	if err != nil {
		failf(http.StatusServiceUnavailable, "query aborted: %v", err)
		return
	}
	info.CacheHit = cached
	st = rq.StartStage("encode")
	writeJSON(w, http.StatusOK, renderQuery(v, k, refs, cached, withVertices, withEdges))
	st.End()
	span.EndItems(1)
}

// membershipDoc is the GET /membership response: the per-level overlapping
// community profile of one vertex, answered from the hierarchy without
// materializing any community.
type membershipDoc struct {
	Vertex     int32         `json:"vertex"`
	MaxK       int32         `json:"max_k"`
	Membership map[int32]int `json:"membership"`
}

func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	span := s.tr.Start("HTTP /membership")
	rq := s.reqs.Begin("/membership")
	cMembershipRequests.Inc()
	status := http.StatusOK
	var info obs.ReqInfo
	defer func() {
		dur := rq.Finish(status, info)
		hMembership.Observe(dur)
		cLatencyNS.Add(dur.Nanoseconds())
		s.logReq(rq, "GET /membership", status, dur, info)
	}()
	failf := func(code int, format string, args ...any) {
		status = code
		info.Err = fmt.Sprintf(format, args...)
		s.fail(w, code, "%s", info.Err)
	}
	st := rq.StartStage("parse")
	v, err := parseInt32(r.URL.Query().Get("v"))
	st.End()
	if err != nil {
		failf(http.StatusBadRequest, "bad v: %v", err)
		return
	}
	ep := s.epoch()
	if ep == nil {
		failf(http.StatusServiceUnavailable, "index not ready")
		return
	}
	if v < 0 || v >= ep.idx.G.NumVertices() {
		failf(http.StatusBadRequest, "vertex %d outside [0, %d)", v, ep.idx.G.NumVertices())
		return
	}
	info.Vertex = v
	if err := faults.Inject(siteQuery); err != nil {
		failf(http.StatusServiceUnavailable, "query aborted: %v", err)
		return
	}
	st = rq.StartStage("hierarchy query")
	doc := membershipDoc{
		Vertex:     v,
		MaxK:       ep.idx.MaxK(v),
		Membership: ep.idx.Membership(v),
	}
	st.End()
	st = rq.StartStage("encode")
	writeJSON(w, http.StatusOK, doc)
	st.End()
	span.EndItems(1)
}

// batchRequest is the POST /batch body.
type batchRequest struct {
	Queries []struct {
		V int32 `json:"v"`
		K int32 `json:"k"`
	} `json:"queries"`
	Vertices bool `json:"vertices,omitempty"`
	Edges    bool `json:"edges,omitempty"`
}

type batchResponse struct {
	Results []queryDoc `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	span := s.tr.Start("HTTP /batch")
	rq := s.reqs.Begin("/batch")
	cBatchRequests.Inc()
	status := http.StatusOK
	var info obs.ReqInfo
	defer func() {
		dur := rq.Finish(status, info)
		hBatch.Observe(dur)
		cLatencyNS.Add(dur.Nanoseconds())
		s.logReq(rq, "POST /batch", status, dur, info)
	}()
	failf := func(code int, format string, args ...any) {
		status = code
		info.Err = fmt.Sprintf(format, args...)
		s.fail(w, code, "%s", info.Err)
	}
	st := rq.StartStage("parse")
	var req batchRequest
	err := json.NewDecoder(r.Body).Decode(&req)
	st.End()
	if err != nil {
		failf(http.StatusBadRequest, "bad body: %v", err)
		return
	}
	info.Items = len(req.Queries)
	if len(req.Queries) == 0 {
		failf(http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > s.maxBatch {
		failf(http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d", len(req.Queries), s.maxBatch)
		return
	}
	ep := s.epoch()
	if ep == nil {
		failf(http.StatusServiceUnavailable, "index not ready")
		return
	}
	n := ep.idx.G.NumVertices()
	for i, q := range req.Queries {
		if q.V < 0 || q.V >= n {
			failf(http.StatusBadRequest, "query %d: vertex %d outside [0, %d)", i, q.V, n)
			return
		}
	}
	// Normalize every k up front, resolve cache hits, collapse duplicate
	// (vertex, k) misses to one computation each, then fan the survivors
	// out through BatchCommunityRefsCtx with parallelism granted by the
	// pool. Normalizing before the dedup key means k=0 and k=3 collapse to
	// one computation and one cache entry.
	norm := make([]int32, len(req.Queries))
	results := make([][]community.Ref, len(req.Queries))
	cached := make([]bool, len(req.Queries))
	var missIdx []int  // original query index of each miss
	var missSlot []int // which missQ entry answers it
	var missQ []community.Query
	slotOf := make(map[int64]int)
	deduped := int64(0)
	st = rq.StartStage("cache lookup")
	for i, q := range req.Queries {
		k := normalizeK(q.K)
		norm[i] = k
		if refs, ok := s.cache.Get(ep.num, q.V, k); ok {
			results[i] = refs
			cached[i] = true
			continue
		}
		key := int64(q.V)<<32 | int64(uint32(k))
		slot, ok := slotOf[key]
		if !ok {
			slot = len(missQ)
			slotOf[key] = slot
			missQ = append(missQ, community.Query{Vertex: q.V, K: k})
		} else {
			deduped++
		}
		missIdx = append(missIdx, i)
		missSlot = append(missSlot, slot)
	}
	st.End()
	if deduped > 0 {
		cBatchDeduped.Add(deduped)
	}
	if len(missQ) > 0 {
		ctx := rq.WithContext(r.Context())
		st = rq.StartStage("pool wait")
		got, err := s.pool.Reserve(ctx, len(missQ))
		st.End()
		if err != nil {
			failf(http.StatusServiceUnavailable, "batch aborted: %v", err)
			return
		}
		// Released by defer, not inline: a panic in the fan-out must not
		// leak pool slots past the recovery middleware.
		defer s.pool.Release(got)
		if s.testHook != nil {
			s.testHook()
		}
		if err := faults.Inject(siteQuery); err != nil {
			failf(http.StatusServiceUnavailable, "batch aborted: %v", err)
			return
		}
		out, err := ep.idx.BatchCommunityRefsCtx(ctx, missQ, got)
		if err != nil {
			failf(http.StatusServiceUnavailable, "batch aborted: %v", err)
			return
		}
		for j, i := range missIdx {
			slot := missSlot[j]
			results[i] = out[slot]
			s.cache.Put(ep.num, missQ[slot].Vertex, missQ[slot].K, out[slot])
		}
	}
	resp := batchResponse{Results: make([]queryDoc, len(req.Queries))}
	for i, q := range req.Queries {
		resp.Results[i] = renderQuery(q.V, norm[i], results[i], cached[i], req.Vertices, req.Edges)
	}
	st = rq.StartStage("encode")
	writeJSON(w, http.StatusOK, resp)
	st.End()
	cBatchQueries.Add(int64(len(req.Queries)))
	span.EndItems(int64(len(req.Queries)))
}

// handleHealthz is the liveness probe: always 200 while the process
// serves, even before the first epoch (readiness is /readyz's job). Beyond
// the index shape it reports the serving epoch, the update pipeline's
// acked-vs-applied sequence gap (staleness), and the canonical state
// checksums as hex strings — uint64 fingerprints would lose precision as
// JSON numbers.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := map[string]any{
		"status":             "ok",
		"revision":           buildinfo.Revision(),
		"index_load_seconds": s.indexLoadSeconds,
		"mmap_bytes":         s.mmapBytes,
	}
	if ep := s.epoch(); ep != nil {
		doc["epoch"] = ep.num
		doc["applied_seq"] = ep.seq
		doc["vertices"] = ep.idx.G.NumVertices()
		doc["edges"] = ep.idx.G.NumEdges()
		doc["supernodes"] = ep.idx.SG.NumSupernodes()
		doc["superedges"] = ep.idx.SG.NumSuperedges()
		doc["hierarchy_nodes"] = ep.idx.Hierarchy().NumNodes()
		doc["checksums"] = map[string]string{
			"tau":       fmt.Sprintf("%016x", ep.sums.Tau),
			"summary":   fmt.Sprintf("%016x", ep.sums.Summary),
			"hierarchy": fmt.Sprintf("%016x", ep.sums.Hierarchy),
		}
	} else {
		doc["epoch"] = 0
	}
	if m := s.live; m != nil {
		acked, applied := m.ackedSeq.Load(), m.appliedSeq.Load()
		doc["acked_seq"] = acked
		doc["applied_seq"] = applied
		doc["staleness"] = acked - applied
		doc["update_queue_depth"] = len(m.queue)
		doc["update_queue_cap"] = cap(m.queue)
		if msg := m.degraded(); msg != "" {
			doc["updates"] = "degraded: " + msg
		} else {
			doc["updates"] = "ok"
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// instanceGauges snapshots this server's own capacity state — pool
// occupancy, cache fill, admission slots. These live on the Server, not in
// the shared default registry, so two servers in one process (common in
// tests) never fight over one gauge.
func (s *Server) instanceGauges() []obs.GaugeValue {
	gauges := []obs.GaugeValue{
		{Name: "server_pool_in_use", Help: "query pool slots currently reserved", Value: float64(s.pool.InUse())},
		{Name: "server_pool_capacity", Help: "query pool slot capacity", Value: float64(s.pool.Cap())},
		{Name: "server_cache_entries", Help: "entries held by the community LRU cache", Value: float64(s.cache.Len())},
		{Name: "server_cache_capacity", Help: "capacity of the community LRU cache", Value: float64(s.cache.Cap())},
		{Name: "server_index_load_seconds", Help: "wall time spent making the initial index query-ready", Value: s.indexLoadSeconds},
		{Name: "server_mmap_bytes", Help: "bytes of index file memory-mapped into the serving path (0 for heap-decoded)", Value: float64(s.mmapBytes)},
	}
	if s.inflight != nil {
		gauges = append(gauges,
			obs.GaugeValue{Name: "server_inflight", Help: "query requests currently admitted", Value: float64(len(s.inflight))},
			obs.GaugeValue{Name: "server_inflight_limit", Help: "admission limit on concurrent query requests", Value: float64(cap(s.inflight))},
		)
	}
	if m := s.live; m != nil {
		acked, applied := m.ackedSeq.Load(), m.appliedSeq.Load()
		gauges = append(gauges,
			obs.GaugeValue{Name: "server_update_acked_seq", Help: "last WAL sequence durably acked to writers", Value: float64(acked)},
			obs.GaugeValue{Name: "server_update_applied_seq", Help: "last WAL sequence reflected in the serving epoch", Value: float64(applied)},
			obs.GaugeValue{Name: "server_update_staleness", Help: "update batches acked but not yet serving (acked - applied)", Value: float64(acked - applied)},
			obs.GaugeValue{Name: "server_update_queue_depth", Help: "acked update batches waiting for the applier", Value: float64(len(m.queue))},
			obs.GaugeValue{Name: "server_update_queue_capacity", Help: "update queue capacity before 429 shedding", Value: float64(cap(m.queue))},
		)
	}
	return gauges
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	err := obs.WritePrometheus(w, obs.DefaultRegistry(), s.tr)
	if err == nil {
		err = obs.WriteGauges(w, s.instanceGauges())
	}
	if err != nil {
		cRequestErrors.Inc()
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	cRequestErrors.Inc()
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(doc)
}

func parseInt32(s string) (int32, error) {
	if s == "" {
		return 0, fmt.Errorf("missing parameter")
	}
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, err
	}
	return int32(v), nil
}
