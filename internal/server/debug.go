package server

import (
	"net/http"
	"strconv"

	"equitruss/internal/obs"
)

// debugRequestsDoc is the GET /debug/requests response: the most recent
// slow/errored traces first (the ones an operator is hunting), then the
// rolling sample of ordinary requests, plus the tracker settings needed to
// interpret them.
type debugRequestsDoc struct {
	SampleN       int             `json:"sample_n"`
	SlowThreshold int64           `json:"slow_threshold_ns"`
	Slow          []*obs.ReqTrace `json:"slow"`
	Recent        []*obs.ReqTrace `json:"recent"`
}

// handleDebugRequests serves the retained request traces.
//
//	GET /debug/requests            both rings as JSON (newest first)
//	GET /debug/requests?n=10       at most 10 traces per ring
//	GET /debug/requests?id=7       one trace by request ID, as JSON
//	GET /debug/requests?id=7&format=chrome
//	                               that trace as Chrome trace-event JSON
//	                               (load in chrome://tracing or Perfetto)
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	if idStr := q.Get("id"); idStr != "" {
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad id: %v", err)
			return
		}
		t := s.reqs.Find(id)
		if t == nil {
			s.fail(w, http.StatusNotFound, "%s not retained (evicted or never sampled)", obs.FormatReqID(id))
			return
		}
		if q.Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", "attachment; filename="+obs.FormatReqID(id)+".trace.json")
			if err := obs.WriteReqChromeTrace(w, t); err != nil {
				cRequestErrors.Inc()
			}
			return
		}
		writeJSON(w, http.StatusOK, t)
		return
	}
	max := 0
	if nStr := q.Get("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, "bad n: %q", nStr)
			return
		}
		max = n
	}
	writeJSON(w, http.StatusOK, debugRequestsDoc{
		SampleN:       s.reqs.SampleN(),
		SlowThreshold: int64(s.reqs.SlowThreshold()),
		Slow:          s.reqs.Slow(max),
		Recent:        s.reqs.Recent(max),
	})
}
