package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"equitruss/internal/community"
	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/obs"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// buildTestIndex runs the full pipeline over a small synthetic graph and
// returns the query-ready index plus the trussness array for the direct
// oracle.
func buildTestIndex(t testing.TB) (*community.Index, []int32) {
	t.Helper()
	g := gen.RMAT(8, 6, 0.57, 0.19, 0.19, 42)
	sup := triangle.Supports(g, 0)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.BuildTraced(g, tau, core.VariantCOptimal, 0, nil)
	return community.NewIndex(g, sg), tau
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp
}

func TestCommunityEndpointMatchesOracle(t *testing.T) {
	idx, tau := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{}).Handler())
	defer ts.Close()
	checked := 0
	for v := int32(0); v < idx.G.NumVertices() && checked < 40; v++ {
		for _, k := range []int32{3, 4, 5} {
			want := community.DirectCommunities(idx.G, tau, v, k)
			var doc queryDoc
			resp := getJSON(t, ts, fmt.Sprintf("/community?v=%d&k=%d&edges=1", v, k), &doc)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("v=%d k=%d: status %d", v, k, resp.StatusCode)
			}
			if doc.Count != len(want) {
				t.Fatalf("v=%d k=%d: %d communities, oracle has %d", v, k, doc.Count, len(want))
			}
			community.CanonicalizeCommunities(want)
			for i, c := range doc.Communities {
				if fmt.Sprint(c.Edges) != fmt.Sprint(want[i].Edges) {
					t.Fatalf("v=%d k=%d community %d: edges %v, oracle %v", v, k, i, c.Edges, want[i].Edges)
				}
				if c.Size != len(want[i].Vertices()) {
					t.Fatalf("v=%d k=%d community %d: size %d, oracle %d", v, k, i, c.Size, len(want[i].Vertices()))
				}
			}
			if len(want) > 0 {
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no vertex with communities checked — graph too sparse for the test")
	}
}

func TestCommunityEndpointCachedFlag(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{}).Handler())
	defer ts.Close()
	var first, second queryDoc
	getJSON(t, ts, "/community?v=1&k=3", &first)
	getJSON(t, ts, "/community?v=1&k=3", &second)
	if first.Cached {
		t.Fatal("first lookup reported cached")
	}
	if !second.Cached {
		t.Fatal("second identical lookup not served from cache")
	}
}

func TestCommunityEndpointErrors(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{}).Handler())
	defer ts.Close()
	cases := []struct {
		path string
		want int
	}{
		{"/community", http.StatusBadRequest},                // no params
		{"/community?v=abc&k=3", http.StatusBadRequest},      // bad vertex
		{"/community?v=1&k=xyz", http.StatusBadRequest},      // bad k
		{"/community?v=-1&k=3", http.StatusBadRequest},       // negative vertex
		{"/community?v=99999999&k=3", http.StatusBadRequest}, // out of range
		{"/nosuchpath", http.StatusNotFound},
	}
	for _, c := range cases {
		resp := getJSON(t, ts, c.path, nil)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.path, resp.StatusCode, c.want)
		}
	}
	resp, err := ts.Client().Post(ts.URL+"/community", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /community: status %d, want 405", resp.StatusCode)
	}
}

func postBatch(t *testing.T, ts *httptest.Server, body string) (*http.Response, batchResponse) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("batch decode: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, out
}

func TestBatchEndpoint(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{Workers: 4}).Handler())
	defer ts.Close()
	// Duplicates included: the second occurrence may be answered from cache,
	// but results must align with the request order either way.
	body := `{"queries":[{"v":0,"k":3},{"v":1,"k":3},{"v":0,"k":3},{"v":2,"k":4}]}`
	resp, out := postBatch(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(out.Results) != 4 {
		t.Fatalf("batch results = %d, want 4", len(out.Results))
	}
	for i, want := range []struct{ v, k int32 }{{0, 3}, {1, 3}, {0, 3}, {2, 4}} {
		r := out.Results[i]
		if r.Vertex != want.v || r.K != want.k {
			t.Fatalf("result %d is (%d,%d), want (%d,%d)", i, r.Vertex, r.K, want.v, want.k)
		}
		if r.Count != len(idx.Communities(want.v, want.k)) {
			t.Fatalf("result %d count %d disagrees with direct index query", i, r.Count)
		}
	}
}

func TestBatchEndpointErrors(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{MaxBatch: 3}).Handler())
	defer ts.Close()
	if resp, _ := postBatch(t, ts, `{"queries":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", resp.StatusCode)
	}
	if resp, _ := postBatch(t, ts, `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d", resp.StatusCode)
	}
	if resp, _ := postBatch(t, ts, `{"queries":[{"v":-1,"k":3}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative vertex: status %d", resp.StatusCode)
	}
	over := `{"queries":[{"v":0,"k":3},{"v":1,"k":3},{"v":2,"k":3},{"v":3,"k":3}]}`
	if resp, _ := postBatch(t, ts, over); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d", resp.StatusCode)
	}
	resp := getJSON(t, ts, "/batch", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /batch: status %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{}).Handler())
	defer ts.Close()
	var doc struct {
		Status     string `json:"status"`
		Vertices   int64  `json:"vertices"`
		Edges      int64  `json:"edges"`
		Supernodes int64  `json:"supernodes"`
	}
	resp := getJSON(t, ts, "/healthz", &doc)
	if resp.StatusCode != http.StatusOK || doc.Status != "ok" {
		t.Fatalf("healthz: status %d, doc %+v", resp.StatusCode, doc)
	}
	if doc.Vertices != int64(idx.G.NumVertices()) || doc.Edges != idx.G.NumEdges() {
		t.Fatalf("healthz shape %+v disagrees with index", doc)
	}
}

func TestMetricsExposeCacheCounters(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{}).Handler())
	defer ts.Close()
	getJSON(t, ts, "/community?v=3&k=3", nil) // miss
	getJSON(t, ts, "/community?v=3&k=3", nil) // hit
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	io.Copy(&buf, resp.Body)
	body := buf.String()
	for _, want := range []string{
		"equitruss_server_cache_hits_total",
		"equitruss_server_cache_misses_total",
		"equitruss_server_community_requests_total",
		"equitruss_server_request_latency_ns_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	put := func(v int32) { c.Put(1, v, 3, nil) }
	put(1)
	put(2)
	if _, ok := c.Get(1, 1, 3); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	put(3) // evicts 2 (1 was just touched)
	if _, ok := c.Get(1, 2, 3); ok {
		t.Fatal("entry 2 survived eviction")
	}
	if _, ok := c.Get(1, 1, 3); !ok {
		t.Fatal("recently used entry 1 evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("cache len %d, want 2", c.Len())
	}
	// A disabled cache is a nil *Cache with no-op methods.
	var nilCache *Cache = NewCache(-1)
	nilCache.Put(1, 1, 3, nil)
	if _, ok := nilCache.Get(1, 1, 3); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if nilCache.Len() != 0 {
		t.Fatal("disabled cache has entries")
	}
}

func TestPoolReserve(t *testing.T) {
	p := NewPool(4)
	// An uncontended over-ask greedily takes every slot, never more.
	got, err := p.Reserve(context.Background(), 10)
	if err != nil || got != 4 {
		t.Fatalf("Reserve(10) = %d, %v; want all 4 slots", got, err)
	}
	// With all slots held, a waiter must respect context expiry.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Reserve(ctx, 1); err == nil {
		t.Fatal("Reserve succeeded on a full pool with an expiring context")
	}
	p.Release(1)
	// One free slot: a big ask gets exactly the one available (no blocking
	// for the rest — that is what makes concurrent batches deadlock-free).
	if n, err := p.Reserve(context.Background(), 8); err != nil || n != 1 {
		t.Fatalf("Reserve on one-free pool = %d, %v; want 1", n, err)
	}
	p.Release(4)
}

func TestGracefulShutdownDrainsInflight(t *testing.T) {
	idx, _ := buildTestIndex(t)
	s := New(idx, Config{})
	inHandler := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHook = func() {
		select {
		case inHandler <- struct{}{}:
		default:
		}
		<-release
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- s.ListenAndServe(ctx, "127.0.0.1:0", 5*time.Second, func(a net.Addr) {
			addrCh <- a.String()
		})
	}()
	addr := <-addrCh
	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/community?v=0&k=3")
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	<-inHandler // request is inside the handler, blocked on the hook
	cancel()    // begin graceful shutdown while the request is in flight
	select {
	case err := <-done:
		t.Fatalf("server returned (%v) before draining the in-flight request", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if code := <-reqDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain", code)
	}
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	// The listener must be closed now.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestCacheNormalizesK covers the cache-fragmentation fix: every k below
// core.MinK produces the identical answer, so k = -5, 0, 1, 2, 3 must share
// one LRU entry (and hit it after the first miss) instead of occupying five.
func TestCacheNormalizesK(t *testing.T) {
	idx, _ := buildTestIndex(t)
	s := New(idx, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	hitsBefore := cCacheHits.Value()
	for i, k := range []int32{-5, 0, 1, 2, 3} {
		var doc queryDoc
		getJSON(t, ts, fmt.Sprintf("/community?v=1&k=%d", k), &doc)
		if doc.K != core.MinK {
			t.Fatalf("k=%d: response k %d, want normalized %d", k, doc.K, core.MinK)
		}
		if wantCached := i > 0; doc.Cached != wantCached {
			t.Fatalf("k=%d: cached=%v, want %v", k, doc.Cached, wantCached)
		}
	}
	if n := s.cache.Len(); n != 1 {
		t.Fatalf("cache holds %d entries for one normalized query, want 1", n)
	}
	if got := cCacheHits.Value() - hitsBefore; got != 4 {
		t.Fatalf("cache hit counter grew by %d, want 4", got)
	}
	// Batch path must normalize too: a batch mixing raw levels for the same
	// vertex stays one cache entry and reports every query cached.
	body := `{"queries":[{"v":1,"k":-2},{"v":1,"k":0},{"v":1,"k":3}]}`
	resp, err := ts.Client().Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /batch: %v", err)
	}
	defer resp.Body.Close()
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i, r := range br.Results {
		if r.K != core.MinK || !r.Cached {
			t.Fatalf("batch result %d: k=%d cached=%v, want k=%d cached=true", i, r.K, r.Cached, core.MinK)
		}
	}
	if n := s.cache.Len(); n != 1 {
		t.Fatalf("cache holds %d entries after batch, want 1", n)
	}
}

// TestMembershipEndpoint checks the cheap per-vertex profile endpoint
// against the BFS oracle and its error handling.
func TestMembershipEndpoint(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{}).Handler())
	defer ts.Close()
	checked := 0
	for v := int32(0); v < idx.G.NumVertices() && checked < 25; v++ {
		var doc membershipDoc
		resp := getJSON(t, ts, fmt.Sprintf("/membership?v=%d", v), &doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("v=%d: status %d", v, resp.StatusCode)
		}
		want := idx.MembershipBFS(v)
		if doc.MaxK != idx.MaxK(v) {
			t.Fatalf("v=%d: max_k %d, want %d", v, doc.MaxK, idx.MaxK(v))
		}
		if len(doc.Membership) != len(want) {
			t.Fatalf("v=%d: profile %v, oracle %v", v, doc.Membership, want)
		}
		for k, n := range want {
			if doc.Membership[k] != n {
				t.Fatalf("v=%d k=%d: count %d, oracle %d", v, k, doc.Membership[k], n)
			}
		}
		if len(want) > 0 {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no vertex with a non-empty profile checked")
	}
	for _, c := range []struct {
		path string
		want int
	}{
		{"/membership", http.StatusBadRequest},
		{"/membership?v=abc", http.StatusBadRequest},
		{"/membership?v=-1", http.StatusBadRequest},
		{"/membership?v=99999999", http.StatusBadRequest},
	} {
		if resp := getJSON(t, ts, c.path, nil); resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.path, resp.StatusCode, c.want)
		}
	}
}

// TestCommunityVerticesParam checks that vertex lists are omitted by default
// (counts come from the hierarchy) and materialized on vertices=1.
func TestCommunityVerticesParam(t *testing.T) {
	idx, tau := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{}).Handler())
	defer ts.Close()
	var v int32 = -1
	for u := int32(0); u < idx.G.NumVertices(); u++ {
		if len(community.DirectCommunities(idx.G, tau, u, 3)) > 0 {
			v = u
			break
		}
	}
	if v < 0 {
		t.Skip("no vertex with communities")
	}
	var plain, withV queryDoc
	getJSON(t, ts, fmt.Sprintf("/community?v=%d&k=3", v), &plain)
	getJSON(t, ts, fmt.Sprintf("/community?v=%d&k=3&vertices=1", v), &withV)
	want := community.CanonicalizeCommunities(community.DirectCommunities(idx.G, tau, v, 3))
	for i, c := range plain.Communities {
		if c.Vertices != nil {
			t.Fatalf("community %d: vertices present without vertices=1", i)
		}
		if c.Size != len(want[i].Vertices()) {
			t.Fatalf("community %d: size %d, oracle %d", i, c.Size, len(want[i].Vertices()))
		}
	}
	for i, c := range withV.Communities {
		if fmt.Sprint(c.Vertices) != fmt.Sprint(want[i].Vertices()) {
			t.Fatalf("community %d: vertices %v, oracle %v", i, c.Vertices, want[i].Vertices())
		}
	}
}

// TestCachePurgeBelow is the stale-epoch regression: entries cached under a
// retired epoch are unreachable through Get (the key carries the epoch) but
// used to sit in the LRU until natural rollover, pinning the old epoch's
// index storage. PurgeBelow must drop exactly the stale entries.
func TestCachePurgeBelow(t *testing.T) {
	c := NewCache(8)
	for v := int32(0); v < 3; v++ {
		c.Put(1, v, 3, nil)
	}
	c.Put(2, 0, 3, nil)
	evBefore := obs.GetCounter("server_cache_evictions", "").Value()
	if got := c.PurgeBelow(2); got != 3 {
		t.Fatalf("PurgeBelow removed %d entries, want 3", got)
	}
	if c.Len() != 1 {
		t.Fatalf("cache len %d after purge, want 1", c.Len())
	}
	if _, ok := c.Get(2, 0, 3); !ok {
		t.Fatal("current-epoch entry lost in purge")
	}
	if _, ok := c.Get(1, 0, 3); ok {
		t.Fatal("stale entry survived purge")
	}
	if d := obs.GetCounter("server_cache_evictions", "").Value() - evBefore; d != 3 {
		t.Fatalf("evictions counter advanced by %d, want 3", d)
	}
	if got := c.PurgeBelow(2); got != 0 {
		t.Fatalf("second purge removed %d entries, want 0", got)
	}
	var nilCache *Cache
	if got := nilCache.PurgeBelow(9); got != 0 {
		t.Fatal("nil cache purge did something")
	}
}

// TestPublishPurgesStaleCacheEntries checks the server-level wiring: after
// Publish swaps in a new epoch, the previous epoch's cached answers are
// gone from the LRU, not merely unreachable.
func TestPublishPurgesStaleCacheEntries(t *testing.T) {
	g := gen.Clique(5)
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, 1)
	s := New(community.NewIndex(g, sg), Config{CacheSize: 16})
	ep := s.epoch().num
	s.cache.Put(ep, 0, 5, nil)
	s.cache.Put(ep, 1, 5, nil)
	if s.cache.Len() != 2 {
		t.Fatalf("cache len %d before publish, want 2", s.cache.Len())
	}
	s.Publish(community.NewIndex(g, sg), 0)
	if s.cache.Len() != 0 {
		t.Fatalf("cache holds %d stale entries after publish, want 0", s.cache.Len())
	}
}
