package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"equitruss/internal/faults"
)

// waitGoroutines polls until the goroutine count drops back to base,
// failing with a full stack dump if it never does — the leak assertion
// used by the shutdown and chaos tests.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d running, %d at baseline\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLoadShedReturns429WithRetryAfter(t *testing.T) {
	idx, _ := buildTestIndex(t)
	s := New(idx, Config{MaxInFlight: 1})
	inHandler := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHook = func() {
		select {
		case inHandler <- struct{}{}:
		default:
		}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(release)

	shedBefore := cLoadShed.Value()
	firstDone := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/community?v=0&k=3")
		if err != nil {
			firstDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-inHandler // first request occupies the single in-flight slot

	resp := getJSON(t, ts, "/community?v=1&k=3", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request got %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if got := cLoadShed.Value() - shedBefore; got != 1 {
		t.Fatalf("load-shed counter moved by %d, want 1", got)
	}
	release <- struct{}{}
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("admitted request finished with %d", code)
	}
	// Slot freed: the endpoint admits again (answer comes from cache now,
	// so no testHook involvement).
	if resp := getJSON(t, ts, "/community?v=0&k=3", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("request after shed window got %d, want 200", resp.StatusCode)
	}
}

func TestPanicInQueryBecomes500AndLeaksNothing(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{MaxInFlight: 2, Workers: 2}).Handler())
	defer ts.Close()

	faults.Enable(7)
	defer faults.Disable()
	faults.Set("server.query", faults.Plan{Action: faults.Panic, Every: 1, MaxFires: 2})

	panicsBefore := cPanicsRecovered.Value()
	if resp := getJSON(t, ts, "/community?v=0&k=3", nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("community with armed panic got %d, want 500", resp.StatusCode)
	}
	if resp, _ := postBatch(t, ts, `{"queries":[{"v":1,"k":3}]}`); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("batch with armed panic got %d, want 500", resp.StatusCode)
	}
	if got := cPanicsRecovered.Value() - panicsBefore; got != 2 {
		t.Fatalf("panic counter moved by %d, want 2", got)
	}

	// The panicking requests must have released their pool and in-flight
	// slots on the way out: with MaxInFlight == 2 and Workers == 2, these
	// follow-ups would starve or shed if anything leaked. MaxFires == 2 is
	// already spent, so the site no longer fires.
	if resp := getJSON(t, ts, "/community?v=0&k=3", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("community after recovered panic got %d, want 200", resp.StatusCode)
	}
	resp, out := postBatch(t, ts, `{"queries":[{"v":1,"k":3},{"v":2,"k":3}]}`)
	if resp.StatusCode != http.StatusOK || len(out.Results) != 2 {
		t.Fatalf("batch after recovered panic: status %d, %d results", resp.StatusCode, len(out.Results))
	}
}

func TestInjectedErrorInQueryBecomes503(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{}).Handler())
	defer ts.Close()

	faults.Enable(11)
	defer faults.Disable()
	faults.Set("server.query", faults.Plan{Action: faults.Error, Every: 1, MaxFires: 1})
	if resp := getJSON(t, ts, "/community?v=0&k=3", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("community with armed error got %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts, "/community?v=0&k=3", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("community after spent fault got %d, want 200", resp.StatusCode)
	}
}

func TestBatchDedupCollapsesDuplicateQueries(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{Workers: 2}).Handler())
	defer ts.Close()

	dedupBefore := cBatchDeduped.Value()
	// Four queries, two distinct (v, k) pairs, nothing cached yet: the two
	// repeats must collapse onto the first computation of their pair.
	body := `{"queries":[{"v":5,"k":3},{"v":5,"k":3},{"v":6,"k":3},{"v":5,"k":3}]}`
	resp, out := postBatch(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if got := cBatchDeduped.Value() - dedupBefore; got != 2 {
		t.Fatalf("dedup counter moved by %d, want 2", got)
	}
	if len(out.Results) != 4 {
		t.Fatalf("batch results = %d, want 4", len(out.Results))
	}
	for i, want := range []struct{ v, k int32 }{{5, 3}, {5, 3}, {6, 3}, {5, 3}} {
		r := out.Results[i]
		if r.Vertex != want.v || r.K != want.k {
			t.Fatalf("result %d is (%d,%d), want (%d,%d)", i, r.Vertex, r.K, want.v, want.k)
		}
		if r.Count != len(idx.Communities(want.v, want.k)) {
			t.Fatalf("result %d count %d disagrees with direct index query", i, r.Count)
		}
	}
	if fmt.Sprint(out.Results[0]) != fmt.Sprint(out.Results[1]) {
		t.Fatal("deduplicated queries returned different answers")
	}
}

func TestRequestTimeoutAbortsBatch(t *testing.T) {
	idx, _ := buildTestIndex(t)
	s := New(idx, Config{RequestTimeout: 25 * time.Millisecond})
	// Hold the request past its deadline between slot reservation and the
	// fan-out: BatchCommunitiesCtx must then observe the expired context.
	s.testHook = func() { time.Sleep(80 * time.Millisecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := postBatch(t, ts, `{"queries":[{"v":0,"k":3}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out batch got %d, want 503", resp.StatusCode)
	}
	// Without the hook delay the same server answers fine inside the budget.
	s.testHook = nil
	resp, out := postBatch(t, ts, `{"queries":[{"v":0,"k":3}]}`)
	if resp.StatusCode != http.StatusOK || len(out.Results) != 1 {
		t.Fatalf("in-budget batch: status %d, %d results", resp.StatusCode, len(out.Results))
	}
}

func TestHealthzNeverShed(t *testing.T) {
	idx, _ := buildTestIndex(t)
	s := New(idx, Config{MaxInFlight: 1})
	release := make(chan struct{})
	inHandler := make(chan struct{}, 1)
	s.testHook = func() {
		select {
		case inHandler <- struct{}{}:
		default:
		}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(release)
	go ts.Client().Get(ts.URL + "/community?v=0&k=3")
	<-inHandler
	// Query capacity exhausted; the liveness and metrics endpoints must
	// still answer so probes and scrapes keep working under overload.
	if resp := getJSON(t, ts, "/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz shed with %d during overload", resp.StatusCode)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics shed with %d during overload", resp.StatusCode)
	}
}

// TestCacheConcurrentHammer drives the LRU from 32 goroutines; under -race
// this proves the cache's locking covers every Get/Put/Len interleaving,
// including constant eviction pressure from a capacity far below the
// working set.
func TestCacheConcurrentHammer(t *testing.T) {
	c := NewCache(64)
	const goroutines = 32
	const opsEach = 2000
	var wg sync.WaitGroup
	for gid := 0; gid < goroutines; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				v := int32((gid*opsEach + i) % 512)
				k := int32(3 + i%4)
				switch i % 3 {
				case 0:
					c.Put(1, v, k, nil)
				case 1:
					c.Get(1, v, k)
				default:
					c.Len()
				}
			}
		}(gid)
	}
	wg.Wait()
	if n := c.Len(); n > 64 {
		t.Fatalf("cache grew past capacity: %d > 64", n)
	}
}

func TestServerShutdownLeavesNoGoroutines(t *testing.T) {
	idx, _ := buildTestIndex(t)
	base := runtime.NumGoroutine()
	s := New(idx, Config{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- s.ListenAndServe(ctx, "127.0.0.1:0", 5*time.Second, func(a net.Addr) {
			addrCh <- a.String()
		})
	}()
	addr := <-addrCh
	client := &http.Client{Transport: &http.Transport{}}
	for v := 0; v < 8; v++ {
		resp, err := client.Get(fmt.Sprintf("http://%s/community?v=%d&k=3", addr, v))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown returned %v", err)
	}
	client.CloseIdleConnections()
	waitGoroutines(t, base)
}
