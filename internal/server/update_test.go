package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"equitruss/internal/community"
	"equitruss/internal/core"
	"equitruss/internal/dynamic"
	"equitruss/internal/faults"
	"equitruss/internal/gen"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
	"equitruss/internal/wal"
)

// newLiveServer builds a live server: epoch 1 published over a generated
// graph, WAL in a temp dir, update pipeline attached. mutate customizes
// the LiveConfig.
func newLiveServer(t *testing.T, scale string, mutate func(*LiveConfig)) (*Server, *httptest.Server) {
	t.Helper()
	var g = gen.Clique(5)
	if scale == "rmat" {
		g = gen.RMAT(8, 6, 0.57, 0.19, 0.19, 42)
	}
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantSerial, 1)
	w, err := wal.Open(filepath.Join(t.TempDir(), "wal.log"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewPending(Config{})
	s.Publish(community.NewIndex(g, sg), 0)
	lc := LiveConfig{WAL: w, Dyn: dynamic.FromStatic(g, tau), Threads: 1}
	if mutate != nil {
		mutate(&lc)
	}
	if err := s.EnableUpdates(lc); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		w.Close()
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postUpdate(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/update", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	json.NewDecoder(resp.Body).Decode(&doc)
	return resp, doc
}

// waitApplied polls /healthz until applied_seq reaches seq.
func waitApplied(t *testing.T, ts *httptest.Server, seq uint64) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var doc map[string]any
		getJSON(t, ts, "/healthz", &doc)
		if applied, ok := doc["applied_seq"].(float64); ok && uint64(applied) >= seq {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("applied_seq never reached %d: %v", seq, doc)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestUpdateAcksAndApplies: an insert batch is acked with the next WAL
// sequence, the applier publishes a new epoch, and queries see the change.
func TestUpdateAcksAndApplies(t *testing.T) {
	_, ts := newLiveServer(t, "clique", nil)
	// Grow the 5-clique to a 6-clique: vertex 5 joins everyone.
	resp, doc := postUpdate(t, ts,
		`{"ops":[{"u":5,"v":0},{"u":5,"v":1},{"u":5,"v":2},{"u":5,"v":3},{"u":5,"v":4}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d: %v", resp.StatusCode, doc)
	}
	if doc["seq"].(float64) != 1 || doc["acked"] != true {
		t.Fatalf("bad ack: %v", doc)
	}
	health := waitApplied(t, ts, 1)
	if health["epoch"].(float64) < 2 {
		t.Fatalf("epoch did not advance: %v", health)
	}
	// The new vertex is now queryable and lands in the 6-clique's k=6 truss.
	var q queryDoc
	r := getJSON(t, ts, "/community?v=5&k=6", &q)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("query after update: status %d", r.StatusCode)
	}
	if q.Count != 1 || q.Communities[0].Size != 6 {
		t.Fatalf("vertex 5 not in the grown clique: %+v", q)
	}
}

// TestCacheInvalidatedAcrossEpochs is the satellite regression test: a
// cached (vertex, k) answer from the pre-update epoch must not be returned
// after the update publishes a new epoch.
func TestCacheInvalidatedAcrossEpochs(t *testing.T) {
	_, ts := newLiveServer(t, "clique", nil)
	// Prime the cache: the 5-clique has one k=5 community holding vertex 0.
	var before queryDoc
	getJSON(t, ts, "/community?v=0&k=5", &before)
	if before.Count != 1 {
		t.Fatalf("expected one k=5 community before update, got %+v", before)
	}
	var primed queryDoc
	getJSON(t, ts, "/community?v=0&k=5", &primed)
	if !primed.Cached {
		t.Fatal("second identical query should be a cache hit")
	}
	// Delete two edges; the k=5 truss collapses.
	resp, _ := postUpdate(t, ts,
		`{"ops":[{"op":"delete","u":3,"v":4},{"op":"delete","u":2,"v":4}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	waitApplied(t, ts, 1)
	var after queryDoc
	getJSON(t, ts, "/community?v=0&k=5", &after)
	if after.Cached {
		t.Fatal("stale pre-update cache entry served after epoch swap")
	}
	if after.Count != 0 {
		t.Fatalf("k=5 community should be gone after deletions, got %+v", after)
	}
}

// TestUpdateBackpressure: with the applier held and the queue full, the
// next update is shed with 429 + Retry-After instead of queueing unbounded.
func TestUpdateBackpressure(t *testing.T) {
	release := make(chan struct{})
	hold := make(chan struct{}, 8)
	_, ts := newLiveServer(t, "clique", func(lc *LiveConfig) {
		lc.QueueDepth = 1
		lc.testApplyHook = func() {
			hold <- struct{}{}
			<-release
		}
	})
	defer close(release)
	// First update: dequeued by the applier, which then blocks in the hook.
	resp, _ := postUpdate(t, ts, `{"ops":[{"u":5,"v":0}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update 1 status %d", resp.StatusCode)
	}
	<-hold // applier is now holding batch 1
	// Second update: sits in the queue (depth 1).
	resp, _ = postUpdate(t, ts, `{"ops":[{"u":5,"v":1}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update 2 status %d", resp.StatusCode)
	}
	// Third update: queue full — shed.
	resp, doc := postUpdate(t, ts, `{"ops":[{"u":5,"v":2}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d: %v", resp.StatusCode, doc)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var health map[string]any
	getJSON(t, ts, "/healthz", &health)
	if health["staleness"].(float64) < 1 {
		t.Fatalf("staleness should be positive with a held applier: %v", health)
	}
}

// TestUpdateValidation: malformed bodies and invalid operations are
// rejected before anything reaches the WAL.
func TestUpdateValidation(t *testing.T) {
	s, ts := newLiveServer(t, "clique", func(lc *LiveConfig) {
		lc.MaxBatch = 2
		lc.MaxVertexID = 100
	})
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"garbage", `{`, http.StatusBadRequest},
		{"empty", `{"ops":[]}`, http.StatusBadRequest},
		{"self-loop", `{"ops":[{"u":1,"v":1}]}`, http.StatusBadRequest},
		{"negative", `{"ops":[{"u":-1,"v":2}]}`, http.StatusBadRequest},
		{"huge-vertex", `{"ops":[{"u":1,"v":101}]}`, http.StatusBadRequest},
		{"bad-op", `{"ops":[{"op":"upsert","u":1,"v":2}]}`, http.StatusBadRequest},
		{"oversize", `{"ops":[{"u":5,"v":0},{"u":5,"v":1},{"u":5,"v":2}]}`, http.StatusRequestEntityTooLarge},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, doc := postUpdate(t, ts, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %v", resp.StatusCode, tc.status, doc)
			}
		})
	}
	if got := s.live.cfg.WAL.LastSeq(); got != 0 {
		t.Fatalf("rejected updates reached the WAL: LastSeq = %d", got)
	}
	// GET is not allowed.
	resp, err := ts.Client().Get(ts.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /update: status %d", resp.StatusCode)
	}
}

// TestUpdateBodySizeCapped: the body is bounded before JSON decoding, so a
// request with vastly more ops than MaxBatch (or an arbitrarily large body
// of any shape) is cut off at the reader instead of being materialized.
func TestUpdateBodySizeCapped(t *testing.T) {
	s, ts := newLiveServer(t, "clique", func(lc *LiveConfig) { lc.MaxBatch = 2 })
	var huge bytes.Buffer
	huge.WriteString(`{"ops":[`)
	for i := 0; i < 10000; i++ {
		if i > 0 {
			huge.WriteByte(',')
		}
		fmt.Fprintf(&huge, `{"u":%d,"v":%d}`, i, i+1)
	}
	huge.WriteString(`]}`)
	for _, tc := range []struct{ name, body string }{
		{"too-many-ops", huge.String()},
		{"giant-padding", `{"pad":"` + string(bytes.Repeat([]byte{'x'}, 1<<20)) + `","ops":[{"u":1,"v":2}]}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, doc := postUpdate(t, ts, tc.body)
			if resp.StatusCode != http.StatusRequestEntityTooLarge {
				t.Fatalf("status %d, want 413: %v", resp.StatusCode, doc)
			}
		})
	}
	if got := s.live.cfg.WAL.LastSeq(); got != 0 {
		t.Fatalf("rejected oversized updates reached the WAL: LastSeq = %d", got)
	}
}

// TestDefaultMaxVertexID: the default is 2·|V| floored at 1<<20 — computed
// in int64 so graphs past 2^30 vertices clamp to MaxInt32 instead of
// overflowing negative and collapsing to the floor.
func TestDefaultMaxVertexID(t *testing.T) {
	for _, tc := range []struct{ n, want int32 }{
		{0, 1 << 20},
		{5, 1 << 20},
		{1 << 20, 1 << 21},
		{1 << 30, (1 << 31) - 1},       // 2·n == 2^31 overflows int32: clamp
		{(1 << 31) - 1, (1 << 31) - 1}, // max |V|: clamp, not negative
	} {
		if got := defaultMaxVertexID(tc.n); got != tc.want {
			t.Fatalf("defaultMaxVertexID(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestUpdateOnStaticServer: without EnableUpdates, POST /update is 404 and
// everything else is unaffected.
func TestUpdateOnStaticServer(t *testing.T) {
	idx, _ := buildTestIndex(t)
	ts := httptest.NewServer(New(idx, Config{}).Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/update", "application/json",
		bytes.NewBufferString(`{"ops":[{"u":1,"v":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("static /update: status %d, want 404", resp.StatusCode)
	}
}

// TestReadyzGating: a pending server reports not-ready and answers queries
// with 503; publishing flips both, and /readyz stays outside the admission
// limiter.
func TestReadyzGating(t *testing.T) {
	s := NewPending(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := getJSON(t, ts, "/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pending /readyz: status %d, want 503", resp.StatusCode)
	}
	resp = getJSON(t, ts, "/community?v=0&k=3", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pending /community: status %d, want 503", resp.StatusCode)
	}
	// Liveness stays 200 with epoch 0 while pending.
	var health map[string]any
	if resp = getJSON(t, ts, "/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("pending /healthz: status %d, want 200", resp.StatusCode)
	}
	if health["epoch"].(float64) != 0 {
		t.Fatalf("pending epoch: %v", health["epoch"])
	}
	idx, _ := buildTestIndex(t)
	s.Publish(idx, 0)
	var ready map[string]any
	if resp = getJSON(t, ts, "/readyz", &ready); resp.StatusCode != http.StatusOK {
		t.Fatalf("published /readyz: status %d, want 200", resp.StatusCode)
	}
	if ready["epoch"].(float64) != 1 {
		t.Fatalf("first publish should be epoch 1: %v", ready)
	}
	if resp = getJSON(t, ts, "/community?v=0&k=3", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("published /community: status %d", resp.StatusCode)
	}
	// Checksums are hex strings in healthz once published.
	getJSON(t, ts, "/healthz", &health)
	sums, ok := health["checksums"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing checksums: %v", health)
	}
	for _, layer := range []string{"tau", "summary", "hierarchy"} {
		hex, ok := sums[layer].(string)
		if !ok || len(hex) != 16 {
			t.Fatalf("checksum %s not a 16-char hex string: %v", layer, sums[layer])
		}
	}
}

// TestUpdateRecoveryDifferential: acked updates survive abandoning the
// server — reopening the WAL and replaying over the same base reproduces
// the exact published state, checksum for checksum.
func TestUpdateRecoveryDifferential(t *testing.T) {
	g := gen.RMAT(8, 6, 0.57, 0.19, 0.19, 42)
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantSerial, 1)
	walPath := filepath.Join(t.TempDir(), "wal.log")
	w, err := wal.Open(walPath, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewPending(Config{})
	s.Publish(community.NewIndex(g, sg), 0)
	if err := s.EnableUpdates(LiveConfig{WAL: w, Dyn: dynamic.FromStatic(g, tau), Threads: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	n := g.NumVertices()
	for i := 0; i < 12; i++ {
		body := fmt.Sprintf(`{"ops":[{"u":%d,"v":%d},{"op":"delete","u":%d,"v":%d}]}`,
			n+int32(i), i%int(n), (3*i)%int(n), (5*i+1)%int(n))
		resp, doc := postUpdate(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update %d: status %d: %v", i, resp.StatusCode, doc)
		}
	}
	health := waitApplied(t, ts, 12)
	wantSums := health["checksums"].(map[string]any)
	// Abandon without clean shutdown: the WAL on disk is all that survives.
	ts.Close()
	s.Close()
	w.Close()

	// Recover: same base, fresh replay, serial single-threaded rebuild.
	w2, err := wal.Open(walPath, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	dyn := dynamic.FromStatic(g, tau)
	if err := w2.Replay(0, func(seq uint64, b wal.Batch) error {
		for _, op := range b {
			if op.Del {
				dyn.DeleteEdge(op.U, op.V)
			} else if _, err := dyn.InsertEdge(op.U, op.V); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	g2, tau2, err := dyn.ToStatic()
	if err != nil {
		t.Fatal(err)
	}
	sg2, _ := core.Build(g2, tau2, core.VariantSerial, 1)
	got := community.NewIndex(g2, sg2).Checksums()
	for layer, want := range map[string]uint64{
		"tau": got.Tau, "summary": got.Summary, "hierarchy": got.Hierarchy,
	} {
		if fmt.Sprintf("%016x", want) != wantSums[layer].(string) {
			t.Fatalf("%s checksum: recovered %016x, served %v", layer, want, wantSums[layer])
		}
	}
}

// TestApplierPanicDegradesToReadOnly: a panic on the applier goroutine must
// not kill the process or the queries — updates flip to 503 and /healthz
// reports degraded, while the published epoch keeps serving.
func TestApplierPanicDegradesToReadOnly(t *testing.T) {
	_, ts := newLiveServer(t, "clique", func(lc *LiveConfig) {
		lc.testApplyHook = func() { panic("injected applier crash") }
	})
	resp, _ := postUpdate(t, ts, `{"ops":[{"u":5,"v":0}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update ack: status %d", resp.StatusCode)
	}
	// The applier dies on this batch; wait for degraded to surface.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var health map[string]any
		getJSON(t, ts, "/healthz", &health)
		if u, _ := health["updates"].(string); u != "ok" && u != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported degraded: %v", health)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ = postUpdate(t, ts, `{"ops":[{"u":5,"v":1}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update after applier crash: status %d, want 503", resp.StatusCode)
	}
	if r := getJSON(t, ts, "/community?v=0&k=5", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("query after applier crash: status %d", r.StatusCode)
	}
}

// TestUpdatePanicFaultRecovered: a panic injected at the admission fault
// site is converted to a 500 by the recovery middleware — the mutator mutex
// and queue are left consistent, so the next update succeeds.
func TestUpdatePanicFaultRecovered(t *testing.T) {
	_, ts := newLiveServer(t, "clique", nil)
	faults.Enable(1)
	defer faults.Disable()
	faults.Set(siteUpdate, faults.Plan{Action: faults.Panic, Every: 1, MaxFires: 1})
	resp, _ := postUpdate(t, ts, `{"ops":[{"u":5,"v":0}]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked update: status %d, want 500", resp.StatusCode)
	}
	resp, doc := postUpdate(t, ts, `{"ops":[{"u":5,"v":0}]}`)
	if resp.StatusCode != http.StatusOK || doc["seq"].(float64) != 1 {
		t.Fatalf("update after panic: status %d %v", resp.StatusCode, doc)
	}
}

// TestUpdateModesConvergeDifferential drives the identical update stream
// through a full-rebuild applier, a pure incremental applier, and the auto
// mode, and asserts all three publish bit-identical state (all three
// checksum layers) after every batch — the server-level statement of the
// incremental-repair correctness gate.
func TestUpdateModesConvergeDifferential(t *testing.T) {
	type liveServer struct {
		mode string
		ts   *httptest.Server
	}
	servers := make([]liveServer, 0, 3)
	for _, mode := range []string{UpdateModeFull, UpdateModeIncremental, UpdateModeAuto} {
		_, ts := newLiveServer(t, "rmat", func(lc *LiveConfig) { lc.Mode = mode })
		servers = append(servers, liveServer{mode, ts})
	}
	incrBefore := cUpdateIncrApplies.Value()
	// A deterministic mix of inserts (some closing new triangles, some new
	// vertices) and deletes of base edges.
	n := 1 << 8 // RMAT scale 8
	for batch := 1; batch <= 6; batch++ {
		body := fmt.Sprintf(
			`{"ops":[{"u":%d,"v":%d},{"u":%d,"v":%d},{"op":"delete","u":%d,"v":%d},{"u":%d,"v":%d}]}`,
			n+batch, (3*batch)%n, n+batch, (3*batch+1)%n,
			(7*batch)%n, (11*batch+2)%n,
			(5*batch)%n, (13*batch+1)%n)
		var sums map[string]any
		for _, sv := range servers {
			resp, doc := postUpdate(t, sv.ts, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("mode %s batch %d: status %d: %v", sv.mode, batch, resp.StatusCode, doc)
			}
			health := waitApplied(t, sv.ts, uint64(batch))
			got := health["checksums"].(map[string]any)
			if sums == nil {
				sums = got
				continue
			}
			for _, layer := range []string{"tau", "summary", "hierarchy"} {
				if got[layer] != sums[layer] {
					t.Fatalf("mode %s batch %d: %s checksum %v != full-rebuild %v",
						sv.mode, batch, layer, got[layer], sums[layer])
				}
			}
		}
	}
	if cUpdateIncrApplies.Value() == incrBefore {
		t.Fatal("no batch was published via the incremental path")
	}
}

// TestChaosRebuildBackoffRetries: an error injected at the rebuild attempt
// (second hit of the server.update site — the first is admission) must not
// lose the batch: the applier backs off, retries, and publishes. The
// rebuild-error counter and the fault accounting prove the failure and the
// retry both happened.
func TestChaosRebuildBackoffRetries(t *testing.T) {
	_, ts := newLiveServer(t, "clique", func(lc *LiveConfig) {
		lc.RebuildBackoff = 2 * time.Millisecond
		lc.RebuildBackoffMax = 10 * time.Millisecond
	})
	faults.Enable(1)
	defer faults.Disable()
	errsBefore := cUpdateRebuildErrors.Value()
	faults.Set(siteUpdate, faults.Plan{Action: faults.Error, Every: 2, MaxFires: 1})
	resp, doc := postUpdate(t, ts, `{"ops":[{"u":5,"v":0},{"u":5,"v":1}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d: %v", resp.StatusCode, doc)
	}
	health := waitApplied(t, ts, 1)
	if health["staleness"].(float64) != 0 {
		t.Fatalf("staleness after retry: %v", health["staleness"])
	}
	if fires := faults.Fires(siteUpdate); fires != 1 {
		t.Fatalf("fault fired %d times, want exactly 1 (at the rebuild attempt)", fires)
	}
	if hits := faults.Hits(siteUpdate); hits < 3 {
		t.Fatalf("site hit %d times, want >= 3 (admission, failed rebuild, retried rebuild)", hits)
	}
	if got := cUpdateRebuildErrors.Value(); got != errsBefore+1 {
		t.Fatalf("rebuild-error counter moved by %d, want 1", got-errsBefore)
	}
	// The published state must match what a clean server reaches.
	_, clean := newLiveServer(t, "clique", nil)
	resp, _ = postUpdate(t, clean, `{"ops":[{"u":5,"v":0},{"u":5,"v":1}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("clean update failed")
	}
	want := waitApplied(t, clean, 1)["checksums"].(map[string]any)
	got := health["checksums"].(map[string]any)
	for _, layer := range []string{"tau", "summary", "hierarchy"} {
		if got[layer] != want[layer] {
			t.Fatalf("%s checksum after faulted retry %v != clean %v", layer, got[layer], want[layer])
		}
	}
}

// TestUpdateMetricsExposition is the regression test for the write-path
// observability satellite: staleness and sequence gauges plus the applier
// rebuild histogram must appear in the Prometheus exposition.
func TestUpdateMetricsExposition(t *testing.T) {
	_, ts := newLiveServer(t, "clique", nil)
	resp, _ := postUpdate(t, ts, `{"ops":[{"u":5,"v":0}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	waitApplied(t, ts, 1)
	raw, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(raw.Body)
	raw.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		"# TYPE equitruss_server_update_staleness gauge",
		"equitruss_server_update_acked_seq 1",
		"equitruss_server_update_applied_seq 1",
		"equitruss_server_update_staleness 0",
		"equitruss_server_update_queue_capacity",
		"# TYPE equitruss_server_applier_rebuild_seconds histogram",
		"equitruss_server_applier_rebuild_seconds_count",
		"equitruss_server_update_incremental_applies",
		"equitruss_server_update_full_rebuilds",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestEnableUpdatesRejectsUnknownMode: a typo'd mode fails fast instead of
// silently selecting a default.
func TestEnableUpdatesRejectsUnknownMode(t *testing.T) {
	g := gen.Clique(5)
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	sg, _ := core.Build(g, tau, core.VariantSerial, 1)
	w, err := wal.Open(filepath.Join(t.TempDir(), "wal.log"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s := NewPending(Config{})
	s.Publish(community.NewIndex(g, sg), 0)
	defer s.Close()
	if err := s.EnableUpdates(LiveConfig{WAL: w, Dyn: dynamic.FromStatic(g, tau), Mode: "fastest"}); err == nil {
		t.Fatal("unknown update mode accepted")
	}
}
