package server

import (
	"net/http"

	"equitruss/internal/community"
	"equitruss/internal/obs"
)

var cEpochSwaps = obs.GetCounter("server_epoch_swaps",
	"new index epochs published to the serving path")

// epoch is one immutable generation of the serving state. Queries load the
// current epoch once with an atomic pointer read and answer entirely from
// it, so a concurrent publish never mixes two indexes inside one request.
// The epoch number versions the LRU cache key: entries cached under an old
// epoch become unreachable the instant a new one is published.
type epoch struct {
	idx *community.Index
	num uint64 // monotone generation counter, 1 for the first publish
	seq uint64 // last WAL sequence reflected in idx (0 for static serving)
	// sums fingerprints this epoch's state canonically; the crash-recovery
	// differential compares these against an independent rebuild.
	sums community.Checksums
}

// epoch returns the current serving epoch, or nil before the first Publish
// (a recovering server that has not finished its initial build).
func (s *Server) epoch() *epoch { return s.cur.Load() }

// Publish makes idx the serving index, swapped in atomically under the next
// epoch number. seq is the WAL sequence the index state includes (0 for
// static serving). Everything expensive — the hierarchy build and the
// canonical checksums — happens before the swap, so queries never pay a
// lazy-build latency spike and never observe a half-published epoch.
// Publish returns the new epoch number. It is safe to call concurrently
// with queries, but publishers must serialize among themselves (the update
// applier is the only publisher in live serving).
func (s *Server) Publish(idx *community.Index, seq uint64) uint64 {
	idx.Hierarchy()
	sums := idx.Checksums()
	num := uint64(1)
	if old := s.cur.Load(); old != nil {
		num = old.num + 1
	}
	s.cur.Store(&epoch{idx: idx, num: num, seq: seq, sums: sums})
	cEpochSwaps.Inc()
	// Entries cached under older epochs are unreachable now; purge them so
	// the retired epoch's storage (heap arrays, or an index file mapping
	// kept alive through SummaryGraph.Backing) is released as soon as
	// in-flight queries drain, instead of when the LRU happens to roll over.
	s.cache.PurgeBelow(num)
	return num
}

// handleReadyz is the readiness probe: 200 only once an index epoch is
// published — meaning any snapshot was loaded and the WAL replayed through
// the initial build. Distinct from /healthz (liveness): a recovering server
// is alive but not ready, and an orchestrator should route traffic only on
// readiness. Registered outside the admission limiter so probes keep
// passing under query overload.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ep := s.epoch()
	if ep == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ready":       true,
		"epoch":       ep.num,
		"applied_seq": ep.seq,
	})
}
