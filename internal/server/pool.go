package server

import (
	"context"

	"equitruss/internal/concur"
	"equitruss/internal/faults"
	"equitruss/internal/obs"
)

// sitePool is the fault-injection site on the slot-reservation path; chaos
// tests arm it to simulate a pool that fails or stalls under pressure.
const sitePool = "server.pool"

var (
	cPoolReservations = obs.GetCounter("server_pool_reservations",
		"slot reservations granted by the query worker pool")
	cPoolRejections = obs.GetCounter("server_pool_rejections",
		"reservations abandoned because the request context ended while waiting for a slot")
)

// Pool bounds the number of goroutines concurrently executing community
// queries across all in-flight HTTP requests. Handlers reserve slots before
// computing and hand the grant to the batch scheduler as its thread count,
// so a burst of 10k-query batches degrades to queueing instead of spawning
// an unbounded goroutine flood.
type Pool struct {
	slots chan struct{}
}

// NewPool returns a pool with the given number of slots; workers <= 0
// selects one slot per usable CPU.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = concur.MaxThreads()
	}
	return &Pool{slots: make(chan struct{}, workers)}
}

// Cap returns the pool's slot count.
func (p *Pool) Cap() int { return cap(p.slots) }

// InUse returns the number of slots currently reserved — the pool
// occupancy gauge /metrics exposes.
func (p *Pool) InUse() int { return len(p.slots) }

// Reserve blocks until at least one slot is free (or ctx ends), then
// greedily takes up to want slots without further blocking and returns the
// number taken (>= 1). A caller never blocks while holding slots, so
// concurrent batches cannot deadlock against each other.
func (p *Pool) Reserve(ctx context.Context, want int) (int, error) {
	if want < 1 {
		want = 1
	}
	if err := faults.Inject(sitePool); err != nil {
		cPoolRejections.Inc()
		return 0, err
	}
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		cPoolRejections.Inc()
		return 0, ctx.Err()
	}
	got := 1
	for got < want {
		select {
		case p.slots <- struct{}{}:
			got++
		default:
			cPoolReservations.Add(int64(got))
			return got, nil
		}
	}
	cPoolReservations.Add(int64(got))
	return got, nil
}

// Release returns n previously reserved slots.
func (p *Pool) Release(n int) {
	for i := 0; i < n; i++ {
		<-p.slots
	}
}
