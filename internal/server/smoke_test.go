package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestServerSmokeConcurrent hammers one handler with 64 concurrent clients
// mixing cached and uncached single queries with periodic batches — the
// `make serversmoke` target runs it under -race so the LRU cache, the
// worker pool, and the shared index traversals are exercised for data
// races, and every response is cross-checked against a pre-computed oracle.
func TestServerSmokeConcurrent(t *testing.T) {
	idx, _ := buildTestIndex(t)
	// Small cache + small pool force constant eviction and slot contention.
	ts := httptest.NewServer(New(idx, Config{CacheSize: 32, Workers: 4}).Handler())
	defer ts.Close()

	n := idx.G.NumVertices()
	const clients = 64
	const perClient = 25
	// Oracle: expected community count per (v, k), computed single-threaded
	// before the storm.
	type vk struct{ v, k int32 }
	oracle := make(map[vk]int)
	for v := int32(0); v < 40 && v < n; v++ {
		for _, k := range []int32{3, 4} {
			oracle[vk{v, k}] = len(idx.Communities(v, k))
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perClient; i++ {
				// Mix: mostly singles over a small vertex range (cache
				// hits), every 5th request a batch (pool fan-out), every
				// 7th an uncached-leaning vertex.
				v := int32((c*7 + i) % 40)
				if v >= n {
					v = 0
				}
				k := int32(3 + (c+i)%2)
				switch {
				case i%5 == 0:
					body := fmt.Sprintf(`{"queries":[{"v":%d,"k":%d},{"v":%d,"k":%d}]}`, v, k, (v+1)%40, k)
					resp, err := client.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
					if err != nil {
						errc <- err
						return
					}
					var out batchResponse
					err = json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK || len(out.Results) != 2 {
						errc <- fmt.Errorf("batch: status %d, %d results, err %v", resp.StatusCode, len(out.Results), err)
						return
					}
					for _, r := range out.Results {
						if want, ok := oracle[vk{r.Vertex, r.K}]; ok && r.Count != want {
							errc <- fmt.Errorf("batch (%d,%d): count %d, want %d", r.Vertex, r.K, r.Count, want)
							return
						}
					}
				default:
					resp, err := client.Get(fmt.Sprintf("%s/community?v=%d&k=%d", ts.URL, v, k))
					if err != nil {
						errc <- err
						return
					}
					var doc queryDoc
					err = json.NewDecoder(resp.Body).Decode(&doc)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("single (%d,%d): status %d, err %v", v, k, resp.StatusCode, err)
						return
					}
					if want, ok := oracle[vk{v, k}]; ok && doc.Count != want {
						errc <- fmt.Errorf("single (%d,%d): count %d, want %d", v, k, doc.Count, want)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if cCacheHits.Value() == 0 {
		t.Error("smoke storm produced no cache hits")
	}
	if cCacheMisses.Value() == 0 {
		t.Error("smoke storm produced no cache misses")
	}
}
