package triangle

import (
	"sort"
	"sync/atomic"

	"equitruss/internal/concur"
	"equitruss/internal/graph"
)

// SupportsOriented computes per-edge supports with the compact-forward
// scheme behind the O(|E|^1.5) bound the paper cites: orient every edge
// from lower to higher (degree, id) rank, enumerate each triangle exactly
// once as an intersection of out-neighborhoods, and atomically credit all
// three member edges. On skewed graphs the oriented lists are much shorter
// than hub adjacencies, trading the merge kernel's atomic-freedom for far
// less intersection work.
func SupportsOriented(g *graph.Graph, threads int) []int32 {
	n := int(g.NumVertices())
	m := int(g.NumEdges())
	sup := make([]int32, m)
	if m == 0 {
		return sup
	}
	if threads <= 0 {
		threads = concur.MaxThreads()
	}

	// Rank vertices by (degree, id); rank[u] < rank[v] orients u -> v.
	rank := make([]int32, n)
	concur.For(n, threads, func(i int) { rank[i] = int32(i) })
	sort.Slice(rank, func(a, b int) bool {
		da, db := g.Degree(rank[a]), g.Degree(rank[b])
		if da != db {
			return da < db
		}
		return rank[a] < rank[b]
	})
	pos := make([]int32, n)
	for r, v := range rank {
		pos[v] = int32(r)
	}

	// Build the oriented CSR: out-neighbors of v are neighbors with higher
	// rank, kept with their edge IDs and sorted by rank for merging.
	outOff := make([]int64, n+1)
	concur.For(n, threads, func(i int) {
		v := int32(i)
		var d int64
		for _, w := range g.Neighbors(v) {
			if pos[w] > pos[v] {
				d++
			}
		}
		outOff[i+1] = d
	})
	for i := 0; i < n; i++ {
		outOff[i+1] += outOff[i]
	}
	total := outOff[n]
	outRank := make([]int32, total) // rank of the head vertex
	outEID := make([]int32, total)
	concur.For(n, threads, func(i int) {
		v := int32(i)
		nbrs := g.Neighbors(v)
		eids := g.IncidentEIDs(v)
		c := outOff[i]
		for j, w := range nbrs {
			if pos[w] > pos[v] {
				outRank[c] = pos[w]
				outEID[c] = eids[j]
				c++
			}
		}
		lo, hi := outOff[i], c
		sortPairByRank(outRank[lo:hi], outEID[lo:hi])
	})

	// Enumerate: for each oriented edge (v, w), intersect out(v) × out(w).
	edges := g.Edges()
	concur.ForRangeDynamic(m, threads, 512, func(lo, hi int) {
		for eid := lo; eid < hi; eid++ {
			e := edges[eid]
			u, v := e.U, e.V
			if pos[u] > pos[v] {
				u, v = v, u // orient: u -> v
			}
			au, bu := outOff[u], outOff[u+1]
			av, bv := outOff[v], outOff[v+1]
			i, j := au, av
			for i < bu && j < bv {
				ri, rj := outRank[i], outRank[j]
				switch {
				case ri < rj:
					i++
				case ri > rj:
					j++
				default:
					// Triangle (u, v, w): credit all three edges.
					atomic.AddInt32(&sup[eid], 1)
					atomic.AddInt32(&sup[outEID[i]], 1)
					atomic.AddInt32(&sup[outEID[j]], 1)
					i++
					j++
				}
			}
		}
	})
	return sup
}

// sortPairByRank sorts ranks ascending, permuting eids identically.
func sortPairByRank(ranks, eids []int32) {
	if len(ranks) < 24 {
		for i := 1; i < len(ranks); i++ {
			r, e := ranks[i], eids[i]
			j := i - 1
			for j >= 0 && ranks[j] > r {
				ranks[j+1], eids[j+1] = ranks[j], eids[j]
				j--
			}
			ranks[j+1], eids[j+1] = r, e
		}
		return
	}
	idx := make([]int32, len(ranks))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(x, y int) bool { return ranks[idx[x]] < ranks[idx[y]] })
	tr := make([]int32, len(ranks))
	te := make([]int32, len(ranks))
	for i, p := range idx {
		tr[i], te[i] = ranks[p], eids[p]
	}
	copy(ranks, tr)
	copy(eids, te)
}
