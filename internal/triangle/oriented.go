package triangle

import (
	"context"
	"sort"
	"sync/atomic"

	"equitruss/internal/concur"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// Counters emitted by the oriented kernel: enumerated triangles expose the
// work actually done (exactly one hit per triangle, vs three per triangle
// for the merge kernel's symmetric intersections).
var cOrientedTriangles = obs.GetCounter("support_oriented_triangles",
	"triangles enumerated by the oriented compact-forward Support kernel")

// accArrayLimit caps the per-thread credit-accumulation footprint of the
// oriented kernel (threads × edges int32 entries). Below the cap every
// worker accumulates into a private array and a scatter-free parallel
// reduction produces the final supports — zero atomics on the hot path.
// Above it the kernel falls back to atomic credits, trading contention for
// memory.
const accArrayLimit = 1 << 26 // 64M entries = 256 MiB of int32

// orientedGrain is the dynamic chunk size of the enumeration stage, matching
// the merge kernel's grain so per-thread span items are comparable.
const orientedGrain = 512

// SupportsOriented computes per-edge supports with the compact-forward
// scheme behind the O(|E|^1.5) bound the paper cites: orient every edge
// from lower to higher (degree, id) rank, enumerate each triangle exactly
// once as an intersection of out-neighborhoods, and credit all three member
// edges. On skewed graphs the oriented lists (length ≤ O(√m)) are much
// shorter than hub adjacencies, so the kernel does far less intersection
// work than the merge kernel's symmetric per-edge scans.
//
// SupportsOrientedCtx is the production form (cancellation, tracing,
// counters); this legacy wrapper runs under concur.WithoutFaults so an
// armed scheduler-barrier fault site cannot panic callers that have no
// error channel.
func SupportsOriented(g *graph.Graph, threads int) []int32 {
	sup, err := SupportsOrientedCtx(concur.WithoutFaults(context.Background()), g, threads, nil)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection.
		panic("triangle: " + err.Error())
	}
	return sup
}

// SupportsOrientedCtx is SupportsOriented with the merge kernel's full
// production contract: workers poll ctx at chunk-claim granularity and the
// call returns ctx.Err() with every goroutine joined once it fires, every
// parallel stage emits per-thread "Support" spans into tr, and each stage's
// barrier is a "concur.barrier" fault-injection site.
func SupportsOrientedCtx(ctx context.Context, g *graph.Graph, threads int, tr *obs.Trace) ([]int32, error) {
	n := int(g.NumVertices())
	m := int(g.NumEdges())
	sup := make([]int32, m)
	if m == 0 {
		return sup, nil
	}
	if threads <= 0 {
		threads = concur.MaxThreads()
	}

	// Rank vertices by (degree, id); rank(u) < rank(v) orients u -> v.
	pos, err := rankByDegree(ctx, g, threads, tr)
	if err != nil {
		return nil, err
	}

	// Build the oriented CSR: out-neighbors of v are neighbors with higher
	// rank, kept with their edge IDs and sorted by rank for merging.
	outOff := make([]int64, n+1)
	err = concur.ForCtxT(ctx, tr, "Support", n, threads, func(i int) {
		v := int32(i)
		var d int64
		for _, w := range g.Neighbors(v) {
			if pos[w] > pos[v] {
				d++
			}
		}
		outOff[i+1] = d
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		outOff[i+1] += outOff[i]
	}
	total := outOff[n]
	outRank := make([]int32, total) // rank of the head vertex
	outEID := make([]int32, total)
	err = concur.ForThreadsCtxT(ctx, tr, "Support", threads, func(tid int) {
		lo := tid * n / threads
		hi := (tid + 1) * n / threads
		var scratch sortScratch // reused across every vertex of this thread
		for i := lo; i < hi; i++ {
			if i&0xFFF == 0 && concur.Canceled(ctx) {
				return
			}
			v := int32(i)
			nbrs := g.Neighbors(v)
			eids := g.IncidentEIDs(v)
			c := outOff[i]
			for j, w := range nbrs {
				if pos[w] > pos[v] {
					outRank[c] = pos[w]
					outEID[c] = eids[j]
					c++
				}
			}
			scratch.sortPairByRank(outRank[outOff[i]:c], outEID[outOff[i]:c])
		}
	})
	if err != nil {
		return nil, err
	}

	// Enumerate: for each oriented edge (v, w), intersect out(v) × out(w).
	// Triangle credits accumulate into per-thread arrays (reduced after the
	// barrier) when the footprint allows, killing the triple-atomic
	// contention of the naive scheme; otherwise each credit is an atomic add.
	edges := g.Edges()
	useAcc := int64(threads)*int64(m) <= accArrayLimit
	accs := make([][]int32, threads)
	var cursor atomic.Int64
	err = concur.ForThreadsCtxT(ctx, tr, "Support", threads, func(tid int) {
		var acc []int32
		if useAcc {
			acc = make([]int32, m)
			accs[tid] = acc
		}
		var tris int64
		for {
			if concur.Canceled(ctx) {
				break
			}
			lo := int(cursor.Add(orientedGrain)) - orientedGrain
			if lo >= m {
				break
			}
			hi := lo + orientedGrain
			if hi > m {
				hi = m
			}
			for eid := lo; eid < hi; eid++ {
				e := edges[eid]
				u, v := e.U, e.V
				if pos[u] > pos[v] {
					u, v = v, u // orient: u -> v
				}
				i, bu := outOff[u], outOff[u+1]
				j, bv := outOff[v], outOff[v+1]
				var own int32
				for i < bu && j < bv {
					ri, rj := outRank[i], outRank[j]
					switch {
					case ri < rj:
						i++
					case ri > rj:
						j++
					default:
						// Triangle (u, v, w): credit all three edges.
						own++
						if acc != nil {
							acc[outEID[i]]++
							acc[outEID[j]]++
						} else {
							atomic.AddInt32(&sup[outEID[i]], 1)
							atomic.AddInt32(&sup[outEID[j]], 1)
						}
						i++
						j++
					}
				}
				if acc != nil {
					acc[eid] += own
				} else if own != 0 {
					atomic.AddInt32(&sup[eid], own)
				}
				tris += int64(own)
			}
		}
		cOrientedTriangles.Add(tris)
	})
	if err != nil {
		return nil, err
	}
	if useAcc {
		err = concur.ForRangeCtxT(ctx, tr, "Support", m, threads, func(lo, hi int) {
			for e := lo; e < hi; e++ {
				var s int32
				for t := 0; t < threads; t++ {
					s += accs[t][e]
				}
				sup[e] = s
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return sup, nil
}

// rankByDegree returns pos with pos[v] = rank of v under ascending
// (degree, id) order, built with a parallel stable counting sort: per-thread
// degree histograms over contiguous id blocks, a serial exclusive scan over
// (degree, thread), and a parallel placement pass. Stability by id falls out
// of the blocks being id-ordered and the scan visiting threads in order —
// no comparison sort anywhere.
func rankByDegree(ctx context.Context, g *graph.Graph, threads int, tr *obs.Trace) ([]int32, error) {
	n := int(g.NumVertices())
	pos := make([]int32, n)
	if threads > n {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	maxPT := make([]int32, threads)
	err := concur.ForThreadsCtxT(ctx, tr, "Support", threads, func(tid int) {
		lo := tid * n / threads
		hi := (tid + 1) * n / threads
		var max int32
		for v := lo; v < hi; v++ {
			if d := g.Degree(int32(v)); d > max {
				max = d
			}
		}
		maxPT[tid] = max
	})
	if err != nil {
		return nil, err
	}
	var maxDeg int32
	for _, d := range maxPT {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := int(maxDeg) + 1
	counts := make([][]int32, threads)
	err = concur.ForThreadsCtxT(ctx, tr, "Support", threads, func(tid int) {
		lo := tid * n / threads
		hi := (tid + 1) * n / threads
		cnt := make([]int32, buckets)
		for v := lo; v < hi; v++ {
			cnt[g.Degree(int32(v))]++
		}
		counts[tid] = cnt
	})
	if err != nil {
		return nil, err
	}
	var base int32
	for d := 0; d < buckets; d++ {
		for t := 0; t < threads; t++ {
			c := counts[t][d]
			counts[t][d] = base // start offset for (degree d, thread t)
			base += c
		}
	}
	err = concur.ForThreadsCtxT(ctx, tr, "Support", threads, func(tid int) {
		lo := tid * n / threads
		hi := (tid + 1) * n / threads
		cnt := counts[tid]
		for v := lo; v < hi; v++ {
			d := g.Degree(int32(v))
			pos[v] = cnt[d]
			cnt[d]++
		}
	})
	if err != nil {
		return nil, err
	}
	return pos, nil
}

// sortScratch holds the reusable buffers of sortPairByRank for one worker,
// so sorting a high-out-degree vertex costs at most one buffer growth per
// thread instead of three allocations per vertex.
type sortScratch struct {
	idx, tr, te []int32
}

// grow returns the three scratch slices sized to k, reusing capacity.
func (s *sortScratch) grow(k int) (idx, tr, te []int32) {
	if cap(s.idx) < k {
		s.idx = make([]int32, k)
		s.tr = make([]int32, k)
		s.te = make([]int32, k)
	}
	return s.idx[:k], s.tr[:k], s.te[:k]
}

// sortPairByRank sorts ranks ascending, permuting eids identically.
// Small runs use insertion sort in place; larger runs sort an index
// permutation drawn from the thread's scratch buffers.
func (s *sortScratch) sortPairByRank(ranks, eids []int32) {
	if len(ranks) < 24 {
		for i := 1; i < len(ranks); i++ {
			r, e := ranks[i], eids[i]
			j := i - 1
			for j >= 0 && ranks[j] > r {
				ranks[j+1], eids[j+1] = ranks[j], eids[j]
				j--
			}
			ranks[j+1], eids[j+1] = r, e
		}
		return
	}
	idx, tr, te := s.grow(len(ranks))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(x, y int) bool { return ranks[idx[x]] < ranks[idx[y]] })
	for i, p := range idx {
		tr[i], te[i] = ranks[p], eids[p]
	}
	copy(ranks, tr)
	copy(eids, te)
}
