// Package triangle implements the Support kernel of the pipeline: exact
// per-edge triangle counts (Definition 2 of the paper) plus whole-graph
// triangle counting.
//
// Support of edge (u, v) equals |N(u) ∩ N(v)| in a simple graph, so each
// edge's support is computed independently by a sorted-merge intersection —
// embarrassingly parallel with no atomics. Dynamic chunk scheduling evens
// out power-law skew (hub edges cost far more than leaf edges).
package triangle

import (
	"context"

	"equitruss/internal/concur"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// Supports returns support(e) for every edge ID, computed with the given
// number of threads (<= 0 means all cores). SupportsT is the traced form;
// SupportsCtx is the cancelable form.
func Supports(g *graph.Graph, threads int) []int32 {
	return SupportsT(g, threads, nil)
}

// SupportsT is Supports with per-thread "Support" spans emitted into tr;
// the dynamic scheduler records how many edges each worker claimed, which
// is exactly the load-balance signal the kernel's chunking exists to fix.
func SupportsT(g *graph.Graph, threads int, tr *obs.Trace) []int32 {
	sup, err := SupportsCtx(concur.WithoutFaults(context.Background()), g, threads, tr)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection, so the ctx form cannot fail.
		panic("triangle: " + err.Error())
	}
	return sup
}

// SupportsCtx is SupportsT with cancellation: workers check ctx between
// dynamic chunks and the call returns ctx.Err() (and no supports) once it
// fires, with every worker goroutine joined.
func SupportsCtx(ctx context.Context, g *graph.Graph, threads int, tr *obs.Trace) ([]int32, error) {
	m := int(g.NumEdges())
	sup := make([]int32, m)
	edges := g.Edges()
	err := concur.ForRangeDynamicCtxT(ctx, tr, "Support", m, threads, 512, func(lo, hi int) {
		for eid := lo; eid < hi; eid++ {
			e := edges[eid]
			sup[eid] = g.CommonNeighborCount(e.U, e.V)
		}
	})
	if err != nil {
		return nil, err
	}
	return sup, nil
}

// SupportsGalloping is Supports with a galloping (binary-probing)
// intersection that wins when one endpoint's list is much longer than the
// other — the middle arm of the kernel-selection heuristic.
// SupportsGallopingCtx is the production form.
func SupportsGalloping(g *graph.Graph, threads int) []int32 {
	sup, err := SupportsGallopingCtx(concur.WithoutFaults(context.Background()), g, threads, nil)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection.
		panic("triangle: " + err.Error())
	}
	return sup
}

// SupportsGallopingCtx is SupportsGalloping with the merge kernel's
// production contract: cancellation between dynamic chunks, per-thread
// "Support" spans into tr, and the scheduler-barrier fault site.
func SupportsGallopingCtx(ctx context.Context, g *graph.Graph, threads int, tr *obs.Trace) ([]int32, error) {
	m := int(g.NumEdges())
	sup := make([]int32, m)
	edges := g.Edges()
	err := concur.ForRangeDynamicCtxT(ctx, tr, "Support", m, threads, 512, func(lo, hi int) {
		for eid := lo; eid < hi; eid++ {
			e := edges[eid]
			nu, nv := g.Neighbors(e.U), g.Neighbors(e.V)
			if len(nu) > len(nv) {
				nu, nv = nv, nu
			}
			if len(nv) >= 16*len(nu) {
				sup[eid] = gallopIntersect(nu, nv)
			} else {
				sup[eid] = mergeIntersect(nu, nv)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return sup, nil
}

func mergeIntersect(a, b []int32) int32 {
	var count int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// gallopIntersect counts |a ∩ b| assuming len(a) << len(b): for each
// element of a it gallops forward in b (doubling probe, then binary search
// within the bracket).
func gallopIntersect(a, b []int32) int32 {
	var count int32
	lo := 0
	for _, x := range a {
		// Gallop to find the bracket containing x.
		step := 1
		hi := lo
		for hi < len(b) && b[hi] < x {
			lo = hi + 1
			hi += step
			step *= 2
		}
		if hi > len(b) {
			hi = len(b)
		}
		// Binary search in (lo-1, hi].
		l, r := lo, hi
		for l < r {
			mid := (l + r) / 2
			if b[mid] < x {
				l = mid + 1
			} else {
				r = mid
			}
		}
		if l < len(b) && b[l] == x {
			count++
			l++
		}
		lo = l
		if lo >= len(b) {
			break
		}
	}
	return count
}

// Count returns the total number of triangles in g. Every triangle is
// counted once per constituent edge by the per-edge supports, so the sum of
// supports equals three times the triangle count. The supports come from
// the auto-selected kernel, so skewed graphs get the oriented scheme.
func Count(g *graph.Graph, threads int) int64 {
	sup := SupportsKernel(g, KernelAuto, threads)
	var total int64
	for _, s := range sup {
		total += int64(s)
	}
	return total / 3
}
