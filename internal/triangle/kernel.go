package triangle

import (
	"context"
	"fmt"

	"equitruss/internal/concur"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// Kernel selects the Support-stage implementation. The zero value is
// KernelAuto, which picks a kernel per graph from a skew/size heuristic —
// the production default.
type Kernel int

const (
	// KernelAuto picks merge, galloping, or oriented per graph (see
	// ChooseKernel).
	KernelAuto Kernel = iota
	// KernelMerge is the naive per-edge sorted-merge intersection: no
	// atomics, no setup cost, but hub edges pay for their full adjacency.
	KernelMerge
	// KernelGalloping is the merge kernel with binary-probing intersection
	// when one endpoint's list is much longer than the other.
	KernelGalloping
	// KernelOriented is the degree-oriented compact-forward kernel behind
	// the O(|E|^1.5) bound: each triangle is enumerated exactly once over
	// oriented out-lists of length O(√m).
	KernelOriented
)

// String names the kernel for flags, metadata, and error messages.
func (k Kernel) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelMerge:
		return "merge"
	case KernelGalloping:
		return "gallop"
	case KernelOriented:
		return "oriented"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// ParseKernel parses a kernel name as accepted by the -support-kernel flag.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "auto", "":
		return KernelAuto, nil
	case "merge":
		return KernelMerge, nil
	case "gallop", "galloping":
		return KernelGalloping, nil
	case "oriented", "forward", "compact-forward":
		return KernelOriented, nil
	default:
		return 0, fmt.Errorf("triangle: unknown support kernel %q (want auto|merge|gallop|oriented)", s)
	}
}

// Auto-selection thresholds. Skew is max degree over mean degree: the
// factor by which the worst hub edge's merge-intersection cost exceeds the
// average edge's. The oriented kernel's setup (rank, oriented CSR) only
// pays off once the graph is big AND skewed; galloping needs no setup, so
// it covers the moderately skewed middle ground.
const (
	autoMinEdges     = 1 << 15 // below this, setup cost dominates: merge
	orientedMinEdges = 1 << 16 // oriented needs enough edges to amortize setup
	orientedSkew     = 8.0     // skew above which oriented wins
	gallopSkew       = 3.0     // skew above which galloping beats plain merge
)

// Counters recording what the auto heuristic decided, so a trace of a
// production build shows which kernel actually ran.
var (
	cAutoMerge = obs.GetCounter("support_auto_merge",
		"auto kernel selections that picked the merge Support kernel")
	cAutoGallop = obs.GetCounter("support_auto_gallop",
		"auto kernel selections that picked the galloping Support kernel")
	cAutoOriented = obs.GetCounter("support_auto_oriented",
		"auto kernel selections that picked the oriented Support kernel")
)

// ChooseKernel resolves KernelAuto for a graph: oriented for large skewed
// graphs (power-law hubs), galloping for moderately skewed ones, merge for
// small or flat-degree graphs. The decision costs one O(|V|) degree scan.
func ChooseKernel(g *graph.Graph) Kernel {
	m := g.NumEdges()
	n := int64(g.NumVertices())
	if m < autoMinEdges || n == 0 {
		return KernelMerge
	}
	mean := float64(2*m) / float64(n)
	skew := float64(g.MaxDegree()) / mean
	if skew >= orientedSkew && m >= orientedMinEdges {
		return KernelOriented
	}
	if skew >= gallopSkew {
		return KernelGalloping
	}
	return KernelMerge
}

// SupportsKernel computes per-edge supports with the selected kernel
// (KernelAuto resolves per graph). Legacy form of SupportsKernelCtx: not
// cancelable and excluded from fault injection, so it never fails.
func SupportsKernel(g *graph.Graph, k Kernel, threads int) []int32 {
	sup, err := SupportsKernelCtx(concur.WithoutFaults(context.Background()), g, k, threads, nil)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection.
		panic("triangle: " + err.Error())
	}
	return sup
}

// SupportsKernelCtx dispatches the Support stage to the selected kernel.
// All kernels share the production contract — cancellation at chunk-claim
// granularity, per-thread "Support" spans into tr, scheduler-barrier fault
// sites — and produce bit-identical supports.
func SupportsKernelCtx(ctx context.Context, g *graph.Graph, k Kernel, threads int, tr *obs.Trace) ([]int32, error) {
	if k == KernelAuto {
		k = ChooseKernel(g)
		switch k {
		case KernelGalloping:
			cAutoGallop.Inc()
		case KernelOriented:
			cAutoOriented.Inc()
		default:
			cAutoMerge.Inc()
		}
	}
	switch k {
	case KernelMerge:
		return SupportsCtx(ctx, g, threads, tr)
	case KernelGalloping:
		return SupportsGallopingCtx(ctx, g, threads, tr)
	case KernelOriented:
		return SupportsOrientedCtx(ctx, g, threads, tr)
	default:
		return nil, fmt.Errorf("triangle: unknown support kernel %v", k)
	}
}
