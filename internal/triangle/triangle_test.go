package triangle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"equitruss/internal/gen"
	"equitruss/internal/graph"
)

func randomGraph(seed int64, n int32, p float64) *graph.Graph {
	rnd := rand.New(rand.NewSource(seed))
	var in []graph.Edge
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rnd.Float64() < p {
				in = append(in, graph.Edge{U: u, V: v})
			}
		}
	}
	g, err := graph.FromEdgeList(in, n)
	if err != nil {
		panic(err)
	}
	return g
}

// bruteSupports counts triangles per edge by checking every vertex.
func bruteSupports(g *graph.Graph) []int32 {
	n := g.NumVertices()
	sup := make([]int32, g.NumEdges())
	for eid := int32(0); eid < int32(g.NumEdges()); eid++ {
		e := g.Edge(eid)
		for w := int32(0); w < n; w++ {
			if w != e.U && w != e.V && g.HasEdge(e.U, w) && g.HasEdge(e.V, w) {
				sup[eid]++
			}
		}
	}
	return sup
}

func TestSupportsKnownShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want func(eid int32) int32
	}{
		{"K5", gen.Clique(5), func(int32) int32 { return 3 }},
		{"path", gen.Path(6), func(int32) int32 { return 0 }},
		{"cycle", gen.Cycle(8), func(int32) int32 { return 0 }},
		{"triangle", gen.Clique(3), func(int32) int32 { return 1 }},
	}
	for _, tc := range cases {
		sup := Supports(tc.g, 2)
		for eid, s := range sup {
			if want := tc.want(int32(eid)); s != want {
				t.Errorf("%s: support[%d] = %d, want %d", tc.name, eid, s, want)
			}
		}
	}
}

func TestSupportsMatchesBrute(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed, 20, 0.3)
		want := bruteSupports(g)
		for _, threads := range []int{1, 2, 4} {
			got := Supports(g, threads)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			got = SupportsGalloping(g, threads)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			got = SupportsOriented(g, threads)
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSupportsGallopingOnSkewedGraph(t *testing.T) {
	// A star-plus-clique graph exercises the galloping path (hub adjacency
	// much longer than leaf adjacency).
	var in []graph.Edge
	for v := int32(1); v < 600; v++ {
		in = append(in, graph.Edge{U: 0, V: v})
	}
	for u := int32(1); u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			in = append(in, graph.Edge{U: u, V: v})
		}
	}
	g, err := graph.FromEdgeList(in, 600)
	if err != nil {
		t.Fatal(err)
	}
	merge := Supports(g, 2)
	gallop := SupportsGalloping(g, 2)
	oriented := SupportsOriented(g, 2)
	for i := range merge {
		if merge[i] != gallop[i] {
			t.Fatalf("edge %d: merge %d vs gallop %d", i, merge[i], gallop[i])
		}
		if merge[i] != oriented[i] {
			t.Fatalf("edge %d: merge %d vs oriented %d", i, merge[i], oriented[i])
		}
	}
}

func TestCountKnown(t *testing.T) {
	if got := Count(gen.Clique(5), 2); got != 10 {
		t.Fatalf("K5 triangles = %d, want 10", got)
	}
	if got := Count(gen.Clique(6), 2); got != 20 {
		t.Fatalf("K6 triangles = %d, want 20", got)
	}
	if got := Count(gen.Path(10), 2); got != 0 {
		t.Fatalf("path triangles = %d", got)
	}
	if got := Count(gen.PaperFigure3(), 1); got <= 0 {
		t.Fatalf("figure 3 triangles = %d", got)
	}
}

func TestSupportsEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdgeList(nil, 3)
	if sup := Supports(g, 2); len(sup) != 0 {
		t.Fatalf("supports on edgeless graph: %v", sup)
	}
	if Count(g, 2) != 0 {
		t.Fatal("count on edgeless graph")
	}
}

func TestGallopIntersectEdges(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int32
	}{
		{nil, []int32{1, 2, 3}, 0},
		{[]int32{2}, []int32{1, 2, 3}, 1},
		{[]int32{0, 5, 9}, []int32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 2},
		{[]int32{10}, []int32{1, 2, 3}, 0},
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, 3},
	}
	for i, tc := range cases {
		if got := gallopIntersect(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: gallop = %d, want %d", i, got, tc.want)
		}
		if got := mergeIntersect(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: merge = %d, want %d", i, got, tc.want)
		}
	}
}

func TestSupportsOrientedOnGenerators(t *testing.T) {
	graphs := []*graph.Graph{
		gen.PaperFigure3(),
		gen.RMAT(10, 8, 0.57, 0.19, 0.19, 33),
		gen.PlantedPartition(6, 9, 0.7, 1.0, 34),
		gen.Clique(9),
	}
	for gi, g := range graphs {
		want := Supports(g, 2)
		got := SupportsOriented(g, 2)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("graph %d edge %d: oriented %d vs merge %d", gi, i, got[i], want[i])
			}
		}
	}
}

func TestSupportsOrientedEmpty(t *testing.T) {
	g, _ := graph.FromEdgeList(nil, 5)
	if s := SupportsOriented(g, 2); len(s) != 0 {
		t.Fatalf("oriented supports on empty graph: %v", s)
	}
}
