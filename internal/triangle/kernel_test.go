package triangle

import (
	"context"
	"errors"
	"testing"

	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

func TestParseKernelRoundTrip(t *testing.T) {
	for _, k := range []Kernel{KernelAuto, KernelMerge, KernelGalloping, KernelOriented} {
		got, err := ParseKernel(k.String())
		if err != nil {
			t.Fatalf("ParseKernel(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseKernel(%q) = %v, want %v", k.String(), got, k)
		}
	}
	aliases := map[string]Kernel{
		"":                KernelAuto,
		"galloping":       KernelGalloping,
		"forward":         KernelOriented,
		"compact-forward": KernelOriented,
	}
	for s, want := range aliases {
		if got, err := ParseKernel(s); err != nil || got != want {
			t.Fatalf("ParseKernel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKernel("quantum"); err == nil {
		t.Fatal("ParseKernel accepted an unknown kernel name")
	}
}

// hubAndCycle builds a graph with one hub adjacent to every vertex of a
// cycle — leaves degree-skewed with a controllable edge count, used to pin
// each arm of the auto heuristic deterministically.
func hubAndCycle(leaves int32) *graph.Graph {
	var in []graph.Edge
	for v := int32(1); v <= leaves; v++ {
		in = append(in, graph.Edge{U: 0, V: v})
		w := v + 1
		if w > leaves {
			w = 1
		}
		if v < w {
			in = append(in, graph.Edge{U: v, V: w})
		}
	}
	g, err := graph.FromEdgeList(in, leaves+1)
	if err != nil {
		panic(err)
	}
	return g
}

func TestChooseKernelArms(t *testing.T) {
	// Small graph: always merge, regardless of skew.
	if k := ChooseKernel(gen.Clique(50)); k != KernelMerge {
		t.Fatalf("small clique chose %v, want merge", k)
	}
	// Large uniform graph (skew 1): merge.
	if k := ChooseKernel(gen.Clique(300)); k != KernelMerge {
		t.Fatalf("large clique chose %v, want merge", k)
	}
	// Mid-size skewed graph (m in [2^15, 2^16)): galloping.
	if k := ChooseKernel(hubAndCycle(20000)); k != KernelGalloping {
		t.Fatalf("mid-size hub graph chose %v, want gallop", k)
	}
	// Large skewed graph: oriented.
	if k := ChooseKernel(hubAndCycle(40000)); k != KernelOriented {
		t.Fatalf("large hub graph chose %v, want oriented", k)
	}
	if k := ChooseKernel(gen.RMAT(14, 8, 0.57, 0.19, 0.19, 1)); k != KernelOriented {
		t.Fatalf("RMAT-14 chose %v, want oriented", k)
	}
}

// TestKernelsAgreeOnAllDatasets is the differential gate: every explicit
// kernel (and auto) must produce bit-identical supports on every dataset
// surrogate plus a skewed RMAT graph. Runs under -race in `make ci`.
func TestKernelsAgreeOnAllDatasets(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat12": gen.RMAT(12, 8, 0.57, 0.19, 0.19, 7),
	}
	for _, spec := range gen.Datasets {
		graphs[spec.Name] = spec.Generate(0.01)
	}
	for name, g := range graphs {
		want := SupportsKernel(g, KernelMerge, 3)
		for _, k := range []Kernel{KernelGalloping, KernelOriented, KernelAuto} {
			got := SupportsKernel(g, k, 3)
			if len(got) != len(want) {
				t.Fatalf("%s/%v: %d supports, want %d", name, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/%v: support[%d] = %d, want %d", name, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCountInvariant: the sum of edge supports is exactly three times the
// triangle count (each triangle credits its three edges once), for every
// kernel.
func TestCountInvariant(t *testing.T) {
	g := gen.RMAT(11, 8, 0.57, 0.19, 0.19, 9)
	want := Count(g, 2)
	if want <= 0 {
		t.Fatalf("RMAT-11 triangle count = %d", want)
	}
	for _, k := range []Kernel{KernelMerge, KernelGalloping, KernelOriented} {
		var sum int64
		for _, s := range SupportsKernel(g, k, 2) {
			sum += int64(s)
		}
		if sum%3 != 0 {
			t.Fatalf("%v: support sum %d not divisible by 3", k, sum)
		}
		if sum/3 != want {
			t.Fatalf("%v: %d triangles via supports, Count says %d", k, sum/3, want)
		}
	}
}

func TestSupportsCtxFormsCancel(t *testing.T) {
	g := gen.RMAT(12, 8, 0.57, 0.19, 0.19, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SupportsOrientedCtx(ctx, g, 2, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled SupportsOrientedCtx returned %v", err)
	}
	if _, err := SupportsGallopingCtx(ctx, g, 2, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled SupportsGallopingCtx returned %v", err)
	}
	if _, err := SupportsKernelCtx(ctx, g, KernelAuto, 2, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled SupportsKernelCtx returned %v", err)
	}
}

// TestOrientedSpansNamedSupport: the oriented kernel must report itself
// under the same "Support" span name as the merge kernel, so pipeline
// reports aggregate the stage no matter which kernel ran.
func TestOrientedSpansNamedSupport(t *testing.T) {
	g := gen.RMAT(10, 8, 0.57, 0.19, 0.19, 3)
	tr := obs.NewTrace()
	if _, err := SupportsOrientedCtx(context.Background(), g, 3, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("oriented kernel emitted no spans")
	}
	for _, s := range tr.Spans() {
		if s.Name != "Support" {
			t.Fatalf("span named %q, want Support", s.Name)
		}
	}
}
