package truss

import (
	"context"
	"sync/atomic"

	"equitruss/internal/concur"
	"equitruss/internal/ds"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// Counters specific to the scan-free PKT kernel. Seeds and captures
// together account for every edge exactly once (pinned by tests); rehomes
// and compactions expose how much lazy bookkeeping the instance needed.
var (
	cPeelSeeds = obs.GetCounter("truss_peel_seed_admissions",
		"edges admitted to a level's initial frontier (bucket or scan seeded)")
	cPeelRehomes = obs.GetCounter("truss_peel_pending_rehomes",
		"edges rehomed into a future level's pending bucket after decrements")
	cPeelCompactions = obs.GetCounter("truss_peel_adj_compactions",
		"per-vertex adjacency compactions performed by the pkt peel kernel")
)

// pktChunk is the dynamic-scheduling grain over frontier slices: small
// enough that one hub-heavy chunk cannot straggle a whole sub-round, large
// enough that the atomic chunk claim is amortized.
const pktChunk = 64

// pktGallopRatio: when one endpoint's live list is at least this many times
// longer than the other's, the intersection switches from the linear merge
// to galloping probes of the long list — O(small · log(big)) instead of
// O(small + big), the difference between paying a hub's full degree on
// every incident peel and paying a few cache lines. The moving lower bound
// keeps galloping near-linear even on balanced lists, so the crossover sits
// low.
const pktGallopRatio = 2

// DecomposePKT is the legacy no-error form of DecomposePKTCtx (non-
// cancelable, excluded from fault injection). DecomposePKTT is the traced
// form.
func DecomposePKT(g *graph.Graph, supports []int32, threads int) (tau []int32, kmax int32) {
	return DecomposePKTT(g, supports, threads, nil)
}

// DecomposePKTT is DecomposePKT with observability.
func DecomposePKTT(g *graph.Graph, supports []int32, threads int, tr *obs.Trace) (tau []int32, kmax int32) {
	tau, kmax, err := DecomposePKTCtx(concur.WithoutFaults(context.Background()), g, supports, threads, tr)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection, so the ctx form cannot fail.
		panic("truss: " + err.Error())
	}
	return tau, kmax
}

// DecomposePKTCtx is the scan-free parallel peeling in the style of PKT
// (Kabir & Madduri) with Blanco–Low-style fine-grained load balancing. It
// produces exactly DecomposeSerial's trussness.
//
// Where the level-synchronous kernel rebuilds each level's frontier with a
// full-edge rescan, this kernel never rescans:
//
//   - Initial frontiers come from a counting sort of edges by starting
//     support (one O(m) pass), so level L's seed is read straight out of
//     bucket L.
//   - Within a level, an edge enters the next frontier exactly once — at
//     the atomic decrement that first drops its support to the active
//     level. Unit decrements make the crossing unique, so capture is
//     idempotent by construction.
//   - Edges whose support falls between the active level and their bucket
//     (so neither capture nor their stale bucket would find them) are
//     rehomed at level end into a pending bucket at their new support;
//     a per-edge stamp dedups the rehome list at one entry per level.
//   - Empty levels are jumped by walking the bucket index, touching no
//     dead edges.
//
// Triangle enumeration runs over a private copy of the adjacency that is
// lazily compacted: peeling an edge counts a dead slot against both
// endpoints, and once a quarter of a vertex's list is dead the survivors
// are copied forward (PKT's periodic graph compaction, applied per vertex).
// Intersections therefore shrink with the surviving graph instead of
// paying the original degrees all the way down.
//
// Frontier slices are processed under chunk-claimed dynamic scheduling
// (an atomic cursor over pktChunk-sized slices) so one hub edge cannot
// straggle a statically-partitioned sub-round. The triangle shared between
// two simultaneously peeled edges is settled by the same edge-ID tie-break
// as the level-synchronous kernel.
func DecomposePKTCtx(ctx context.Context, g *graph.Graph, supports []int32, threads int, tr *obs.Trace) (tau []int32, kmax int32, err error) {
	m := int32(g.NumEdges())
	tau = make([]int32, m)
	if m == 0 {
		return tau, MinTrussness, nil
	}
	if threads <= 0 {
		threads = concur.MaxThreads()
	}
	sup := make([]int32, m)
	copy(sup, supports)
	var maxSup int32
	for _, s := range sup {
		if s > maxSup {
			maxSup = s
		}
	}

	// Private compacted adjacency: CSR slot ranges never move, but only the
	// first alen[v] slots of v's range are meaningful and stay neighbor-
	// sorted. deadCnt[v] counts peeled edges still occupying slots.
	n := g.NumVertices()
	off := make([]int64, n+1)
	for v := int32(0); v < n; v++ {
		off[v+1] = off[v] + int64(g.Degree(v))
	}
	nbr := make([]int32, off[n])
	nid := make([]int32, off[n])
	alen := make([]int32, n)
	deadCnt := make([]int32, n)
	if err := concur.ForCtxT(ctx, tr, "TrussDecomp", int(n), threads, func(i int) {
		v := int32(i)
		copy(nbr[off[v]:off[v+1]], g.Neighbors(v))
		copy(nid[off[v]:off[v+1]], g.IncidentEIDs(v))
		alen[v] = int32(off[v+1] - off[v])
	}); err != nil {
		return nil, 0, err
	}

	// Counting-sort edges by starting support: byLevel[bstart[L]:bstart[L+1]]
	// is level L's seed bucket. One O(m + maxSup) pass replaces the
	// per-level full-edge rescans of the level-synchronous kernel.
	bstart := make([]int32, maxSup+2)
	for _, s := range sup {
		bstart[s+1]++
	}
	for s := int32(1); s <= maxSup+1; s++ {
		bstart[s] += bstart[s-1]
	}
	byLevel := make([]int32, m)
	fill := make([]int32, maxSup+1)
	for e := int32(0); e < m; e++ {
		s := sup[e]
		byLevel[bstart[s]+fill[s]] = e
		fill[s]++
	}

	deleted := ds.NewBitset(int(m))
	inCurr := ds.NewBitset(int(m))
	// pending[L] holds edges rehomed to support L after decrements;
	// dirtyStamp dedups the per-level rehome candidates (stamp = level+1,
	// zero means never touched).
	pending := make([][]int32, maxSup+2)
	dirtyStamp := make([]int32, m)

	nextBufs := make([][]int32, threads)
	dirtyBufs := make([][]int32, threads)
	touchBufs := make([][]int32, threads)

	edges := g.Edges()
	remaining := int64(m)
	level := int32(0)
	var curr []int32

	for remaining > 0 {
		if err := ctxDone(ctx); err != nil {
			return nil, 0, err
		}
		// Seed the frontier for this level from the initial bucket plus any
		// rehomed pending edges. Entries are admitted at most once: bucket
		// and pending membership are mutually exclusive (a pending entry
		// requires a decrement below the starting support), and stale
		// entries are filtered by the deleted/support check.
		curr = curr[:0]
		var seeds int64
		for i := bstart[level]; i < bstart[level+1]; i++ {
			if e := byLevel[i]; !deleted.Get(int(e)) && sup[e] == level {
				curr = append(curr, e)
				seeds++
			}
		}
		for _, e := range pending[level] {
			if !deleted.Get(int(e)) && sup[e] == level {
				curr = append(curr, e)
				seeds++
			}
		}
		pending[level] = nil
		cPeelSeeds.Add(seeds)
		if len(curr) == 0 {
			// Nothing peels at this level: jump it without touching any
			// dead edge. remaining > 0 guarantees a higher seed exists.
			cPeelLevelSkips.Inc()
			level++
			continue
		}
		cPeelLevels.Inc()

		for len(curr) > 0 {
			cPeelSubrounds.Inc()
			nf := len(curr)
			if err := concur.ForCtxT(ctx, tr, "TrussDecomp", nf, threads, func(i int) { inCurr.SetAtomic(int(curr[i])) }); err != nil {
				return nil, 0, err
			}
			for t := range nextBufs {
				nextBufs[t] = nextBufs[t][:0]
				touchBufs[t] = touchBufs[t][:0]
			}
			// Chunk-claimed dynamic scheduling over the frontier: workers
			// race an atomic cursor for pktChunk-sized slices, so skewed
			// per-edge triangle work cannot straggle one static block.
			var cursor atomic.Int64
			err := concur.ForThreadsCtxT(ctx, tr, "TrussDecomp", threads, func(tid int) {
				next := nextBufs[tid]
				dirty := dirtyBufs[tid]
				touch := touchBufs[tid]
				var decs int64
				stampLevel := level + 1
				for {
					if concur.Canceled(ctx) {
						break
					}
					lo := int(cursor.Add(pktChunk)) - pktChunk
					if lo >= nf {
						break
					}
					hi := lo + pktChunk
					if hi > nf {
						hi = nf
					}
					for i := lo; i < hi; i++ {
						e := curr[i]
						tau[e] = level + 2
						u, v := edges[e].U, edges[e].V
						touch = append(touch, u, v)
						// Intersect the compacted live prefixes. The triangle
						// handling is symmetric in (e1, e2), so orienting the
						// intersection from the shorter list is free.
						ub, ue := off[u], off[u]+int64(alen[u])
						vb, ve := off[v], off[v]+int64(alen[v])
						if ue-ub > ve-vb {
							ub, ue, vb, ve = vb, ve, ub, ue
						}
						if ve-vb >= pktGallopRatio*(ue-ub) {
							// Skewed endpoints: probe the long list by
							// galloping from a monotone lower bound instead of
							// streaming a hub's whole adjacency per peel.
							li := vb
							for si := ub; si < ue && li < ve; si++ {
								a := nbr[si]
								if nbr[li] < a {
									step := int64(1)
									j := li + 1
									for j < ve && nbr[j] < a {
										li = j
										j += step
										step <<= 1
									}
									if j > ve {
										j = ve
									}
									lo, hi := li+1, j
									for lo < hi {
										mid := (lo + hi) >> 1
										if nbr[mid] < a {
											lo = mid + 1
										} else {
											hi = mid
										}
									}
									li = lo
								}
								if li < ve && nbr[li] == a {
									next, dirty = pktTriangle(sup, dirtyStamp, deleted, inCurr,
										e, nid[si], nid[li], level, stampLevel, next, dirty, &decs)
									li++
								}
							}
						} else {
							// Balanced endpoints: linear sorted merge.
							for ub < ue && vb < ve {
								a, b := nbr[ub], nbr[vb]
								switch {
								case a < b:
									ub++
								case a > b:
									vb++
								default:
									next, dirty = pktTriangle(sup, dirtyStamp, deleted, inCurr,
										e, nid[ub], nid[vb], level, stampLevel, next, dirty, &decs)
									ub++
									vb++
								}
							}
						}
					}
				}
				nextBufs[tid] = next
				dirtyBufs[tid] = dirty
				touchBufs[tid] = touch
				cPeelDecrements.Add(decs)
				cPeelCaptures.Add(int64(len(next)))
			})
			if err != nil {
				return nil, 0, err
			}
			// Retire the processed frontier and charge each endpoint one
			// dead adjacency slot.
			if err := concur.ForCtxT(ctx, tr, "TrussDecomp", nf, threads, func(i int) {
				e := curr[i]
				inCurr.ClearAtomic(int(e))
				deleted.SetAtomic(int(e))
				atomic.AddInt32(&deadCnt[edges[e].U], 1)
				atomic.AddInt32(&deadCnt[edges[e].V], 1)
			}); err != nil {
				return nil, 0, err
			}
			// Compact touched vertices whose lists turned half dead. The
			// CAS on deadCnt claims the vertex, so duplicate touch entries
			// across threads compact at most once, and nothing reads a list
			// concurrently (intersections only run in the processing pass).
			if err := concur.ForThreadsCtxT(ctx, tr, "TrussDecomp", threads, func(tid int) {
				var comps int64
				for _, v := range touchBufs[tid] {
					d := atomic.LoadInt32(&deadCnt[v])
					if d == 0 {
						continue
					}
					// Claim the vertex before reading alen: the claim
					// holder is the only thread allowed to touch v's list
					// or length, so duplicate touch entries are safe.
					if !atomic.CompareAndSwapInt32(&deadCnt[v], d, 0) {
						continue
					}
					if 4*d < alen[v] {
						atomic.AddInt32(&deadCnt[v], d) // too few dead: unclaim
						continue
					}
					w := off[v]
					for r := off[v]; r < off[v]+int64(alen[v]); r++ {
						if !deleted.Get(int(nid[r])) {
							nbr[w] = nbr[r]
							nid[w] = nid[r]
							w++
						}
					}
					alen[v] = int32(w - off[v])
					comps++
				}
				cPeelCompactions.Add(comps)
			}); err != nil {
				return nil, 0, err
			}
			remaining -= int64(nf)
			curr = curr[:0]
			for t := range nextBufs {
				curr = append(curr, nextBufs[t]...)
			}
		}

		// Rehome this level's dirty survivors: edges whose support dropped
		// but landed above the active level belong in the bucket of their
		// new support, where the seed gather of that level will find them.
		var rehomes int64
		for t := range dirtyBufs {
			for _, e := range dirtyBufs[t] {
				if deleted.Get(int(e)) {
					continue
				}
				if s := sup[e]; s > level {
					pending[s] = append(pending[s], e)
					rehomes++
				}
			}
			dirtyBufs[t] = dirtyBufs[t][:0]
		}
		cPeelRehomes.Add(rehomes)
		level++
	}
	return tau, KMax(tau), nil
}

// pktTriangle settles one surviving triangle (e, e1, e2) found while
// peeling e: dead partners are skipped, the triangle shared with another
// frontier edge is decremented by exactly one owner (the smaller edge ID —
// the same tie-break as the level-synchronous kernel), and a fully in-
// frontier triangle decrements nothing. The handling is symmetric in
// (e1, e2), so callers may pass the pair in either order.
func pktTriangle(sup, dirtyStamp []int32, deleted, inCurr *ds.Bitset, e, e1, e2, level, stampLevel int32, next, dirty []int32, decs *int64) ([]int32, []int32) {
	if deleted.Get(int(e1)) || deleted.Get(int(e2)) {
		return next, dirty
	}
	c1 := inCurr.Get(int(e1))
	c2 := inCurr.Get(int(e2))
	switch {
	case c1 && c2:
		// Whole triangle peeled this sub-round.
	case c1:
		// e and e1 peeled together; e owns the decrement of e2 iff it has
		// the smaller ID.
		if e < e1 {
			next, dirty = pktDec(sup, dirtyStamp, e2, level, stampLevel, next, dirty, decs)
		}
	case c2:
		if e < e2 {
			next, dirty = pktDec(sup, dirtyStamp, e1, level, stampLevel, next, dirty, decs)
		}
	default:
		next, dirty = pktDec(sup, dirtyStamp, e1, level, stampLevel, next, dirty, decs)
		next, dirty = pktDec(sup, dirtyStamp, e2, level, stampLevel, next, dirty, decs)
	}
	return next, dirty
}

// pktDec applies one atomic support decrement to edge e and routes the
// result: crossing exactly into the active level captures e into the next
// frontier (the unit decrement makes the crossing unique, so an edge is
// captured at most once per decomposition); landing above the level
// records e once per level in the dirty list via a stamp CAS, so the
// level-end rehome can move it to its new bucket.
func pktDec(sup, dirtyStamp []int32, e, level, stampLevel int32, next, dirty []int32, decs *int64) ([]int32, []int32) {
	*decs++
	v := atomic.AddInt32(&sup[e], -1)
	if v == level {
		next = append(next, e)
	} else if v > level {
		if old := atomic.LoadInt32(&dirtyStamp[e]); old != stampLevel &&
			atomic.CompareAndSwapInt32(&dirtyStamp[e], old, stampLevel) {
			dirty = append(dirty, e)
		}
	}
	return next, dirty
}

// ctxDone polls a context tolerating nil.
func ctxDone(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
