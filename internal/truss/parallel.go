package truss

import (
	"context"
	"math"
	"sync/atomic"

	"equitruss/internal/concur"
	"equitruss/internal/ds"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// Counters emitted by the parallel peeling kernels: levels and sub-rounds
// expose how level-synchronous the instance is, decrements count the
// triangle-destruction work, and captures count transition admissions into
// a frontier. Together with truss_peel_seed_admissions (level-start
// admissions, see pkt.go), every edge is admitted exactly once:
// seeds + captures == m for a full decomposition — the invariant that
// makes the counters trustworthy and is pinned by tests.
var (
	cPeelLevels = obs.GetCounter("truss_peel_levels",
		"support levels processed by the parallel peeling decomposition")
	cPeelSubrounds = obs.GetCounter("truss_peel_subrounds",
		"frontier sub-rounds processed by the parallel peeling decomposition")
	cPeelDecrements = obs.GetCounter("truss_support_decrements",
		"atomic support decrements applied by the parallel peeling")
	cPeelCaptures = obs.GetCounter("truss_frontier_captures",
		"edges captured into a peel frontier on a support-level transition")
	cPeelLevelSkips = obs.GetCounter("truss_peel_level_skips",
		"empty support levels skipped by jumping to the minimum surviving support")
)

// DecomposeParallel is the level-synchronous parallel peeling: at peel
// level L all alive edges with support <= L are peeled together in
// sub-rounds, decrementing surviving triangle partners with atomics. The
// triangle shared between two simultaneously peeled edges is settled by an
// edge-ID tie-break so each destroyed triangle decrements each survivor
// exactly once — the discipline of shared-memory PKT-style decompositions.
//
// The result is exactly DecomposeSerial's (trussness is unique).
// DecomposeParallelT is the traced form.
func DecomposeParallel(g *graph.Graph, supports []int32, threads int) (tau []int32, kmax int32) {
	return DecomposeParallelT(g, supports, threads, nil)
}

// DecomposeParallelT is DecomposeParallel with observability: each peel
// sub-round's processing pass emits per-thread "TrussDecomp" spans into tr,
// and the peeling counters above accumulate regardless of tracing.
func DecomposeParallelT(g *graph.Graph, supports []int32, threads int, tr *obs.Trace) (tau []int32, kmax int32) {
	tau, kmax, err := DecomposeParallelCtx(concur.WithoutFaults(context.Background()), g, supports, threads, tr)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection, so the ctx form cannot fail.
		panic("truss: " + err.Error())
	}
	return tau, kmax
}

// DecomposeParallelCtx is DecomposeParallelT with cancellation: the peel
// checks ctx at every scheduler barrier and between sub-rounds, returning
// ctx.Err() (and no trussness) promptly with all workers joined.
func DecomposeParallelCtx(ctx context.Context, g *graph.Graph, supports []int32, threads int, tr *obs.Trace) (tau []int32, kmax int32, err error) {
	m := int32(g.NumEdges())
	tau = make([]int32, m)
	if m == 0 {
		return tau, MinTrussness, nil
	}
	if threads <= 0 {
		threads = concur.MaxThreads()
	}
	sup := make([]int32, m)
	copy(sup, supports)
	deleted := ds.NewBitset(int(m))
	inCurr := ds.NewBitset(int(m))
	remaining := int64(m)
	level := int32(0)

	// Per-thread next-frontier buffers, reused across sub-rounds.
	nextBufs := make([][]int32, threads)

	for remaining > 0 {
		cPeelLevels.Inc()
		// Collect the initial frontier for this level, learning the minimum
		// surviving support in the same pass.
		curr, minAlive, err := collectFrontier(ctx, sup, deleted, level, threads, tr)
		if err != nil {
			return nil, 0, err
		}
		if len(curr) == 0 {
			// No alive edge at or below this level: jump straight to the
			// lowest surviving support instead of rescanning once per empty
			// level (the PKT skip-to-next-live-value discipline). minAlive >
			// level here because remaining > 0 guarantees alive edges exist.
			cPeelLevelSkips.Add(int64(minAlive - level))
			level = minAlive
			continue
		}
		for len(curr) > 0 {
			cPeelSubrounds.Inc()
			n := len(curr)
			if err := concur.ForCtxT(ctx, tr, "TrussDecomp", n, threads, func(i int) { inCurr.SetAtomic(int(curr[i])) }); err != nil {
				return nil, 0, err
			}
			for t := range nextBufs {
				nextBufs[t] = nextBufs[t][:0]
			}
			err := concur.ForThreadsCtxT(ctx, tr, "TrussDecomp", threads, func(tid int) {
				lo := tid * n / threads
				hi := (tid + 1) * n / threads
				next := nextBufs[tid]
				var decs int64
				for i := lo; i < hi; i++ {
					e := curr[i]
					tau[e] = level + 2
					g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
						if deleted.Get(int(e1)) || deleted.Get(int(e2)) {
							return true
						}
						c1 := inCurr.Get(int(e1))
						c2 := inCurr.Get(int(e2))
						switch {
						case c1 && c2:
							// Whole triangle peeled this sub-round.
						case c1:
							// e and e1 peeled together; e owns the
							// decrement of e2 iff it has the smaller ID.
							if e < e1 {
								next = decCapture(sup, e2, level, next, &decs)
							}
						case c2:
							if e < e2 {
								next = decCapture(sup, e1, level, next, &decs)
							}
						default:
							next = decCapture(sup, e1, level, next, &decs)
							next = decCapture(sup, e2, level, next, &decs)
						}
						return true
					})
				}
				nextBufs[tid] = next
				cPeelDecrements.Add(decs)
				cPeelCaptures.Add(int64(len(next)))
			})
			if err != nil {
				return nil, 0, err
			}
			// Retire the processed frontier.
			if err := concur.ForCtxT(ctx, tr, "TrussDecomp", n, threads, func(i int) {
				e := curr[i]
				inCurr.ClearAtomic(int(e))
				deleted.SetAtomic(int(e))
			}); err != nil {
				return nil, 0, err
			}
			remaining -= int64(n)
			curr = curr[:0]
			for t := range nextBufs {
				curr = append(curr, nextBufs[t]...)
			}
		}
		level++
	}
	return tau, KMax(tau), nil
}

// decCapture atomically decrements sup[e] and appends e to next exactly
// when the decrement crosses into the current peel level — the
// capture-on-transition trick that guarantees each edge enters the frontier
// once. decs accumulates thread-locally; the worker flushes it to the
// process counter once per block so the hot loop stays atomic-free.
func decCapture(sup []int32, e, level int32, next []int32, decs *int64) []int32 {
	*decs++
	if v := atomic.AddInt32(&sup[e], -1); v == level {
		next = append(next, e)
	}
	return next
}

// collectFrontier gathers all alive edges with support <= level using
// per-thread buffers. It also returns the minimum support among the alive
// edges left out of the frontier (math.MaxInt32 when none remain) so the
// caller can jump over empty levels without another scan.
//
// Admission accounting: the scan counts each collected edge once into
// truss_peel_seed_admissions. An edge already captured into a frontier by
// a support transition in a prior sub-round of the same level is deleted
// (or in-frontier) by the time the next level's scan runs, so a collected
// edge can never also have been counted as a capture — seeds and captures
// partition the edge set.
func collectFrontier(ctx context.Context, sup []int32, deleted *ds.Bitset, level int32, threads int, tr *obs.Trace) ([]int32, int32, error) {
	m := len(sup)
	bufs := make([][]int32, threads)
	mins := make([]int32, threads)
	err := concur.ForThreadsCtxT(ctx, tr, "TrussDecomp", threads, func(tid int) {
		lo := tid * m / threads
		hi := (tid + 1) * m / threads
		var buf []int32
		min := int32(math.MaxInt32)
		for e := lo; e < hi; e++ {
			if deleted.Get(e) {
				continue
			}
			if s := sup[e]; s <= level {
				buf = append(buf, int32(e))
			} else if s < min {
				min = s
			}
		}
		bufs[tid] = buf
		mins[tid] = min
	})
	if err != nil {
		return nil, 0, err
	}
	var out []int32
	minAlive := int32(math.MaxInt32)
	for t, b := range bufs {
		out = append(out, b...)
		if mins[t] < minAlive {
			minAlive = mins[t]
		}
	}
	cPeelSeeds.Add(int64(len(out)))
	return out, minAlive, nil
}
