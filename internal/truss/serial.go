// Package truss implements k-truss decomposition (the TrussDecomp kernel):
// for every edge the trussness τ(e), the largest k such that e belongs to a
// k-truss of G (Definition 4 of the paper).
//
// Two production implementations are provided — the classic serial
// bucket-peeling algorithm (Wang & Cheng) and a level-synchronous parallel
// peeling in the style of shared-memory truss decomposition (Kabir &
// Madduri / Smith et al.) — plus a brute-force oracle for tests. All three
// agree exactly; the decomposition is deterministic.
package truss

import (
	"context"

	"equitruss/internal/ds"
	"equitruss/internal/graph"
)

// MinTrussness is the trussness of an edge that participates in no
// triangle: every edge is trivially a 2-truss.
const MinTrussness = 2

// DecomposeSerial peels edges in non-decreasing support order using a
// bucket queue, assigning τ(e) = peel-level + 2. supports must be the exact
// per-edge triangle counts (see package triangle); it is not modified.
// Returns the trussness array indexed by edge ID and kmax = max τ.
func DecomposeSerial(g *graph.Graph, supports []int32) (tau []int32, kmax int32) {
	tau, kmax, _ = DecomposeSerialCtx(nil, g, supports)
	return tau, kmax
}

// DecomposeSerialCtx is DecomposeSerial with cancellation: the peel loop
// polls ctx every few thousand pops and returns ctx.Err() (and no
// trussness) once it fires. A nil context is never canceled.
func DecomposeSerialCtx(ctx context.Context, g *graph.Graph, supports []int32) (tau []int32, kmax int32, err error) {
	m := int32(g.NumEdges())
	tau = make([]int32, m)
	if m == 0 {
		return tau, MinTrussness, nil
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var maxSup int32
	for _, s := range supports {
		if s > maxSup {
			maxSup = s
		}
	}
	q := ds.NewBucketQueue(supports, maxSup)
	level := int32(0)
	pops := 0
	for !q.Empty() {
		if pops++; pops&4095 == 0 && done != nil {
			select {
			case <-done:
				return nil, 0, ctx.Err()
			default:
			}
		}
		e, s := q.PopMin()
		if s > level {
			level = s
		}
		tau[e] = level + 2
		g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
			if q.Extracted(e1) || q.Extracted(e2) {
				return true // triangle already destroyed
			}
			q.DecreaseKey(e1, level)
			q.DecreaseKey(e2, level)
			return true
		})
	}
	return tau, level + 2, nil
}

// KMax returns the maximum trussness in a decomposition result.
func KMax(tau []int32) int32 {
	k := int32(MinTrussness)
	for _, t := range tau {
		if t > k {
			k = t
		}
	}
	return k
}

// DecomposeBrute computes trussness by direct iterated deletion: for each
// k it repeatedly removes edges with fewer than k-2 surviving triangles
// until a fixpoint (the maximal k-truss), and τ(e) is the last k at which e
// survived. Exponentially clearer, polynomially slower — the test oracle.
func DecomposeBrute(g *graph.Graph) []int32 {
	m := int32(g.NumEdges())
	tau := make([]int32, m)
	for i := range tau {
		tau[i] = MinTrussness
	}
	alive := make([]bool, m)
	for i := range alive {
		alive[i] = true
	}
	for k := int32(3); ; k++ {
		// Peel to the maximal k-truss of the surviving subgraph.
		for {
			var removed []int32
			for e := int32(0); e < m; e++ {
				if !alive[e] {
					continue
				}
				var sup int32
				g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
					if alive[e1] && alive[e2] {
						sup++
					}
					return true
				})
				if sup < k-2 {
					removed = append(removed, e)
				}
			}
			if len(removed) == 0 {
				break
			}
			for _, e := range removed {
				alive[e] = false
			}
		}
		any := false
		for e := int32(0); e < m; e++ {
			if alive[e] {
				tau[e] = k
				any = true
			}
		}
		if !any {
			return tau
		}
	}
}
