package truss

import (
	"testing"

	"equitruss/internal/gen"
)

func TestMaximalKTruss(t *testing.T) {
	g := gen.SharedEdgeCliquePair(6, 4) // K6 + K4 sharing an edge
	tau := serialTau(g)

	// k=6: exactly the K6 (15 edges).
	t6, err := MaximalKTruss(g, tau, 6)
	if err != nil {
		t.Fatal(err)
	}
	if t6.NumEdges() != 15 {
		t.Fatalf("6-truss edges = %d, want 15", t6.NumEdges())
	}
	// Every edge of the k-truss must have support >= k-2 inside it.
	for e := int32(0); e < int32(t6.NumEdges()); e++ {
		ed := t6.Edge(e)
		if s := t6.CommonNeighborCount(ed.U, ed.V); s < 4 {
			t.Fatalf("edge %v support %d < 4 in 6-truss", ed, s)
		}
	}
	// k=4: both cliques (K4 edges have τ=4).
	t4, err := MaximalKTruss(g, tau, 4)
	if err != nil {
		t.Fatal(err)
	}
	if t4.NumEdges() != int64(g.NumEdges()) {
		t.Fatalf("4-truss edges = %d, want all %d", t4.NumEdges(), g.NumEdges())
	}
	// k beyond kmax: empty.
	t9, err := MaximalKTruss(g, tau, 9)
	if err != nil {
		t.Fatal(err)
	}
	if t9.NumEdges() != 0 {
		t.Fatalf("9-truss edges = %d, want 0", t9.NumEdges())
	}
}

func TestTrussnessHistogram(t *testing.T) {
	g := gen.BridgedCliques(5)
	tau := serialTau(g)
	hist := TrussnessHistogram(tau)
	if hist[5] != 20 || hist[2] != 1 {
		t.Fatalf("histogram = %v", hist)
	}
}
