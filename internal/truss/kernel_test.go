package truss

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/triangle"
)

var allPeelKernels = []PeelKernel{PeelSerial, PeelLevelSync, PeelPKT, PeelAuto}

func TestPeelKernelParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want PeelKernel
	}{
		{"auto", PeelAuto}, {"", PeelAuto},
		{"serial", PeelSerial},
		{"levelsync", PeelLevelSync}, {"level-sync", PeelLevelSync}, {"ls", PeelLevelSync},
		{"pkt", PeelPKT}, {"scanfree", PeelPKT}, {"scan-free", PeelPKT},
	} {
		got, err := ParsePeelKernel(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePeelKernel(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePeelKernel("bogus"); err == nil {
		t.Fatal("ParsePeelKernel accepted bogus name")
	}
	for _, k := range allPeelKernels {
		if _, err := ParsePeelKernel(k.String()); err != nil {
			t.Fatalf("round-trip %v: %v", k, err)
		}
	}
}

func TestChoosePeelKernel(t *testing.T) {
	if k := ChoosePeelKernel(100, 5, 8); k != PeelSerial {
		t.Fatalf("tiny graph chose %v, want serial", k)
	}
	if k := ChoosePeelKernel(1<<21, 2000, 8); k != PeelPKT {
		t.Fatalf("large spread chose %v, want pkt", k)
	}
	if k := ChoosePeelKernel(1<<16, 4, 8); k != PeelLevelSync {
		t.Fatalf("flat mid-size chose %v, want levelsync", k)
	}
	if k := ChoosePeelKernel(1<<16, 4, 1); k != PeelSerial {
		t.Fatalf("flat mid-size on 1 thread chose %v, want serial", k)
	}
}

// TestPKTMatchesSerial: randomized differential equality of the scan-free
// kernel (and the dispatcher over every kernel) against the serial bucket
// queue, including kmax.
func TestPKTMatchesSerial(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed, 30, 0.25)
		sup := triangle.Supports(g, 2)
		want, wantK := DecomposeSerial(g, sup)
		for _, threads := range []int{1, 2, 4} {
			got, gotK := DecomposePKT(g, sup, threads)
			if gotK != wantK {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		for _, k := range allPeelKernels {
			got, gotK := DecomposeKernel(g, sup, k, 2)
			if gotK != wantK {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPKTMatchesSerialOnStructuredGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"figure3":    gen.PaperFigure3(),
		"planted":    gen.PlantedPartition(10, 8, 0.8, 1.0, 5),
		"rmat":       gen.RMAT(10, 6, 0.57, 0.19, 0.19, 6),
		"ba":         gen.BarabasiAlbert(400, 4, 7),
		"clique":     gen.Clique(12),
		"strip":      gen.TriangleStrip(50),
		"sharedEdge": gen.SharedEdgeCliquePair(6, 5),
	}
	for name, g := range graphs {
		sup := triangle.Supports(g, 2)
		want, wantK := DecomposeSerial(g, sup)
		for _, threads := range []int{1, 3} {
			got, gotK := DecomposePKT(g, sup, threads)
			if gotK != wantK {
				t.Fatalf("%s threads=%d: kmax %d vs serial %d", name, threads, gotK, wantK)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s threads=%d: τ[%d] pkt %d vs serial %d", name, threads, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPKTLevelSkip reuses the triangle-next-to-K16 gap graph: the bucket
// index must jump the 12 empty levels between support 1 and 14 without
// touching dead edges, keeping τ and kmax bit-identical to serial.
func TestPKTLevelSkip(t *testing.T) {
	in := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}
	const base, n = int32(3), int32(16)
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			in = append(in, graph.Edge{U: base + u, V: base + v})
		}
	}
	g, err := graph.FromEdgeList(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	sup := triangle.Supports(g, 2)
	want, wantK := DecomposeSerial(g, sup)
	before := cPeelLevelSkips.Value()
	for _, threads := range []int{1, 2, 4} {
		got, gotK := DecomposePKT(g, sup, threads)
		if gotK != wantK {
			t.Fatalf("threads=%d: kmax %d vs %d", threads, gotK, wantK)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("threads=%d: τ[%d] pkt %d vs serial %d", threads, i, got[i], want[i])
			}
		}
	}
	if skips := cPeelLevelSkips.Value() - before; skips < 12 {
		t.Fatalf("level skips = %d, want >= 12", skips)
	}
}

// TestFrontierAdmissionAccounting pins the counter contract of both
// parallel peeling kernels: every edge is admitted to a frontier exactly
// once — either by a level-start seed (truss_peel_seed_admissions) or by a
// support-transition capture (truss_frontier_captures) — so for a full
// decomposition seeds + captures equals the edge count exactly. A
// double-counted capture (an edge re-admitted in a later sub-round of the
// same level) would break the equality.
func TestFrontierAdmissionAccounting(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat":    gen.RMAT(10, 6, 0.57, 0.19, 0.19, 6),
		"clique":  gen.Clique(16),
		"planted": gen.PlantedPartition(12, 9, 0.7, 1.2, 3),
	}
	for name, g := range graphs {
		sup := triangle.Supports(g, 2)
		m := int64(g.NumEdges())
		for _, kernel := range []PeelKernel{PeelLevelSync, PeelPKT} {
			for _, threads := range []int{1, 4} {
				seeds0, caps0 := cPeelSeeds.Value(), cPeelCaptures.Value()
				DecomposeKernel(g, sup, kernel, threads)
				seeds := cPeelSeeds.Value() - seeds0
				caps := cPeelCaptures.Value() - caps0
				if seeds+caps != m {
					t.Fatalf("%s/%v threads=%d: seeds %d + captures %d = %d, want exactly m=%d",
						name, kernel, threads, seeds, caps, seeds+caps, m)
				}
			}
		}
	}
}

// TestKMaxInvariant: every kernel must return kmax equal to the maximum
// trussness it assigned — including when the final frontier peels the last
// edges at a support below the last processed level after a level skip
// (the gap graph ends in a K16 peeled after a 12-level jump).
func TestKMaxInvariant(t *testing.T) {
	in := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}
	const base, n = int32(3), int32(16)
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			in = append(in, graph.Edge{U: base + u, V: base + v})
		}
	}
	gap, err := graph.FromEdgeList(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"gap":     gap,
		"rmat":    gen.RMAT(9, 5, 0.57, 0.19, 0.19, 11),
		"path":    gen.Path(10), // triangle-free: kmax must be MinTrussness
		"bridged": gen.BridgedCliques(6),
	}
	for name, g := range graphs {
		sup := triangle.Supports(g, 2)
		for _, kernel := range allPeelKernels {
			tau, kmax := DecomposeKernel(g, sup, kernel, 4)
			if want := KMax(tau); kmax != want {
				t.Fatalf("%s/%v: kmax = %d, want max τ = %d", name, kernel, kmax, want)
			}
		}
	}
}

// TestPKTCancellation: a pre-canceled context must abort the scan-free
// kernel promptly with ctx.Err() and no trussness.
func TestPKTCancellation(t *testing.T) {
	g := gen.RMAT(10, 6, 0.57, 0.19, 0.19, 6)
	sup := triangle.Supports(g, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tau, _, err := DecomposePKTCtx(ctx, g, sup, 2, nil)
	if err == nil || tau != nil {
		t.Fatalf("canceled pkt returned tau=%v err=%v, want nil, ctx.Err()", tau, err)
	}
}

func TestDecomposeKernelEmpty(t *testing.T) {
	g, _ := graph.FromEdgeList(nil, 4)
	for _, k := range allPeelKernels {
		tau, kmax := DecomposeKernel(g, nil, k, 2)
		if len(tau) != 0 || kmax != MinTrussness {
			t.Fatalf("%v empty: tau=%v kmax=%d", k, tau, kmax)
		}
	}
}

func TestDecomposeKernelUnknown(t *testing.T) {
	g := gen.Clique(4)
	sup := triangle.Supports(g, 1)
	if _, _, err := DecomposeKernelCtx(context.Background(), g, sup, PeelKernel(99), 1, nil); err == nil {
		t.Fatal("unknown kernel did not error")
	}
}

func BenchmarkPeelKernels(b *testing.B) {
	g := gen.RMAT(14, 8, 0.57, 0.19, 0.19, 42)
	sup := triangle.Supports(g, 0)
	for _, k := range []PeelKernel{PeelSerial, PeelLevelSync, PeelPKT} {
		b.Run(fmt.Sprint(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DecomposeKernel(g, sup, k, 0)
			}
		})
	}
}
