package truss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/triangle"
)

func randomGraph(seed int64, n int32, p float64) *graph.Graph {
	rnd := rand.New(rand.NewSource(seed))
	var in []graph.Edge
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rnd.Float64() < p {
				in = append(in, graph.Edge{U: u, V: v})
			}
		}
	}
	g, err := graph.FromEdgeList(in, n)
	if err != nil {
		panic(err)
	}
	return g
}

func serialTau(g *graph.Graph) []int32 {
	sup := triangle.Supports(g, 1)
	tau, _ := DecomposeSerial(g, sup)
	return tau
}

func TestCliqueTrussness(t *testing.T) {
	// K_n is an n-truss: every edge has trussness n.
	for n := int32(3); n <= 8; n++ {
		g := gen.Clique(n)
		tau := serialTau(g)
		for e, k := range tau {
			if k != n {
				t.Fatalf("K%d: τ[%d] = %d, want %d", n, e, k, n)
			}
		}
	}
}

func TestTriangleFreeTrussness(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Path(10), gen.Cycle(12)} {
		tau := serialTau(g)
		for e, k := range tau {
			if k != MinTrussness {
				t.Fatalf("τ[%d] = %d, want 2", e, k)
			}
		}
	}
}

func TestKMaxHelper(t *testing.T) {
	if KMax(nil) != MinTrussness {
		t.Fatal("KMax(nil)")
	}
	if KMax([]int32{2, 5, 3}) != 5 {
		t.Fatal("KMax wrong")
	}
}

func TestBridgedCliquesTrussness(t *testing.T) {
	// Two K6 joined by a bridge: clique edges τ=6, bridge τ=2.
	g := gen.BridgedCliques(6)
	tau := serialTau(g)
	bridge := g.EdgeID(5, 6)
	for e, k := range tau {
		want := int32(6)
		if int32(e) == bridge {
			want = 2
		}
		if k != want {
			t.Fatalf("τ[%d] = %d, want %d", e, k, want)
		}
	}
}

func TestTriangleStripTrussness(t *testing.T) {
	g := gen.TriangleStrip(12)
	tau := serialTau(g)
	for e, k := range tau {
		if k != 3 {
			t.Fatalf("strip τ[%d] = %d, want 3", e, k)
		}
	}
}

func TestSerialMatchesBrute(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed, 18, 0.35)
		tau := serialTau(g)
		want := DecomposeBrute(g)
		for i := range want {
			if tau[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed, 30, 0.25)
		sup := triangle.Supports(g, 2)
		want, wantK := DecomposeSerial(g, sup)
		for _, threads := range []int{1, 2, 4} {
			got, gotK := DecomposeParallel(g, sup, threads)
			if gotK != wantK {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMatchesSerialOnStructuredGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"figure3":    gen.PaperFigure3(),
		"planted":    gen.PlantedPartition(10, 8, 0.8, 1.0, 5),
		"rmat":       gen.RMAT(10, 6, 0.57, 0.19, 0.19, 6),
		"ba":         gen.BarabasiAlbert(400, 4, 7),
		"clique":     gen.Clique(12),
		"strip":      gen.TriangleStrip(50),
		"sharedEdge": gen.SharedEdgeCliquePair(6, 5),
	}
	for name, g := range graphs {
		sup := triangle.Supports(g, 2)
		want, _ := DecomposeSerial(g, sup)
		got, _ := DecomposeParallel(g, sup, 2)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: τ[%d] parallel %d vs serial %d", name, i, got[i], want[i])
			}
		}
	}
}

// TestParallelLevelSkip peels a triangle next to a K16: supports are 1 and
// 14, so levels 2..13 are empty and the peeler must jump the gap (counted
// in truss_peel_level_skips) while keeping τ bit-identical to the serial
// decomposition at every thread count.
func TestParallelLevelSkip(t *testing.T) {
	in := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}
	const base, n = int32(3), int32(16)
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			in = append(in, graph.Edge{U: base + u, V: base + v})
		}
	}
	g, err := graph.FromEdgeList(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	sup := triangle.Supports(g, 2)
	want, wantK := DecomposeSerial(g, sup)
	if wantK != 16 {
		t.Fatalf("serial kmax = %d, want 16", wantK)
	}
	before := cPeelLevelSkips.Value()
	for _, threads := range []int{1, 2, 4, 8} {
		got, gotK := DecomposeParallel(g, sup, threads)
		if gotK != wantK {
			t.Fatalf("threads=%d: kmax %d vs %d", threads, gotK, wantK)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("threads=%d: τ[%d] parallel %d vs serial %d", threads, i, got[i], want[i])
			}
		}
	}
	// Each run must cross the 12-level gap between support 1 and 14 in one
	// jump rather than scanning it level by level.
	if skips := cPeelLevelSkips.Value() - before; skips < 12 {
		t.Fatalf("level skips = %d, want >= 12", skips)
	}
}

// TestTrussnessInvariant checks the defining property directly: within the
// subgraph of edges with τ >= k, every such edge has at least k-2
// triangles (so H_k is a k-truss), for every k present.
func TestTrussnessInvariant(t *testing.T) {
	g := gen.PlantedPartition(6, 10, 0.7, 1.0, 9)
	tau := serialTau(g)
	kmax := KMax(tau)
	for k := int32(3); k <= kmax; k++ {
		for e := int32(0); e < int32(g.NumEdges()); e++ {
			if tau[e] < k {
				continue
			}
			var sup int32
			g.ForEachTriangleOf(e, func(w, e1, e2 int32) bool {
				if tau[e1] >= k && tau[e2] >= k {
					sup++
				}
				return true
			})
			if sup < k-2 {
				t.Fatalf("k=%d: edge %d has support %d in H_k", k, e, sup)
			}
		}
	}
}

// TestTrussnessMaximality: an edge with τ(e)=k must NOT survive peeling at
// k+1 — checked via the brute-force oracle already, but here directly on a
// structured example to catch off-by-one regressions.
func TestTrussnessMaximality(t *testing.T) {
	g := gen.SharedEdgeCliquePair(6, 4) // K6 and K4 sharing an edge
	tau := serialTau(g)
	want := DecomposeBrute(g)
	for i := range want {
		if tau[i] != want[i] {
			t.Fatalf("τ[%d] = %d, oracle %d", i, tau[i], want[i])
		}
	}
	// The shared edge must carry the larger clique's trussness.
	shared := g.EdgeID(4, 5)
	if tau[shared] != 6 {
		t.Fatalf("shared edge τ = %d, want 6", tau[shared])
	}
}

func TestDecomposeEmptyAndTiny(t *testing.T) {
	g, _ := graph.FromEdgeList(nil, 4)
	tau, kmax := DecomposeSerial(g, nil)
	if len(tau) != 0 || kmax != MinTrussness {
		t.Fatalf("empty: tau=%v kmax=%d", tau, kmax)
	}
	tau, kmax = DecomposeParallel(g, nil, 2)
	if len(tau) != 0 || kmax != MinTrussness {
		t.Fatalf("empty parallel: tau=%v kmax=%d", tau, kmax)
	}
	single, _ := graph.FromEdgeList([]graph.Edge{{U: 0, V: 1}}, 0)
	sup := triangle.Supports(single, 1)
	tau, kmax = DecomposeSerial(single, sup)
	if tau[0] != 2 || kmax != 2 {
		t.Fatalf("single edge: τ=%d kmax=%d", tau[0], kmax)
	}
}
