package truss

import (
	"context"
	"fmt"

	"equitruss/internal/concur"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// PeelKernel selects the TrussDecomp-stage implementation. The zero value
// is PeelAuto, which picks a kernel per instance from the edge count and
// the peel-level spread — the production default. All kernels produce
// bit-identical trussness.
type PeelKernel int

const (
	// PeelAuto picks serial, levelsync, or pkt per instance (see
	// ChoosePeelKernel).
	PeelAuto PeelKernel = iota
	// PeelSerial is the classic sequential bucket-queue peeling: exact
	// decrease-key, no atomics, no barriers — unbeatable on small graphs.
	PeelSerial
	// PeelLevelSync is the level-synchronous parallel peeling that rebuilds
	// each level's frontier with a full-edge scan (DecomposeParallelCtx).
	PeelLevelSync
	// PeelPKT is the scan-free parallel peeling: counting-sort seed
	// buckets, capture-on-transition frontiers, lazy adjacency compaction,
	// chunk-claimed dynamic scheduling (DecomposePKTCtx).
	PeelPKT
)

// String names the kernel for flags, metadata, and error messages.
func (k PeelKernel) String() string {
	switch k {
	case PeelAuto:
		return "auto"
	case PeelSerial:
		return "serial"
	case PeelLevelSync:
		return "levelsync"
	case PeelPKT:
		return "pkt"
	default:
		return fmt.Sprintf("PeelKernel(%d)", int(k))
	}
}

// ParsePeelKernel parses a kernel name as accepted by the -peel-kernel
// flag.
func ParsePeelKernel(s string) (PeelKernel, error) {
	switch s {
	case "auto", "":
		return PeelAuto, nil
	case "serial":
		return PeelSerial, nil
	case "levelsync", "level-sync", "ls":
		return PeelLevelSync, nil
	case "pkt", "scanfree", "scan-free":
		return PeelPKT, nil
	default:
		return 0, fmt.Errorf("truss: unknown peel kernel %q (want auto|serial|levelsync|pkt)", s)
	}
}

// Auto-selection thresholds. The level-synchronous kernel pays one full
// m-edge scan per distinct support level, so its overhead is proportional
// to m × spread (spread = max support + 1, the number of potential peel
// levels). The pkt kernel trades that for O(m) bucket setup plus lazy
// bookkeeping, which only pays off once the scan work is substantial.
const (
	peelSerialMaxEdges = 1 << 15 // below this, frontier machinery costs more than it saves
	pktMinScanWork     = 1 << 24 // m × spread above which per-level rescans dominate: pkt
)

// Counters recording what the auto heuristic decided, so a trace of a
// production build shows which peel kernel actually ran.
var (
	cPeelAutoSerial = obs.GetCounter("truss_peel_auto_serial",
		"auto kernel selections that picked the serial peel kernel")
	cPeelAutoLevelSync = obs.GetCounter("truss_peel_auto_levelsync",
		"auto kernel selections that picked the level-synchronous peel kernel")
	cPeelAutoPKT = obs.GetCounter("truss_peel_auto_pkt",
		"auto kernel selections that picked the scan-free pkt peel kernel")
)

// ChoosePeelKernel resolves PeelAuto for an instance: serial for small
// graphs, pkt when the rescan work the level-synchronous kernel would do
// (edge count × peel-level spread) is large, levelsync for the flat
// middle ground. maxSup is the maximum starting support (the peel-level
// spread); threads is the resolved parallelism.
func ChoosePeelKernel(m int64, maxSup int32, threads int) PeelKernel {
	if m < peelSerialMaxEdges {
		return PeelSerial
	}
	if m*int64(maxSup)+m >= pktMinScanWork {
		return PeelPKT
	}
	if threads == 1 {
		// Few levels and one thread: the serial bucket queue beats a
		// barrier-per-sub-round parallel kernel with no workers to feed.
		return PeelSerial
	}
	return PeelLevelSync
}

// DecomposeKernel computes the decomposition with the selected kernel
// (PeelAuto resolves per instance). Legacy form of DecomposeKernelCtx: not
// cancelable and excluded from fault injection, so it never fails.
func DecomposeKernel(g *graph.Graph, supports []int32, k PeelKernel, threads int) (tau []int32, kmax int32) {
	tau, kmax, err := DecomposeKernelCtx(concur.WithoutFaults(context.Background()), g, supports, k, threads, nil)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection.
		panic("truss: " + err.Error())
	}
	return tau, kmax
}

// DecomposeKernelCtx dispatches the TrussDecomp stage to the selected
// kernel. All kernels share the production contract — cancellation at
// scheduler-barrier (or poll) granularity, per-thread "TrussDecomp" spans
// into tr, scheduler-barrier fault sites for the parallel forms — and
// produce bit-identical trussness and kmax.
func DecomposeKernelCtx(ctx context.Context, g *graph.Graph, supports []int32, k PeelKernel, threads int, tr *obs.Trace) (tau []int32, kmax int32, err error) {
	if threads <= 0 {
		threads = concur.MaxThreads()
	}
	if k == PeelAuto {
		var maxSup int32
		for _, s := range supports {
			if s > maxSup {
				maxSup = s
			}
		}
		k = ChoosePeelKernel(g.NumEdges(), maxSup, threads)
		switch k {
		case PeelSerial:
			cPeelAutoSerial.Inc()
		case PeelPKT:
			cPeelAutoPKT.Inc()
		default:
			cPeelAutoLevelSync.Inc()
		}
	}
	switch k {
	case PeelSerial:
		return DecomposeSerialCtx(ctx, g, supports)
	case PeelLevelSync:
		return DecomposeParallelCtx(ctx, g, supports, threads, tr)
	case PeelPKT:
		return DecomposePKTCtx(ctx, g, supports, threads, tr)
	default:
		return nil, 0, fmt.Errorf("truss: unknown peel kernel %v", k)
	}
}
