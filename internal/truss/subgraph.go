package truss

import "equitruss/internal/graph"

// MaximalKTruss materializes the maximal k-truss of g given a completed
// decomposition: the subgraph of all edges with τ(e) >= k (Definition 3's
// maximal witness). Vertex IDs are preserved.
func MaximalKTruss(g *graph.Graph, tau []int32, k int32) (*graph.Graph, error) {
	return g.InducedByEdges(func(eid int32) bool { return tau[eid] >= k })
}

// TrussnessHistogram returns edge counts per trussness value.
func TrussnessHistogram(tau []int32) map[int32]int64 {
	hist := make(map[int32]int64)
	for _, t := range tau {
		hist[t]++
	}
	return hist
}
