// Package gen generates the synthetic graphs used throughout the test and
// benchmark suites: R-MAT and Erdős–Rényi random graphs, Barabási–Albert
// preferential attachment, planted-partition community graphs, small named
// fixtures (including the paper's Figure 3 worked example), and the dataset
// surrogates standing in for the SNAP networks of the paper's evaluation
// (Amazon, DBLP, YouTube, LiveJournal, Orkut, Friendster), which are not
// redistributable and far exceed laptop scale.
//
// All generators are deterministic for a given seed so experiments are
// reproducible run to run.
package gen

// rng is SplitMix64: a tiny, fast, high-quality 64-bit PRNG. We carry our
// own instead of math/rand so that streams can be split cheaply per
// goroutine with guaranteed determinism regardless of Go version.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	return &rng{state: seed*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int64) int64 {
	return int64(r.next() % uint64(n))
}

// float64v returns a uniform float64 in [0, 1).
func (r *rng) float64v() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// split derives an independent child stream.
func (r *rng) split() *rng {
	return newRNG(r.next())
}
