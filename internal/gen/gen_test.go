package gen

import (
	"testing"

	"equitruss/internal/graph"
)

func TestRNGDeterministicAndSpread(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed diverged")
		}
	}
	c := newRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
	// intn stays in range; float64v stays in [0, 1).
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.intn(17); v < 0 || v >= 17 {
			t.Fatalf("intn out of range: %d", v)
		}
		if f := r.float64v(); f < 0 || f >= 1 {
			t.Fatalf("float64v out of range: %g", f)
		}
	}
}

func TestRMATDeterministicAndSized(t *testing.T) {
	g1 := RMAT(10, 8, 0.57, 0.19, 0.19, 1)
	g2 := RMAT(10, 8, 0.57, 0.19, 0.19, 1)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed gave %d vs %d edges", g1.NumEdges(), g2.NumEdges())
	}
	for e := int32(0); e < int32(g1.NumEdges()); e++ {
		if g1.Edge(e) != g2.Edge(e) {
			t.Fatal("same seed gave different edges")
		}
	}
	if g1.NumVertices() != 1024 {
		t.Fatalf("vertices = %d, want 1024", g1.NumVertices())
	}
	// Dedup and self-loop removal shrink the nominal 8*1024 edges.
	if g1.NumEdges() <= 0 || g1.NumEdges() > 8*1024 {
		t.Fatalf("edges = %d out of expected range", g1.NumEdges())
	}
	g3 := RMAT(10, 8, 0.57, 0.19, 0.19, 2)
	if g3.NumEdges() == g1.NumEdges() {
		diff := false
		for e := int32(0); e < int32(g1.NumEdges()); e++ {
			if g1.Edge(e) != g3.Edge(e) {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds gave identical graphs")
		}
	}
}

func TestRMATSkew(t *testing.T) {
	// With the standard parameters, R-MAT must produce a hub far above
	// the average degree.
	g := RMAT(12, 8, 0.57, 0.19, 0.19, 3)
	avg := float64(2*g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 5*avg {
		t.Fatalf("max degree %d not skewed vs avg %.1f", g.MaxDegree(), avg)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(500, 2000, 9)
	if g.NumVertices() != 500 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() < 1800 || g.NumEdges() > 2000 {
		t.Fatalf("edges = %d, want ~2000 after dedup", g.NumEdges())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(1000, 3, 11)
	if g.NumVertices() != 1000 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Each of the ~997 arrivals adds up to 3 edges plus the seed clique.
	if g.NumEdges() < 2000 || g.NumEdges() > 3003 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	avg := float64(2*g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 4*avg {
		t.Fatalf("preferential attachment produced no hubs: max %d avg %.1f", g.MaxDegree(), avg)
	}
	// Undersized n is bumped to fit the seed clique.
	small := BarabasiAlbert(2, 3, 1)
	if small.NumVertices() != 4 {
		t.Fatalf("small BA vertices = %d, want 4", small.NumVertices())
	}
}

func TestPlantedPartition(t *testing.T) {
	g := PlantedPartition(20, 10, 0.9, 0.5, 13)
	if g.NumVertices() != 200 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Expect roughly 20 * C(10,2) * 0.9 = 810 intra edges plus ~50 inter.
	if g.NumEdges() < 600 || g.NumEdges() > 950 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestFixturesShapes(t *testing.T) {
	fig3 := PaperFigure3()
	if fig3.NumVertices() != 11 || fig3.NumEdges() != 27 {
		t.Fatalf("figure 3 graph: %v, want V=11 E=27", fig3)
	}
	bow := TwoTriangles()
	if bow.NumVertices() != 5 || bow.NumEdges() != 6 {
		t.Fatalf("bowtie: %v", bow)
	}
	strip := TriangleStrip(10)
	if strip.NumEdges() != 17 {
		t.Fatalf("strip edges = %d, want 17", strip.NumEdges())
	}
	bc := BridgedCliques(5)
	if bc.NumVertices() != 10 || bc.NumEdges() != 21 {
		t.Fatalf("bridged cliques: %v", bc)
	}
	sc := SharedEdgeCliquePair(5, 4)
	if sc.NumVertices() != 7 {
		t.Fatalf("shared-edge cliques vertices = %d", sc.NumVertices())
	}
	if !sc.HasEdge(3, 4) {
		t.Fatal("shared edge missing")
	}
	k4 := Clique(4)
	if k4.NumEdges() != 6 {
		t.Fatalf("K4 edges = %d", k4.NumEdges())
	}
	p5 := Path(5)
	if p5.NumEdges() != 4 {
		t.Fatalf("P5 edges = %d", p5.NumEdges())
	}
	c5 := Cycle(5)
	if c5.NumEdges() != 5 {
		t.Fatalf("C5 edges = %d", c5.NumEdges())
	}
}

func TestDatasetLookup(t *testing.T) {
	for _, name := range []string{"amazon-sim", "Amazon", "ORKUT", "dblp"} {
		if _, err := FindDataset(name); err != nil {
			t.Fatalf("FindDataset(%q): %v", name, err)
		}
	}
	if _, err := FindDataset("nonexistent"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestDatasetGenerateSmall(t *testing.T) {
	for _, spec := range Datasets {
		if spec.Name == "friendster-sim" {
			continue // too big for unit tests
		}
		g := spec.Generate(0.1)
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s at 0.1 produced %v", spec.Name, g)
		}
		// Deterministic.
		g2 := spec.Generate(0.1)
		if g.NumEdges() != g2.NumEdges() {
			t.Fatalf("%s not deterministic", spec.Name)
		}
	}
}

func TestDatasetScaleFactorGrows(t *testing.T) {
	spec, _ := FindDataset("youtube-sim")
	small := spec.Generate(0.25)
	big := spec.Generate(1.0)
	if big.NumEdges() <= small.NumEdges() {
		t.Fatalf("scale 1.0 (%d edges) not larger than 0.25 (%d)", big.NumEdges(), small.NumEdges())
	}
}

// noTrianglesIn asserts helper fixtures that should be triangle-free.
func noTrianglesIn(t *testing.T, g *graph.Graph, name string) {
	t.Helper()
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		ed := g.Edge(e)
		if g.CommonNeighborCount(ed.U, ed.V) != 0 {
			t.Fatalf("%s has a triangle at edge %v", name, ed)
		}
	}
}

func TestPathAndLargeCycleTriangleFree(t *testing.T) {
	noTrianglesIn(t, Path(20), "path")
	noTrianglesIn(t, Cycle(20), "cycle")
}
