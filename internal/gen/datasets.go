package gen

import (
	"fmt"
	"sort"
	"strings"

	"equitruss/internal/graph"
)

// DatasetSpec describes a synthetic surrogate for one of the SNAP networks
// in the paper's Table 3. Scale 1.0 is the default laptop-size instance;
// the generator parameters were chosen to reproduce the *character* of each
// network (community structure vs. power-law skew, relative density), not
// its absolute size.
type DatasetSpec struct {
	Name     string // surrogate name, e.g. "amazon-sim"
	StandsIn string // the paper's dataset it stands in for
	Kind     string // "planted" or "rmat"
	Seed     uint64

	// planted-partition parameters
	NumComm, CommSize int32
	PIntra, InterDeg  float64

	// rmat parameters
	Scale, EdgeFactor int
	A, B, C           float64
}

// Datasets lists the surrogates in the order of the paper's Table 3.
// Friendster-sim is the billion-edge stand-in and is only used by the
// Figure 7 experiment (SpNode kernel scaling).
var Datasets = []DatasetSpec{
	{Name: "amazon-sim", StandsIn: "Amazon", Kind: "planted", Seed: 101,
		NumComm: 4200, CommSize: 8, PIntra: 0.55, InterDeg: 1.4},
	{Name: "dblp-sim", StandsIn: "DBLP", Kind: "planted", Seed: 102,
		NumComm: 2700, CommSize: 12, PIntra: 0.50, InterDeg: 1.6},
	{Name: "youtube-sim", StandsIn: "YouTube", Kind: "rmat", Seed: 103,
		Scale: 16, EdgeFactor: 5, A: 0.57, B: 0.19, C: 0.19},
	{Name: "livejournal-sim", StandsIn: "LiveJournal", Kind: "rmat", Seed: 104,
		Scale: 17, EdgeFactor: 12, A: 0.55, B: 0.2, C: 0.2},
	{Name: "orkut-sim", StandsIn: "Orkut", Kind: "rmat", Seed: 105,
		Scale: 17, EdgeFactor: 28, A: 0.5, B: 0.22, C: 0.22},
	{Name: "friendster-sim", StandsIn: "Friendster", Kind: "rmat", Seed: 106,
		Scale: 19, EdgeFactor: 20, A: 0.55, B: 0.2, C: 0.2},
}

// Generate materializes the surrogate at the given size multiplier.
// scale 1.0 reproduces the defaults; 0.25 is handy for quick runs and unit
// tests; values > 1 grow the instance (R-MAT scale grows logarithmically).
func (d DatasetSpec) Generate(sizeFactor float64) *graph.Graph {
	if sizeFactor <= 0 {
		sizeFactor = 1
	}
	switch d.Kind {
	case "planted":
		nc := int32(float64(d.NumComm) * sizeFactor)
		if nc < 2 {
			nc = 2
		}
		return PlantedPartition(nc, d.CommSize, d.PIntra, d.InterDeg, d.Seed)
	case "rmat":
		sc := d.Scale
		for f := sizeFactor; f >= 2; f /= 2 {
			sc++
		}
		for f := sizeFactor; f <= 0.5; f *= 2 {
			sc--
		}
		if sc < 8 {
			sc = 8
		}
		return RMAT(sc, d.EdgeFactor, d.A, d.B, d.C, d.Seed)
	default:
		panic("gen: unknown dataset kind " + d.Kind)
	}
}

// Dataset looks a surrogate up by name (case-insensitive, with or without
// the "-sim" suffix) and generates it at the given size factor.
func Dataset(name string, sizeFactor float64) (*graph.Graph, error) {
	spec, err := FindDataset(name)
	if err != nil {
		return nil, err
	}
	return spec.Generate(sizeFactor), nil
}

// FindDataset resolves a surrogate spec by name.
func FindDataset(name string) (DatasetSpec, error) {
	norm := strings.ToLower(strings.TrimSuffix(name, "-sim"))
	for _, d := range Datasets {
		if strings.TrimSuffix(d.Name, "-sim") == norm || strings.ToLower(d.StandsIn) == norm {
			return d, nil
		}
	}
	names := make([]string, len(Datasets))
	for i, d := range Datasets {
		names[i] = d.Name
	}
	sort.Strings(names)
	return DatasetSpec{}, fmt.Errorf("gen: unknown dataset %q (have: %s)", name, strings.Join(names, ", "))
}
