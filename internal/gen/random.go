package gen

import (
	"equitruss/internal/concur"
	"equitruss/internal/graph"
)

// RMAT generates a recursive-matrix (Kronecker) graph with 2^scale vertices
// and approximately edgeFactor * 2^scale undirected edges before
// deduplication. The (a, b, c, d) partition probabilities control skew; the
// classic Graph500 setting is (0.57, 0.19, 0.19, 0.05). Self-loops and
// duplicates are removed by the CSR builder, so the final edge count is
// somewhat below the nominal target (as with the real generator).
func RMAT(scale, edgeFactor int, a, b, c float64, seed uint64) *graph.Graph {
	n := int32(1) << scale
	target := int64(edgeFactor) * int64(n)
	edges := make([]graph.Edge, target)
	threads := concur.MaxThreads()
	base := newRNG(seed)
	streams := make([]*rng, threads)
	for t := range streams {
		streams[t] = base.split()
	}
	concur.ForThreads(threads, func(tid int) {
		r := streams[tid]
		lo := int64(tid) * target / int64(threads)
		hi := int64(tid+1) * target / int64(threads)
		for i := lo; i < hi; i++ {
			var u, v int32
			for bit := scale - 1; bit >= 0; bit-- {
				p := r.float64v()
				switch {
				case p < a:
					// top-left: no bits set
				case p < a+b:
					v |= 1 << bit
				case p < a+b+c:
					u |= 1 << bit
				default:
					u |= 1 << bit
					v |= 1 << bit
				}
			}
			edges[i] = graph.Edge{U: u, V: v}
		}
	})
	g, err := graph.FromEdgeList(edges, n)
	if err != nil {
		panic("gen: rmat builder failed: " + err.Error())
	}
	return g
}

// ErdosRenyi generates a G(n, m) uniform random graph: m undirected edges
// sampled uniformly (with duplicates/self-loops removed by the builder).
func ErdosRenyi(n int32, m int64, seed uint64) *graph.Graph {
	edges := make([]graph.Edge, m)
	r := newRNG(seed)
	for i := int64(0); i < m; i++ {
		edges[i] = graph.Edge{U: int32(r.intn(int64(n))), V: int32(r.intn(int64(n)))}
	}
	g, err := graph.FromEdgeList(edges, n)
	if err != nil {
		panic("gen: erdos-renyi builder failed: " + err.Error())
	}
	return g
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches to k existing endpoints sampled proportional to degree (via the
// repeated-endpoint trick: sampling a uniform position in the running edge
// list is degree-proportional).
func BarabasiAlbert(n int32, k int, seed uint64) *graph.Graph {
	if n < int32(k)+1 {
		n = int32(k) + 1
	}
	r := newRNG(seed)
	endpoints := make([]int32, 0, int(n)*k*2)
	edges := make([]graph.Edge, 0, int(n)*k)
	// Seed clique of k+1 vertices.
	for u := int32(0); u <= int32(k); u++ {
		for v := u + 1; v <= int32(k); v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
			endpoints = append(endpoints, u, v)
		}
	}
	for v := int32(k) + 1; v < n; v++ {
		for j := 0; j < k; j++ {
			u := endpoints[r.intn(int64(len(endpoints)))]
			edges = append(edges, graph.Edge{U: u, V: v})
			endpoints = append(endpoints, u, v)
		}
	}
	g, err := graph.FromEdgeList(edges, n)
	if err != nil {
		panic("gen: barabasi-albert builder failed: " + err.Error())
	}
	return g
}

// PlantedPartition generates a community graph: numComm communities of
// commSize vertices each; within a community every pair is connected with
// probability pIntra, and each vertex receives on average interDeg random
// cross-community edges. High pIntra produces the dense triangle-rich
// modules that give social networks their high-trussness cores.
func PlantedPartition(numComm, commSize int32, pIntra float64, interDeg float64, seed uint64) *graph.Graph {
	n := numComm * commSize
	r := newRNG(seed)
	var edges []graph.Edge
	for c := int32(0); c < numComm; c++ {
		base := c * commSize
		for i := int32(0); i < commSize; i++ {
			for j := i + 1; j < commSize; j++ {
				if r.float64v() < pIntra {
					edges = append(edges, graph.Edge{U: base + i, V: base + j})
				}
			}
		}
	}
	interEdges := int64(float64(n) * interDeg / 2)
	for i := int64(0); i < interEdges; i++ {
		u := int32(r.intn(int64(n)))
		v := int32(r.intn(int64(n)))
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g, err := graph.FromEdgeList(edges, n)
	if err != nil {
		panic("gen: planted-partition builder failed: " + err.Error())
	}
	return g
}

// Clique returns the complete graph K_n.
func Clique(n int32) *graph.Graph {
	var edges []graph.Edge
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	g, err := graph.FromEdgeList(edges, n)
	if err != nil {
		panic("gen: clique builder failed: " + err.Error())
	}
	return g
}

// Path returns the path graph P_n (n vertices, n-1 edges, no triangles).
func Path(n int32) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for u := int32(0); u+1 < n; u++ {
		edges = append(edges, graph.Edge{U: u, V: u + 1})
	}
	g, err := graph.FromEdgeList(edges, n)
	if err != nil {
		panic("gen: path builder failed: " + err.Error())
	}
	return g
}

// Cycle returns the cycle graph C_n.
func Cycle(n int32) *graph.Graph {
	edges := make([]graph.Edge, 0, n)
	for u := int32(0); u < n; u++ {
		edges = append(edges, graph.Edge{U: u, V: (u + 1) % n})
	}
	g, err := graph.FromEdgeList(edges, n)
	if err != nil {
		panic("gen: cycle builder failed: " + err.Error())
	}
	return g
}
