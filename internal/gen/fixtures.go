package gen

import "equitruss/internal/graph"

// PaperFigure3 returns the 11-vertex worked example from Figure 3 of the
// paper (originally from Akbas & Zhao's EquiTruss paper). Its EquiTruss
// summary graph is known exactly:
//
//	ν0 (k=3): {(0,4)}
//	ν1 (k=4): {(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)}          — the 4-clique 0..3
//	ν2 (k=3): {(2,6),(2,8)}
//	ν3 (k=4): {(3,4),(3,5),(3,6),(4,5),(4,6),(5,6),(5,7),(5,10)}
//	ν4 (k=5): the 5-clique 6..10 (10 edges)
//
// with superedges ν0–ν1, ν0–ν3, ν1–ν2, ν2–ν3, ν2–ν4, ν3–ν4 (the
// mixed-trussness triangles (0,3,4), (2,3,6), (2,6,8), and the three
// triangles spanning ν3/ν4 around vertices 5–7–10).
func PaperFigure3() *graph.Graph {
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4},
		{U: 1, V: 2}, {U: 1, V: 3},
		{U: 2, V: 3}, {U: 2, V: 6}, {U: 2, V: 8},
		{U: 3, V: 4}, {U: 3, V: 5}, {U: 3, V: 6},
		{U: 4, V: 5}, {U: 4, V: 6},
		{U: 5, V: 6}, {U: 5, V: 7}, {U: 5, V: 10},
		{U: 6, V: 7}, {U: 6, V: 8}, {U: 6, V: 9}, {U: 6, V: 10},
		{U: 7, V: 8}, {U: 7, V: 9}, {U: 7, V: 10},
		{U: 8, V: 9}, {U: 8, V: 10},
		{U: 9, V: 10},
	}
	g, err := graph.FromEdgeList(edges, 11)
	if err != nil {
		panic("gen: figure-3 fixture failed: " + err.Error())
	}
	return g
}

// TwoTriangles returns two triangles sharing the single vertex 2 (bowtie):
// no shared edge, so the triangles are NOT triangle-connected.
func TwoTriangles() *graph.Graph {
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2},
		{U: 2, V: 3}, {U: 2, V: 4}, {U: 3, V: 4},
	}
	g, err := graph.FromEdgeList(edges, 5)
	if err != nil {
		panic("gen: two-triangles fixture failed: " + err.Error())
	}
	return g
}

// TriangleStrip returns the strip graph on n vertices with edges (i, i+1)
// and (i, i+2): consecutive triangles share an edge, so the whole strip is
// one triangle-connected 3-truss (every edge trussness 3 for n >= 4) — a
// single supernode spanning arbitrarily many edges.
func TriangleStrip(n int32) *graph.Graph {
	var edges []graph.Edge
	for i := int32(0); i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
		if i+2 < n {
			edges = append(edges, graph.Edge{U: i, V: i + 2})
		}
	}
	g, err := graph.FromEdgeList(edges, n)
	if err != nil {
		panic("gen: triangle-strip fixture failed: " + err.Error())
	}
	return g
}

// BridgedCliques returns two K_c cliques joined by a single bridge edge:
// two high-truss supernodes and one trussness-2 bridge that belongs to no
// triangle (so no supernode at k >= 3 contains it).
func BridgedCliques(c int32) *graph.Graph {
	var edges []graph.Edge
	for u := int32(0); u < c; u++ {
		for v := u + 1; v < c; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
			edges = append(edges, graph.Edge{U: c + u, V: c + v})
		}
	}
	edges = append(edges, graph.Edge{U: c - 1, V: c})
	g, err := graph.FromEdgeList(edges, 2*c)
	if err != nil {
		panic("gen: bridged-cliques fixture failed: " + err.Error())
	}
	return g
}

// SharedEdgeCliquePair returns two cliques K_a and K_b overlapping in
// exactly one shared edge — the canonical overlapping-community shape: the
// shared edge's endpoints belong to both communities.
func SharedEdgeCliquePair(a, b int32) *graph.Graph {
	var edges []graph.Edge
	// Clique A on vertices 0..a-1; clique B on vertices a-2..a+b-3
	// (so vertices a-2 and a-1 are shared).
	for u := int32(0); u < a; u++ {
		for v := u + 1; v < a; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	for u := a - 2; u < a+b-2; u++ {
		for v := u + 1; v < a+b-2; v++ {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	g, err := graph.FromEdgeList(edges, a+b-2)
	if err != nil {
		panic("gen: shared-edge-clique fixture failed: " + err.Error())
	}
	return g
}
