package cc

import (
	"context"

	"equitruss/internal/concur"
	"equitruss/internal/ds"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// afforestNeighborRounds is the number of bounded link rounds before
// component approximation (the paper's Afforest uses 2).
const afforestNeighborRounds = 2

// afforestSampleSize is the number of vertices sampled to identify the
// dominant component.
const afforestSampleSize = 1024

// Afforest implements Sutton, Ben-Nun & Barak's sampling CC (IPDPS'18), the
// algorithm the paper adopts for its fastest variant: (1) link each vertex
// to its first few neighbors and compress, (2) approximate the dominant
// component by sampling, (3) exhaustively process only vertices outside it.
// Exact because the relation is symmetric and the final pass covers every
// edge with at least one endpoint outside the dominant component.
// AfforestT is the traced form.
func Afforest(g *graph.Graph, threads int) []int32 {
	return AfforestT(g, threads, nil)
}

// AfforestT is Afforest with per-thread "CC.Afforest" spans emitted into tr
// plus sampling-accuracy and union-find CAS-retry counters.
func AfforestT(g *graph.Graph, threads int, tr *obs.Trace) []int32 {
	labels, err := AfforestCtx(concur.WithoutFaults(context.Background()), g, threads, tr)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection, so the ctx form cannot fail.
		panic("cc: " + err.Error())
	}
	return labels
}

// AfforestCtx is AfforestT with cancellation: ctx is checked at every phase
// barrier (link rounds, compressions, finalization, materialization).
func AfforestCtx(ctx context.Context, g *graph.Graph, threads int, tr *obs.Trace) ([]int32, error) {
	n := int(g.NumVertices())
	cuf := ds.NewConcurrentUnionFind(n)
	// Phase 1: bounded neighbor rounds.
	for r := 0; r < afforestNeighborRounds; r++ {
		err := concur.ForRangeDynamicCtxT(ctx, tr, "CC.Afforest", n, threads, 1024, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				nbrs := g.Neighbors(int32(v))
				if r < len(nbrs) {
					cuf.Union(int32(v), nbrs[r])
				}
			}
		})
		if err != nil {
			return nil, err
		}
		if err := concur.ForCtxT(ctx, tr, "CC.Afforest", n, threads, func(i int) { cuf.Find(int32(i)) }); err != nil {
			return nil, err
		}
	}
	// Phase 2: sample for the dominant component.
	dominant := int32(-1)
	if n > 0 {
		counts := make(map[int32]int)
		stride := n / afforestSampleSize
		if stride < 1 {
			stride = 1
		}
		sampled := 0
		for v := 0; v < n; v += stride {
			counts[cuf.Find(int32(v))]++
			sampled++
		}
		best := 0
		for root, c := range counts {
			if c > best {
				dominant, best = root, c
			}
		}
		cAffSampleTotal.Add(int64(sampled))
		cAffSampleHits.Add(int64(best))
	}
	// Phase 3: finalize everything outside the dominant component,
	// starting from the round the bounded phase stopped at.
	err := concur.ForRangeDynamicCtxT(ctx, tr, "CC.Afforest", n, threads, 1024, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if cuf.Find(int32(v)) == dominant {
				continue
			}
			nbrs := g.Neighbors(int32(v))
			for r := afforestNeighborRounds; r < len(nbrs); r++ {
				cuf.Union(int32(v), nbrs[r])
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if err := concur.ForCtxT(ctx, tr, "CC.Afforest", n, threads, func(i int) { cuf.Find(int32(i)) }); err != nil {
		return nil, err
	}
	labels := make([]int32, n)
	if err := concur.ForCtxT(ctx, tr, "CC.Afforest", n, threads, func(i int) { labels[i] = cuf.Find(int32(i)) }); err != nil {
		return nil, err
	}
	cUFRetries.Add(cuf.Retries())
	return labels, nil
}
