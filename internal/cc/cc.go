// Package cc implements the parallel connected-components algorithms the
// paper builds on — Shiloach–Vishkin (SV), Afforest, label propagation, and
// BFS — over ordinary vertex graphs. The EquiTruss supernode kernel in
// internal/core re-instantiates the SV and Afforest schemes over *edge*
// entities with k-triangle connectivity; this package is both the
// standalone substrate and the ablation ground (paper §3.1 compares the CC
// choices).
//
// All algorithms return a labels array where labels[v] == labels[u] iff u
// and v are in the same component. Normalize canonicalizes labels to the
// minimum vertex ID per component so results are comparable across
// algorithms.
package cc

import (
	"context"
	"sync/atomic"

	"equitruss/internal/concur"
	"equitruss/internal/ds"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
)

// Counters for the vertex-CC algorithms. The SV round counters mirror the
// spnode_sv_* counters the supernode kernel emits over edge entities;
// unionfind_cas_retries is shared with internal/core (the registry is
// idempotent, so both packages resolve to the same counter).
var (
	cSVHookRounds = obs.GetCounter("cc_sv_hook_rounds",
		"hooking rounds executed by Shiloach-Vishkin vertex CC")
	cSVShortcutRounds = obs.GetCounter("cc_sv_shortcut_rounds",
		"shortcut (pointer-jumping) rounds executed by Shiloach-Vishkin vertex CC")
	cAffSampleHits = obs.GetCounter("cc_afforest_sample_hits",
		"sampled vertices found in the dominant component by Afforest vertex CC")
	cAffSampleTotal = obs.GetCounter("cc_afforest_sample_total",
		"vertices sampled by Afforest vertex CC to estimate the dominant component")
	cUFRetries = obs.GetCounter("unionfind_cas_retries",
		"failed CAS attempts retried inside concurrent union-find hooks")
)

// Reference computes components with an iterative depth-first search —
// the obviously-correct sequential oracle.
func Reference(g *graph.Graph) []int32 {
	n := g.NumVertices()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []int32
	for s := int32(0); s < n; s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = s
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(v) {
				if labels[w] == -1 {
					labels[w] = s
					stack = append(stack, w)
				}
			}
		}
	}
	return labels
}

// ShiloachVishkin runs the classic CRCW SV algorithm: alternating hooking
// (roots adopt smaller-labelled neighbors' parents) and shortcutting
// (pointer jumping) until no hook fires. Labels converge to the minimum
// vertex ID of each component. ShiloachVishkinT is the traced form.
func ShiloachVishkin(g *graph.Graph, threads int) []int32 {
	return ShiloachVishkinT(g, threads, nil)
}

// ShiloachVishkinT is ShiloachVishkin with per-thread "CC.SV" spans emitted
// into tr and round counters accumulated into the registry.
func ShiloachVishkinT(g *graph.Graph, threads int, tr *obs.Trace) []int32 {
	labels, err := ShiloachVishkinCtx(concur.WithoutFaults(context.Background()), g, threads, tr)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection, so the ctx form cannot fail.
		panic("cc: " + err.Error())
	}
	return labels
}

// ShiloachVishkinCtx is ShiloachVishkinT with cancellation: ctx is checked
// at every hooking/shortcut barrier, so a canceled call returns ctx.Err()
// (and no labels) with every worker joined.
func ShiloachVishkinCtx(ctx context.Context, g *graph.Graph, threads int, tr *obs.Trace) ([]int32, error) {
	n := int(g.NumVertices())
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	hooked := int32(1)
	for hooked != 0 {
		hooked = 0
		// Hooking phase: for every edge (u, v), try to hook the root of
		// the larger parent under the smaller one.
		cSVHookRounds.Inc()
		err := concur.ForRangeCtxT(ctx, tr, "CC.SV", n, threads, func(lo, hi int) {
			localHook := false
			for u := lo; u < hi; u++ {
				pu := atomic.LoadInt32(&parent[u])
				for _, v := range g.Neighbors(int32(u)) {
					pv := atomic.LoadInt32(&parent[v])
					if pu < pv && pv == atomic.LoadInt32(&parent[pv]) {
						if atomic.CompareAndSwapInt32(&parent[pv], pv, pu) {
							localHook = true
						}
					}
				}
			}
			if localHook {
				atomic.StoreInt32(&hooked, 1)
			}
		})
		if err != nil {
			return nil, err
		}
		// Shortcut phase: pointer jumping until every vertex points at a
		// root.
		cSVShortcutRounds.Inc()
		if err := concur.ForRangeCtxT(ctx, tr, "CC.SV", n, threads, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				for {
					p := atomic.LoadInt32(&parent[v])
					gp := atomic.LoadInt32(&parent[p])
					if p == gp {
						break
					}
					atomic.StoreInt32(&parent[v], gp)
				}
			}
		}); err != nil {
			return nil, err
		}
	}
	return parent, nil
}

// LabelPropagation repeatedly assigns every vertex the minimum label in its
// closed neighborhood until a fixpoint — simple, diameter-bound work.
func LabelPropagation(g *graph.Graph, threads int) []int32 {
	labels, err := LabelPropagationCtx(concur.WithoutFaults(context.Background()), g, threads)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection, so the ctx form cannot fail.
		panic("cc: " + err.Error())
	}
	return labels
}

// LabelPropagationCtx is LabelPropagation with cancellation at every round
// barrier.
func LabelPropagationCtx(ctx context.Context, g *graph.Graph, threads int) ([]int32, error) {
	n := int(g.NumVertices())
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	changed := int32(1)
	for changed != 0 {
		changed = 0
		err := concur.ForRangeCtx(ctx, n, threads, func(lo, hi int) {
			localChange := false
			for v := lo; v < hi; v++ {
				lv := atomic.LoadInt32(&labels[v])
				for _, w := range g.Neighbors(int32(v)) {
					lw := atomic.LoadInt32(&labels[w])
					if lw < lv {
						lv = lw
						localChange = true
					}
				}
				if lv < atomic.LoadInt32(&labels[v]) {
					concur.CASMinInt32(&labels[v], lv)
				}
			}
			if localChange {
				atomic.StoreInt32(&changed, 1)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	return labels, nil
}

// BFS computes components by repeated parallel breadth-first traversals
// from each unvisited seed. Parallelism is within a frontier, so it fades
// as the number of small components grows (the paper's stated reason for
// preferring SV/Afforest).
func BFS(g *graph.Graph, threads int) []int32 {
	labels, err := BFSCtx(concur.WithoutFaults(context.Background()), g, threads)
	if err != nil {
		// Unreachable: the context is non-cancelable and excluded from
		// fault injection, so the ctx form cannot fail.
		panic("cc: " + err.Error())
	}
	return labels
}

// BFSCtx is BFS with cancellation: ctx is checked at every frontier barrier
// and periodically during the serial seed scan.
func BFSCtx(ctx context.Context, g *graph.Graph, threads int) ([]int32, error) {
	n := int(g.NumVertices())
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	visited := ds.NewBitset(n)
	var frontier, next []int32
	for s := 0; s < n; s++ {
		if s&8191 == 0 && concur.Canceled(ctx) {
			return nil, ctx.Err()
		}
		if visited.Get(s) {
			continue
		}
		visited.Set(s)
		labels[s] = int32(s)
		frontier = append(frontier[:0], int32(s))
		for len(frontier) > 0 {
			bufs := make([][]int32, threadCount(threads))
			err := concur.ForThreadsCtx(ctx, len(bufs), func(tid int) {
				lo := tid * len(frontier) / len(bufs)
				hi := (tid + 1) * len(frontier) / len(bufs)
				var buf []int32
				for i := lo; i < hi; i++ {
					v := frontier[i]
					for _, w := range g.Neighbors(v) {
						if visited.SetAtomic(int(w)) {
							atomic.StoreInt32(&labels[w], int32(s))
							buf = append(buf, w)
						}
					}
				}
				bufs[tid] = buf
			})
			if err != nil {
				return nil, err
			}
			next = next[:0]
			for _, b := range bufs {
				next = append(next, b...)
			}
			frontier, next = next, frontier
		}
	}
	return labels, nil
}

func threadCount(threads int) int {
	if threads <= 0 {
		return concur.MaxThreads()
	}
	return threads
}

// Normalize rewrites labels so each component is labelled by its minimum
// member, making outputs of different algorithms directly comparable.
func Normalize(labels []int32) []int32 {
	min := make(map[int32]int32)
	for v, l := range labels {
		if cur, ok := min[l]; !ok || int32(v) < cur {
			min[l] = int32(v)
		}
	}
	out := make([]int32, len(labels))
	for v, l := range labels {
		out[v] = min[l]
	}
	return out
}

// CountComponents returns the number of distinct labels.
func CountComponents(labels []int32) int {
	seen := make(map[int32]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
