package cc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"equitruss/internal/gen"
	"equitruss/internal/graph"
)

func randomSparseGraph(seed int64, n int32, m int) *graph.Graph {
	rnd := rand.New(rand.NewSource(seed))
	var in []graph.Edge
	for i := 0; i < m; i++ {
		in = append(in, graph.Edge{U: int32(rnd.Intn(int(n))), V: int32(rnd.Intn(int(n)))})
	}
	g, err := graph.FromEdgeList(in, n)
	if err != nil {
		panic(err)
	}
	return g
}

func labelsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	na, nb := Normalize(a), Normalize(b)
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
	}
	return true
}

func TestAllAlgorithmsMatchReference(t *testing.T) {
	check := func(seed int64) bool {
		// Sparse: many components. Dense-ish: one giant component.
		for _, m := range []int{30, 400} {
			g := randomSparseGraph(seed, 100, m)
			want := Reference(g)
			for _, threads := range []int{1, 2, 4} {
				if !labelsEqual(want, ShiloachVishkin(g, threads)) {
					return false
				}
				if !labelsEqual(want, LabelPropagation(g, threads)) {
					return false
				}
				if !labelsEqual(want, BFS(g, threads)) {
					return false
				}
				if !labelsEqual(want, Afforest(g, threads)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsOnKnownShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path", gen.Path(10), 1},
		{"cycle", gen.Cycle(10), 1},
		{"bowtie", gen.TwoTriangles(), 1},
		{"bridged", gen.BridgedCliques(4), 1},
		{"planted", gen.PlantedPartition(5, 6, 1.0, 0, 3), 5},
	}
	for _, tc := range cases {
		for name, algo := range map[string]func(*graph.Graph, int) []int32{
			"sv": ShiloachVishkin, "lp": LabelPropagation, "bfs": BFS, "afforest": Afforest,
		} {
			labels := algo(tc.g, 2)
			if got := CountComponents(labels); got != tc.want {
				t.Errorf("%s/%s: components = %d, want %d", tc.name, name, got, tc.want)
			}
		}
	}
}

func TestIsolatedVertices(t *testing.T) {
	g, err := graph.FromEdgeList([]graph.Edge{{U: 0, V: 1}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(g)
	if CountComponents(want) != 4 {
		t.Fatalf("reference components = %d, want 4", CountComponents(want))
	}
	for name, algo := range map[string]func(*graph.Graph, int) []int32{
		"sv": ShiloachVishkin, "lp": LabelPropagation, "bfs": BFS, "afforest": Afforest,
	} {
		if !labelsEqual(want, algo(g, 2)) {
			t.Errorf("%s differs on isolated vertices", name)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	labels := []int32{5, 5, 2, 2, 9}
	n1 := Normalize(labels)
	n2 := Normalize(n1)
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatal("Normalize not idempotent")
		}
	}
	// Component labelled 5 covering {0,1} must normalize to 0.
	if n1[0] != 0 || n1[1] != 0 {
		t.Fatalf("normalize = %v", n1)
	}
}

func TestRMATGiantComponent(t *testing.T) {
	g := gen.RMAT(11, 8, 0.57, 0.19, 0.19, 21)
	want := Reference(g)
	for name, algo := range map[string]func(*graph.Graph, int) []int32{
		"sv": ShiloachVishkin, "lp": LabelPropagation, "bfs": BFS, "afforest": Afforest,
	} {
		if !labelsEqual(want, algo(g, 2)) {
			t.Errorf("%s differs on RMAT graph", name)
		}
	}
}
