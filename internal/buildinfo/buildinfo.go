// Package buildinfo reports the revision this binary was built from. Two
// sources, in preference order: the VCS stamp the Go toolchain embeds when
// building inside a git checkout, and the -ldflags -X override the
// Makefile injects (which survives builds from an exported tarball where
// no .git is present).
package buildinfo

import (
	"runtime/debug"
	"sync"
)

// revision is injected at link time:
//
//	go build -ldflags "-X equitruss/internal/buildinfo.revision=$(git rev-parse --short HEAD)"
var revision string

var (
	once     sync.Once
	resolved string
)

// Revision returns the short git revision of this build, with a "-dirty"
// suffix when the working tree was modified, or "unknown" when neither
// the toolchain stamp nor the ldflags override is available.
func Revision() string {
	once.Do(func() { resolved = resolve() })
	return resolved
}

func resolve() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	if revision != "" {
		return revision
	}
	return "unknown"
}
