package buildinfo

import "testing"

func TestRevisionNonEmptyAndStable(t *testing.T) {
	r := Revision()
	if r == "" {
		t.Fatal("Revision must never be empty")
	}
	if r != Revision() {
		t.Fatal("Revision must be stable across calls")
	}
}

func TestResolveFallback(t *testing.T) {
	// In `go test` there is no main-module VCS stamp and no ldflags
	// injection, so resolve must land on one of the documented sources —
	// never an empty string.
	if got := resolve(); got == "" {
		t.Fatal("resolve returned empty string")
	}
}
