// Package wal is the append-only write-ahead log behind the server's
// durable update pipeline. Every acknowledged update batch is framed,
// CRC32C-checksummed, and (under the default policy) fsynced to the log
// before the acknowledgement leaves the process, so a crash at any moment
// loses no acked update: recovery replays the log over the last snapshot
// and reconstructs the exact pre-crash state.
//
// On-disk layout (little-endian):
//
//	header = magic "EQWL", version, baseSeq u64
//	record = payloadLen u32, seq u64, payload, crc u32
//
// The record CRC covers payloadLen, seq, and the payload, so a flipped
// length field cannot silently desynchronize the framing. seq values are
// strictly increasing and assigned by Append. baseSeq is the sequence
// floor: every record in the file has seq > baseSeq, and compaction
// (TruncateTo) advances it so that a log whose records have all been
// dropped still remembers where the sequence space left off — without it,
// a reopen of a fully-compacted log would restart numbering at 1, below
// the snapshot's sequence, and recovery would silently skip the renumbered
// records. A torn tail — the partial record a crash mid-write leaves
// behind — is detected on Open (short frame, implausible length, CRC
// mismatch, or seq regression) and truncated away; everything before it is
// intact by construction.
//
// Durability model: Append returns only after the record reaches the log
// under the configured SyncPolicy. SyncAlways (the default) fsyncs every
// append — an acked batch survives power loss. SyncInterval fsyncs on a
// background ticker — an acked batch survives process death immediately,
// power loss only after the next tick. SyncNever leaves flushing to the
// OS. A write or fsync failure poisons the log (every later Append returns
// the sticky error): once the kernel has failed an fsync, the durability
// of any subsequent write is unknowable, so the only honest behavior is to
// stop acknowledging.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"equitruss/internal/faults"
	"equitruss/internal/graphio"
	"equitruss/internal/obs"
)

// Fault-injection sites armed by the chaos suite.
const (
	siteAppend = "wal.append"
	siteFsync  = "wal.fsync"
)

var (
	cAppends = obs.GetCounter("wal_appends",
		"update batches appended to the write-ahead log")
	cAppendBytes = obs.GetCounter("wal_append_bytes",
		"bytes appended to the write-ahead log")
	cFsyncs = obs.GetCounter("wal_fsyncs",
		"fsync calls issued by the write-ahead log")
	cReplayed = obs.GetCounter("wal_replayed_records",
		"records replayed from the write-ahead log during recovery")
	cTornTruncations = obs.GetCounter("wal_torn_truncations",
		"torn or corrupt log tails truncated away on open")
	cTornBytes = obs.GetCounter("wal_torn_bytes",
		"bytes discarded by torn-tail truncation")
	cCompactions = obs.GetCounter("wal_compactions",
		"log compactions (snapshot-covered prefix dropped)")
)

const (
	walMagic   = uint32(0x4551574C) // "EQWL"
	walVersion = uint32(2)

	headerSize = 16 // magic + version + baseSeq
	frameSize  = 12 // payloadLen + seq
	crcSize    = 4

	// maxRecordBytes bounds a record's payload before it drives an
	// allocation: anything larger than this in a length field is corruption,
	// not a batch (opBytes * maxOps of any sane batch is far smaller).
	maxRecordBytes = int64(1) << 28

	opBytes = 9 // kind u8 + u i32 + v i32
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeHeader builds the fixed-size file header carrying the sequence
// floor baseSeq.
func encodeHeader(baseSeq uint64) [headerSize]byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:], baseSeq)
	return hdr
}

// ErrPoisoned wraps the first write/fsync failure; every Append after it
// fails fast with an error chain containing both sentinels.
var ErrPoisoned = errors.New("wal: log poisoned by earlier write failure")

// Op is one edge mutation: an insertion or a deletion of edge (U, V).
type Op struct {
	Del  bool
	U, V int32
}

// Batch is the unit of logging and application: a sequence of edge
// mutations applied in order.
type Batch []Op

// SyncPolicy selects when Append data reaches stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acked batch survives power
	// loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.Interval): an
	// acked batch survives process crash immediately and power loss after
	// the next tick.
	SyncInterval
	// SyncNever never fsyncs; flushing is left to the OS page cache.
	SyncNever
)

// String names the policy for flags and logs.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses a -wal-sync flag value (always|interval|never).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: bad sync policy %q (want always|interval|never)", s)
	}
}

// Options configures Open.
type Options struct {
	// Policy selects the fsync discipline; the zero value is SyncAlways.
	Policy SyncPolicy
	// Interval is the background fsync period for SyncInterval; <= 0
	// selects 100ms.
	Interval time.Duration
}

// WAL is an open write-ahead log. Append/TruncateTo/Close are safe for
// concurrent use; Replay may run concurrently with appends and with
// TruncateTo (it reads a consistent prefix through its own file handle).
type WAL struct {
	path string
	opt  Options

	mu      sync.Mutex
	f       *os.File
	size    int64 // offset of the next record (all complete records end here)
	base    uint64 // sequence floor from the header: every record has seq > base
	lastSeq uint64
	err     error // sticky poison
	dirty   bool  // bytes appended since the last fsync

	stop chan struct{} // interval-sync ticker shutdown
	done chan struct{}
}

// Open opens (or creates) the log at path, truncating any torn tail left
// by a crash mid-append. The returned WAL is positioned to append; replay
// the surviving records with Replay before appending new ones.
func Open(path string, opt Options) (*WAL, error) {
	if opt.Interval <= 0 {
		opt.Interval = 100 * time.Millisecond
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	w := &WAL{path: path, opt: opt, f: f}
	if err := w.initAndScan(); err != nil {
		f.Close()
		return nil, err
	}
	if opt.Policy == SyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// initAndScan validates the header (writing a fresh one into an empty
// file), walks every record to find the end of the intact prefix, and
// truncates anything after it.
func (w *WAL) initAndScan() error {
	st, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat: %w", err)
	}
	if st.Size() == 0 {
		hdr := encodeHeader(0)
		if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("wal: writing header: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing header: %w", err)
		}
		w.size = headerSize
		return nil
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(io.NewSectionReader(w.f, 0, st.Size()), hdr[:]); err != nil {
		return fmt.Errorf("wal: %s: reading header: %w", w.path, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != walMagic {
		return fmt.Errorf("wal: %s: bad magic %#x", w.path, m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != walVersion {
		return fmt.Errorf("wal: %s: unsupported version %d", w.path, v)
	}
	w.base = binary.LittleEndian.Uint64(hdr[8:])
	good, lastSeq := scanRecords(w.f, headerSize, st.Size(), w.base, nil)
	if good < st.Size() {
		// Torn or corrupt tail: drop it. Every acked record under SyncAlways
		// is before this point; what follows was never acknowledged (or was
		// corrupted after the fact, in which case nothing after it can be
		// trusted either — a WAL is only meaningful as an intact prefix).
		cTornTruncations.Inc()
		cTornBytes.Add(st.Size() - good)
		if err := w.f.Truncate(good); err != nil {
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing truncation: %w", err)
		}
	}
	w.size = good
	w.lastSeq = lastSeq
	return nil
}

// scanRecords walks records in f from offset start to limit, calling fn
// (when non-nil) with each intact record's seq and payload. It returns the
// offset just past the last intact record and the last seq seen. minSeq
// carries the seq floor: records must be strictly increasing.
func scanRecords(f *os.File, start, limit int64, minSeq uint64, fn func(seq uint64, payload []byte) error) (int64, uint64) {
	off := start
	lastSeq := minSeq
	var frame [frameSize]byte
	for {
		if off+frameSize > limit {
			return off, lastSeq
		}
		if _, err := f.ReadAt(frame[:], off); err != nil {
			return off, lastSeq
		}
		plen := int64(binary.LittleEndian.Uint32(frame[0:]))
		seq := binary.LittleEndian.Uint64(frame[4:])
		if plen > maxRecordBytes || seq <= lastSeq {
			return off, lastSeq
		}
		end := off + frameSize + plen + crcSize
		if end > limit {
			return off, lastSeq
		}
		body := make([]byte, plen+crcSize)
		if _, err := f.ReadAt(body, off+frameSize); err != nil {
			return off, lastSeq
		}
		crc := crc32.Update(0, castagnoli, frame[:])
		crc = crc32.Update(crc, castagnoli, body[:plen])
		if crc != binary.LittleEndian.Uint32(body[plen:]) {
			return off, lastSeq
		}
		if fn != nil {
			if err := fn(seq, body[:plen]); err != nil {
				return off, lastSeq
			}
		}
		off = end
		lastSeq = seq
	}
}

// LastSeq returns the sequence number of the last intact record (0 when
// the log is empty).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// Size returns the log's current size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// encodeBatch serializes a batch payload: numOps u32, then (kind u8, u
// i32, v i32) per op.
func encodeBatch(b Batch) []byte {
	buf := make([]byte, 4+len(b)*opBytes)
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(b)))
	off := 4
	for _, op := range b {
		if op.Del {
			buf[off] = 1
		}
		binary.LittleEndian.PutUint32(buf[off+1:], uint32(op.U))
		binary.LittleEndian.PutUint32(buf[off+5:], uint32(op.V))
		off += opBytes
	}
	return buf
}

// DecodeBatch deserializes a batch payload written by encodeBatch.
func DecodeBatch(p []byte) (Batch, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("wal: batch payload too short (%d bytes)", len(p))
	}
	n := int64(binary.LittleEndian.Uint32(p))
	if int64(len(p)) != 4+n*opBytes {
		return nil, fmt.Errorf("wal: batch payload length %d does not match %d ops", len(p), n)
	}
	b := make(Batch, n)
	off := 4
	for i := range b {
		b[i] = Op{
			Del: p[off] != 0,
			U:   int32(binary.LittleEndian.Uint32(p[off+1:])),
			V:   int32(binary.LittleEndian.Uint32(p[off+5:])),
		}
		off += opBytes
	}
	return b, nil
}

// Append frames, writes, and (per policy) fsyncs one batch, returning its
// assigned sequence number. The batch is durable per the SyncPolicy when
// Append returns nil — that is the moment an acknowledgement may be sent.
// After any write or fsync failure the log is poisoned: the file may hold
// bytes whose durability is unknown, so every later Append fails with
// ErrPoisoned until the process restarts and recovery re-establishes a
// trusted prefix.
func (w *WAL) Append(b Batch) (uint64, error) {
	if err := faults.Inject(siteAppend); err != nil {
		// Injected before any byte is written: the log is untouched, so
		// this failure is transient, not poisonous.
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	payload := encodeBatch(b)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	seq := w.lastSeq + 1
	rec := make([]byte, frameSize+len(payload)+crcSize)
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[4:], seq)
	copy(rec[frameSize:], payload)
	crc := crc32.Update(0, castagnoli, rec[:frameSize+len(payload)])
	binary.LittleEndian.PutUint32(rec[frameSize+len(payload):], crc)

	if _, err := w.f.WriteAt(rec, w.size); err != nil {
		// The file may now hold a partial record. Try to cut it back; even
		// if that fails, the CRC framing makes the tail unreadable, and the
		// poison stops anything from being appended after garbage.
		w.f.Truncate(w.size)
		w.err = fmt.Errorf("%w: %v", ErrPoisoned, err)
		return 0, fmt.Errorf("wal: append: %v", err)
	}
	w.dirty = true
	if w.opt.Policy == SyncAlways {
		if err := w.fsyncLocked(); err != nil {
			// The record is written but its durability is unknown; cut it
			// back (best-effort) so a recovery that reuses this file sees
			// exactly the acked prefix, and poison the log either way.
			w.f.Truncate(w.size)
			w.err = fmt.Errorf("%w: %v", ErrPoisoned, err)
			return 0, fmt.Errorf("wal: fsync: %v", err)
		}
	}
	w.size += int64(len(rec))
	w.lastSeq = seq
	cAppends.Inc()
	cAppendBytes.Add(int64(len(rec)))
	return seq, nil
}

// fsyncLocked flushes the file, honoring the wal.fsync fault site. Callers
// hold w.mu.
func (w *WAL) fsyncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := faults.Inject(siteFsync); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	cFsyncs.Inc()
	return nil
}

// Sync forces an fsync regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.fsyncLocked(); err != nil {
		w.err = fmt.Errorf("%w: %v", ErrPoisoned, err)
		return err
	}
	return nil
}

// syncLoop is the SyncInterval background flusher.
func (w *WAL) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.err == nil {
				if err := w.fsyncLocked(); err != nil {
					w.err = fmt.Errorf("%w: %v", ErrPoisoned, err)
				}
			}
			w.mu.Unlock()
		}
	}
}

// Replay streams every intact record with seq > from, in order. The
// callback's error aborts the replay and is returned. Replay reads the
// prefix that existed when it started; concurrent appends are not
// observed, and a concurrent TruncateTo is harmless — Replay opens its own
// handle to the inode current at its start, which the compaction's rename
// cannot invalidate.
func (w *WAL) Replay(from uint64, fn func(seq uint64, b Batch) error) error {
	// The open happens under the mutex so the path still names w.f's inode
	// (TruncateTo swaps both, atomically with respect to mu). The private
	// handle keeps that inode readable even if a compaction replaces the
	// file mid-replay.
	w.mu.Lock()
	f, err := os.Open(w.path)
	limit, base := w.size, w.base
	w.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: opening for replay: %w", err)
	}
	defer f.Close()
	var cbErr error
	end, _ := scanRecords(f, headerSize, limit, base, func(seq uint64, payload []byte) error {
		if seq <= from {
			return nil
		}
		b, err := DecodeBatch(payload)
		if err != nil {
			cbErr = err
			return err
		}
		cReplayed.Inc()
		if err := fn(seq, b); err != nil {
			cbErr = err
			return err
		}
		return nil
	})
	if cbErr != nil {
		return cbErr
	}
	if end != limit {
		// Open truncated the torn tail, so an intact prefix shorter than
		// the file means bytes rotted after they were scanned.
		return fmt.Errorf("wal: replay found corrupt record at offset %d", end)
	}
	return nil
}

// TruncateTo drops every record with seq <= upTo — the compaction step
// after a snapshot covering upTo is durably saved. The retained suffix is
// rewritten through the atomic temp+fsync+rename save path, so a crash
// mid-compaction leaves either the old log or the new one, never a torn
// mix. The rewritten header carries the advanced sequence floor, so even a
// compaction that drops every record preserves the numbering across a
// reopen — without it, the next process would assign sequences below the
// snapshot's and recovery would silently skip them.
func (w *WAL) TruncateTo(upTo uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	// The new floor never regresses and never outruns lastSeq: a floor past
	// lastSeq would make a reopened empty log resume numbering above
	// records that were never written, opening a gap against the snapshot.
	newBase := w.base
	if floor := min(upTo, w.lastSeq); floor > newBase {
		newBase = floor
	}
	// Collect retained frames (seq > upTo) from the intact prefix.
	type frame struct {
		seq     uint64
		payload []byte
	}
	var retained []frame
	scanRecords(w.f, headerSize, w.size, w.base, func(seq uint64, payload []byte) error {
		if seq > upTo {
			p := make([]byte, len(payload))
			copy(p, payload)
			retained = append(retained, frame{seq: seq, payload: p})
		}
		return nil
	})
	err := graphio.AtomicWriteFile(w.path, func(out io.Writer) error {
		hdr := encodeHeader(newBase)
		if _, err := out.Write(hdr[:]); err != nil {
			return err
		}
		for _, fr := range retained {
			rec := make([]byte, frameSize+len(fr.payload)+crcSize)
			binary.LittleEndian.PutUint32(rec[0:], uint32(len(fr.payload)))
			binary.LittleEndian.PutUint64(rec[4:], fr.seq)
			copy(rec[frameSize:], fr.payload)
			crc := crc32.Update(0, castagnoli, rec[:frameSize+len(fr.payload)])
			binary.LittleEndian.PutUint32(rec[frameSize+len(fr.payload):], crc)
			if _, err := out.Write(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("wal: compaction rewrite: %w", err)
	}
	// Swap the handle to the new file; the old inode dies with the handle.
	nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		w.err = fmt.Errorf("%w: reopening after compaction: %v", ErrPoisoned, err)
		return w.err
	}
	st, err := nf.Stat()
	if err != nil {
		nf.Close()
		w.err = fmt.Errorf("%w: stat after compaction: %v", ErrPoisoned, err)
		return w.err
	}
	w.f.Close()
	w.f = nf
	w.size = st.Size()
	w.base = newBase
	w.dirty = false
	// lastSeq is unchanged: compaction never drops the head of the
	// sequence space, only records already covered by a snapshot.
	cCompactions.Inc()
	return nil
}

// Close stops the background flusher (if any), forces a final fsync, and
// closes the file. A poisoned log closes without the final sync.
func (w *WAL) Close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
		w.stop = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	var err error
	if w.err == nil {
		err = w.fsyncLocked()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
