package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"equitruss/internal/faults"
)

func testLog(t *testing.T, opt Options) (*WAL, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Open(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, path
}

func batch(i int) Batch {
	return Batch{
		{U: int32(i), V: int32(i + 1)},
		{Del: true, U: int32(i + 2), V: int32(i + 3)},
	}
}

func appendN(t *testing.T, w *WAL, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq, err := w.Append(batch(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := w.LastSeq(); seq != want {
			t.Fatalf("append %d returned seq %d, LastSeq %d", i, seq, want)
		}
	}
}

func replayAll(t *testing.T, w *WAL, from uint64) map[uint64]Batch {
	t.Helper()
	got := map[uint64]Batch{}
	if err := w.Replay(from, func(seq uint64, b Batch) error {
		got[seq] = b
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	w, path := testLog(t, Options{})
	appendN(t, w, 10)
	if w.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", w.LastSeq())
	}
	got := replayAll(t, w, 0)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for seq, b := range got {
		want := batch(int(seq - 1))
		if len(b) != len(want) {
			t.Fatalf("seq %d: %d ops, want %d", seq, len(b), len(want))
		}
		for i := range b {
			if b[i] != want[i] {
				t.Fatalf("seq %d op %d: %+v, want %+v", seq, i, b[i], want[i])
			}
		}
	}
	// from filters already-applied records.
	if got := replayAll(t, w, 7); len(got) != 3 {
		t.Fatalf("replay from 7: %d records, want 3", len(got))
	}

	// Reopen: the same records survive and seq numbering continues.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 10 {
		t.Fatalf("reopened LastSeq = %d, want 10", w2.LastSeq())
	}
	if seq, err := w2.Append(batch(99)); err != nil || seq != 11 {
		t.Fatalf("append after reopen: seq=%d err=%v, want 11, nil", seq, err)
	}
}

// TestTornTailTruncatedOnOpen is the crash-mid-write recovery contract:
// every partial suffix of the final record must be cut away on open,
// leaving the intact prefix readable and appendable.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	w, path := testLog(t, Options{})
	appendN(t, w, 5)
	w.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	goodSize := len(whole)

	// Find where record 5 begins by reopening a 4-record log's size.
	w4, p4 := testLog(t, Options{})
	appendN(t, w4, 4)
	prefixSize := int(w4.Size())
	w4.Close()
	_ = p4

	for cut := prefixSize + 1; cut < goodSize; cut += 5 {
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "wal.log")
			if err := os.WriteFile(p, whole[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			w, err := Open(p, Options{})
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			defer w.Close()
			if w.LastSeq() != 4 {
				t.Fatalf("LastSeq after torn-tail truncation = %d, want 4", w.LastSeq())
			}
			if n := len(replayAll(t, w, 0)); n != 4 {
				t.Fatalf("replayed %d records, want 4", n)
			}
			// The log stays usable: a new record takes seq 5.
			if seq, err := w.Append(batch(50)); err != nil || seq != 5 {
				t.Fatalf("append after truncation: seq=%d err=%v", seq, err)
			}
		})
	}
}

// TestCorruptRecordTruncatesSuffix: a flipped byte inside a record makes
// that record and everything after it untrusted.
func TestCorruptRecordTruncatesSuffix(t *testing.T) {
	w, path := testLog(t, Options{})
	appendN(t, w, 5)
	w2, _ := testLog(t, Options{})
	appendN(t, w2, 2)
	twoSize := w2.Size()
	w2.Close()
	w.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[twoSize+frameSize+1] ^= 0xFF // corrupt record 3's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	wr, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("open with corrupt record: %v", err)
	}
	defer wr.Close()
	if wr.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2 (records 3-5 discarded)", wr.LastSeq())
	}
}

func TestTruncateToCompacts(t *testing.T) {
	w, path := testLog(t, Options{})
	appendN(t, w, 10)
	sizeBefore := w.Size()
	if err := w.TruncateTo(7); err != nil {
		t.Fatal(err)
	}
	if w.Size() >= sizeBefore {
		t.Fatalf("size did not shrink: %d -> %d", sizeBefore, w.Size())
	}
	if w.LastSeq() != 10 {
		t.Fatalf("LastSeq after compaction = %d, want 10", w.LastSeq())
	}
	got := replayAll(t, w, 0)
	if len(got) != 3 {
		t.Fatalf("replayed %d records after compaction, want 3", len(got))
	}
	for _, seq := range []uint64{8, 9, 10} {
		if _, ok := got[seq]; !ok {
			t.Fatalf("record %d missing after compaction", seq)
		}
	}
	// Appends continue past the compaction point, and a reopen agrees.
	if seq, err := w.Append(batch(0)); err != nil || seq != 11 {
		t.Fatalf("append after compaction: seq=%d err=%v", seq, err)
	}
	w.Close()
	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 11 {
		t.Fatalf("reopened LastSeq = %d, want 11", w2.LastSeq())
	}

	// Compacting everything empties the log.
	if err := w2.TruncateTo(11); err != nil {
		t.Fatal(err)
	}
	if n := len(replayAll(t, w2, 0)); n != 0 {
		t.Fatalf("replayed %d records after full compaction, want 0", n)
	}
}

// TestSeqFloorSurvivesFullCompaction is the regression test for the lost
// sequence floor: compact everything away (as the applier does once a
// snapshot covers the whole log), restart, write, restart again. Without a
// persisted floor the record-free log reopens at lastSeq 0, the post-restart
// write takes seq 1 — below the snapshot's 5 — and the second recovery's
// Replay(from=5) silently drops it despite the 200 ack.
func TestSeqFloorSurvivesFullCompaction(t *testing.T) {
	const snapSeq = 5
	w, path := testLog(t, Options{})
	appendN(t, w, snapSeq)
	if err := w.TruncateTo(snapSeq); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// First restart: the empty log must still know the sequence space ends
	// at the snapshot.
	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.LastSeq() != snapSeq {
		t.Fatalf("reopened fully-compacted log: LastSeq = %d, want %d", w2.LastSeq(), snapSeq)
	}
	if seq, err := w2.Append(batch(0)); err != nil || seq != snapSeq+1 {
		t.Fatalf("append after compacted reopen: seq=%d err=%v, want %d", seq, err, snapSeq+1)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: recovery replays from the snapshot seq and must see
	// exactly the post-restart record, contiguously.
	w3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	got := replayAll(t, w3, snapSeq)
	if len(got) != 1 {
		t.Fatalf("replay from %d after restart-write-restart: %d records, want 1", snapSeq, len(got))
	}
	if _, ok := got[snapSeq+1]; !ok {
		t.Fatalf("replayed seqs %v, want {%d}", got, snapSeq+1)
	}
	// And the floor itself never regresses across repeated compactions.
	if err := w3.TruncateTo(snapSeq + 1); err != nil {
		t.Fatal(err)
	}
	if seq, err := w3.Append(batch(1)); err != nil || seq != snapSeq+2 {
		t.Fatalf("append after second compaction: seq=%d err=%v, want %d", seq, err, snapSeq+2)
	}
}

// TestTruncateToFloorNeverOutrunsLastSeq: a compaction point past the last
// written record must not push the floor beyond it, or a reopened empty log
// would resume numbering above records that never existed.
func TestTruncateToFloorNeverOutrunsLastSeq(t *testing.T) {
	w, path := testLog(t, Options{})
	appendN(t, w, 3)
	if err := w.TruncateTo(10); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() != 3 {
		t.Fatalf("LastSeq after over-shooting compaction = %d, want 3", w2.LastSeq())
	}
	if seq, err := w2.Append(batch(0)); err != nil || seq != 4 {
		t.Fatalf("append: seq=%d err=%v, want 4", seq, err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"always", Options{Policy: SyncAlways}},
		{"interval", Options{Policy: SyncInterval, Interval: 5 * time.Millisecond}},
		{"never", Options{Policy: SyncNever}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, path := testLog(t, tc.opt)
			appendN(t, w, 3)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			w2, err := Open(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			if w2.LastSeq() != 3 {
				t.Fatalf("LastSeq = %d, want 3", w2.LastSeq())
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "never": SyncNever, "": SyncAlways,
	} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

// TestAppendFaultIsTransient: an injected wal.append error fails the one
// append without touching the file — later appends succeed.
func TestAppendFaultIsTransient(t *testing.T) {
	w, _ := testLog(t, Options{})
	faults.Enable(1)
	defer faults.Disable()
	faults.Set("wal.append", faults.Plan{Action: faults.Error, Every: 1, MaxFires: 1})
	if _, err := w.Append(batch(0)); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if seq, err := w.Append(batch(1)); err != nil || seq != 1 {
		t.Fatalf("append after transient fault: seq=%d err=%v", seq, err)
	}
}

// TestFsyncFaultPoisonsLog: once an fsync fails, durability of anything
// later is unknowable — every subsequent Append must fail fast.
func TestFsyncFaultPoisonsLog(t *testing.T) {
	w, path := testLog(t, Options{})
	appendN(t, w, 2)
	faults.Enable(1)
	defer faults.Disable()
	faults.Set("wal.fsync", faults.Plan{Action: faults.Error, Every: 1, MaxFires: 1})
	if _, err := w.Append(batch(2)); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	faults.Disable()
	if _, err := w.Append(batch(3)); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("poisoned log accepted an append: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("poisoned log accepted a sync: %v", err)
	}
	w.Close()
	// Restart recovers: the two acked records are intact.
	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastSeq() < 2 {
		t.Fatalf("LastSeq after restart = %d, want >= 2", w2.LastSeq())
	}
}

func TestConcurrentAppends(t *testing.T) {
	w, _ := testLog(t, Options{Policy: SyncNever})
	const G, per = 8, 50
	var wg sync.WaitGroup
	seqs := make([][]uint64, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := w.Append(batch(g*per + i))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				seqs[g] = append(seqs[g], seq)
			}
		}(g)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, ss := range seqs {
		for _, s := range ss {
			if seen[s] {
				t.Fatalf("seq %d assigned twice", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != G*per || w.LastSeq() != G*per {
		t.Fatalf("got %d unique seqs, LastSeq %d, want %d", len(seen), w.LastSeq(), G*per)
	}
	if n := len(replayAll(t, w, 0)); n != G*per {
		t.Fatalf("replayed %d records, want %d", n, G*per)
	}
}

// TestReplayConcurrentWithTruncateTo: Replay reads through its own file
// handle, so a compaction landing mid-replay (which closes and replaces
// the WAL's handle) cannot yank the file out from under it.
func TestReplayConcurrentWithTruncateTo(t *testing.T) {
	w, _ := testLog(t, Options{Policy: SyncNever})
	const n = 200
	appendN(t, w, n)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				// Each replay sees a consistent prefix: contiguous seqs from
				// wherever the compaction floor was when it started.
				prev := uint64(0)
				if err := w.Replay(0, func(seq uint64, b Batch) error {
					if prev != 0 && seq != prev+1 {
						return fmt.Errorf("gap: %d after %d", seq, prev)
					}
					prev = seq
					return nil
				}); err != nil {
					t.Errorf("replay: %v", err)
					return
				}
			}
		}()
	}
	for upTo := uint64(20); upTo <= n; upTo += 20 {
		if err := w.TruncateTo(upTo); err != nil {
			t.Fatalf("truncate to %d: %v", upTo, err)
		}
	}
	wg.Wait()
}

func TestDecodeBatchRejectsGarbage(t *testing.T) {
	if _, err := DecodeBatch([]byte{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, err := DecodeBatch([]byte{255, 255, 255, 255}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if b, err := DecodeBatch(encodeBatch(nil)); err != nil || len(b) != 0 {
		t.Fatalf("empty batch round-trip: %v, %v", b, err)
	}
}
