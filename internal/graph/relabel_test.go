package graph

import (
	"math/rand"
	"testing"
)

func TestRelabelByDegree(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	var in []Edge
	for i := 0; i < 800; i++ {
		in = append(in, Edge{int32(rnd.Intn(120)), int32(rnd.Intn(120))})
	}
	g := mustGraph(t, in, 120)
	ng, newToOld, err := RelabelByDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumVertices() != g.NumVertices() || ng.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %v vs %v", ng, g)
	}
	// Degrees must be non-increasing in the new labelling.
	for v := int32(1); v < ng.NumVertices(); v++ {
		if ng.Degree(v) > ng.Degree(v-1) {
			t.Fatalf("degree order violated at %d: %d > %d", v, ng.Degree(v), ng.Degree(v-1))
		}
	}
	// Isomorphism: edge (a, b) in new graph iff (old(a), old(b)) in old.
	for eid := int32(0); eid < int32(ng.NumEdges()); eid++ {
		e := ng.Edge(eid)
		if !g.HasEdge(newToOld[e.U], newToOld[e.V]) {
			t.Fatalf("edge %v has no preimage", e)
		}
	}
	// Degree preserved per vertex through the mapping.
	for v := int32(0); v < ng.NumVertices(); v++ {
		if ng.Degree(v) != g.Degree(newToOld[v]) {
			t.Fatalf("degree of %d changed", v)
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := mustGraph(t, []Edge{{0, 1}, {0, 2}, {0, 3}}, 5)
	hist := DegreeHistogram(g)
	if hist[3] != 1 || hist[1] != 3 || hist[0] != 1 {
		t.Fatalf("histogram = %v", hist)
	}
}
