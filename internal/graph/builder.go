package graph

import (
	"fmt"
	"sort"

	"equitruss/internal/concur"
)

// FromEdgeList builds a Graph from an arbitrary edge list. The input may
// contain self-loops, duplicates, and either endpoint order; the builder
// canonicalizes, deduplicates, and drops self-loops, producing a simple
// undirected graph. Vertex IDs must be non-negative; the vertex set is
// [0, maxID]. numVertices <= 0 infers the vertex count from the edges.
func FromEdgeList(edges []Edge, numVertices int32) (*Graph, error) {
	return buildCSR(edges, numVertices, concur.MaxThreads())
}

// FromEdgeListSerial is FromEdgeList restricted to a single thread; used by
// tests that need deterministic single-threaded construction.
func FromEdgeListSerial(edges []Edge, numVertices int32) (*Graph, error) {
	return buildCSR(edges, numVertices, 1)
}

func buildCSR(input []Edge, numVertices int32, threads int) (*Graph, error) {
	// Canonicalize into a private copy, dropping self-loops.
	edges := make([]Edge, 0, len(input))
	var maxID int32 = -1
	for _, e := range input {
		if e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("graph: negative vertex id in edge (%d, %d)", e.U, e.V)
		}
		if e.U == e.V {
			continue // self-loop
		}
		c := e.Canonical()
		if c.V > maxID {
			maxID = c.V
		}
		edges = append(edges, c)
	}
	n := maxID + 1
	if numVertices > 0 {
		if numVertices < n {
			return nil, fmt.Errorf("graph: numVertices=%d but edge references vertex %d", numVertices, maxID)
		}
		n = numVertices
	}
	if n < 0 {
		n = 0
	}

	// Sort and deduplicate so edge IDs are canonical: sorted by (U, V).
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	edges = dedupeSorted(edges)
	m := int64(len(edges))

	g := &Graph{
		offsets: make([]int64, n+1),
		adj:     make([]int32, 2*m),
		adjEID:  make([]int32, 2*m),
		edges:   edges,
	}
	if n == 0 {
		return g, nil
	}

	// Degree counting (each undirected edge contributes to both endpoints).
	counts := make([]int64, n)
	for _, e := range edges {
		counts[e.U]++
		counts[e.V]++
	}
	copy(g.offsets[1:], counts)
	var running int64
	for v := int32(0); v < n; v++ {
		running += g.offsets[v+1]
		g.offsets[v+1] = running
	}

	// Fill adjacency. Because edges are sorted by (U, V), slots for each
	// vertex's "forward" neighbors (V side when vertex is U) land in
	// ascending order; the "backward" side needs a per-vertex sort. Use
	// cursor fill then sort each vertex's slice with its aligned EIDs.
	cursor := make([]int64, n)
	copy(cursor, g.offsets[:n])
	for eid, e := range edges {
		g.adj[cursor[e.U]] = e.V
		g.adjEID[cursor[e.U]] = int32(eid)
		cursor[e.U]++
		g.adj[cursor[e.V]] = e.U
		g.adjEID[cursor[e.V]] = int32(eid)
		cursor[e.V]++
	}
	concur.For(int(n), threads, func(i int) {
		v := int32(i)
		lo, hi := g.offsets[v], g.offsets[v+1]
		sortAdjWithEIDs(g.adj[lo:hi], g.adjEID[lo:hi])
	})
	return g, nil
}

// dedupeSorted removes duplicate edges from a canonically sorted slice.
func dedupeSorted(edges []Edge) []Edge {
	if len(edges) == 0 {
		return edges
	}
	out := edges[:1]
	for _, e := range edges[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}

// sortAdjWithEIDs sorts a neighbor slice ascending, permuting the aligned
// edge-ID slice identically. Insertion sort is used below a small threshold
// since typical per-vertex lists are short.
func sortAdjWithEIDs(adj, eids []int32) {
	if len(adj) < 24 {
		for i := 1; i < len(adj); i++ {
			a, e := adj[i], eids[i]
			j := i - 1
			for j >= 0 && adj[j] > a {
				adj[j+1], eids[j+1] = adj[j], eids[j]
				j--
			}
			adj[j+1], eids[j+1] = a, e
		}
		return
	}
	idx := make([]int32, len(adj))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(x, y int) bool { return adj[idx[x]] < adj[idx[y]] })
	tmpA := make([]int32, len(adj))
	tmpE := make([]int32, len(adj))
	for i, p := range idx {
		tmpA[i], tmpE[i] = adj[p], eids[p]
	}
	copy(adj, tmpA)
	copy(eids, tmpE)
}

// InducedByEdges returns the subgraph of g containing exactly the edges
// whose IDs satisfy keep, preserving vertex IDs. Used to materialize
// community subgraphs and k-truss subgraphs.
func (g *Graph) InducedByEdges(keep func(eid int32) bool) (*Graph, error) {
	var sub []Edge
	for eid := int32(0); eid < int32(g.NumEdges()); eid++ {
		if keep(eid) {
			sub = append(sub, g.edges[eid])
		}
	}
	return FromEdgeList(sub, g.NumVertices())
}
