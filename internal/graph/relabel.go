package graph

import "sort"

// RelabelByDegree returns a copy of g whose vertex IDs are reassigned in
// non-increasing degree order (hubs first), plus the mapping from new to
// old IDs. Degree ordering improves cache locality of adjacency scans on
// skewed graphs — the storage discipline behind the GAP CSRGraph the
// paper's C-Optimal variant adopts.
func RelabelByDegree(g *Graph) (*Graph, []int32, error) {
	n := g.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	oldToNew := make([]int32, n)
	for newID, oldID := range order {
		oldToNew[oldID] = int32(newID)
	}
	edges := make([]Edge, g.NumEdges())
	for eid, e := range g.Edges() {
		edges[eid] = Edge{U: oldToNew[e.U], V: oldToNew[e.V]}.Canonical()
	}
	ng, err := FromEdgeList(edges, n)
	if err != nil {
		return nil, nil, err
	}
	return ng, order, nil
}

// DegreeHistogram returns the count of vertices per degree value.
func DegreeHistogram(g *Graph) map[int32]int64 {
	hist := make(map[int32]int64)
	for v := int32(0); v < g.NumVertices(); v++ {
		hist[g.Degree(v)]++
	}
	return hist
}
