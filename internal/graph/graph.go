// Package graph provides the compressed-sparse-row (CSR) representation of
// simple undirected graphs that the whole EquiTruss pipeline runs on.
//
// The layout mirrors the GAP Benchmark Suite's CSRGraph, which the paper's
// C-Optimal variant adopts: per-vertex sorted neighbor lists plus, aligned
// with every adjacency slot, the ID of the undirected edge the slot belongs
// to. Edge IDs are dense in [0, m) and index canonical Edge{U < V} records,
// so per-edge state (support, trussness, component) lives in flat arrays.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a canonical undirected edge with U < V.
type Edge struct {
	U, V int32
}

// Canonical returns e with endpoints ordered so U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Graph is an immutable simple undirected graph in CSR form.
type Graph struct {
	offsets []int64 // len n+1; offsets[v]..offsets[v+1] index adj/adjEID
	adj     []int32 // len 2m; neighbors, sorted ascending per vertex
	adjEID  []int32 // len 2m; undirected edge ID of each adjacency slot
	edges   []Edge  // len m; edges[eid] is the canonical endpoint pair
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int32 { return int32(len(g.offsets) - 1) }

// NumEdges returns |E| (undirected edge count).
func (g *Graph) NumEdges() int64 { return int64(len(g.edges)) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int32 {
	return int32(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns v's sorted neighbor list. The slice aliases internal
// storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// IncidentEIDs returns, aligned with Neighbors(v), the undirected edge IDs
// of v's incident edges. The slice aliases internal storage.
func (g *Graph) IncidentEIDs(v int32) []int32 {
	return g.adjEID[g.offsets[v]:g.offsets[v+1]]
}

// Edge returns the canonical endpoints of edge eid.
func (g *Graph) Edge(eid int32) Edge { return g.edges[eid] }

// Edges returns the canonical edge array indexed by edge ID. The slice
// aliases internal storage and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgeID returns the undirected edge ID of (u, v), or -1 if the edge does
// not exist. It binary-searches the smaller adjacency list.
func (g *Graph) EdgeID(u, v int32) int32 {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	if i < len(nbrs) && nbrs[i] == v {
		return g.IncidentEIDs(u)[i]
	}
	return -1
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int32) bool { return g.EdgeID(u, v) >= 0 }

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int32 {
	var max int32
	for v := int32(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// String summarizes the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{V=%d, E=%d}", g.NumVertices(), g.NumEdges())
}

// ForEachTriangleOf invokes fn(w, e1, e2) for every vertex w that closes a
// triangle with edge eid = (u, v), passing the edge IDs e1 = (u, w) and
// e2 = (v, w). Enumeration is a sorted-merge intersection of N(u) and N(v).
// fn returning false stops the enumeration early.
//
// This is the k-triangle-connectivity neighborhood generator used by every
// supernode builder (Algorithm 2 line 11: "compute the list W of common
// neighbors that make triangles with e").
func (g *Graph) ForEachTriangleOf(eid int32, fn func(w, e1, e2 int32) bool) {
	e := g.edges[eid]
	u, v := e.U, e.V
	nu, nv := g.Neighbors(u), g.Neighbors(v)
	eu, ev := g.IncidentEIDs(u), g.IncidentEIDs(v)
	i, j := 0, 0
	for i < len(nu) && j < len(nv) {
		a, b := nu[i], nv[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			if !fn(a, eu[i], ev[j]) {
				return
			}
			i++
			j++
		}
	}
}

// CommonNeighborCount returns |N(u) ∩ N(v)| via sorted-merge intersection.
// For an edge (u, v) this is exactly the edge's support.
func (g *Graph) CommonNeighborCount(u, v int32) int32 {
	nu, nv := g.Neighbors(u), g.Neighbors(v)
	var count int32
	i, j := 0, 0
	for i < len(nu) && j < len(nv) {
		a, b := nu[i], nv[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}
