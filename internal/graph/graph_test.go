package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustGraph(t testing.TB, edges []Edge, n int32) *Graph {
	t.Helper()
	g, err := FromEdgeList(edges, n)
	if err != nil {
		t.Fatalf("FromEdgeList: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := mustGraph(t, nil, 0)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: %v", g)
	}
	g = mustGraph(t, nil, 5)
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatalf("edgeless graph: %v", g)
	}
	if g.MaxDegree() != 0 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestCanonicalization(t *testing.T) {
	// Duplicates in both orientations plus self-loops collapse to one
	// simple triangle.
	in := []Edge{{1, 0}, {0, 1}, {0, 1}, {1, 2}, {2, 1}, {0, 2}, {2, 2}, {0, 0}}
	g := mustGraph(t, in, 0)
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v, want V=3 E=3", g)
	}
	for _, e := range g.Edges() {
		if e.U >= e.V {
			t.Fatalf("non-canonical stored edge %v", e)
		}
	}
}

func TestNegativeVertexRejected(t *testing.T) {
	if _, err := FromEdgeList([]Edge{{-1, 2}}, 0); err == nil {
		t.Fatal("negative vertex accepted")
	}
}

func TestNumVerticesTooSmallRejected(t *testing.T) {
	if _, err := FromEdgeList([]Edge{{0, 9}}, 5); err == nil {
		t.Fatal("undersized numVertices accepted")
	}
}

func TestNeighborsSortedAndAligned(t *testing.T) {
	in := []Edge{{3, 1}, {3, 0}, {3, 2}, {0, 1}, {2, 0}}
	g := mustGraph(t, in, 0)
	for v := int32(0); v < g.NumVertices(); v++ {
		nbrs := g.Neighbors(v)
		eids := g.IncidentEIDs(v)
		if len(nbrs) != len(eids) {
			t.Fatalf("vertex %d: misaligned adjacency", v)
		}
		if !sort.SliceIsSorted(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] }) {
			t.Fatalf("vertex %d neighbors unsorted: %v", v, nbrs)
		}
		for i, w := range nbrs {
			e := g.Edge(eids[i])
			if !(e.U == v && e.V == w || e.U == w && e.V == v) {
				t.Fatalf("slot eid mismatch: vertex %d nbr %d edge %v", v, w, e)
			}
		}
	}
}

func TestEdgeIDLookup(t *testing.T) {
	in := []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	g := mustGraph(t, in, 0)
	for eid := int32(0); eid < int32(g.NumEdges()); eid++ {
		e := g.Edge(eid)
		if got := g.EdgeID(e.U, e.V); got != eid {
			t.Fatalf("EdgeID(%d,%d) = %d, want %d", e.U, e.V, got, eid)
		}
		if got := g.EdgeID(e.V, e.U); got != eid {
			t.Fatalf("EdgeID reversed (%d,%d) = %d, want %d", e.V, e.U, got, eid)
		}
	}
	if g.EdgeID(0, 3) != -1 || g.HasEdge(0, 3) {
		t.Fatal("phantom edge (0,3)")
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("missing edge (0,1)")
	}
}

func TestDegreeSumEquals2M(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	var in []Edge
	for i := 0; i < 500; i++ {
		in = append(in, Edge{int32(rnd.Intn(100)), int32(rnd.Intn(100))})
	}
	g := mustGraph(t, in, 100)
	var sum int64
	for v := int32(0); v < g.NumVertices(); v++ {
		sum += int64(g.Degree(v))
	}
	if sum != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2m %d", sum, 2*g.NumEdges())
	}
}

func TestTriangleEnumerationTriangle(t *testing.T) {
	g := mustGraph(t, []Edge{{0, 1}, {1, 2}, {0, 2}}, 0)
	e01 := g.EdgeID(0, 1)
	var hits int
	g.ForEachTriangleOf(e01, func(w, e1, e2 int32) bool {
		hits++
		if w != 2 {
			t.Fatalf("apex = %d, want 2", w)
		}
		if e1 != g.EdgeID(0, 2) || e2 != g.EdgeID(1, 2) {
			t.Fatalf("partner eids (%d, %d)", e1, e2)
		}
		return true
	})
	if hits != 1 {
		t.Fatalf("triangle visited %d times", hits)
	}
}

func TestTriangleEnumerationEarlyStop(t *testing.T) {
	// K5: edge (0,1) has 3 apexes; stopping after the first must visit 1.
	var in []Edge
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			in = append(in, Edge{u, v})
		}
	}
	g := mustGraph(t, in, 0)
	var hits int
	g.ForEachTriangleOf(g.EdgeID(0, 1), func(w, e1, e2 int32) bool {
		hits++
		return false
	})
	if hits != 1 {
		t.Fatalf("early stop visited %d", hits)
	}
}

// TestTriangleEnumerationMatchesBrute cross-checks ForEachTriangleOf and
// CommonNeighborCount against an O(V^3) enumeration on random graphs.
func TestTriangleEnumerationMatchesBrute(t *testing.T) {
	check := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := int32(14)
		var in []Edge
		for u := int32(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rnd.Float64() < 0.3 {
					in = append(in, Edge{u, v})
				}
			}
		}
		g, err := FromEdgeList(in, n)
		if err != nil {
			return false
		}
		adj := make(map[[2]int32]bool)
		for _, e := range g.Edges() {
			adj[[2]int32{e.U, e.V}] = true
		}
		has := func(u, v int32) bool {
			if u > v {
				u, v = v, u
			}
			return adj[[2]int32{u, v}]
		}
		for eid := int32(0); eid < int32(g.NumEdges()); eid++ {
			e := g.Edge(eid)
			var bruteApexes []int32
			for w := int32(0); w < n; w++ {
				if w != e.U && w != e.V && has(e.U, w) && has(e.V, w) {
					bruteApexes = append(bruteApexes, w)
				}
			}
			var gotApexes []int32
			g.ForEachTriangleOf(eid, func(w, e1, e2 int32) bool {
				gotApexes = append(gotApexes, w)
				// Partner edge IDs must resolve to the right endpoints.
				if g.EdgeID(e.U, w) != e1 || g.EdgeID(e.V, w) != e2 {
					gotApexes = append(gotApexes, -99)
				}
				return true
			})
			if len(gotApexes) != len(bruteApexes) {
				return false
			}
			for i := range gotApexes {
				if gotApexes[i] != bruteApexes[i] {
					return false
				}
			}
			if g.CommonNeighborCount(e.U, e.V) != int32(len(bruteApexes)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSerialParallelBuildIdentical(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	var in []Edge
	for i := 0; i < 5000; i++ {
		in = append(in, Edge{int32(rnd.Intn(300)), int32(rnd.Intn(300))})
	}
	gp := mustGraph(t, in, 300)
	gs, err := FromEdgeListSerial(in, 300)
	if err != nil {
		t.Fatal(err)
	}
	if gp.NumEdges() != gs.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", gp.NumEdges(), gs.NumEdges())
	}
	for v := int32(0); v < 300; v++ {
		a, b := gp.Neighbors(v), gs.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestInducedByEdges(t *testing.T) {
	g := mustGraph(t, []Edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}, 0)
	sub, err := g.InducedByEdges(func(eid int32) bool {
		e := g.Edge(eid)
		return e.U != 3 && e.V != 3 // drop edges touching vertex 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("induced edges = %d, want 3", sub.NumEdges())
	}
	if sub.NumVertices() != g.NumVertices() {
		t.Fatal("vertex IDs not preserved")
	}
	if sub.HasEdge(2, 3) || !sub.HasEdge(0, 1) {
		t.Fatal("wrong edges survived")
	}
}

func TestGraphString(t *testing.T) {
	g := mustGraph(t, []Edge{{0, 1}}, 0)
	if got := g.String(); got != "Graph{V=2, E=1}" {
		t.Fatalf("String = %q", got)
	}
}

func TestCanonicalEdge(t *testing.T) {
	if (Edge{5, 2}).Canonical() != (Edge{2, 5}) {
		t.Fatal("Canonical did not swap")
	}
	if (Edge{2, 5}).Canonical() != (Edge{2, 5}) {
		t.Fatal("Canonical swapped a sorted edge")
	}
}
