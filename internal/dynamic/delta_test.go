package dynamic

import (
	"math/rand"
	"testing"
)

// deltaOracle replays an op sequence twice — once on a tracked graph, once
// on an untracked clone — and checks the reported delta against the exact
// before/after difference of the τ maps.
func checkDeltaAgainstStates(t *testing.T, before map[uint64]int32, dg *Graph, d Delta) {
	t.Helper()
	after := dg.TauSnapshot()
	// Every key the states disagree on must be named by the delta.
	for k, tb := range before {
		ta, ok := after[k]
		switch {
		case !ok:
			if _, del := d.Deleted[k]; !del {
				u, v := unpack(k)
				t.Fatalf("edge (%d,%d) vanished but is not in Deleted", u, v)
			}
		case ta != tb:
			if ct, ch := d.Changed[k]; !ch || ct != ta {
				u, v := unpack(k)
				t.Fatalf("edge (%d,%d) moved %d→%d; Changed has (%v)", u, v, tb, ta, d.Changed[k])
			}
		}
	}
	for k, ta := range after {
		if _, was := before[k]; !was {
			if it, ins := d.Inserted[k]; !ins || it != ta {
				u, v := unpack(k)
				t.Fatalf("edge (%d,%d) appeared (τ=%d) but Inserted has (%v)", u, v, ta, d.Inserted[k])
			}
		}
	}
	// Delta maps must be consistent with the final state and disjoint.
	for k, ct := range d.Changed {
		if ta, ok := after[k]; !ok || ta != ct {
			t.Fatalf("Changed names key %x with τ=%d, state has (%d,%v)", k, ct, ta, ok)
		}
		if _, was := before[k]; !was {
			t.Fatalf("Changed names key %x absent before the window", k)
		}
	}
	for k, it := range d.Inserted {
		if ta, ok := after[k]; !ok || ta != it {
			t.Fatalf("Inserted names key %x with τ=%d, state has (%d,%v)", k, it, ta, ok)
		}
	}
	for k := range d.Deleted {
		if _, ok := after[k]; ok {
			t.Fatalf("Deleted names surviving key %x", k)
		}
		if _, was := before[k]; !was {
			t.Fatalf("Deleted names key %x absent before the window", k)
		}
	}
	for k := range d.Touched {
		if _, ok := after[k]; !ok {
			t.Fatalf("Touched names missing key %x", k)
		}
		if _, ch := d.Changed[k]; ch {
			t.Fatalf("Touched overlaps Changed on key %x", k)
		}
		if _, ins := d.Inserted[k]; ins {
			t.Fatalf("Touched overlaps Inserted on key %x", k)
		}
	}
	if d.NumVertices != dg.NumVertices() {
		t.Fatalf("delta NumVertices = %d, graph has %d", d.NumVertices, dg.NumVertices())
	}
}

func TestDeltaBasicInsertDelete(t *testing.T) {
	dg := New(8)
	// Seed a triangle plus a tail, untracked (simulating recovery replay).
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}} {
		if _, err := dg.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if dg.Tracking() {
		t.Fatal("tracking on before TrackDeltas")
	}
	dg.TrackDeltas(true)
	before := dg.TauSnapshot()

	// Close a second triangle on (0,2): (0,3) with (2,3) existing.
	if _, err := dg.InsertEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	d := dg.Delta()
	checkDeltaAgainstStates(t, before, dg, d)
	if _, ok := d.Inserted[pack(0, 3)]; !ok {
		t.Fatalf("insert (0,3) not reported: %+v", d)
	}

	// Deleting (0,1) destroys the (0,1,2) triangle: partners (0,2), (1,2)
	// must be reported — changed or touched — and (0,1) deleted. The delta
	// window is still open, so the insert above must still be present.
	dg.DeleteEdge(0, 1)
	d = dg.Delta()
	checkDeltaAgainstStates(t, before, dg, d)
	if _, ok := d.Deleted[pack(0, 1)]; !ok {
		t.Fatalf("delete (0,1) not reported: %+v", d)
	}
	for _, partner := range []uint64{pack(0, 2), pack(1, 2)} {
		_, ch := d.Changed[partner]
		_, to := d.Touched[partner]
		if !ch && !to {
			u, v := unpack(partner)
			t.Fatalf("partner (%d,%d) of deleted edge neither changed nor touched: %+v", u, v, d)
		}
	}
	if _, ok := d.Inserted[pack(0, 3)]; !ok {
		t.Fatal("open window dropped the earlier insert")
	}

	dg.ResetDelta()
	if got := dg.Delta(); !got.Empty() {
		t.Fatalf("delta after reset not empty: %+v", got)
	}
}

func TestDeltaNetsOutInsertDeleteCycles(t *testing.T) {
	dg := New(4)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}} {
		if _, err := dg.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	dg.TrackDeltas(true)
	before := dg.TauSnapshot()

	// Insert then delete: nets to nothing for (1,3); the triangle partners
	// of the deletion that survive must not be reported as inserted.
	if _, err := dg.InsertEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if !dg.DeleteEdge(1, 3) {
		t.Fatal("delete failed")
	}
	d := dg.Delta()
	checkDeltaAgainstStates(t, before, dg, d)
	if _, ok := d.Inserted[pack(1, 3)]; ok {
		t.Fatal("insert-then-delete reported as Inserted")
	}
	if _, ok := d.Deleted[pack(1, 3)]; ok {
		t.Fatal("insert-then-delete reported as Deleted")
	}

	// Delete then re-insert: the edge existed before and after; it must be
	// reported as Changed (conservatively), never Inserted or Deleted.
	if !dg.DeleteEdge(0, 1) {
		t.Fatal("delete failed")
	}
	if _, err := dg.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	d = dg.Delta()
	checkDeltaAgainstStates(t, before, dg, d)
	if _, ok := d.Changed[pack(0, 1)]; !ok {
		t.Fatalf("delete-then-reinsert not in Changed: %+v", d)
	}
	if _, ok := d.Inserted[pack(0, 1)]; ok {
		t.Fatal("delete-then-reinsert in Inserted")
	}
	if _, ok := d.Deleted[pack(0, 1)]; ok {
		t.Fatal("delete-then-reinsert in Deleted")
	}
}

// TestDeltaRandomChurn cross-checks the delta contract over random batches:
// after each batch the delta must exactly explain the state difference
// since the last reset.
func TestDeltaRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dg := New(24)
	for i := 0; i < 60; i++ {
		u, v := int32(rng.Intn(24)), int32(rng.Intn(24))
		if u != v {
			dg.InsertEdge(u, v)
		}
	}
	dg.TrackDeltas(true)
	for batch := 0; batch < 20; batch++ {
		before := dg.TauSnapshot()
		for op := 0; op < 10; op++ {
			u, v := int32(rng.Intn(26)), int32(rng.Intn(26))
			if u == v {
				continue
			}
			if rng.Intn(3) == 0 {
				dg.DeleteEdge(u, v)
			} else {
				if _, err := dg.InsertEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
		d := dg.Delta()
		checkDeltaAgainstStates(t, before, dg, d)
		dg.ResetDelta()
	}
}
