// Package dynamic maintains exact per-edge trussness under single-edge
// insertions and deletions — the maintenance counterpart of the static
// pipeline (the EquiTruss model's index-maintenance half, future work in
// the ICPP paper's construction-focused scope).
//
// Correctness rests on the greatest-fixpoint characterization of
// trussness: τ is the largest function f with
//
//	f(e) <= 2 + |{Δ ∋ e : min(f(e1), f(e2)) >= f(e)}|   for every edge e,
//
// (any f satisfying the condition witnesses f(e)-trusses, and τ satisfies
// it). Therefore starting from any pointwise upper bound of the new
// trussness and repeatedly lowering violators converges to the exact new
// trussness. Deletion leaves old values as upper bounds; insertion raises
// a provably-sufficient candidate set by one and bounds the new edge by an
// h-index-style estimate; both then lower to the fixpoint locally.
package dynamic

import (
	"fmt"
	"sort"

	"equitruss/internal/graph"
	"equitruss/internal/truss"
)

// Graph is a mutable simple undirected graph with exact per-edge trussness
// maintained across updates.
type Graph struct {
	adj []map[int32]struct{} // adjacency sets, grown on demand
	tau map[uint64]int32     // canonical packed edge -> trussness
	m   int64

	// Delta accumulators, nil unless TrackDeltas(true) was called. They
	// record, since the last ResetDelta, which edges appeared (insAcc),
	// disappeared (delAcc), had a trussness value committed that differs
	// from the stored one (chAcc), or were triangle partners of a deleted
	// edge at delete time (touchAcc — the only moment those triangles are
	// still observable). Raw accumulators may overlap across an op
	// sequence (delete-then-insert, insert-then-delete); Delta reconciles
	// them against the final state.
	insAcc   map[uint64]struct{}
	delAcc   map[uint64]struct{}
	chAcc    map[uint64]struct{}
	touchAcc map[uint64]struct{}
}

func pack(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func unpack(p uint64) (u, v int32) { return int32(p >> 32), int32(uint32(p)) }

// New returns an empty dynamic graph with capacity for n vertices (grown
// automatically as edges mention larger IDs).
func New(n int32) *Graph {
	return &Graph{
		adj: make([]map[int32]struct{}, n),
		tau: make(map[uint64]int32),
	}
}

// FromStatic imports a CSR graph and its decomposition.
func FromStatic(g *graph.Graph, tau []int32) *Graph {
	dg := New(g.NumVertices())
	for eid, e := range g.Edges() {
		dg.ensure(e.V)
		dg.link(e.U, e.V)
		dg.tau[pack(e.U, e.V)] = tau[eid]
		dg.m++
	}
	return dg
}

// NumVertices returns the current vertex-ID space size.
func (dg *Graph) NumVertices() int32 { return int32(len(dg.adj)) }

// NumEdges returns the current edge count.
func (dg *Graph) NumEdges() int64 { return dg.m }

// Trussness returns τ(u, v) and whether the edge exists.
func (dg *Graph) Trussness(u, v int32) (int32, bool) {
	t, ok := dg.tau[pack(u, v)]
	return t, ok
}

// HasEdge reports whether (u, v) is present.
func (dg *Graph) HasEdge(u, v int32) bool {
	_, ok := dg.Trussness(u, v)
	return ok
}

func (dg *Graph) ensure(v int32) {
	for int32(len(dg.adj)) <= v {
		dg.adj = append(dg.adj, nil)
	}
}

func (dg *Graph) link(u, v int32) {
	if dg.adj[u] == nil {
		dg.adj[u] = make(map[int32]struct{})
	}
	if dg.adj[v] == nil {
		dg.adj[v] = make(map[int32]struct{})
	}
	dg.adj[u][v] = struct{}{}
	dg.adj[v][u] = struct{}{}
}

func (dg *Graph) unlink(u, v int32) {
	delete(dg.adj[u], v)
	delete(dg.adj[v], u)
}

// forEachTriangle invokes fn(w) for every common neighbor of u and v,
// iterating the smaller adjacency set.
func (dg *Graph) forEachTriangle(u, v int32, fn func(w int32)) {
	if u >= int32(len(dg.adj)) || v >= int32(len(dg.adj)) {
		return
	}
	a, b := dg.adj[u], dg.adj[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	for w := range a {
		if _, ok := b[w]; ok {
			fn(w)
		}
	}
}

// cur reads the working trussness of an edge during an update: the pending
// override if present, the committed value otherwise.
func cur(tau map[uint64]int32, pending map[uint64]int32, key uint64) int32 {
	if t, ok := pending[key]; ok {
		return t
	}
	return tau[key]
}

// InsertEdge adds (u, v) and restores exact trussness everywhere. Returns
// false (no change) if the edge already exists; self-loops and negative
// IDs are rejected with an error.
func (dg *Graph) InsertEdge(u, v int32) (bool, error) {
	if u < 0 || v < 0 {
		return false, fmt.Errorf("dynamic: negative vertex in (%d, %d)", u, v)
	}
	if u == v {
		return false, fmt.Errorf("dynamic: self-loop (%d, %d)", u, u)
	}
	key := pack(u, v)
	if _, ok := dg.tau[key]; ok {
		return false, nil
	}
	dg.ensure(u)
	dg.ensure(v)
	dg.link(u, v)
	dg.m++
	if dg.insAcc != nil {
		if _, wasDeleted := dg.delAcc[key]; wasDeleted {
			// Re-insert of an edge deleted earlier in the same delta window:
			// it existed at window start and exists now — a change, not an
			// insert (its commit below lands in chAcc via lowerToFixpoint).
			delete(dg.delAcc, key)
			dg.chAcc[key] = struct{}{}
		} else {
			dg.insAcc[key] = struct{}{}
		}
	}

	// Upper bound for the new edge: the largest k such that at least k-2
	// of its triangles have min(partner τ)+1 >= k (partners may themselves
	// rise by one, hence the +1; any overestimate is corrected by the
	// lowering pass).
	var mins []int32
	dg.forEachTriangle(u, v, func(w int32) {
		t1 := dg.tau[pack(u, w)]
		t2 := dg.tau[pack(v, w)]
		if t2 < t1 {
			t1 = t2
		}
		mins = append(mins, t1+1)
	})
	sort.Slice(mins, func(i, j int) bool { return mins[i] > mins[j] })
	ub := int32(2)
	for i, mv := range mins {
		k := int32(i+1) + 2 // with i+1 qualifying triangles, k <= i+3
		if mv < k {
			k = mv
		}
		if k > ub {
			ub = k
		}
	}

	pending := map[uint64]int32{key: ub}
	// Candidate set: for each level k < ub, edges with τ = k that are
	// triangle-connected to the new edge inside the subgraph of edges with
	// τ >= k (only such edges can be pulled into a (k+1)-truss that uses
	// the new edge). Their bound rises by one.
	for k := int32(2); k < ub; k++ {
		for _, cand := range dg.reachableAtLevel(key, k) {
			if _, seen := pending[cand]; !seen {
				pending[cand] = dg.tau[cand] + 1
			}
		}
	}
	dg.lowerToFixpoint(pending)
	return true, nil
}

// DeleteEdge removes (u, v) and restores exact trussness. Returns false if
// the edge does not exist.
func (dg *Graph) DeleteEdge(u, v int32) bool {
	key := pack(u, v)
	if _, ok := dg.tau[key]; !ok {
		return false
	}
	// Seed the recheck queue with all triangle partners (their qualifying
	// triangle counts may have dropped); old values remain upper bounds.
	pending := map[uint64]int32{}
	var seeds []uint64
	dg.forEachTriangle(u, v, func(w int32) {
		seeds = append(seeds, pack(u, w), pack(v, w))
	})
	dg.unlink(u, v)
	delete(dg.tau, key)
	dg.m--
	if dg.delAcc != nil {
		if _, wasInserted := dg.insAcc[key]; wasInserted {
			// Insert-then-delete inside one window nets out to no edge.
			delete(dg.insAcc, key)
		} else {
			dg.delAcc[key] = struct{}{}
		}
		delete(dg.chAcc, key)
		// The deleted edge's triangles are gone after unlink; its partners
		// lose a witness even when their trussness does not move.
		for _, s := range seeds {
			dg.touchAcc[s] = struct{}{}
		}
	}
	for _, s := range seeds {
		pending[s] = dg.tau[s]
	}
	dg.lowerToFixpoint(pending)
	return true
}

// reachableAtLevel collects edges with τ == k triangle-connected to the
// start edge within the subgraph of edges with τ >= k (the start edge is
// always admitted). BFS over edges; triangles must lie fully inside.
func (dg *Graph) reachableAtLevel(start uint64, k int32) []uint64 {
	visited := map[uint64]bool{start: true}
	queue := []uint64{start}
	var out []uint64
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		u, v := unpack(e)
		dg.forEachTriangle(u, v, func(w int32) {
			e1, e2 := pack(u, w), pack(v, w)
			t1, t2 := dg.tau[e1], dg.tau[e2]
			if t1 < k || t2 < k {
				return
			}
			for _, nxt := range [2]uint64{e1, e2} {
				if !visited[nxt] {
					visited[nxt] = true
					queue = append(queue, nxt)
					if dg.tau[nxt] == k {
						out = append(out, nxt)
					}
				}
			}
		})
	}
	return out
}

// lowerToFixpoint repeatedly rechecks pending edges, lowering any whose
// qualifying-triangle count no longer supports its working trussness, and
// cascading to the triangle partners the drop can invalidate. On exit the
// pending values are exact and are committed.
func (dg *Graph) lowerToFixpoint(pending map[uint64]int32) {
	queue := make([]uint64, 0, len(pending))
	inQueue := make(map[uint64]bool, len(pending))
	for e := range pending {
		queue = append(queue, e)
		inQueue[e] = true
	}
	// Deterministic processing order is unnecessary for correctness (the
	// greatest fixpoint is unique) but keeps debugging sane.
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		inQueue[e] = false
		k := cur(dg.tau, pending, e)
		if k <= truss.MinTrussness {
			pending[e] = truss.MinTrussness
			continue
		}
		u, v := unpack(e)
		var s int32
		dg.forEachTriangle(u, v, func(w int32) {
			t1 := cur(dg.tau, pending, pack(u, w))
			t2 := cur(dg.tau, pending, pack(v, w))
			if t1 >= k && t2 >= k {
				s++
			}
		})
		if s >= k-2 {
			continue // satisfied at level k
		}
		// Lower e and cascade: partners whose level equals k may lose a
		// qualifying triangle.
		pending[e] = k - 1
		if !inQueue[e] {
			queue = append(queue, e)
			inQueue[e] = true
		}
		dg.forEachTriangle(u, v, func(w int32) {
			for _, p := range [2]uint64{pack(u, w), pack(v, w)} {
				if cur(dg.tau, pending, p) == k && !inQueue[p] {
					if _, tracked := pending[p]; !tracked {
						pending[p] = k
					}
					queue = append(queue, p)
					inQueue[p] = true
				}
			}
		})
	}
	for e, t := range pending {
		if dg.chAcc != nil {
			if old, ok := dg.tau[e]; !ok || old != t {
				dg.chAcc[e] = struct{}{}
			}
		}
		dg.tau[e] = t
	}
}

// ToStatic exports the current graph and trussness as a CSR graph plus a
// tau array aligned with its edge IDs — ready for core.Build to construct
// a fresh index.
func (dg *Graph) ToStatic() (*graph.Graph, []int32, error) {
	edges := make([]graph.Edge, 0, dg.m)
	for key := range dg.tau {
		u, v := unpack(key)
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g, err := graph.FromEdgeList(edges, dg.NumVertices())
	if err != nil {
		return nil, nil, err
	}
	tau := make([]int32, g.NumEdges())
	for eid, e := range g.Edges() {
		tau[eid] = dg.tau[pack(e.U, e.V)]
	}
	return g, tau, nil
}

// Delta describes the net effect of the operations applied since the last
// ResetDelta, in terms of canonically packed edge keys (Pack/Unpack). It is
// exactly the input the incremental summary-graph repair needs: which edges
// appeared, which disappeared, which survivors carry a different trussness,
// and which survivors lost a triangle to a deletion without moving.
type Delta struct {
	// Changed maps pre-existing surviving edges whose trussness differs
	// (or may differ — delete/re-insert cycles are reported conservatively)
	// from the window start to their current trussness.
	Changed map[uint64]int32
	// Inserted maps edges absent at window start and present now to their
	// current trussness.
	Inserted map[uint64]int32
	// Deleted holds edges present at window start and absent now.
	Deleted map[uint64]struct{}
	// Touched holds surviving pre-existing edges that were triangle
	// partners of a deleted edge at delete time: their trussness may be
	// unchanged, but their triangle set — and therefore the superedge
	// witnesses around them — changed. Disjoint from Changed and Inserted.
	Touched map[uint64]struct{}
	// NumVertices is the vertex-ID space size after the window, which can
	// exceed the largest surviving endpoint when an insert that grew the
	// space was later deleted.
	NumVertices int32
}

// Size returns the number of distinct edges named by the delta.
func (d Delta) Size() int {
	return len(d.Changed) + len(d.Inserted) + len(d.Deleted) + len(d.Touched)
}

// Empty reports whether the delta names no edges at all.
func (d Delta) Empty() bool { return d.Size() == 0 }

// Pack returns the canonical packed key for an edge, the key space Delta
// maps are indexed by.
func Pack(u, v int32) uint64 { return pack(u, v) }

// Unpack splits a packed key into its (low, high) endpoints.
func Unpack(p uint64) (u, v int32) { return unpack(p) }

// TrackDeltas enables (or disables) delta accumulation. Disabled graphs pay
// nothing per update; enabling starts an empty window. The live applier
// enables tracking once at startup — recovery replay runs untracked.
func (dg *Graph) TrackDeltas(on bool) {
	if !on {
		dg.insAcc, dg.delAcc, dg.chAcc, dg.touchAcc = nil, nil, nil, nil
		return
	}
	if dg.insAcc == nil {
		dg.resetAccumulators()
	}
}

// Tracking reports whether delta accumulation is enabled.
func (dg *Graph) Tracking() bool { return dg.insAcc != nil }

func (dg *Graph) resetAccumulators() {
	dg.insAcc = make(map[uint64]struct{})
	dg.delAcc = make(map[uint64]struct{})
	dg.chAcc = make(map[uint64]struct{})
	dg.touchAcc = make(map[uint64]struct{})
}

// Delta reconciles the raw accumulators against the current state and
// returns the net delta for the open window. It does not close the window —
// call ResetDelta once the delta has been durably consumed, so a failed
// consumer retry sees the union of both windows.
func (dg *Graph) Delta() Delta {
	d := Delta{
		Changed:     make(map[uint64]int32, len(dg.chAcc)),
		Inserted:    make(map[uint64]int32, len(dg.insAcc)),
		Deleted:     make(map[uint64]struct{}, len(dg.delAcc)),
		Touched:     make(map[uint64]struct{}, len(dg.touchAcc)),
		NumVertices: dg.NumVertices(),
	}
	for k := range dg.insAcc {
		d.Inserted[k] = dg.tau[k]
	}
	for k := range dg.delAcc {
		d.Deleted[k] = struct{}{}
	}
	for k := range dg.chAcc {
		if _, ins := dg.insAcc[k]; ins {
			continue // an insert's own fixpoint commit, already in Inserted
		}
		if t, ok := dg.tau[k]; ok {
			d.Changed[k] = t
		}
		// else: changed then deleted — Deleted already covers it.
	}
	for k := range dg.touchAcc {
		if _, ok := dg.tau[k]; !ok {
			continue // partner itself deleted later in the window
		}
		if _, ins := dg.insAcc[k]; ins {
			continue
		}
		if _, ch := d.Changed[k]; ch {
			continue
		}
		d.Touched[k] = struct{}{}
	}
	return d
}

// ResetDelta closes the current window, discarding the accumulators. No-op
// when tracking is disabled.
func (dg *Graph) ResetDelta() {
	if dg.insAcc != nil {
		dg.resetAccumulators()
	}
}

// TauSnapshot returns a copy of the edge→trussness mapping (packed keys).
// It is an O(m) map copy kept for tests and differential oracles; the live
// applier consumes Delta instead, whose cost scales with the batch.
func (dg *Graph) TauSnapshot() map[uint64]int32 {
	out := make(map[uint64]int32, len(dg.tau))
	for k, v := range dg.tau {
		out[k] = v
	}
	return out
}
