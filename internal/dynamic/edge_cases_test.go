package dynamic

import (
	"testing"

	"equitruss/internal/gen"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// cliqueDyn returns a dynamic n-clique with exact trussness, for tests that
// mutate from a known starting state.
func cliqueDyn(t *testing.T, n int32) *Graph {
	t.Helper()
	g := gen.Clique(n)
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	return FromStatic(g, tau)
}

// TestDeleteNonexistentEdge pins the delete-miss contract: deleting an edge
// that was never inserted (or whose endpoints do not even exist) returns
// false and leaves every trussness value untouched.
func TestDeleteNonexistentEdge(t *testing.T) {
	dg := cliqueDyn(t, 5)
	before := dg.TauSnapshot()
	for _, e := range [][2]int32{
		{0, 0},     // self "edge" was never representable
		{0, 7},     // endpoint beyond the vertex range
		{100, 200}, // both endpoints unknown
	} {
		if dg.DeleteEdge(e[0], e[1]) {
			t.Fatalf("DeleteEdge(%d,%d) deleted a nonexistent edge", e[0], e[1])
		}
	}
	// Delete a real edge, then delete it again: second attempt must miss.
	if !dg.DeleteEdge(1, 2) {
		t.Fatal("deleting a real edge failed")
	}
	if dg.DeleteEdge(1, 2) {
		t.Fatal("double delete reported success")
	}
	if dg.DeleteEdge(2, 1) {
		t.Fatal("double delete (reversed endpoints) reported success")
	}
	assertExact(t, dg, "after delete misses")
	after := dg.TauSnapshot()
	if len(after) != len(before)-1 {
		t.Fatalf("edge count %d, want %d", len(after), len(before)-1)
	}
}

// TestDuplicateInsertsInBatch pins the batch-replay semantics the WAL
// applier and recovery rely on: inserting the same edge repeatedly inside
// one batch is idempotent — first insert wins, the rest are no-ops — so a
// log with redundant records replays to the same state.
func TestDuplicateInsertsInBatch(t *testing.T) {
	dg := cliqueDyn(t, 4)
	batch := [][2]int32{{4, 0}, {4, 1}, {4, 0}, {4, 1}, {4, 2}, {4, 0}}
	inserted := 0
	for _, e := range batch {
		ok, err := dg.InsertEdge(e[0], e[1])
		if err != nil {
			t.Fatalf("insert (%d,%d): %v", e[0], e[1], err)
		}
		if ok {
			inserted++
		}
	}
	if inserted != 3 {
		t.Fatalf("%d effective inserts, want 3 (duplicates must be no-ops)", inserted)
	}
	assertExact(t, dg, "after duplicate-heavy batch")

	// Reference: the same logical batch without duplicates.
	ref := cliqueDyn(t, 4)
	for _, e := range [][2]int32{{4, 0}, {4, 1}, {4, 2}} {
		if _, err := ref.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	want, got := ref.TauSnapshot(), dg.TauSnapshot()
	if len(want) != len(got) {
		t.Fatalf("edge counts differ: %d vs %d", len(got), len(want))
	}
	for key, w := range want {
		if got[key] != w {
			u, v := unpack(key)
			t.Fatalf("τ(%d,%d) = %d, deduped reference %d", u, v, got[key], w)
		}
	}
}

// TestInsertThenDeleteSameEdgeInBatch pins ordered batch semantics: ops in
// one batch apply strictly in order, so insert-then-delete of the same edge
// nets out to no edge, and delete-then-insert nets out to the edge present
// — each with exact trussness either way.
func TestInsertThenDeleteSameEdgeInBatch(t *testing.T) {
	dg := cliqueDyn(t, 5)
	before := dg.TauSnapshot()

	// insert (5,0) then delete it: net no-op.
	if ok, err := dg.InsertEdge(5, 0); !ok || err != nil {
		t.Fatalf("insert: %v %v", ok, err)
	}
	if !dg.DeleteEdge(5, 0) {
		t.Fatal("delete of just-inserted edge failed")
	}
	assertExact(t, dg, "insert+delete same edge")
	after := dg.TauSnapshot()
	if len(after) != len(before) {
		t.Fatalf("edge count changed: %d -> %d", len(before), len(after))
	}
	for key, w := range before {
		if after[key] != w {
			u, v := unpack(key)
			t.Fatalf("τ(%d,%d) drifted: %d -> %d", u, v, w, after[key])
		}
	}

	// delete (0,1) then reinsert it: trussness must return to the clique
	// value (exactness through the dip, not just at the end).
	if !dg.DeleteEdge(0, 1) {
		t.Fatal("delete (0,1) failed")
	}
	assertExact(t, dg, "after delete half of the pair")
	if ok, err := dg.InsertEdge(0, 1); !ok || err != nil {
		t.Fatalf("reinsert: %v %v", ok, err)
	}
	assertExact(t, dg, "after reinsert")
	if tau, ok := dg.Trussness(0, 1); !ok || tau != 5 {
		t.Fatalf("τ(0,1) after reinsert = %d (ok=%v), want 5", tau, ok)
	}
}
