package dynamic

import (
	"math/rand"
	"testing"

	"equitruss/internal/gen"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// TestBatchChurnOnSurrogatesMatchesOracle drives random insert/delete
// batches on small instances of the paper's dataset surrogates and compares
// TauSnapshot against a full static recompute after every batch — the
// lowerToFixpoint/pending interplay checked against the oracle on graphs
// with realistic community structure and skew, not just the hand-built
// shapes of the other churn tests.
func TestBatchChurnOnSurrogatesMatchesOracle(t *testing.T) {
	surrogates := []struct {
		name   string
		factor float64
	}{
		{"amazon-sim", 0.01},
		{"dblp-sim", 0.01},
		{"youtube-sim", 0.01}, // clamps to the generator's minimum RMAT scale
	}
	const (
		batches   = 4
		batchSize = 12
	)
	for _, s := range surrogates {
		g, err := gen.Dataset(s.name, s.factor)
		if err != nil {
			t.Fatal(err)
		}
		if testing.Short() && g.NumEdges() > 3000 {
			t.Skipf("%s too large for -short", s.name)
		}
		sup := triangle.Supports(g, 1)
		tau, _ := truss.DecomposeSerial(g, sup)
		dg := FromStatic(g, tau)
		assertExact(t, dg, s.name+" import")
		rnd := rand.New(rand.NewSource(int64(len(s.name))))
		n := int(g.NumVertices())
		for b := 0; b < batches; b++ {
			for op := 0; op < batchSize; op++ {
				u := int32(rnd.Intn(n))
				v := int32(rnd.Intn(n))
				if u == v {
					continue
				}
				if dg.HasEdge(u, v) {
					dg.DeleteEdge(u, v)
				} else if _, err := dg.InsertEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
			assertExact(t, dg, s.name)
		}
	}
}
