package dynamic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// oracleTau recomputes trussness from scratch for the dynamic graph's
// current edge set.
func oracleTau(t testing.TB, dg *Graph) map[uint64]int32 {
	t.Helper()
	g, _, err := dg.ToStatic()
	if err != nil {
		t.Fatal(err)
	}
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	out := make(map[uint64]int32)
	for eid, e := range g.Edges() {
		out[pack(e.U, e.V)] = tau[eid]
	}
	return out
}

func assertExact(t testing.TB, dg *Graph, context string) {
	t.Helper()
	want := oracleTau(t, dg)
	got := dg.TauSnapshot()
	if len(got) != len(want) {
		t.Fatalf("%s: %d edges tracked, oracle has %d", context, len(got), len(want))
	}
	for key, w := range want {
		if got[key] != w {
			u, v := unpack(key)
			t.Fatalf("%s: τ(%d,%d) = %d, oracle %d", context, u, v, got[key], w)
		}
	}
}

func TestInsertBuildUpClique(t *testing.T) {
	// Growing K6 edge by edge: trussness must track exactly at each step.
	dg := New(6)
	for u := int32(0); u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			ok, err := dg.InsertEdge(u, v)
			if err != nil || !ok {
				t.Fatalf("insert (%d,%d): %v %v", u, v, ok, err)
			}
			assertExact(t, dg, "grow clique")
		}
	}
	if tau, _ := dg.Trussness(0, 1); tau != 6 {
		t.Fatalf("final clique τ = %d, want 6", tau)
	}
}

func TestDeleteTearDownClique(t *testing.T) {
	g := gen.Clique(6)
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	dg := FromStatic(g, tau)
	for _, e := range g.Edges() {
		if !dg.DeleteEdge(e.U, e.V) {
			t.Fatalf("delete (%d,%d) failed", e.U, e.V)
		}
		assertExact(t, dg, "tear down clique")
	}
	if dg.NumEdges() != 0 {
		t.Fatalf("edges left: %d", dg.NumEdges())
	}
}

func TestInsertDuplicateAndErrors(t *testing.T) {
	dg := New(3)
	if ok, err := dg.InsertEdge(0, 1); !ok || err != nil {
		t.Fatal("first insert failed")
	}
	if ok, err := dg.InsertEdge(1, 0); ok || err != nil {
		t.Fatal("duplicate insert not detected")
	}
	if _, err := dg.InsertEdge(2, 2); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := dg.InsertEdge(-1, 2); err == nil {
		t.Fatal("negative vertex accepted")
	}
	if dg.DeleteEdge(0, 2) {
		t.Fatal("deleted a missing edge")
	}
	if dg.NumEdges() != 1 {
		t.Fatalf("edges = %d", dg.NumEdges())
	}
}

func TestVertexGrowth(t *testing.T) {
	dg := New(0)
	if ok, err := dg.InsertEdge(5, 9); !ok || err != nil {
		t.Fatal("insert beyond capacity failed")
	}
	if dg.NumVertices() != 10 {
		t.Fatalf("vertices = %d, want 10", dg.NumVertices())
	}
	if tau, ok := dg.Trussness(9, 5); !ok || tau != 2 {
		t.Fatalf("τ = %d, %v", tau, ok)
	}
}

// TestRandomChurnMatchesOracle is the main property test: apply a random
// interleaving of insertions and deletions to a random graph and require
// exact trussness after every single operation.
func TestRandomChurnMatchesOracle(t *testing.T) {
	check := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := int32(14)
		dg := New(n)
		// Start from a random static graph.
		var edges []graph.Edge
		for u := int32(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rnd.Float64() < 0.25 {
					edges = append(edges, graph.Edge{U: u, V: v})
				}
			}
		}
		g, err := graph.FromEdgeList(edges, n)
		if err != nil {
			return false
		}
		sup := triangle.Supports(g, 1)
		tau, _ := truss.DecomposeSerial(g, sup)
		dg = FromStatic(g, tau)
		for op := 0; op < 40; op++ {
			u := int32(rnd.Intn(int(n)))
			v := int32(rnd.Intn(int(n)))
			if u == v {
				continue
			}
			if dg.HasEdge(u, v) {
				dg.DeleteEdge(u, v)
			} else {
				if _, err := dg.InsertEdge(u, v); err != nil {
					return false
				}
			}
			want := oracleTau(t, dg)
			got := dg.TauSnapshot()
			if len(got) != len(want) {
				return false
			}
			for key, w := range want {
				if got[key] != w {
					uu, vv := unpack(key)
					t.Logf("seed %d op %d: τ(%d,%d)=%d oracle %d", seed, op, uu, vv, got[key], w)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestChurnOnStructuredGraphs drives insert/delete sequences on the shapes
// with interesting trussness structure.
func TestChurnOnStructuredGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"figure3":    gen.PaperFigure3(),
		"sharedEdge": gen.SharedEdgeCliquePair(6, 4),
		"strip":      gen.TriangleStrip(14),
		"bridged":    gen.BridgedCliques(4),
	}
	for name, g := range graphs {
		sup := triangle.Supports(g, 1)
		tau, _ := truss.DecomposeSerial(g, sup)
		dg := FromStatic(g, tau)
		assertExact(t, dg, name+" import")
		rnd := rand.New(rand.NewSource(99))
		n := int(g.NumVertices())
		for op := 0; op < 25; op++ {
			u := int32(rnd.Intn(n))
			v := int32(rnd.Intn(n))
			if u == v {
				continue
			}
			if dg.HasEdge(u, v) {
				dg.DeleteEdge(u, v)
			} else if _, err := dg.InsertEdge(u, v); err != nil {
				t.Fatal(err)
			}
			assertExact(t, dg, name)
		}
	}
}

// TestInsertTriangleClosesSupernode: the end-to-end dynamic story — insert
// the closing edge of a triangle and rebuild the index from ToStatic.
func TestInsertTriangleClosesSupernode(t *testing.T) {
	dg := New(3)
	dg.InsertEdge(0, 1)
	dg.InsertEdge(1, 2)
	for _, pairTau := range []struct{ u, v int32 }{{0, 1}, {1, 2}} {
		if tau, _ := dg.Trussness(pairTau.u, pairTau.v); tau != 2 {
			t.Fatalf("pre-close τ = %d", tau)
		}
	}
	dg.InsertEdge(0, 2)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}} {
		if tau, _ := dg.Trussness(e[0], e[1]); tau != 3 {
			t.Fatalf("post-close τ(%v) = %d, want 3", e, tau)
		}
	}
	g, tau, err := dg.ToStatic()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || tau[0] != 3 {
		t.Fatalf("static export: %v %v", g, tau)
	}
}

// TestDeletionCascade: removing one clique edge must drop the whole
// clique's trussness by one (cascading recheck), exactly.
func TestDeletionCascade(t *testing.T) {
	g := gen.Clique(7)
	sup := triangle.Supports(g, 1)
	tau, _ := truss.DecomposeSerial(g, sup)
	dg := FromStatic(g, tau)
	dg.DeleteEdge(0, 1)
	// K7 minus an edge: edges not touching {0,1} keep ... oracle decides.
	assertExact(t, dg, "K7 minus edge")
	if got, _ := dg.Trussness(2, 3); got != 6 {
		t.Fatalf("τ(2,3) = %d, want 6 (K7 minus one edge is a 6-truss)", got)
	}
}

// TestInsertionUpperBoundTightness: a case where the new edge's h-index
// bound overshoots and the lowering pass must pull it back down.
func TestInsertionUpperBoundTightness(t *testing.T) {
	// Star of triangles: edges (0,i),(0,i+1),(i,i+1) — inserting a chord
	// far away cannot raise anything; inserting (1,3) creates exactly one
	// new triangle through 0 and 2.
	dg := New(8)
	for i := int32(1); i < 7; i++ {
		dg.InsertEdge(0, i)
	}
	for i := int32(1); i < 6; i++ {
		dg.InsertEdge(i, i+1)
	}
	assertExact(t, dg, "fan")
	dg.InsertEdge(1, 3)
	assertExact(t, dg, "fan + chord")
}
