// Package equitruss is a parallel implementation of EquiTruss — a summary-
// graph index over the edges of an undirected graph that makes k-truss-
// based local (overlapping, goal-oriented) community search fast — as
// described in "Fast Parallel Index Construction for Efficient K-truss-
// based Local Community Detection in Large Graphs" (Faysal, Bremer, Chan,
// Shalf, Arifuzzaman; ICPP 2023).
//
// The library covers the full pipeline: per-edge triangle support,
// k-truss decomposition, EquiTruss index construction in four variants
// (the original sequential Algorithm, parallel Shiloach–Vishkin Baseline,
// cache-optimized C-Optimal, and sampling-based Afforest), and indexed
// community queries.
//
// Quick start:
//
//	g, _ := equitruss.LoadEdgeList("graph.txt")
//	idx, _ := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.Afforest})
//	for _, c := range idx.Communities(42, 4) {        // communities of vertex 42 at k=4
//	    fmt.Println(c.Vertices())
//	}
package equitruss

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"time"

	"equitruss/internal/community"
	"equitruss/internal/core"
	"equitruss/internal/dynamic"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/graphio"
	"equitruss/internal/metrics"
	"equitruss/internal/mmapio"
	"equitruss/internal/obs"
	"equitruss/internal/server"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// Graph is a simple undirected graph in CSR form (see internal/graph for
// the full method set: Neighbors, Degree, EdgeID, ...).
type Graph = graph.Graph

// Edge is a canonical undirected edge with U < V.
type Edge = graph.Edge

// SummaryGraph is the EquiTruss supergraph: supernodes of truss-equivalent
// edges linked by superedges.
type SummaryGraph = core.SummaryGraph

// Community is one k-truss community returned by a query.
type Community = community.Community

// Timings records per-kernel wall times of an index build.
type Timings = core.Timings

// Variant selects the index-construction implementation.
type Variant = core.Variant

// The four implementations from the paper's Table 2.
const (
	Serial   = core.VariantSerial   // Original EquiTruss (Algorithm 1)
	Baseline = core.VariantBaseline // parallel SV, hash-map dictionaries
	COptimal = core.VariantCOptimal // parallel SV, contiguous CSR-aligned storage
	Afforest = core.VariantAfforest // sampling-based CC construction
)

// SupportKernel selects the Support-stage (per-edge triangle counting)
// implementation. All kernels produce bit-identical supports; they differ
// only in how much intersection work skewed degree distributions cost.
type SupportKernel = triangle.Kernel

// The Support kernels. The zero value KernelAuto — the default — picks per
// graph: oriented for large skewed graphs, galloping for moderately skewed
// ones, merge otherwise (see docs/ALGORITHMS.md, "Support kernel
// selection").
const (
	KernelAuto      = triangle.KernelAuto      // per-graph skew/size heuristic
	KernelMerge     = triangle.KernelMerge     // per-edge sorted-merge intersection
	KernelGalloping = triangle.KernelGalloping // adaptive binary-probing intersection
	KernelOriented  = triangle.KernelOriented  // degree-oriented compact-forward (O(|E|^1.5))
)

// ParseSupportKernel parses a -support-kernel flag value
// (auto|merge|gallop|oriented).
func ParseSupportKernel(s string) (SupportKernel, error) { return triangle.ParseKernel(s) }

// PeelKernel selects the TrussDecomp-stage (k-truss peeling) implementation.
// All kernels produce bit-identical trussness; they differ in how frontier
// discovery and triangle updates are scheduled.
type PeelKernel = truss.PeelKernel

// The peeling kernels. The zero value PeelAuto — the default — picks per
// instance from the edge count and the peel-level spread: serial for small
// graphs, the scan-free pkt kernel when per-level rescans would dominate,
// level-synchronous otherwise (see docs/ALGORITHMS.md, "Peeling kernels").
const (
	PeelAuto      = truss.PeelAuto      // per-instance size/spread heuristic
	PeelSerial    = truss.PeelSerial    // sequential bucket-queue peeling
	PeelLevelSync = truss.PeelLevelSync // level-synchronous, frontier by full-edge rescan
	PeelPKT       = truss.PeelPKT       // scan-free frontiers + lazy adjacency compaction
)

// ParsePeelKernel parses a -peel-kernel flag value
// (auto|serial|levelsync|pkt).
func ParsePeelKernel(s string) (PeelKernel, error) { return truss.ParsePeelKernel(s) }

// Tracer collects pipeline and per-thread spans during a build. A nil
// *Tracer disables tracing at zero cost — the instrumented kernels never
// read the clock or allocate. Pass one via Options.Tracer, then export with
// WriteTrace (Chrome trace-event JSON) or WriteMetrics (Prometheus text).
type Tracer = obs.Trace

// NewTracer returns an enabled span collector for Options.Tracer.
func NewTracer() *Tracer { return obs.NewTrace() }

// BuildReport aggregates a build's spans and counters into per-kernel wall
// times, per-thread busy times, and load-imbalance ratios (max/mean thread
// busy time per kernel).
type BuildReport = obs.Report

// Options configures BuildIndex.
type Options struct {
	// Variant selects the construction algorithm. The zero value is
	// Serial; use Afforest for the fastest build.
	Variant Variant
	// Threads caps the parallelism; <= 0 uses all cores. Ignored by the
	// Serial variant.
	Threads int
	// SerialTruss forces the sequential peeling decomposition even for
	// parallel variants (the parallel peeling is the default for them).
	SerialTruss bool
	// SupportKernel selects the Support-stage kernel. The zero value is
	// KernelAuto: oriented compact-forward on large skewed graphs,
	// galloping on moderately skewed ones, plain merge otherwise. All
	// kernels produce bit-identical supports.
	SupportKernel SupportKernel
	// PeelKernel selects the TrussDecomp-stage kernel. The zero value is
	// PeelAuto: serial for small graphs, scan-free pkt when the
	// level-synchronous kernel's per-level rescans would dominate,
	// levelsync otherwise. All kernels produce bit-identical trussness.
	// The Serial variant and SerialTruss force the serial kernel.
	PeelKernel PeelKernel
	// Tracer, when non-nil, records one pipeline span per kernel and
	// per-thread spans inside every parallel kernel. Nil disables tracing
	// with no overhead.
	Tracer *Tracer
	// Context, when non-nil, cancels the build: every pipeline kernel
	// checks it at scheduler-barrier granularity (parallel kernels) or
	// every few thousand operations (serial kernels), so BuildIndex and
	// BuildSummary return ctx.Err() in bounded time with every worker
	// goroutine joined and no partial index escaping. Nil means
	// non-cancelable, with no overhead on the hot paths.
	Context context.Context
	// PrecomputeHierarchy builds the k-level community hierarchy eagerly as
	// part of BuildIndex (parallel, using the same Threads/Context/Tracer),
	// so the first community query pays no lazy-build latency. When false,
	// the hierarchy is still built — lazily, on the first query that needs
	// it.
	PrecomputeHierarchy bool
}

// Index is the query-ready EquiTruss index: the summary graph plus the
// vertex→supernode seed mapping, with the build's kernel timings attached.
type Index struct {
	*community.Index
	Timings Timings
	// Trace is the tracer the index was built with (nil when none was set).
	Trace *Tracer
}

// BuildReport aggregates the build's trace and the process counter
// registry into per-kernel statistics. When the build ran without a
// tracer, a pipeline-only trace is synthesized from Timings, so wall times
// are present but per-thread rows and imbalance ratios are not.
func (ix *Index) BuildReport() *BuildReport {
	tr := ix.Trace
	if tr == nil {
		tr = obs.NewTrace()
		ix.Timings.EmitSpans(tr)
	}
	return obs.NewReport(tr, obs.DefaultRegistry())
}

// TraceReport aggregates a tracer's spans and the process counter registry
// into a BuildReport, for builds driven through BuildSummary (which returns
// no Index to call BuildReport on).
func TraceReport(tr *Tracer) *BuildReport {
	return obs.NewReport(tr, obs.DefaultRegistry())
}

// CounterValue is one named counter's value in a registry snapshot.
type CounterValue = obs.CounterValue

// Counters snapshots the process-wide counter registry (sorted by name).
func Counters() []CounterValue { return obs.DefaultRegistry().Snapshot() }

// ResetCounters zeroes every registered counter — call between runs when
// per-run counter deltas are wanted (e.g. benchmark harnesses).
func ResetCounters() { obs.DefaultRegistry().Reset() }

// WriteTrace writes the tracer's spans as Chrome trace-event JSON, loadable
// in chrome://tracing or Perfetto.
func WriteTrace(w io.Writer, tr *Tracer) error { return obs.WriteChromeTrace(w, tr) }

// WriteMetrics writes the process counter registry and the tracer's
// per-kernel aggregates (tr may be nil for counters only) in Prometheus
// text exposition format.
func WriteMetrics(w io.Writer, tr *Tracer) error {
	return obs.WritePrometheus(w, obs.DefaultRegistry(), tr)
}

// NewGraph builds a graph from an edge list. Self-loops and duplicate
// edges are removed; numVertices <= 0 infers the vertex count.
func NewGraph(edges []Edge, numVertices int32) (*Graph, error) {
	return graph.FromEdgeList(edges, numVertices)
}

// LoadEdgeList reads a SNAP-style whitespace-separated edge-list file.
func LoadEdgeList(path string) (*Graph, error) {
	return graphio.ReadEdgeListFile(path)
}

// ReadEdgeList parses SNAP-style edge-list text from a reader.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	return graphio.ReadEdgeList(r)
}

// GenerateDataset materializes one of the built-in synthetic surrogates of
// the paper's datasets ("amazon-sim", "dblp-sim", "youtube-sim",
// "livejournal-sim", "orkut-sim", "friendster-sim") at the given size
// factor (1.0 = default size).
func GenerateDataset(name string, sizeFactor float64) (*Graph, error) {
	return gen.Dataset(name, sizeFactor)
}

// GenerateRMAT generates a Graph500-style R-MAT graph with 2^scale
// vertices and about edgeFactor·2^scale edges.
func GenerateRMAT(scale, edgeFactor int, seed uint64) *Graph {
	return gen.RMAT(scale, edgeFactor, 0.57, 0.19, 0.19, seed)
}

// Supports returns the per-edge triangle counts (Definition 2), computed
// with the auto-selected kernel. Use SupportsWithKernel to force one.
func Supports(g *Graph, threads int) []int32 {
	return triangle.SupportsKernel(g, triangle.KernelAuto, threads)
}

// SupportsWithKernel returns the per-edge triangle counts computed with the
// selected kernel (KernelAuto resolves per graph).
func SupportsWithKernel(g *Graph, k SupportKernel, threads int) []int32 {
	return triangle.SupportsKernel(g, k, threads)
}

// Trussness runs support computation and k-truss decomposition with the
// auto-selected kernels, returning τ(e) for every edge ID (Definition 4).
// threads <= 0 uses all cores. Use TrussnessWithKernels to force kernels.
func Trussness(g *Graph, threads int) []int32 {
	return TrussnessWithKernels(g, KernelAuto, PeelAuto, threads)
}

// TrussnessWithKernels is Trussness with explicit Support and TrussDecomp
// kernel selections (the auto values resolve per instance).
func TrussnessWithKernels(g *Graph, sk SupportKernel, pk PeelKernel, threads int) []int32 {
	sup := triangle.SupportsKernel(g, sk, threads)
	tau, _ := truss.DecomposeKernel(g, sup, pk, threads)
	return tau
}

// BuildIndex runs the full pipeline — Support, TrussDecomp, and the five
// index-construction kernels of the selected variant — and returns the
// query-ready index with its kernel timings.
func BuildIndex(g *Graph, opt Options) (*Index, error) {
	if g == nil {
		return nil, fmt.Errorf("equitruss: nil graph")
	}
	sg, tm, err := buildSummary(g, opt)
	if err != nil {
		return nil, err
	}
	ix := &Index{Index: community.NewIndex(g, sg), Timings: tm, Trace: opt.Tracer}
	if opt.PrecomputeHierarchy {
		ctx := opt.Context
		if ctx == nil {
			ctx = context.Background()
		}
		if _, err := ix.PrepareHierarchy(ctx, opt.Threads, opt.Tracer); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// NewIndexFromSummary attaches an already-built summary graph to its graph
// as a query-ready Index — the hook for callers that ran BuildSummary (or
// deserialized a summary) and now want the query APIs, including the
// community hierarchy.
func NewIndexFromSummary(g *Graph, sg *SummaryGraph) *Index {
	return &Index{Index: community.NewIndex(g, sg)}
}

// Hierarchy is the precomputed k-level community merge forest of an index
// (see internal/community.Hierarchy).
type Hierarchy = community.Hierarchy

// HierarchyStats summarizes a built hierarchy (node and root counts, kmax,
// forest depth, level-index size).
type HierarchyStats = community.HierarchyStats

// CommunityRef is a compact reference to one community: O(1) edge/vertex
// counts, lazy edge materialization.
type CommunityRef = community.Ref

// BuildSummary runs the same pipeline but returns only the summary graph
// and timings, without materializing the vertex→supernode query index —
// what the paper's timing experiments measure.
func BuildSummary(g *Graph, opt Options) (*SummaryGraph, Timings, error) {
	return buildSummary(g, opt)
}

func buildSummary(g *Graph, opt Options) (*SummaryGraph, Timings, error) {
	if g == nil {
		return nil, Timings{}, fmt.Errorf("equitruss: nil graph")
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	threads := opt.Threads
	if opt.Variant == Serial {
		threads = 1
	}
	tr := opt.Tracer
	span := tr.Start("Support")
	start := time.Now()
	sup, err := triangle.SupportsKernelCtx(ctx, g, opt.SupportKernel, threads, tr)
	supportTime := time.Since(start)
	span.End()
	if err != nil {
		return nil, Timings{}, err
	}

	span = tr.Start("TrussDecomp")
	start = time.Now()
	peel := opt.PeelKernel
	if opt.Variant == Serial || opt.SerialTruss {
		peel = truss.PeelSerial
	}
	tau, _, err := truss.DecomposeKernelCtx(ctx, g, sup, peel, threads, tr)
	trussTime := time.Since(start)
	span.End()
	if err != nil {
		return nil, Timings{}, err
	}

	sg, tm, err := core.BuildCtx(ctx, g, tau, opt.Variant, threads, tr)
	if err != nil {
		return nil, Timings{}, err
	}
	tm.Support = supportTime
	tm.TrussDecomp = trussTime
	return sg, tm, nil
}

// Stats summarizes a built index (sizes, trussness histogram, largest
// supernode).
type Stats = core.Stats

// Query is one (vertex, k) community lookup for Index.BatchCommunities.
type Query = community.Query

// MaximalKTruss materializes the maximal k-truss subgraph given a
// trussness array from Trussness (vertex IDs preserved).
func MaximalKTruss(g *Graph, tau []int32, k int32) (*Graph, error) {
	return truss.MaximalKTruss(g, tau, k)
}

// TrussnessHistogram returns edge counts per trussness value.
func TrussnessHistogram(tau []int32) map[int32]int64 {
	return truss.TrussnessHistogram(tau)
}

// DirectCommunities answers a community query with no index (from-scratch
// BFS over the k-truss) — the comparison point that motivates building the
// index at all.
func DirectCommunities(g *Graph, tau []int32, v, k int32) []*Community {
	return community.DirectCommunities(g, tau, v, k)
}

// CommunityMetrics bundles cohesion statistics of a community (density,
// conductance, minimum internal degree, clustering).
type CommunityMetrics = metrics.Report

// EvaluateCommunity computes cohesion metrics for a community against its
// host graph.
func EvaluateCommunity(g *Graph, c *Community) CommunityMetrics {
	return metrics.Evaluate(g, c.Vertices())
}

// DynamicGraph is a mutable graph whose per-edge trussness is maintained
// exactly under single-edge insertions and deletions (see internal/dynamic
// for the fixpoint argument). Use ToStatic + BuildIndex to refresh the
// community index after a batch of updates without re-running the two most
// expensive kernels from scratch on query-side state.
type DynamicGraph = dynamic.Graph

// NewDynamicGraph returns an empty dynamic graph with capacity for n
// vertices (grown automatically).
func NewDynamicGraph(n int32) *DynamicGraph { return dynamic.New(n) }

// NewDynamicFromGraph imports a static graph, computing its decomposition.
func NewDynamicFromGraph(g *Graph, threads int) *DynamicGraph {
	return dynamic.FromStatic(g, Trussness(g, threads))
}

// IndexFormat selects an on-disk index layout for SaveIndexFormat.
type IndexFormat = graphio.IndexFormat

// The index layouts. FormatV2 is the checksummed sequential stream; FormatV3
// is the flat 64-byte-aligned layout that supports zero-copy memory-mapped
// loading (see docs/ALGORITHMS.md, "Index layout v3"). Readers auto-detect
// either.
const (
	FormatV2 = graphio.FormatV2
	FormatV3 = graphio.FormatV3
)

// ParseIndexFormat parses a -format flag value (v2|v3).
func ParseIndexFormat(s string) (IndexFormat, error) { return graphio.ParseIndexFormat(s) }

// VerifyMode selects when a memory-mapped index load verifies section
// checksums: eagerly before serving, or lazily in the background.
type VerifyMode = graphio.VerifyMode

// The verification modes for OpenIndexFile.
const (
	VerifyEager = graphio.VerifyEager // verify all checksums before returning
	VerifyLazy  = graphio.VerifyLazy  // structural validation now, checksums in background
)

// ParseVerifyMode parses a -verify flag value (eager|lazy).
func ParseVerifyMode(s string) (VerifyMode, error) { return graphio.ParseVerifyMode(s) }

// SaveIndex writes a summary graph as a v2 binary index stream. Use
// SaveIndexFormat to select the mmap-ready v3 layout.
func SaveIndex(w io.Writer, sg *SummaryGraph) error {
	return graphio.WriteBinaryIndex(w, sg)
}

// SaveIndexFormat writes a summary graph in the selected index layout.
func SaveIndexFormat(w io.Writer, sg *SummaryGraph, f IndexFormat) error {
	return graphio.WriteBinaryIndexFormat(w, sg, f)
}

// LoadIndex reads a summary graph written by SaveIndex and attaches it to
// its graph as a query-ready Index. ReadBinaryIndex validates every ID
// range and CSR offset in the stream, so a corrupt or mismatched index is
// rejected here with a descriptive error instead of panicking at query
// time.
func LoadIndex(r io.Reader, g *Graph) (*Index, error) {
	sg, err := graphio.ReadBinaryIndex(r)
	if err != nil {
		return nil, err
	}
	if len(sg.Tau) != int(g.NumEdges()) {
		return nil, fmt.Errorf("equitruss: index built for %d edges, graph has %d", len(sg.Tau), g.NumEdges())
	}
	return &Index{Index: community.NewIndex(g, sg)}, nil
}

// SaveIndexFile writes a summary graph to path crash-safely: the
// checksummed stream goes to a same-directory temp file that is fsynced and
// atomically renamed into place, so a crash mid-save leaves either the old
// index or the new one, never a torn file. The default layout is v3 (flat,
// 64-byte-aligned, mmap-loadable); use SaveIndexFileFormat for v2.
func SaveIndexFile(path string, sg *SummaryGraph) error {
	return graphio.WriteBinaryIndexFileFormat(path, sg, graphio.FormatV3)
}

// SaveIndexFileFormat is SaveIndexFile with an explicit layout selection.
func SaveIndexFileFormat(path string, sg *SummaryGraph, f IndexFormat) error {
	return graphio.WriteBinaryIndexFileFormat(path, sg, f)
}

// LoadStats reports how an index file was loaded.
type LoadStats struct {
	// Seconds is the wall time from open through validation (and, for
	// VerifyEager, checksum verification) until the index was query-ready.
	Seconds float64
	// MmapBytes is the mapped file size when the zero-copy path was taken,
	// 0 when the file was decoded onto the heap.
	MmapBytes int64
	// Format is the on-disk layout the file was detected to be.
	Format IndexFormat
}

// LoadIndexFile reads an index file written by SaveIndexFile (any layout:
// v1, v2, or v3) and attaches it to its graph as a query-ready Index. Files
// are checksum-verified: any single flipped byte on disk is rejected.
func LoadIndexFile(path string, g *Graph) (*Index, error) {
	ix, _, err := OpenIndexFile(path, g, VerifyEager)
	return ix, err
}

// OpenIndexFile loads an index file by the fastest safe path its layout
// permits and reports how. A v3 file on a little-endian host is memory-
// mapped: the seven index arrays alias the page cache directly, the
// vertex→supernode seed sets are computed on demand, and cold-start cost is
// page-fault-driven — milliseconds for multi-hundred-MB indexes — instead
// of a full decode plus an O(Σ deg) seed pass. verify selects eager
// (checksums before returning) or lazy (structural validation now, CRC
// sweep in the background) verification for that path. Other layouts (or a
// big-endian host) take the portable decode path, where verify is ignored
// and checksums are always checked inline.
func OpenIndexFile(path string, g *Graph, verify VerifyMode) (*Index, LoadStats, error) {
	start := time.Now()
	format, err := graphio.SniffIndexFormat(path)
	if err != nil {
		return nil, LoadStats{}, err
	}
	stats := LoadStats{Format: format}
	if format == FormatV3 && mmapio.HostLittleEndian {
		sg, m, err := graphio.MapIndexFile(path, verify)
		if err != nil {
			return nil, LoadStats{}, err
		}
		if len(sg.Tau) != int(g.NumEdges()) {
			n := len(sg.Tau)
			m.Unmap()
			return nil, LoadStats{}, fmt.Errorf("equitruss: index built for %d edges, graph has %d", n, g.NumEdges())
		}
		stats.MmapBytes = int64(m.Len())
		stats.Seconds = time.Since(start).Seconds()
		return &Index{Index: community.NewIndexDeferred(g, sg)}, stats, nil
	}
	sg, err := graphio.ReadBinaryIndexFile(path)
	if err != nil {
		return nil, LoadStats{}, err
	}
	if len(sg.Tau) != int(g.NumEdges()) {
		return nil, LoadStats{}, fmt.Errorf("equitruss: index built for %d edges, graph has %d", len(sg.Tau), g.NumEdges())
	}
	ix := &Index{Index: community.NewIndex(g, sg)}
	stats.Seconds = time.Since(start).Seconds()
	return ix, stats, nil
}

// ServeOptions configures Serve and NewHandler.
type ServeOptions struct {
	// Addr is the listen address for Serve; empty means ":8080".
	Addr string
	// CacheSize is the LRU result-cache capacity in entries; 0 selects the
	// default (4096), negative disables caching.
	CacheSize int
	// Workers caps the goroutines concurrently executing queries across all
	// in-flight requests; <= 0 selects one per usable CPU.
	Workers int
	// MaxBatch caps the queries accepted by one POST /batch request; <= 0
	// selects the default (10000).
	MaxBatch int
	// MaxInFlight caps concurrently admitted /community and /batch
	// requests; excess requests are shed with 429 + Retry-After instead of
	// queueing. 0 selects the default (256), negative disables the limit.
	MaxInFlight int
	// RequestTimeout bounds each query request; past the deadline the
	// batch fan-out aborts with 503. <= 0 means no server-imposed deadline.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: after the context ends,
	// in-flight requests get this long to finish; <= 0 selects 10s.
	DrainTimeout time.Duration
	// Tracer, when non-nil, records one latency span per request. Spans
	// accumulate unbounded — diagnostic runs only.
	Tracer *Tracer
	// TraceSampleN records a full stage trace (parse → pool wait → cache →
	// hierarchy query → encode) for one in every TraceSampleN requests,
	// retained for GET /debug/requests. 0 selects the default (64), 1
	// traces every request, negative disables sampling.
	TraceSampleN int
	// SlowThreshold is the latency at or above which a request is retained
	// in /debug/requests even when unsampled. 0 selects the default
	// (250ms), negative disables slow capture.
	SlowThreshold time.Duration
	// DebugRing is the capacity of each /debug/requests trace ring
	// (recent and slow); 0 selects the default (64).
	DebugRing int
	// Logger receives one structured record per request (request_id,
	// vertex, k, status, duration, cache_hit). Nil selects the process-wide
	// default.
	Logger *slog.Logger
	// OnListen, when non-nil, receives the bound address once the listener
	// is up (how callers of Addr ":0" learn the port).
	OnListen func(net.Addr)
	// IndexLoadSeconds, when set, is the wall time the caller's load path
	// spent making the index query-ready (OpenIndexFile reports it in
	// LoadStats). Surfaced on /healthz and /metrics as
	// index_load_seconds.
	IndexLoadSeconds float64
	// MmapBytes, when set, is the mapped index file size from LoadStats —
	// 0 for a heap-decoded index. Surfaced on /healthz and /metrics as
	// mmap_bytes.
	MmapBytes int64
}

// serverConfig maps the public options onto the internal server config.
func (opt ServeOptions) serverConfig() server.Config {
	return server.Config{
		CacheSize:        opt.CacheSize,
		Workers:          opt.Workers,
		MaxBatch:         opt.MaxBatch,
		MaxInFlight:      opt.MaxInFlight,
		RequestTimeout:   opt.RequestTimeout,
		Tracer:           opt.Tracer,
		SampleN:          opt.TraceSampleN,
		SlowThreshold:    opt.SlowThreshold,
		DebugRing:        opt.DebugRing,
		Logger:           opt.Logger,
		IndexLoadSeconds: opt.IndexLoadSeconds,
		MmapBytes:        opt.MmapBytes,
	}
}

// Serve answers community queries from the index over HTTP/JSON until ctx
// is cancelled, then drains in-flight requests and returns. Endpoints:
// GET /community?v=&k=, POST /batch, GET /healthz, GET /metrics (Prometheus
// text, including the LRU cache hit/miss counters). See docs/SERVING.md.
func Serve(ctx context.Context, ix *Index, opt ServeOptions) error {
	if ix == nil {
		return fmt.Errorf("equitruss: nil index")
	}
	addr := opt.Addr
	if addr == "" {
		addr = ":8080"
	}
	s := server.New(ix.Index, opt.serverConfig())
	return s.ListenAndServe(ctx, addr, opt.DrainTimeout, opt.OnListen)
}

// NewHandler returns the community-query HTTP handler over the index, for
// embedding into an existing server or mux (Addr, DrainTimeout, and
// OnListen are ignored).
func NewHandler(ix *Index, opt ServeOptions) http.Handler {
	return server.New(ix.Index, opt.serverConfig()).Handler()
}
