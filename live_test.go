package equitruss_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"equitruss"
	"equitruss/internal/faults"
)

// liveBase is a deterministic base graph for the durability tests.
func liveBase(t *testing.T) *equitruss.Graph {
	t.Helper()
	return equitruss.GenerateRMAT(8, 6, 42)
}

func openLive(t *testing.T, dir string, base *equitruss.Graph, mutate func(*equitruss.LiveOptions)) *equitruss.LiveIndex {
	t.Helper()
	opt := equitruss.LiveOptions{Dir: dir, Threads: 1}
	if mutate != nil {
		mutate(&opt)
	}
	li, err := equitruss.OpenLive(context.Background(), base, opt)
	if err != nil {
		t.Fatal(err)
	}
	return li
}

func liveHandler(t *testing.T, li *equitruss.LiveIndex) *httptest.Server {
	t.Helper()
	h, closeFn, err := equitruss.NewLiveHandler(li, equitruss.ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(closeFn)
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

func livePost(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/update", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	json.NewDecoder(resp.Body).Decode(&doc)
	return resp, doc
}

func liveGet(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	json.NewDecoder(resp.Body).Decode(&doc)
	return resp.StatusCode, doc
}

func liveWaitApplied(t *testing.T, ts *httptest.Server, seq uint64) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, doc := liveGet(t, ts, "/healthz")
		if applied, ok := doc["applied_seq"].(float64); ok && uint64(applied) >= seq {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("applied_seq never reached %d: %v", seq, doc)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLiveRecoveryMatchesStaticRebuild is the end-to-end durability
// contract: serve, mutate, abandon without clean shutdown, recover from
// disk — the recovered state must fingerprint identically to the state the
// live server last served, and to a from-scratch static build over the
// same edge stream.
func TestLiveRecoveryMatchesStaticRebuild(t *testing.T) {
	dir := t.TempDir()
	base := liveBase(t)
	li := openLive(t, dir, base, nil)
	ts := liveHandler(t, li)
	n := int(base.NumVertices())
	const batches = 10
	for i := 0; i < batches; i++ {
		body := fmt.Sprintf(`{"ops":[{"u":%d,"v":%d},{"op":"delete","u":%d,"v":%d}]}`,
			n+i, i%n, (7*i)%n, (11*i+2)%n)
		resp, doc := livePost(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update %d: status %d: %v", i, resp.StatusCode, doc)
		}
	}
	health := liveWaitApplied(t, ts, batches)
	servedSums := health["checksums"].(map[string]any)
	ts.Close()
	// Abandon: no server drain, no WAL close beyond the OS file state —
	// Close here only releases the handle (appends are already fsynced
	// under the default always policy).
	li.Close()

	li2 := openLive(t, dir, base, nil)
	defer li2.Close()
	if li2.Seq != batches {
		t.Fatalf("recovered Seq = %d, want %d", li2.Seq, batches)
	}
	got := li2.Index.Checksums()
	for layer, g := range map[string]uint64{
		"tau": got.Tau, "summary": got.Summary, "hierarchy": got.Hierarchy,
	} {
		if want := servedSums[layer].(string); fmt.Sprintf("%016x", g) != want {
			t.Fatalf("%s checksum after recovery: %016x, served %s", layer, g, want)
		}
	}
	// A recovered server is immediately ready and serves the updated state.
	ts2 := liveHandler(t, li2)
	if code, doc := liveGet(t, ts2, "/readyz"); code != http.StatusOK {
		t.Fatalf("recovered /readyz: %d %v", code, doc)
	}
	if code, doc := liveGet(t, ts2, "/healthz"); code != http.StatusOK {
		t.Fatalf("recovered /healthz: %d %v", code, doc)
	} else if doc["applied_seq"].(float64) != batches {
		t.Fatalf("recovered applied_seq: %v", doc["applied_seq"])
	}
}

// TestLiveCompactionTruncatesWAL: with aggressive compaction the applier
// writes snapshots and truncates the log; recovery then starts from the
// snapshot and still reaches the identical state.
func TestLiveCompactionTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	base := liveBase(t)
	li := openLive(t, dir, base, func(o *equitruss.LiveOptions) { o.CompactEvery = 1 })
	ts := liveHandler(t, li)
	n := int(base.NumVertices())
	const batches = 6
	for i := 0; i < batches; i++ {
		resp, _ := livePost(t, ts, fmt.Sprintf(`{"ops":[{"u":%d,"v":%d}]}`, n+i, i%n))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update %d failed", i)
		}
		liveWaitApplied(t, ts, uint64(i+1))
	}
	health := liveWaitApplied(t, ts, batches)
	servedSums := health["checksums"].(map[string]any)
	// Give the applier a moment to finish the final compaction (it runs
	// after publish).
	deadline := time.Now().Add(5 * time.Second)
	snapPath := filepath.Join(dir, "snapshot.eqs")
	for {
		if _, err := os.Stat(snapPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("compaction never wrote a snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ts.Close()
	li.Close()

	// The log must have been truncated: recovery replays only a suffix.
	li2 := openLive(t, dir, base, nil)
	defer li2.Close()
	if li2.Seq != batches {
		t.Fatalf("recovered Seq = %d, want %d", li2.Seq, batches)
	}
	got := li2.Index.Checksums()
	if fmt.Sprintf("%016x", got.Tau) != servedSums["tau"].(string) {
		t.Fatalf("tau checksum diverged after snapshot-based recovery")
	}

	// Corrupting the snapshot with a compacted WAL must fail recovery loudly
	// (the history needed to rebuild from base is gone).
	li2.Close()
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := equitruss.OpenLive(context.Background(), base, equitruss.LiveOptions{Dir: dir, Threads: 1}); err == nil {
		t.Fatal("recovery with corrupt snapshot and compacted WAL succeeded silently")
	}
}

// TestLiveCompactedDoubleRestartKeepsAckedUpdates is the regression test
// for the WAL sequence floor: compaction drains and truncates the whole
// log, the process restarts, absorbs more acked writes, and restarts
// again. Before the floor was persisted in the WAL header, the
// post-restart writes were renumbered from 1 — below the snapshot's
// sequence — and the second recovery silently dropped them.
func TestLiveCompactedDoubleRestartKeepsAckedUpdates(t *testing.T) {
	dir := t.TempDir()
	base := liveBase(t)
	n := int(base.NumVertices())
	li := openLive(t, dir, base, func(o *equitruss.LiveOptions) { o.CompactEvery = 1 })
	ts := liveHandler(t, li)
	const preBatches = 3
	for i := 0; i < preBatches; i++ {
		resp, _ := livePost(t, ts, fmt.Sprintf(`{"ops":[{"u":%d,"v":%d}]}`, n+i, i%n))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update %d failed: %d", i, resp.StatusCode)
		}
		liveWaitApplied(t, ts, uint64(i+1))
	}
	// Wait until the final compaction has truncated every record away (a
	// record-free log is just the fixed-size header).
	deadline := time.Now().Add(5 * time.Second)
	for li.WAL.Size() > 16 {
		if time.Now().After(deadline) {
			t.Fatalf("WAL never fully compacted: %d bytes", li.WAL.Size())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts.Close()
	li.Close()

	// Restart 1: state intact, and a fresh acked write continues the
	// sequence space instead of restarting it below the snapshot.
	li2 := openLive(t, dir, base, nil)
	if li2.Seq != preBatches {
		t.Fatalf("first recovery Seq = %d, want %d", li2.Seq, preBatches)
	}
	ts2 := liveHandler(t, li2)
	resp, doc := livePost(t, ts2, fmt.Sprintf(`{"ops":[{"u":%d,"v":%d}]}`, n+preBatches, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart update failed: %d %v", resp.StatusCode, doc)
	}
	if got := uint64(doc["seq"].(float64)); got != preBatches+1 {
		t.Fatalf("post-restart update seq = %d, want %d", got, preBatches+1)
	}
	health := liveWaitApplied(t, ts2, preBatches+1)
	servedSums := health["checksums"].(map[string]any)
	ts2.Close()
	li2.Close()

	// Restart 2: the write acked between the restarts must survive.
	li3 := openLive(t, dir, base, nil)
	defer li3.Close()
	if li3.Seq != preBatches+1 {
		t.Fatalf("second recovery Seq = %d, want %d (acked post-restart update dropped)", li3.Seq, preBatches+1)
	}
	got := li3.Index.Checksums()
	for layer, g := range map[string]uint64{
		"tau": got.Tau, "summary": got.Summary, "hierarchy": got.Hierarchy,
	} {
		if want := servedSums[layer].(string); fmt.Sprintf("%016x", g) != want {
			t.Fatalf("%s checksum after double restart: %016x, served %s", layer, g, want)
		}
	}
}

// TestChaosUpdateFaultNoStateChange: an injected error on the update
// admission path (before the WAL append) must fail that request with no
// sequence consumed and no durable record; the next update proceeds.
func TestChaosUpdateFaultNoStateChange(t *testing.T) {
	dir := t.TempDir()
	li := openLive(t, dir, liveBase(t), nil)
	defer li.Close()
	ts := liveHandler(t, li)
	faults.Enable(1)
	defer faults.Disable()
	faults.Set("server.update", faults.Plan{Action: faults.Error, Every: 1, MaxFires: 1})
	resp, _ := livePost(t, ts, `{"ops":[{"u":1,"v":3}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted update: status %d, want 503", resp.StatusCode)
	}
	if li.WAL.LastSeq() != 0 {
		t.Fatalf("faulted update reached the WAL: seq %d", li.WAL.LastSeq())
	}
	resp, doc := livePost(t, ts, `{"ops":[{"u":1,"v":3}]}`)
	if resp.StatusCode != http.StatusOK || doc["seq"].(float64) != 1 {
		t.Fatalf("update after fault: status %d doc %v", resp.StatusCode, doc)
	}
}

// TestChaosWALFsyncDegradesToReadOnly: a failed fsync poisons the log —
// updates turn 503 while queries keep serving from the published epoch, and
// a restart recovers every previously acked record.
func TestChaosWALFsyncDegradesToReadOnly(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	li := openLive(t, dir, liveBase(t), nil)
	// Built by hand (not liveHandler) so the applier can be stopped before
	// the goroutine-leak check — t.Cleanup would run too late.
	h, closeFn, err := equitruss.NewLiveHandler(li, equitruss.ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	if resp, _ := livePost(t, ts, `{"ops":[{"u":1,"v":3}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-fault update: status %d", resp.StatusCode)
	}
	liveWaitApplied(t, ts, 1)
	faults.Enable(1)
	defer faults.Disable()
	faults.Set("wal.fsync", faults.Plan{Action: faults.Error, Every: 1, MaxFires: 1})
	resp, _ := livePost(t, ts, `{"ops":[{"u":2,"v":4}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fsync-faulted update: status %d, want 503", resp.StatusCode)
	}
	faults.Disable()
	// Poisoned: subsequent updates fail fast...
	resp, doc := livePost(t, ts, `{"ops":[{"u":2,"v":5}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-poison update: status %d %v, want 503", resp.StatusCode, doc)
	}
	// ...liveness reports degraded...
	if _, health := liveGet(t, ts, "/healthz"); health["updates"] == "ok" {
		t.Fatalf("healthz still reports updates ok after poisoning: %v", health["updates"])
	}
	// ...and queries keep working.
	if code, _ := liveGet(t, ts, "/community?v=1&k=3"); code != http.StatusOK {
		t.Fatalf("query during degraded mode: status %d", code)
	}
	ts.Close()
	closeFn()
	li.Close()
	chaosWaitGoroutines(t, base)

	// Restart recovers: the acked record survives, the failed ones do not.
	li2 := openLive(t, dir, liveBase(t), nil)
	defer li2.Close()
	if li2.Seq != 1 {
		t.Fatalf("recovered Seq = %d, want 1 (only the acked update)", li2.Seq)
	}
}
