// Kernel breakdown: run all three parallel variants on an R-MAT graph and
// print the per-kernel timing profile (the shape of the paper's Figures 4
// and 8) plus the variant speedups (Figure 5) — a self-contained
// mini-benchmark on generated data.
//
//	go run ./examples/kernelbreakdown [-scale 14] [-threads 0]
package main

import (
	"flag"
	"fmt"
	"time"

	"equitruss"
)

func main() {
	scale := flag.Int("scale", 13, "log2 vertices of the R-MAT graph")
	edgefactor := flag.Int("edgefactor", 12, "edges per vertex")
	threads := flag.Int("threads", 0, "threads (0 = all cores)")
	flag.Parse()

	g := equitruss.GenerateRMAT(*scale, *edgefactor, 42)
	fmt.Printf("R-MAT scale=%d: %d vertices, %d edges\n\n", *scale, g.NumVertices(), g.NumEdges())

	fmt.Printf("%-10s %10s %10s %10s %10s %10s %10s %10s %12s\n",
		"variant", "support", "truss", "init", "spnode", "spedge", "smgraph", "remap", "index-total")
	var baseline time.Duration
	for _, v := range []equitruss.Variant{equitruss.Baseline, equitruss.COptimal, equitruss.Afforest} {
		_, tm, err := equitruss.BuildSummary(g, equitruss.Options{Variant: v, Threads: *threads})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10v %10v %10v %10v %10v %10v %10v %10v %12v\n",
			v,
			tm.Support.Round(time.Millisecond),
			tm.TrussDecomp.Round(time.Millisecond),
			tm.Init.Round(time.Millisecond),
			tm.SpNode.Round(time.Millisecond),
			tm.SpEdge.Round(time.Millisecond),
			tm.SmGraph.Round(time.Millisecond),
			tm.SpNodeRemap.Round(time.Millisecond),
			tm.IndexTotal().Round(time.Millisecond))
		if v == equitruss.Baseline {
			baseline = tm.IndexTotal()
		} else {
			fmt.Printf("%-10s speedup over Baseline: %.2fx\n", "",
				float64(baseline)/float64(tm.IndexTotal()))
		}
	}
}
