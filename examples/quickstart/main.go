// Quickstart: build an EquiTruss index over a small graph and query the
// communities of a vertex.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"equitruss"
)

func main() {
	// Two dense groups overlapping in vertex 4 only, plus a tail: vertex 4
	// belongs to BOTH communities simultaneously (overlapping membership).
	edges := []equitruss.Edge{
		// group A: clique on 0-1-2-3-4
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 1, V: 4},
		{U: 2, V: 3}, {U: 2, V: 4}, {U: 3, V: 4},
		// group B: clique on 4-5-6-7
		{U: 4, V: 5}, {U: 4, V: 6}, {U: 4, V: 7},
		{U: 5, V: 6}, {U: 5, V: 7}, {U: 6, V: 7},
		// a triangle-free tail
		{U: 7, V: 8}, {U: 8, V: 9},
	}
	g, err := equitruss.NewGraph(edges, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)

	idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.Afforest})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d supernodes, %d superedges\n",
		idx.SG.NumSupernodes(), idx.SG.NumSuperedges())

	// Vertex 4 sits in both groups: overlapping membership.
	for _, k := range []int32{3, 4, 5} {
		cs := idx.Communities(4, k)
		fmt.Printf("vertex 4 at k=%d: %d community(ies)\n", k, len(cs))
		for i, c := range cs {
			fmt.Printf("  #%d vertices=%v\n", i, c.Vertices())
		}
	}

	// The strongest community vertex 4 participates in:
	fmt.Println("max-k of vertex 4:", idx.MaxK(4))
	// Vertex 8 is on the triangle-free tail: no communities at all.
	fmt.Println("communities of vertex 8 at k=3:", len(idx.Communities(8, 3)))
}
