// Social-network scenario (the paper's motivating workload): a user wants
// the social circles *they* belong to, not a global partition of the whole
// network. We generate a planted-community graph, build the index with
// every variant to show they agree, then answer personalized queries and
// compare the indexed path against the from-scratch search.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"time"

	"equitruss"
)

func main() {
	// ~400 users in 40 tight friend groups with random cross links.
	g, err := equitruss.GenerateDataset("amazon-sim", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	// Make it a bit more social: overlay a second surrogate is overkill;
	// the planted graph already has overlapping membership via cross links.
	fmt.Printf("social network: %d users, %d friendships\n", g.NumVertices(), g.NumEdges())

	// All variants build the identical index; time each.
	var idx *equitruss.Index
	for _, v := range []equitruss.Variant{equitruss.Serial, equitruss.Baseline, equitruss.COptimal, equitruss.Afforest} {
		built, err := equitruss.BuildIndex(g, equitruss.Options{Variant: v})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9v index in %8v (supernodes=%d superedges=%d)\n",
			v, built.Timings.Total().Round(time.Microsecond),
			built.SG.NumSupernodes(), built.SG.NumSuperedges())
		idx = built
	}

	// Find a user with interesting overlapping membership: a member of at
	// least two distinct k=3 circles.
	var user int32
	best := 0
	for v := int32(0); v < g.NumVertices(); v++ {
		if cs := idx.Communities(v, 3); len(cs) > best {
			user, best = v, len(cs)
		}
	}
	fmt.Printf("\nuser %d membership profile (k -> #communities): %v\n", user, idx.Membership(user))
	for _, c := range idx.Communities(user, 3) {
		vs := c.Vertices()
		show := vs
		if len(show) > 12 {
			show = show[:12]
		}
		fmt.Printf("  k=3 circle with %d members: %v...\n", len(vs), show)
	}

	// Indexed vs from-scratch query cost.
	tau := equitruss.Trussness(g, 0)
	const reps = 200
	start := time.Now()
	for i := 0; i < reps; i++ {
		idx.Communities(user, 3)
	}
	indexed := time.Since(start) / reps
	start = time.Now()
	for i := 0; i < reps; i++ {
		equitruss.DirectCommunities(g, tau, user, 3)
	}
	direct := time.Since(start) / reps
	fmt.Printf("\nquery cost: indexed %v vs from-scratch %v (%.1fx)\n",
		indexed, direct, float64(direct)/float64(indexed))
}
