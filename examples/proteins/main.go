// Protein-interaction scenario: k-truss communities as putative functional
// modules in a PPI-style network (dense complexes, sparse background — the
// biology workload the paper's introduction cites). We locate the module(s)
// of an unannotated protein and show how raising k zooms from broad
// neighborhoods to tight complexes.
//
//	go run ./examples/proteins
package main

import (
	"fmt"
	"log"

	"equitruss"
)

func main() {
	// Protein complexes: 60 modules of ~14 proteins with dense internal
	// interaction plus noisy cross-talk edges.
	edges := buildPPI()
	g, err := equitruss.NewGraph(edges, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPI network: %d proteins, %d interactions\n", g.NumVertices(), g.NumEdges())

	idx, err := equitruss.BuildIndex(g, equitruss.Options{Variant: equitruss.COptimal})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d supernodes, %d superedges, built in %v\n\n",
		idx.SG.NumSupernodes(), idx.SG.NumSuperedges(), idx.Timings.Total())

	// "Annotate" protein 7 by the modules it participates in.
	protein := int32(7)
	maxK := idx.MaxK(protein)
	fmt.Printf("protein %d: strongest module cohesion k=%d\n", protein, maxK)
	for k := int32(3); k <= maxK; k++ {
		cs := idx.Communities(protein, k)
		fmt.Printf("  k=%d: member of %d module(s), sizes:", k, len(cs))
		for _, c := range cs {
			fmt.Printf(" %d", len(c.Vertices()))
		}
		fmt.Println()
	}

	// Functional-module hypothesis: the tightest community of the protein.
	if maxK >= 3 {
		tight := idx.Communities(protein, maxK)[0]
		sub, err := tight.Subgraph()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nputative complex of protein %d at k=%d: %d proteins, %d interactions\n",
			protein, maxK, len(tight.Vertices()), sub.NumEdges())
		fmt.Printf("members: %v\n", tight.Vertices())
		m := equitruss.EvaluateCommunity(g, tight)
		fmt.Printf("cohesion: density=%.2f conductance=%.2f minDeg=%d clustering=%.2f\n",
			m.Density, m.Conductance, m.MinInternalDegree, m.AvgClustering)
	}
}

// buildPPI generates the synthetic interactome: modules as near-cliques
// plus background noise, deterministic for reproducibility.
func buildPPI() []equitruss.Edge {
	const modules = 60
	const size = 14
	var edges []equitruss.Edge
	state := uint64(2024)
	rnd := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	for m := int32(0); m < modules; m++ {
		base := m * size
		for i := int32(0); i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rnd() < 0.6 {
					edges = append(edges, equitruss.Edge{U: base + i, V: base + j})
				}
			}
		}
	}
	// Background cross-talk.
	n := int32(modules * size)
	for i := 0; i < int(n); i++ {
		u := int32(rnd() * float64(n))
		v := int32(rnd() * float64(n))
		if u != v && u < n && v < n {
			edges = append(edges, equitruss.Edge{U: u, V: v})
		}
	}
	return edges
}
