// Dynamic updates: maintain exact trussness while a social graph evolves
// (friendships form and dissolve), refreshing the community index only
// when needed — the maintenance workflow the EquiTruss model is designed
// for, on top of this repo's incremental trussness engine.
//
//	go run ./examples/dynamicupdates
package main

import (
	"fmt"
	"log"
	"time"

	"equitruss"
)

func main() {
	// Start from a planted-community network.
	g, err := equitruss.GenerateDataset("dblp-sim", 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	dg := equitruss.NewDynamicFromGraph(g, 0)
	fmt.Printf("imported into dynamic graph in %v\n\n", time.Since(start).Round(time.Millisecond))

	// A burst of updates: close triangles inside community 0 (vertices
	// 0..11), then sever some of them.
	type op struct {
		insert bool
		u, v   int32
	}
	ops := []op{
		{true, 0, 5}, {true, 1, 6}, {true, 2, 7}, {true, 0, 7},
		{false, 0, 5}, {true, 3, 8}, {false, 1, 6},
	}
	start = time.Now()
	for _, o := range ops {
		if o.insert {
			if _, err := dg.InsertEdge(o.u, o.v); err != nil {
				log.Fatal(err)
			}
		} else {
			dg.DeleteEdge(o.u, o.v)
		}
	}
	fmt.Printf("applied %d updates with exact trussness maintenance in %v\n",
		len(ops), time.Since(start).Round(time.Microsecond))

	// Inspect a maintained value directly.
	if tau, ok := dg.Trussness(3, 8); ok {
		fmt.Printf("τ(3,8) after updates: %d\n", tau)
	}

	// Refresh the queryable index from the maintained state: Support and
	// TrussDecomp (the dominant serial kernels) are skipped entirely —
	// only the EquiTruss construction kernels run.
	g2, tau, err := dg.ToStatic()
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	idx2, err := equitruss.BuildIndex(g2, equitruss.Options{Variant: equitruss.Afforest})
	if err != nil {
		log.Fatal(err)
	}
	_ = tau
	fmt.Printf("\nrefreshed index: %d supernodes, %d superedges (rebuild %v)\n",
		idx2.SG.NumSupernodes(), idx2.SG.NumSuperedges(), time.Since(start).Round(time.Millisecond))
	cs := idx2.Communities(3, 3)
	fmt.Printf("vertex 3 now participates in %d k=3 community(ies)\n", len(cs))
}
