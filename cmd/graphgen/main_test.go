package main

import (
	"bytes"
	"testing"

	"equitruss/internal/graphio"
)

func TestGenerateModels(t *testing.T) {
	cases := []params{
		{model: "dataset", name: "amazon-sim", factor: 0.05},
		{model: "rmat", scale: 8, edgefactor: 4, seed: 1},
		{model: "er", n: 200, m: 500, seed: 2},
		{model: "ba", n: 200, k: 3, seed: 3},
		{model: "planted", communities: 5, size: 6, pintra: 0.8, interdeg: 1, seed: 4},
	}
	for _, p := range cases {
		g, err := generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.model, err)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", p.model)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate(params{model: "bogus"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := generate(params{model: "dataset", name: "bogus"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestEmitTextAndBinary(t *testing.T) {
	g, err := generate(params{model: "rmat", scale: 6, edgefactor: 3, seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if err := emit(&text, g, false); err != nil {
		t.Fatal(err)
	}
	g2, err := graphio.ReadEdgeList(&text)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("text round trip: %d vs %d edges", g2.NumEdges(), g.NumEdges())
	}
	var bin bytes.Buffer
	if err := emit(&bin, g, true); err != nil {
		t.Fatal(err)
	}
	g3, err := graphio.ReadBinaryGraph(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != g.NumEdges() {
		t.Fatalf("binary round trip: %d vs %d edges", g3.NumEdges(), g.NumEdges())
	}
}
