// Command graphgen writes synthetic graphs as SNAP-style edge-list files:
// the built-in dataset surrogates, R-MAT, Erdős–Rényi, Barabási–Albert,
// and planted-partition community graphs.
//
// Usage:
//
//	graphgen -model dataset -name orkut-sim -factor 0.5 -out orkut.txt
//	graphgen -model rmat -scale 18 -edgefactor 16 -seed 1 -out rmat.txt
//	graphgen -model planted -communities 100 -size 12 -pintra 0.6 -out comm.txt
//	graphgen -model er -n 100000 -m 500000 -out er.txt
//	graphgen -model ba -n 100000 -k 4 -out ba.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/graphio"
)

// params collects every generator knob; one struct so the generation logic
// is testable apart from flag parsing.
type params struct {
	model       string
	name        string
	factor      float64
	scale       int
	edgefactor  int
	n           int
	m           int64
	k           int
	communities int
	size        int
	pintra      float64
	interdeg    float64
	seed        uint64
	binary      bool
}

func generate(p params) (*graph.Graph, error) {
	switch p.model {
	case "dataset":
		spec, err := gen.FindDataset(p.name)
		if err != nil {
			return nil, err
		}
		return spec.Generate(p.factor), nil
	case "rmat":
		return gen.RMAT(p.scale, p.edgefactor, 0.57, 0.19, 0.19, p.seed), nil
	case "er":
		return gen.ErdosRenyi(int32(p.n), p.m, p.seed), nil
	case "ba":
		return gen.BarabasiAlbert(int32(p.n), p.k, p.seed), nil
	case "planted":
		return gen.PlantedPartition(int32(p.communities), int32(p.size), p.pintra, p.interdeg, p.seed), nil
	default:
		return nil, fmt.Errorf("unknown model %q", p.model)
	}
}

func emit(w io.Writer, g *graph.Graph, binary bool) error {
	if binary {
		return graphio.WriteBinaryGraph(w, g)
	}
	return graphio.WriteEdgeList(w, g)
}

func main() {
	var p params
	flag.StringVar(&p.model, "model", "dataset", "dataset|rmat|er|ba|planted")
	flag.StringVar(&p.name, "name", "amazon-sim", "dataset surrogate name (model=dataset)")
	flag.Float64Var(&p.factor, "factor", 1.0, "dataset size factor (model=dataset)")
	flag.IntVar(&p.scale, "scale", 16, "log2 vertices (model=rmat)")
	flag.IntVar(&p.edgefactor, "edgefactor", 16, "edges per vertex (model=rmat)")
	flag.IntVar(&p.n, "n", 10000, "vertices (model=er|ba)")
	flag.Int64Var(&p.m, "m", 50000, "edges (model=er)")
	flag.IntVar(&p.k, "k", 4, "attachment degree (model=ba)")
	flag.IntVar(&p.communities, "communities", 50, "community count (model=planted)")
	flag.IntVar(&p.size, "size", 10, "community size (model=planted)")
	flag.Float64Var(&p.pintra, "pintra", 0.6, "intra-community density (model=planted)")
	flag.Float64Var(&p.interdeg, "interdeg", 1.5, "mean inter-community degree (model=planted)")
	flag.Uint64Var(&p.seed, "seed", 1, "random seed")
	flag.BoolVar(&p.binary, "binary", false, "write the compact binary format instead of text")
	out := flag.String("out", "", "output path ('-' or empty for stdout)")
	flag.Parse()

	g, err := generate(p)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	w := io.Writer(os.Stdout)
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := emit(w, g, p.binary); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
