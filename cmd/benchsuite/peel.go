package main

import (
	"fmt"
	"time"

	"equitruss/internal/graph"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// peelReps is how many times each (dataset, peel kernel) cell is timed; the
// minimum is recorded, matching the Support sweep's min-of-reps discipline.
const peelReps = 3

// peelKernels is the sweep order. Levelsync first: the check mode
// normalizes every kernel's time by the same run's levelsync time, so
// levelsync rows must exist before ratios are formed.
var peelKernels = []truss.PeelKernel{
	truss.PeelLevelSync, truss.PeelSerial, truss.PeelPKT,
}

// runPeel times every explicit peel kernel on the four-network set over the
// same support arrays and records (dataset, kernel, seconds, checksum) rows
// into the artifact. All kernels must produce identical trussness arrays —
// a mismatch is a correctness bug, so the experiment panics rather than
// reporting a time for a wrong answer.
func runPeel(cfg config) {
	t := newTable("Network", "Kernel", "Seconds", "vsLevelsync")
	for _, name := range fourNets {
		g := dataset(cfg, name)
		sup := triangle.SupportsKernel(g, cfg.kernel, cfg.maxThr)
		lsSec := 0.0
		var want uint64
		for i, k := range peelKernels {
			sec, sum := timePeel(cfg, g, sup, k, cfg.maxThr)
			if i == 0 {
				lsSec, want = sec, sum
			} else if sum != want {
				panic(fmt.Sprintf("peel kernel %s disagrees with levelsync on %s: checksum %#x != %#x",
					k, name, sum, want))
			}
			t.row(name, k.String(), sec, lsSec/sec)
			if cfg.art != nil {
				cfg.art.PeelBench = append(cfg.art.PeelBench, peelRow{
					Dataset: name, Kernel: k.String(), Threads: cfg.maxThr,
					Seconds: sec, Checksum: sum,
				})
			}
		}
	}
	emit(cfg.sink, "peel", "", t)
}

// timePeel returns the min-of-reps TrussDecomp time in seconds and the
// FNV-1a checksum of the resulting trussness array. Every individual rep is
// observed into the experiment's latency histogram.
func timePeel(cfg config, g *graph.Graph, sup []int32, k truss.PeelKernel, threads int) (float64, uint64) {
	best := 0.0
	var sum uint64
	for r := 0; r < peelReps; r++ {
		start := time.Now()
		tau, _ := truss.DecomposeKernel(g, sup, k, threads)
		dur := time.Since(start)
		cfg.observe(dur)
		sec := dur.Seconds()
		if r == 0 || sec < best {
			best = sec
		}
		sum = checksumInt32(tau)
	}
	return best, sum
}

// checkPeelRows gates the (dataset, peel kernel) cells, normalized by the
// levelsync kernel within each artifact — the same ratios-of-ratios
// discipline as the Support gate. A baseline row that should exist but does
// not is a loud failure, never a silent pass.
func checkPeelRows(base, art *benchArtifact) (int, error) {
	baseLS := levelsyncSeconds(base.PeelBench)
	curLS := levelsyncSeconds(art.PeelBench)
	checked := 0
	for _, row := range art.PeelBench {
		if row.Kernel == "levelsync" {
			continue
		}
		cm, okC := curLS[row.Dataset]
		if !okC {
			return checked, fmt.Errorf("peel %s/%s: current run has no levelsync row to normalize by (run the full peel sweep)",
				row.Dataset, row.Kernel)
		}
		bm, okB := baseLS[row.Dataset]
		if !okB {
			return checked, fmt.Errorf("peel %s/%s: baseline %s has no levelsync row for this dataset (regenerate the baseline)",
				row.Dataset, row.Kernel, base.GitRev)
		}
		if bm < checkNoiseFloorSec || cm < checkNoiseFloorSec {
			continue
		}
		baseSec, found := findPeelRow(base.PeelBench, row.Dataset, row.Kernel)
		if !found {
			return checked, fmt.Errorf("peel %s/%s: no baseline row in %s — the gate cannot pass by omission (regenerate the baseline)",
				row.Dataset, row.Kernel, base.GitRev)
		}
		curRatio := row.Seconds / cm
		baseRatio := baseSec / bm
		checked++
		if curRatio > baseRatio*checkMargin {
			return checked, fmt.Errorf("%s/%s: normalized peel time %.3f (was %.3f in baseline %s) — >%.0f%% regression",
				row.Dataset, row.Kernel, curRatio, baseRatio, base.GitRev, (checkMargin-1)*100)
		}
		fmt.Printf("# benchcheck peel %s/%-9s ratio %.3f vs baseline %.3f ok\n",
			row.Dataset, row.Kernel, curRatio, baseRatio)
	}
	return checked, nil
}

// findPeelRow looks up a (dataset, kernel) cell's seconds.
func findPeelRow(rows []peelRow, dataset, kernel string) (float64, bool) {
	for _, r := range rows {
		if r.Dataset == dataset && r.Kernel == kernel {
			return r.Seconds, true
		}
	}
	return 0, false
}

// levelsyncSeconds indexes the levelsync-kernel time per dataset.
func levelsyncSeconds(rows []peelRow) map[string]float64 {
	out := map[string]float64{}
	for _, r := range rows {
		if r.Kernel == "levelsync" {
			out[r.Dataset] = r.Seconds
		}
	}
	return out
}
