package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// supportReps is how many times each (dataset, kernel) cell is timed; the
// minimum is recorded. Min-of-N is the standard defense against scheduler
// noise for short single-process benchmarks.
const supportReps = 3

// supportKernels is the sweep order. Merge first: the check mode normalizes
// every kernel's time by the same run's merge time, so merge rows must
// exist before ratios are formed.
var supportKernels = []triangle.Kernel{
	triangle.KernelMerge, triangle.KernelGalloping, triangle.KernelOriented,
}

// runSupport times every explicit Support kernel on the four-network set
// and records (dataset, kernel, seconds, checksum) rows into the artifact.
// All kernels must produce identical support arrays — a mismatch is a
// correctness bug, so the experiment panics rather than reporting a time
// for a wrong answer.
func runSupport(cfg config) {
	t := newTable("Network", "Kernel", "Seconds", "vsMerge")
	for _, name := range fourNets {
		g := dataset(cfg, name)
		mergeSec := 0.0
		var want uint64
		for i, k := range supportKernels {
			sec, sum := timeSupport(cfg, g, k, cfg.maxThr)
			if i == 0 {
				mergeSec, want = sec, sum
			} else if sum != want {
				panic(fmt.Sprintf("support kernel %s disagrees with merge on %s: checksum %#x != %#x",
					k, name, sum, want))
			}
			t.row(name, k.String(), sec, mergeSec/sec)
			if cfg.art != nil {
				cfg.art.SupportBench = append(cfg.art.SupportBench, supportRow{
					Dataset: name, Kernel: k.String(), Threads: cfg.maxThr,
					Seconds: sec, Checksum: sum,
				})
			}
		}
	}
	emit(cfg.sink, "support", "", t)
}

// rmat18Scale and rmat18EdgeFactor define the skewed stress graph from the
// acceptance criteria: 2^18 vertices, ~2M undirected edges, heavy-tailed
// degree distribution where the oriented kernel's O(m^1.5) bound beats
// merge's hub-quadratic intersections.
const (
	rmat18Scale      = 18
	rmat18EdgeFactor = 8
	rmat18Seed       = 42
)

// runRMAT18 builds the scale-18 RMAT graph and times the Support stage with
// the configured -support-kernel (auto resolves per the heuristic), then
// runs the truss decomposition so the artifact also witnesses the supports
// feed a correct downstream τ. Excluded from `-experiment all`: it is the
// committed-artifact producer, run explicitly once per kernel.
func runRMAT18(cfg config) {
	g := gen.RMAT(rmat18Scale, rmat18EdgeFactor, 0.57, 0.19, 0.19, rmat18Seed)
	fmt.Printf("rmat18: %d vertices, %d edges, kernel=%s, peel=%s\n",
		g.NumVertices(), g.NumEdges(), cfg.kernel, cfg.peel)
	sec, sum := timeSupport(cfg, g, cfg.kernel, cfg.maxThr)
	sup := triangle.SupportsKernel(g, cfg.kernel, cfg.maxThr)
	start := time.Now()
	tau, _ := truss.DecomposeKernel(g, sup, cfg.peel, cfg.maxThr)
	decomp := time.Since(start)
	cfg.observe(decomp)
	decompSec := decomp.Seconds()
	t := newTable("Graph", "Kernel", "Peel", "Support(s)", "Decompose(s)", "SupSum", "TauSum")
	t.row("rmat18", cfg.kernel.String(), cfg.peel.String(), sec, decompSec, sum, checksumInt32(tau))
	if cfg.art != nil {
		cfg.art.SupportBench = append(cfg.art.SupportBench, supportRow{
			Dataset: "rmat18", Kernel: cfg.kernel.String(), Threads: cfg.maxThr,
			Seconds: sec, Checksum: sum,
		})
		cfg.art.PeelBench = append(cfg.art.PeelBench, peelRow{
			Dataset: "rmat18", Kernel: cfg.peel.String(), Threads: cfg.maxThr,
			Seconds: decompSec, Checksum: checksumInt32(tau),
		})
	}
	emit(cfg.sink, "rmat18", "", t)
}

// timeSupport returns the min-of-reps Support time in seconds and the
// FNV-1a checksum of the resulting support array. Every individual rep is
// also observed into the experiment's latency histogram, so the artifact's
// quantiles describe the full sample population while the returned
// min-of-reps keeps the -check ratios noise-resistant.
func timeSupport(cfg config, g *graph.Graph, k triangle.Kernel, threads int) (float64, uint64) {
	best := 0.0
	var sum uint64
	for r := 0; r < supportReps; r++ {
		start := time.Now()
		sup := triangle.SupportsKernel(g, k, threads)
		dur := time.Since(start)
		cfg.observe(dur)
		sec := dur.Seconds()
		if r == 0 || sec < best {
			best = sec
		}
		sum = checksumInt32(sup)
	}
	return best, sum
}

// checksumInt32 hashes an int32 array with FNV-1a — order-sensitive, so two
// kernels match only if they agree edge-for-edge.
func checksumInt32(a []int32) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range a {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// --- benchcheck: regression gate against a committed baseline ---------------

// checkNoiseFloorSec: datasets whose merge time is below this are too small
// to time reliably; their ratios are skipped rather than flagged.
const checkNoiseFloorSec = 0.002

// checkMargin: a kernel's normalized time (its seconds / the same run's
// merge seconds) may exceed the baseline's normalized time by at most this
// factor. Ratios of ratios cancel machine speed, so the committed baseline
// stays meaningful on any hardware.
const checkMargin = 1.20

// checkAgainstBaseline compares the current run's SupportBench, QueryBench,
// and PeelBench rows against a committed baseline artifact. Support rows
// normalize each kernel's time by the same run's merge time; query rows by
// the same run's indexed-bfs time for that (dataset, workload); peel rows
// by the same run's levelsync time. Ratios of ratios cancel machine speed,
// so the committed baseline stays meaningful on any hardware. The check
// fails if any current ratio regressed more than checkMargin over the
// baseline's — and a row the baseline should have but lacks is a loud
// failure, never a silent pass.
func checkAgainstBaseline(path string, art *benchArtifact) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchArtifact
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if len(art.SupportBench) == 0 && len(art.QueryBench) == 0 && len(art.PeelBench) == 0 &&
		len(art.UpdateBench) == 0 && len(art.ColdstartBench) == 0 {
		return fmt.Errorf("current run produced no support_bench, query_bench, peel_bench, update_bench, or coldstart_bench rows (run -experiment support,query,peel,update,coldstart)")
	}
	checked := 0
	if len(art.SupportBench) > 0 {
		if len(base.SupportBench) == 0 {
			return fmt.Errorf("baseline %s has no support_bench rows", path)
		}
		n, err := checkSupportRows(&base, art)
		if err != nil {
			return err
		}
		checked += n
	}
	if len(art.QueryBench) > 0 {
		if len(base.QueryBench) == 0 {
			return fmt.Errorf("baseline %s has no query_bench rows (regenerate it with -experiment support,query,peel)", path)
		}
		n, err := checkQueryRows(&base, art)
		if err != nil {
			return err
		}
		checked += n
	}
	if len(art.PeelBench) > 0 {
		if len(base.PeelBench) == 0 {
			return fmt.Errorf("baseline %s has no peel_bench rows (regenerate it with -experiment support,query,peel)", path)
		}
		n, err := checkPeelRows(&base, art)
		if err != nil {
			return err
		}
		checked += n
	}
	if len(art.UpdateBench) > 0 {
		if len(base.UpdateBench) == 0 {
			return fmt.Errorf("baseline %s has no update_bench rows (regenerate it with -experiment support,query,peel,update)", path)
		}
		n, err := checkUpdateRows(&base, art)
		if err != nil {
			return err
		}
		checked += n
	}
	if len(art.ColdstartBench) > 0 {
		if len(base.ColdstartBench) == 0 {
			return fmt.Errorf("baseline %s has no coldstart_bench rows (regenerate it with -experiment coldstart)", path)
		}
		n, err := checkColdstartRows(&base, art)
		if err != nil {
			return err
		}
		checked += n
	}
	if checked == 0 {
		return fmt.Errorf("no comparable rows above the %.0fms noise floor", checkNoiseFloorSec*1000)
	}
	return nil
}

// checkSupportRows gates the (dataset, kernel) cells, normalized by the
// merge kernel within each artifact. Returns how many cells were compared.
func checkSupportRows(base, art *benchArtifact) (int, error) {
	baseMerge := mergeSeconds(base.SupportBench)
	curMerge := mergeSeconds(art.SupportBench)
	checked := 0
	for _, row := range art.SupportBench {
		if row.Kernel == "merge" {
			continue
		}
		cm, okC := curMerge[row.Dataset]
		if !okC {
			return checked, fmt.Errorf("support %s/%s: current run has no merge row to normalize by (run the full support sweep)",
				row.Dataset, row.Kernel)
		}
		bm, okB := baseMerge[row.Dataset]
		if !okB {
			return checked, fmt.Errorf("support %s/%s: baseline %s has no merge row for this dataset (regenerate the baseline)",
				row.Dataset, row.Kernel, base.GitRev)
		}
		if bm < checkNoiseFloorSec || cm < checkNoiseFloorSec {
			continue
		}
		var baseSec float64
		found := false
		for _, b := range base.SupportBench {
			if b.Dataset == row.Dataset && b.Kernel == row.Kernel {
				baseSec, found = b.Seconds, true
				break
			}
		}
		if !found {
			return checked, fmt.Errorf("support %s/%s: no baseline row in %s — the gate cannot pass by omission (regenerate the baseline)",
				row.Dataset, row.Kernel, base.GitRev)
		}
		curRatio := row.Seconds / cm
		baseRatio := baseSec / bm
		checked++
		if curRatio > baseRatio*checkMargin {
			return checked, fmt.Errorf("%s/%s: normalized Support time %.3f (was %.3f in baseline %s) — >%.0f%% regression",
				row.Dataset, row.Kernel, curRatio, baseRatio, base.GitRev, (checkMargin-1)*100)
		}
		fmt.Printf("# benchcheck %s/%-8s ratio %.3f vs baseline %.3f ok\n",
			row.Dataset, row.Kernel, curRatio, baseRatio)
	}
	return checked, nil
}

// checkQueryRows gates the (dataset, workload, engine) cells, normalized by
// the indexed-bfs engine within each artifact. Engine times below the noise
// floor are skipped as numerators too — a microsecond-scale hierarchy
// answer cannot regress measurably, and its jitter would make the ratio
// meaningless.
func checkQueryRows(base, art *benchArtifact) (int, error) {
	baseRef := bfsSeconds(base.QueryBench)
	curRef := bfsSeconds(art.QueryBench)
	checked := 0
	for _, row := range art.QueryBench {
		if row.Engine == "indexed-bfs" {
			continue
		}
		key := row.Dataset + "/" + row.Workload
		cr, okC := curRef[key]
		if !okC {
			return checked, fmt.Errorf("query %s/%s: current run has no indexed-bfs row to normalize by (run the full query sweep)",
				key, row.Engine)
		}
		br, okB := baseRef[key]
		if !okB {
			return checked, fmt.Errorf("query %s/%s: baseline %s has no indexed-bfs row for this workload (regenerate the baseline)",
				key, row.Engine, base.GitRev)
		}
		if br < checkNoiseFloorSec || cr < checkNoiseFloorSec {
			continue
		}
		if row.Seconds < checkNoiseFloorSec {
			continue
		}
		var baseSec float64
		found := false
		for _, b := range base.QueryBench {
			if b.Dataset == row.Dataset && b.Workload == row.Workload && b.Engine == row.Engine {
				baseSec, found = b.Seconds, true
				break
			}
		}
		if !found {
			return checked, fmt.Errorf("query %s/%s: no baseline row in %s — the gate cannot pass by omission (regenerate the baseline)",
				key, row.Engine, base.GitRev)
		}
		if baseSec < checkNoiseFloorSec {
			continue
		}
		curRatio := row.Seconds / cr
		baseRatio := baseSec / br
		checked++
		if curRatio > baseRatio*checkMargin {
			return checked, fmt.Errorf("%s/%s/%s: normalized query time %.3f (was %.3f in baseline %s) — >%.0f%% regression",
				row.Dataset, row.Workload, row.Engine, curRatio, baseRatio, base.GitRev, (checkMargin-1)*100)
		}
		fmt.Printf("# benchcheck %s/%s/%-11s ratio %.3f vs baseline %.3f ok\n",
			row.Dataset, row.Workload, row.Engine, curRatio, baseRatio)
	}
	return checked, nil
}

// bfsSeconds indexes the indexed-bfs reference time per dataset/workload.
func bfsSeconds(rows []queryRow) map[string]float64 {
	out := map[string]float64{}
	for _, r := range rows {
		if r.Engine == "indexed-bfs" {
			out[r.Dataset+"/"+r.Workload] = r.Seconds
		}
	}
	return out
}

// mergeSeconds indexes the merge-kernel time per dataset.
func mergeSeconds(rows []supportRow) map[string]float64 {
	out := map[string]float64{}
	for _, r := range rows {
		if r.Kernel == "merge" {
			out[r.Dataset] = r.Seconds
		}
	}
	return out
}
