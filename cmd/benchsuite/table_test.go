package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := newTable("Name", "Value")
	tb.row("alpha", 1)
	tb.row("b", 2.5)
	var buf bytes.Buffer
	tb.render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Fatalf("header line %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1") {
		t.Fatalf("row line %q", lines[2])
	}
	if !strings.Contains(lines[3], "2.50") {
		t.Fatalf("float not formatted: %q", lines[3])
	}
}

func TestPct(t *testing.T) {
	if got := pct(time.Second, 4*time.Second); got != 25 {
		t.Fatalf("pct = %v", got)
	}
	if got := pct(time.Second, 0); got != 0 {
		t.Fatalf("pct of zero total = %v", got)
	}
}

func TestThreadSweep(t *testing.T) {
	cases := map[int][]int{
		1: {1},
		2: {1, 2},
		3: {1, 2, 3},
		8: {1, 2, 4, 8},
		6: {1, 2, 4, 6},
	}
	for max, want := range cases {
		got := threadSweep(max)
		if len(got) != len(want) {
			t.Fatalf("threadSweep(%d) = %v, want %v", max, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("threadSweep(%d) = %v, want %v", max, got, want)
			}
		}
	}
}

func TestDatasetCaching(t *testing.T) {
	cfg := config{scale: 0.05, maxThr: 2}
	g1 := dataset(cfg, "amazon-sim")
	g2 := dataset(cfg, "amazon-sim")
	if g1 != g2 {
		t.Fatal("dataset not cached")
	}
	tau1 := trussness(cfg, "amazon-sim", g1)
	tau2 := trussness(cfg, "amazon-sim", g1)
	if &tau1[0] != &tau2[0] {
		t.Fatal("trussness not cached")
	}
}

// TestExperimentsRunTiny executes every experiment at a tiny scale to keep
// the harness itself covered (output discarded; this is a smoke test that
// no experiment panics).
func TestExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test is slow")
	}
	cfg := config{scale: 0.02, maxThr: 2}
	for _, e := range experiments {
		if e.id == "fig7" {
			continue // friendster-sim is big even at small scale
		}
		t.Run(e.id, func(t *testing.T) {
			e.run(cfg)
		})
	}
}

func TestTSVSink(t *testing.T) {
	dir := t.TempDir()
	sink := &tsvSink{dir: dir}
	tb := newTable("A", "B")
	tb.row("x", 1)
	if err := sink.write("fig6", "orkut-sim", tb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/fig6_orkut-sim.tsv")
	if err != nil {
		t.Fatal(err)
	}
	want := "A\tB\nx\t1\n"
	if string(data) != want {
		t.Fatalf("tsv = %q, want %q", data, want)
	}
	// nil sink is a no-op.
	var none *tsvSink
	if err := none.write("fig6", "", tb); err != nil {
		t.Fatal(err)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("a/b c.d"); got != "a_b_c_d" {
		t.Fatalf("sanitize = %q", got)
	}
	if got := sanitize("orkut-sim_1"); got != "orkut-sim_1" {
		t.Fatalf("sanitize clean name = %q", got)
	}
}
