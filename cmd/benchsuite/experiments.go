package main

import (
	"fmt"
	"time"

	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// runTab3 prints the dataset inventory (paper Table 3) for the surrogates
// at the configured scale.
func runTab3(cfg config) {
	t := newTable("Network", "StandsIn", "#Vertices", "#Edges")
	for _, spec := range gen.Datasets {
		g := dataset(cfg, spec.Name)
		t.row(spec.Name, spec.StandsIn, g.NumVertices(), g.NumEdges())
	}
	emit(cfg.sink, "tab3", "", t)
}

// runFig2 reproduces Figure 2: for the serial pipeline, the percentage of
// time in SupportComp vs TrussDecomp vs EquiTruss index construction.
// The paper's point: EquiTruss construction is as expensive as truss
// decomposition for large graphs — worth parallelizing.
func runFig2(cfg config) {
	nets := []string{"amazon-sim", "dblp-sim", "livejournal-sim", "orkut-sim"}
	t := newTable("Network", "SupportComp%", "TrussDecomp%", "EquiTruss%")
	for _, name := range nets {
		g := dataset(cfg, name)
		start := time.Now()
		sup := triangle.SupportsKernel(g, cfg.kernel, 1)
		supportT := time.Since(start)
		start = time.Now()
		tau, _ := truss.DecomposeSerial(g, sup)
		trussT := time.Since(start)
		_, tm := core.BuildSerial(g, tau)
		eqT := tm.IndexTotal()
		total := supportT + trussT + eqT
		t.row(name, pct(supportT, total), pct(trussT, total), pct(eqT, total))
	}
	emit(cfg.sink, "fig2", "", t)
}

// runFig4 reproduces Figure 4: single-thread kernel percentage breakdown of
// the Baseline parallel implementation (Support, Init, SpNode, SpEdge,
// SmGraph, SpNodeRemap). SpNode must dominate (79–89% in the paper).
func runFig4(cfg config) {
	t := newTable("Network", "Support%", "Init%", "SpNode%", "SpEdge%", "SmGraph%", "Remap%")
	for _, name := range fourNets {
		g := dataset(cfg, name)
		start := time.Now()
		sup := triangle.SupportsKernel(g, cfg.kernel, 1)
		supportT := time.Since(start)
		tau, _ := truss.DecomposeSerial(g, sup)
		_, tm := core.Build(g, tau, core.VariantBaseline, 1)
		total := supportT + tm.IndexTotal()
		t.row(name, pct(supportT, total), pct(tm.Init, total), pct(tm.SpNode, total),
			pct(tm.SpEdge, total), pct(tm.SmGraph, total), pct(tm.SpNodeRemap, total))
	}
	emit(cfg.sink, "fig4", "", t)
}

// runFig5 reproduces Figure 5: single-thread SpNode kernel speedup of
// C-Optimal and Afforest over Baseline (paper: ~2× and 2–4.1×).
func runFig5(cfg config) {
	t := newTable("Network", "SpNode Baseline(s)", "SpNode C-Opt(s)", "SpNode Aff.(s)", "C-Opt x", "Aff. x")
	for _, name := range fourNets {
		g := dataset(cfg, name)
		tau := trussness(cfg, name, g)
		times := map[core.Variant]time.Duration{}
		for _, v := range core.ParallelVariants {
			_, tm := core.Build(g, tau, v, 1)
			times[v] = tm.SpNode
		}
		base := times[core.VariantBaseline]
		t.row(name, secs(base), secs(times[core.VariantCOptimal]), secs(times[core.VariantAfforest]),
			float64(base)/float64(times[core.VariantCOptimal]),
			float64(base)/float64(times[core.VariantAfforest]))
	}
	emit(cfg.sink, "fig5", "", t)
}

// runFig6 reproduces Figure 6: execution time of the index-construction
// kernels vs thread count for the three larger networks and all three
// parallel variants.
func runFig6(cfg config) {
	nets := []string{"orkut-sim", "livejournal-sim", "youtube-sim"}
	for _, name := range nets {
		g := dataset(cfg, name)
		tau := trussness(cfg, name, g)
		fmt.Printf("-- %s --\n", name)
		t := newTable("Threads", "Baseline(s)", "C-Optimal(s)", "Afforest(s)")
		for _, thr := range threadSweep(cfg.maxThr) {
			var row []interface{}
			row = append(row, thr)
			for _, v := range core.ParallelVariants {
				_, tm := core.Build(g, tau, v, thr)
				row = append(row, secs(tm.IndexTotal()))
			}
			t.row(row...)
		}
		emit(cfg.sink, "fig6", name, t)
	}
}

// runFig7 reproduces Figure 7: SpNode kernel scaling on the largest
// (Friendster stand-in) graph for C-Optimal and Afforest.
func runFig7(cfg config) {
	g := dataset(cfg, "friendster-sim")
	fmt.Printf("friendster-sim: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	tau := trussness(cfg, "friendster-sim", g)
	t := newTable("Threads", "SpNode C-Opt(s)", "SpNode Aff.(s)")
	for _, thr := range threadSweep(cfg.maxThr) {
		_, tmC := core.Build(g, tau, core.VariantCOptimal, thr)
		_, tmA := core.Build(g, tau, core.VariantAfforest, thr)
		t.row(thr, secs(tmC.SpNode), secs(tmA.SpNode))
	}
	emit(cfg.sink, "fig7", "", t)
}

// runFig8 reproduces Figure 8: the absolute times of the three major
// kernels (SpNode, SpEdge, SmGraph) for each variant at increasing thread
// counts (paper: 1, 8, 32, 128; here: the host's power-of-two sweep).
func runFig8(cfg config) {
	nets := []string{"orkut-sim", "livejournal-sim"}
	for _, name := range nets {
		g := dataset(cfg, name)
		tau := trussness(cfg, name, g)
		fmt.Printf("-- %s --\n", name)
		t := newTable("Threads", "Variant", "SpNode(s)", "SpEdge(s)", "SmGraph(s)")
		for _, thr := range threadSweep(cfg.maxThr) {
			for _, v := range core.ParallelVariants {
				_, tm := core.Build(g, tau, v, thr)
				t.row(thr, v.String(), secs(tm.SpNode), secs(tm.SpEdge), secs(tm.SmGraph))
			}
		}
		emit(cfg.sink, "fig8", name, t)
	}
}

// runFig9 reproduces Figure 9: parallel efficiency ε = T_seq / (p · T_p)
// of the index construction for each variant.
func runFig9(cfg config) {
	nets := []string{"orkut-sim", "livejournal-sim", "youtube-sim"}
	for _, name := range nets {
		g := dataset(cfg, name)
		tau := trussness(cfg, name, g)
		fmt.Printf("-- %s --\n", name)
		seq := map[core.Variant]time.Duration{}
		for _, v := range core.ParallelVariants {
			_, tm := core.Build(g, tau, v, 1)
			seq[v] = tm.IndexTotal()
		}
		t := newTable("Threads", "Baseline ε%", "C-Optimal ε%", "Afforest ε%")
		for _, thr := range threadSweep(cfg.maxThr) {
			var row []interface{}
			row = append(row, thr)
			for _, v := range core.ParallelVariants {
				_, tm := core.Build(g, tau, v, thr)
				eff := 100 * float64(seq[v]) / (float64(thr) * float64(tm.IndexTotal()))
				row = append(row, eff)
			}
			t.row(row...)
		}
		emit(cfg.sink, "fig9", name, t)
	}
}

// runTab4 reproduces Table 4: single-thread times of the combined index-
// construction phases for the three parallel implementations and the
// Original serial Algorithm 1 (the paper's Akbas et al. comparator role).
func runTab4(cfg config) {
	nets := []string{"amazon-sim", "dblp-sim", "livejournal-sim", "orkut-sim"}
	t := newTable("Network", "Baseline(s)", "C-Opt(s)", "Afforest(s)", "Original(s)")
	for _, name := range nets {
		g := dataset(cfg, name)
		tau := trussness(cfg, name, g)
		var row []interface{}
		row = append(row, name)
		for _, v := range []core.Variant{core.VariantBaseline, core.VariantCOptimal, core.VariantAfforest, core.VariantSerial} {
			_, tm := core.Build(g, tau, v, 1)
			row = append(row, secs(tm.IndexTotal()))
		}
		t.row(row...)
	}
	emit(cfg.sink, "tab4", "", t)
}

// runTab5 reproduces Table 5: supernode/superedge counts plus 1-thread vs
// max-thread times and the resulting speedups for every variant.
func runTab5(cfg config) {
	nets := []string{"amazon-sim", "dblp-sim", "youtube-sim", "livejournal-sim", "orkut-sim"}
	t := newTable("Network", "SpNodes", "SpEdges",
		"Base 1t(s)", "Base Nt(s)", "Base x",
		"C-Opt 1t(s)", "C-Opt Nt(s)", "C-Opt x",
		"Aff 1t(s)", "Aff Nt(s)", "Aff x")
	for _, name := range nets {
		g := dataset(cfg, name)
		tau := trussness(cfg, name, g)
		var sg *core.SummaryGraph
		var row []interface{}
		row = append(row, name)
		var counts []interface{}
		for _, v := range core.ParallelVariants {
			sg1, tm1 := core.Build(g, tau, v, 1)
			_, tmN := core.Build(g, tau, v, cfg.maxThr)
			if sg == nil {
				sg = sg1
				counts = []interface{}{sg.NumSupernodes(), sg.NumSuperedges()}
			}
			row = append(row, secs(tm1.IndexTotal()), secs(tmN.IndexTotal()),
				float64(tm1.IndexTotal())/float64(tmN.IndexTotal()))
		}
		full := append(append([]interface{}{name}, counts...), row[1:]...)
		t.row(full...)
	}
	emit(cfg.sink, "tab5", "", t)
}
