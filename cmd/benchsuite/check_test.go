package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline marshals an artifact to a temp file and returns its path.
func writeBaseline(t *testing.T, art benchArtifact) string {
	t.Helper()
	raw, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// supportArt builds an artifact with one merge + one oriented row.
func supportArt(mergeSec, orientedSec float64) benchArtifact {
	return benchArtifact{
		GitRev: "testrev",
		SupportBench: []supportRow{
			{Dataset: "d", Kernel: "merge", Seconds: mergeSec},
			{Dataset: "d", Kernel: "oriented", Seconds: orientedSec},
		},
	}
}

// peelArt builds an artifact with one levelsync + one pkt row.
func peelArt(lsSec, pktSec float64) benchArtifact {
	return benchArtifact{
		GitRev: "testrev",
		PeelBench: []peelRow{
			{Dataset: "d", Kernel: "levelsync", Seconds: lsSec},
			{Dataset: "d", Kernel: "pkt", Seconds: pktSec},
		},
	}
}

func TestCheckPassesOnMatchingRatios(t *testing.T) {
	base := supportArt(1.0, 0.5)
	base.PeelBench = peelArt(1.0, 0.4).PeelBench
	cur := supportArt(0.8, 0.4) // same ratios, faster machine
	cur.PeelBench = peelArt(0.5, 0.2).PeelBench
	if err := checkAgainstBaseline(writeBaseline(t, base), &cur); err != nil {
		t.Fatalf("matching ratios rejected: %v", err)
	}
}

func TestCheckFailsOnRegression(t *testing.T) {
	base := peelArt(1.0, 0.4)
	cur := peelArt(1.0, 0.8) // pkt ratio 0.8 vs baseline 0.4: 2x regression
	err := checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("2x peel regression not caught: %v", err)
	}
}

// TestCheckFailsLoudlyOnMissingBaselineRow pins the satellite bugfix: a
// current-run row with no counterpart in the baseline used to be skipped
// (the gate silently passed); it must be a loud error telling the operator
// to regenerate the baseline.
func TestCheckFailsLoudlyOnMissingBaselineRow(t *testing.T) {
	// Baseline has peel rows (so the "no peel_bench rows at all" guard does
	// not fire) but for a different dataset than the current run measures.
	base := peelArt(1.0, 0.4)
	for i := range base.PeelBench {
		base.PeelBench[i].Dataset = "other"
	}
	cur := peelArt(1.0, 0.4)
	err := checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "levelsync row") {
		t.Fatalf("missing baseline levelsync row passed silently: %v", err)
	}

	// Baseline has the levelsync normalizer but not the pkt cell itself.
	base = peelArt(1.0, 0.4)
	base.PeelBench = base.PeelBench[:1]
	err = checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "cannot pass by omission") {
		t.Fatalf("missing baseline pkt row passed silently: %v", err)
	}

	// The same discipline guards the support gate.
	sbase := supportArt(1.0, 0.5)
	sbase.SupportBench = sbase.SupportBench[:1]
	scur := supportArt(1.0, 0.5)
	err = checkAgainstBaseline(writeBaseline(t, sbase), &scur)
	if err == nil || !strings.Contains(err.Error(), "cannot pass by omission") {
		t.Fatalf("missing baseline support row passed silently: %v", err)
	}
}

// TestCheckFailsLoudlyOnMissingNormalizer: a current run without its own
// normalizer row (e.g. `-experiment peel` filtered to one explicit kernel)
// must fail rather than form no ratios and pass.
func TestCheckFailsLoudlyOnMissingNormalizer(t *testing.T) {
	base := peelArt(1.0, 0.4)
	cur := peelArt(1.0, 0.4)
	cur.PeelBench = cur.PeelBench[1:] // pkt row only, no levelsync
	err := checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "no levelsync row to normalize") {
		t.Fatalf("missing current-run normalizer passed silently: %v", err)
	}
}

// TestCheckSkipsBelowNoiseFloor: sub-noise cells stay silently skipped —
// the loud-failure rule is about missing rows, not unmeasurable ones. With
// every cell below the floor, the gate reports "no comparable rows".
func TestCheckSkipsBelowNoiseFloor(t *testing.T) {
	base := peelArt(0.0005, 0.0004)
	cur := peelArt(0.0005, 0.0012) // 3x "regression" within the noise floor
	err := checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "no comparable rows") {
		t.Fatalf("want 'no comparable rows' when all cells are sub-noise, got: %v", err)
	}
}

func TestCheckRejectsBaselineWithoutPeelRows(t *testing.T) {
	base := supportArt(1.0, 0.5) // pre-peel-experiment baseline
	cur := supportArt(1.0, 0.5)
	cur.PeelBench = peelArt(1.0, 0.4).PeelBench
	err := checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "no peel_bench rows") {
		t.Fatalf("stale baseline without peel rows accepted: %v", err)
	}
}

// updateArt builds an artifact with one full + one incremental row.
func updateArt(fullSec, incrSec float64) benchArtifact {
	return benchArtifact{
		GitRev: "testrev",
		UpdateBench: []updateRow{
			{Dataset: "d", Engine: "full", Seconds: fullSec},
			{Dataset: "d", Engine: "incremental", Seconds: incrSec},
		},
	}
}

func TestCheckUpdateRowsGateRatios(t *testing.T) {
	base := updateArt(1.0, 0.2)
	cur := updateArt(0.5, 0.1) // same ratio, faster machine
	if err := checkAgainstBaseline(writeBaseline(t, base), &cur); err != nil {
		t.Fatalf("matching update ratios rejected: %v", err)
	}
	cur = updateArt(1.0, 0.5) // incremental ratio 0.5 vs baseline 0.2
	err := checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("2.5x incremental-applier regression not caught: %v", err)
	}
}

func TestCheckUpdateRowsFailLoudlyOnMissingRows(t *testing.T) {
	// Current run without its full-rebuild normalizer.
	base := updateArt(1.0, 0.2)
	cur := updateArt(1.0, 0.2)
	cur.UpdateBench = cur.UpdateBench[1:]
	err := checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "no full-rebuild row") {
		t.Fatalf("missing current-run normalizer passed silently: %v", err)
	}

	// Baseline has the normalizer but not the incremental cell.
	base = updateArt(1.0, 0.2)
	base.UpdateBench = base.UpdateBench[:1]
	cur = updateArt(1.0, 0.2)
	err = checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "cannot pass by omission") {
		t.Fatalf("missing baseline incremental row passed silently: %v", err)
	}

	// Pre-update-experiment baseline with no update rows at all.
	base = supportArt(1.0, 0.5)
	cur = supportArt(1.0, 0.5)
	cur.UpdateBench = updateArt(1.0, 0.2).UpdateBench
	err = checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "no update_bench rows") {
		t.Fatalf("stale baseline without update rows accepted: %v", err)
	}
}

// coldstartArt builds an artifact with one v2-decode + one v3-mmap-eager row.
func coldstartArt(v2Sec, mmapSec float64) benchArtifact {
	return benchArtifact{
		GitRev: "testrev",
		ColdstartBench: []coldstartRow{
			{Dataset: "d", Loader: coldstartV2Loader, Seconds: v2Sec},
			{Dataset: "d", Loader: "v3-mmap-eager", Seconds: mmapSec},
		},
	}
}

func TestCheckColdstartRowsGateRatios(t *testing.T) {
	base := coldstartArt(1.0, 0.02)
	cur := coldstartArt(0.5, 0.01) // same 50x advantage, faster machine
	if err := checkAgainstBaseline(writeBaseline(t, base), &cur); err != nil {
		t.Fatalf("matching coldstart ratios rejected: %v", err)
	}
	cur = coldstartArt(1.0, 0.1) // mmap ratio 0.1 vs baseline 0.02: 5x regression
	err := checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("5x cold-start regression not caught: %v", err)
	}
}

// TestCheckColdstartClampsSubNoiseRows: an mmap load is sub-millisecond by
// design, so the gate clamps sub-floor times to the noise floor instead of
// skipping the row — jitter below the floor passes, but the mmap path
// regressing to decode-like cost is still caught against a sub-floor
// baseline.
func TestCheckColdstartClampsSubNoiseRows(t *testing.T) {
	base := coldstartArt(1.0, 0.0004)
	cur := coldstartArt(1.0, 0.0008) // 2x within the floor: jitter, not regression
	if err := checkAgainstBaseline(writeBaseline(t, base), &cur); err != nil {
		t.Fatalf("sub-floor mmap jitter rejected: %v", err)
	}
	cur = coldstartArt(1.0, 0.5) // decode-like cost vs sub-floor baseline
	err := checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("mmap path regressing to decode cost not caught: %v", err)
	}
}

func TestCheckColdstartRowsFailLoudlyOnMissingRows(t *testing.T) {
	// Current run without its v2-decode normalizer.
	base := coldstartArt(1.0, 0.02)
	cur := coldstartArt(1.0, 0.02)
	cur.ColdstartBench = cur.ColdstartBench[1:]
	err := checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "no v2-decode row") {
		t.Fatalf("missing current-run normalizer passed silently: %v", err)
	}

	// Baseline has the normalizer but not the mmap cell.
	base = coldstartArt(1.0, 0.02)
	base.ColdstartBench = base.ColdstartBench[:1]
	cur = coldstartArt(1.0, 0.02)
	err = checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "cannot pass by omission") {
		t.Fatalf("missing baseline mmap row passed silently: %v", err)
	}

	// Pre-coldstart-experiment baseline with no coldstart rows at all.
	base = supportArt(1.0, 0.5)
	cur = supportArt(1.0, 0.5)
	cur.ColdstartBench = coldstartArt(1.0, 0.02).ColdstartBench
	err = checkAgainstBaseline(writeBaseline(t, base), &cur)
	if err == nil || !strings.Contains(err.Error(), "no coldstart_bench rows") {
		t.Fatalf("stale baseline without coldstart rows accepted: %v", err)
	}
}
