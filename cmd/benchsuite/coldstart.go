package main

import (
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"equitruss/internal/community"
	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/graphio"
	"equitruss/internal/mmapio"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// The coldstart experiment measures the tentpole claim of the v3 index
// layout: time from "index file on disk" to "first community answer
// served", the restart-latency path. Three loaders run over the same built
// index:
//
//   - v2-decode: the sequential checksummed stream decode plus the eager
//     vertex→supernode seed-CSR build — what a pre-v3 server paid on boot.
//   - v3-mmap-eager: zero-copy mmap of the flat layout with all section
//     checksums verified before the first query.
//   - v3-mmap-lazy: the same mapping with checksum verification deferred to
//     a background sweep; structural validation still runs up front.
//
// Every loader must produce byte-identical answers and identical
// τ/summary/hierarchy checksums — the run panics on any disagreement, so a
// fast-but-wrong load path can never post a time.
const (
	coldstartEdgeFactor = 8
	coldstartSeed       = 42
	coldstartReps       = 3
)

// coldstartScale maps the -scale factor onto an RMAT scale: 18 at the
// paper-surrogate size (-scale 1), shrinking by one scale step per halving,
// clamped to [12, 18] so even a tiny sweep exercises a nontrivial index.
func coldstartScale(sizeFactor float64) int {
	s := rmat18Scale
	if sizeFactor > 0 {
		s += int(math.Floor(math.Log2(sizeFactor)))
	}
	if s < 12 {
		s = 12
	}
	if s > rmat18Scale {
		s = rmat18Scale
	}
	return s
}

// coldstartLoaders is the sweep order. v2-decode first: the check mode
// normalizes the mmap loaders' times by the same run's decode time.
const coldstartV2Loader = "v2-decode"

var coldstartLoaders = []string{coldstartV2Loader, "v3-mmap-eager", "v3-mmap-lazy"}

// runColdstart builds one index, stores it in both layouts, and times each
// loader from file open to first community answer.
func runColdstart(cfg config) {
	scale := coldstartScale(cfg.scale)
	g := gen.RMAT(scale, coldstartEdgeFactor, 0.57, 0.19, 0.19, coldstartSeed)
	name := fmt.Sprintf("rmat%d", scale)
	fmt.Printf("%s: %d vertices, %d edges\n", name, g.NumVertices(), g.NumEdges())

	sup := triangle.SupportsKernel(g, cfg.kernel, cfg.maxThr)
	tau, kmax := truss.DecomposeKernel(g, sup, cfg.peel, cfg.maxThr)
	sg, _ := core.Build(g, tau, core.VariantAfforest, cfg.maxThr)

	// The fixed query: the max-trussness community of the first edge that
	// attains kmax — deterministic, and the strongest community in the
	// graph, the natural "is the server up" probe.
	qv, qk := int32(-1), kmax
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		if tau[e] == kmax {
			qv = g.Edge(e).U
			break
		}
	}
	if qv < 0 {
		panic(fmt.Sprintf("coldstart: %s has no edge at kmax=%d", name, kmax))
	}

	dir, err := os.MkdirTemp("", "benchsuite-coldstart-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	paths := map[string]string{
		coldstartV2Loader: filepath.Join(dir, "index.v2"),
		"v3-mmap-eager":   filepath.Join(dir, "index.v3"),
		"v3-mmap-lazy":    filepath.Join(dir, "index.v3"),
	}
	if err := graphio.WriteBinaryIndexFileFormat(paths[coldstartV2Loader], sg, graphio.FormatV2); err != nil {
		panic(err)
	}
	if err := graphio.WriteBinaryIndexFileFormat(paths["v3-mmap-eager"], sg, graphio.FormatV3); err != nil {
		panic(err)
	}

	t := newTable("Graph", "Loader", "Seconds", "IndexMB", "MmapMB", "HeapMB", "vsV2")
	v2Sec := 0.0
	var want uint64
	for i, loader := range coldstartLoaders {
		res := timeColdstart(cfg, g, loader, paths[loader], qv, qk)
		if i == 0 {
			v2Sec, want = res.seconds, res.checksum
		} else if res.checksum != want {
			panic(fmt.Sprintf("coldstart loader %s disagrees with %s on %s: checksum %#x != %#x",
				loader, coldstartV2Loader, name, res.checksum, want))
		}
		t.row(name, loader, res.seconds, float64(res.indexBytes)/1e6,
			float64(res.mmapBytes)/1e6, float64(res.heapBytes)/1e6, v2Sec/res.seconds)
		if cfg.art != nil {
			cfg.art.ColdstartBench = append(cfg.art.ColdstartBench, coldstartRow{
				Dataset: name, Loader: loader, Seconds: res.seconds,
				IndexBytes: res.indexBytes, MmapBytes: res.mmapBytes,
				HeapBytes: res.heapBytes, Checksum: res.checksum,
			})
		}
	}
	emit(cfg.sink, "coldstart", "", t)
}

type coldstartResult struct {
	seconds    float64 // min over reps: open → first community answer
	indexBytes int64
	mmapBytes  int64
	heapBytes  int64 // heap growth across the first load (v3: ~0, the arrays live in the mapping)
	checksum   uint64
}

// timeColdstart runs one loader's open→first-answer path coldstartReps
// times, keeping the minimum, then fingerprints the final rep's full
// serving state (τ/summary/hierarchy checksums plus the answer itself) for
// the cross-loader agreement check.
func timeColdstart(cfg config, g *graph.Graph, loader, path string, qv, qk int32) coldstartResult {
	info, err := os.Stat(path)
	if err != nil {
		panic(err)
	}
	res := coldstartResult{indexBytes: info.Size()}

	load := func() (*community.Index, []*community.Community) {
		switch loader {
		case coldstartV2Loader:
			sg, err := graphio.ReadBinaryIndexFile(path)
			if err != nil {
				panic(err)
			}
			idx := community.NewIndex(g, sg)
			return idx, idx.CommunitiesBFS(qv, qk)
		case "v3-mmap-eager", "v3-mmap-lazy":
			mode := graphio.VerifyEager
			if loader == "v3-mmap-lazy" {
				mode = graphio.VerifyLazy
			}
			sg, m, err := graphio.MapIndexFile(path, mode)
			if err != nil {
				panic(err)
			}
			res.mmapBytes = int64(m.Len())
			idx := community.NewIndexDeferred(g, sg)
			return idx, idx.CommunitiesBFS(qv, qk)
		default:
			panic("unknown coldstart loader " + loader)
		}
	}

	var idx *community.Index
	var answer []*community.Community
	for rep := 0; rep < coldstartReps; rep++ {
		// On the first rep, bracket the load with heap readings (after a
		// forced GC) to measure what the loader allocates: the v2 decode
		// materializes all seven arrays on the heap, the v3 loaders leave
		// them in the mapping.
		var ms0 runtime.MemStats
		if rep == 0 {
			runtime.GC()
			runtime.ReadMemStats(&ms0)
		}
		start := time.Now()
		idx, answer = load()
		d := time.Since(start)
		if rep == 0 {
			var ms1 runtime.MemStats
			runtime.ReadMemStats(&ms1)
			res.heapBytes = int64(ms1.HeapAlloc) - int64(ms0.HeapAlloc)
		}
		cfg.observe(d)
		if sec := d.Seconds(); rep == 0 || sec < res.seconds {
			res.seconds = sec
		}
	}

	// Everything below is agreement checking, outside the timed region: the
	// answer fingerprint plus the full serving-state checksums (which force
	// the hierarchy build — deliberately not part of first-answer latency,
	// since serving builds it behind the published epoch).
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	word(uint64(len(answer)))
	for _, c := range answer {
		word(uint64(c.K))
		word(uint64(len(c.Edges)))
		for _, e := range c.Edges {
			word(uint64(uint32(e)))
		}
	}
	sums := idx.Checksums()
	word(sums.Tau)
	word(sums.Summary)
	word(sums.Hierarchy)
	res.checksum = h.Sum64()

	// A lazy mapping must also finish its background sweep clean before the
	// loader may report success.
	if loader == "v3-mmap-lazy" {
		m := idx.SG.Backing.(*mmapio.Mapping)
		deadline := time.Now().Add(30 * time.Second)
		for !m.VerifyDone() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if !m.VerifyDone() {
			panic("coldstart lazy verify never finished")
		}
		if err := m.VerifyErr(); err != nil {
			panic(fmt.Sprintf("coldstart lazy verify: %v", err))
		}
	}
	return res
}

// checkColdstartRows gates each mmap loader's open→first-answer time
// normalized by the same run's v2-decode time — the cold-start advantage
// the v3 layout exists for. Same ratio-of-ratios and loud-failure
// discipline as the other gates.
func checkColdstartRows(base, art *benchArtifact) (int, error) {
	baseV2 := coldstartV2Seconds(base.ColdstartBench)
	curV2 := coldstartV2Seconds(art.ColdstartBench)
	checked := 0
	for _, row := range art.ColdstartBench {
		if row.Loader == coldstartV2Loader {
			continue
		}
		cv, okC := curV2[row.Dataset]
		if !okC {
			return checked, fmt.Errorf("coldstart %s/%s: current run has no v2-decode row to normalize by (run the full coldstart sweep)",
				row.Dataset, row.Loader)
		}
		bv, okB := baseV2[row.Dataset]
		if !okB {
			return checked, fmt.Errorf("coldstart %s/%s: baseline %s has no v2-decode row for this dataset (regenerate the baseline)",
				row.Dataset, row.Loader, base.GitRev)
		}
		if bv < checkNoiseFloorSec || cv < checkNoiseFloorSec {
			continue
		}
		baseSec, found := findColdstartRow(base.ColdstartBench, row.Dataset, row.Loader)
		if !found {
			return checked, fmt.Errorf("coldstart %s/%s: no baseline row in %s — the gate cannot pass by omission (regenerate the baseline)",
				row.Dataset, row.Loader, base.GitRev)
		}
		// An mmap load is sub-millisecond by design, so the usual "skip
		// sub-noise cells" rule would disarm this gate permanently. Clamp
		// sub-floor times to the floor instead: jitter below the floor never
		// trips the margin, but the regression the gate exists for — the mmap
		// path sliding back toward decode cost — lands far above it.
		curRatio := math.Max(row.Seconds, checkNoiseFloorSec) / cv
		baseRatio := math.Max(baseSec, checkNoiseFloorSec) / bv
		checked++
		if curRatio > baseRatio*checkMargin {
			return checked, fmt.Errorf("%s/%s: normalized cold-start time %.4f (was %.4f in baseline %s) — >%.0f%% regression",
				row.Dataset, row.Loader, curRatio, baseRatio, base.GitRev, (checkMargin-1)*100)
		}
		fmt.Printf("# benchcheck coldstart %s/%-13s ratio %.4f vs baseline %.4f ok\n",
			row.Dataset, row.Loader, curRatio, baseRatio)
	}
	return checked, nil
}

// findColdstartRow looks up a (dataset, loader) cell's seconds.
func findColdstartRow(rows []coldstartRow, dataset, loader string) (float64, bool) {
	for _, r := range rows {
		if r.Dataset == dataset && r.Loader == loader {
			return r.Seconds, true
		}
	}
	return 0, false
}

// coldstartV2Seconds indexes the decode loader's time per dataset.
func coldstartV2Seconds(rows []coldstartRow) map[string]float64 {
	out := map[string]float64{}
	for _, r := range rows {
		if r.Loader == coldstartV2Loader {
			out[r.Dataset] = r.Seconds
		}
	}
	return out
}
