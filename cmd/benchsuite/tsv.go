package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// tsvSink mirrors every rendered table into a tab-separated file under the
// -out directory, one file per experiment — the gnuplot-ready series behind
// the paper's plots. A nil sink discards.
type tsvSink struct {
	dir string
}

// write saves one table as <dir>/<experiment>[_<suffix>].tsv.
func (s *tsvSink) write(experiment, suffix string, t *table) error {
	if s == nil || s.dir == "" {
		return nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	name := experiment
	if suffix != "" {
		name += "_" + sanitize(suffix)
	}
	path := filepath.Join(s.dir, name+".tsv")
	var b strings.Builder
	b.WriteString(strings.Join(t.header, "\t"))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// sanitize makes a network name safe as a filename fragment.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// emit renders the table to stdout and mirrors it to the sink, reporting
// sink errors without aborting the experiment.
func emit(sink *tsvSink, experiment, suffix string, t *table) {
	t.render(os.Stdout)
	if err := sink.write(experiment, suffix, t); err != nil {
		fmt.Fprintf(os.Stderr, "benchsuite: tsv write failed: %v\n", err)
	}
}
