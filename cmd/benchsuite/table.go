package main

import (
	"fmt"
	"io"
	"strings"
)

// table accumulates rows and renders an aligned text table, the harness's
// stand-in for the paper's plots: every experiment prints the same series
// the corresponding figure draws.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) row(cells ...interface{}) {
	r := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			r[i] = fmt.Sprintf("%.2f", v)
		default:
			r[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, r)
}

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	seps := make([]string, len(t.header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
}
