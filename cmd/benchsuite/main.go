// Command benchsuite reproduces every table and figure of the paper's
// evaluation section on the synthetic dataset surrogates. Each experiment
// prints the same rows/series the paper reports; absolute numbers differ
// (laptop + surrogate graphs vs. 128-core Perlmutter + SNAP datasets) but
// the shapes — kernel dominance, variant ordering, scaling curves — are the
// reproduction target. See EXPERIMENTS.md for recorded paper-vs-measured
// comparisons.
//
// Usage:
//
//	benchsuite -experiment all -scale 0.25
//	benchsuite -experiment fig5 -scale 1.0
//	benchsuite -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"equitruss/internal/concur"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/obs"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

type experiment struct {
	id    string
	title string
	run   func(cfg config)
	// onlyExplicit experiments are skipped by -experiment all: they are
	// either too slow for a routine sweep (rmat18) or meaningful only with
	// dedicated flags.
	onlyExplicit bool
}

type config struct {
	scale   float64          // dataset size factor
	maxThr  int              // top of the thread sweep
	kernel  triangle.Kernel  // Support kernel for all triangle counting
	peel    truss.PeelKernel // TrussDecomp kernel for all peeling
	verbose bool
	sink    *tsvSink       // optional TSV mirror of every table
	art     *benchArtifact // run artifact; experiments may append rows
	// hist collects every individual timed repetition of the current
	// experiment (fresh per experiment), so the artifact reports latency
	// quantiles over the actual sample population, not just min-of-reps.
	hist *obs.Histogram
}

// observe records one timed repetition into the current experiment's
// latency histogram (nil-safe for direct test calls of run functions).
func (cfg config) observe(d time.Duration) {
	if cfg.hist != nil {
		cfg.hist.Observe(d)
	}
}

var experiments = []experiment{
	{"tab3", "Table 3: dataset inventory", runTab3, false},
	{"fig2", "Figure 2: serial pipeline kernel breakdown (%)", runFig2, false},
	{"fig4", "Figure 4: Baseline parallel kernel breakdown (%), 1 thread", runFig4, false},
	{"fig5", "Figure 5: single-thread SpNode speedup by variant", runFig5, false},
	{"fig6", "Figure 6: strong scaling of index construction", runFig6, false},
	{"fig7", "Figure 7: SpNode scaling on friendster-sim", runFig7, false},
	{"fig8", "Figure 8: kernel breakdown across thread counts", runFig8, false},
	{"fig9", "Figure 9: parallel efficiency", runFig9, false},
	{"tab4", "Table 4: single-thread comparison incl. Original (serial)", runTab4, false},
	{"tab5", "Table 5: index sizes and parallel speedups", runTab5, false},
	{"support", "Support kernel sweep: merge vs gallop vs oriented", runSupport, false},
	{"peel", "Peel kernel sweep: levelsync vs serial vs pkt", runPeel, false},
	{"query", "Query path: hierarchy vs indexed-BFS vs DirectCommunities", runQuery, false},
	{"update", "Live update applier: incremental repair vs full rebuild", runUpdate, false},
	{"rmat18", "RMAT scale-18 skewed graph: Support + Decompose (honors -support-kernel and -peel-kernel)", runRMAT18, true},
	{"coldstart", "Cold start: v2 decode vs v3 mmap, index file to first community answer", runColdstart, true},
}

func main() {
	expID := flag.String("experiment", "all", "comma-separated experiment ids (tab3, fig2, ..., support, query, rmat18) or 'all'")
	scale := flag.Float64("scale", 0.25, "dataset size factor (1.0 = paper-surrogate default size)")
	maxThr := flag.Int("maxthreads", concur.MaxThreads(), "top of the thread sweep")
	kernelName := flag.String("support-kernel", "auto", "Support kernel: auto|merge|gallop|oriented")
	peelName := flag.String("peel-kernel", "auto", "TrussDecomp kernel: auto|serial|levelsync|pkt")
	check := flag.String("check", "", "baseline BENCH_*.json: fail if the Support stage regressed >20% vs it")
	list := flag.Bool("list", false, "list experiments and exit")
	verbose := flag.Bool("v", false, "verbose progress")
	outDir := flag.String("out", "", "directory for TSV copies of every table (plot-ready)")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-7s %s\n", e.id, e.title)
		}
		return
	}
	kernel, err := triangle.ParseKernel(*kernelName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
		os.Exit(2)
	}
	peel, err := truss.ParsePeelKernel(*peelName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsuite: %v\n", err)
		os.Exit(2)
	}
	art := &benchArtifact{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GitRev:        gitRev(),
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Scale:         *scale,
		MaxThreads:    *maxThr,
		SupportKernel: kernel.String(),
		PeelKernel:    peel.String(),
	}
	cfg := config{scale: *scale, maxThr: *maxThr, kernel: kernel, peel: peel, verbose: *verbose, art: art}
	if *outDir != "" {
		cfg.sink = &tsvSink{dir: *outDir}
	}
	fmt.Printf("# benchsuite: %d CPUs, GOMAXPROCS=%d, scale=%.2f, kernel=%s, peel=%s, rev=%s\n\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), cfg.scale, kernel, peel, art.GitRev)
	wanted := map[string]bool{}
	for _, id := range strings.Split(*expID, ",") {
		if id = strings.TrimSpace(id); id != "" {
			wanted[id] = true
		}
	}
	known := map[string]bool{"all": true}
	for _, e := range experiments {
		known[e.id] = true
	}
	for id := range wanted {
		if !known[id] {
			fmt.Fprintf(os.Stderr, "benchsuite: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
	}
	ran := false
	for _, e := range experiments {
		if (wanted["all"] && !e.onlyExplicit) || wanted[e.id] {
			fmt.Printf("== %s ==\n", e.title)
			cfg.hist = obs.NewHistogram("exp_"+e.id, e.title)
			start := time.Now()
			e.run(cfg)
			wall := time.Since(start)
			res := experimentResult{ID: e.id, Title: e.title, Seconds: wall.Seconds()}
			if sum := cfg.hist.Snapshot().Summary(); sum.Count > 0 {
				res.Latency = &latencyDoc{
					Samples:    sum.Count,
					MeanSec:    sum.Mean.Seconds(),
					P50Seconds: sum.P50.Seconds(),
					P95Seconds: sum.P95.Seconds(),
					P99Seconds: sum.P99.Seconds(),
				}
				fmt.Printf("(latency over %d timed reps: p50=%v p95=%v p99=%v)\n",
					sum.Count, sum.P50.Round(time.Microsecond),
					sum.P95.Round(time.Microsecond), sum.P99.Round(time.Microsecond))
			}
			fmt.Printf("(experiment wall time: %v)\n\n", wall.Round(time.Millisecond))
			art.Experiments = append(art.Experiments, res)
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "benchsuite: unknown experiment %q (use -list)\n", *expID)
		os.Exit(2)
	}
	art.Counters = obs.DefaultRegistry().Snapshot()
	if path, err := writeArtifact(*outDir, *art); err != nil {
		fmt.Fprintf(os.Stderr, "benchsuite: artifact: %v\n", err)
		os.Exit(1)
	} else {
		fmt.Printf("# artifact written to %s\n", path)
	}
	if *check != "" {
		if err := checkAgainstBaseline(*check, art); err != nil {
			fmt.Fprintf(os.Stderr, "benchsuite: benchcheck FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# benchcheck OK vs %s\n", *check)
	}
}

// gitRev identifies the commit a benchmark artifact was produced at, so
// BENCH_*.json files are comparable across the repo's history. Binaries
// built with module VCS stamping carry it in build info; `go run` from a
// work tree does not, so fall back to asking git directly.
func gitRev() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return s.Value[:12]
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err == nil {
		return strings.TrimSpace(string(out))
	}
	return "unknown"
}

// benchArtifact is the machine-readable record of one benchsuite run,
// written as BENCH_<timestamp>.json so perf trajectories can be compared
// across commits without scraping stdout.
type benchArtifact struct {
	Timestamp      string             `json:"timestamp"`
	GitRev         string             `json:"git_rev"`
	CPUs           int                `json:"cpus"`
	GOMAXPROCS     int                `json:"gomaxprocs"`
	Scale          float64            `json:"scale"`
	MaxThreads     int                `json:"max_threads"`
	SupportKernel  string             `json:"support_kernel"`
	PeelKernel     string             `json:"peel_kernel,omitempty"`
	Experiments    []experimentResult `json:"experiments"`
	SupportBench   []supportRow       `json:"support_bench,omitempty"`
	QueryBench     []queryRow         `json:"query_bench,omitempty"`
	PeelBench      []peelRow          `json:"peel_bench,omitempty"`
	UpdateBench    []updateRow        `json:"update_bench,omitempty"`
	ColdstartBench []coldstartRow     `json:"coldstart_bench,omitempty"`
	Counters       []obs.CounterValue `json:"counters,omitempty"`
}

// coldstartRow is one timed open→first-answer measurement for one index
// loader. Rows for the same dataset must carry identical checksums — the
// loaders are interchangeable ways to get the same index serving, only
// their costs differ.
type coldstartRow struct {
	Dataset    string  `json:"dataset"`
	Loader     string  `json:"loader"`
	Seconds    float64 `json:"seconds"`
	IndexBytes int64   `json:"index_bytes"`
	MmapBytes  int64   `json:"mmap_bytes"`
	HeapBytes  int64   `json:"heap_bytes"`
	Checksum   uint64  `json:"checksum"`
}

// supportRow is one timed Support-stage measurement: a (dataset, kernel)
// cell of the kernel sweep. Seconds is the minimum over reps; Checksum is
// an FNV-1a hash of the support array, so artifacts also witness that the
// kernels agreed on the answer, not just the time.
type supportRow struct {
	Dataset  string  `json:"dataset"`
	Kernel   string  `json:"kernel"`
	Threads  int     `json:"threads"`
	Seconds  float64 `json:"seconds"`
	Checksum uint64  `json:"checksum"`
}

// queryRow is one timed query-workload measurement for one engine. Rows for
// the same (dataset, workload) must carry identical checksums: the engines
// are interchangeable answer paths, only their costs differ.
type queryRow struct {
	Dataset  string  `json:"dataset"`
	Workload string  `json:"workload"`
	Engine   string  `json:"engine"`
	Threads  int     `json:"threads"`
	Seconds  float64 `json:"seconds"`
	Checksum uint64  `json:"checksum"`
}

// peelRow is one timed TrussDecomp-stage measurement: a (dataset, peel
// kernel) cell of the kernel sweep, with the FNV-1a trussness checksum
// witnessing that the kernels agreed on the answer.
type peelRow struct {
	Dataset  string  `json:"dataset"`
	Kernel   string  `json:"kernel"`
	Threads  int     `json:"threads"`
	Seconds  float64 `json:"seconds"`
	Checksum uint64  `json:"checksum"`
}

// updateRow is one live-update applier measurement: the same deterministic
// batch stream driven to fully-applied under one publish engine. Rows for
// the same dataset must carry identical checksums — the engines are
// interchangeable publish paths, only their costs differ.
type updateRow struct {
	Dataset         string  `json:"dataset"`
	Engine          string  `json:"engine"`
	Batches         int     `json:"batches"`
	Ops             int     `json:"ops"`
	Seconds         float64 `json:"seconds"`
	UpdatesPerSec   float64 `json:"updates_per_sec"`
	P95StalenessSec float64 `json:"p95_staleness_seconds"`
	Checksum        uint64  `json:"checksum"`
}

type experimentResult struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	// Latency summarizes the distribution of the experiment's individual
	// timed repetitions (present only for experiments that time reps).
	// Purely informational: the -check gate reads only the normalized
	// min-of-reps ratios, never these quantiles.
	Latency *latencyDoc `json:"latency,omitempty"`
}

// latencyDoc is the per-experiment latency quantile summary in BENCH_*.json.
type latencyDoc struct {
	Samples    int64   `json:"samples"`
	MeanSec    float64 `json:"mean_seconds"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// writeArtifact writes the artifact into dir (cwd when empty) and returns
// the path.
func writeArtifact(dir string, art benchArtifact) (string, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
	}
	name := "BENCH_" + time.Now().UTC().Format("20060102T150405Z") + ".json"
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// --- shared helpers ---------------------------------------------------------

// graphCache avoids regenerating the same surrogate across experiments in
// an "all" run.
var graphCache = map[string]*graph.Graph{}

func dataset(cfg config, name string) *graph.Graph {
	key := fmt.Sprintf("%s@%.3f", name, cfg.scale)
	if g, ok := graphCache[key]; ok {
		return g
	}
	spec, err := gen.FindDataset(name)
	if err != nil {
		panic(err)
	}
	g := spec.Generate(cfg.scale)
	graphCache[key] = g
	return g
}

// tauCache holds trussness per dataset so repeated experiments share the
// decomposition.
var tauCache = map[string][]int32{}

func trussness(cfg config, name string, g *graph.Graph) []int32 {
	key := fmt.Sprintf("%s@%.3f", name, cfg.scale)
	if tau, ok := tauCache[key]; ok {
		return tau
	}
	sup := triangle.SupportsKernel(g, cfg.kernel, 0)
	tau, _ := truss.DecomposeKernel(g, sup, cfg.peel, 0)
	tauCache[key] = tau
	return tau
}

func threadSweep(maxThr int) []int {
	var out []int
	for t := 1; t <= maxThr; t *= 2 {
		out = append(out, t)
	}
	if out[len(out)-1] != maxThr {
		out = append(out, maxThr)
	}
	return out
}

func pct(part, total time.Duration) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

func secs(d time.Duration) float64 { return d.Seconds() }

// fourNets is the four-network set used by Figures 4 and 5 (DBLP, YouTube,
// LiveJournal, Orkut in the paper; Amazon swaps in for Figure 2 and
// Table 4; friendster-sim is Figure 7 only).
var fourNets = []string{"dblp-sim", "youtube-sim", "livejournal-sim", "orkut-sim"}
