package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"equitruss/internal/obs"
)

// TestConfigObserveNilSafe: experiments run by other tests construct config
// by hand without a histogram; observe must be a no-op there.
func TestConfigObserveNilSafe(t *testing.T) {
	var cfg config
	cfg.observe(time.Millisecond) // must not panic
}

// TestTimeQueryObservesEveryRep pins the contract the artifact's latency
// block depends on: every rep lands in the histogram, not just the minimum.
func TestTimeQueryObservesEveryRep(t *testing.T) {
	cfg := config{hist: obs.NewHistogram("test_timequery", "test")}
	runs := 0
	_, sum := timeQuery(cfg, func() uint64 {
		runs++
		time.Sleep(time.Millisecond)
		return 42
	})
	if runs != supportReps {
		t.Fatalf("workload ran %d times, want %d", runs, supportReps)
	}
	if sum != 42 {
		t.Fatalf("checksum = %d, want 42", sum)
	}
	s := cfg.hist.Snapshot().Summary()
	if s.Count != int64(supportReps) {
		t.Fatalf("histogram observed %d samples, want %d", s.Count, supportReps)
	}
	if s.P95 < time.Millisecond {
		t.Fatalf("p95 = %v, want >= 1ms (every rep slept that long)", s.P95)
	}
}

// TestLatencyDocJSON pins the artifact field names the dashboard-side
// consumers key on.
func TestLatencyDocJSON(t *testing.T) {
	doc := latencyDoc{Samples: 3, MeanSec: 0.5, P50Seconds: 0.4, P95Seconds: 0.9, P99Seconds: 1.1}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"samples":3`, `"mean_seconds":0.5`, `"p50_seconds":0.4`, `"p95_seconds":0.9`, `"p99_seconds":1.1`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("latency doc %s missing %s", raw, key)
		}
	}
}
