package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"equitruss/internal/community"
	"equitruss/internal/core"
	"equitruss/internal/dynamic"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/server"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
	"equitruss/internal/wal"
)

// The live-update experiment drives the same deterministic edge-op stream
// through the serving stack's POST /update pipeline twice — once with the
// applier forced to full per-batch rebuilds, once with incremental
// summary-graph + hierarchy repair — and measures the applier's sustained
// service rate (ops/sec) and per-batch staleness (WAL ack → batch serving).
// The stream is closed-loop (one batch in flight: each post waits for its
// batch to be published before the next), so every batch isolates one
// publish cycle instead of coalescing into one big drain, and staleness is
// exactly the per-batch publish latency. The ops are community churn away
// from the dense RMAT core — fresh triangles bridged into the base graph,
// then torn down eight batches later — so the exact dynamic trussness
// maintenance (identical work in both engines) stays small relative to the
// publish cost the experiment exists to compare. Both engines must finish on
// bit-identical state: the run panics on a checksum mismatch rather than
// reporting a time for a wrong answer.
const (
	// updateRMATScale/updateRMATEdgeFactor size the base graph. Scale 11 at
	// edge factor 8 (~13k undirected edges) makes a full rebuild clearly
	// measurable per batch while keeping the full-engine leg of the sweep
	// inside a couple of seconds.
	updateRMATScale      = 11
	updateRMATEdgeFactor = 8
	updateRMATSeed       = 42
	// updateOpsPerBatch is the edge operations per POST /update batch.
	updateOpsPerBatch = 6
	// updateTeardownLag is how many batches a churned-in triangle lives
	// before the stream deletes it again.
	updateTeardownLag = 8
)

// updateEngines is the sweep order. Full first: the check mode normalizes
// the incremental engine's time by the same run's full-rebuild time, so the
// full row must exist before the ratio is formed.
var updateEngines = []string{server.UpdateModeFull, server.UpdateModeIncremental}

// updateBatches scales the stream length with -scale so a quick CI sweep
// stays quick while a full run sustains load long enough to be meaningful.
func updateBatches(scale float64) int {
	b := int(480 * scale)
	if b < 24 {
		b = 24
	}
	return b
}

// runUpdate times the live-update applier engines and records (engine,
// ops/sec, p95 staleness, checksum) rows into the artifact.
func runUpdate(cfg config) {
	g := gen.RMAT(updateRMATScale, updateRMATEdgeFactor, 0.57, 0.19, 0.19, updateRMATSeed)
	batches := updateBatches(cfg.scale)
	fmt.Printf("rmat%d: %d vertices, %d edges, %d batches x %d ops\n",
		updateRMATScale, g.NumVertices(), g.NumEdges(), batches, updateOpsPerBatch)
	t := newTable("Graph", "Engine", "Ops/s", "p95 staleness(ms)", "Seconds", "vsFull")
	name := fmt.Sprintf("rmat%d", updateRMATScale)
	fullSec := 0.0
	var want uint64
	for i, engine := range updateEngines {
		res := timeUpdates(cfg, g, engine, batches)
		if i == 0 {
			fullSec, want = res.seconds, res.checksum
		} else if res.checksum != want {
			panic(fmt.Sprintf("update engine %s disagrees with full rebuild on %s: checksum %#x != %#x",
				engine, name, res.checksum, want))
		}
		t.row(name, engine, res.opsPerSec, res.p95Staleness.Seconds()*1000,
			res.seconds, fullSec/res.seconds)
		if cfg.art != nil {
			cfg.art.UpdateBench = append(cfg.art.UpdateBench, updateRow{
				Dataset: name, Engine: engine, Batches: batches,
				Ops: batches * updateOpsPerBatch, Seconds: res.seconds,
				UpdatesPerSec:   res.opsPerSec,
				P95StalenessSec: res.p95Staleness.Seconds(),
				Checksum:        res.checksum,
			})
		}
	}
	emit(cfg.sink, "update", "", t)
}

type updateResult struct {
	seconds      float64 // first post → last batch serving
	opsPerSec    float64
	p95Staleness time.Duration
	checksum     uint64
}

// timeUpdates stands up an in-process live server with the given applier
// engine (WAL fsync off: this measures the applier, not the disk) and
// streams the deterministic batch sequence through the real POST /update
// handler closed-loop: each post waits until its batch is serving before the
// next, so the applier's per-batch publish cycle is what gets timed.
func timeUpdates(cfg config, g *graph.Graph, engine string, batches int) updateResult {
	sup := triangle.SupportsKernel(g, cfg.kernel, cfg.maxThr)
	tau, _ := truss.DecomposeKernel(g, sup, cfg.peel, cfg.maxThr)
	sg, _ := core.Build(g, tau, core.VariantAfforest, cfg.maxThr)
	dir, err := os.MkdirTemp("", "benchsuite-update-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	w, err := wal.Open(filepath.Join(dir, "wal.log"), wal.Options{Policy: wal.SyncNever})
	if err != nil {
		panic(err)
	}
	defer w.Close()
	s := server.NewPending(server.Config{})
	s.Publish(community.NewIndex(g, sg), 0)
	defer s.Close()
	if err := s.EnableUpdates(server.LiveConfig{
		WAL: w, Dyn: dynamic.FromStatic(g, tau),
		Mode: engine, Variant: core.VariantAfforest, Threads: cfg.maxThr,
	}); err != nil {
		panic(err)
	}
	h := s.Handler()

	post := func(body string) int {
		req := httptest.NewRequest("POST", "/update", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	health := func() (int, map[string]string) {
		req := httptest.NewRequest("GET", "/healthz", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var doc struct {
			AppliedSeq int               `json:"applied_seq"`
			Checksums  map[string]string `json:"checksums"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			panic(fmt.Sprintf("healthz: %v", err))
		}
		return doc.AppliedSeq, doc.Checksums
	}

	// The k-th batch builds a fresh triangle on three new vertices, bridges
	// it into the base vertex range, and (once the stream is warm) tears
	// down the triangle inserted updateTeardownLag batches earlier — both
	// repair directions, away from the dense core.
	n := int(g.NumVertices())
	triangleAt := func(k int) (int, int, int) {
		a := n + 3*(k-1)
		return a, a + 1, a + 2
	}
	batchBody := func(k int) string {
		a, b, c := triangleAt(k)
		head := fmt.Sprintf(`{"u":%d,"v":%d},{"u":%d,"v":%d},{"u":%d,"v":%d},{"u":%d,"v":%d}`,
			a, b, a, c, b, c, a, (7*k)%n)
		if k <= updateTeardownLag {
			return fmt.Sprintf(`{"ops":[%s,{"u":%d,"v":%d},{"u":%d,"v":%d}]}`,
				head, b, (11*k)%n, c, (13*k)%n)
		}
		oa, ob, oc := triangleAt(k - updateTeardownLag)
		return fmt.Sprintf(`{"ops":[%s,{"op":"delete","u":%d,"v":%d},{"op":"delete","u":%d,"v":%d}]}`,
			head, oa, ob, oa, oc)
	}

	ackTime := make([]time.Time, batches+1)
	appliedTime := make([]time.Time, batches+1)
	lastApplied := 0
	poll := func() {
		applied, _ := health()
		now := time.Now()
		for ; lastApplied < applied; lastApplied++ {
			appliedTime[lastApplied+1] = now
		}
	}

	start := time.Now()
	for k := 1; k <= batches; k++ {
		if code := post(batchBody(k)); code != 200 {
			panic(fmt.Sprintf("engine %s batch %d: status %d", engine, k, code))
		}
		ackTime[k] = time.Now()
		for lastApplied < k {
			poll()
			if lastApplied < k {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	wall := time.Since(start)

	stale := make([]time.Duration, 0, batches)
	for k := 1; k <= batches; k++ {
		d := appliedTime[k].Sub(ackTime[k])
		if d < 0 {
			d = 0
		}
		stale = append(stale, d)
		cfg.observe(d)
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	p95 := stale[(len(stale)*95+99)/100-1]

	_, sums := health()
	return updateResult{
		seconds:      wall.Seconds(),
		opsPerSec:    float64(batches*updateOpsPerBatch) / wall.Seconds(),
		p95Staleness: p95,
		checksum:     checksumStrings(sums["tau"], sums["summary"], sums["hierarchy"]),
	}
}

// checksumStrings hashes the serving state's three layer fingerprints into
// one artifact value.
func checksumStrings(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// checkUpdateRows gates the incremental engine's wall time normalized by the
// same run's full-rebuild time — the ratio the experiment exists to hold
// down. The same ratios-of-ratios and loud-failure discipline as the kernel
// gates.
func checkUpdateRows(base, art *benchArtifact) (int, error) {
	baseFull := fullSeconds(base.UpdateBench)
	curFull := fullSeconds(art.UpdateBench)
	checked := 0
	for _, row := range art.UpdateBench {
		if row.Engine == server.UpdateModeFull {
			continue
		}
		cf, okC := curFull[row.Dataset]
		if !okC {
			return checked, fmt.Errorf("update %s/%s: current run has no full-rebuild row to normalize by (run the full update sweep)",
				row.Dataset, row.Engine)
		}
		bf, okB := baseFull[row.Dataset]
		if !okB {
			return checked, fmt.Errorf("update %s/%s: baseline %s has no full-rebuild row for this dataset (regenerate the baseline)",
				row.Dataset, row.Engine, base.GitRev)
		}
		if bf < checkNoiseFloorSec || cf < checkNoiseFloorSec {
			continue
		}
		baseSec, found := findUpdateRow(base.UpdateBench, row.Dataset, row.Engine)
		if !found {
			return checked, fmt.Errorf("update %s/%s: no baseline row in %s — the gate cannot pass by omission (regenerate the baseline)",
				row.Dataset, row.Engine, base.GitRev)
		}
		curRatio := row.Seconds / cf
		baseRatio := baseSec / bf
		checked++
		if curRatio > baseRatio*checkMargin {
			return checked, fmt.Errorf("%s/%s: normalized update time %.3f (was %.3f in baseline %s) — >%.0f%% regression",
				row.Dataset, row.Engine, curRatio, baseRatio, base.GitRev, (checkMargin-1)*100)
		}
		fmt.Printf("# benchcheck update %s/%-11s ratio %.3f vs baseline %.3f ok\n",
			row.Dataset, row.Engine, curRatio, baseRatio)
	}
	return checked, nil
}

// findUpdateRow looks up a (dataset, engine) cell's seconds.
func findUpdateRow(rows []updateRow, dataset, engine string) (float64, bool) {
	for _, r := range rows {
		if r.Dataset == dataset && r.Engine == engine {
			return r.Seconds, true
		}
	}
	return 0, false
}

// fullSeconds indexes the full-rebuild engine's time per dataset.
func fullSeconds(rows []updateRow) map[string]float64 {
	out := map[string]float64{}
	for _, r := range rows {
		if r.Engine == server.UpdateModeFull {
			out[r.Dataset] = r.Seconds
		}
	}
	return out
}
