package main

import (
	"fmt"
	"sort"
	"time"

	"equitruss/internal/community"
	"equitruss/internal/core"
	"equitruss/internal/gen"
	"equitruss/internal/graph"
	"equitruss/internal/triangle"
	"equitruss/internal/truss"
)

// The query experiment's stress graph: large enough that the BFS query
// path's O(#supernodes) cost per query is clearly measurable, small enough
// that the DirectCommunities oracle stays feasible for a sampled workload.
const (
	queryRMATScale      = 13
	queryRMATEdgeFactor = 8
	queryRMATSeed       = 7
	// queryMembershipStride: the membership workload profiles every
	// stride-th vertex. The BFS path costs ~10ms per vertex at this graph
	// size, so the full vertex set would take minutes per rep.
	queryMembershipStride = 64
	// queryCountRounds: CommunityCount is a single profile per engine, so
	// each engine recomputes it this many times inside the timed region to
	// lift the measurement above scheduler noise.
	queryCountRounds = 10
	// queryCommunityPairs: (vertex, k) sample size for the workload that
	// includes the from-scratch DirectCommunities engine.
	queryCommunityPairs = 48
)

// queryEngine is one timed answer path for a workload. run executes the
// full workload and returns the FNV-1a checksum of the answers, so rows for
// the same workload witness that the engines agreed, not just their times.
type queryEngine struct {
	name string
	run  func() uint64
}

// runQuery times the community query read APIs on an RMAT graph: the
// precomputed hierarchy vs the summary-graph BFS path vs (for the sampled
// communities workload) the from-scratch DirectCommunities oracle. The
// first engine of each workload is the indexed-BFS reference that the
// vsBFS column and the benchcheck ratios normalize by. Mismatched answer
// checksums panic — a time for a wrong answer is worse than no time.
func runQuery(cfg config) {
	g := gen.RMAT(queryRMATScale, queryRMATEdgeFactor, 0.57, 0.19, 0.19, queryRMATSeed)
	sup := triangle.SupportsKernel(g, cfg.kernel, cfg.maxThr)
	tau, _ := truss.DecomposeParallel(g, sup, cfg.maxThr)
	sg, _ := core.Build(g, tau, core.VariantCOptimal, cfg.maxThr)
	idx := community.NewIndex(g, sg)
	buildStart := time.Now()
	h := idx.Hierarchy() // one-time precomputation, outside every timed region
	fmt.Printf("rmat%d: %d vertices, %d edges, %d supernodes, hierarchy %d nodes built in %v\n",
		queryRMATScale, g.NumVertices(), g.NumEdges(), sg.NumSupernodes(),
		h.NumNodes(), time.Since(buildStart).Round(time.Microsecond))
	kmax := truss.KMax(tau)
	dsName := fmt.Sprintf("rmat%d", queryRMATScale)

	workloads := []struct {
		name    string
		engines []queryEngine
	}{
		{"membership", []queryEngine{
			{"indexed-bfs", func() uint64 { return membershipChecksum(g, idx.MembershipBFS) }},
			{"hierarchy", func() uint64 { return membershipChecksum(g, idx.Membership) }},
		}},
		{"count", []queryEngine{
			{"indexed-bfs", func() uint64 { return countChecksum(idx.CommunityCountBFS) }},
			{"hierarchy", func() uint64 { return countChecksum(idx.CommunityCount) }},
		}},
		{"communities", []queryEngine{
			{"indexed-bfs", func() uint64 { return communitiesChecksum(g, kmax, idx.CommunitiesBFS) }},
			{"hierarchy", func() uint64 { return communitiesChecksum(g, kmax, idx.Communities) }},
			{"direct", func() uint64 {
				return communitiesChecksum(g, kmax, func(v, k int32) []*community.Community {
					return community.DirectCommunities(g, tau, v, k)
				})
			}},
		}},
	}

	t := newTable("Workload", "Engine", "Seconds", "vsBFS")
	for _, w := range workloads {
		refSec := 0.0
		var want uint64
		for i, e := range w.engines {
			sec, sum := timeQuery(cfg, e.run)
			if i == 0 {
				refSec, want = sec, sum
			} else if sum != want {
				panic(fmt.Sprintf("query engine %s disagrees with indexed-bfs on %s/%s: checksum %#x != %#x",
					e.name, dsName, w.name, sum, want))
			}
			t.row(w.name, e.name, sec, refSec/sec)
			if cfg.art != nil {
				cfg.art.QueryBench = append(cfg.art.QueryBench, queryRow{
					Dataset: dsName, Workload: w.name, Engine: e.name,
					Threads: cfg.maxThr, Seconds: sec, Checksum: sum,
				})
			}
		}
	}
	emit(cfg.sink, "query", "", t)
}

// timeQuery returns the min-of-reps workload time in seconds and the answer
// checksum, mirroring timeSupport (including the per-rep latency
// observation into the experiment histogram).
func timeQuery(cfg config, f func() uint64) (float64, uint64) {
	best := 0.0
	var sum uint64
	for r := 0; r < supportReps; r++ {
		start := time.Now()
		s := f()
		dur := time.Since(start)
		cfg.observe(dur)
		sec := dur.Seconds()
		if r == 0 || sec < best {
			best = sec
		}
		sum = s
	}
	return best, sum
}

// membershipChecksum computes the (v, k, count) membership profile of every
// queryMembershipStride-th vertex and hashes it in canonical order.
func membershipChecksum(g *graph.Graph, mem func(int32) map[int32]int) uint64 {
	var acc []int32
	for v := int32(0); v < g.NumVertices(); v += queryMembershipStride {
		prof := mem(v)
		if len(prof) == 0 {
			continue
		}
		acc = append(acc, v)
		acc = appendProfile(acc, prof)
	}
	return checksumInt32(acc)
}

// countChecksum recomputes the per-level community count profile
// queryCountRounds times and hashes the final profile.
func countChecksum(count func() map[int32]int) uint64 {
	var acc []int32
	for r := 0; r < queryCountRounds; r++ {
		acc = appendProfile(acc[:0], count())
	}
	return checksumInt32(acc)
}

// communitiesChecksum answers queryCommunityPairs sampled (vertex, k)
// queries and hashes the canonicalized member edge lists.
func communitiesChecksum(g *graph.Graph, kmax int32, comm func(v, k int32) []*community.Community) uint64 {
	n := g.NumVertices()
	step := n / queryCommunityPairs
	if step < 1 {
		step = 1
	}
	span := kmax - 2 // k cycles through 3..kmax
	if span < 1 {
		span = 1
	}
	var acc []int32
	for i := int32(0); i < queryCommunityPairs; i++ {
		v := (i * step) % n
		k := 3 + i%span
		for _, c := range community.CanonicalizeCommunities(comm(v, k)) {
			acc = append(acc, v, k, int32(len(c.Edges)))
			acc = append(acc, c.Edges...)
		}
	}
	return checksumInt32(acc)
}

// appendProfile appends a level→count map as (k, count) pairs in ascending
// k order.
func appendProfile(acc []int32, prof map[int32]int) []int32 {
	ks := make([]int32, 0, len(prof))
	for k := range prof {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	for _, k := range ks {
		acc = append(acc, k, int32(prof[k]))
	}
	return acc
}
