package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"equitruss"
)

func TestParseVariant(t *testing.T) {
	cases := map[string]equitruss.Variant{
		"serial": equitruss.Serial, "original": equitruss.Serial,
		"baseline": equitruss.Baseline, "sv": equitruss.Baseline,
		"coptimal": equitruss.COptimal, "C-Optimal": equitruss.COptimal, "copt": equitruss.COptimal,
		"afforest": equitruss.Afforest, "AFF": equitruss.Afforest,
	}
	for in, want := range cases {
		got, err := parseVariant(in)
		if err != nil || got != want {
			t.Errorf("parseVariant(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := parseVariant("bogus"); err == nil {
		t.Error("bogus variant accepted")
	}
}

func TestLoadGraphDatasetSpec(t *testing.T) {
	g, err := loadGraph("dataset:amazon-sim:0.05")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("empty dataset")
	}
	if _, err := loadGraph("dataset:nonexistent"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := loadGraph("dataset:amazon-sim:notanumber"); err == nil {
		t.Fatal("bad factor accepted")
	}
	if _, err := loadGraph("/no/such/file.txt"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestRunBuildQueryStatsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	// Figure-3-like input: a 5-clique plus pendant.
	content := ""
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			content += itoa(u) + " " + itoa(v) + "\n"
		}
	}
	content += "4 5\n"
	if err := os.WriteFile(gpath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ipath := filepath.Join(dir, "g.idx")
	if err := runBuild([]string{"-graph", gpath, "-variant", "coptimal", "-out", ipath}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := os.Stat(ipath); err != nil {
		t.Fatalf("index not written: %v", err)
	}
	if err := runQuery([]string{"-graph", gpath, "-index", ipath, "-vertex", "0", "-k", "5"}); err != nil {
		t.Fatalf("query via index: %v", err)
	}
	if err := runQuery([]string{"-graph", gpath, "-variant", "afforest", "-vertex", "0", "-k", "3"}); err != nil {
		t.Fatalf("query via fresh build: %v", err)
	}
	if err := runStats([]string{"-graph", gpath}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	// Every peel kernel must drive the same pipeline end to end.
	for _, peel := range []string{"serial", "levelsync", "pkt"} {
		if err := runBuild([]string{"-graph", gpath, "-peel-kernel", peel}); err != nil {
			t.Fatalf("build -peel-kernel %s: %v", peel, err)
		}
	}
	if err := runStats([]string{"-graph", gpath, "-peel-kernel", "pkt"}); err != nil {
		t.Fatalf("stats -peel-kernel pkt: %v", err)
	}
}

func TestRunBuildErrors(t *testing.T) {
	if err := runBuild([]string{}); err == nil {
		t.Error("missing -graph accepted")
	}
	if err := runBuild([]string{"-graph", "g.txt", "-variant", "bogus"}); err == nil {
		t.Error("bad variant accepted")
	}
	if err := runBuild([]string{"-graph", "g.txt", "-peel-kernel", "bogus"}); err == nil {
		t.Error("bad peel kernel accepted")
	}
	if err := runQuery([]string{"-graph", "g.txt"}); err == nil {
		t.Error("missing -vertex accepted")
	}
	if err := runStats([]string{}); err == nil {
		t.Error("stats without -graph accepted")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestRunExport(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(gpath, []byte("0 1\n1 2\n0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dotPath := filepath.Join(dir, "s.dot")
	if err := runExport([]string{"-graph", gpath, "-what", "summary", "-out", dotPath}); err != nil {
		t.Fatalf("export summary: %v", err)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil || len(data) == 0 {
		t.Fatalf("dot output: %v len=%d", err, len(data))
	}
	if err := runExport([]string{"-graph", gpath, "-what", "graph", "-out", filepath.Join(dir, "g.dot")}); err != nil {
		t.Fatalf("export graph: %v", err)
	}
	if err := runExport([]string{"-graph", gpath, "-what", "bogus"}); err == nil {
		t.Fatal("bogus export kind accepted")
	}
	if err := runExport([]string{}); err == nil {
		t.Fatal("missing -graph accepted")
	}
}

func TestRunBuildObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	content := ""
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			content += itoa(u) + " " + itoa(v) + "\n"
		}
	}
	if err := os.WriteFile(gpath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	tpath := filepath.Join(dir, "trace.json")
	ppath := filepath.Join(dir, "cpu.out")
	err := runBuild([]string{"-graph", gpath, "-variant", "afforest",
		"-trace", tpath, "-counters", "-pprof", ppath})
	if err != nil {
		t.Fatalf("traced build: %v", err)
	}
	raw, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	kernels := map[string]bool{}
	threadSpans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.PID == 1 {
			kernels[e.Name] = true
		} else {
			threadSpans++
		}
	}
	for _, k := range []string{"Support", "TrussDecomp", "SpNode", "SpEdge", "SmGraph"} {
		if !kernels[k] {
			t.Errorf("trace lacks pipeline span for %s", k)
		}
	}
	if threadSpans == 0 {
		t.Error("trace lacks per-thread spans")
	}
	if fi, err := os.Stat(ppath); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}
}

func TestRunStatsJSON(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	content := ""
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			content += itoa(u) + " " + itoa(v) + "\n"
		}
	}
	if err := os.WriteFile(gpath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		tpath := filepath.Join(dir, "t.json")
		if err := runStats([]string{"-graph", gpath, "-json", "-trace", tpath}); err != nil {
			t.Errorf("stats -json: %v", err)
		}
	})
	// Everything before the trailing trace confirmation must be one JSON doc.
	dec := json.NewDecoder(strings.NewReader(out))
	var doc struct {
		Graph struct {
			Vertices int64 `json:"vertices"`
			Edges    int64 `json:"edges"`
		} `json:"graph"`
		KMax           int32 `json:"kmax"`
		TrussHistogram []struct {
			K     int32 `json:"k"`
			Edges int64 `json:"edges"`
		} `json:"truss_histogram"`
		Report struct {
			Kernels []struct {
				Name string `json:"name"`
			} `json:"kernels"`
		} `json:"report"`
	}
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("stats -json output is not JSON: %v\n%s", err, out)
	}
	if doc.Graph.Vertices != 5 || doc.Graph.Edges != 10 {
		t.Fatalf("graph doc = %+v", doc.Graph)
	}
	if doc.KMax != 5 {
		t.Fatalf("kmax = %d, want 5 (5-clique)", doc.KMax)
	}
	if len(doc.TrussHistogram) == 0 || len(doc.Report.Kernels) == 0 {
		t.Fatalf("histogram/report empty: %+v", doc)
	}
}

// captureStdout runs f with os.Stdout redirected into a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		io.Copy(&b, r)
		done <- b.String()
	}()
	defer func() {
		os.Stdout = old
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}

// TestRunQueryVertexOutOfRange covers the out-of-range fix: a vertex past
// the graph must produce a descriptive error, not an index-out-of-range
// panic inside MaxK/Communities.
func TestRunQueryVertexOutOfRange(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(gpath, []byte("0 1\n1 2\n0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runQuery([]string{"-graph", gpath, "-variant", "serial", "-vertex", "999", "-k", "3"})
	if err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if !strings.Contains(err.Error(), "outside [0,") {
		t.Fatalf("error %q does not describe the valid range", err)
	}
}
