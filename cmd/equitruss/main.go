// Command equitruss builds EquiTruss indexes and answers k-truss community
// queries from the command line.
//
// Usage:
//
//	equitruss build  -graph g.txt [-variant afforest] [-threads N] [-out index.bin]
//	equitruss query  -graph g.txt -index index.bin -vertex V -k K
//	equitruss stats  -graph g.txt [-variant afforest] [-threads N]
//	equitruss serve  -graph g.txt [-index index.bin] [-addr :8080]
//
// The graph argument accepts either a SNAP-style edge-list file or
// "dataset:<name>[:<sizeFactor>]" for a built-in synthetic surrogate, e.g.
// "dataset:orkut-sim:0.25".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"equitruss"
	"equitruss/internal/buildinfo"
	"equitruss/internal/graphio"
	"equitruss/internal/truss"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "export":
		err = runExport(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "version", "-version", "--version":
		fmt.Printf("equitruss %s (%s)\n", buildinfo.Revision(), runtime.Version())
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "equitruss: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "equitruss:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  equitruss build -graph <path|dataset:name[:factor]> [-variant serial|baseline|coptimal|afforest] [-support-kernel auto|merge|gallop|oriented] [-peel-kernel auto|serial|levelsync|pkt] [-threads N] [-out index.bin]
  equitruss query -graph <...> (-index index.bin | -variant ...) -vertex V -k K
  equitruss stats -graph <...> [-variant ...] [-support-kernel ...] [-peel-kernel ...] [-threads N]
  equitruss export -graph <...> [-what summary|graph] [-out file.dot]
  equitruss serve -graph <...> [-index index.bin | -variant ...] [-addr :8080] [-cache N] [-workers N] [-maxbatch N] [-drain 10s] [-log-format text|json] [-sample N] [-slow 250ms]
  equitruss version
`)
}

func loadGraph(spec string) (*equitruss.Graph, error) {
	if strings.HasPrefix(spec, "dataset:") {
		parts := strings.Split(spec, ":")
		factor := 1.0
		if len(parts) >= 3 {
			f, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("bad size factor %q: %v", parts[2], err)
			}
			factor = f
		}
		return equitruss.GenerateDataset(parts[1], factor)
	}
	return equitruss.LoadEdgeList(spec)
}

func parseVariant(s string) (equitruss.Variant, error) {
	switch strings.ToLower(s) {
	case "serial", "original":
		return equitruss.Serial, nil
	case "baseline", "sv":
		return equitruss.Baseline, nil
	case "coptimal", "c-optimal", "copt":
		return equitruss.COptimal, nil
	case "afforest", "aff":
		return equitruss.Afforest, nil
	default:
		return 0, fmt.Errorf("unknown variant %q", s)
	}
}

func runBuild(args []string) error {
	// SIGINT/SIGTERM cancel the pipeline: every kernel checks the context
	// at scheduler-barrier granularity, so an interrupted build exits
	// promptly with all workers joined instead of finishing a large graph.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runBuildCtx(ctx, args)
}

// runBuildCtx is runBuild with the lifetime context injected for tests.
func runBuildCtx(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	graphSpec := fs.String("graph", "", "edge-list path or dataset:<name>[:<factor>]")
	variantName := fs.String("variant", "afforest", "serial|baseline|coptimal|afforest")
	kernelName := fs.String("support-kernel", "auto", "Support kernel: auto|merge|gallop|oriented")
	peelName := fs.String("peel-kernel", "auto", "TrussDecomp kernel: auto|serial|levelsync|pkt")
	threads := fs.Int("threads", 0, "threads (0 = all cores)")
	out := fs.String("out", "", "write binary index to this path")
	formatName := fs.String("format", "v3", "index layout for -out: v3 (flat, mmap-loadable) or v2 (sequential stream)")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if *graphSpec == "" {
		return fmt.Errorf("-graph is required")
	}
	variant, err := parseVariant(*variantName)
	if err != nil {
		return err
	}
	kernel, err := equitruss.ParseSupportKernel(*kernelName)
	if err != nil {
		return err
	}
	peel, err := equitruss.ParsePeelKernel(*peelName)
	if err != nil {
		return err
	}
	g, err := loadGraph(*graphSpec)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	tr, err := obsf.begin()
	if err != nil {
		return err
	}
	sg, tm, err := equitruss.BuildSummary(g, equitruss.Options{
		Variant: variant, Threads: *threads, SupportKernel: kernel, PeelKernel: peel, Tracer: tr, Context: ctx,
	})
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("build interrupted: %w", err)
		}
		return err
	}
	fmt.Printf("index: %d supernodes, %d superedges\n", sg.NumSupernodes(), sg.NumSuperedges())
	fmt.Printf("kernels: Support=%v TrussDecomp=%v Init=%v SpNode=%v SpEdge=%v SmGraph=%v Remap=%v\n",
		tm.Support, tm.TrussDecomp, tm.Init, tm.SpNode, tm.SpEdge, tm.SmGraph, tm.SpNodeRemap)
	fmt.Printf("total: %v (index construction: %v)\n", tm.Total(), tm.IndexTotal())
	if err := obsf.finish(); err != nil {
		return err
	}
	if *out != "" {
		format, err := equitruss.ParseIndexFormat(*formatName)
		if err != nil {
			return err
		}
		// Crash-safe save: checksummed stream, temp file + fsync + atomic
		// rename — a crash or interrupt mid-save never leaves a torn
		// index behind.
		if err := equitruss.SaveIndexFileFormat(*out, sg, format); err != nil {
			return err
		}
		fmt.Printf("index written to %s (%s)\n", *out, format)
	}
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	graphSpec := fs.String("graph", "", "edge-list path or dataset:<name>[:<factor>]")
	indexPath := fs.String("index", "", "binary index from 'equitruss build -out'")
	variantName := fs.String("variant", "afforest", "variant to build with if no -index given")
	threads := fs.Int("threads", 0, "threads (0 = all cores)")
	vertex := fs.Int("vertex", -1, "query vertex")
	k := fs.Int("k", 4, "trussness level (>= 3)")
	fs.Parse(args)
	if *graphSpec == "" || *vertex < 0 {
		return fmt.Errorf("-graph and -vertex are required")
	}
	g, err := loadGraph(*graphSpec)
	if err != nil {
		return err
	}
	// Validate before any index lookup: MaxK and Communities index the
	// vertex→supernode CSR by v unchecked, so an out-of-range vertex must be
	// rejected here rather than panic inside the query path.
	if int64(*vertex) >= int64(g.NumVertices()) {
		return fmt.Errorf("query: vertex %d outside [0, %d)", *vertex, g.NumVertices())
	}
	var idx *equitruss.Index
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			return err
		}
		idx, err = equitruss.LoadIndex(f, g)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		variant, err := parseVariant(*variantName)
		if err != nil {
			return err
		}
		idx, err = equitruss.BuildIndex(g, equitruss.Options{Variant: variant, Threads: *threads})
		if err != nil {
			return err
		}
	}
	cs := idx.Communities(int32(*vertex), int32(*k))
	fmt.Printf("vertex %d participates in %d community(ies) at k=%d\n", *vertex, len(cs), *k)
	for i, c := range cs {
		verts := c.Vertices()
		fmt.Printf("  community %d: %d vertices, %d edges", i, len(verts), len(c.Edges))
		if len(verts) <= 25 {
			fmt.Printf(" %v", verts)
		}
		fmt.Println()
	}
	if maxK := idx.MaxK(int32(*vertex)); maxK > 0 {
		fmt.Printf("strongest community of vertex %d: k=%d\n", *vertex, maxK)
	}
	hst := idx.Hierarchy().Stats()
	fmt.Printf("hierarchy: %d nodes, %d roots, kmax %d, depth %d\n",
		hst.Nodes, hst.Roots, hst.KMax, hst.MaxDepth)
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	graphSpec := fs.String("graph", "", "edge-list path or dataset:<name>[:<factor>]")
	variantName := fs.String("variant", "afforest", "variant")
	kernelName := fs.String("support-kernel", "auto", "Support kernel: auto|merge|gallop|oriented")
	peelName := fs.String("peel-kernel", "auto", "TrussDecomp kernel: auto|serial|levelsync|pkt")
	threads := fs.Int("threads", 0, "threads (0 = all cores)")
	jsonOut := fs.Bool("json", false, "emit one machine-readable JSON document instead of text")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if *graphSpec == "" {
		return fmt.Errorf("-graph is required")
	}
	variant, err := parseVariant(*variantName)
	if err != nil {
		return err
	}
	kernel, err := equitruss.ParseSupportKernel(*kernelName)
	if err != nil {
		return err
	}
	peel, err := equitruss.ParsePeelKernel(*peelName)
	if err != nil {
		return err
	}
	g, err := loadGraph(*graphSpec)
	if err != nil {
		return err
	}
	tr, err := obsf.begin()
	if err != nil {
		return err
	}
	// The full pipeline runs once; Trussness is not called separately so the
	// counters and spans describe exactly one build.
	sg, tm, err := equitruss.BuildSummary(g, equitruss.Options{Variant: variant, Threads: *threads, SupportKernel: kernel, PeelKernel: peel, Tracer: tr})
	if err != nil {
		return err
	}
	tau := sg.Tau
	kmax := truss.KMax(tau)
	hist := equitruss.TrussnessHistogram(tau)
	// Attach the query index and build the community hierarchy so stats
	// reports the full query-ready shape, not just the summary graph.
	hst := equitruss.NewIndexFromSummary(g, sg).Hierarchy().Stats()
	if *jsonOut {
		// Reuse the obs report as the timing/counter section; synthesize it
		// from Timings when the run was untraced so wall times still appear.
		rep := equitruss.TraceReport(tr)
		if tr == nil {
			syn := equitruss.NewTracer()
			tm.EmitSpans(syn)
			rep = equitruss.TraceReport(syn)
		}
		doc := statsDoc{
			Graph: graphDoc{
				Vertices:  int64(g.NumVertices()),
				Edges:     int64(g.NumEdges()),
				MaxDegree: int64(g.MaxDegree()),
			},
			Variant:        fmt.Sprintf("%v", variant),
			Threads:        tm.Threads,
			KMax:           kmax,
			TrussHistogram: histToDoc(hist),
			Index:          sg.ComputeStats(),
			Hierarchy:      hst,
			TotalSeconds:   tm.Total().Seconds(),
			Report:         rep,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
		return obsf.finish()
	}
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n", g.NumVertices(), g.NumEdges(), g.MaxDegree())
	fmt.Printf("kmax: %d\n", kmax)
	fmt.Println("trussness histogram:")
	keys := make([]int32, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Printf("  τ=%-3d %d edges\n", k, hist[k])
	}
	fmt.Printf("index (%v): %d supernodes, %d superedges, built in %v\n",
		variant, sg.NumSupernodes(), sg.NumSuperedges(), tm.Total())
	fmt.Printf("hierarchy: %d nodes, %d roots, kmax %d, depth %d, level entries %d\n",
		hst.Nodes, hst.Roots, hst.KMax, hst.MaxDepth, hst.LevelEntries)
	fmt.Printf("kernel breakdown: %s\n", tm.Breakdown())
	return obsf.finish()
}

// statsDoc is the machine-readable output of `equitruss stats -json`.
type statsDoc struct {
	Graph          graphDoc                 `json:"graph"`
	Variant        string                   `json:"variant"`
	Threads        int                      `json:"threads"`
	KMax           int32                    `json:"kmax"`
	TrussHistogram []histBucket             `json:"truss_histogram"`
	Index          equitruss.Stats          `json:"index"`
	Hierarchy      equitruss.HierarchyStats `json:"hierarchy"`
	TotalSeconds   float64                  `json:"total_seconds"`
	Report         *equitruss.BuildReport   `json:"report"`
}

type graphDoc struct {
	Vertices  int64 `json:"vertices"`
	Edges     int64 `json:"edges"`
	MaxDegree int64 `json:"max_degree"`
}

type histBucket struct {
	K     int32 `json:"k"`
	Edges int64 `json:"edges"`
}

// histToDoc flattens the histogram map into a k-sorted list so the JSON is
// deterministic.
func histToDoc(hist map[int32]int64) []histBucket {
	keys := make([]int32, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]histBucket, 0, len(keys))
	for _, k := range keys {
		out = append(out, histBucket{K: k, Edges: hist[k]})
	}
	return out
}

// runExport writes Graphviz DOT renderings: the supergraph ("summary") or
// the original graph with trussness edge labels ("graph").
func runExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	graphSpec := fs.String("graph", "", "edge-list path or dataset:<name>[:<factor>]")
	what := fs.String("what", "summary", "summary|graph")
	variantName := fs.String("variant", "afforest", "variant used to build the index")
	threads := fs.Int("threads", 0, "threads (0 = all cores)")
	out := fs.String("out", "", "output path ('-' or empty for stdout)")
	fs.Parse(args)
	if *graphSpec == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := loadGraph(*graphSpec)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *what {
	case "summary":
		variant, err := parseVariant(*variantName)
		if err != nil {
			return err
		}
		sg, _, err := equitruss.BuildSummary(g, equitruss.Options{Variant: variant, Threads: *threads})
		if err != nil {
			return err
		}
		return graphio.WriteSummaryDOT(w, sg)
	case "graph":
		tau := equitruss.Trussness(g, *threads)
		return graphio.WriteGraphDOT(w, g, tau)
	default:
		return fmt.Errorf("unknown export kind %q", *what)
	}
}
