package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime/pprof"

	"equitruss"
	olog "equitruss/internal/obs/log"
)

// obsFlags bundles the observability flags shared by the build and stats
// subcommands: -trace writes a Chrome trace-event JSON file of the run,
// -counters prints the process counter registry afterwards, -pprof
// captures a CPU profile around the build, and -log-format selects the
// process-wide structured-log encoding.
type obsFlags struct {
	tracePath *string
	counters  *bool
	pprofPath *string
	logFormat *string
	tr        *equitruss.Tracer
	pprofFile *os.File
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		tracePath: fs.String("trace", "", "write Chrome trace-event JSON here (open in chrome://tracing or Perfetto)"),
		counters:  fs.Bool("counters", false, "print the process counter registry after the run"),
		pprofPath: fs.String("pprof", "", "write a CPU profile of the run here"),
		logFormat: fs.String("log-format", "text", "structured log encoding: text|json"),
	}
}

// begin installs the process logger, starts the CPU profile if requested,
// and returns the tracer for the run — nil when -trace is unset, so an
// untraced run pays nothing.
func (o *obsFlags) begin() (*equitruss.Tracer, error) {
	format, err := olog.ParseFormat(*o.logFormat)
	if err != nil {
		return nil, err
	}
	olog.Init(os.Stderr, format, slog.LevelInfo)
	if *o.tracePath != "" {
		o.tr = equitruss.NewTracer()
	}
	if *o.pprofPath != "" {
		f, err := os.Create(*o.pprofPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		o.pprofFile = f
	}
	return o.tr, nil
}

// finish stops the profile, writes the trace file, and prints the
// per-kernel report and the counter registry as requested.
func (o *obsFlags) finish() error {
	if o.pprofFile != nil {
		pprof.StopCPUProfile()
		if err := o.pprofFile.Close(); err != nil {
			return err
		}
		o.pprofFile = nil
		fmt.Printf("cpu profile written to %s\n", *o.pprofPath)
	}
	if o.tr != nil {
		f, err := os.Create(*o.tracePath)
		if err != nil {
			return err
		}
		if err := equitruss.WriteTrace(f, o.tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace (%d spans) written to %s\n", o.tr.Len(), *o.tracePath)
		fmt.Print(equitruss.TraceReport(o.tr).String())
	}
	if *o.counters {
		for _, c := range equitruss.Counters() {
			fmt.Printf("counter %-36s %d\n", c.Name, c.Value)
		}
	}
	return nil
}
