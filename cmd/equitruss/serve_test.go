package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeCliqueGraph(t *testing.T, dir string, n int) string {
	t.Helper()
	var b strings.Builder
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.WriteString(itoa(u) + " " + itoa(v) + "\n")
		}
	}
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunServeErrors(t *testing.T) {
	if err := runServeCtx(context.Background(), []string{}, nil); err == nil {
		t.Error("missing -graph accepted")
	}
	if err := runServeCtx(context.Background(), []string{"-graph", "g.txt", "-variant", "bogus"}, nil); err == nil {
		t.Error("bad variant accepted")
	}
	if err := runServeCtx(context.Background(), []string{"-graph", "/no/such/file"}, nil); err == nil {
		t.Error("missing graph file accepted")
	}
}

func TestRunServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	gpath := writeCliqueGraph(t, dir, 6)
	ipath := filepath.Join(dir, "g.idx")
	if err := runBuild([]string{"-graph", gpath, "-variant", "coptimal", "-out", ipath}); err != nil {
		t.Fatalf("build: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- runServeCtx(ctx, []string{
			"-graph", gpath, "-index", ipath, "-addr", "127.0.0.1:0", "-drain", "2s",
		}, func(a net.Addr) { addrCh <- a.String() })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never started listening")
	}
	resp, err := http.Get("http://" + addr + "/community?v=0&k=6")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	var doc struct {
		Count       int `json:"count"`
		Communities []struct {
			Size int `json:"size"`
		} `json:"communities"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d, err %v", resp.StatusCode, err)
	}
	// The 6-clique is one 6-truss community containing every vertex.
	if doc.Count != 1 || doc.Communities[0].Size != 6 {
		t.Fatalf("6-clique answer = %+v", doc)
	}
	resp, err = http.Get("http://" + addr + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v / %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

// TestRunServeBuildsWithoutIndex covers the build-at-startup path.
func TestRunServeBuildsWithoutIndex(t *testing.T) {
	dir := t.TempDir()
	gpath := writeCliqueGraph(t, dir, 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- runServeCtx(ctx, []string{
			"-graph", gpath, "-variant", "afforest", "-addr", "127.0.0.1:0", "-trace",
		}, func(a net.Addr) { addrCh <- a.String() })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never started listening")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v / %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v", err)
	}
}

// TestRunServeLogFlags covers the -log-format / -log-level / -sample /
// -slow / -debug-ring serve flags end to end: a JSON-logged server comes
// up, answers a query, and exposes the trace via /debug/requests.
func TestRunServeLogFlags(t *testing.T) {
	dir := t.TempDir()
	gpath := writeCliqueGraph(t, dir, 5)
	if err := runServeCtx(context.Background(), []string{"-graph", gpath, "-log-format", "yaml"}, nil); err == nil {
		t.Fatal("bad -log-format accepted")
	}
	if err := runServeCtx(context.Background(), []string{"-graph", gpath, "-log-level", "loud"}, nil); err == nil {
		t.Fatal("bad -log-level accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- runServeCtx(ctx, []string{
			"-graph", gpath, "-variant", "coptimal", "-addr", "127.0.0.1:0", "-drain", "2s",
			"-log-format", "json", "-log-level", "debug", "-sample", "1", "-slow", "1h", "-debug-ring", "8",
		}, func(a net.Addr) { addrCh <- a.String() })
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never started listening")
	}
	resp, err := http.Get("http://" + addr + "/community?v=0&k=5")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %v / %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get("http://" + addr + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var dbg struct {
		SampleN int `json:"sample_n"`
		Recent  []struct {
			ID uint64 `json:"id"`
		} `json:"recent"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dbg)
	resp.Body.Close()
	if err != nil || dbg.SampleN != 1 || len(dbg.Recent) == 0 {
		t.Fatalf("/debug/requests = %+v (err %v)", dbg, err)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
}
